// Per-query deadline semantics and host-failure containment.
//
// Deadlines: an expired query must stop at the next page boundary —
// operator polls, the collector loop, parked SPL readers, blocked FIFO
// consumers — and surface kDeadlineExceeded, never hang and never return
// a partial result as if complete.
//
// Containment: when a sharing host dies before publishing a single page,
// an attached satellite re-runs its packet unshared (exactly once) and
// still produces the full, correct result.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/fault.h"
#include "common/trace.h"
#include "exec/exec_context.h"
#include "exec/reference_executor.h"
#include "qpipe/engine.h"
#include "qpipe/fifo_buffer.h"
#include "qpipe/shared_pages_list.h"
#include "test_util.h"

namespace sharing {
namespace {

using testing::ExpectResultsEquivalent;
using testing::MakeSimpleTable;
using testing::MakeTestDatabase;

class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase();
    table_ = MakeSimpleTable(db_.get(), "t", 20000);
  }

  void TearDown() override { FaultRegistry::Global().Disarm(); }

  PlanNodeRef ScanPlan() {
    return std::make_shared<ScanNode>("t", table_->schema(), TruePredicate(),
                                      std::vector<std::size_t>{0, 1});
  }

  /// scan -> agg: a pipeline-breaking plan whose single output page is
  /// published only after the whole input is consumed.
  PlanNodeRef AggPlan() {
    return std::make_shared<AggregateNode>(
        ScanPlan(), std::vector<std::size_t>{0},
        std::vector<AggSpec>{AggSpec::Count("n")});
  }

  /// A stop probe equivalent to the one Stage binds on every source.
  static std::function<Status()> ProbeFor(
      const std::shared_ptr<ExecContext>& ctx) {
    return [ctx] {
      return ctx->StopRequested() ? ctx->TerminalStatus() : Status::OK();
    };
  }

  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_F(DeadlineTest, ExpiredDeadlineSurfacesThroughCollect) {
  QPipeOptions options;
  options.query_timeout_ms = 30;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());
  QueryHandle handle = engine.Submit(ScanPlan());
  // Outlive the budget before collecting: the partial result must be
  // discarded, not returned as if complete.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto result = handle.Collect();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
}

TEST_F(DeadlineTest, GenerousDeadlineDoesNotTrip) {
  QPipeOptions options;
  options.query_timeout_ms = 60000;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());
  auto result = engine.Execute(ScanPlan());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_rows(), 20000u);
}

TEST_F(DeadlineTest, ParkedSplReaderUnparksOnDeadline) {
  MetricsRegistry metrics;
  auto list = SharedPagesList::Create(&metrics);
  auto reader = list->AttachReader();
  ASSERT_NE(reader, nullptr);

  auto ctx = std::make_shared<ExecContext>(1, &metrics);
  ctx->ArmDeadline(Trace::NowMicros() + 60 * 1000, 60);
  reader->BindStopCheck(ProbeFor(ctx));

  // The list is open and empty: without a deadline this Next would park
  // forever. The bounded wait slices must notice the expiry and fail
  // the reader with the probe's status.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(reader->Next(), nullptr);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 50);
  EXPECT_LT(elapsed.count(), 5000) << "unpark must be prompt, not a hang";
  EXPECT_EQ(reader->FinalStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(DeadlineTest, BlockedFifoConsumerUnblocksOnDeadline) {
  MetricsRegistry metrics;
  FifoBuffer fifo(2);
  auto ctx = std::make_shared<ExecContext>(1, &metrics);
  ctx->ArmDeadline(Trace::NowMicros() + 60 * 1000, 60);
  fifo.BindStopCheck(ProbeFor(ctx));

  EXPECT_EQ(fifo.Next(), nullptr);
  EXPECT_EQ(fifo.FinalStatus().code(), StatusCode::kDeadlineExceeded)
      << "a stop-induced nullptr must not read as clean end-of-stream";
}

// ---------------------------------------------------------------------------
// Host-failure containment: the satellite re-run path
// ---------------------------------------------------------------------------

TEST_F(DeadlineTest, HostFailureBeforeFirstPageRerunsSatelliteUnshared) {
  // Single-worker stages and a tiny FIFO give deterministic ordering:
  // the blocker scan saturates its 2-page FIFO and wedges the only
  // TSCAN worker, so the host aggregate (whose scan input is queued
  // behind it) cannot publish anything until the blocker is collected —
  // which leaves a wide-open window to attach the satellite and arm the
  // append fault.
  QPipeOptions options;
  options.scan_sp = SpMode::kOff;  // scans move through plain FIFOs
  options.agg_sp = SpMode::kPull;
  options.stage_workers = 1;
  options.stage_max_workers = 1;
  options.fifo_capacity = 2;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());

  QueryHandle blocker = engine.Submit(ScanPlan());
  QueryHandle host = engine.Submit(AggPlan());
  QueryHandle satellite = engine.Submit(AggPlan());

  // The host's first (and only) channel append fails: the channel is
  // poisoned with zero pages published.
  SHARING_CHECK_OK(FaultRegistry::Global().Arm("sharing.append=once"));

  ASSERT_TRUE(blocker.Collect().ok());

  auto host_result = host.Collect();
  ASSERT_FALSE(host_result.ok());
  EXPECT_NE(host_result.status().ToString().find("injected"),
            std::string::npos)
      << host_result.status().ToString();

  // The satellite consumed nothing from the dead host, so the stage
  // re-runs its packet unshared — full result, bit-for-bit.
  auto sat_result = satellite.Collect();
  ASSERT_TRUE(sat_result.ok()) << sat_result.status().ToString();
  ReferenceExecutor ref(db_->catalog());
  auto want = ref.Execute(*AggPlan());
  ASSERT_TRUE(want.ok());
  ExpectResultsEquivalent(want.value(), sat_result.value(), "rerun");
  EXPECT_EQ(
      db_->metrics()->GetCounter(metrics::kSharingSatelliteRerun)->Get(), 1);
}

TEST_F(DeadlineTest, SatelliteRerunHappensAtMostOnce) {
  // Same wedge as above, but against a pool far smaller than the table
  // (every scan hits the disk layer) with a persistent read fault: the
  // host dies before publishing, the satellite's single re-run fails
  // too, and the satellite must surface that error instead of retrying
  // forever.
  auto db = MakeTestDatabase(/*frames=*/8);
  Table* table = MakeSimpleTable(db.get(), "small", 20000);
  ASSERT_GT(table->num_pages(), 16u);
  auto scan = [&] {
    return std::make_shared<ScanNode>("small", table->schema(),
                                      TruePredicate(),
                                      std::vector<std::size_t>{0, 1});
  };
  auto agg = [&]() -> PlanNodeRef {
    return std::make_shared<AggregateNode>(
        scan(), std::vector<std::size_t>{0},
        std::vector<AggSpec>{AggSpec::Count("n")});
  };
  QPipeOptions options;
  options.scan_sp = SpMode::kOff;
  options.agg_sp = SpMode::kPull;
  options.stage_workers = 1;
  options.stage_max_workers = 1;
  options.fifo_capacity = 2;
  QPipeEngine engine(db->catalog(), options, db->metrics());

  QueryHandle blocker = engine.Submit(PlanNodeRef(scan()));
  QueryHandle host = engine.Submit(agg());
  QueryHandle satellite = engine.Submit(agg());
  SHARING_CHECK_OK(FaultRegistry::Global().Arm("disk.read=p1"));

  EXPECT_FALSE(blocker.Collect().ok());
  EXPECT_FALSE(host.Collect().ok());
  auto sat_result = satellite.Collect();
  FaultRegistry::Global().Disarm();
  ASSERT_FALSE(sat_result.ok());
  EXPECT_EQ(sat_result.status().code(), StatusCode::kIoError)
      << sat_result.status().ToString();
  // Exactly one re-run attempt, then the error surfaced.
  EXPECT_EQ(
      db->metrics()->GetCounter(metrics::kSharingSatelliteRerun)->Get(), 1);
}

}  // namespace
}  // namespace sharing
