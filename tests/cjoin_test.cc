// Tests for the CJOIN module: star-plan recognition, the shared dimension
// hash tables, pipeline correctness against the reference executor,
// admission/departure bookkeeping, and GQP+SP integration.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cjoin/cjoin_stage.h"
#include "cjoin/pipeline.h"
#include "cjoin/star_query.h"
#include "core/sharing_engine.h"
#include "exec/reference_executor.h"
#include "qpipe/fifo_buffer.h"
#include "test_util.h"

namespace sharing {
namespace {

using testing::ExpectResultsEquivalent;
using testing::MakeTestDatabase;

/// A miniature star schema: fact(id, d1k, d2k, v), dim1(k, name),
/// dim2(k, tag, weight).
class CJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase();

    Schema fact({Column::Int64("id"), Column::Int64("d1k"),
                 Column::Int64("d2k"), Column::Double("v")});
    auto f = db_->catalog()->CreateTable("fact", fact, db_->buffer_pool());
    ASSERT_TRUE(f.ok());
    TableAppender fa(f.value());
    for (int64_t i = 0; i < 4000; ++i) {
      auto row = fa.AppendRow();
      ASSERT_TRUE(row.ok());
      row.value()
          .SetInt64(0, i)
          .SetInt64(1, i % 30)
          .SetInt64(2, i % 17)
          .SetDouble(3, double(i % 101));
    }
    ASSERT_TRUE(fa.Finish().ok());

    Schema dim1({Column::Int64("k"), Column::String("name", 6)});
    auto d1 = db_->catalog()->CreateTable("dim1", dim1, db_->buffer_pool());
    ASSERT_TRUE(d1.ok());
    TableAppender d1a(d1.value());
    for (int64_t k = 0; k < 30; ++k) {
      auto row = d1a.AppendRow();
      ASSERT_TRUE(row.ok());
      std::string name = "N" + std::to_string(k % 4);
      row.value().SetInt64(0, k).SetString(1, name);
    }
    ASSERT_TRUE(d1a.Finish().ok());

    Schema dim2({Column::Int64("k"), Column::String("tag", 4),
                 Column::Double("weight")});
    auto d2 = db_->catalog()->CreateTable("dim2", dim2, db_->buffer_pool());
    ASSERT_TRUE(d2.ok());
    TableAppender d2a(d2.value());
    for (int64_t k = 0; k < 17; ++k) {
      auto row = d2a.AppendRow();
      ASSERT_TRUE(row.ok());
      std::string tag = "T" + std::to_string(k % 3);
      row.value().SetInt64(0, k).SetString(1, tag).SetDouble(2, k * 1.5);
    }
    ASSERT_TRUE(d2a.Finish().ok());
  }

  Schema FactSchema() {
    return db_->catalog()->GetTable("fact").value()->schema();
  }
  Schema Dim1Schema() {
    return db_->catalog()->GetTable("dim1").value()->schema();
  }
  Schema Dim2Schema() {
    return db_->catalog()->GetTable("dim2").value()->schema();
  }

  std::vector<CJoinLevelSpec> Levels() {
    return {{"dim1", 1, 0}, {"dim2", 2, 0}};
  }

  /// join(dim1, fact) star plan (one dimension).
  PlanNodeRef OneDimPlan(int64_t name_mod = -1) {
    ExprRef pred = name_mod < 0
                       ? TruePredicate()
                       : Cmp(CmpOp::kEq,
                             Arith(ArithOp::kMod, Col(0, ValueType::kInt64),
                                   Lit(int64_t{4})),
                             Lit(name_mod));
    auto d = std::make_shared<ScanNode>("dim1", Dim1Schema(), pred,
                                        std::vector<std::size_t>{0, 1});
    auto f = std::make_shared<ScanNode>("fact", FactSchema(),
                                        TruePredicate(),
                                        std::vector<std::size_t>{1, 3});
    return std::make_shared<JoinNode>(d, f, 0, 0);
  }

  /// join(dim2, join(dim1, fact)) star plan with predicates on both dims
  /// and on the fact table.
  PlanNodeRef TwoDimPlan(int64_t fact_lt = 3000) {
    auto d1 = std::make_shared<ScanNode>(
        "dim1", Dim1Schema(),
        Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(int64_t{20})),
        std::vector<std::size_t>{0, 1});
    auto f = std::make_shared<ScanNode>(
        "fact", FactSchema(),
        Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(fact_lt)),
        std::vector<std::size_t>{0, 1, 2, 3});
    auto j1 = std::make_shared<JoinNode>(d1, f, 0, 1);
    auto d2 = std::make_shared<ScanNode>(
        "dim2", Dim2Schema(),
        Cmp(CmpOp::kGe, Col(2, ValueType::kDouble), Lit(3.0)),
        std::vector<std::size_t>{0, 1});
    std::size_t d2k = j1->output_schema().ColumnIndex("d2k").value();
    return std::make_shared<JoinNode>(d2, j1, 0, d2k);
  }

  ResultSet Reference(const PlanNodeRef& plan) {
    ReferenceExecutor ref(db_->catalog());
    auto r = ref.Execute(*plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  /// Runs a star plan through a fresh CJOIN pipeline and materializes.
  StatusOr<ResultSet> RunThroughCJoin(CJoinPipeline* pipeline,
                                      const PlanNodeRef& plan) {
    auto spec_or = StarQueryFromPlan(*plan, "fact");
    SHARING_RETURN_NOT_OK(spec_or.status());
    auto sink = std::make_shared<FifoBuffer>(64);
    auto ctx = std::make_shared<ExecContext>(1, db_->metrics());
    std::thread worker([&] {
      pipeline->ExecuteQuery(spec_or.value(), ctx, sink);
    });
    ResultSet result(plan->output_schema());
    while (PageRef page = sink->Next()) result.AppendPage(*page);
    Status st = sink->FinalStatus();
    worker.join();
    if (!st.ok()) return st;
    return result;
  }

  std::unique_ptr<Database> db_;
};

// ---------------------------------------------------------------------------
// StarQueryFromPlan
// ---------------------------------------------------------------------------

TEST_F(CJoinTest, RecognizesOneDimStar) {
  auto spec_or = StarQueryFromPlan(*OneDimPlan(), "fact");
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  const auto& spec = spec_or.value();
  EXPECT_EQ(spec.fact_table, "fact");
  ASSERT_EQ(spec.dims.size(), 1u);
  EXPECT_EQ(spec.dims[0].dim_table, "dim1");
  EXPECT_EQ(spec.dims[0].fk_col_in_fact, 1u);
  EXPECT_EQ(spec.dims[0].pk_col_in_dim, 0u);
  // Output order: dim block then fact block (join output = build ⊕ probe).
  EXPECT_EQ(spec.output_order, (std::vector<int>{0, -1}));
}

TEST_F(CJoinTest, RecognizesTwoDimStarChain) {
  auto spec_or = StarQueryFromPlan(*TwoDimPlan(), "fact");
  ASSERT_TRUE(spec_or.ok()) << spec_or.status().ToString();
  const auto& spec = spec_or.value();
  ASSERT_EQ(spec.dims.size(), 2u);
  EXPECT_EQ(spec.dims[0].dim_table, "dim1");
  EXPECT_EQ(spec.dims[1].dim_table, "dim2");
  EXPECT_EQ(spec.output_order, (std::vector<int>{1, 0, -1}));
}

TEST_F(CJoinTest, DerivedSchemaMatchesJoinTree) {
  auto plan = TwoDimPlan();
  auto spec = StarQueryFromPlan(*plan, "fact").value();
  auto schema_or = spec.OutputSchema(*db_->catalog());
  ASSERT_TRUE(schema_or.ok());
  EXPECT_TRUE(schema_or.value() == plan->output_schema())
      << schema_or.value().ToString() << " vs "
      << plan->output_schema().ToString();
}

TEST_F(CJoinTest, RejectsNonStarShapes) {
  // Aggregate root.
  auto agg = std::make_shared<AggregateNode>(
      OneDimPlan(), std::vector<std::size_t>{},
      std::vector<AggSpec>{AggSpec::Count("n")});
  EXPECT_FALSE(StarQueryFromPlan(*agg, "fact").ok());

  // Wrong fact table name.
  EXPECT_FALSE(StarQueryFromPlan(*OneDimPlan(), "other").ok());

  // Dim-dim join (probe side has no fact scan).
  auto d1 = std::make_shared<ScanNode>("dim1", Dim1Schema(),
                                       TruePredicate(),
                                       std::vector<std::size_t>{0, 1});
  auto d2 = std::make_shared<ScanNode>("dim2", Dim2Schema(),
                                       TruePredicate(),
                                       std::vector<std::size_t>{0, 1});
  auto dd = std::make_shared<JoinNode>(d1, d2, 0, 0);
  EXPECT_FALSE(StarQueryFromPlan(*dd, "fact").ok());
}

TEST_F(CJoinTest, SpecSignatureStable) {
  auto a = StarQueryFromPlan(*TwoDimPlan(), "fact").value();
  auto b = StarQueryFromPlan(*TwoDimPlan(), "fact").value();
  auto c = StarQueryFromPlan(*TwoDimPlan(2000), "fact").value();
  EXPECT_EQ(a.Signature(), b.Signature());
  EXPECT_NE(a.Signature(), c.Signature());
}

// ---------------------------------------------------------------------------
// DimensionHashTable
// ---------------------------------------------------------------------------

TEST_F(CJoinTest, DimensionTableAdmitProbeRemove) {
  Table* dim1 = db_->catalog()->GetTable("dim1").value();
  DimensionHashTable ht(dim1, 0, 8);

  auto pred = Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(int64_t{10}));
  ASSERT_TRUE(ht.AdmitQuery(2, *pred).ok());
  EXPECT_EQ(ht.NumEntries(), 10u);

  const auto* hit = ht.Probe(5);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->bits.Test(2));
  EXPECT_EQ(ht.Probe(15), nullptr);

  // Second query with an overlapping predicate shares entries.
  auto pred2 = Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(int64_t{20}));
  ASSERT_TRUE(ht.AdmitQuery(5, *pred2).ok());
  EXPECT_EQ(ht.NumEntries(), 20u);
  EXPECT_TRUE(ht.Probe(5)->bits.Test(2));
  EXPECT_TRUE(ht.Probe(5)->bits.Test(5));
  EXPECT_FALSE(ht.Probe(15)->bits.Test(2));

  // Departure of query 2 clears its bits; entries only it used vanish.
  ht.RemoveQuery(2);
  ASSERT_NE(ht.Probe(5), nullptr);
  EXPECT_FALSE(ht.Probe(5)->bits.Test(2));
  ht.RemoveQuery(5);
  EXPECT_EQ(ht.NumEntries(), 0u);
}

// ---------------------------------------------------------------------------
// Pipeline correctness
// ---------------------------------------------------------------------------

TEST_F(CJoinTest, OneDimQueryMatchesReference) {
  CJoinPipeline pipeline(db_->catalog(), "fact", Levels(), CJoinOptions{},
                         db_->metrics());
  auto plan = OneDimPlan();
  auto got = RunThroughCJoin(&pipeline, plan);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectResultsEquivalent(Reference(plan), got.value());
}

TEST_F(CJoinTest, TwoDimQueryWithPredicatesMatchesReference) {
  CJoinPipeline pipeline(db_->catalog(), "fact", Levels(), CJoinOptions{},
                         db_->metrics());
  auto plan = TwoDimPlan();
  auto got = RunThroughCJoin(&pipeline, plan);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectResultsEquivalent(Reference(plan), got.value());
}

TEST_F(CJoinTest, SubsetDimQueryUnaffectedByOtherLevels) {
  // A query joining only dim1 must pass through the dim2 level untouched
  // (neutral bits), even while another query uses dim2.
  CJoinPipeline pipeline(db_->catalog(), "fact", Levels(), CJoinOptions{},
                         db_->metrics());
  auto plan1 = OneDimPlan();
  auto plan2 = TwoDimPlan();

  auto spec1 = StarQueryFromPlan(*plan1, "fact").value();
  auto spec2 = StarQueryFromPlan(*plan2, "fact").value();
  auto sink1 = std::make_shared<FifoBuffer>(64);
  auto sink2 = std::make_shared<FifoBuffer>(64);
  auto ctx = std::make_shared<ExecContext>(1, db_->metrics());

  std::thread w1([&] { pipeline.ExecuteQuery(spec1, ctx, sink1); });
  std::thread w2([&] { pipeline.ExecuteQuery(spec2, ctx, sink2); });

  ResultSet r1(plan1->output_schema()), r2(plan2->output_schema());
  std::thread c2([&] {
    while (PageRef page = sink2->Next()) r2.AppendPage(*page);
  });
  while (PageRef page = sink1->Next()) r1.AppendPage(*page);
  c2.join();
  w1.join();
  w2.join();

  ExpectResultsEquivalent(Reference(plan1), r1, "subset-dim query");
  ExpectResultsEquivalent(Reference(plan2), r2, "two-dim query");
}

TEST_F(CJoinTest, ManyConcurrentQueriesAllCorrect) {
  CJoinOptions options;
  options.max_queries = 16;
  options.workers = 2;
  CJoinPipeline pipeline(db_->catalog(), "fact", Levels(), options,
                         db_->metrics());

  constexpr int kQueries = 12;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int q = 0; q < kQueries; ++q) {
    threads.emplace_back([&, q] {
      auto plan = TwoDimPlan(1000 + 200 * q);
      auto want = Reference(plan);
      auto got = RunThroughCJoin(&pipeline, plan);
      if (got.ok() && got.value().CanonicalRows() == want.CanonicalRows()) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kQueries);
}

TEST_F(CJoinTest, AdmissionBeyondCapacityWaits) {
  CJoinOptions options;
  options.max_queries = 2;  // force waiting
  CJoinPipeline pipeline(db_->catalog(), "fact", Levels(), options,
                         db_->metrics());
  constexpr int kQueries = 6;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int q = 0; q < kQueries; ++q) {
    threads.emplace_back([&] {
      auto plan = OneDimPlan();
      auto got = RunThroughCJoin(&pipeline, plan);
      if (got.ok()) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kQueries);
  EXPECT_EQ(
      db_->metrics()->GetCounter(metrics::kCjoinQueriesCompleted)->Get(),
      kQueries);
}

TEST_F(CJoinTest, UnknownDimensionRejected) {
  CJoinPipeline pipeline(db_->catalog(), "fact",
                         {{"dim1", 1, 0}},  // no dim2 level
                         CJoinOptions{}, db_->metrics());
  auto plan = TwoDimPlan();
  auto got = RunThroughCJoin(&pipeline, plan);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CJoinTest, MetricsAccountForDroppedTuples) {
  auto before = db_->metrics()->Snapshot();
  {
    CJoinPipeline pipeline(db_->catalog(), "fact", Levels(), CJoinOptions{},
                           db_->metrics());
    auto plan = TwoDimPlan();
    ASSERT_TRUE(RunThroughCJoin(&pipeline, plan).ok());
  }
  auto delta = MetricsRegistry::Delta(before, db_->metrics()->Snapshot());
  EXPECT_GT(delta[metrics::kCjoinFactTuplesIn], 0);
  EXPECT_GT(delta[metrics::kCjoinTuplesDropped], 0);
  EXPECT_GT(delta[metrics::kCjoinBitmapAndOps], 0);
  EXPECT_EQ(delta[metrics::kCjoinQueriesAdmitted], 1);
  EXPECT_EQ(delta[metrics::kCjoinQueriesCompleted], 1);
}

}  // namespace
}  // namespace sharing
