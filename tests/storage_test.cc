// Unit tests for src/storage: pages, schema/tuples, disk manager, buffer
// pool, tables, circular shared scans.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "storage/buffer_pool.h"
#include "storage/circular_scan.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/tuple.h"
#include "test_util.h"

namespace sharing {
namespace {

// ---------------------------------------------------------------------------
// Schema / tuples
// ---------------------------------------------------------------------------

Schema FourColSchema() {
  return Schema({Column::Int64("a"), Column::Double("b"),
                 Column::DateCol("c"), Column::String("d", 10)});
}

TEST(SchemaTest, OffsetsArePacked) {
  Schema s = FourColSchema();
  EXPECT_EQ(s.row_width(), 8u + 8u + 4u + 10u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.offset(2), 16u);
  EXPECT_EQ(s.offset(3), 20u);
}

TEST(SchemaTest, ColumnIndexByName) {
  Schema s = FourColSchema();
  EXPECT_EQ(s.ColumnIndex("c").value(), 2u);
  EXPECT_FALSE(s.ColumnIndex("nope").ok());
}

TEST(SchemaTest, ProjectSelectsAndReorders) {
  Schema s = FourColSchema();
  Schema p = s.Project({3, 0});
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).name, "d");
  EXPECT_EQ(p.column(1).name, "a");
  EXPECT_EQ(p.row_width(), 18u);
}

TEST(SchemaTest, ConcatPrefixesCollidingNames) {
  Schema a({Column::Int64("k"), Column::Int64("x")});
  Schema b({Column::Int64("k"), Column::Int64("y")});
  Schema c = a.Concat(b);
  EXPECT_EQ(c.num_columns(), 4u);
  EXPECT_EQ(c.column(2).name, "r_k");
  EXPECT_EQ(c.column(3).name, "y");
}

TEST(TupleTest, WriteThenReadAllTypes) {
  Schema s = FourColSchema();
  std::vector<uint8_t> row(s.row_width());
  RowWriter w(row.data(), &s);
  w.SetInt64(0, -17)
      .SetDouble(1, 2.5)
      .SetDate(2, MakeDate(1995, 6, 17))
      .SetString(3, "hi");
  TupleRef t(row.data(), &s);
  EXPECT_EQ(t.GetInt64(0), -17);
  EXPECT_DOUBLE_EQ(t.GetDouble(1), 2.5);
  EXPECT_EQ(t.GetDate(2), MakeDate(1995, 6, 17));
  EXPECT_EQ(t.GetString(3), "hi");  // trailing pad trimmed
}

TEST(TupleTest, StringTruncatedToWidth) {
  Schema s({Column::String("s", 4)});
  std::vector<uint8_t> row(s.row_width());
  RowWriter(row.data(), &s).SetString(0, "abcdefgh");
  EXPECT_EQ(TupleRef(row.data(), &s).GetString(0), "abcd");
}

TEST(TupleTest, ToStringRendersRow) {
  Schema s({Column::Int64("a"), Column::String("b", 3)});
  std::vector<uint8_t> row(s.row_width());
  RowWriter(row.data(), &s).SetInt64(0, 5).SetString(1, "xy");
  EXPECT_EQ(TupleRef(row.data(), &s).ToString(), "(5, 'xy')");
}

// ---------------------------------------------------------------------------
// Page layout / RowPage
// ---------------------------------------------------------------------------

TEST(PageLayoutTest, InitAppendRead) {
  alignas(8) uint8_t frame[kPageBytes];
  page_layout::Init(frame, 16);
  EXPECT_TRUE(page_layout::Valid(frame));
  EXPECT_EQ(page_layout::RowCount(frame), 0u);

  uint8_t* slot = page_layout::AppendRow(frame, kPageBytes);
  ASSERT_NE(slot, nullptr);
  std::memset(slot, 0xAB, 16);
  EXPECT_EQ(page_layout::RowCount(frame), 1u);
  EXPECT_EQ(page_layout::RowAt(frame, 0)[0], 0xAB);
}

TEST(PageLayoutTest, AppendStopsAtCapacity) {
  alignas(8) uint8_t frame[kPageBytes];
  const uint32_t width = 1000;
  page_layout::Init(frame, width);
  uint32_t capacity = page_layout::Capacity(kPageBytes, width);
  for (uint32_t i = 0; i < capacity; ++i) {
    EXPECT_NE(page_layout::AppendRow(frame, kPageBytes), nullptr);
  }
  EXPECT_EQ(page_layout::AppendRow(frame, kPageBytes), nullptr);
}

TEST(RowPageTest, AppendAndIterate) {
  RowPage page(8, 64);
  EXPECT_EQ(page.capacity(), 8u);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(page.AppendRow(reinterpret_cast<const uint8_t*>(&i)));
  }
  EXPECT_TRUE(page.full());
  int64_t v;
  std::memcpy(&v, page.RowAt(7), 8);
  EXPECT_EQ(v, 7);
  int64_t extra = 9;
  EXPECT_FALSE(page.AppendRow(reinterpret_cast<const uint8_t*>(&extra)));
}

// ---------------------------------------------------------------------------
// DiskManager
// ---------------------------------------------------------------------------

TEST(DiskManagerTest, RoundTripInMemory) {
  MetricsRegistry metrics;
  DiskManager disk(DiskOptions{}, &metrics);
  PageId id = disk.AllocatePage();
  std::vector<uint8_t> out(kPageBytes, 0x5A);
  ASSERT_TRUE(disk.WritePage(id, out.data()).ok());
  std::vector<uint8_t> in(kPageBytes);
  ASSERT_TRUE(disk.ReadPage(id, in.data()).ok());
  EXPECT_EQ(in, out);
}

TEST(DiskManagerTest, ReadUnallocatedFails) {
  MetricsRegistry metrics;
  DiskManager disk(DiskOptions{}, &metrics);
  std::vector<uint8_t> buf(kPageBytes);
  EXPECT_EQ(disk.ReadPage(99, buf.data()).code(), StatusCode::kOutOfRange);
}

TEST(DiskManagerTest, FileBackedRoundTrip) {
  MetricsRegistry metrics;
  DiskOptions options;
  options.path = ::testing::TempDir() + "/sharing_disk_test.db";
  DiskManager disk(options, &metrics);
  PageId a = disk.AllocatePage();
  PageId b = disk.AllocatePage();
  std::vector<uint8_t> pa(kPageBytes, 1), pb(kPageBytes, 2);
  ASSERT_TRUE(disk.WritePage(a, pa.data()).ok());
  ASSERT_TRUE(disk.WritePage(b, pb.data()).ok());
  std::vector<uint8_t> in(kPageBytes);
  ASSERT_TRUE(disk.ReadPage(b, in.data()).ok());
  EXPECT_EQ(in[0], 2);
  ASSERT_TRUE(disk.ReadPage(a, in.data()).ok());
  EXPECT_EQ(in[0], 1);
}

TEST(DiskManagerTest, LatencyModelCharged) {
  MetricsRegistry metrics;
  DiskOptions options;
  options.read_latency_micros = 2000;
  DiskManager disk(options, &metrics);
  PageId id = disk.AllocatePage();
  std::vector<uint8_t> buf(kPageBytes);
  ASSERT_TRUE(disk.WritePage(id, buf.data()).ok());
  Stopwatch timer;
  ASSERT_TRUE(disk.ReadPage(id, buf.data()).ok());
  EXPECT_GE(timer.ElapsedMicros(), 1500);
}

TEST(DiskManagerTest, CountsReadsAndWrites) {
  MetricsRegistry metrics;
  DiskManager disk(DiskOptions{}, &metrics);
  PageId id = disk.AllocatePage();
  std::vector<uint8_t> buf(kPageBytes);
  ASSERT_TRUE(disk.WritePage(id, buf.data()).ok());
  ASSERT_TRUE(disk.ReadPage(id, buf.data()).ok());
  ASSERT_TRUE(disk.ReadPage(id, buf.data()).ok());
  EXPECT_EQ(metrics.GetCounter(metrics::kDiskPageReads)->Get(), 2);
  EXPECT_EQ(metrics.GetCounter(metrics::kDiskPageWrites)->Get(), 1);
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<DiskManager>(DiskOptions{}, &metrics_);
  }

  PageId NewFilledPage(BufferPool* pool, uint8_t fill) {
    PageId id;
    auto guard_or = pool->NewPage(/*row_width=*/8, &id);
    EXPECT_TRUE(guard_or.ok());
    uint8_t* slot =
        page_layout::AppendRow(guard_or.value().mutable_data(), kPageBytes);
    std::memset(slot, fill, 8);
    return id;
  }

  MetricsRegistry metrics_;
  std::unique_ptr<DiskManager> disk_;
};

TEST_F(BufferPoolTest, HitAfterMiss) {
  BufferPool pool(disk_.get(), 4, &metrics_);
  PageId id = NewFilledPage(&pool, 0x11);
  ASSERT_TRUE(pool.FlushAll().ok());
  {
    auto g = pool.FetchPage(id);
    ASSERT_TRUE(g.ok());  // still resident: hit
  }
  auto stats = pool.GetStats();
  EXPECT_EQ(stats.hits, 1);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  BufferPool pool(disk_.get(), 2, &metrics_);
  PageId a = NewFilledPage(&pool, 0xAA);
  // Fill remaining frames to force eviction of `a`.
  NewFilledPage(&pool, 0xBB);
  NewFilledPage(&pool, 0xCC);
  NewFilledPage(&pool, 0xDD);
  auto g = pool.FetchPage(a);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(page_layout::RowAt(g.value().data(), 0)[0], 0xAA);
  EXPECT_GT(pool.GetStats().evictions, 0);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(disk_.get(), 2, &metrics_);
  PageId a = NewFilledPage(&pool, 1);
  PageId b = NewFilledPage(&pool, 2);
  auto ga = pool.FetchPage(a);
  auto gb = pool.FetchPage(b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  // Both frames pinned: a third page cannot be brought in.
  PageId c;
  auto gc = pool.NewPage(8, &c);
  EXPECT_EQ(gc.status().code(), StatusCode::kUnavailable);
}

TEST_F(BufferPoolTest, ReleaseUnpins) {
  BufferPool pool(disk_.get(), 1, &metrics_);
  PageId a = NewFilledPage(&pool, 1);
  auto ga = pool.FetchPage(a);
  ASSERT_TRUE(ga.ok());
  ga.value().Release();
  PageId b;
  EXPECT_TRUE(pool.NewPage(8, &b).ok());
}

TEST_F(BufferPoolTest, ConcurrentFetchesOfSamePage) {
  BufferPool pool(disk_.get(), 8, &metrics_);
  PageId id = NewFilledPage(&pool, 0x7E);
  ASSERT_TRUE(pool.FlushAll().ok());

  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto g = pool.FetchPage(id);
        if (g.ok() && page_layout::RowAt(g.value().data(), 0)[0] == 0x7E) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), 8 * 200);
}

// ---------------------------------------------------------------------------
// Table / Catalog
// ---------------------------------------------------------------------------

TEST(TableTest, AppendSpansPages) {
  auto db = testing::MakeTestDatabase();
  // Row width 16 -> ~511 rows per 8KiB page; 2000 rows -> 4 pages.
  Table* table = testing::MakeSimpleTable(db.get(), "t", 2000);
  EXPECT_EQ(table->num_rows(), 2000u);
  EXPECT_EQ(table->num_pages(), 4u);
}

TEST(TableTest, RowsSurviveFlushAndReread) {
  auto db = testing::MakeTestDatabase();
  Table* table = testing::MakeSimpleTable(db.get(), "t", 600);
  int64_t sum = 0;
  for (std::size_t p = 0; p < table->num_pages(); ++p) {
    auto g = db->buffer_pool()->FetchPage(table->page_id(p));
    ASSERT_TRUE(g.ok());
    const uint8_t* frame = g.value().data();
    for (uint32_t i = 0; i < page_layout::RowCount(frame); ++i) {
      TupleRef row(page_layout::RowAt(frame, i), &table->schema());
      sum += row.GetInt64(0);
    }
  }
  EXPECT_EQ(sum, 600 * 599 / 2);
}

TEST(CatalogTest, DuplicateNameRejected) {
  auto db = testing::MakeTestDatabase();
  testing::MakeSimpleTable(db.get(), "t", 10);
  Schema s({Column::Int64("x")});
  auto dup = db->catalog()->CreateTable("t", s, db->buffer_pool());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, LookupByName) {
  auto db = testing::MakeTestDatabase();
  testing::MakeSimpleTable(db.get(), "alpha", 10);
  EXPECT_TRUE(db->catalog()->GetTable("alpha").ok());
  EXPECT_EQ(db->catalog()->GetTable("beta").status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// CircularScanGroup
// ---------------------------------------------------------------------------

TEST(CircularScanTest, SingleConsumerSeesWholeTableOnce) {
  auto db = testing::MakeTestDatabase();
  Table* table = testing::MakeSimpleTable(db.get(), "t", 2000);
  CircularScanGroup group(table, 4, db->metrics());
  auto ticket = group.Attach();
  std::set<uint64_t> positions;
  while (ScanPageRef page = ticket->Next()) {
    EXPECT_TRUE(positions.insert(page->position).second)
        << "page delivered twice";
  }
  EXPECT_EQ(positions.size(), table->num_pages());
}

TEST(CircularScanTest, ConcurrentConsumersShareOneStream) {
  auto db = testing::MakeTestDatabase();
  Table* table = testing::MakeSimpleTable(db.get(), "t", 4000);
  auto before = db->metrics()->Snapshot();
  {
    CircularScanGroup group(table, 4, db->metrics());
    constexpr int kScanners = 4;
    std::vector<std::thread> threads;
    std::atomic<int> total_pages{0};
    for (int s = 0; s < kScanners; ++s) {
      threads.emplace_back([&] {
        auto ticket = group.Attach();
        int n = 0;
        while (ticket->Next()) ++n;
        total_pages.fetch_add(n);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(total_pages.load(),
              kScanners * static_cast<int>(table->num_pages()));
  }
  auto delta = MetricsRegistry::Delta(before, db->metrics()->Snapshot());
  // The producer read each page roughly once per cycle, NOT once per
  // scanner: unshared scans would read exactly 4x the table. The bound
  // leaves room for a scanner or two attaching a cycle late under CPU
  // contention (this suite runs under ctest -j), which costs an extra
  // producer cycle each without breaking the sharing property.
  EXPECT_LT(delta[metrics::kScanPagesRead],
            3 * static_cast<int64_t>(table->num_pages()));
  EXPECT_GE(delta[metrics::kScanSharedAttach], 1);
}

TEST(CircularScanTest, MidStreamAttachWrapsAround) {
  auto db = testing::MakeTestDatabase();
  Table* table = testing::MakeSimpleTable(db.get(), "t", 3000);
  CircularScanGroup group(table, 2, db->metrics());

  auto first = group.Attach();
  // Consume half the table on the first ticket.
  for (std::size_t i = 0; i < table->num_pages() / 2; ++i) {
    ASSERT_NE(first->Next(), nullptr);
  }
  // Second scanner attaches mid-cycle; it must still see every page once.
  auto second = group.Attach();
  std::set<uint64_t> seen;
  std::thread drain_first([&] {
    while (first->Next()) {
    }
  });
  while (ScanPageRef page = second->Next()) {
    EXPECT_TRUE(seen.insert(page->position).second);
  }
  drain_first.join();
  EXPECT_EQ(seen.size(), table->num_pages());
}

TEST(CircularScanTest, CancelDetachesWithoutBlockingOthers) {
  auto db = testing::MakeTestDatabase();
  Table* table = testing::MakeSimpleTable(db.get(), "t", 3000);
  CircularScanGroup group(table, 2, db->metrics());

  auto quitter = group.Attach();
  auto stayer = group.Attach();
  ASSERT_NE(quitter->Next(), nullptr);
  quitter->Cancel();
  EXPECT_EQ(quitter->Next(), nullptr);

  int n = 0;
  while (stayer->Next()) ++n;
  EXPECT_EQ(n, static_cast<int>(table->num_pages()));
}

TEST(CircularScanTest, EmptyTableYieldsNothing) {
  auto db = testing::MakeTestDatabase();
  Schema s({Column::Int64("x")});
  auto table_or = db->catalog()->CreateTable("empty", s, db->buffer_pool());
  ASSERT_TRUE(table_or.ok());
  CircularScanGroup group(table_or.value(), 2, db->metrics());
  auto ticket = group.Attach();
  EXPECT_EQ(ticket->Next(), nullptr);
}

}  // namespace
}  // namespace sharing
