// Tests for the unified SharingChannel transport: push/pull equivalence
// through one interface, the widened pull attach window, reference-counted
// SPL page reclamation (bounded memory), and producer unblocking when all
// readers cancel.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "qpipe/batch_pipe.h"
#include "qpipe/sharing_channel.h"

namespace sharing {
namespace {

PageRef MakePage(int64_t tag, std::size_t rows = 4) {
  auto page = std::make_shared<RowPage>(sizeof(int64_t), 64);
  for (std::size_t i = 0; i < rows; ++i) {
    int64_t v = tag * 100 + static_cast<int64_t>(i);
    page->AppendRow(reinterpret_cast<const uint8_t*>(&v));
  }
  return page;
}

int64_t FirstValue(const PageRef& page) {
  int64_t v;
  std::memcpy(&v, page->RowAt(0), sizeof(v));
  return v;
}

class SharingChannelTest : public ::testing::TestWithParam<SpMode> {
 protected:
  SharingChannelRef MakeChannel(
      std::function<void(const SharingChannel::Stats&)> on_close = {}) {
    SharingChannelOptions options;
    options.metrics = &metrics_;
    options.fifo_capacity = 16;
    options.on_close = std::move(on_close);
    return MakeSharingChannel(GetParam(), std::move(options));
  }

  MetricsRegistry metrics_;
};

// Both transports must deliver the identical ordered stream to every
// reader attached before production starts.
TEST_P(SharingChannelTest, AllReadersSeeIdenticalStream) {
  auto channel = MakeChannel();
  constexpr int kReaders = 3;
  constexpr int kPages = 200;

  std::vector<PageSourceRef> readers;
  for (int r = 0; r < kReaders; ++r) {
    auto reader = channel->AttachReader();
    ASSERT_NE(reader, nullptr);
    readers.push_back(std::move(reader));
  }

  std::thread producer([&] {
    for (int i = 0; i < kPages; ++i) channel->Put(MakePage(i, 1));
    channel->Close(Status::OK());
  });

  std::vector<std::thread> consumers;
  std::atomic<int> failures{0};
  for (int r = 0; r < kReaders; ++r) {
    consumers.emplace_back([&, r] {
      int64_t expect = 0;
      while (PageRef page = readers[r]->Next()) {
        if (FirstValue(page) != expect * 100) failures.fetch_add(1);
        ++expect;
      }
      if (expect != kPages) failures.fetch_add(1);
      if (!readers[r]->FinalStatus().ok()) failures.fetch_add(1);
    });
  }
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(SharingChannelTest, CloseWithErrorReachesEveryReader) {
  auto channel = MakeChannel();
  auto r1 = channel->AttachReader();
  auto r2 = channel->AttachReader();
  channel->Put(MakePage(1));
  channel->Close(Status::Aborted("host failed"));
  while (r1->Next()) {
  }
  while (r2->Next()) {
  }
  EXPECT_EQ(r1->FinalStatus().code(), StatusCode::kAborted);
  EXPECT_EQ(r2->FinalStatus().code(), StatusCode::kAborted);
}

TEST_P(SharingChannelTest, AllReadersCancellingStopsProducer) {
  SharingChannelOptions options;
  options.metrics = &metrics_;
  options.fifo_capacity = 1;  // tight, so a push producer hits backpressure
  auto channel = MakeSharingChannel(GetParam(), std::move(options));

  auto reader = channel->AttachReader();
  ASSERT_NE(reader, nullptr);

  std::atomic<bool> producer_stopped{false};
  std::thread producer([&] {
    bool alive = true;
    for (int i = 0; i < 100000 && alive; ++i) {
      alive = channel->Put(MakePage(i, 1));
    }
    producer_stopped.store(true);
    channel->Close(Status::OK());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  reader->CancelConsumer();
  producer.join();
  EXPECT_TRUE(producer_stopped.load());
}

TEST_P(SharingChannelTest, OnCloseReportsSessionStats) {
  SharingChannel::Stats closing;
  std::atomic<int> close_calls{0};
  auto channel = MakeChannel([&](const SharingChannel::Stats& stats) {
    closing = stats;
    close_calls.fetch_add(1);
  });
  auto host = channel->AttachReader();
  auto satellite = channel->AttachReader();
  channel->Put(MakePage(1));
  channel->Put(MakePage(2));
  channel->Close(Status::OK());
  channel->Close(Status::OK());  // idempotent: the hook must fire once
  while (host->Next()) {
  }
  while (satellite->Next()) {
  }
  EXPECT_EQ(close_calls.load(), 1);
  EXPECT_EQ(closing.readers_attached, 2u);
  EXPECT_EQ(closing.pages_produced, 2u);
  EXPECT_FALSE(closing.attach_window_open);
}

// Batched producer + batched consumers must deliver the identical
// ordered stream — the amortized hot path cannot reorder, drop, or
// duplicate (exercises SharedPagesList::AppendBatch + SplReader::
// NextBatch on pull, FifoBuffer::PushBatch/PopBatch on push).
TEST_P(SharingChannelTest, BatchedPutAndBatchedReadPreserveTheStream) {
  auto channel = MakeChannel();
  constexpr int kReaders = 3;
  constexpr int kPages = 200;
  constexpr std::size_t kBatch = 8;

  std::vector<PageSourceRef> readers;
  for (int r = 0; r < kReaders; ++r) {
    auto reader = channel->AttachReader();
    ASSERT_NE(reader, nullptr);
    readers.push_back(std::move(reader));
  }

  std::thread producer([&] {
    std::vector<PageRef> batch;
    for (int i = 0; i < kPages; ++i) {
      batch.push_back(MakePage(i, 1));
      if (batch.size() == kBatch) {
        ASSERT_TRUE(channel->PutBatch(std::move(batch)));
        batch = {};
      }
    }
    if (!batch.empty()) ASSERT_TRUE(channel->PutBatch(std::move(batch)));
    channel->Close(Status::OK());
  });

  std::vector<std::thread> consumers;
  std::atomic<int> failures{0};
  for (int r = 0; r < kReaders; ++r) {
    consumers.emplace_back([&, r] {
      int64_t expect = 0;
      std::vector<PageRef> got;
      for (;;) {
        got.clear();
        // Deliberately a different batch size than the producer's: the
        // reader's view must be independent of publication batching.
        std::size_t n = readers[r]->NextBatch(5, &got);
        if (n == 0) break;
        if (n != got.size()) failures.fetch_add(1);
        for (const PageRef& page : got) {
          if (FirstValue(page) != expect * 100) failures.fetch_add(1);
          ++expect;
        }
      }
      if (expect != kPages) failures.fetch_add(1);
      if (!readers[r]->FinalStatus().ok()) failures.fetch_add(1);
      if (readers[r]->PagesDelivered() != kPages) failures.fetch_add(1);
    });
  }
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(PushAndPull, SharingChannelTest,
                         ::testing::Values(SpMode::kPush, SpMode::kPull),
                         [](const auto& info) {
                           return std::string(SpModeToString(info.param));
                         });

// ---------------------------------------------------------------------------
// Model-specific window semantics
// ---------------------------------------------------------------------------

TEST(PushChannelTest, AttachWindowClosesAtFirstEmission) {
  MetricsRegistry metrics;
  SharingChannelOptions options;
  options.metrics = &metrics;
  auto channel = MakeSharingChannel(SpMode::kPush, std::move(options));
  auto host = channel->AttachReader();
  ASSERT_NE(host, nullptr);
  channel->Put(MakePage(1));
  EXPECT_EQ(channel->AttachReader(), nullptr)
      << "a late push satellite would miss the already-emitted page";
  channel->Close(Status::OK());
}

TEST(PushChannelTest, SatellitesAreFedCopies) {
  MetricsRegistry metrics;
  SharingChannelOptions options;
  options.metrics = &metrics;
  auto channel = MakeSharingChannel(SpMode::kPush, std::move(options));
  auto host = channel->AttachReader();
  auto satellite = channel->AttachReader();
  PageRef original = MakePage(7);
  const RowPage* raw = original.get();
  channel->Put(std::move(original));
  channel->Close(Status::OK());
  EXPECT_EQ(host->Next().get(), raw);       // host reads the original
  EXPECT_NE(satellite->Next().get(), raw);  // satellite reads a deep copy
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesCopied)->Get(), 1);
}

TEST(PullChannelTest, MidProductionAttachSeesAllPages) {
  MetricsRegistry metrics;
  SharingChannelOptions options;
  options.metrics = &metrics;
  auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));
  auto host = channel->AttachReader();
  channel->Put(MakePage(1));
  channel->Put(MakePage(2));
  // The widened pull window: attach mid-production, observe full history.
  auto late = channel->AttachReader();
  ASSERT_NE(late, nullptr);
  channel->Put(MakePage(3));
  channel->Close(Status::OK());

  int host_count = 0, late_count = 0;
  int64_t first = -1;
  while (PageRef page = host->Next()) ++host_count;
  while (PageRef page = late->Next()) {
    if (first < 0) first = FirstValue(page);
    ++late_count;
  }
  EXPECT_EQ(host_count, 3);
  EXPECT_EQ(late_count, 3);
  EXPECT_EQ(first, 100);  // history starts at the first page
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesCopied)->Get(), 0)
      << "pull-model SP must not copy pages";
}

TEST(PullChannelTest, CloseSealsAttachWindow) {
  MetricsRegistry metrics;
  SharingChannelOptions options;
  options.metrics = &metrics;
  auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));
  auto host = channel->AttachReader();
  channel->Put(MakePage(1));
  channel->Close(Status::OK());
  EXPECT_EQ(channel->AttachReader(), nullptr)
      << "a closed session is deregistered; late queries must re-execute";
}

// ---------------------------------------------------------------------------
// Bounded memory: reference-counted SPL reclamation
// ---------------------------------------------------------------------------

TEST(PullChannelTest, PagesReclaimedAfterAllReadersPass) {
  MetricsRegistry metrics;
  Gauge* retained = metrics.GetGauge(metrics::kSpPagesRetained);
  SharingChannelOptions options;
  options.metrics = &metrics;
  auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));

  constexpr int kPages = 500;
  auto fast = channel->AttachReader();
  auto slow = channel->AttachReader();
  for (int i = 0; i < kPages; ++i) channel->Put(MakePage(i, 1));
  EXPECT_EQ(retained->Get(), kPages)
      << "while the attach window is open every page must stay retained";
  channel->Close(Status::OK());  // seals the window, arming reclamation

  // The fast reader alone cannot free anything: the slow reader still
  // needs the history.
  while (fast->Next()) {
  }
  EXPECT_EQ(retained->Get(), kPages);

  // As the slow reader advances, pages behind it are freed incrementally.
  for (int i = 0; i < kPages / 2; ++i) slow->Next();
  EXPECT_LE(retained->Get(), kPages - kPages / 2 + 1);

  while (slow->Next()) {
  }
  EXPECT_EQ(retained->Get(), 0)
      << "pages_retained must return to zero once all readers drain";
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesReclaimed)->Get(), kPages);
  EXPECT_EQ(retained->HighWaterMark(), kPages);
}

TEST(PullChannelTest, ReaderCancelReleasesItsHold) {
  MetricsRegistry metrics;
  Gauge* retained = metrics.GetGauge(metrics::kSpPagesRetained);
  SharingChannelOptions options;
  options.metrics = &metrics;
  auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));

  auto done = channel->AttachReader();
  auto stuck = channel->AttachReader();
  for (int i = 0; i < 100; ++i) channel->Put(MakePage(i, 1));
  channel->Close(Status::OK());
  while (done->Next()) {
  }
  EXPECT_EQ(retained->Get(), 100) << "the stuck reader pins the history";
  stuck->CancelConsumer();
  EXPECT_EQ(retained->Get(), 0)
      << "cancelling the last laggard frees everything";
}

TEST(PullChannelTest, ConcurrentDrainReclaimsEverything) {
  MetricsRegistry metrics;
  Gauge* retained = metrics.GetGauge(metrics::kSpPagesRetained);
  SharingChannelOptions options;
  options.metrics = &metrics;
  auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));

  constexpr int kReaders = 6;
  constexpr int kPages = 2000;
  std::vector<PageSourceRef> readers;
  for (int r = 0; r < kReaders; ++r) readers.push_back(channel->AttachReader());

  std::thread producer([&] {
    for (int i = 0; i < kPages; ++i) channel->Put(MakePage(i, 1));
    channel->Close(Status::OK());
  });
  std::vector<std::thread> consumers;
  std::atomic<int> failures{0};
  for (int r = 0; r < kReaders; ++r) {
    consumers.emplace_back([&, r] {
      int count = 0;
      while (readers[r]->Next()) ++count;
      if (count != kPages) failures.fetch_add(1);
    });
  }
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(retained->Get(), 0);
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesReclaimed)->Get(), kPages);
}

// ---------------------------------------------------------------------------
// Spill tier: the SpBudgetGovernor bounds in-memory retention; overflow
// migrates to the governor's temp store and faults back bit-exactly.
// ---------------------------------------------------------------------------

std::shared_ptr<SpBudgetGovernor> MakeGovernor(MetricsRegistry* metrics,
                                               std::size_t budget) {
  SpBudgetGovernor::Options gopts;
  gopts.budget_pages = budget;
  gopts.metrics = metrics;
  return SpBudgetGovernor::Create(std::move(gopts));
}

SharingChannelRef MakePullChannel(MetricsRegistry* metrics,
                                  std::shared_ptr<SpBudgetGovernor> governor) {
  SharingChannelOptions options;
  options.metrics = metrics;
  options.governor = std::move(governor);
  return MakeSharingChannel(SpMode::kPull, std::move(options));
}

void ExpectPageBitExact(const PageRef& page, int64_t tag, std::size_t rows) {
  ASSERT_NE(page, nullptr);
  PageRef want = MakePage(tag, rows);
  ASSERT_EQ(page->row_width(), want->row_width());
  ASSERT_EQ(page->row_count(), want->row_count());
  EXPECT_EQ(page->capacity(), want->capacity())
      << "fault-back must reconstruct the page exactly, capacity included";
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(0,
              std::memcmp(page->RowAt(r), want->RowAt(r), page->row_width()))
        << "row " << r << " of page " << tag;
  }
}

TEST(SpillChannelTest, SlowReaderSpillsAndFaultsBackBitExact) {
  MetricsRegistry metrics;
  Gauge* retained = metrics.GetGauge(metrics::kSpPagesRetained);
  Gauge* spill_bytes = metrics.GetGauge(metrics::kSpSpillBytes);
  constexpr std::size_t kBudget = 8;
  constexpr int kPages = 100;
  auto governor = MakeGovernor(&metrics, kBudget);
  auto channel = MakePullChannel(&metrics, governor);

  auto host = channel->AttachReader();
  auto slow = channel->AttachReader();

  // The host keeps pace with production; the slow satellite is stalled at
  // page 0 and pins the whole history — exactly the case the budget
  // bounds.
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(channel->Put(MakePage(i)));
    ExpectPageBitExact(host->Next(), i, 4);
    ASSERT_LE(retained->Get(), static_cast<int64_t>(kBudget))
        << "in-memory retention exceeded the budget at page " << i;
  }
  channel->Close(Status::OK());
  EXPECT_EQ(host->Next(), nullptr);

  EXPECT_GT(metrics.GetCounter(metrics::kSpPagesSpilled)->Get(),
            static_cast<int64_t>(kPages - 2 * kBudget))
      << "most of the stalled window must have been migrated to disk";
  EXPECT_GT(spill_bytes->Get(), 0);

  // The stalled reader now drains: spilled pages fault back bit-exact.
  for (int i = 0; i < kPages; ++i) {
    PageRef page = slow->Next();
    ExpectPageBitExact(page, i, 4);
  }
  EXPECT_EQ(slow->Next(), nullptr);
  EXPECT_TRUE(slow->FinalStatus().ok());
  EXPECT_GT(metrics.GetCounter(metrics::kSpUnspillReads)->Get(), 0);

  // Reclamation-after-drain: both tiers return to zero.
  EXPECT_EQ(retained->Get(), 0);
  EXPECT_EQ(spill_bytes->Get(), 0);
  EXPECT_EQ(governor->InMemoryPages(), 0u);
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesReclaimed)->Get(), kPages);
}

TEST(SpillChannelTest, BudgetHoldsAcrossConcurrentSessions) {
  MetricsRegistry metrics;
  Gauge* retained = metrics.GetGauge(metrics::kSpPagesRetained);
  Gauge* spill_bytes = metrics.GetGauge(metrics::kSpSpillBytes);
  constexpr std::size_t kBudget = 8;
  constexpr int kPages = 50;
  // One governor, two concurrent sharing sessions: the budget is global,
  // not per channel.
  auto governor = MakeGovernor(&metrics, kBudget);
  auto a = MakePullChannel(&metrics, governor);
  auto b = MakePullChannel(&metrics, governor);

  auto host_a = a->AttachReader();
  auto host_b = b->AttachReader();
  auto slow_a = a->AttachReader();
  auto slow_b = b->AttachReader();

  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(a->Put(MakePage(i)));
    ASSERT_TRUE(b->Put(MakePage(1000 + i)));
    ExpectPageBitExact(host_a->Next(), i, 4);
    ExpectPageBitExact(host_b->Next(), 1000 + i, 4);
    ASSERT_LE(retained->Get(), static_cast<int64_t>(kBudget))
        << "combined in-memory retention exceeded the budget at page " << i;
  }
  a->Close(Status::OK());
  b->Close(Status::OK());

  for (int i = 0; i < kPages; ++i) {
    ExpectPageBitExact(slow_a->Next(), i, 4);
    ExpectPageBitExact(slow_b->Next(), 1000 + i, 4);
  }
  EXPECT_EQ(slow_a->Next(), nullptr);
  EXPECT_EQ(slow_b->Next(), nullptr);
  EXPECT_EQ(retained->Get(), 0);
  EXPECT_EQ(spill_bytes->Get(), 0);
  EXPECT_EQ(governor->InMemoryPages(), 0u);
}

TEST(SpillChannelTest, CancelledReaderFreesSpilledPagesUnread) {
  MetricsRegistry metrics;
  Gauge* retained = metrics.GetGauge(metrics::kSpPagesRetained);
  Gauge* spill_bytes = metrics.GetGauge(metrics::kSpSpillBytes);
  auto governor = MakeGovernor(&metrics, /*budget=*/4);
  auto channel = MakePullChannel(&metrics, governor);

  auto host = channel->AttachReader();
  auto stuck = channel->AttachReader();
  constexpr int kPages = 64;
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(channel->Put(MakePage(i)));
    ASSERT_NE(host->Next(), nullptr);
  }
  channel->Close(Status::OK());
  EXPECT_EQ(host->Next(), nullptr);
  EXPECT_GT(spill_bytes->Get(), 0) << "the stuck reader forced a spill";

  // The stuck reader walks away without ever reading: its spilled chains
  // must be deleted, not faulted back.
  stuck->CancelConsumer();
  EXPECT_EQ(retained->Get(), 0);
  EXPECT_EQ(spill_bytes->Get(), 0);
  EXPECT_EQ(metrics.GetCounter(metrics::kSpUnspillReads)->Get(), 0)
      << "reclaimed spill chains are freed unread";
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesReclaimed)->Get(), kPages);
}

TEST(SpillChannelTest, RebalanceShedsIdleChannelBeforeActiveUnreadTail) {
  MetricsRegistry metrics;
  Gauge* retained = metrics.GetGauge(metrics::kSpPagesRetained);
  constexpr std::size_t kBudget = 8;
  auto governor = MakeGovernor(&metrics, kBudget);
  auto idle = MakePullChannel(&metrics, governor);
  auto active = MakePullChannel(&metrics, governor);

  // Idle session: its host drained everything, but the open attach
  // window keeps the history resident — filling the budget exactly.
  auto idle_host = idle->AttachReader();
  for (int i = 0; i < static_cast<int>(kBudget); ++i) {
    ASSERT_TRUE(idle->Put(MakePage(i)));
    ASSERT_NE(idle_host->Next(), nullptr);
  }
  EXPECT_EQ(retained->Get(), static_cast<int64_t>(kBudget));
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesSpilled)->Get(), 0);

  // Active session: produce an unread tail. The governor must shed the
  // idle channel's drained history, not make the active channel
  // spill-and-refault the pages it is about to serve.
  auto active_host = active->AttachReader();
  for (int i = 0; i < static_cast<int>(kBudget); ++i) {
    ASSERT_TRUE(active->Put(MakePage(100 + i)));
    ASSERT_LE(retained->Get(), static_cast<int64_t>(kBudget));
  }
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesSpilled)->Get(),
            static_cast<int64_t>(kBudget))
      << "exactly the idle channel's history must have spilled";
  active->Close(Status::OK());
  for (int i = 0; i < static_cast<int>(kBudget); ++i) {
    ExpectPageBitExact(active_host->Next(), 100 + i, 4);
  }
  EXPECT_EQ(active_host->Next(), nullptr);
  EXPECT_EQ(metrics.GetCounter(metrics::kSpUnspillReads)->Get(), 0)
      << "the active channel must serve its own production from RAM";

  // The idle session's spilled history still serves a late attacher.
  auto late = idle->AttachReader();
  ASSERT_NE(late, nullptr);
  idle->Close(Status::OK());
  for (int i = 0; i < static_cast<int>(kBudget); ++i) {
    ExpectPageBitExact(late->Next(), i, 4);
  }
  EXPECT_EQ(late->Next(), nullptr);
  EXPECT_EQ(retained->Get(), 0);
  EXPECT_EQ(metrics.GetGauge(metrics::kSpSpillBytes)->Get(), 0);
}

TEST(SpillChannelTest, UnreadFallbackShedsIdleChannelFirst) {
  MetricsRegistry metrics;
  Gauge* retained = metrics.GetGauge(metrics::kSpPagesRetained);
  constexpr std::size_t kBudget = 8;
  auto governor = MakeGovernor(&metrics, kBudget);
  auto idle = MakePullChannel(&metrics, governor);
  auto active = MakePullChannel(&metrics, governor);

  // Idle session: unread production exactly at the budget (submitted but
  // not yet collected — its reader arrives later).
  auto idle_reader = idle->AttachReader();
  for (int i = 0; i < static_cast<int>(kBudget); ++i) {
    ASSERT_TRUE(idle->Put(MakePage(i)));
  }
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesSpilled)->Get(), 0);

  // Active session: nothing is consumed anywhere, so the unread
  // fallback applies — it must shed the idle channel's pages (read
  // later) before the active channel's fresh ones (read next).
  auto active_host = active->AttachReader();
  for (int i = 0; i < static_cast<int>(kBudget); ++i) {
    ASSERT_TRUE(active->Put(MakePage(100 + i)));
    ASSERT_LE(retained->Get(), static_cast<int64_t>(kBudget));
  }
  active->Close(Status::OK());
  for (int i = 0; i < static_cast<int>(kBudget); ++i) {
    ExpectPageBitExact(active_host->Next(), 100 + i, 4);
  }
  EXPECT_EQ(active_host->Next(), nullptr);
  EXPECT_EQ(metrics.GetCounter(metrics::kSpUnspillReads)->Get(), 0)
      << "the active producer must not spill-and-refault its own pages";

  // The idle session's reader finally arrives and faults its history.
  idle->Close(Status::OK());
  for (int i = 0; i < static_cast<int>(kBudget); ++i) {
    ExpectPageBitExact(idle_reader->Next(), i, 4);
  }
  EXPECT_EQ(idle_reader->Next(), nullptr);
  EXPECT_EQ(retained->Get(), 0);
  EXPECT_EQ(metrics.GetGauge(metrics::kSpSpillBytes)->Get(), 0);
}

TEST(SpillChannelTest, MidProductionAttachReadsSpilledHistory) {
  MetricsRegistry metrics;
  auto governor = MakeGovernor(&metrics, /*budget=*/4);
  auto channel = MakePullChannel(&metrics, governor);

  auto host = channel->AttachReader();
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(channel->Put(MakePage(i)));
    ASSERT_NE(host->Next(), nullptr);
  }
  // The widened pull window survives the spill tier: a late attacher is
  // served the spilled history via fault-back.
  auto late = channel->AttachReader();
  ASSERT_NE(late, nullptr);
  for (int i = 32; i < 40; ++i) {
    ASSERT_TRUE(channel->Put(MakePage(i)));
    ASSERT_NE(host->Next(), nullptr);
  }
  channel->Close(Status::OK());
  for (int i = 0; i < 40; ++i) {
    ExpectPageBitExact(late->Next(), i, 4);
  }
  EXPECT_EQ(late->Next(), nullptr);
  EXPECT_GT(metrics.GetCounter(metrics::kSpUnspillReads)->Get(), 0);
}

TEST(SpillChannelTest, ConcurrentSpilledDrainIsBitExact) {
  MetricsRegistry metrics;
  Gauge* retained = metrics.GetGauge(metrics::kSpPagesRetained);
  Gauge* spill_bytes = metrics.GetGauge(metrics::kSpSpillBytes);
  constexpr std::size_t kBudget = 16;
  constexpr int kReaders = 4;
  constexpr int kPages = 400;
  auto governor = MakeGovernor(&metrics, kBudget);
  auto channel = MakePullChannel(&metrics, governor);

  std::vector<PageSourceRef> readers;
  for (int r = 0; r < kReaders; ++r) readers.push_back(channel->AttachReader());

  std::thread producer([&] {
    for (int i = 0; i < kPages; ++i) channel->Put(MakePage(i, 2));
    channel->Close(Status::OK());
  });
  std::vector<std::thread> consumers;
  std::atomic<int> failures{0};
  for (int r = 0; r < kReaders; ++r) {
    consumers.emplace_back([&, r] {
      int64_t expect = 0;
      while (PageRef page = readers[r]->Next()) {
        if (page->row_count() != 2 || FirstValue(page) != expect * 100) {
          failures.fetch_add(1);
        }
        ++expect;
        if (r == 0) {
          // One deliberately slow reader so production outruns
          // consumption and the budget forces spills.
          std::this_thread::yield();
        }
      }
      if (expect != kPages) failures.fetch_add(1);
      if (!readers[r]->FinalStatus().ok()) failures.fetch_add(1);
    });
  }
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(retained->Get(), 0);
  EXPECT_EQ(spill_bytes->Get(), 0);
  EXPECT_EQ(governor->InMemoryPages(), 0u);
}

// ---------------------------------------------------------------------------
// SPL hot-path concurrency: the lock-free publication protocol, per-reader
// parking, and batched cursors under adversarial interleavings. These are
// the suites ci/verify.sh runs under ThreadSanitizer.
// ---------------------------------------------------------------------------

// Attach mid-production, drain under spill pressure, cancel mid-batch —
// all at once, repeatedly. Every surviving reader must observe a correct
// prefix-free stream (the full result), cancelled readers a prefix, and
// both memory tiers must return to zero.
TEST(SplContentionTest, ConcurrentAttachDrainCancelStress) {
  constexpr int kIterations = 8;
  constexpr int kPages = 400;
  constexpr std::size_t kBudget = 16;
  for (int iter = 0; iter < kIterations; ++iter) {
    MetricsRegistry metrics;
    Gauge* retained = metrics.GetGauge(metrics::kSpPagesRetained);
    Gauge* spill_bytes = metrics.GetGauge(metrics::kSpSpillBytes);
    auto governor = MakeGovernor(&metrics, kBudget);
    auto channel = MakePullChannel(&metrics, governor);

    std::atomic<int> failures{0};
    std::atomic<bool> window_open{true};

    // A batched drain loop shared by every consumer flavor; returns the
    // pages it saw (validating order), -1 on a corruption.
    auto drain = [&](PageSourceRef reader, int cancel_after) -> int {
      int64_t expect = -1;
      std::vector<PageRef> got;
      int count = 0;
      for (;;) {
        got.clear();
        std::size_t n = reader->NextBatch(7, &got);
        if (n == 0) break;
        for (const PageRef& page : got) {
          int64_t value = FirstValue(page) / 100;
          if (expect < 0) expect = value;  // late attachers still start at 0
          if (value != expect) return -1;
          ++expect;
          ++count;
        }
        if (cancel_after > 0 && count >= cancel_after) {
          reader->CancelConsumer();  // cancel mid-batch-stream
          break;
        }
      }
      return count;
    };

    std::vector<std::thread> threads;
    // Two steady readers attached before production.
    for (int r = 0; r < 2; ++r) {
      auto reader = channel->AttachReader();
      ASSERT_NE(reader, nullptr);
      threads.emplace_back([&, reader] {
        int count = drain(reader, 0);
        if (count != kPages || !reader->FinalStatus().ok()) {
          failures.fetch_add(1);
        }
      });
    }
    // One reader cancels mid-drain.
    {
      auto reader = channel->AttachReader();
      ASSERT_NE(reader, nullptr);
      threads.emplace_back([&, reader] {
        if (drain(reader, kPages / 4) < 0) failures.fetch_add(1);
      });
    }
    // Late attachers arrive while the producer runs; whoever attaches
    // before the seal must still see the FULL history (possibly from the
    // spill tier).
    for (int r = 0; r < 3; ++r) {
      threads.emplace_back([&] {
        while (window_open.load()) {
          auto reader = channel->AttachReader();
          if (reader == nullptr) return;  // sealed: valid outcome
          int count = drain(reader, 0);
          if (count < 0) failures.fetch_add(1);
          if (count >= 0 && reader->FinalStatus().ok() && count != kPages) {
            failures.fetch_add(1);  // un-cancelled reader missed history
          }
          return;
        }
      });
    }

    std::thread producer([&] {
      std::vector<PageRef> batch;
      for (int i = 0; i < kPages; ++i) {
        batch.push_back(MakePage(i, 1));
        if (batch.size() == 4) {
          channel->PutBatch(std::move(batch));
          batch = {};
        }
      }
      if (!batch.empty()) channel->PutBatch(std::move(batch));
      channel->Close(Status::OK());
      window_open.store(false);
    });

    producer.join();
    for (auto& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0) << "iteration " << iter;
    EXPECT_EQ(retained->Get(), 0);
    EXPECT_EQ(spill_bytes->Get(), 0);
    EXPECT_EQ(governor->InMemoryPages(), 0u);
  }
}

// The lost-wakeup race the per-reader parking protocol must exclude: a
// reader parks at the frontier at the same instant the producer seals and
// closes. A lost wakeup hangs this test (ctest's timeout fails it); run
// many iterations to sample the interleaving space.
TEST(SplContentionTest, CloseRacingParkingReaderNeverLosesTheWakeup) {
  constexpr int kIterations = 300;
  for (int iter = 0; iter < kIterations; ++iter) {
    MetricsRegistry metrics;
    SharingChannelOptions options;
    options.metrics = &metrics;
    auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));
    auto fast = channel->AttachReader();
    auto slow = channel->AttachReader();

    std::atomic<int> consumed{0};
    std::thread reader_a([&] {
      while (fast->Next() != nullptr) consumed.fetch_add(1);
    });
    std::thread reader_b([&] {
      while (slow->Next() != nullptr) consumed.fetch_add(1);
    });
    // A couple of pages, then an immediate seal+close: the readers are
    // either mid-drain, spinning, or parking right as closed_ flips.
    channel->Put(MakePage(iter, 1));
    channel->Put(MakePage(iter + 1, 1));
    channel->Close(Status::OK());
    reader_a.join();  // hangs here iff a wakeup was lost
    reader_b.join();
    EXPECT_EQ(consumed.load(), 4);
    EXPECT_TRUE(fast->FinalStatus().ok());
    EXPECT_TRUE(slow->FinalStatus().ok());
  }
}

// Producer-close wake semantics with a reader ALREADY parked: the close
// must reach a reader that went to sleep long before it.
TEST(SplContentionTest, ParkedReaderWakesOnCloseAndOnCancel) {
  MetricsRegistry metrics;
  {
    SharingChannelOptions options;
    options.metrics = &metrics;
    auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));
    auto reader = channel->AttachReader();
    std::thread blocked([&] { EXPECT_EQ(reader->Next(), nullptr); });
    // Give the reader time to pass the spin phase and genuinely park.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    channel->Close(Status::OK());
    blocked.join();
    EXPECT_TRUE(reader->FinalStatus().ok());
  }
  {
    SharingChannelOptions options;
    options.metrics = &metrics;
    auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));
    auto reader = channel->AttachReader();
    std::thread blocked([&] { EXPECT_EQ(reader->Next(), nullptr); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    reader->CancelConsumer();  // cross-thread cancel must also wake it
    blocked.join();
    EXPECT_EQ(reader->FinalStatus().code(), StatusCode::kAborted);
    channel->Close(Status::OK());
  }
}

// Many readers parked simultaneously: one append's seeded wakeup must
// propagate through the chained fan-out to every frontier reader.
TEST(SplContentionTest, ChainedWakeupReachesEveryParkedReader) {
  constexpr int kReaders = 16;
  constexpr int kRounds = 50;
  MetricsRegistry metrics;
  SharingChannelOptions options;
  options.metrics = &metrics;
  auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));

  std::vector<PageSourceRef> readers;
  for (int r = 0; r < kReaders; ++r) readers.push_back(channel->AttachReader());
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      while (readers[r]->Next() != nullptr) total.fetch_add(1);
    });
  }
  for (int round = 0; round < kRounds; ++round) {
    // Let the herd drain and park, then publish ONE page: the chain (not
    // the producer) must fan the single seeded notification out to all
    // kReaders parked consumers. A stranded reader hangs the join.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    channel->Put(MakePage(round, 1));
  }
  channel->Close(Status::OK());
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), kReaders * kRounds);
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesCopied)->Get(), 0);
}

// ---------------------------------------------------------------------------
// Batch adapters: the packet-side wrappers Stage wires around inputs and
// outputs when sp_read_batch > 1.
// ---------------------------------------------------------------------------

TEST(BatchPipeTest, SinkBuffersUntilBatchAndFlushesOnClose) {
  auto fifo = std::make_shared<FifoBuffer>(/*capacity_pages=*/16);
  BatchingSink sink(fifo, /*batch=*/4);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(sink.Put(MakePage(i, 1)));
  // 4 flushed at the batch boundary, 2 still buffered.
  EXPECT_EQ(fifo->Size(), 4u);
  sink.Close(Status::OK());
  EXPECT_EQ(fifo->Size(), 6u) << "Close must flush the partial batch";

  BatchingSource source(fifo, /*batch=*/4);
  for (int i = 0; i < 6; ++i) {
    PageRef page = source.Next();
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(FirstValue(page), i * 100);
    EXPECT_EQ(source.PagesDelivered(), static_cast<std::size_t>(i + 1));
  }
  EXPECT_EQ(source.Next(), nullptr);
  EXPECT_TRUE(source.FinalStatus().ok());
}

TEST(BatchPipeTest, SinkReportsDeadConsumerWithinOneBatch) {
  auto fifo = std::make_shared<FifoBuffer>(/*capacity_pages=*/16);
  BatchingSink sink(fifo, /*batch=*/4);
  fifo->CancelReader();
  // The delayed-false contract: at most batch-1 buffered puts may still
  // report true; the flush at the boundary must surface the dead reader.
  bool alive = true;
  for (int i = 0; i < 4 && alive; ++i) alive = sink.Put(MakePage(i, 1));
  EXPECT_FALSE(alive);
  EXPECT_FALSE(sink.Put(MakePage(9, 1))) << "a dead sink must stay dead";
}

}  // namespace
}  // namespace sharing
