// Unit tests for plan nodes: output schemas, canonical forms and
// signatures (the SP common-sub-plan contract at the plan level).

#include <gtest/gtest.h>

#include "exec/plan.h"

namespace sharing {
namespace {

Schema BaseSchema() {
  return Schema({Column::Int64("k"), Column::Int64("fk"),
                 Column::Double("v"), Column::String("s", 6)});
}

Schema DimSchema() {
  return Schema({Column::Int64("dk"), Column::String("name", 8)});
}

PlanNodeRef MakeScan(int64_t threshold = 5) {
  return std::make_shared<ScanNode>(
      "base", BaseSchema(),
      Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(threshold)),
      std::vector<std::size_t>{0, 1, 2});
}

PlanNodeRef MakeDimScan() {
  return std::make_shared<ScanNode>("dim", DimSchema(), TruePredicate(),
                                    std::vector<std::size_t>{0, 1});
}

TEST(ScanNodeTest, OutputSchemaIsProjection) {
  auto scan = MakeScan();
  EXPECT_EQ(scan->output_schema().num_columns(), 3u);
  EXPECT_EQ(scan->output_schema().column(2).name, "v");
}

TEST(ScanNodeTest, SignatureStable) {
  EXPECT_EQ(MakeScan()->Signature(), MakeScan()->Signature());
}

TEST(ScanNodeTest, SignatureSensitiveToPredicate) {
  EXPECT_NE(MakeScan(5)->Signature(), MakeScan(6)->Signature());
}

TEST(ScanNodeTest, SignatureSensitiveToProjection) {
  auto a = std::make_shared<ScanNode>("base", BaseSchema(), TruePredicate(),
                                      std::vector<std::size_t>{0, 1});
  auto b = std::make_shared<ScanNode>("base", BaseSchema(), TruePredicate(),
                                      std::vector<std::size_t>{1, 0});
  EXPECT_NE(a->Signature(), b->Signature());
}

TEST(ScanNodeTest, SignatureSensitiveToTable) {
  auto a = std::make_shared<ScanNode>("t1", BaseSchema(), TruePredicate(),
                                      std::vector<std::size_t>{0});
  auto b = std::make_shared<ScanNode>("t2", BaseSchema(), TruePredicate(),
                                      std::vector<std::size_t>{0});
  EXPECT_NE(a->Signature(), b->Signature());
}

TEST(JoinNodeTest, OutputSchemaConcatsBuildThenProbe) {
  auto join = std::make_shared<JoinNode>(MakeDimScan(), MakeScan(), 0, 1);
  EXPECT_EQ(join->output_schema().num_columns(), 5u);
  EXPECT_EQ(join->output_schema().column(0).name, "dk");
  EXPECT_EQ(join->output_schema().column(2).name, "k");
}

TEST(JoinNodeTest, SignatureCoversChildren) {
  auto j1 = std::make_shared<JoinNode>(MakeDimScan(), MakeScan(5), 0, 1);
  auto j2 = std::make_shared<JoinNode>(MakeDimScan(), MakeScan(5), 0, 1);
  auto j3 = std::make_shared<JoinNode>(MakeDimScan(), MakeScan(7), 0, 1);
  EXPECT_EQ(j1->Signature(), j2->Signature());
  EXPECT_NE(j1->Signature(), j3->Signature());
}

TEST(AggregateNodeTest, OutputSchemaGroupsThenAggs) {
  auto scan = MakeScan();
  auto agg = std::make_shared<AggregateNode>(
      scan, std::vector<std::size_t>{0},
      std::vector<AggSpec>{
          AggSpec::Sum(Col(2, ValueType::kDouble), "total"),
          AggSpec::Count("n")});
  EXPECT_EQ(agg->output_schema().num_columns(), 3u);
  EXPECT_EQ(agg->output_schema().column(0).name, "k");
  EXPECT_EQ(agg->output_schema().column(1).type, ValueType::kDouble);
  EXPECT_EQ(agg->output_schema().column(2).type, ValueType::kInt64);
}

TEST(AggregateNodeTest, EmptyGroupByAllowed) {
  auto agg = std::make_shared<AggregateNode>(
      MakeScan(), std::vector<std::size_t>{},
      std::vector<AggSpec>{AggSpec::Count("n")});
  EXPECT_EQ(agg->output_schema().num_columns(), 1u);
}

TEST(AggregateNodeTest, SignatureSensitiveToAggFunc) {
  auto mk = [&](AggSpec spec) {
    return std::make_shared<AggregateNode>(
        MakeScan(), std::vector<std::size_t>{0},
        std::vector<AggSpec>{std::move(spec)});
  };
  auto sum = mk(AggSpec::Sum(Col(2, ValueType::kDouble), "x"));
  auto avg = mk(AggSpec::Avg(Col(2, ValueType::kDouble), "x"));
  EXPECT_NE(sum->Signature(), avg->Signature());
}

TEST(SortNodeTest, SchemaPassThrough) {
  auto sort = std::make_shared<SortNode>(
      MakeScan(), std::vector<SortKey>{{0, true}});
  EXPECT_TRUE(sort->output_schema() == MakeScan()->output_schema());
}

TEST(SortNodeTest, SignatureSensitiveToDirection) {
  auto asc = std::make_shared<SortNode>(MakeScan(),
                                        std::vector<SortKey>{{0, true}});
  auto desc = std::make_shared<SortNode>(MakeScan(),
                                         std::vector<SortKey>{{0, false}});
  EXPECT_NE(asc->Signature(), desc->Signature());
}

TEST(PlanTest, CanonicalIsHumanReadable) {
  EXPECT_EQ(MakeScan()->Canonical(), "scan(base,(c0<5),proj[0,1,2])");
}

TEST(PlanTest, HashCanonicalIsFnv) {
  // Spot-check the FNV-1a implementation against a known vector.
  EXPECT_EQ(HashCanonical(""), 0xcbf29ce484222325ull);
}

}  // namespace
}  // namespace sharing
