// Tests for the asynchronous I/O subsystem: IoScheduler priority
// ordering, token-bucket budget throttling, cancellation and shutdown
// semantics, the DiskManager submit-style async page API, the spill
// tier's durability-before-unpin contract (pages stay resident and
// readable until their async spill write lands), the governor's
// effective (post-async-window) retention accounting, and circular-scan
// readahead including attach/detach/cancel stress and slow-consumer
// backpressure.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "io/io_scheduler.h"
#include "qpipe/shared_pages_list.h"
#include "qpipe/sp_budget_governor.h"
#include "storage/circular_scan.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace sharing {
namespace {

using testing::MakeSimpleTable;
using testing::MakeTestDatabase;

/// A manually opened gate: jobs block in their work fn until the test
/// releases them, so queue contents can be inspected deterministically.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void Await() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return open; });
  }
};

IoScheduler::Options SchedulerOptions(MetricsRegistry* metrics,
                                      std::size_t threads,
                                      std::size_t budget_mib = 0) {
  IoScheduler::Options options;
  options.threads = threads;
  options.budget_mib_per_sec = budget_mib;
  options.metrics = metrics;
  return options;
}

/// A page whose every row byte is a deterministic pattern of (seed, row).
PageRef MakePatternPage(std::size_t row_width, std::size_t rows,
                        uint8_t seed) {
  auto page = std::make_shared<RowPage>(row_width, row_width * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    uint8_t* slot = page->AppendSlot();
    EXPECT_NE(slot, nullptr);
    for (std::size_t b = 0; b < row_width; ++b) {
      slot[b] = static_cast<uint8_t>(seed + 31 * r + b);
    }
  }
  return page;
}

// ---------------------------------------------------------------------------
// IoScheduler: priority ordering
// ---------------------------------------------------------------------------

TEST(IoSchedulerTest, StrictPriorityOrderAcrossClasses) {
  MetricsRegistry metrics;
  IoScheduler scheduler(SchedulerOptions(&metrics, 1));

  // Park the single worker on a gate so the next three jobs are queued
  // together; submission order is deliberately worst-to-best priority.
  Gate gate;
  Gate blocker_started;
  IoTicketRef blocker = scheduler.Submit(IoPriority::kScanPrefetch, 0, [&] {
    blocker_started.Open();
    gate.Await();
    return Status::OK();
  });
  ASSERT_NE(blocker, nullptr);
  blocker_started.Await();  // the worker holds the blocker, not the queue

  std::mutex order_mutex;
  std::vector<IoPriority> order;
  auto record = [&](IoPriority p) {
    return [&order, &order_mutex, p] {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(p);
      return Status::OK();
    };
  };
  IoTicketRef spill =
      scheduler.Submit(IoPriority::kSpillWrite, 0, record(IoPriority::kSpillWrite));
  IoTicketRef fault =
      scheduler.Submit(IoPriority::kFaultBack, 0, record(IoPriority::kFaultBack));
  IoTicketRef scan = scheduler.Submit(IoPriority::kScanPrefetch, 0,
                                      record(IoPriority::kScanPrefetch));
  EXPECT_EQ(scheduler.QueueDepth(), 3u);
  EXPECT_EQ(metrics.GetGauge(metrics::kIoQueueDepth)->Get(), 3);

  gate.Open();
  EXPECT_TRUE(blocker->Wait().ok());
  EXPECT_TRUE(spill->Wait().ok());
  EXPECT_TRUE(fault->Wait().ok());
  EXPECT_TRUE(scan->Wait().ok());

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], IoPriority::kScanPrefetch);
  EXPECT_EQ(order[1], IoPriority::kFaultBack);
  EXPECT_EQ(order[2], IoPriority::kSpillWrite);
  EXPECT_EQ(scheduler.QueueDepth(), 0u);
  EXPECT_EQ(metrics.GetGauge(metrics::kIoQueueDepth)->Get(), 0);
  // Direction accounting: three read-class jobs + the read-class
  // blocker, one write-class job.
  EXPECT_EQ(metrics.GetCounter(metrics::kIoReadsIssued)->Get(), 3);
  EXPECT_EQ(metrics.GetCounter(metrics::kIoWritesIssued)->Get(), 1);
}

// ---------------------------------------------------------------------------
// IoScheduler: token-bucket budget
// ---------------------------------------------------------------------------

TEST(IoSchedulerTest, BudgetThrottlesAndAccountsStall) {
  MetricsRegistry metrics;
  // 2 MiB/s per class, 512 KiB burst: 2 MiB of jobs must take well over
  // half the nominal second even with the full burst up front.
  IoScheduler scheduler(SchedulerOptions(&metrics, 1, /*budget_mib=*/2));

  constexpr std::size_t kJobBytes = 64 * 1024;
  constexpr int kJobs = 32;  // 2 MiB total
  std::vector<IoTicketRef> tickets;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kJobs; ++i) {
    tickets.push_back(scheduler.Submit(IoPriority::kFaultBack, kJobBytes,
                                       [] { return Status::OK(); }));
  }
  for (const auto& ticket : tickets) {
    ASSERT_NE(ticket, nullptr);
    EXPECT_TRUE(ticket->Wait().ok());
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // (2 MiB - 512 KiB burst) / 2 MiB/s = 0.75 s nominal; allow generous
  // slack for CI-noise while still proving throttling happened.
  EXPECT_GT(elapsed, 0.25);
  EXPECT_GT(metrics.GetCounter(metrics::kIoStallMicros)->Get(), 100000);
}

TEST(IoSchedulerTest, ThrottledClassDoesNotBlockOtherClasses) {
  MetricsRegistry metrics;
  IoScheduler scheduler(SchedulerOptions(&metrics, 1, /*budget_mib=*/1));

  // Exhaust the scan-prefetch bucket (256 KiB burst at 1 MiB/s) with one
  // oversized job, then submit a fault-back job: it must not wait the
  // ~2s the prefetch class needs to recover.
  IoTicketRef big = scheduler.Submit(IoPriority::kScanPrefetch,
                                     2 * 1024 * 1024, [] {
                                       return Status::OK();
                                     });
  ASSERT_NE(big, nullptr);
  ASSERT_TRUE(big->Wait().ok());
  IoTicketRef drained = scheduler.Submit(IoPriority::kScanPrefetch, 1024,
                                         [] { return Status::OK(); });
  const auto t0 = std::chrono::steady_clock::now();
  IoTicketRef fault = scheduler.Submit(IoPriority::kFaultBack, 1024,
                                       [] { return Status::OK(); });
  ASSERT_NE(fault, nullptr);
  EXPECT_TRUE(fault->Wait().ok());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 1.0)
      << "a dry higher-priority bucket must yield, not head-of-line block";
  ASSERT_NE(drained, nullptr);
  EXPECT_TRUE(drained->Wait().ok());
}

// ---------------------------------------------------------------------------
// IoScheduler: cancellation and shutdown
// ---------------------------------------------------------------------------

TEST(IoSchedulerTest, CancelledQueuedJobNeverRuns) {
  MetricsRegistry metrics;
  IoScheduler scheduler(SchedulerOptions(&metrics, 1));

  Gate gate;
  IoTicketRef blocker = scheduler.Submit(IoPriority::kFaultBack, 0, [&] {
    gate.Await();
    return Status::OK();
  });
  ASSERT_NE(blocker, nullptr);

  std::atomic<bool> ran{false};
  std::atomic<bool> skipped{false};
  IoTicketRef victim = scheduler.Submit(
      IoPriority::kFaultBack, 0,
      [&] {
        ran = true;
        return Status::OK();
      },
      /*on_skip=*/[&] { skipped = true; });
  ASSERT_NE(victim, nullptr);

  EXPECT_TRUE(victim->TryCancel());
  EXPECT_FALSE(victim->TryCancel()) << "second cancel is a no-op";
  gate.Open();
  Status st = victim->Wait();
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_FALSE(ran.load());
  EXPECT_TRUE(skipped.load());
  EXPECT_TRUE(blocker->Wait().ok());
  EXPECT_FALSE(blocker->TryCancel()) << "a finished job cannot be cancelled";
}

TEST(IoSchedulerTest, ShutdownDropsQueuedJobsAndFiresSkipHooks) {
  MetricsRegistry metrics;
  auto scheduler =
      std::make_unique<IoScheduler>(SchedulerOptions(&metrics, 1));

  Gate gate;
  Gate blocker_started;
  IoTicketRef blocker = scheduler->Submit(IoPriority::kSpillWrite, 0, [&] {
    blocker_started.Open();
    gate.Await();
    return Status::OK();
  });
  ASSERT_NE(blocker, nullptr);
  blocker_started.Await();  // ensure Shutdown drops only the queued job
  std::atomic<bool> ran{false};
  std::atomic<bool> skipped{false};
  IoTicketRef queued = scheduler->Submit(
      IoPriority::kSpillWrite, 0,
      [&] {
        ran = true;
        return Status::OK();
      },
      /*on_skip=*/[&] { skipped = true; });
  ASSERT_NE(queued, nullptr);

  // Shutdown drops the queued job immediately (before joining the still
  // blocked worker), so its ticket resolves while the blocker runs.
  std::thread shutdown_thread([&] { scheduler->Shutdown(); });
  EXPECT_EQ(queued->Wait().code(), StatusCode::kAborted);
  EXPECT_TRUE(skipped.load());
  EXPECT_FALSE(ran.load());

  gate.Open();
  shutdown_thread.join();
  EXPECT_TRUE(blocker->Wait().ok()) << "running jobs finish at shutdown";
  EXPECT_EQ(scheduler->Submit(IoPriority::kFaultBack, 0,
                              [] { return Status::OK(); }),
            nullptr)
      << "submissions after shutdown are refused";
}

// ---------------------------------------------------------------------------
// DiskManager: submit-style async page I/O
// ---------------------------------------------------------------------------

TEST(IoSchedulerTest, DiskManagerAsyncReadWriteRoundTrip) {
  MetricsRegistry metrics;
  IoScheduler scheduler(SchedulerOptions(&metrics, 2));
  DiskManager disk(DiskOptions{}, &metrics);

  const PageId id = disk.AllocatePage();
  std::vector<uint8_t> data(kPageBytes);
  for (std::size_t i = 0; i < kPageBytes; ++i) {
    data[i] = static_cast<uint8_t>(i * 13 + 7);
  }
  IoTicketRef write = disk.WritePageAsync(&scheduler, IoPriority::kSpillWrite,
                                          id, data);
  ASSERT_NE(write, nullptr);
  ASSERT_TRUE(write->Wait().ok());

  uint8_t back[kPageBytes];
  IoTicketRef read =
      disk.ReadPageAsync(&scheduler, IoPriority::kFaultBack, id, back);
  ASSERT_NE(read, nullptr);
  ASSERT_TRUE(read->Wait().ok());
  EXPECT_EQ(0, std::memcmp(back, data.data(), kPageBytes));

  // Errors surface through the ticket like any other status.
  SHARING_CHECK_OK(FaultRegistry::Global().Arm("disk.read=once"));
  IoTicketRef failing =
      disk.ReadPageAsync(&scheduler, IoPriority::kFaultBack, id, back);
  ASSERT_NE(failing, nullptr);
  EXPECT_EQ(failing->Wait().code(), StatusCode::kIoError);
  FaultRegistry::Global().Disarm();
}

// ---------------------------------------------------------------------------
// IoScheduler: transient-failure retry with backoff
// ---------------------------------------------------------------------------

TEST(IoSchedulerTest, TransientFailureRetriedToSuccess) {
  MetricsRegistry metrics;
  IoScheduler::Options options = SchedulerOptions(&metrics, 1);
  options.retry_limit = 3;
  options.retry_backoff_micros = 50;  // keep the test fast
  IoScheduler scheduler(options);

  std::atomic<int> attempts{0};
  IoTicketRef ticket = scheduler.Submit(IoPriority::kFaultBack, 0, [&] {
    return ++attempts <= 2 ? Status::IoError("transient glitch")
                           : Status::OK();
  });
  ASSERT_NE(ticket, nullptr);
  EXPECT_TRUE(ticket->Wait().ok());
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(metrics.GetCounter(metrics::kIoRetries)->Get(), 2);
  EXPECT_EQ(metrics.GetCounter(metrics::kIoRetryGaveUp)->Get(), 0);
}

TEST(IoSchedulerTest, RetryBudgetExhaustedSurfacesFailure) {
  MetricsRegistry metrics;
  IoScheduler::Options options = SchedulerOptions(&metrics, 1);
  options.retry_limit = 2;
  options.retry_backoff_micros = 50;
  IoScheduler scheduler(options);

  std::atomic<int> attempts{0};
  IoTicketRef ticket = scheduler.Submit(IoPriority::kFaultBack, 0, [&] {
    ++attempts;
    return Status::Unavailable("still glitching");
  });
  ASSERT_NE(ticket, nullptr);
  EXPECT_EQ(ticket->Wait().code(), StatusCode::kUnavailable);
  EXPECT_EQ(attempts.load(), 3) << "initial attempt + retry_limit retries";
  EXPECT_EQ(metrics.GetCounter(metrics::kIoRetries)->Get(), 2);
  EXPECT_EQ(metrics.GetCounter(metrics::kIoRetryGaveUp)->Get(), 1);
}

TEST(IoSchedulerTest, PermanentFailureIsNeverRetried) {
  MetricsRegistry metrics;
  IoScheduler::Options options = SchedulerOptions(&metrics, 1);
  options.retry_limit = 5;
  IoScheduler scheduler(options);

  std::atomic<int> attempts{0};
  IoTicketRef ticket = scheduler.Submit(IoPriority::kSpillWrite, 0, [&] {
    ++attempts;
    return Status::ResourceExhausted("disk full");
  });
  ASSERT_NE(ticket, nullptr);
  EXPECT_EQ(ticket->Wait().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_EQ(metrics.GetCounter(metrics::kIoRetries)->Get(), 0);
}

TEST(IoSchedulerTest, InjectedDispatchFaultIsRetried) {
  MetricsRegistry metrics;
  IoScheduler::Options options = SchedulerOptions(&metrics, 1);
  options.retry_limit = 2;
  options.retry_backoff_micros = 50;
  IoScheduler scheduler(options);

  // The injected dispatch failure fires on the first attempt only; the
  // retry must then run the (healthy) work body and succeed.
  SHARING_CHECK_OK(FaultRegistry::Global().Arm("io.dispatch.fail=once"));
  std::atomic<int> attempts{0};
  IoTicketRef ticket = scheduler.Submit(IoPriority::kFaultBack, 0, [&] {
    ++attempts;
    return Status::OK();
  });
  ASSERT_NE(ticket, nullptr);
  EXPECT_TRUE(ticket->Wait().ok());
  EXPECT_EQ(metrics.GetCounter(metrics::kIoRetries)->Get(), 1);
  FaultRegistry::Global().Disarm();
}

// ---------------------------------------------------------------------------
// Spill tier: durability before unpin, effective retention, window bound
// ---------------------------------------------------------------------------

struct AsyncSpillRig {
  explicit AsyncSpillRig(std::size_t budget, std::size_t window,
                         std::size_t threads = 1) {
    scheduler = std::make_shared<IoScheduler>(
        SchedulerOptions(&metrics, threads));
    SpBudgetGovernor::Options gopts;
    gopts.budget_pages = budget;
    gopts.scheduler = scheduler;
    gopts.spill_write_window = window;
    gopts.metrics = &metrics;
    governor = SpBudgetGovernor::Create(std::move(gopts));
    list = SharedPagesList::Create(&metrics, governor);
  }

  void AwaitSpillQuiesce() {
    for (int spin = 0; spin < 2000 && governor->SpillsInFlight() > 0;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(governor->SpillsInFlight(), 0u);
  }

  MetricsRegistry metrics;
  std::shared_ptr<IoScheduler> scheduler;
  std::shared_ptr<SpBudgetGovernor> governor;
  std::shared_ptr<SharedPagesList> list;
};

constexpr std::size_t kRowWidth = 32;
constexpr std::size_t kRowsPerPage = 64;

TEST(AsyncSpillTest, PagesStayResidentUntilSpillWriteIsDurable) {
  AsyncSpillRig rig(/*budget=*/2, /*window=*/4);
  auto stalled = rig.list->AttachReader();  // pins everything at position 0
  ASSERT_NE(stalled, nullptr);

  // Park the worker: spill writes queue but cannot land.
  Gate gate;
  IoTicketRef blocker =
      rig.scheduler->Submit(IoPriority::kSpillWrite, 0, [&] {
        gate.Await();
        return Status::OK();
      });
  ASSERT_NE(blocker, nullptr);

  constexpr std::size_t kPages = 6;
  for (std::size_t i = 0; i < kPages; ++i) {
    ASSERT_GT(rig.list->Append(MakePatternPage(
                  kRowWidth, kRowsPerPage, static_cast<uint8_t>(i))),
              0u);
  }

  // Durability-before-unpin: with every write stuck in the queue, not
  // one page has left memory — and they are all still readable.
  EXPECT_EQ(rig.list->InMemoryPages(), kPages);
  EXPECT_EQ(rig.metrics.GetCounter(metrics::kSpPagesSpilled)->Get(), 0);
  EXPECT_EQ(rig.metrics.GetGauge(metrics::kSpPagesRetained)->Get(),
            static_cast<int64_t>(kPages));
  // Effective accounting: the 4 in-flight victims (window) are already
  // committed to leaving memory, so the governor reports no excess and
  // nets them out of the effective retention.
  EXPECT_EQ(rig.governor->SpillsInFlight(), 4u);
  EXPECT_EQ(rig.governor->InMemoryPages(), kPages);
  EXPECT_EQ(rig.governor->EffectiveInMemoryPages(), kPages - 4);
  EXPECT_EQ(rig.governor->ExcessPages(), 0u);
  EXPECT_TRUE(rig.governor->SpillWindowFull());

  // Release the worker: the queued writes land, installs release the
  // victims, and the budget converges with no further Append (the
  // completion re-kick), leaving exactly `budget` pages resident.
  gate.Open();
  ASSERT_TRUE(blocker->Wait().ok());
  rig.AwaitSpillQuiesce();
  for (int spin = 0; spin < 2000 && rig.list->InMemoryPages() > 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rig.list->InMemoryPages(), 2u);
  EXPECT_EQ(rig.metrics.GetCounter(metrics::kSpPagesSpilled)->Get(),
            static_cast<int64_t>(kPages - 2));

  // The stalled reader drains bit-exactly: resident pages directly,
  // spilled ones via scheduler fault-back (+ sequential readahead).
  rig.list->Close(Status::OK());
  for (std::size_t i = 0; i < kPages; ++i) {
    PageRef page = stalled->Next();
    ASSERT_NE(page, nullptr) << "page " << i;
    PageRef want = MakePatternPage(kRowWidth, kRowsPerPage,
                                   static_cast<uint8_t>(i));
    ASSERT_EQ(page->row_count(), want->row_count());
    EXPECT_EQ(0, std::memcmp(page->RowAt(0), want->RowAt(0),
                             want->data_bytes()))
        << "page " << i << " not bit-exact";
  }
  EXPECT_EQ(stalled->Next(), nullptr);
  EXPECT_TRUE(stalled->FinalStatus().ok());
  EXPECT_EQ(rig.metrics.GetCounter(metrics::kSpUnspillReads)->Get(),
            static_cast<int64_t>(kPages - 2));
  EXPECT_GT(rig.metrics.GetCounter(metrics::kIoReadsIssued)->Get(), 0)
      << "fault-backs must go through the scheduler";
}

TEST(AsyncSpillTest, SpillWriteWindowBoundsInFlightWrites) {
  AsyncSpillRig rig(/*budget=*/1, /*window=*/1);
  auto stalled = rig.list->AttachReader();
  ASSERT_NE(stalled, nullptr);

  Gate gate;
  IoTicketRef blocker =
      rig.scheduler->Submit(IoPriority::kSpillWrite, 0, [&] {
        gate.Await();
        return Status::OK();
      });
  ASSERT_NE(blocker, nullptr);

  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_GT(rig.list->Append(MakePatternPage(
                  kRowWidth, kRowsPerPage, static_cast<uint8_t>(i))),
              0u);
    EXPECT_LE(rig.governor->SpillsInFlight(), 1u)
        << "the window must cap queued spill writes";
  }
  gate.Open();
  ASSERT_TRUE(blocker->Wait().ok());
  // One-at-a-time completion re-kicks still converge to the budget.
  for (int spin = 0; spin < 2000 && rig.list->InMemoryPages() > 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rig.list->InMemoryPages(), 1u);

  rig.list->Close(Status::OK());
  std::size_t drained = 0;
  while (stalled->Next() != nullptr) ++drained;
  EXPECT_EQ(drained, 8u);
  EXPECT_TRUE(stalled->FinalStatus().ok());
}

// ---------------------------------------------------------------------------
// Circular scans under prefetch (attach/detach/cancel stress,
// slow-consumer backpressure)
// ---------------------------------------------------------------------------

TEST(CircularScanPrefetchTest, PrefetchedScanDeliversEveryPageOnce) {
  auto db = MakeTestDatabase();
  Table* table = MakeSimpleTable(db.get(), "t", 20000);
  // Cold cache: readahead skips already-resident pages, so the scan must
  // start from disk for prefetch jobs to be observable.
  ASSERT_TRUE(db->buffer_pool()->EvictAll().ok());
  MetricsRegistry metrics;
  auto scheduler =
      std::make_shared<IoScheduler>(SchedulerOptions(&metrics, 2));
  CircularScanGroup group(table, 4, &metrics, scheduler, 4);

  constexpr int kScanners = 3;
  std::vector<std::thread> threads;
  std::atomic<int> total_pages{0};
  for (int s = 0; s < kScanners; ++s) {
    threads.emplace_back([&] {
      auto ticket = group.Attach();
      int n = 0;
      while (ticket->Next()) ++n;
      EXPECT_TRUE(ticket->FinalStatus().ok());
      total_pages.fetch_add(n);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total_pages.load(),
            kScanners * static_cast<int>(table->num_pages()));
  EXPECT_GT(metrics.GetCounter(metrics::kIoReadsIssued)->Get(), 0)
      << "the producer must issue scheduler readahead";
}

TEST(CircularScanPrefetchTest, ConcurrentAttachDetachCancelStress) {
  auto db = MakeTestDatabase();
  Table* table = MakeSimpleTable(db.get(), "t", 30000);
  MetricsRegistry metrics;
  auto scheduler =
      std::make_shared<IoScheduler>(SchedulerOptions(&metrics, 2));

  // Several rounds of group construction/destruction with scanners
  // attaching, half-reading, cancelling, and destroying tickets while
  // readahead is in flight. Outstanding prefetch jobs must never touch
  // freed group state (they capture only the buffer pool).
  for (int round = 0; round < 3; ++round) {
    CircularScanGroup group(table, 2, &metrics, scheduler, 8);
    constexpr int kThreads = 6;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int iter = 0; iter < 4; ++iter) {
          auto ticket = group.Attach();
          const int mode = (t + iter) % 3;
          if (mode == 0) {
            // Full cycle.
            std::size_t n = 0;
            while (ticket->Next()) ++n;
            EXPECT_EQ(n, table->num_pages());
          } else if (mode == 1) {
            // Partial read, then explicit cancel.
            for (int i = 0; i < 3 && ticket->Next(); ++i) {
            }
            ticket->Cancel();
            EXPECT_EQ(ticket->Next(), nullptr);
          } else {
            // Partial read, then implicit detach via destruction.
            ticket->Next();
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    // The producer prunes closed consumers lazily on its next sweep.
    for (int spin = 0; spin < 1000 && group.ActiveConsumers() > 0; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(group.ActiveConsumers(), 0u);
  }
}

TEST(CircularScanPrefetchTest, SlowConsumerBackpressureBoundsQueueDepth) {
  auto db = MakeTestDatabase();
  Table* table = MakeSimpleTable(db.get(), "t", 30000);
  ASSERT_GT(table->num_pages(), 16u);
  MetricsRegistry metrics;
  auto scheduler =
      std::make_shared<IoScheduler>(SchedulerOptions(&metrics, 2));
  constexpr std::size_t kQueueDepth = 2;
  CircularScanGroup group(table, kQueueDepth, &metrics, scheduler, 8);

  auto slow = group.Attach();
  constexpr std::size_t kConsumed = 5;
  for (std::size_t i = 0; i < kConsumed; ++i) {
    ASSERT_NE(slow->Next(), nullptr);
  }
  // Give the producer every chance to run ahead; backpressure must stop
  // it at consumed + queue depth + the one page it may hold in Deliver.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE(metrics.GetCounter(metrics::kScanPagesRead)->Get(),
            static_cast<int64_t>(kConsumed + kQueueDepth + 1))
      << "prefetch must not defeat consumer backpressure";

  std::size_t n = kConsumed;
  while (slow->Next()) ++n;
  EXPECT_EQ(n, table->num_pages());
  EXPECT_TRUE(slow->FinalStatus().ok());
}

}  // namespace
}  // namespace sharing
