// Tests for the SP spill subsystem: DiskManager temp-page recycling, the
// SpBudgetGovernor's spill/unspill round trip, graceful degradation on an
// unusable spill store, the engine-level budget acceptance criterion
// (stalled reader: in-memory retention <= budget, bit-exact fault-back,
// all spill bytes freed after drain), and the adaptive policy's
// pull+spill preference.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "qpipe/engine.h"
#include "qpipe/sharing_channel.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace sharing {
namespace {

using testing::ExpectResultsEquivalent;
using testing::MakeTestDatabase;

// ---------------------------------------------------------------------------
// DiskManager: temp-file allocation/free
// ---------------------------------------------------------------------------

TEST(DiskManagerFreeListTest, FreedPagesAreRecycledBeforeGrowth) {
  DiskManager disk(DiskOptions{}, &MetricsRegistry::Global());
  PageId a = disk.AllocatePage();
  PageId b = disk.AllocatePage();
  PageId c = disk.AllocatePage();
  EXPECT_EQ(disk.num_pages(), 3u);

  disk.FreePage(b);
  disk.FreePage(a);
  EXPECT_EQ(disk.NumFreePages(), 2u);

  // Recycled ids come back before the store grows.
  PageId d = disk.AllocatePage();
  PageId e = disk.AllocatePage();
  EXPECT_EQ(disk.NumFreePages(), 0u);
  EXPECT_EQ(disk.num_pages(), 3u) << "no growth while the free list serves";
  EXPECT_TRUE((d == a && e == b) || (d == b && e == a));
  (void)c;

  // A recycled page is zeroed, not a stale view of its previous tenant.
  uint8_t frame[kPageBytes];
  ASSERT_TRUE(disk.ReadPage(d, frame).ok());
  for (std::size_t i = 0; i < kPageBytes; ++i) ASSERT_EQ(frame[i], 0);
}

TEST(DiskManagerFreeListTest, FileBackedRecycledPagesAreZeroed) {
  DiskOptions options;
  // Unique per process so concurrent runs on one host cannot truncate
  // or remove each other's backing file.
  options.path = "/tmp/sharing_disk_free_test_" +
                 std::to_string(::getpid()) + ".bin";
  DiskManager disk(options, &MetricsRegistry::Global());
  PageId id = disk.AllocatePage();
  uint8_t frame[kPageBytes];
  std::memset(frame, 0xab, kPageBytes);
  ASSERT_TRUE(disk.WritePage(id, frame).ok());
  disk.FreePage(id);
  ASSERT_EQ(disk.AllocatePage(), id);
  ASSERT_TRUE(disk.ReadPage(id, frame).ok());
  for (std::size_t i = 0; i < kPageBytes; ++i) {
    ASSERT_EQ(frame[i], 0) << "stale tenant byte at offset " << i;
  }
  // Real bytes supersede the deferred zero.
  std::memset(frame, 0x5c, kPageBytes);
  ASSERT_TRUE(disk.WritePage(id, frame).ok());
  uint8_t back[kPageBytes];
  ASSERT_TRUE(disk.ReadPage(id, back).ok());
  ASSERT_EQ(0, std::memcmp(back, frame, kPageBytes));
}

// ---------------------------------------------------------------------------
// SpBudgetGovernor: serialization round trip
// ---------------------------------------------------------------------------

std::shared_ptr<SpBudgetGovernor> MakeGovernor(MetricsRegistry* metrics,
                                               std::size_t budget,
                                               std::string path = {}) {
  SpBudgetGovernor::Options gopts;
  gopts.budget_pages = budget;
  gopts.spill_path = std::move(path);
  gopts.metrics = metrics;
  return SpBudgetGovernor::Create(std::move(gopts));
}

/// A page whose every row byte is a deterministic pattern of (seed, row).
PageRef MakePatternPage(std::size_t row_width, std::size_t rows,
                        uint8_t seed) {
  auto page = std::make_shared<RowPage>(row_width, row_width * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    uint8_t* slot = page->AppendSlot();
    EXPECT_NE(slot, nullptr);
    for (std::size_t b = 0; b < row_width; ++b) {
      slot[b] = static_cast<uint8_t>(seed + 31 * r + b);
    }
  }
  return page;
}

void ExpectPagesIdentical(const RowPage& got, const RowPage& want) {
  ASSERT_EQ(got.row_width(), want.row_width());
  ASSERT_EQ(got.row_count(), want.row_count());
  EXPECT_EQ(got.capacity(), want.capacity());
  if (want.row_count() > 0) {
    EXPECT_EQ(0, std::memcmp(got.RowAt(0), want.RowAt(0), want.data_bytes()));
  }
}

TEST(SpBudgetGovernorTest, SpillUnspillRoundTripIsBitExact) {
  MetricsRegistry metrics;
  auto governor = MakeGovernor(&metrics, 1);
  // Odd row width (rows straddle the 8 KiB disk-page boundary), multi-page
  // chain (40 KiB serialized > 4 disk pages), plus a single-page payload.
  const std::pair<std::size_t, std::size_t> kCases[] = {
      {40, 1000}, {24, 10}, {8192, 4}};
  for (auto [width, rows] : kCases) {
    PageRef original = MakePatternPage(width, rows, 0x5a);
    SpilledPageRef spilled = governor->Spill(*original);
    ASSERT_NE(spilled, nullptr);
    EXPECT_EQ(spilled->bytes(),
              page_layout::kHeaderBytes + original->data_bytes());
    EXPECT_EQ(metrics.GetGauge(metrics::kSpSpillBytes)->Get(),
              static_cast<int64_t>(spilled->bytes()));
    auto back = governor->Unspill(*spilled);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ExpectPagesIdentical(*back.value(), *original);
  }
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesSpilled)->Get(), 3);
  EXPECT_EQ(metrics.GetCounter(metrics::kSpUnspillReads)->Get(), 3);
  EXPECT_EQ(metrics.GetGauge(metrics::kSpSpillBytes)->Get(), 0)
      << "each chain was freed when its ref died";
}

TEST(SpBudgetGovernorTest, DroppingTheLastRefFreesTheChain) {
  MetricsRegistry metrics;
  Gauge* spill_bytes = metrics.GetGauge(metrics::kSpSpillBytes);
  auto governor = MakeGovernor(&metrics, 1);
  PageRef page = MakePatternPage(64, 400, 7);  // ~25 KiB, 4-page chain
  SpilledPageRef spilled = governor->Spill(*page);
  ASSERT_NE(spilled, nullptr);
  EXPECT_GT(spill_bytes->Get(), 0);
  spilled.reset();
  EXPECT_EQ(spill_bytes->Get(), 0) << "freeing must return every byte";

  // The freed chain is recycled: spilling again reuses the same disk
  // pages instead of growing the temp file.
  SpilledPageRef again = governor->Spill(*page);
  ASSERT_NE(again, nullptr);
  auto back = governor->Unspill(*again);
  ASSERT_TRUE(back.ok());
  ExpectPagesIdentical(*back.value(), *page);
}

TEST(SpBudgetGovernorTest, ExplicitSpillPathIsNeverShared) {
  MetricsRegistry metrics;
  const std::string path = "/tmp/sharing_spill_shared_path_test_" +
      std::to_string(::getpid()) + ".bin";
  std::remove(path.c_str());
  auto first = MakeGovernor(&metrics, 1, path);
  PageRef page = MakePatternPage(64, 10, 3);
  SpilledPageRef spilled = first->Spill(*page);
  ASSERT_NE(spilled, nullptr);

  // A second governor on the same path must refuse (exclusive creation)
  // instead of truncating the first governor's chains.
  auto second = MakeGovernor(&metrics, 1, path);
  EXPECT_EQ(second->Spill(*page), nullptr);

  // The first governor's store is intact.
  auto back = first->Unspill(*spilled);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectPagesIdentical(*back.value(), *page);
}

TEST(SpBudgetGovernorTest, FailedStoreLatchesUsableOff) {
  MetricsRegistry metrics;
  auto governor =
      MakeGovernor(&metrics, 2, "/nonexistent_dir_for_spill/x/store.bin");
  EXPECT_TRUE(governor->enabled());
  EXPECT_TRUE(governor->usable()) << "store not probed yet";
  PageRef page = MakePatternPage(8, 4, 1);
  EXPECT_EQ(governor->Spill(*page), nullptr);
  EXPECT_TRUE(governor->enabled());
  EXPECT_FALSE(governor->usable())
      << "a failed store must switch the adaptive spill preference off";
}

TEST(SpBudgetGovernorTest, UnusableSpillPathDegradesToNoSpill) {
  MetricsRegistry metrics;
  auto governor =
      MakeGovernor(&metrics, 2, "/nonexistent_dir_for_spill/x/store.bin");
  SharingChannelOptions options;
  options.metrics = &metrics;
  options.governor = governor;
  auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));
  auto host = channel->AttachReader();
  auto stalled = channel->AttachReader();
  for (int i = 0; i < 16; ++i) {
    auto page = std::make_shared<RowPage>(sizeof(int64_t), 64);
    int64_t v = i;
    page->AppendRow(reinterpret_cast<const uint8_t*>(&v));
    ASSERT_TRUE(channel->Put(page));
    ASSERT_NE(host->Next(), nullptr);
  }
  channel->Close(Status::OK());
  // Over budget but unspillable: pages stay resident (losing data would
  // be worse) and the stalled reader still sees the full result.
  EXPECT_EQ(metrics.GetCounter(metrics::kSpPagesSpilled)->Get(), 0);
  int count = 0;
  int64_t v;
  while (PageRef page = stalled->Next()) {
    std::memcpy(&v, page->RowAt(0), sizeof(v));
    EXPECT_EQ(v, count);
    ++count;
  }
  EXPECT_EQ(count, 16);
}

// ---------------------------------------------------------------------------
// Engine-level acceptance: budget held under a stalled reader, bit-exact
// fault-back, all spill bytes freed after drain.
// ---------------------------------------------------------------------------

class SpillEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase();
    Schema schema({Column::Int64("id"), Column::Int64("grp"),
                   Column::Double("val")});
    auto t = db_->catalog()->CreateTable("wide", schema, db_->buffer_pool());
    ASSERT_TRUE(t.ok());
    TableAppender appender(t.value());
    for (int64_t i = 0; i < 100000; ++i) {
      auto row = appender.AppendRow();
      ASSERT_TRUE(row.ok());
      row.value().SetInt64(0, i).SetInt64(1, i % 17).SetDouble(
          2, double(i % 257));
    }
    ASSERT_TRUE(appender.Finish().ok());
  }

  PlanNodeRef ScanPlan() {
    Schema schema = db_->catalog()->GetTable("wide").value()->schema();
    return std::make_shared<ScanNode>("wide", schema, TruePredicate(),
                                      std::vector<std::size_t>{0, 1, 2});
  }

  /// Waits until the engine's producers go quiet (pages_shared stable).
  void AwaitProduction() {
    Counter* shared = db_->metrics()->GetCounter(metrics::kSpPagesShared);
    int64_t last = -1;
    for (int spin = 0; spin < 200; ++spin) {
      int64_t now = shared->Get();
      if (now == last && now > 0) return;
      last = now;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  /// Waits until the governor's async spill writes have all landed — the
  /// budget is only guaranteed once in-flight victims (pinned until
  /// durable) have been installed.
  void AwaitSpillQuiesce(QPipeEngine& engine) {
    const auto& governor = engine.sp_governor();
    ASSERT_NE(governor, nullptr);
    for (int spin = 0; spin < 1000 && governor->SpillsInFlight() > 0;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(governor->SpillsInFlight(), 0u);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SpillEngineTest, StalledReaderHoldsBudgetAndDrainsBitExact) {
  constexpr std::size_t kBudget = 8;
  QPipeOptions options = QPipeOptions::AllSp(SpMode::kPull);
  options.sp_memory_budget = kBudget;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());

  Gauge* retained = db_->metrics()->GetGauge(metrics::kSpPagesRetained);
  Gauge* spill_bytes = db_->metrics()->GetGauge(metrics::kSpSpillBytes);

  // Host + a satellite we deliberately do not drain: the stalled reader
  // pins the scan's whole result, the regime the budget exists for.
  QueryHandle host = engine.Submit(ScanPlan());
  QueryHandle stalled = engine.Submit(ScanPlan());
  auto host_result = host.Collect();
  ASSERT_TRUE(host_result.ok());

  AwaitProduction();
  AwaitSpillQuiesce(engine);
  ASSERT_GT(db_->metrics()->GetCounter(metrics::kSpPagesShared)->Get(),
            static_cast<int64_t>(2 * kBudget))
      << "the scan must produce enough pages to exercise the budget";
  EXPECT_LE(retained->Get(), static_cast<int64_t>(kBudget))
      << "a stalled reader must not pin more than the budget in RAM";
  EXPECT_GT(db_->metrics()->GetCounter(metrics::kSpPagesSpilled)->Get(), 0);
  EXPECT_GT(spill_bytes->Get(), 0);

  // The stalled reader drains: bit-exact results via fault-back.
  auto late_result = stalled.Collect();
  ASSERT_TRUE(late_result.ok());
  ExpectResultsEquivalent(host_result.value(), late_result.value());
  EXPECT_GT(db_->metrics()->GetCounter(metrics::kSpUnspillReads)->Get(), 0);

  // All tiers empty after every reader drained.
  EXPECT_EQ(retained->Get(), 0);
  EXPECT_EQ(spill_bytes->Get(), 0);
}

TEST_F(SpillEngineTest, CancelledStalledReaderFreesSpill) {
  QPipeOptions options = QPipeOptions::AllSp(SpMode::kPull);
  options.sp_memory_budget = 4;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());

  QueryHandle host = engine.Submit(ScanPlan());
  QueryHandle stalled = engine.Submit(ScanPlan());
  ASSERT_TRUE(host.Collect().ok());
  AwaitProduction();
  AwaitSpillQuiesce(engine);

  stalled.Cancel();
  // Cancellation releases the stalled reader's hold; spilled chains are
  // deleted unread and the memory account returns to zero.
  Gauge* retained = db_->metrics()->GetGauge(metrics::kSpPagesRetained);
  Gauge* spill_bytes = db_->metrics()->GetGauge(metrics::kSpSpillBytes);
  for (int spin = 0; spin < 100 && spill_bytes->Get() != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(retained->Get(), 0);
  EXPECT_EQ(spill_bytes->Get(), 0);
}

// ---------------------------------------------------------------------------
// Adaptive policy: pull+spill preference
// ---------------------------------------------------------------------------

TEST_F(SpillEngineTest, AdaptivePrefersPullSpillWhenRetentionExceedsBudget) {
  // Every classic pull trigger is parked out of reach, so only the spill
  // preference can choose pull once history exists.
  QPipeOptions options = QPipeOptions::AllSp(SpMode::kAdaptive);
  options.adaptive.pull_satellite_threshold = 1e12;
  options.adaptive.pull_pages_threshold = 1e12;
  options.adaptive.pull_lag_threshold = 1e12;
  // Deep FIFOs keep the capped-lag convoy rule (threshold = capacity) out
  // of reach, so the decision isolates the spill preference.
  options.fifo_capacity = 4096;
  options.sp_memory_budget = 4;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());

  // Session 1 (no history -> pull): the submit-then-collect pattern keeps
  // the host's own reader behind production, so the closing stats record
  // an uncapped lag far above the 4-page budget.
  QueryHandle h1 = engine.Submit(ScanPlan());
  QueryHandle h2 = engine.Submit(ScanPlan());
  ASSERT_TRUE(h1.Collect().ok());
  ASSERT_TRUE(h2.Collect().ok());
  AwaitProduction();

  // Session 2: history predicts retention above budget -> pull + spill.
  QueryHandle h3 = engine.Submit(ScanPlan());
  ASSERT_TRUE(h3.Collect().ok());
  StageStats scan = engine.scan_stage()->GetStats();
  EXPECT_GT(scan.adaptive_pull_spill, 0)
      << "predicted retention above budget must be admitted pull+spill";
  EXPECT_EQ(scan.adaptive_push, 0);
}

TEST_F(SpillEngineTest, WithoutGovernorSameHistoryFallsBackToPush) {
  QPipeOptions options = QPipeOptions::AllSp(SpMode::kAdaptive);
  options.adaptive.pull_satellite_threshold = 1e12;
  options.adaptive.pull_pages_threshold = 1e12;
  options.adaptive.pull_lag_threshold = 1e12;
  options.fifo_capacity = 4096;
  // No sp_memory_budget: the spill preference is inert.
  QPipeEngine engine(db_->catalog(), options, db_->metrics());

  QueryHandle h1 = engine.Submit(ScanPlan());
  QueryHandle h2 = engine.Submit(ScanPlan());
  ASSERT_TRUE(h1.Collect().ok());
  ASSERT_TRUE(h2.Collect().ok());
  AwaitProduction();

  QueryHandle h3 = engine.Submit(ScanPlan());
  ASSERT_TRUE(h3.Collect().ok());
  StageStats scan = engine.scan_stage()->GetStats();
  EXPECT_EQ(scan.adaptive_pull_spill, 0);
  EXPECT_GT(scan.adaptive_push, 0)
      << "without a governor the capped-lag history chooses push";
}

}  // namespace
}  // namespace sharing
