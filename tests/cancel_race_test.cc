// Cancellation races, written for the TSan suite: Cancel arriving while
// a sharing host is mid-append, while satellites are parked on the
// shared pages list, and while an IoScheduler job is in flight. The
// invariant in every case: each query/reader/ticket reaches a definite
// terminal state (correct result, Aborted, or the job's own status) —
// no hang, no torn state, no silently short result.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exec/reference_executor.h"
#include "io/io_scheduler.h"
#include "qpipe/engine.h"
#include "qpipe/shared_pages_list.h"
#include "test_util.h"

namespace sharing {
namespace {

using testing::MakeSimpleTable;
using testing::MakeTestDatabase;

PageRef MakePage(uint8_t seed) {
  constexpr std::size_t kRowWidth = 32;
  constexpr std::size_t kRows = 16;
  auto page = std::make_shared<RowPage>(kRowWidth, kRowWidth * kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    uint8_t* slot = page->AppendSlot();
    EXPECT_NE(slot, nullptr);
    for (std::size_t b = 0; b < kRowWidth; ++b) {
      slot[b] = static_cast<uint8_t>(seed + r + b);
    }
  }
  return page;
}

// ---------------------------------------------------------------------------
// Cancel vs a sharing host that is mid-append
// ---------------------------------------------------------------------------

TEST(CancelRaceTest, CancelHostWhileSatellitesConsume) {
  auto db = MakeTestDatabase();
  Table* table = MakeSimpleTable(db.get(), "t", 20000);
  auto plan = [&]() -> PlanNodeRef {
    auto scan = std::make_shared<ScanNode>(
        "t", table->schema(), TruePredicate(),
        std::vector<std::size_t>{0, 1});
    return std::make_shared<AggregateNode>(
        scan, std::vector<std::size_t>{0},
        std::vector<AggSpec>{AggSpec::Count("n")});
  };
  ReferenceExecutor ref(db->catalog());
  auto want = ref.Execute(*plan());
  ASSERT_TRUE(want.ok());
  const auto want_rows = want.value().CanonicalRows();

  QPipeOptions options = QPipeOptions::AllSp(SpMode::kPull);
  QPipeEngine engine(db->catalog(), options, db->metrics());

  constexpr int kRounds = 8;
  constexpr int kQueries = 4;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<QueryHandle> handles;
    for (int q = 0; q < kQueries; ++q) handles.push_back(engine.Submit(plan()));

    std::vector<std::thread> collectors;
    std::atomic<int> bad{0};
    for (int q = 0; q < kQueries; ++q) {
      collectors.emplace_back([&, q] {
        auto result = handles[q].Collect();
        if (result.ok()) {
          if (result.value().CanonicalRows() != want_rows) bad.fetch_add(1);
        } else if (result.status().code() != StatusCode::kAborted &&
                   result.status().code() != StatusCode::kIoError) {
          bad.fetch_add(1);
        }
      });
    }
    // Cancel the first submission (the likely host) at a sliding offset
    // so the cancel lands before, during, and after production across
    // rounds.
    std::this_thread::sleep_for(std::chrono::microseconds(100 * round));
    handles[0].Cancel();
    for (auto& t : collectors) t.join();
    EXPECT_EQ(bad.load(), 0) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Cancel vs satellites parked on the shared pages list
// ---------------------------------------------------------------------------

TEST(CancelRaceTest, CancelParkedReadersWhileProducerAppends) {
  constexpr int kReaders = 4;
  constexpr int kPages = 200;
  for (int round = 0; round < 4; ++round) {
    MetricsRegistry metrics;
    auto list = SharedPagesList::Create(&metrics);

    std::vector<std::shared_ptr<SplReader>> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.push_back(list->AttachReader());
      ASSERT_NE(readers.back(), nullptr);
    }

    std::vector<std::size_t> consumed(kReaders, 0);
    std::vector<std::thread> threads;
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&, r] {
        // Readers outpace the producer, so they spend most of the run
        // parked; the front two get cancelled out from under their park.
        while (readers[r]->Next() != nullptr) ++consumed[r];
      });
    }

    std::thread producer([&] {
      for (int p = 0; p < kPages; ++p) {
        list->Append(MakePage(static_cast<uint8_t>(p)));
        if (p % 16 == 0) std::this_thread::yield();
      }
      list->Close(Status::OK());
    });

    // Cancel two parked readers while appends and wakeups are in flight.
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    readers[0]->Cancel();
    readers[1]->Cancel();

    producer.join();
    for (auto& t : threads) t.join();

    // Cancelled readers stopped early with a definite status; survivors
    // saw the complete stream.
    for (int r = 2; r < kReaders; ++r) {
      EXPECT_EQ(consumed[r], static_cast<std::size_t>(kPages))
          << "reader " << r << " round " << round;
      EXPECT_TRUE(readers[r]->FinalStatus().ok());
    }
    EXPECT_LE(consumed[0], static_cast<std::size_t>(kPages));
    EXPECT_LE(consumed[1], static_cast<std::size_t>(kPages));
  }
}

// ---------------------------------------------------------------------------
// Cancel vs an in-flight IoScheduler ticket
// ---------------------------------------------------------------------------

TEST(CancelRaceTest, CancelRacesInFlightIoTickets) {
  MetricsRegistry metrics;
  IoScheduler::Options options;
  options.threads = 2;
  options.metrics = &metrics;
  IoScheduler scheduler(options);

  constexpr int kJobs = 200;
  for (int i = 0; i < kJobs; ++i) {
    std::atomic<bool> ran{false};
    std::atomic<bool> skipped{false};
    IoTicketRef ticket = scheduler.Submit(
        IoPriority::kFaultBack, 0,
        [&] {
          ran.store(true);
          std::this_thread::sleep_for(std::chrono::microseconds(i % 7));
          return Status::OK();
        },
        /*on_skip=*/[&] { skipped.store(true); });
    ASSERT_NE(ticket, nullptr);

    // Race the cancel against the worker's claim; every interleaving
    // must resolve to exactly one of {ran, skipped}.
    if (i % 3 != 0) std::this_thread::sleep_for(std::chrono::microseconds(i % 5));
    const bool cancelled = ticket->TryCancel();
    const Status st = ticket->Wait();
    if (cancelled) {
      EXPECT_EQ(st.code(), StatusCode::kAborted);
      EXPECT_FALSE(ran.load());
      EXPECT_TRUE(skipped.load());
    } else {
      EXPECT_TRUE(st.ok());
      EXPECT_TRUE(ran.load());
      EXPECT_FALSE(skipped.load());
    }
  }
}

}  // namespace
}  // namespace sharing
