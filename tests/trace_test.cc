// Unit tests for common/trace: ring wraparound, concurrent writers vs a
// live exporter, the disabled path's zero-allocation/near-zero-cost
// contract, and Chrome trace-event JSON well-formedness.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"

// Process-wide allocation counter (this test binary only): proves the
// disabled trace path allocates nothing. Counts every global operator
// new, including gtest's own — tests sample it around a quiesced region.
namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// The nothrow forms must be replaced too: libstdc++'s stable_sort
// temporary buffer allocates through them, and a default (sanitizer-
// intercepted) nothrow new paired with the malloc-backed plain delete
// below is an alloc-dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sharing {
namespace {

/// Brace/bracket balance outside string literals — the cheap
/// well-formedness check (ci/check_trace.sh's validator does the full
/// structural pass).
void ExpectBalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        ASSERT_GT(depth, 0) << "unbalanced close in trace JSON";
        --depth;
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string in trace JSON";
  EXPECT_EQ(depth, 0) << "unbalanced braces in trace JSON";
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::Disable();
    Trace::Clear();
  }
  void TearDown() override {
    Trace::Disable();
    Trace::Clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  Trace::RecordComplete("test", "never", 0, 10, 1, 2);
  Trace::RecordInstant("test", "never", 1, 2);
  {
    TraceSpan span("test", "never.span", 1, 2);
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Trace::ResidentEvents(), 0u);
  EXPECT_NE(Trace::ExportChromeJson().find("\"traceEvents\":[]"),
            std::string::npos);
}

TEST_F(TraceTest, SpanAndInstantExportChromeFields) {
  Trace::Enable(64);
  {
    TraceSpan span("unit", "unit.span", 7, 0x1234);
    span.AddArg("pages", 3);
  }
  TRACE_EVENT("unit", "unit.instant", 7, 0x1234);
  Trace::Disable();

  const std::string json = Trace::ExportChromeJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"name\":\"unit.span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit.instant\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // instant scope
  EXPECT_NE(json.find("\"query_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"signature\":\"0x1234\""), std::string::npos);
  EXPECT_NE(json.find("\"pages\":3"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, RingOverwritesOldestKeepsNewest) {
  Trace::Enable(/*buffer_events=*/16);
  for (int i = 1; i <= 100; ++i) {
    Trace::RecordInstant("unit", "wrap", static_cast<uint64_t>(i), 0);
  }
  Trace::Disable();
  EXPECT_EQ(Trace::ResidentEvents(), 16u);

  const std::string json = Trace::ExportChromeJson();
  ExpectBalancedJson(json);
  // The last 16 recordings (query ids 85..100) survive; the first is long
  // overwritten. An id's args object is {"query_id":N}, so match through
  // the closing brace to avoid prefix collisions (1 vs 100).
  EXPECT_NE(json.find("\"query_id\":100}"), std::string::npos);
  EXPECT_NE(json.find("\"query_id\":85}"), std::string::npos);
  EXPECT_EQ(json.find("\"query_id\":1}"), std::string::npos);
  EXPECT_EQ(json.find("\"query_id\":84}"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentWritersWithLiveExporter) {
  Trace::Enable(/*buffer_events=*/256);
  constexpr int kWriters = 4;
  constexpr int kIterations = 20000;
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([t, &done] {
      for (int i = 0; i < kIterations; ++i) {
        {
          TraceSpan span("unit", "worker.span",
                         static_cast<uint64_t>(t + 1), 0xabcdef);
          span.AddArg("i", i);
        }
        TRACE_EVENT("unit", "worker.instant", static_cast<uint64_t>(t + 1),
                    0xabcdef);
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  // Export concurrently with the writers: torn slots must be skipped
  // (never exported half-written), and nothing may crash or race.
  while (done.load(std::memory_order_acquire) < kWriters) {
    ExpectBalancedJson(Trace::ExportChromeJson());
  }
  for (auto& w : writers) w.join();
  Trace::Disable();

  // Quiesced: every ring is full (kIterations * 2 per thread >> 256).
  EXPECT_GE(Trace::ResidentEvents(), static_cast<std::size_t>(kWriters) * 256);
  const std::string json = Trace::ExportChromeJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"name\":\"worker.span\""), std::string::npos);
}

TEST_F(TraceTest, ClearDropsEverythingAndRecordingResumes) {
  Trace::Enable(64);
  TRACE_EVENT("unit", "before.clear", 1, 0);
  EXPECT_GT(Trace::ResidentEvents(), 0u);
  Trace::Clear();
  EXPECT_EQ(Trace::ResidentEvents(), 0u);
  TRACE_EVENT("unit", "after.clear", 2, 0);
  EXPECT_EQ(Trace::ResidentEvents(), 1u);
  EXPECT_NE(Trace::ExportChromeJson().find("after.clear"), std::string::npos);
}

TEST_F(TraceTest, InternStringDedupes) {
  const char* a = Trace::InternString("run_packet:tscan");
  const char* b = Trace::InternString("run_packet:tscan");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "run_packet:tscan");
  const char* c = Trace::InternString("run_packet:join");
  EXPECT_NE(a, c);
}

TEST_F(TraceTest, DisabledPathAllocatesNothing) {
  Trace::Disable();
  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    TRACE_SPAN("unit", "noop.span", 1, 2);
    TRACE_EVENT("unit", "noop.instant", 1, 2);
  }
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before);
}

/// A serially dependent LCG chain: cannot be vectorized or folded away,
/// so one iteration is a stable ~hundreds-of-cycles work unit that
/// dwarfs the disabled span's relaxed-load-and-branch.
int64_t WorkUnit(int64_t seed) {
  int64_t acc = seed;
  for (int i = 0; i < 1024; ++i) acc = acc * 1664525 + 1013904223;
  return acc;
}

TEST_F(TraceTest, DisabledOverheadUnderTwoPercent) {
  Trace::Disable();
  constexpr int kIterations = 10000;
  constexpr int kTrials = 9;
  volatile int64_t sink = 0;

  // Min-of-N on interleaved trials: the minimum is the noise-free
  // estimate of each loop's true cost on this machine.
  double base_min = 0;
  double traced_min = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Stopwatch base;
    for (int i = 0; i < kIterations; ++i) sink = WorkUnit(sink + i);
    const double base_s = base.ElapsedSeconds();

    Stopwatch traced;
    for (int i = 0; i < kIterations; ++i) {
      TRACE_SPAN("unit", "overhead.span", 1, 2);
      sink = WorkUnit(sink + i);
    }
    const double traced_s = traced.ElapsedSeconds();

    if (trial == 0 || base_s < base_min) base_min = base_s;
    if (trial == 0 || traced_s < traced_min) traced_min = traced_s;
  }
  // The acceptance bound: tracing compiled in but disabled costs <2% on
  // a RunPacket-sized work loop. Sanitizer builds get slack: their
  // instrumentation inflates the branch's relative cost and the suite
  // runs under heavy parallel-ctest load, where min-of-N still jitters
  // past the release-build band.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr double kBound = 1.10;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  constexpr double kBound = 1.10;
#else
  constexpr double kBound = 1.02;
#endif
#else
  constexpr double kBound = 1.02;
#endif
  EXPECT_LT(traced_min, base_min * kBound)
      << "disabled tracing overhead: base=" << base_min * 1e3
      << "ms traced=" << traced_min * 1e3 << "ms";
}

}  // namespace
}  // namespace sharing
