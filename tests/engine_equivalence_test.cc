// The core correctness invariant of the paper's system: *sharing must not
// change results*. Every engine mode (query-centric, SP-push, SP-pull,
// GQP, GQP+SP) must produce result sets equivalent to the naive reference
// executor for the same plans — including under concurrency, batching,
// and randomized workloads (property-style, parameterized over modes).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/sharing_engine.h"
#include "exec/reference_executor.h"
#include "test_util.h"
#include "workload/ssb.h"
#include "workload/tpch.h"

namespace sharing {
namespace {

using testing::ExpectResultsEquivalent;

/// Shared fixture state: generating SSB + TPC-H data once for the suite.
class EquivalenceEnv {
 public:
  static EquivalenceEnv& Get() {
    static EquivalenceEnv* env = new EquivalenceEnv();
    return *env;
  }

  Database* db() { return db_.get(); }

  const ResultSet& Reference(const PlanNodeRef& plan) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string key = plan->Canonical();
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      ReferenceExecutor ref(db_->catalog());
      auto r = ref.Execute(*plan);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      it = cache_.emplace(key, std::move(r).value()).first;
    }
    return it->second;
  }

 private:
  EquivalenceEnv() {
    DatabaseOptions options;
    options.buffer_pool_frames = 16384;
    db_ = std::make_unique<Database>(options);
    SHARING_CHECK_OK(ssb::GenerateAll(db_->catalog(), db_->buffer_pool(),
                                      /*scale_factor=*/0.002, /*seed=*/7));
    auto li = tpch::GenerateLineitem(db_->catalog(), db_->buffer_pool(),
                                     /*scale_factor=*/0.002, /*seed=*/7);
    SHARING_CHECK(li.ok()) << li.status().ToString();
  }

  std::unique_ptr<Database> db_;
  std::mutex mutex_;
  std::map<std::string, ResultSet> cache_;
};

EngineConfig ConfigFor(EngineMode mode) {
  EngineConfig config;
  config.mode = mode;
  config.fact_table = "lineorder";
  config.cjoin_levels = ssb::PipelineLevels();
  config.cjoin.max_queries = 32;
  return config;
}

class EngineModeTest : public ::testing::TestWithParam<EngineMode> {
 protected:
  std::unique_ptr<SharingEngine> MakeEngine() {
    return std::make_unique<SharingEngine>(EquivalenceEnv::Get().db(),
                                           ConfigFor(GetParam()));
  }
};

TEST_P(EngineModeTest, TpchQ1MatchesReference) {
  auto engine = MakeEngine();
  auto plan = tpch::MakeQ1Plan(90);
  auto got = engine->Execute(plan);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectResultsEquivalent(EquivalenceEnv::Get().Reference(plan),
                          got.value());
}

TEST_P(EngineModeTest, AllSsbQueriesMatchReference) {
  auto engine = MakeEngine();
  for (int flight = 1; flight <= 4; ++flight) {
    int max_variant = flight == 3 ? 4 : 3;
    for (int variant = 1; variant <= max_variant; ++variant) {
      auto plan_or = ssb::MakeQuery(flight, variant);
      ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
      auto plan = plan_or.value();
      auto got = engine->Execute(plan);
      ASSERT_TRUE(got.ok()) << "Q" << flight << "." << variant << ": "
                            << got.status().ToString();
      ExpectResultsEquivalent(
          EquivalenceEnv::Get().Reference(plan), got.value(),
          "Q" + std::to_string(flight) + "." + std::to_string(variant));
    }
  }
}

TEST_P(EngineModeTest, ConcurrentIdenticalQueriesAllCorrect) {
  auto engine = MakeEngine();
  auto plan = ssb::ParameterizedStarPlan({.selectivity = 0.05,
                                          .num_variants = 1,
                                          .variant = 0});
  const auto& want = EquivalenceEnv::Get().Reference(plan);

  constexpr int kQueries = 6;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kQueries; ++i) {
    threads.emplace_back([&] {
      auto got = engine->Execute(plan);
      if (got.ok() && got.value().CanonicalRows() == want.CanonicalRows()) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kQueries);
}

TEST_P(EngineModeTest, RandomizedWorkloadPropertyCheck) {
  auto engine = MakeEngine();
  Rng rng(static_cast<uint64_t>(GetParam()) * 1000 + 17);
  // Random mix of parameterized star plans across variants/selectivities,
  // executed concurrently in small batches.
  for (int round = 0; round < 3; ++round) {
    std::vector<PlanNodeRef> plans;
    for (int i = 0; i < 4; ++i) {
      ssb::StarTemplateParams params;
      params.selectivity = 0.01 + 0.04 * rng.UniformDouble();
      params.num_variants = 4;
      params.variant = static_cast<int>(rng.UniformInt(0, 3));
      params.join_part = rng.Bernoulli(0.3);
      plans.push_back(ssb::ParameterizedStarPlan(params));
    }
    std::vector<std::thread> threads;
    std::atomic<int> ok{0};
    for (const auto& plan : plans) {
      threads.emplace_back([&, plan] {
        auto got = engine->Execute(plan);
        const auto& want = EquivalenceEnv::Get().Reference(plan);
        if (got.ok() && got.value().CanonicalRows() == want.CanonicalRows()) {
          ok.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(ok.load(), 4) << "round " << round;
  }
}

// Regression test for stage-pool starvation: a four-join chain nests JOIN
// packets below other JOIN packets, so an outer join's worker blocks on
// probe input produced by an inner join that is still queued. Eight
// concurrent submissions with distinct tops interleave enough packets that
// a fixed-size (or under-spawning) stage pool deadlocks here.
TEST_P(EngineModeTest, ConcurrentDeepJoinChainsDoNotStarveStages) {
  auto engine = MakeEngine();
  constexpr int kQueries = 8;
  std::vector<PlanNodeRef> plans;
  for (int i = 0; i < kQueries; ++i) {
    ssb::StarTemplateParams params;
    params.selectivity = 0.05;
    params.num_variants = 2;
    params.variant = i % 2;
    params.join_part = true;  // deepest chain the template offers
    params.agg_variant = i % 8;
    plans.push_back(ssb::ParameterizedStarPlan(params));
  }
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (const auto& plan : plans) {
    threads.emplace_back([&, plan] {
      auto got = engine->Execute(plan);
      const auto& want = EquivalenceEnv::Get().Reference(plan);
      if (got.ok() && got.value().CanonicalRows() == want.CanonicalRows()) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kQueries);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, EngineModeTest,
    ::testing::Values(EngineMode::kQueryCentric, EngineMode::kSpPush,
                      EngineMode::kSpPull, EngineMode::kSpAdaptive,
                      EngineMode::kGqp, EngineMode::kGqpSp),
    [](const auto& info) {
      std::string name(EngineModeToString(info.param));
      for (auto& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

TEST(EngineModeSwitchTest, ModeChangesAtRuntimeKeepCorrectness) {
  SharingEngine engine(EquivalenceEnv::Get().db(),
                       ConfigFor(EngineMode::kQueryCentric));
  auto plan = ssb::MakeQuery(3, 2).value();
  const auto& want = EquivalenceEnv::Get().Reference(plan);
  for (EngineMode mode :
       {EngineMode::kQueryCentric, EngineMode::kSpPull, EngineMode::kGqp,
        EngineMode::kGqpSp, EngineMode::kSpPush, EngineMode::kSpAdaptive,
        EngineMode::kQueryCentric}) {
    engine.SetMode(mode);
    auto got = engine.Execute(plan);
    ASSERT_TRUE(got.ok()) << EngineModeToString(mode) << ": "
                          << got.status().ToString();
    ExpectResultsEquivalent(want, got.value(),
                            std::string(EngineModeToString(mode)));
  }
}

TEST(EngineModeSwitchTest, GqpSharesAdmissionsForIdenticalPlans) {
  auto* env = &EquivalenceEnv::Get();
  SharingEngine engine(env->db(), ConfigFor(EngineMode::kGqpSp));
  auto plan = ssb::ParameterizedStarPlan({.selectivity = 0.05,
                                          .num_variants = 1,
                                          .variant = 0});

  auto before = env->db()->metrics()->Snapshot();
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 4; ++i) handles.push_back(engine.Submit(plan));
  for (auto& h : handles) {
    auto got = h.Collect();
    ASSERT_TRUE(got.ok());
  }
  auto delta =
      MetricsRegistry::Delta(before, env->db()->metrics()->Snapshot());
  // SP over the CJOIN stage: fewer pipeline admissions than queries.
  EXPECT_LT(delta[metrics::kCjoinQueriesAdmitted], 4);
  EXPECT_GE(delta[metrics::kSpOpportunities], 1);
}

}  // namespace
}  // namespace sharing
