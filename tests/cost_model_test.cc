// Deterministic unit tests for the per-signature adaptive cost model:
// ring-buffer windowing, min-samples gating, decision flip hysteresis,
// confidence monotonicity, spill forecasting, and the signature LRU.
// Everything here feeds synthetic history — no engine, no threads, no
// clocks — so the decisions are exactly reproducible.

#include "qpipe/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sharing {
namespace {

constexpr uint64_t kSig = 0xdeadbeef;

SignatureStats::SessionSample Session(double satellites, double pages,
                                      double lag = 0, double retention = 0) {
  SignatureStats::SessionSample s;
  s.satellites = satellites;
  s.pages = pages;
  s.lag = lag;
  s.retention = retention;
  return s;
}

CostModelEnvironment Env(std::size_t fifo = 8, std::size_t budget = 0,
                         bool usable = false) {
  CostModelEnvironment env;
  env.fifo_capacity = fifo;
  env.budget_pages = budget;
  env.spill_usable = usable;
  return env;
}

// ---------------------------------------------------------------------------
// SignatureStats: ring-buffer history
// ---------------------------------------------------------------------------

TEST(SignatureStatsTest, RingWindowKeepsOnlyTheLastCapacitySamples) {
  SignatureStats stats(/*capacity=*/4);
  for (int i = 1; i <= 10; ++i) {
    stats.RecordExecution(100.0 * i);
    stats.RecordSession(Session(/*satellites=*/i, /*pages=*/i));
  }
  // Only 7..10 survive in every ring.
  EXPECT_EQ(stats.work_samples(), 4u);
  EXPECT_EQ(stats.session_samples(), 4u);
  EXPECT_DOUBLE_EQ(stats.MeanWorkMicros(), 100.0 * (7 + 8 + 9 + 10) / 4.0);
  EXPECT_DOUBLE_EQ(stats.MeanPages(), (7 + 8 + 9 + 10) / 4.0);
  EXPECT_DOUBLE_EQ(stats.MeanSatellites(), (7 + 8 + 9 + 10) / 4.0);
  // Nearest-rank quantiles over the window: min and max of the survivors.
  EXPECT_DOUBLE_EQ(stats.WorkMicrosAtQuantile(0.0), 700.0);
  EXPECT_DOUBLE_EQ(stats.WorkMicrosAtQuantile(1.0), 1000.0);
}

TEST(SignatureStatsTest, ArrivalGapsAreDeltasNotTimestamps) {
  SignatureStats stats(/*capacity=*/8);
  EXPECT_TRUE(std::isinf(stats.MeanArrivalGapMicros()));
  stats.RecordArrival(1'000);
  EXPECT_TRUE(std::isinf(stats.MeanArrivalGapMicros()));  // one point, no gap
  stats.RecordArrival(3'000);
  stats.RecordArrival(9'000);
  EXPECT_DOUBLE_EQ(stats.MeanArrivalGapMicros(), (2'000 + 6'000) / 2.0);
}

TEST(SignatureStatsTest, ExecutionWorkIsFlooredAtOneMicro) {
  SignatureStats stats(/*capacity=*/4);
  stats.RecordExecution(0.0);  // sub-tick measurement
  EXPECT_DOUBLE_EQ(stats.MeanWorkMicros(), 1.0);
}

// ---------------------------------------------------------------------------
// SharingCostModel: gating, hysteresis, confidence, spill
// ---------------------------------------------------------------------------

struct ModelRig {
  explicit ModelRig(CostModelOptions options)
      : model(options, &metrics) {}

  void Feed(int sessions, const SignatureStats::SessionSample& sample,
            double work_micros) {
    for (int i = 0; i < sessions; ++i) {
      model.RecordSession(kSig, sample);
      model.RecordExecution(kSig, work_micros);
    }
  }

  int64_t Flips() { return metrics.GetCounter(metrics::kPolicyFlips)->Get(); }
  int64_t Shared() {
    return metrics.GetCounter(metrics::kPolicyDecisionsShared)->Get();
  }
  int64_t Unshared() {
    return metrics.GetCounter(metrics::kPolicyDecisionsUnshared)->Get();
  }

  MetricsRegistry metrics;
  SharingCostModel model;
};

TEST(SharingCostModelTest, MinSamplesGatesTheModel) {
  CostModelOptions options;
  options.min_samples = 3;
  ModelRig rig(options);

  rig.Feed(2, Session(2, 10), 1000);
  EXPECT_FALSE(rig.model.Decide(kSig, Env()).from_model)
      << "two samples must not clear a three-sample gate";

  rig.Feed(1, Session(2, 10), 1000);
  CostDecision d = rig.model.Decide(kSig, Env());
  EXPECT_TRUE(d.from_model);
  EXPECT_NE(d.mode, SpMode::kOff)
      << "two expected satellites make repeating 1ms of work the most "
         "expensive option";
  EXPECT_EQ(rig.Shared(), 1);
  EXPECT_EQ(rig.Unshared(), 0);
}

TEST(SharingCostModelTest, DecisionFlipsOnlyBeyondTheHysteresisMargin) {
  CostModelOptions options;
  options.min_samples = 2;
  options.history = 2;  // a tiny ring so each phase fully replaces history
  options.hysteresis = 0.25;
  ModelRig rig(options);

  // Phase A: tiny result, two satellites -> push (copying one page per
  // satellite is cheaper than attach bookkeeping).
  rig.Feed(2, Session(2, 1), 1000);
  CostDecision a = rig.model.Decide(kSig, Env());
  ASSERT_TRUE(a.from_model);
  EXPECT_EQ(a.mode, SpMode::kPush);
  EXPECT_EQ(rig.Flips(), 0);

  // Phase B: pages grow so pull becomes *slightly* cheaper — inside the
  // 25% band, the incumbent push must hold.
  rig.Feed(2, Session(2, 8), 1000);
  CostDecision b = rig.model.Decide(kSig, Env());
  ASSERT_TRUE(b.from_model);
  EXPECT_LT(b.estimate.pull_micros, b.estimate.push_micros)
      << "the test premise: pull is now the cheaper transport";
  EXPECT_EQ(b.mode, SpMode::kPush) << "a marginal advantage must not flip";
  EXPECT_EQ(rig.Flips(), 0);

  // Phase C: a big result makes push's copy bill overwhelming — outside
  // the band, the decision flips (once).
  rig.Feed(2, Session(2, 100), 1000);
  CostDecision c = rig.model.Decide(kSig, Env());
  ASSERT_TRUE(c.from_model);
  EXPECT_EQ(c.mode, SpMode::kPull);
  EXPECT_EQ(rig.Flips(), 1);

  // And it is sticky in the new state too.
  CostDecision c2 = rig.model.Decide(kSig, Env());
  EXPECT_EQ(c2.mode, SpMode::kPull);
  EXPECT_EQ(rig.Flips(), 1);
}

TEST(SharingCostModelTest, ConfidenceIsMonotonicInHistoryDepth) {
  CostModelOptions options;
  options.min_samples = 1;
  options.history = 16;
  ModelRig rig(options);

  double previous = 0.0;
  for (int i = 0; i < 24; ++i) {  // past the ring capacity on purpose
    rig.Feed(1, Session(1, 4), 500);
    CostDecision d = rig.model.Decide(kSig, Env());
    ASSERT_TRUE(d.from_model);
    EXPECT_GE(d.confidence, previous - 1e-12)
        << "identical history must never lower confidence (sample " << i
        << ")";
    previous = d.confidence;
  }
  EXPECT_GT(previous, 0.5) << "a full ring of unanimous history is "
                              "better-than-coin-flip confident";
  EXPECT_LE(previous, 1.0);
}

TEST(SharingCostModelTest, UnsharableWorkIsAdmittedUnshared) {
  // Zero observed satellites and no arrival pressure: hosting a channel
  // is pure overhead, and the model must say so (the regime stage-wide
  // thresholds routed to pull "just in case").
  CostModelOptions options;
  options.min_samples = 2;
  ModelRig rig(options);
  rig.Feed(3, Session(0, 2), 100);
  CostDecision d = rig.model.Decide(kSig, Env());
  ASSERT_TRUE(d.from_model);
  EXPECT_EQ(d.mode, SpMode::kOff);
  EXPECT_EQ(rig.Unshared(), 1);
  EXPECT_DOUBLE_EQ(d.estimate.expected_satellites, 0.0);
}

TEST(SharingCostModelTest, ArrivalRateRaisesTheSatelliteForecast) {
  // Same zero-satellite history, but twins arriving every 50us against
  // 100us of work must overlap: the forecast floor is W/gap = 2, and
  // sharing pays again.
  CostModelOptions options;
  options.min_samples = 2;
  ModelRig rig(options);
  rig.Feed(3, Session(0, 2), 100);
  for (int64_t t = 0; t <= 500; t += 50) rig.model.RecordArrival(kSig, t);
  CostDecision d = rig.model.Decide(kSig, Env());
  ASSERT_TRUE(d.from_model);
  EXPECT_NEAR(d.estimate.expected_satellites, 2.0, 1e-9);
  EXPECT_NE(d.mode, SpMode::kOff);
}

TEST(SharingCostModelTest, RetentionBeyondBudgetPrefersPullWithSpill) {
  CostModelOptions options;
  options.min_samples = 2;
  ModelRig rig(options);
  // Heavy signature: big result, laggy consumers pinning 120 pages.
  rig.Feed(3, Session(/*satellites=*/6, /*pages=*/100, /*lag=*/8,
                      /*retention=*/120),
           5000);
  CostDecision d = rig.model.Decide(
      kSig, Env(/*fifo=*/8, /*budget=*/100, /*usable=*/true));
  ASSERT_TRUE(d.from_model);
  EXPECT_EQ(d.mode, SpMode::kPull);
  EXPECT_TRUE(d.spill_preferred);
  EXPECT_DOUBLE_EQ(d.estimate.spill_pages, 20.0);

  // An unusable spill store must not promise absorption.
  CostDecision broken = rig.model.Decide(
      kSig, Env(/*fifo=*/8, /*budget=*/100, /*usable=*/false));
  EXPECT_FALSE(broken.spill_preferred);
  EXPECT_DOUBLE_EQ(broken.estimate.spill_pages, 0.0);
}

TEST(SharingCostModelTest, SignatureLruEvictsTheColdest) {
  CostModelOptions options;
  options.capacity = 2;
  ModelRig rig(options);
  rig.model.RecordExecution(1, 100);
  rig.model.RecordExecution(2, 100);
  rig.model.RecordExecution(1, 100);  // 1 is now the warmest
  rig.model.RecordExecution(3, 100);  // evicts 2
  auto snaps = rig.model.Snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  for (const auto& snap : snaps) {
    EXPECT_NE(snap.signature, 2u) << "the least-recently-touched signature "
                                     "must be the one evicted";
  }
}

TEST(SharingCostModelTest, SnapshotReportsHistoryAndDecisions) {
  CostModelOptions options;
  options.min_samples = 1;
  ModelRig rig(options);
  rig.Feed(2, Session(3, 50), 2000);
  ASSERT_TRUE(rig.model.Decide(kSig, Env()).from_model);
  auto snaps = rig.model.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  const auto& s = snaps[0];
  EXPECT_EQ(s.signature, kSig);
  EXPECT_EQ(s.session_samples, 2u);
  EXPECT_DOUBLE_EQ(s.mean_pages, 50.0);
  EXPECT_DOUBLE_EQ(s.mean_work_micros, 2000.0);
  EXPECT_TRUE(s.has_decision);
  EXPECT_EQ(s.decided_off + s.decided_push + s.decided_pull, 1);
  EXPECT_FALSE(rig.model.DebugDump().empty());
}

}  // namespace
}  // namespace sharing
