// Tests for the embedded admin server, the shared metric serialization
// (JSON-lines and Prometheus must never drift), and the stall watchdog
// — including a true-positive with a genuinely parked SPL reader and a
// false-positive guard under a healthy workload.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_format.h"
#include "qpipe/engine.h"
#include "qpipe/sharing_channel.h"
#include "server/admin_server.h"
#include "server/watchdog.h"
#include "test_util.h"

namespace sharing {
namespace {

using testing::MakeTestDatabase;

// ---------------------------------------------------------------------------
// Metric serialization (satellite 1).
// ---------------------------------------------------------------------------

/// Every canonical metric name in src/common/metrics.h. A new constant
/// there must be added here (and to docs/METRICS.md, which
/// ci/check_docs.sh enforces) — the test below proves each sanitizes to
/// a valid, collision-free Prometheus name.
constexpr const char* kAllMetricNames[] = {
    metrics::kBufferPoolHits,
    metrics::kBufferPoolMisses,
    metrics::kBufferPoolEvictions,
    metrics::kDiskPageReads,
    metrics::kDiskPageWrites,
    metrics::kScanPagesRead,
    metrics::kScanSharedAttach,
    metrics::kSpOpportunities,
    metrics::kSpPagesCopied,
    metrics::kSpPagesShared,
    metrics::kSpBytesCopied,
    metrics::kSpPagesRetained,
    metrics::kSpPagesReclaimed,
    metrics::kSpPagesSpilled,
    metrics::kSpSpillBytes,
    metrics::kSpUnspillReads,
    metrics::kSpLockWaits,
    metrics::kSpReaderParks,
    metrics::kIoReadsIssued,
    metrics::kIoWritesIssued,
    metrics::kIoQueueDepth,
    metrics::kIoStallMicros,
    metrics::kIoQueueDepthPrefetch,
    metrics::kIoQueueDepthFaultback,
    metrics::kIoQueueDepthSpill,
    metrics::kIoStallMicrosPrefetch,
    metrics::kIoStallMicrosFaultback,
    metrics::kIoStallMicrosSpill,
    metrics::kPolicyDecisionsShared,
    metrics::kPolicyDecisionsUnshared,
    metrics::kPolicyFlips,
    metrics::kPolicyConfidence,
    metrics::kPolicyMeasuredCopyNs,
    metrics::kPolicyMeasuredAttachNs,
    metrics::kCjoinFactTuplesIn,
    metrics::kCjoinTuplesOut,
    metrics::kCjoinTuplesDropped,
    metrics::kCjoinQueriesAdmitted,
    metrics::kCjoinQueriesCompleted,
    metrics::kCjoinBitmapAndOps,
    metrics::kCjoinAdmissionEpochs,
    metrics::kCjoinAdmissionMicros,
    metrics::kQueriesFinished,
    metrics::kQueryLatencyMicros,
    metrics::kStageRunPacketMicros,
    metrics::kIoDispatchWaitPrefetch,
    metrics::kIoDispatchWaitFaultback,
    metrics::kIoDispatchWaitSpill,
    metrics::kWatchdogTicks,
    metrics::kWatchdogQueriesOverSlo,
    metrics::kWatchdogParkedReaders,
    metrics::kWatchdogIoSaturation,
    metrics::kWatchdogSpillThrash,
    metrics::kWatchdogUnhealthy,
};

bool IsValidPrometheusName(const std::string& name) {
  if (name.empty()) return false;
  auto first_ok = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!first_ok(name[0])) return false;
  for (char c : name) {
    if (!first_ok(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

TEST(MetricsFormatTest, EveryRegisteredNameSanitizesValidAndUnique) {
  std::set<std::string> seen;
  for (const char* raw : kAllMetricNames) {
    const std::string prom = PrometheusMetricName(raw);
    EXPECT_TRUE(IsValidPrometheusName(prom))
        << raw << " -> " << prom << " is not a valid Prometheus name";
    EXPECT_TRUE(seen.insert(prom).second)
        << raw << " -> " << prom << " collides with another metric";
  }
}

TEST(MetricsFormatTest, SanitizerRules) {
  EXPECT_EQ(PrometheusMetricName("sp.pages_spilled"), "sp_pages_spilled");
  EXPECT_EQ(PrometheusMetricName("io.queue_depth.spill"),
            "io_queue_depth_spill");
  EXPECT_EQ(PrometheusMetricName("7zip"), "_7zip");
  EXPECT_EQ(PrometheusMetricName("a-b c"), "a_b_c");
}

/// The flat JSON-lines snapshot and the typed Prometheus snapshot are
/// two renderings of ONE underlying snapshot: flattening the typed one
/// must reproduce Snapshot() exactly, so the formats cannot drift.
TEST(MetricsFormatTest, JsonAndPrometheusShareOneSnapshot) {
  MetricsRegistry registry;
  registry.GetCounter(metrics::kSpPagesShared)->Add(42);
  registry.GetGauge(metrics::kSpPagesRetained)->Set(7);
  registry.GetGauge(metrics::kSpPagesRetained)->Set(3);
  auto* hist = registry.GetHistogram(metrics::kQueryLatencyMicros);
  for (int i = 1; i <= 100; ++i) hist->Record(i * 10);

  const TypedMetricsSnapshot typed = registry.SnapshotTyped();
  EXPECT_EQ(FlattenTypedSnapshot(typed), registry.Snapshot());

  const std::string prom = MetricsPrometheusText(typed);
  EXPECT_NE(prom.find("# TYPE sp_pages_shared counter"), std::string::npos);
  EXPECT_NE(prom.find("sp_pages_shared 42"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE sp_pages_retained gauge"), std::string::npos);
  EXPECT_NE(prom.find("sp_pages_retained 3"), std::string::npos);
  EXPECT_NE(prom.find("sp_pages_retained_hwm 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE query_latency summary"), std::string::npos);
  EXPECT_NE(prom.find("query_latency{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(prom.find("query_latency_count 100"), std::string::npos);

  const std::string json = MetricsJsonLine(registry.Snapshot(), 123);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"sp.pages_shared\":42"), std::string::npos);
  EXPECT_NE(json.find("\"uptime_ms\":123"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HTTP plumbing.
// ---------------------------------------------------------------------------

TEST(AdminServerTest, ServesRoutesAndErrors) {
  AdminServer::Options options;
  options.port = 0;
  AdminServer server(options);
  server.Handle("/hello", [](const HttpRequest& request) {
    auto it = request.params.find("name");
    return HttpResponse::Text(
        "hi " + (it == request.params.end() ? "world" : it->second));
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto ok = AdminHttpGet(server.port(), "/hello?name=qpipe");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().status, 200);
  EXPECT_EQ(ok.value().body, "hi qpipe");

  auto missing = AdminHttpGet(server.port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);

  server.Stop();
  EXPECT_FALSE(AdminHttpGet(server.port(), "/hello").ok());
}

TEST(AdminServerTest, UdsListener) {
  const std::string path = ::testing::TempDir() + "/admin_test.sock";
  AdminServer::Options options;
  options.port = -1;
  options.uds_path = path;
  AdminServer server(options);
  server.Handle("/ping", [](const HttpRequest&) {
    return HttpResponse::Text("pong");
  });
  ASSERT_TRUE(server.Start().ok());
  auto r = AdminHttpGetUds(path, "/ping");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().body, "pong");
}

// ---------------------------------------------------------------------------
// Live-engine endpoints.
// ---------------------------------------------------------------------------

class AdminEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase();
    Schema schema({Column::Int64("id"), Column::Double("val")});
    auto t = db_->catalog()->CreateTable("t", schema, db_->buffer_pool());
    ASSERT_TRUE(t.ok());
    TableAppender appender(t.value());
    for (int64_t i = 0; i < 4000; ++i) {
      auto row = appender.AppendRow();
      ASSERT_TRUE(row.ok());
      row.value().SetInt64(0, i).SetDouble(1, double(i % 31));
    }
    ASSERT_TRUE(appender.Finish().ok());
  }

  PlanNodeRef AggPlan(int64_t lt) {
    Schema schema = db_->catalog()->GetTable("t").value()->schema();
    auto scan = std::make_shared<ScanNode>(
        "t", schema, Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(lt)),
        std::vector<std::size_t>{0, 1});
    return std::make_shared<AggregateNode>(
        scan, std::vector<std::size_t>{},
        std::vector<AggSpec>{AggSpec::Sum(Col(1, ValueType::kDouble), "s"),
                             AggSpec::Count("n")});
  }

  std::unique_ptr<Database> db_;
};

TEST_F(AdminEngineTest, EndpointsServeEngineState) {
  QPipeOptions options = QPipeOptions::AllSp(SpMode::kPull);
  options.admin_port = 0;
  options.watchdog_period_ms = 50;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());
  ASSERT_NE(engine.admin_server(), nullptr);
  ASSERT_NE(engine.watchdog(), nullptr);
  const int port = engine.admin_server()->port();
  ASSERT_GT(port, 0);

  auto run = engine.Execute(AggPlan(3000));
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  auto metrics = AdminHttpGet(port, "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().status, 200);
  EXPECT_NE(metrics.value().body.find("# TYPE scan_pages_read counter"),
            std::string::npos);
  // The exposition must carry zero un-sanitized (dotted) names.
  for (const char* raw : kAllMetricNames) {
    if (std::strchr(raw, '.') != nullptr) {
      EXPECT_EQ(metrics.value().body.find(std::string("\n") + raw + " "),
                std::string::npos)
          << "raw dotted name leaked into /metrics: " << raw;
    }
  }

  auto metrics_json = AdminHttpGet(port, "/metrics.json");
  ASSERT_TRUE(metrics_json.ok());
  EXPECT_NE(metrics_json.value().body.find("\"scan.pages_read\""),
            std::string::npos);

  auto channels = AdminHttpGet(port, "/channels");
  ASSERT_TRUE(channels.ok());
  EXPECT_EQ(channels.value().body.rfind("{\"channels\":[", 0), 0u);

  auto cost = AdminHttpGet(port, "/cost_model");
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(cost.value().body.rfind("{\"stages\":[", 0), 0u);
  EXPECT_NE(cost.value().body.find("\"stage\":\"TSCAN\""), std::string::npos);

  auto queries = AdminHttpGet(port, "/queries");
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries.value().body.rfind("{\"queries\":[", 0), 0u);

  auto health = AdminHttpGet(port, "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);
  EXPECT_NE(health.value().body.find("\"healthy\":true"), std::string::npos);

  auto bad_explain = AdminHttpGet(port, "/explain");
  ASSERT_TRUE(bad_explain.ok());
  EXPECT_EQ(bad_explain.value().status, 400);
  auto unknown = AdminHttpGet(port, "/explain?query=999999");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.value().status, 404);

  auto index = AdminHttpGet(port, "/");
  ASSERT_TRUE(index.ok());
  EXPECT_NE(index.value().body.find("/metrics"), std::string::npos);
}

TEST_F(AdminEngineTest, ExplainAndQueriesSeeInFlightQuery) {
  QPipeOptions options = QPipeOptions::AllSp(SpMode::kPull);
  options.admin_port = 0;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());
  const int port = engine.admin_server()->port();

  QueryHandle handle = engine.Submit(AggPlan(3500));
  ASSERT_TRUE(handle.valid());
  const uint64_t qid = handle.context()->query_id();

  auto queries = AdminHttpGet(port, "/queries");
  ASSERT_TRUE(queries.ok());
  EXPECT_NE(
      queries.value().body.find("\"query_id\":" + std::to_string(qid)),
      std::string::npos);

  auto explain =
      AdminHttpGet(port, "/explain?query=" + std::to_string(qid));
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain.value().status, 200);
  EXPECT_NE(explain.value().body.find("\"query_id\":" + std::to_string(qid)),
            std::string::npos);

  auto result = handle.Collect();
  ASSERT_TRUE(result.ok());
  // Finished queries age out of /queries on the next scrape.
  auto after = AdminHttpGet(port, "/queries");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().body.find("\"query_id\":" + std::to_string(qid)),
            std::string::npos);
}

/// TSan target: four scrapers hammer every endpoint while queries run.
/// The scrape path must ride existing synchronization only.
TEST_F(AdminEngineTest, ConcurrentScrapersVsRunningQueries) {
  QPipeOptions options = QPipeOptions::AllSp(SpMode::kPull);
  options.admin_port = 0;
  options.watchdog_period_ms = 5;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());
  const int port = engine.admin_server()->port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> scrapers;
  const char* targets[] = {"/metrics", "/channels", "/queries",
                           "/cost_model", "/healthz"};
  for (int s = 0; s < 4; ++s) {
    scrapers.emplace_back([&, s] {
      int i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto r = AdminHttpGet(port, targets[(s + i++) % 5]);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (int round = 0; round < 6; ++round) {
    std::vector<QueryHandle> handles;
    for (int q = 0; q < 4; ++q) {
      handles.push_back(engine.Submit(AggPlan(3000 + 100 * q)));
    }
    for (auto& handle : handles) {
      auto r = handle.Collect();
      ASSERT_TRUE(r.ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : scrapers) t.join();
  EXPECT_GT(engine.admin_server()->requests_served(), 0);
}

// ---------------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------------

PageRef MakeWatchdogPage() {
  auto page = std::make_shared<RowPage>(sizeof(int64_t), 16);
  int64_t v = 1;
  page->AppendRow(reinterpret_cast<const uint8_t*>(&v));
  return page;
}

/// True positive: a REAL pull-channel reader genuinely parked in
/// ParkUntilReady (its producer publishes nothing) must degrade
/// /healthz within one watchdog period, and recovery must clear it.
TEST(WatchdogTest, ParkedReaderDegradesHealthThenRecovers) {
  MetricsRegistry registry;
  SharingChannelOptions copts;
  copts.metrics = &registry;
  SharingChannelRef channel = MakeSharingChannel(SpMode::kPull, copts);
  auto reader = channel->AttachReader();
  ASSERT_NE(reader, nullptr);

  PageRef got;
  std::thread consumer([&] { got = reader->Next(); });  // parks: no pages

  EngineInspector inspector;
  inspector.metrics = &registry;
  inspector.channels = [&channel] {
    std::vector<Stage::ChannelSnapshot> out;
    out.push_back({"TEST", 0x1234, channel->Introspect()});
    return out;
  };

  Watchdog::Options wopts;
  wopts.period_ms = 20;
  wopts.parked_reader_ms = 40;
  wopts.spill_thrash_pages = 0;
  wopts.io_queue_depth_limit = 0;
  Watchdog watchdog(wopts, inspector);
  watchdog.Start();

  AdminServer::Options aopts;
  aopts.port = 0;
  AdminServer server(aopts);
  EngineInspector sinspector;
  sinspector.metrics = &registry;
  RegisterEngineEndpoints(&server, sinspector, &watchdog);
  ASSERT_TRUE(server.Start().ok());

  // The reader parks immediately; once it has been parked past the
  // threshold, the next tick (one period) must flip health.
  bool degraded = false;
  for (int i = 0; i < 100 && !degraded; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto r = AdminHttpGet(server.port(), "/healthz");
    ASSERT_TRUE(r.ok());
    degraded = r.value().status == 503;
  }
  EXPECT_TRUE(degraded) << "/healthz never flipped to 503";
  EXPECT_GT(registry.GetCounter(metrics::kWatchdogParkedReaders)->Get(), 0);
  EXPECT_EQ(registry.GetGauge(metrics::kWatchdogUnhealthy)->Get(), 1);

  // Unblock the reader; health must recover.
  channel->Put(MakeWatchdogPage());
  channel->Close(Status::OK());
  consumer.join();
  EXPECT_NE(got, nullptr);
  bool healthy = false;
  for (int i = 0; i < 100 && !healthy; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto r = AdminHttpGet(server.port(), "/healthz");
    ASSERT_TRUE(r.ok());
    healthy = r.value().status == 200;
  }
  EXPECT_TRUE(healthy) << "/healthz never recovered";
}

/// False-positive guard: a healthy engine under real load must stay
/// healthy through many watchdog ticks at default-shaped thresholds.
TEST(WatchdogTest, HealthyLoadStaysHealthy) {
  auto db = MakeTestDatabase();
  Schema schema({Column::Int64("id"), Column::Double("val")});
  auto t = db->catalog()->CreateTable("t", schema, db->buffer_pool());
  ASSERT_TRUE(t.ok());
  TableAppender appender(t.value());
  for (int64_t i = 0; i < 2000; ++i) {
    auto row = appender.AppendRow();
    ASSERT_TRUE(row.ok());
    row.value().SetInt64(0, i).SetDouble(1, double(i));
  }
  ASSERT_TRUE(appender.Finish().ok());

  QPipeOptions options = QPipeOptions::AllSp(SpMode::kPull);
  options.admin_port = 0;
  options.watchdog_period_ms = 5;
  QPipeEngine engine(db->catalog(), options, db->metrics());
  ASSERT_NE(engine.watchdog(), nullptr);

  Schema tschema = db->catalog()->GetTable("t").value()->schema();
  for (int round = 0; round < 10; ++round) {
    auto scan = std::make_shared<ScanNode>(
        "t", tschema,
        Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(int64_t{1500})),
        std::vector<std::size_t>{0, 1});
    auto plan = std::make_shared<AggregateNode>(
        scan, std::vector<std::size_t>{},
        std::vector<AggSpec>{AggSpec::Count("n")});
    auto r = engine.Execute(plan);
    ASSERT_TRUE(r.ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const Watchdog::Health health = engine.watchdog()->GetHealth();
  EXPECT_TRUE(health.healthy)
      << "false positive: " << (health.reasons.empty() ? "?"
                                                       : health.reasons[0]);
  EXPECT_GT(health.ticks, 0);
  EXPECT_EQ(db->metrics()->GetCounter(metrics::kWatchdogQueriesOverSlo)->Get(),
            0);
  EXPECT_EQ(db->metrics()->GetCounter(metrics::kWatchdogParkedReaders)->Get(),
            0);
}

/// Deterministic synthetic conditions through TickNow: age SLO, I/O
/// saturation, and counter-delta spill thrash.
TEST(WatchdogTest, SyntheticConditionsTickDeterministically) {
  MetricsRegistry registry;
  std::atomic<int64_t> age_micros{0};
  std::atomic<std::size_t> spill_depth{0};

  EngineInspector inspector;
  inspector.metrics = &registry;
  inspector.queries = [&age_micros] {
    std::vector<QPipeEngine::LiveQueryInfo> out;
    QPipeEngine::LiveQueryInfo info;
    info.query_id = 7;
    info.age_micros = age_micros.load();
    info.stage = "AGG";
    out.push_back(info);
    return out;
  };
  inspector.io_queue_depths = [&spill_depth] {
    return std::vector<std::size_t>{0, 0, spill_depth.load()};
  };

  Watchdog::Options wopts;
  wopts.period_ms = 0;  // no thread: TickNow drives everything
  wopts.query_slo_ms = 100;
  wopts.io_queue_depth_limit = 8;
  wopts.spill_thrash_pages = 10;
  Watchdog watchdog(wopts, inspector);

  watchdog.TickNow();
  EXPECT_TRUE(watchdog.GetHealth().healthy);

  age_micros.store(200 * 1000);
  spill_depth.store(9);
  watchdog.TickNow();
  Watchdog::Health health = watchdog.GetHealth();
  EXPECT_FALSE(health.healthy);
  ASSERT_EQ(health.reasons.size(), 2u);
  EXPECT_EQ(registry.GetCounter(metrics::kWatchdogQueriesOverSlo)->Get(), 1);
  EXPECT_EQ(registry.GetCounter(metrics::kWatchdogIoSaturation)->Get(), 1);

  // Spill thrash needs movement in BOTH directions between two ticks.
  age_micros.store(0);
  spill_depth.store(0);
  registry.GetCounter(metrics::kSpPagesSpilled)->Add(8);
  registry.GetCounter(metrics::kSpUnspillReads)->Add(8);
  watchdog.TickNow();
  EXPECT_EQ(registry.GetCounter(metrics::kWatchdogSpillThrash)->Get(), 1);
  EXPECT_FALSE(watchdog.GetHealth().healthy);

  // No further movement: thrash clears.
  watchdog.TickNow();
  EXPECT_TRUE(watchdog.GetHealth().healthy);
  EXPECT_EQ(registry.GetCounter(metrics::kWatchdogTicks)->Get(), 4);
}

}  // namespace
}  // namespace sharing
