// Robustness & utility coverage: histogram metrics, CSV import/export,
// I/O fault injection (plain scans, shared circular scans, the CJOIN
// pipeline, whole-engine queries), and buffer-pool exhaustion. The common
// thread: failures must surface as Status, never as hangs, crashes, or
// silently short results.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "common/fault.h"
#include "core/sharing_engine.h"
#include "exec/reference_executor.h"
#include "storage/circular_scan.h"
#include "storage/csv.h"
#include "test_util.h"
#include "workload/ssb.h"

namespace sharing {
namespace {

using testing::MakeSimpleTable;
using testing::MakeTestDatabase;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.TotalCount(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.TotalCount(), 3);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, QuantilesWithinBucketResolution) {
  Histogram h;
  for (int i = 0; i < 95; ++i) h.Record(100);    // bucket [64,128)
  for (int i = 0; i < 5; ++i) h.Record(10000);   // bucket [8192,16384)
  // p50 must land in the low bucket, p99 in the high one; log buckets are
  // accurate to within 2x.
  EXPECT_GE(h.ValueAtQuantile(0.5), 64);
  EXPECT_LT(h.ValueAtQuantile(0.5), 128);
  EXPECT_GE(h.ValueAtQuantile(0.99), 8192);
  EXPECT_LT(h.ValueAtQuantile(0.99), 16384);
}

TEST(HistogramTest, QuantileEdgesClamp) {
  Histogram h;
  h.Record(7);
  EXPECT_EQ(h.ValueAtQuantile(-1.0), h.ValueAtQuantile(0.0));
  EXPECT_EQ(h.ValueAtQuantile(2.0), h.ValueAtQuantile(1.0));
}

TEST(HistogramTest, NonPositiveValuesLandInFirstBucket) {
  Histogram h;
  h.Record(0);
  h.Record(-5);
  EXPECT_EQ(h.TotalCount(), 2);
  EXPECT_LE(h.ValueAtQuantile(1.0), 2);
}

TEST(HistogramTest, ConcurrentRecordsAllCounted) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(i + 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.TotalCount(), kThreads * kPerThread);
}

TEST(HistogramTest, RegistryPointerStable) {
  MetricsRegistry registry;
  Histogram* a = registry.GetHistogram("latency");
  a->Record(5);
  Histogram* b = registry.GetHistogram("latency");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->TotalCount(), 1);
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

class CsvTest : public ::testing::Test {
 protected:
  Schema MixedSchema() {
    return Schema({Column::Int64("id"), Column::Double("score"),
                   Column::DateCol("day"), Column::String("name", 12)});
  }
};

TEST_F(CsvTest, RoundTripAllTypes) {
  auto db = MakeTestDatabase();
  Schema schema = MixedSchema();
  auto* table =
      db->catalog()->CreateTable("src", schema, db->buffer_pool()).value();
  {
    TableAppender appender(table);
    appender.AppendRow().value().SetInt64(0, 42).SetDouble(1, 2.5).SetDate(
        2, MakeDate(1994, 7, 3)).SetString(3, "alpha");
    appender.AppendRow().value().SetInt64(0, -7).SetDouble(1, 0.125).SetDate(
        2, MakeDate(1998, 12, 31)).SetString(3, "beta, g");
    SHARING_CHECK_OK(appender.Finish());
  }

  std::ostringstream out;
  ASSERT_TRUE(ExportCsv(*table, out).ok());

  std::istringstream in(out.str());
  auto rows = ImportCsv(db->catalog(), db->buffer_pool(), "copy", schema, in);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value(), 2);

  // Byte-identical rows after the round trip.
  ReferenceExecutor ref(db->catalog());
  auto scan = [&](const char* name) {
    auto node = std::make_shared<ScanNode>(
        name, schema, TruePredicate(),
        std::vector<std::size_t>{0, 1, 2, 3});
    return ref.Execute(*node).value().CanonicalRows();
  };
  EXPECT_EQ(scan("src"), scan("copy"));
}

TEST_F(CsvTest, QuotedFieldsWithDelimiterAndQuotes) {
  auto db = MakeTestDatabase();
  Schema schema({Column::Int64("id"), Column::String("s", 16)});
  std::istringstream in("id,s\n1,\"a,b\"\n2,\"say \"\"hi\"\"\"\n");
  auto rows = ImportCsv(db->catalog(), db->buffer_pool(), "q", schema, in);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value(), 2);

  auto* table = db->catalog()->GetTable("q").value();
  std::ostringstream out;
  ASSERT_TRUE(ExportCsv(*table, out).ok());
  EXPECT_NE(out.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST_F(CsvTest, HeaderMismatchRejected) {
  auto db = MakeTestDatabase();
  Schema schema({Column::Int64("id")});
  std::istringstream in("wrong\n1\n");
  auto rows = ImportCsv(db->catalog(), db->buffer_pool(), "t", schema, in);
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("header"), std::string::npos);
}

TEST_F(CsvTest, MalformedValuesCarryRowAndColumn) {
  auto db = MakeTestDatabase();
  Schema schema({Column::Int64("id"), Column::Double("score")});
  std::istringstream in("id,score\n1,2.5\nx,3.5\n");
  auto rows = ImportCsv(db->catalog(), db->buffer_pool(), "t", schema, in);
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("row 1"), std::string::npos);
  EXPECT_NE(rows.status().message().find("'id'"), std::string::npos);
}

TEST_F(CsvTest, WrongFieldCountRejected) {
  auto db = MakeTestDatabase();
  Schema schema({Column::Int64("a"), Column::Int64("b")});
  std::istringstream in("a,b\n1,2,3\n");
  EXPECT_FALSE(
      ImportCsv(db->catalog(), db->buffer_pool(), "t", schema, in).ok());
}

TEST_F(CsvTest, StringWiderThanColumnRejected) {
  auto db = MakeTestDatabase();
  Schema schema({Column::String("s", 3)});
  std::istringstream in("s\ntoolong\n");
  auto rows = ImportCsv(db->catalog(), db->buffer_pool(), "t", schema, in);
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("width"), std::string::npos);
}

TEST_F(CsvTest, NoHeaderMode) {
  auto db = MakeTestDatabase();
  Schema schema({Column::Int64("id")});
  std::istringstream in("5\n6\n");
  CsvOptions options;
  options.header = false;
  auto rows =
      ImportCsv(db->catalog(), db->buffer_pool(), "t", schema, in, options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), 2);
}

TEST_F(CsvTest, ExportSsbDateRoundTrips) {
  auto db = MakeTestDatabase();
  SHARING_CHECK_OK(ssb::GenerateAll(db->catalog(), db->buffer_pool(), 0.002));
  auto* date = db->catalog()->GetTable("date").value();
  std::ostringstream out;
  ASSERT_TRUE(ExportCsv(*date, out).ok());
  std::istringstream in(out.str());
  auto rows = ImportCsv(db->catalog(), db->buffer_pool(), "date2",
                        date->schema(), in);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(static_cast<uint64_t>(rows.value()), date->num_rows());
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A pool far smaller than the table, so reads actually hit the disk
    // layer where faults are injected.
    db_ = MakeTestDatabase(/*frames=*/8);
    table_ = MakeSimpleTable(db_.get(), "t", 20000);
    ASSERT_GT(table_->num_pages(), 16u);
  }

  // The registry is process-global; never leak a schedule into the next
  // test.
  void TearDown() override { FaultRegistry::Global().Disarm(); }

  PlanNodeRef ScanAll() {
    return std::make_shared<ScanNode>("t", table_->schema(), TruePredicate(),
                                      std::vector<std::size_t>{0, 1});
  }

  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_F(FaultTest, PlainScanSurfacesIoError) {
  QPipeOptions options;
  options.shared_scans = false;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());
  SHARING_CHECK_OK(FaultRegistry::Global().Arm("disk.read=once"));
  auto result = engine.Execute(ScanAll());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  // The engine recovers once the fault clears.
  FaultRegistry::Global().Disarm();
  auto retry = engine.Execute(ScanAll());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.value().num_rows(), 20000u);
}

TEST_F(FaultTest, SharedCircularScanSurfacesIoErrorNotShortResult) {
  QPipeOptions options;
  options.shared_scans = true;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());
  // Warm path works.
  ASSERT_TRUE(engine.Execute(ScanAll()).ok());
  SHARING_CHECK_OK(FaultRegistry::Global().Arm("disk.read=once"));
  auto result = engine.Execute(ScanAll());
  // Either the fault hit this query's cycle (must be IoError, never a
  // short row count) or another reader absorbed it.
  if (result.ok()) {
    EXPECT_EQ(result.value().num_rows(), 20000u);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
}

TEST_F(FaultTest, CircularScanTicketReportsError) {
  CircularScanGroup group(table_, /*queue_depth=*/2, db_->metrics());
  SHARING_CHECK_OK(FaultRegistry::Global().Arm("disk.read=once"));
  auto ticket = group.Attach();
  std::size_t pages_seen = 0;
  while (auto page = ticket->Next()) ++pages_seen;
  EXPECT_FALSE(ticket->FinalStatus().ok());
  EXPECT_LT(pages_seen, table_->num_pages());
}

TEST_F(FaultTest, CjoinPipelineFailsQueriesOnFactScanError) {
  auto db = MakeTestDatabase(/*frames=*/64);
  SHARING_CHECK_OK(ssb::GenerateAll(db->catalog(), db->buffer_pool(), 0.005));
  EngineConfig config;
  config.mode = EngineMode::kGqp;
  config.fact_table = "lineorder";
  config.cjoin_levels = ssb::PipelineLevels();
  SharingEngine engine(db.get(), config);
  auto plan = ssb::ParameterizedStarPlan(
      {.selectivity = 0.05, .num_variants = 1, .variant = 0});

  // Warm run succeeds.
  auto warm = engine.Execute(plan);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // p1 = every disk read fails until disarmed.
  SHARING_CHECK_OK(FaultRegistry::Global().Arm("disk.read=p1"));
  ASSERT_TRUE(db->buffer_pool()->EvictAll().ok());  // force disk reads
  auto result = engine.Execute(plan);
  ASSERT_FALSE(result.ok());

  FaultRegistry::Global().Disarm();
  auto recovered = engine.Execute(plan);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().CanonicalRows(), warm.value().CanonicalRows());
}

TEST_F(FaultTest, AllEngineModesSurfacePersistentIoError) {
  auto db = MakeTestDatabase(/*frames=*/64);
  SHARING_CHECK_OK(ssb::GenerateAll(db->catalog(), db->buffer_pool(), 0.005));
  EngineConfig config;
  config.fact_table = "lineorder";
  config.cjoin_levels = ssb::PipelineLevels();
  SharingEngine engine(db.get(), config);
  auto plan = ssb::ParameterizedStarPlan(
      {.selectivity = 0.05, .num_variants = 1, .variant = 0});
  for (EngineMode mode :
       {EngineMode::kQueryCentric, EngineMode::kSpPush, EngineMode::kSpPull,
        EngineMode::kSpAdaptive, EngineMode::kGqp, EngineMode::kGqpSp}) {
    engine.SetMode(mode);
    // Inject the fault *before* dropping the cache: the CJOIN pipeline
    // scans continuously, and evicting first would let it re-warm the
    // pool from the healthy disk before the fault lands. With the fault
    // already armed, the cold cache forces every path to observe it.
    SHARING_CHECK_OK(FaultRegistry::Global().Arm("disk.read=p1"));
    ASSERT_TRUE(db->buffer_pool()->EvictAll().ok());
    auto result = engine.Execute(plan);
    EXPECT_FALSE(result.ok()) << EngineModeToString(mode);
    FaultRegistry::Global().Disarm();
    // Recovery may take a retry: in SP modes a new query can legitimately
    // attach to a failing host that is still draining, inheriting its
    // error once. It must succeed shortly after the fault clears.
    Status last = Status::OK();
    bool recovered = false;
    for (int attempt = 0; attempt < 5 && !recovered; ++attempt) {
      auto r = engine.Execute(plan);
      recovered = r.ok();
      if (!recovered) {
        last = r.status();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    EXPECT_TRUE(recovered) << EngineModeToString(mode) << ": "
                           << last.ToString();
  }
}

TEST_F(FaultTest, BufferPoolExhaustionIsAnErrorNotACrash) {
  auto db = MakeTestDatabase(/*frames=*/4);
  auto* table = MakeSimpleTable(db.get(), "small", 5000);
  ASSERT_GT(table->num_pages(), 4u);
  // Pin every frame.
  std::vector<PageGuard> pinned;
  for (std::size_t p = 0; p < 4; ++p) {
    auto guard = db->buffer_pool()->FetchPage(table->page_id(p));
    ASSERT_TRUE(guard.ok());
    pinned.push_back(std::move(guard).value());
  }
  auto overflow = db->buffer_pool()->FetchPage(table->page_id(4));
  ASSERT_FALSE(overflow.ok());
  // Releasing a pin restores service.
  pinned.pop_back();
  auto retry = db->buffer_pool()->FetchPage(table->page_id(4));
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

}  // namespace
}  // namespace sharing
