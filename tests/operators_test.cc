// Tests for the pipelined operators, cross-checked against the
// ReferenceExecutor (independent implementation).

#include <gtest/gtest.h>

#include <thread>

#include "exec/operators.h"
#include "exec/reference_executor.h"
#include "qpipe/fifo_buffer.h"
#include "test_util.h"

namespace sharing {
namespace {

using testing::ExpectResultsEquivalent;
using testing::MakeTestDatabase;

/// Runs `plan` through the pipelined operators with plain FIFO wiring on
/// dedicated threads (no stages involved) and materializes the output.
class PipelineRunner {
 public:
  explicit PipelineRunner(Database* db) : db_(db) {}

  StatusOr<ResultSet> Run(const PlanNodeRef& plan) {
    ExecContext ctx;
    auto source = Launch(plan, &ctx);
    ResultSet result(plan->output_schema());
    while (PageRef page = source->Next()) result.AppendPage(*page);
    Status st = source->FinalStatus();
    for (auto& t : threads_) t.join();
    threads_.clear();
    if (!st.ok()) return st;
    return result;
  }

 private:
  PageSourceRef Launch(const PlanNodeRef& node, ExecContext* ctx) {
    auto out = std::make_shared<FifoBuffer>();
    switch (node->kind()) {
      case PlanKind::kScan: {
        auto* scan = static_cast<const ScanNode*>(node.get());
        Table* table = db_->catalog()->GetTable(scan->table_name()).value();
        threads_.emplace_back([=] {
          RunScan(*scan, table, nullptr, ctx, out.get());
        });
        break;
      }
      case PlanKind::kJoin: {
        auto* join = static_cast<const JoinNode*>(node.get());
        auto build = Launch(join->build(), ctx);
        auto probe = Launch(join->probe(), ctx);
        threads_.emplace_back([=] {
          RunHashJoin(*join, build.get(), probe.get(), ctx, out.get());
        });
        break;
      }
      case PlanKind::kAggregate: {
        auto* agg = static_cast<const AggregateNode*>(node.get());
        auto input = Launch(agg->child(), ctx);
        threads_.emplace_back([=] {
          RunHashAggregate(*agg, input.get(), ctx, out.get());
        });
        break;
      }
      case PlanKind::kSort: {
        auto* sort = static_cast<const SortNode*>(node.get());
        auto input = Launch(sort->child(), ctx);
        threads_.emplace_back([=] {
          RunSort(*sort, input.get(), ctx, out.get());
        });
        break;
      }
    }
    return out;
  }

  Database* db_;
  std::vector<std::thread> threads_;
};

class OperatorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase();
    // "fact": 3000 rows, fk = id % 50, val = id * 0.5
    Schema fact_schema({Column::Int64("id"), Column::Int64("fk"),
                        Column::Double("val")});
    auto t = db_->catalog()->CreateTable("fact", fact_schema,
                                         db_->buffer_pool());
    ASSERT_TRUE(t.ok());
    TableAppender appender(t.value());
    for (int64_t i = 0; i < 3000; ++i) {
      auto row = appender.AppendRow();
      ASSERT_TRUE(row.ok());
      row.value().SetInt64(0, i).SetInt64(1, i % 50).SetDouble(
          2, double(i) * 0.5);
    }
    ASSERT_TRUE(appender.Finish().ok());

    // "dim": 50 rows, dk = 0..49, name = D<k%7>
    Schema dim_schema({Column::Int64("dk"), Column::String("name", 4)});
    auto d = db_->catalog()->CreateTable("dim", dim_schema,
                                         db_->buffer_pool());
    ASSERT_TRUE(d.ok());
    TableAppender dim_appender(d.value());
    for (int64_t k = 0; k < 50; ++k) {
      auto row = dim_appender.AppendRow();
      ASSERT_TRUE(row.ok());
      row.value().SetInt64(0, k).SetString(1, "D" + std::to_string(k % 7));
    }
    ASSERT_TRUE(dim_appender.Finish().ok());
  }

  void CheckAgainstReference(const PlanNodeRef& plan) {
    ReferenceExecutor ref(db_->catalog());
    auto want = ref.Execute(*plan);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    PipelineRunner runner(db_.get());
    auto got = runner.Run(plan);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectResultsEquivalent(want.value(), got.value());
  }

  Schema FactSchema() {
    return db_->catalog()->GetTable("fact").value()->schema();
  }
  Schema DimSchema() {
    return db_->catalog()->GetTable("dim").value()->schema();
  }

  PlanNodeRef FactScan(ExprRef pred) {
    return std::make_shared<ScanNode>("fact", FactSchema(), std::move(pred),
                                      std::vector<std::size_t>{0, 1, 2});
  }
  PlanNodeRef DimScan(ExprRef pred) {
    return std::make_shared<ScanNode>("dim", DimSchema(), std::move(pred),
                                      std::vector<std::size_t>{0, 1});
  }

  std::unique_ptr<Database> db_;
};

TEST_F(OperatorsTest, ScanUnfilteredMatchesReference) {
  CheckAgainstReference(FactScan(TruePredicate()));
}

TEST_F(OperatorsTest, ScanFilteredMatchesReference) {
  CheckAgainstReference(FactScan(
      Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(int64_t{777}))));
}

TEST_F(OperatorsTest, ScanEmptyResult) {
  auto plan = FactScan(
      Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(int64_t{-1})));
  PipelineRunner runner(db_.get());
  auto got = runner.Run(plan);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().num_rows(), 0u);
}

TEST_F(OperatorsTest, ScanProjectionReorders) {
  auto plan = std::make_shared<ScanNode>("fact", FactSchema(),
                                         TruePredicate(),
                                         std::vector<std::size_t>{2, 0});
  CheckAgainstReference(plan);
}

TEST_F(OperatorsTest, HashJoinMatchesReference) {
  auto join = std::make_shared<JoinNode>(DimScan(TruePredicate()),
                                         FactScan(TruePredicate()), 0, 1);
  CheckAgainstReference(join);
}

TEST_F(OperatorsTest, HashJoinWithSelectiveBuildSide) {
  auto join = std::make_shared<JoinNode>(
      DimScan(Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(int64_t{5}))),
      FactScan(TruePredicate()), 0, 1);
  CheckAgainstReference(join);
}

TEST_F(OperatorsTest, HashJoinEmptyBuildSide) {
  auto join = std::make_shared<JoinNode>(
      DimScan(Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(int64_t{0}))),
      FactScan(TruePredicate()), 0, 1);
  PipelineRunner runner(db_.get());
  auto got = runner.Run(PlanNodeRef(join));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().num_rows(), 0u);
}

TEST_F(OperatorsTest, AggregateGroupedMatchesReference) {
  auto agg = std::make_shared<AggregateNode>(
      FactScan(TruePredicate()), std::vector<std::size_t>{1},
      std::vector<AggSpec>{
          AggSpec::Sum(Col(2, ValueType::kDouble), "sum_val"),
          AggSpec::Avg(Col(2, ValueType::kDouble), "avg_val"),
          AggSpec::Min(Col(2, ValueType::kDouble), "min_val"),
          AggSpec::Max(Col(2, ValueType::kDouble), "max_val"),
          AggSpec::Count("n")});
  CheckAgainstReference(agg);
}

TEST_F(OperatorsTest, AggregateGlobalMatchesReference) {
  auto agg = std::make_shared<AggregateNode>(
      FactScan(TruePredicate()), std::vector<std::size_t>{},
      std::vector<AggSpec>{AggSpec::Sum(Col(0, ValueType::kInt64), "s"),
                           AggSpec::Count("n")});
  CheckAgainstReference(agg);
}

TEST_F(OperatorsTest, AggregateCorrectSums) {
  auto agg = std::make_shared<AggregateNode>(
      FactScan(TruePredicate()), std::vector<std::size_t>{},
      std::vector<AggSpec>{AggSpec::Sum(Col(0, ValueType::kInt64), "s"),
                           AggSpec::Count("n")});
  PipelineRunner runner(db_.get());
  auto got = runner.Run(PlanNodeRef(agg));
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().num_rows(), 1u);
  EXPECT_DOUBLE_EQ(got.value().Row(0).GetDouble(0), 3000.0 * 2999.0 / 2.0);
  EXPECT_EQ(got.value().Row(0).GetInt64(1), 3000);
}

TEST_F(OperatorsTest, SortAscendingMatchesReference) {
  auto sort = std::make_shared<SortNode>(
      FactScan(Cmp(CmpOp::kLt, Col(0, ValueType::kInt64),
                   Lit(int64_t{500}))),
      std::vector<SortKey>{{2, false}, {0, true}});
  CheckAgainstReference(sort);
}

TEST_F(OperatorsTest, SortProducesOrderedOutput) {
  auto sort = std::make_shared<SortNode>(FactScan(TruePredicate()),
                                         std::vector<SortKey>{{0, false}});
  PipelineRunner runner(db_.get());
  auto got = runner.Run(PlanNodeRef(sort));
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().num_rows(), 3000u);
  for (std::size_t i = 1; i < got.value().num_rows(); ++i) {
    EXPECT_GE(got.value().Row(i - 1).GetInt64(0),
              got.value().Row(i).GetInt64(0));
  }
}

TEST_F(OperatorsTest, JoinAggPipelineMatchesReference) {
  auto join = std::make_shared<JoinNode>(DimScan(TruePredicate()),
                                         FactScan(TruePredicate()), 0, 1);
  std::size_t name_col = join->output_schema().ColumnIndex("name").value();
  std::size_t val_col = join->output_schema().ColumnIndex("val").value();
  auto agg = std::make_shared<AggregateNode>(
      join, std::vector<std::size_t>{name_col},
      std::vector<AggSpec>{
          AggSpec::Sum(Col(val_col, ValueType::kDouble), "sum_val"),
          AggSpec::Count("n")});
  CheckAgainstReference(agg);
}

TEST_F(OperatorsTest, CancelledScanAborts) {
  auto plan = FactScan(TruePredicate());
  auto* scan = static_cast<const ScanNode*>(plan.get());
  Table* table = db_->catalog()->GetTable("fact").value();
  ExecContext ctx;
  ctx.Cancel();
  FifoBuffer out;
  Status st = RunScan(*scan, table, nullptr, &ctx, &out);
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_EQ(out.Next(), nullptr);
  EXPECT_EQ(out.FinalStatus().code(), StatusCode::kAborted);
}

TEST_F(OperatorsTest, AbandonedConsumerStopsProducer) {
  auto plan = FactScan(TruePredicate());
  auto* scan = static_cast<const ScanNode*>(plan.get());
  Table* table = db_->catalog()->GetTable("fact").value();
  ExecContext ctx;
  auto out = std::make_shared<FifoBuffer>(2);
  out->CancelReader();
  Status st = RunScan(*scan, table, nullptr, &ctx, out.get());
  EXPECT_EQ(st.code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace sharing
