// Integration tests for the QPipe staged engine: dispatch, SP push/pull
// semantics, satellite accounting, and cancellation.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "exec/reference_executor.h"
#include "qpipe/engine.h"
#include "test_util.h"

namespace sharing {
namespace {

using testing::ExpectResultsEquivalent;
using testing::MakeTestDatabase;

class QPipeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase();
    Schema fact_schema({Column::Int64("id"), Column::Int64("fk"),
                        Column::Double("val")});
    auto t = db_->catalog()->CreateTable("fact", fact_schema,
                                         db_->buffer_pool());
    ASSERT_TRUE(t.ok());
    TableAppender appender(t.value());
    for (int64_t i = 0; i < 5000; ++i) {
      auto row = appender.AppendRow();
      ASSERT_TRUE(row.ok());
      row.value().SetInt64(0, i).SetInt64(1, i % 40).SetDouble(
          2, double(i % 97));
    }
    ASSERT_TRUE(appender.Finish().ok());

    Schema dim_schema({Column::Int64("dk"), Column::String("label", 6)});
    auto d = db_->catalog()->CreateTable("dim", dim_schema,
                                         db_->buffer_pool());
    ASSERT_TRUE(d.ok());
    TableAppender da(d.value());
    for (int64_t k = 0; k < 40; ++k) {
      auto row = da.AppendRow();
      ASSERT_TRUE(row.ok());
      std::string label = "L" + std::to_string(k % 5);
      row.value().SetInt64(0, k).SetString(1, label);
    }
    ASSERT_TRUE(da.Finish().ok());
  }

  Schema FactSchema() {
    return db_->catalog()->GetTable("fact").value()->schema();
  }
  Schema DimSchema() {
    return db_->catalog()->GetTable("dim").value()->schema();
  }

  PlanNodeRef ScanPlan(int64_t lt = 4000) {
    return std::make_shared<ScanNode>(
        "fact", FactSchema(),
        Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(lt)),
        std::vector<std::size_t>{0, 1, 2});
  }

  /// scan -> agg plan (Q1-shaped).
  PlanNodeRef AggPlan(int64_t lt = 4000) {
    return std::make_shared<AggregateNode>(
        ScanPlan(lt), std::vector<std::size_t>{1},
        std::vector<AggSpec>{
            AggSpec::Sum(Col(2, ValueType::kDouble), "sum_val"),
            AggSpec::Count("n")});
  }

  /// dim join fact -> agg plan (star-shaped).
  PlanNodeRef JoinAggPlan() {
    auto dim = std::make_shared<ScanNode>("dim", DimSchema(),
                                          TruePredicate(),
                                          std::vector<std::size_t>{0, 1});
    auto join = std::make_shared<JoinNode>(dim, ScanPlan(), 0, 1);
    std::size_t label = join->output_schema().ColumnIndex("label").value();
    std::size_t val = join->output_schema().ColumnIndex("val").value();
    return std::make_shared<AggregateNode>(
        join, std::vector<std::size_t>{label},
        std::vector<AggSpec>{
            AggSpec::Sum(Col(val, ValueType::kDouble), "sum_val")});
  }

  ResultSet Reference(const PlanNodeRef& plan) {
    ReferenceExecutor ref(db_->catalog());
    auto r = ref.Execute(*plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(QPipeTest, ScanPlanMatchesReference) {
  QPipeEngine engine(db_->catalog(), QPipeOptions{}, db_->metrics());
  auto got = engine.Execute(ScanPlan());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectResultsEquivalent(Reference(ScanPlan()), got.value());
}

TEST_F(QPipeTest, AggPlanMatchesReference) {
  QPipeEngine engine(db_->catalog(), QPipeOptions{}, db_->metrics());
  auto got = engine.Execute(AggPlan());
  ASSERT_TRUE(got.ok());
  ExpectResultsEquivalent(Reference(AggPlan()), got.value());
}

TEST_F(QPipeTest, JoinAggPlanMatchesReference) {
  QPipeEngine engine(db_->catalog(), QPipeOptions{}, db_->metrics());
  auto got = engine.Execute(JoinAggPlan());
  ASSERT_TRUE(got.ok());
  ExpectResultsEquivalent(Reference(JoinAggPlan()), got.value());
}

TEST_F(QPipeTest, SortPlanPreservesRows) {
  QPipeEngine engine(db_->catalog(), QPipeOptions{}, db_->metrics());
  auto sorted = std::make_shared<SortNode>(
      AggPlan(), std::vector<SortKey>{{1, false}});
  auto got = engine.Execute(PlanNodeRef(sorted));
  ASSERT_TRUE(got.ok());
  ExpectResultsEquivalent(Reference(sorted), got.value());
}

TEST_F(QPipeTest, ConcurrentDistinctQueries) {
  QPipeEngine engine(db_->catalog(), QPipeOptions{}, db_->metrics());
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto plan = AggPlan(1000 + t * 100);  // distinct per thread
      auto want = Reference(plan);
      auto got = engine.Execute(plan);
      if (got.ok() && got.value().CanonicalRows() == want.CanonicalRows()) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads);
}

// ---------------------------------------------------------------------------
// SP semantics
// ---------------------------------------------------------------------------

class QPipeSpTest : public QPipeTest,
                    public ::testing::WithParamInterface<SpMode> {};

TEST_P(QPipeSpTest, IdenticalQueriesShareAndMatchReference) {
  QPipeOptions options = QPipeOptions::AllSp(GetParam());
  QPipeEngine engine(db_->catalog(), options, db_->metrics());

  constexpr int kQueries = 8;
  auto want = Reference(AggPlan());

  // Submit identical plans concurrently; sharing must not change results.
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int q = 0; q < kQueries; ++q) {
    threads.emplace_back([&] {
      auto got = engine.Execute(AggPlan());
      if (got.ok() && got.value().CanonicalRows() == want.CanonicalRows()) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kQueries);
}

TEST_P(QPipeSpTest, BatchSubmissionProducesSatellites) {
  QPipeOptions options = QPipeOptions::AllSp(GetParam());
  QPipeEngine engine(db_->catalog(), options, db_->metrics());

  constexpr int kQueries = 6;
  // Submit all handles first (the batched pattern), then collect: every
  // query after the first should attach as a satellite at some stage.
  std::vector<QueryHandle> handles;
  for (int q = 0; q < kQueries; ++q) {
    handles.push_back(engine.Submit(AggPlan()));
  }
  auto want = Reference(AggPlan());
  for (auto& h : handles) {
    auto got = h.Collect();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectResultsEquivalent(want, got.value());
  }
  StageStats scan_stats = engine.scan_stage()->GetStats();
  StageStats agg_stats = engine.agg_stage()->GetStats();
  EXPECT_GT(scan_stats.sp_hits + agg_stats.sp_hits, 0)
      << "batched identical queries must produce SP satellites";
  EXPECT_LT(scan_stats.packets_executed + agg_stats.packets_executed,
            2 * kQueries)
      << "sharing must reduce executed packets";
}

TEST_P(QPipeSpTest, DifferentPredicatesDoNotShare) {
  QPipeOptions options = QPipeOptions::AllSp(GetParam());
  QPipeEngine engine(db_->catalog(), options, db_->metrics());

  std::vector<QueryHandle> handles;
  for (int q = 0; q < 4; ++q) {
    handles.push_back(engine.Submit(AggPlan(100 + q)));  // all distinct
  }
  for (auto& h : handles) {
    ASSERT_TRUE(h.Collect().ok());
  }
  EXPECT_EQ(engine.scan_stage()->GetStats().sp_hits, 0);
  EXPECT_EQ(engine.agg_stage()->GetStats().sp_hits, 0);
}

INSTANTIATE_TEST_SUITE_P(PushPullAdaptive, QPipeSpTest,
                         ::testing::Values(SpMode::kPush, SpMode::kPull,
                                           SpMode::kAdaptive),
                         [](const auto& info) {
                           return std::string(SpModeToString(info.param));
                         });

TEST_F(QPipeTest, AdaptiveSharesHotQueriesAndSkipsColdOnes) {
  QPipeOptions options = QPipeOptions::AllSp(SpMode::kAdaptive);
  QPipeEngine engine(db_->catalog(), options, db_->metrics());

  // Cold phase: distinct plans; the adaptive policy must not host sharing
  // channels for signatures it has never seen twice.
  for (int q = 0; q < 4; ++q) {
    ASSERT_TRUE(engine.Execute(AggPlan(200 + q)).ok());
  }
  StageStats cold = engine.scan_stage()->GetStats();
  EXPECT_EQ(cold.sp_hits, 0);
  EXPECT_GT(cold.adaptive_off, 0)
      << "never-repeated signatures must execute unshared";
  EXPECT_EQ(cold.adaptive_push + cold.adaptive_pull, 0);

  // Hot phase: the same plan submitted in a batch. From the second
  // sighting on the signature is hot, so a sharing channel is hosted and
  // later submissions attach as satellites.
  constexpr int kQueries = 6;
  std::vector<QueryHandle> handles;
  for (int q = 0; q < kQueries; ++q) {
    handles.push_back(engine.Submit(AggPlan()));
  }
  auto want = Reference(AggPlan());
  for (auto& h : handles) {
    auto got = h.Collect();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectResultsEquivalent(want, got.value());
  }
  StageStats hot = engine.scan_stage()->GetStats();
  StageStats hot_agg = engine.agg_stage()->GetStats();
  EXPECT_GT(hot.adaptive_push + hot.adaptive_pull + hot_agg.adaptive_push +
                hot_agg.adaptive_pull,
            0)
      << "a repeated signature must be hosted on a sharing channel";
  EXPECT_GT(hot.sp_hits + hot_agg.sp_hits, 0);
}

TEST_F(QPipeTest, AdaptivePopularityLruKeepsHotSignaturesUnderColdChurn) {
  QPipeOptions options = QPipeOptions::AllSp(SpMode::kAdaptive);
  // A tiny popularity map under sustained cold churn: the LRU must evict
  // the one-off signatures and keep the recurring template's history.
  // (The old implementation shed the *entire* map when full, forgetting
  // the hot template along with the noise.)
  options.adaptive.popularity_capacity = 4;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());

  ASSERT_TRUE(engine.Execute(AggPlan()).ok());  // prime the hot template
  constexpr int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    ASSERT_TRUE(engine.Execute(AggPlan(500 + round)).ok());  // cold one-off
    ASSERT_TRUE(engine.Execute(AggPlan(700 + round)).ok());  // cold one-off
    ASSERT_TRUE(engine.Execute(AggPlan()).ok());             // hot re-touch
  }
  StageStats scan = engine.scan_stage()->GetStats();
  // Every hot re-touch recurred within three submissions, so despite 20
  // distinct cold signatures flooding a 4-entry map the hot template must
  // still be recognized every time: only the cold one-offs (and the first
  // hot sighting) may be gated by the popularity window. Whether a
  // recognized re-touch is then hosted push/pull or judged
  // not-worth-sharing is the cost model's per-signature call (these
  // sequential re-touches never overlap, so "unshared" is a legitimate
  // verdict) — the LRU property under test is the recognition itself.
  EXPECT_EQ(scan.adaptive_off_cold, 2 * kRounds + 1);
  const int64_t hot_decisions = scan.adaptive_push + scan.adaptive_pull +
                                (scan.adaptive_off - scan.adaptive_off_cold);
  EXPECT_EQ(hot_decisions, kRounds);
}

TEST_F(QPipeTest, MixedSignaturesGetPerSignatureAdmissions) {
  // Two templates hammer the SAME stage: a cheap one-page scan and an
  // expensive whole-table scan. Stage-wide means would hand both the
  // same transport; the per-signature cost model must split them — the
  // big laggy result goes pull (cheap attaches, retention absorbed),
  // while the one-pager never does (push copies of one page beat pull
  // bookkeeping, or sharing is skipped outright).
  QPipeOptions options = QPipeOptions::AllSp(SpMode::kAdaptive);
  options.cost_model_min_samples = 2;
  QPipeEngine engine(db_->catalog(), options, db_->metrics());

  // A wide table so the full scan produces a genuinely large result
  // (hundreds of rows per page instead of ~1300): the two signatures
  // must sit on opposite sides of the copy-vs-retention crossover.
  Schema wide_schema({Column::Int64("id"), Column::Double("val"),
                      Column::String("pad", 96)});
  auto wide = db_->catalog()->CreateTable("wide", wide_schema,
                                          db_->buffer_pool());
  ASSERT_TRUE(wide.ok());
  {
    TableAppender appender(wide.value());
    const std::string pad(90, 'x');
    for (int64_t i = 0; i < 20000; ++i) {
      auto row = appender.AppendRow();
      ASSERT_TRUE(row.ok());
      row.value().SetInt64(0, i).SetDouble(1, double(i % 101)).SetString(2,
                                                                         pad);
    }
    ASSERT_TRUE(appender.Finish().ok());
  }
  auto wide_scan = [&](int64_t lt) {
    return std::make_shared<ScanNode>(
        "wide", wide.value()->schema(),
        Cmp(CmpOp::kLt, Col(0, ValueType::kInt64), Lit(lt)),
        std::vector<std::size_t>{0, 1, 2});
  };
  PlanNodeRef cheap = wide_scan(200);        // ~1 output page
  PlanNodeRef expensive = wide_scan(20000);  // dozens of output pages
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<QueryHandle> handles;
    for (int i = 0; i < 4; ++i) handles.push_back(engine.Submit(cheap));
    for (int i = 0; i < 6; ++i) handles.push_back(engine.Submit(expensive));
    // One consumer thread per query, as a real server would have: a
    // root-level scan batched behind an undrained sibling would convoy
    // the shared circular scan if collected sequentially.
    std::vector<std::thread> consumers;
    std::atomic<int> ok{0};
    for (auto& h : handles) {
      consumers.emplace_back([&h, &ok] {
        if (h.Collect().ok()) ok.fetch_add(1);
      });
    }
    for (auto& c : consumers) c.join();
    ASSERT_EQ(ok.load(), static_cast<int>(handles.size()));
  }

  auto snaps = engine.scan_stage()->CostModelSnapshot();
  ASSERT_EQ(snaps.size(), 2u);
  const auto& cheap_snap =
      snaps[0].mean_pages < snaps[1].mean_pages ? snaps[0] : snaps[1];
  const auto& expensive_snap =
      snaps[0].mean_pages < snaps[1].mean_pages ? snaps[1] : snaps[0];
  EXPECT_LT(cheap_snap.mean_pages, expensive_snap.mean_pages);

  // Both signatures accumulated enough history for real model decisions.
  EXPECT_GT(cheap_snap.decided_off + cheap_snap.decided_push +
                cheap_snap.decided_pull,
            0)
      << "cheap signature never reached the cost model";
  EXPECT_GT(expensive_snap.decided_off + expensive_snap.decided_push +
                expensive_snap.decided_pull,
            0)
      << "expensive signature never reached the cost model";

  // The expensive signature's result size and satellite fan-out make
  // pull strictly dominant; the cheap one must never be routed there.
  EXPECT_GT(expensive_snap.decided_pull, 0);
  EXPECT_EQ(expensive_snap.decided_push, 0);
  EXPECT_EQ(expensive_snap.decided_off, 0);
  EXPECT_EQ(cheap_snap.decided_pull, 0)
      << "a one-page result must not pay pull retention bookkeeping";

  // And the satellites the decisions promised actually materialized.
  EXPECT_GT(engine.scan_stage()->GetStats().sp_hits, 0);
}

TEST_F(QPipeTest, PushSpCopiesPagesPullSpShares) {
  // Push mode must report copied pages; pull mode must not copy at all.
  auto run = [&](SpMode mode) {
    auto before = db_->metrics()->Snapshot();
    QPipeEngine engine(db_->catalog(), QPipeOptions::AllSp(mode),
                       db_->metrics());
    std::vector<QueryHandle> handles;
    for (int q = 0; q < 4; ++q) handles.push_back(engine.Submit(AggPlan()));
    for (auto& h : handles) EXPECT_TRUE(h.Collect().ok());
    return MetricsRegistry::Delta(before, db_->metrics()->Snapshot());
  };

  auto push_delta = run(SpMode::kPush);
  auto pull_delta = run(SpMode::kPull);

  if (push_delta[metrics::kSpOpportunities] > 0) {
    EXPECT_GT(push_delta[metrics::kSpPagesCopied], 0)
        << "push-model satellites are fed by copies";
  }
  EXPECT_EQ(pull_delta[metrics::kSpPagesCopied], 0)
      << "pull-model SP must not copy pages";
  EXPECT_GT(pull_delta[metrics::kSpPagesShared], 0);
}

TEST_F(QPipeTest, PullSpWindowWiderThanPush) {
  // In pull mode a satellite can attach while the host is mid-production;
  // in push mode the window closes at the first emitted page. We verify
  // the pull engine still shares when queries arrive staggered (host
  // already running), while results stay correct in both modes.
  auto run_staggered = [&](SpMode mode) {
    QPipeEngine engine(db_->catalog(), QPipeOptions::AllSp(mode),
                       db_->metrics());
    QueryHandle h1 = engine.Submit(AggPlan());
    // Give the host time to start scanning (and emit pages).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    QueryHandle h2 = engine.Submit(AggPlan());
    EXPECT_TRUE(h1.Collect().ok());
    EXPECT_TRUE(h2.Collect().ok());
    return engine.scan_stage()->GetStats().sp_hits;
  };
  // Pull mode: staggered arrival can still share the scan (the SPL keeps
  // history). We assert it *may* share without requiring it (timing), but
  // the results above must be correct either way; the metric is reported
  // for visibility.
  int64_t pull_hits = run_staggered(SpMode::kPull);
  (void)pull_hits;
  SUCCEED();
}

TEST_F(QPipeTest, SatelliteCancelLeavesHostIntact) {
  QPipeEngine engine(db_->catalog(), QPipeOptions::AllSp(SpMode::kPull),
                     db_->metrics());
  // Submit two identical queries; cancel the second (satellite) early.
  QueryHandle host = engine.Submit(AggPlan());
  QueryHandle satellite = engine.Submit(AggPlan());
  satellite.Cancel();
  auto sat_result = satellite.Collect();
  // The satellite observes an abort (or, if it finished before the cancel
  // landed, a complete result — both acceptable). The host must finish.
  auto host_result = host.Collect();
  ASSERT_TRUE(host_result.ok()) << host_result.status().ToString();
  ExpectResultsEquivalent(Reference(AggPlan()), host_result.value());
  (void)sat_result;
}

TEST_F(QPipeTest, CancelledQueryAborts) {
  QPipeEngine engine(db_->catalog(), QPipeOptions{}, db_->metrics());
  QueryHandle h = engine.Submit(AggPlan());
  h.Cancel();
  auto result = h.Collect();
  // Either the query aborts, or it completed before the cancel landed.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  }
}

TEST_F(QPipeTest, SpModeSwitchableAtRuntime) {
  QPipeEngine engine(db_->catalog(), QPipeOptions{}, db_->metrics());
  EXPECT_EQ(engine.scan_stage()->sp_mode(), SpMode::kOff);
  engine.SetSpModeAllStages(SpMode::kPull);
  EXPECT_EQ(engine.scan_stage()->sp_mode(), SpMode::kPull);
  EXPECT_EQ(engine.agg_stage()->sp_mode(), SpMode::kPull);
  auto got = engine.Execute(AggPlan());
  ASSERT_TRUE(got.ok());
}

}  // namespace
}  // namespace sharing
