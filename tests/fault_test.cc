// Unit tests for the engine-wide fault-injection registry: spec parsing
// (and rejection), trigger modes (probability / every-Nth / one-shot),
// payloads, determinism under a fixed seed, the disarmed fast path, and
// the admin-facing JSON dump.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace sharing {
namespace {

/// Every test leaves the process-global registry disarmed.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Global().Disarm(); }

  FaultRegistry& reg() { return FaultRegistry::Global(); }
};

TEST_F(FaultRegistryTest, DisarmedChecksNeverFire) {
  reg().Disarm();
  EXPECT_FALSE(reg().armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(SHARING_FAULT_POINT(fault_points::kDiskRead));
  }
}

TEST_F(FaultRegistryTest, OnceFiresExactlyOnce) {
  SHARING_CHECK_OK(reg().Arm("disk.read=once"));
  EXPECT_TRUE(reg().armed());
  int fires = 0;
  for (int i = 0; i < 100; ++i) {
    if (reg().Check(fault_points::kDiskRead)) ++fires;
  }
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(reg().TotalFires(), 1u);
}

TEST_F(FaultRegistryTest, EveryNthFiresOnSchedule) {
  SHARING_CHECK_OK(reg().Arm("disk.write=n3"));
  std::vector<int> fired_at;
  for (int i = 1; i <= 9; ++i) {
    if (reg().Check(fault_points::kDiskWrite)) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{3, 6, 9}));
}

TEST_F(FaultRegistryTest, ProbabilityOneAlwaysFiresZeroNeverDoes) {
  SHARING_CHECK_OK(reg().Arm("disk.read=p1,disk.write=p0"));
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(reg().Check(fault_points::kDiskRead));
    EXPECT_FALSE(reg().Check(fault_points::kDiskWrite));
  }
}

TEST_F(FaultRegistryTest, ProbabilityScheduleIsDeterministicPerSeed) {
  auto draw = [&](const std::string& spec) {
    SHARING_CHECK_OK(reg().Arm(spec));
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) {
      outcomes.push_back(bool(reg().Check(fault_points::kSharingAppend)));
    }
    return outcomes;
  };
  auto a = draw("seed=7,sharing.append=p0.3");
  auto b = draw("seed=7,sharing.append=p0.3");
  auto c = draw("seed=8,sharing.append=p0.3");
  EXPECT_EQ(a, b) << "same seed, same spec => identical fire sequence";
  EXPECT_NE(a, c) << "a different seed must reshuffle the sequence";
}

TEST_F(FaultRegistryTest, PayloadRidesTheHit) {
  SHARING_CHECK_OK(reg().Arm("io.dispatch.delay=once*2500"));
  FaultHit hit = reg().Check(fault_points::kIoDispatchDelay);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit.payload, 2500);
}

TEST_F(FaultRegistryTest, UnarmedPointStaysQuietWhileOthersFire) {
  SHARING_CHECK_OK(reg().Arm("spill.open=p1"));
  EXPECT_TRUE(reg().Check(fault_points::kSpillOpen));
  EXPECT_FALSE(reg().Check(fault_points::kDiskRead));
}

TEST_F(FaultRegistryTest, BadSpecsRejectedAndScheduleUntouched) {
  SHARING_CHECK_OK(reg().Arm("disk.read=p1"));
  for (const char* bad :
       {"nonsense", "disk.read=", "disk.read=q5", "disk.read=p",
        "disk.read=n0", "disk.read=nx", "=p1", "seed=notanint",
        "disk.read=p2.5", "disk.read=once*junk"}) {
    EXPECT_FALSE(reg().Arm(bad).ok()) << "spec accepted: " << bad;
  }
  // The pre-error schedule survives every rejected Arm.
  EXPECT_TRUE(reg().armed());
  EXPECT_TRUE(reg().Check(fault_points::kDiskRead));
}

TEST_F(FaultRegistryTest, EmptySpecDisarms) {
  SHARING_CHECK_OK(reg().Arm("disk.read=p1"));
  SHARING_CHECK_OK(reg().Arm(""));
  EXPECT_FALSE(reg().armed());
  EXPECT_FALSE(reg().Check(fault_points::kDiskRead));
}

TEST_F(FaultRegistryTest, RearmReplacesWholeSchedule) {
  SHARING_CHECK_OK(reg().Arm("disk.read=p1"));
  SHARING_CHECK_OK(reg().Arm("disk.write=p1"));
  EXPECT_FALSE(reg().Check(fault_points::kDiskRead))
      << "re-arming must drop points absent from the new spec";
  EXPECT_TRUE(reg().Check(fault_points::kDiskWrite));
}

TEST_F(FaultRegistryTest, FiresCountIntoBoundMetrics) {
  MetricsRegistry metrics;
  reg().BindMetrics(&metrics);
  SHARING_CHECK_OK(reg().Arm("disk.read=p1"));
  reg().Check(fault_points::kDiskRead);
  reg().Check(fault_points::kDiskRead);
  EXPECT_EQ(metrics.GetCounter(metrics::kFaultInjected)->Get(), 2);
  reg().BindMetrics(&MetricsRegistry::Global());
}

TEST_F(FaultRegistryTest, DescribeJsonNamesPointsAndSpec) {
  SHARING_CHECK_OK(reg().Arm("seed=9,disk.read=n4*77"));
  reg().Check(fault_points::kDiskRead);
  const std::string json = reg().DescribeJson();
  EXPECT_NE(json.find("\"armed\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("disk.read"), std::string::npos) << json;
  EXPECT_NE(json.find("seed=9"), std::string::npos) << json;
  reg().Disarm();
  EXPECT_NE(reg().DescribeJson().find("\"armed\":false"),
            std::string::npos);
}

}  // namespace
}  // namespace sharing
