// Concurrency tests for the page-flow buffers: FifoBuffer (push model) and
// SharedPagesList (the paper's pull-model SPL).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "qpipe/fifo_buffer.h"
#include "qpipe/shared_pages_list.h"

namespace sharing {
namespace {

PageRef MakePage(int64_t tag, std::size_t rows = 4) {
  auto page = std::make_shared<RowPage>(sizeof(int64_t), 64);
  for (std::size_t i = 0; i < rows; ++i) {
    int64_t v = tag * 100 + static_cast<int64_t>(i);
    page->AppendRow(reinterpret_cast<const uint8_t*>(&v));
  }
  return page;
}

int64_t FirstValue(const PageRef& page) {
  int64_t v;
  std::memcpy(&v, page->RowAt(0), sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// FifoBuffer
// ---------------------------------------------------------------------------

TEST(FifoBufferTest, InOrderDelivery) {
  FifoBuffer fifo(4);
  fifo.Put(MakePage(1));
  fifo.Put(MakePage(2));
  fifo.Close(Status::OK());
  EXPECT_EQ(FirstValue(fifo.Next()), 100);
  EXPECT_EQ(FirstValue(fifo.Next()), 200);
  EXPECT_EQ(fifo.Next(), nullptr);
  EXPECT_TRUE(fifo.FinalStatus().ok());
}

TEST(FifoBufferTest, BackpressureBlocksProducer) {
  FifoBuffer fifo(2);
  std::atomic<int> produced{0};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      fifo.Put(MakePage(i));
      produced.fetch_add(1);
    }
    fifo.Close(Status::OK());
  });
  // Give the producer time to fill the buffer and block.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(produced.load(), 3);  // capacity 2 (+1 in flight)
  while (fifo.Next() != nullptr) {
  }
  producer.join();
  EXPECT_EQ(produced.load(), 6);
}

TEST(FifoBufferTest, ReaderCancelUnblocksProducer) {
  FifoBuffer fifo(1);
  std::atomic<bool> done{false};
  std::thread producer([&] {
    bool alive = true;
    for (int i = 0; i < 100 && alive; ++i) {
      alive = fifo.Put(MakePage(i));
    }
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fifo.CancelReader();
  producer.join();
  EXPECT_TRUE(done.load());
}

TEST(FifoBufferTest, CloseWithErrorSurfacesToConsumer) {
  FifoBuffer fifo(4);
  fifo.Put(MakePage(1));
  fifo.Close(Status::Aborted("producer died"));
  EXPECT_NE(fifo.Next(), nullptr);  // buffered page still delivered
  EXPECT_EQ(fifo.Next(), nullptr);
  EXPECT_EQ(fifo.FinalStatus().code(), StatusCode::kAborted);
}

TEST(FifoBufferTest, PutAfterCloseFails) {
  FifoBuffer fifo(4);
  fifo.Close(Status::OK());
  EXPECT_FALSE(fifo.Put(MakePage(1)));
}

TEST(FifoBufferTest, ProducerConsumerStress) {
  FifoBuffer fifo(8);
  constexpr int kPages = 2000;
  std::thread producer([&] {
    for (int i = 0; i < kPages; ++i) fifo.Put(MakePage(i, 1));
    fifo.Close(Status::OK());
  });
  int64_t expected = 0;
  while (PageRef page = fifo.Next()) {
    EXPECT_EQ(FirstValue(page), expected * 100);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kPages);
}

// ---------------------------------------------------------------------------
// SharedPagesList
// ---------------------------------------------------------------------------

TEST(SplTest, SingleReaderSeesAllPagesInOrder) {
  auto spl = SharedPagesList::Create();
  auto reader = spl->AttachReader();
  ASSERT_NE(reader, nullptr);
  spl->Append(MakePage(1));
  spl->Append(MakePage(2));
  spl->Close(Status::OK());
  EXPECT_EQ(FirstValue(reader->Next()), 100);
  EXPECT_EQ(FirstValue(reader->Next()), 200);
  EXPECT_EQ(reader->Next(), nullptr);
  EXPECT_TRUE(reader->FinalStatus().ok());
}

TEST(SplTest, PagesAreSharedNotCopied) {
  auto spl = SharedPagesList::Create();
  auto r1 = spl->AttachReader();
  auto r2 = spl->AttachReader();
  PageRef page = MakePage(7);
  const RowPage* raw = page.get();
  spl->Append(std::move(page));
  spl->Close(Status::OK());
  // Both readers observe the *same* page object — the defining property
  // of pull-based SP (no per-consumer copies).
  EXPECT_EQ(r1->Next().get(), raw);
  EXPECT_EQ(r2->Next().get(), raw);
}

TEST(SplTest, LateReaderSeesHistory) {
  auto spl = SharedPagesList::Create();
  auto early = spl->AttachReader();
  spl->Append(MakePage(1));
  spl->Append(MakePage(2));
  // Late attach mid-production: the widened pull-model sharing window.
  auto late = spl->AttachReader();
  ASSERT_NE(late, nullptr);
  spl->Append(MakePage(3));
  spl->Close(Status::OK());

  int early_count = 0, late_count = 0;
  while (early->Next()) ++early_count;
  while (late->Next()) ++late_count;
  EXPECT_EQ(early_count, 3);
  EXPECT_EQ(late_count, 3);
}

TEST(SplTest, AttachAfterOkCloseStillWorks) {
  auto spl = SharedPagesList::Create();
  auto keeper = spl->AttachReader();  // keeps producer alive
  spl->Append(MakePage(1));
  spl->Close(Status::OK());
  auto reader = spl->AttachReader();
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(FirstValue(reader->Next()), 100);
  EXPECT_EQ(reader->Next(), nullptr);
}

TEST(SplTest, AttachAfterAbortFails) {
  auto spl = SharedPagesList::Create();
  auto reader = spl->AttachReader();
  spl->Close(Status::Aborted("host cancelled"));
  EXPECT_EQ(spl->AttachReader(), nullptr);
  EXPECT_EQ(reader->Next(), nullptr);
  EXPECT_EQ(reader->FinalStatus().code(), StatusCode::kAborted);
}

TEST(SplTest, AppendFailsWhenAllReadersCancelled) {
  auto spl = SharedPagesList::Create();
  auto r1 = spl->AttachReader();
  auto r2 = spl->AttachReader();
  EXPECT_TRUE(spl->Append(MakePage(1)));
  r1->Cancel();
  EXPECT_TRUE(spl->Append(MakePage(2)));  // r2 still live
  r2->Cancel();
  EXPECT_FALSE(spl->Append(MakePage(3)));  // everyone gone
}

TEST(SplTest, CancelledReaderStopsEarly) {
  auto spl = SharedPagesList::Create();
  auto reader = spl->AttachReader();
  spl->Append(MakePage(1));
  reader->Cancel();
  EXPECT_EQ(reader->Next(), nullptr);
  EXPECT_EQ(reader->FinalStatus().code(), StatusCode::kAborted);
}

TEST(SplTest, ManyConcurrentReadersSeeIdenticalStream) {
  auto spl = SharedPagesList::Create();
  constexpr int kReaders = 8;
  constexpr int kPages = 500;

  std::vector<std::shared_ptr<SplReader>> readers;
  for (int r = 0; r < kReaders; ++r) readers.push_back(spl->AttachReader());

  std::thread producer([&] {
    for (int i = 0; i < kPages; ++i) spl->Append(MakePage(i, 1));
    spl->Close(Status::OK());
  });

  std::vector<std::thread> consumers;
  std::atomic<int> failures{0};
  for (int r = 0; r < kReaders; ++r) {
    consumers.emplace_back([&, r] {
      int64_t expect = 0;
      while (PageRef page = readers[r]->Next()) {
        if (FirstValue(page) != expect * 100) failures.fetch_add(1);
        ++expect;
      }
      if (expect != kPages) failures.fetch_add(1);
    });
  }
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(spl->NumPages(), static_cast<std::size_t>(kPages));
}

TEST(SplTest, SlowAndFastReadersBothComplete) {
  auto spl = SharedPagesList::Create();
  auto fast = spl->AttachReader();
  auto slow = spl->AttachReader();

  std::thread producer([&] {
    for (int i = 0; i < 50; ++i) spl->Append(MakePage(i));
    spl->Close(Status::OK());
  });
  std::thread fast_consumer([&] {
    while (fast->Next()) {
    }
  });
  int slow_count = 0;
  while (PageRef page = slow->Next()) {
    ++slow_count;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  producer.join();
  fast_consumer.join();
  EXPECT_EQ(slow_count, 50);
}

}  // namespace
}  // namespace sharing
