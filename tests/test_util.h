// Shared helpers for the test suite.

#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "exec/result.h"
#include "storage/table.h"

namespace sharing::testing {

/// In-memory database with a generous frame budget (no latency model).
inline std::unique_ptr<Database> MakeTestDatabase(
    std::size_t frames = 16384) {
  DatabaseOptions options;
  options.buffer_pool_frames = frames;
  return std::make_unique<Database>(options);
}

/// Creates a two-column (id int64, val double) table with `n` rows:
/// id = 0..n-1, val = id * 0.5.
inline Table* MakeSimpleTable(Database* db, const std::string& name,
                              int64_t n) {
  Schema schema({Column::Int64("id"), Column::Double("val")});
  auto table_or = db->catalog()->CreateTable(name, schema, db->buffer_pool());
  EXPECT_TRUE(table_or.ok()) << table_or.status().ToString();
  Table* table = table_or.value();
  TableAppender appender(table);
  for (int64_t i = 0; i < n; ++i) {
    auto row_or = appender.AppendRow();
    EXPECT_TRUE(row_or.ok());
    row_or.value().SetInt64(0, i).SetDouble(1, double(i) * 0.5);
  }
  EXPECT_TRUE(appender.Finish().ok());
  return table;
}

/// Asserts two result sets contain the same rows (order-insensitive) and
/// identical schemas.
inline void ExpectResultsEquivalent(const ResultSet& a, const ResultSet& b,
                                    const std::string& label = "") {
  ASSERT_TRUE(a.schema() == b.schema())
      << label << ": schemas differ: " << a.schema().ToString() << " vs "
      << b.schema().ToString();
  auto ra = a.CanonicalRows();
  auto rb = b.CanonicalRows();
  ASSERT_EQ(ra.size(), rb.size()) << label << ": row counts differ";
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(ra[i], rb[i]) << label << ": row " << i << " differs";
  }
}

}  // namespace sharing::testing
