// Unit tests for the expression library: evaluation semantics and the
// canonical forms SP matching depends on.

#include <gtest/gtest.h>

#include <vector>

#include "exec/expr.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace sharing {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest()
      : schema_({Column::Int64("i"), Column::Double("d"),
                 Column::DateCol("t"), Column::String("s", 8)}),
        row_(schema_.row_width()) {
    RowWriter w(row_.data(), &schema_);
    w.SetInt64(0, 10)
        .SetDouble(1, 2.5)
        .SetDate(2, MakeDate(1994, 3, 15))
        .SetString(3, "BRAND");
  }

  TupleRef Row() const { return TupleRef(row_.data(), &schema_); }

  ExprRef IntCol() const { return Col(0, ValueType::kInt64); }
  ExprRef DblCol() const { return Col(1, ValueType::kDouble); }
  ExprRef DateCol() const { return Col(2, ValueType::kDate); }
  ExprRef StrCol() const { return Col(3, ValueType::kString); }

  Schema schema_;
  std::vector<uint8_t> row_;
};

TEST_F(ExprTest, ColumnEval) {
  EXPECT_EQ(IntCol()->EvalInt64(Row()), 10);
  EXPECT_DOUBLE_EQ(DblCol()->EvalDouble(Row()), 2.5);
  EXPECT_EQ(StrCol()->EvalString(Row()), "BRAND");
}

TEST_F(ExprTest, LiteralEval) {
  EXPECT_EQ(Lit(int64_t{7})->EvalInt64(Row()), 7);
  EXPECT_DOUBLE_EQ(Lit(3.25)->EvalDouble(Row()), 3.25);
  EXPECT_EQ(Lit("xyz")->EvalString(Row()), "xyz");
}

TEST_F(ExprTest, IntComparisonIsExact) {
  EXPECT_TRUE(Cmp(CmpOp::kEq, IntCol(), Lit(int64_t{10}))->EvalBool(Row()));
  EXPECT_FALSE(Cmp(CmpOp::kLt, IntCol(), Lit(int64_t{10}))->EvalBool(Row()));
  EXPECT_TRUE(Cmp(CmpOp::kLe, IntCol(), Lit(int64_t{10}))->EvalBool(Row()));
  EXPECT_TRUE(Cmp(CmpOp::kNe, IntCol(), Lit(int64_t{11}))->EvalBool(Row()));
}

TEST_F(ExprTest, MixedNumericComparisonUsesDouble) {
  // 10 (int) > 2.5 (double)
  EXPECT_TRUE(Cmp(CmpOp::kGt, IntCol(), DblCol())->EvalBool(Row()));
}

TEST_F(ExprTest, DateComparison) {
  EXPECT_TRUE(
      Cmp(CmpOp::kGe, DateCol(), Lit(MakeDate(1994, 1, 1)))->EvalBool(Row()));
  EXPECT_FALSE(
      Cmp(CmpOp::kGt, DateCol(), Lit(MakeDate(1998, 1, 1)))->EvalBool(Row()));
}

TEST_F(ExprTest, StringComparisonTrimsPadding) {
  // The stored field is "BRAND   " (padded to 8); comparison must use the
  // trimmed value.
  EXPECT_TRUE(Cmp(CmpOp::kEq, StrCol(), Lit("BRAND"))->EvalBool(Row()));
  EXPECT_TRUE(Cmp(CmpOp::kLt, StrCol(), Lit("CANDY"))->EvalBool(Row()));
}

TEST_F(ExprTest, BetweenInclusive) {
  EXPECT_TRUE(
      Between(IntCol(), int64_t{10}, int64_t{20})->EvalBool(Row()));
  EXPECT_TRUE(
      Between(IntCol(), int64_t{5}, int64_t{10})->EvalBool(Row()));
  EXPECT_FALSE(
      Between(IntCol(), int64_t{11}, int64_t{20})->EvalBool(Row()));
}

TEST_F(ExprTest, LogicalConnectives) {
  ExprRef t = Cmp(CmpOp::kEq, IntCol(), Lit(int64_t{10}));
  ExprRef f = Cmp(CmpOp::kEq, IntCol(), Lit(int64_t{11}));
  EXPECT_TRUE(And(t, t)->EvalBool(Row()));
  EXPECT_FALSE(And(t, f)->EvalBool(Row()));
  EXPECT_TRUE(Or(f, t)->EvalBool(Row()));
  EXPECT_FALSE(Or(f, f)->EvalBool(Row()));
  EXPECT_TRUE(Not(f)->EvalBool(Row()));
}

TEST_F(ExprTest, ArithInt) {
  EXPECT_EQ(Arith(ArithOp::kAdd, IntCol(), Lit(int64_t{5}))->EvalInt64(Row()),
            15);
  EXPECT_EQ(Arith(ArithOp::kSub, IntCol(), Lit(int64_t{5}))->EvalInt64(Row()),
            5);
  EXPECT_EQ(Arith(ArithOp::kMul, IntCol(), Lit(int64_t{5}))->EvalInt64(Row()),
            50);
  EXPECT_EQ(Arith(ArithOp::kDiv, IntCol(), Lit(int64_t{3}))->EvalInt64(Row()),
            3);
  EXPECT_EQ(Arith(ArithOp::kMod, IntCol(), Lit(int64_t{3}))->EvalInt64(Row()),
            1);
}

TEST_F(ExprTest, ArithDoublePropagates) {
  ExprRef e = Arith(ArithOp::kMul, DblCol(), Lit(int64_t{4}));
  EXPECT_EQ(e->output_type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(e->EvalDouble(Row()), 10.0);
}

TEST_F(ExprTest, Q1StyleExpression) {
  // extprice * (1 - discount) with extprice=2.5(col d), discount=0.0...
  ExprRef e = Arith(ArithOp::kMul, DblCol(),
                    Arith(ArithOp::kSub, Lit(1.0), Lit(0.2)));
  EXPECT_NEAR(e->EvalDouble(Row()), 2.0, 1e-12);
}

TEST_F(ExprTest, TruePredicateAlwaysTrue) {
  EXPECT_TRUE(TruePredicate()->EvalBool(Row()));
}

// ---------------------------------------------------------------------------
// Canonical forms: identical expressions render identically; different
// ones differ (the SP-matching contract).
// ---------------------------------------------------------------------------

TEST_F(ExprTest, CanonicalStableAcrossInstances) {
  auto make = [&] {
    return And(Cmp(CmpOp::kGe, IntCol(), Lit(int64_t{3})),
               Cmp(CmpOp::kLt, DblCol(), Lit(9.5)));
  };
  EXPECT_EQ(make()->Canonical(), make()->Canonical());
}

TEST_F(ExprTest, CanonicalDistinguishesOps) {
  EXPECT_NE(Cmp(CmpOp::kLt, IntCol(), Lit(int64_t{3}))->Canonical(),
            Cmp(CmpOp::kLe, IntCol(), Lit(int64_t{3}))->Canonical());
}

TEST_F(ExprTest, CanonicalDistinguishesLiterals) {
  EXPECT_NE(Cmp(CmpOp::kLt, IntCol(), Lit(int64_t{3}))->Canonical(),
            Cmp(CmpOp::kLt, IntCol(), Lit(int64_t{4}))->Canonical());
}

TEST_F(ExprTest, CanonicalDistinguishesColumns) {
  EXPECT_NE(Cmp(CmpOp::kLt, IntCol(), Lit(int64_t{3}))->Canonical(),
            Cmp(CmpOp::kLt, Col(5, ValueType::kInt64), Lit(int64_t{3}))
                ->Canonical());
}

TEST_F(ExprTest, CanonicalRendersStructure) {
  ExprRef e = And(Cmp(CmpOp::kEq, IntCol(), Lit(int64_t{1})),
                  Not(Cmp(CmpOp::kGt, DblCol(), Lit(2.0))));
  EXPECT_EQ(e->Canonical(), "and((c0==1),not((c1>2)))");
}

TEST_F(ExprTest, ColNamedResolvesByName) {
  ExprRef e = ColNamed(schema_, "d");
  EXPECT_DOUBLE_EQ(e->EvalDouble(Row()), 2.5);
}

}  // namespace
}  // namespace sharing
