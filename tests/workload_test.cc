// Tests for the workload module: TPC-H/SSB generators, query templates,
// and the closed-loop client driver.

#include <gtest/gtest.h>

#include <set>

#include "common/stopwatch.h"
#include "exec/reference_executor.h"
#include "test_util.h"
#include "workload/driver.h"
#include "workload/ssb.h"
#include "workload/tpch.h"

namespace sharing {
namespace {

using testing::MakeTestDatabase;

// ---------------------------------------------------------------------------
// TPC-H generator
// ---------------------------------------------------------------------------

class TpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDatabase();
    auto t = tpch::GenerateLineitem(db_->catalog(), db_->buffer_pool(),
                                    0.001, 42);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    table_ = t.value();
  }
  std::unique_ptr<Database> db_;
  Table* table_;
};

TEST_F(TpchTest, RowCountMatchesScaleFactor) {
  EXPECT_EQ(table_->num_rows(), 6000u);  // 6M * 0.001
}

TEST_F(TpchTest, GeneratedValuesInDomain) {
  const Schema& s = table_->schema();
  std::size_t qty = s.ColumnIndex("l_quantity").value();
  std::size_t disc = s.ColumnIndex("l_discount").value();
  std::size_t rf = s.ColumnIndex("l_returnflag").value();
  std::size_t ship = s.ColumnIndex("l_shipdate").value();
  Date lo = MakeDate(1992, 1, 1), hi = MakeDate(1998, 12, 1);
  for (std::size_t p = 0; p < table_->num_pages(); ++p) {
    auto g = db_->buffer_pool()->FetchPage(table_->page_id(p));
    ASSERT_TRUE(g.ok());
    const uint8_t* frame = g.value().data();
    for (uint32_t i = 0; i < page_layout::RowCount(frame); ++i) {
      TupleRef row(page_layout::RowAt(frame, i), &s);
      EXPECT_GE(row.GetDouble(qty), 1.0);
      EXPECT_LE(row.GetDouble(qty), 50.0);
      EXPECT_GE(row.GetDouble(disc), 0.0);
      EXPECT_LE(row.GetDouble(disc), 0.10 + 1e-9);
      std::string_view flag = row.GetString(rf);
      EXPECT_TRUE(flag == "R" || flag == "A" || flag == "N");
      EXPECT_GE(row.GetDate(ship), lo);
      EXPECT_LE(row.GetDate(ship), hi);
    }
  }
}

TEST_F(TpchTest, GenerationDeterministicPerSeed) {
  auto db2 = MakeTestDatabase();
  auto t2 = tpch::GenerateLineitem(db2->catalog(), db2->buffer_pool(),
                                   0.001, 42);
  ASSERT_TRUE(t2.ok());
  // Compare an aggregate fingerprint of both tables.
  ReferenceExecutor ref1(db_->catalog()), ref2(db2->catalog());
  auto plan = tpch::MakeQ1Plan(90);
  auto r1 = ref1.Execute(*plan);
  auto r2 = ref2.Execute(*plan);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().CanonicalRows(), r2.value().CanonicalRows());
}

TEST_F(TpchTest, Q1HasExpectedGroups) {
  ReferenceExecutor ref(db_->catalog());
  auto r = ref.Execute(*tpch::MakeQ1Plan(90));
  ASSERT_TRUE(r.ok());
  // Q1 groups by (returnflag, linestatus): R/A pair with F, N with O/F.
  EXPECT_GE(r.value().num_rows(), 3u);
  EXPECT_LE(r.value().num_rows(), 6u);
  std::set<std::string> groups;
  for (std::size_t i = 0; i < r.value().num_rows(); ++i) {
    auto row = r.value().Row(i);
    groups.insert(std::string(row.GetString(0)) +
                  std::string(row.GetString(1)));
    // count_order is the last column and must be positive.
    EXPECT_GT(row.GetInt64(r.value().schema().num_columns() - 1), 0);
  }
  EXPECT_EQ(groups.size(), r.value().num_rows());
}

TEST_F(TpchTest, Q1DeltaAffectsSelectivity) {
  ReferenceExecutor ref(db_->catalog());
  auto narrow = ref.Execute(*tpch::MakeQ1Plan(/*delta_days=*/2400));
  auto wide = ref.Execute(*tpch::MakeQ1Plan(/*delta_days=*/0));
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  auto count_of = [](const ResultSet& r) {
    int64_t total = 0;
    for (std::size_t i = 0; i < r.num_rows(); ++i) {
      total += r.Row(i).GetInt64(r.schema().num_columns() - 1);
    }
    return total;
  };
  EXPECT_LT(count_of(narrow.value()), count_of(wide.value()));
}

// ---------------------------------------------------------------------------
// SSB generator
// ---------------------------------------------------------------------------

class SsbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = MakeTestDatabase().release();
    SHARING_CHECK_OK(
        ssb::GenerateAll(db_->catalog(), db_->buffer_pool(), 0.002, 11));
  }
  static Database* db_;
};

Database* SsbTest::db_ = nullptr;

TEST_F(SsbTest, AllTablesCreated) {
  for (const char* name :
       {"lineorder", "date", "customer", "supplier", "part"}) {
    EXPECT_TRUE(db_->catalog()->GetTable(name).ok()) << name;
  }
}

TEST_F(SsbTest, DateDimensionHas2556Days) {
  Table* date = db_->catalog()->GetTable("date").value();
  EXPECT_EQ(date->num_rows(), 2556u);
}

TEST_F(SsbTest, SizesScaleWithSf) {
  auto sizes = ssb::SizesFor(0.002);
  EXPECT_EQ(db_->catalog()->GetTable("lineorder").value()->num_rows(),
            static_cast<uint64_t>(sizes.lineorder));
  EXPECT_EQ(db_->catalog()->GetTable("customer").value()->num_rows(),
            static_cast<uint64_t>(sizes.customer));
}

TEST_F(SsbTest, ForeignKeysResolve) {
  // Every lo_custkey/lo_suppkey/lo_partkey/lo_orderdate must reference an
  // existing dimension key (referential integrity of the generator).
  Table* lo = db_->catalog()->GetTable("lineorder").value();
  auto sizes = ssb::SizesFor(0.002);
  const Schema& s = lo->schema();
  std::size_t ck = s.ColumnIndex("lo_custkey").value();
  std::size_t sk = s.ColumnIndex("lo_suppkey").value();
  std::size_t pk = s.ColumnIndex("lo_partkey").value();
  std::size_t dk = s.ColumnIndex("lo_orderdate").value();
  for (std::size_t p = 0; p < lo->num_pages(); ++p) {
    auto g = db_->buffer_pool()->FetchPage(lo->page_id(p));
    ASSERT_TRUE(g.ok());
    const uint8_t* frame = g.value().data();
    for (uint32_t i = 0; i < page_layout::RowCount(frame); ++i) {
      TupleRef row(page_layout::RowAt(frame, i), &s);
      ASSERT_GE(row.GetInt64(ck), 1);
      ASSERT_LE(row.GetInt64(ck), sizes.customer);
      ASSERT_GE(row.GetInt64(sk), 1);
      ASSERT_LE(row.GetInt64(sk), sizes.supplier);
      ASSERT_GE(row.GetInt64(pk), 1);
      ASSERT_LE(row.GetInt64(pk), sizes.part);
      int64_t datekey = row.GetInt64(dk);
      ASSERT_GE(datekey, 19920101);
      ASSERT_LE(datekey, 19981231);
    }
  }
}

TEST_F(SsbTest, CitiesDeriveFromNations) {
  Table* cust = db_->catalog()->GetTable("customer").value();
  const Schema& s = cust->schema();
  std::size_t city = s.ColumnIndex("c_city").value();
  std::size_t nation = s.ColumnIndex("c_nation").value();
  auto g = db_->buffer_pool()->FetchPage(cust->page_id(0));
  ASSERT_TRUE(g.ok());
  const uint8_t* frame = g.value().data();
  for (uint32_t i = 0; i < std::min<uint32_t>(50, page_layout::RowCount(frame));
       ++i) {
    TupleRef row(page_layout::RowAt(frame, i), &s);
    std::string_view c = row.GetString(city);
    std::string_view n = row.GetString(nation);
    // City prefix = first 9 chars of the (space-padded) nation.
    std::string n9(n.substr(0, 9));
    n9.resize(9, ' ');
    EXPECT_EQ(c.substr(0, 9), std::string_view(n9).substr(0, c.size() > 9 ? 9 : c.size()))
        << c << " vs " << n;
  }
}

TEST_F(SsbTest, All13QueriesExecuteNonTrivially) {
  ReferenceExecutor ref(db_->catalog());
  int non_empty = 0;
  for (int flight = 1; flight <= 4; ++flight) {
    int max_variant = flight == 3 ? 4 : 3;
    for (int variant = 1; variant <= max_variant; ++variant) {
      auto plan = ssb::MakeQuery(flight, variant);
      ASSERT_TRUE(plan.ok());
      auto r = ref.Execute(*plan.value());
      ASSERT_TRUE(r.ok()) << "Q" << flight << "." << variant;
      if (r.value().num_rows() > 0) ++non_empty;
    }
  }
  // At tiny scale some highly selective variants may come up empty, but
  // the bulk of the suite must produce rows.
  EXPECT_GE(non_empty, 8);
}

TEST_F(SsbTest, InvalidQueryIdsRejected) {
  EXPECT_FALSE(ssb::MakeQuery(0, 1).ok());
  EXPECT_FALSE(ssb::MakeQuery(5, 1).ok());
  EXPECT_FALSE(ssb::MakeQuery(1, 4).ok());
  EXPECT_FALSE(ssb::MakeQuery(3, 5).ok());
}

TEST_F(SsbTest, ParameterizedPlanSelectivityControlsOutput) {
  ReferenceExecutor ref(db_->catalog());
  auto lo_sel = ref.Execute(*ssb::ParameterizedStarPlan(
      {.selectivity = 0.01, .num_variants = 1, .variant = 0}));
  auto hi_sel = ref.Execute(*ssb::ParameterizedStarPlan(
      {.selectivity = 0.50, .num_variants = 1, .variant = 0}));
  ASSERT_TRUE(lo_sel.ok());
  ASSERT_TRUE(hi_sel.ok());
  auto revenue_of = [](const ResultSet& r) {
    double total = 0;
    for (std::size_t i = 0; i < r.num_rows(); ++i) {
      total += r.Row(i).GetDouble(1);
    }
    return total;
  };
  EXPECT_LT(revenue_of(lo_sel.value()), revenue_of(hi_sel.value()));
}

TEST_F(SsbTest, VariantsProduceDistinctPlansSameShape) {
  auto p0 = ssb::ParameterizedStarPlan(
      {.selectivity = 0.05, .num_variants = 8, .variant = 0});
  auto p1 = ssb::ParameterizedStarPlan(
      {.selectivity = 0.05, .num_variants = 8, .variant = 1});
  auto p0_again = ssb::ParameterizedStarPlan(
      {.selectivity = 0.05, .num_variants = 8, .variant = 0});
  EXPECT_NE(p0->Signature(), p1->Signature());
  EXPECT_EQ(p0->Signature(), p0_again->Signature());
  EXPECT_TRUE(p0->output_schema() == p1->output_schema());
}

TEST_F(SsbTest, VariantsWrapAroundNumVariants) {
  auto p0 = ssb::ParameterizedStarPlan(
      {.selectivity = 0.05, .num_variants = 4, .variant = 0});
  auto p4 = ssb::ParameterizedStarPlan(
      {.selectivity = 0.05, .num_variants = 4, .variant = 4});
  EXPECT_EQ(p0->Signature(), p4->Signature());
}

TEST_F(SsbTest, PipelineLevelsCoverAllDims) {
  auto levels = ssb::PipelineLevels();
  ASSERT_EQ(levels.size(), 4u);
  std::set<std::string> tables;
  for (const auto& l : levels) tables.insert(l.dim_table);
  EXPECT_EQ(tables,
            (std::set<std::string>{"date", "customer", "supplier", "part"}));
}

// ---------------------------------------------------------------------------
// Client driver
// ---------------------------------------------------------------------------

TEST(DriverTest, CompletesQueriesWithinWindow) {
  std::atomic<int> executed{0};
  DriverOptions options;
  options.num_clients = 3;
  options.duration_seconds = 0.3;
  auto report = RunClosedLoop(
      options,
      [](std::size_t, uint64_t) {
        return ssb::ParameterizedStarPlan({.selectivity = 0.01});
      },
      [&](const PlanNodeRef&) {
        executed.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return Status::OK();
      });
  EXPECT_EQ(report.completed, executed.load());
  EXPECT_GT(report.completed, 0);
  EXPECT_GT(report.throughput_qps, 0);
  EXPECT_GT(report.mean_response_ms, 0);
  EXPECT_EQ(report.failed, 0);
}

TEST(DriverTest, FailuresCounted) {
  DriverOptions options;
  options.num_clients = 2;
  options.duration_seconds = 0.1;
  auto report = RunClosedLoop(
      options,
      [](std::size_t, uint64_t) {
        return ssb::ParameterizedStarPlan({.selectivity = 0.01});
      },
      [](const PlanNodeRef&) { return Status::Internal("boom"); });
  EXPECT_EQ(report.completed, 0);
  EXPECT_GT(report.failed, 0);
}

TEST(DriverTest, MaxQueriesCapRespected) {
  DriverOptions options;
  options.num_clients = 4;
  options.duration_seconds = 10.0;  // the cap must end the run early
  options.max_queries = 20;
  Stopwatch timer;
  auto report = RunClosedLoop(
      options,
      [](std::size_t, uint64_t) {
        return ssb::ParameterizedStarPlan({.selectivity = 0.01});
      },
      [](const PlanNodeRef&) { return Status::OK(); });
  EXPECT_GE(report.completed, 20);
  EXPECT_LT(timer.ElapsedSeconds(), 5.0);
}

TEST(DriverTest, BatchedModeRunsInWaves) {
  DriverOptions options;
  options.num_clients = 4;
  options.duration_seconds = 0.5;
  options.batched = true;
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  auto report = RunClosedLoop(
      options,
      [](std::size_t, uint64_t) {
        return ssb::ParameterizedStarPlan({.selectivity = 0.01});
      },
      [&](const PlanNodeRef&) {
        int now = in_flight.fetch_add(1) + 1;
        int old = max_in_flight.load();
        while (now > old && !max_in_flight.compare_exchange_weak(old, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        in_flight.fetch_sub(1);
        return Status::OK();
      });
  EXPECT_GT(report.completed, 0);
  // Waves overlap all four clients.
  EXPECT_GE(max_in_flight.load(), 2);
}

}  // namespace
}  // namespace sharing
