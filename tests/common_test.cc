// Unit tests for src/common: status, bitmaps, random, metrics, dates,
// queues and pools.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/bitvector.h"
#include "common/concurrent_queue.h"
#include "common/elastic_pool.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stats_reporter.h"
#include "common/status.h"
#include "common/status_or.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace sharing {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing table");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing table");
  EXPECT_EQ(st.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kIoError); ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

Status ReturnsEarly(bool fail) {
  SHARING_RETURN_NOT_OK(fail ? Status::Aborted("x") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(ReturnsEarly(false).ok());
  EXPECT_EQ(ReturnsEarly(true).code(), StatusCode::kAborted);
}

// ---------------------------------------------------------------------------
// QuerySet
// ---------------------------------------------------------------------------

TEST(QuerySetTest, SetTestClear) {
  QuerySet s(130);
  EXPECT_TRUE(s.None());
  s.Set(0);
  s.Set(64);
  s.Set(129);
  EXPECT_TRUE(s.Test(0));
  EXPECT_TRUE(s.Test(64));
  EXPECT_TRUE(s.Test(129));
  EXPECT_FALSE(s.Test(1));
  EXPECT_EQ(s.Count(), 3u);
  s.Clear(64);
  EXPECT_FALSE(s.Test(64));
  EXPECT_EQ(s.Count(), 2u);
}

TEST(QuerySetTest, AllSetRespectsCapacity) {
  QuerySet s = QuerySet::AllSet(70);
  EXPECT_EQ(s.Count(), 70u);
  EXPECT_TRUE(s.Test(69));
}

TEST(QuerySetTest, IntersectShortCircuits) {
  QuerySet a(64), b(64);
  a.Set(3);
  a.Set(7);
  b.Set(7);
  b.Set(9);
  EXPECT_TRUE(a.IntersectWith(b));
  EXPECT_TRUE(a.Test(7));
  EXPECT_FALSE(a.Test(3));
  EXPECT_EQ(a.Count(), 1u);

  QuerySet c(64);
  c.Set(1);
  EXPECT_FALSE(a.IntersectWith(c));
  EXPECT_TRUE(a.None());
}

TEST(QuerySetTest, UnionAndSubtract) {
  QuerySet a(64), b(64);
  a.Set(1);
  b.Set(2);
  a.UnionWith(b);
  EXPECT_EQ(a.Count(), 2u);
  a.SubtractAll(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_FALSE(a.Test(2));
}

TEST(QuerySetTest, ForEachSetBitAscending) {
  QuerySet s(200);
  std::vector<std::size_t> want = {0, 63, 64, 127, 128, 199};
  for (auto b : want) s.Set(b);
  std::vector<std::size_t> got;
  s.ForEachSetBit([&](std::size_t b) { got.push_back(b); });
  EXPECT_EQ(got, want);
}

TEST(QuerySetTest, ToStringListsBits) {
  QuerySet s(64);
  s.Set(0);
  s.Set(3);
  s.Set(17);
  EXPECT_EQ(s.ToString(), "{0,3,17}");
}

TEST(BitmapTest, AndInPlaceDetectsEmpty) {
  uint64_t a[2] = {0xF0, 0x1};
  uint64_t b[2] = {0x0F, 0x0};
  EXPECT_FALSE(BitmapAndInPlace(a, b, 2));
  EXPECT_FALSE(BitmapAny(a, 2));

  uint64_t c[2] = {0xFF, 0x0};
  uint64_t d[2] = {0x10, 0x1};
  EXPECT_TRUE(BitmapAndInPlace(c, d, 2));
  EXPECT_EQ(c[0], 0x10u);
}

// ---------------------------------------------------------------------------
// Dates
// ---------------------------------------------------------------------------

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(MakeDate(1992, 1, 1).days_since_epoch, 0);
}

TEST(DateTest, RoundTripsAllSsbDays) {
  for (int32_t day = 0; day < 2556; ++day) {
    Date d{day};
    int y, m, dd;
    SplitDate(d, &y, &m, &dd);
    EXPECT_EQ(MakeDate(y, m, dd).days_since_epoch, day);
  }
}

TEST(DateTest, LeapYearHandled) {
  Date feb29 = MakeDate(1992, 2, 29);
  Date mar1 = MakeDate(1992, 3, 1);
  EXPECT_EQ(mar1.days_since_epoch - feb29.days_since_epoch, 1);
}

TEST(DateTest, DateKeyFormat) {
  EXPECT_EQ(DateKey(MakeDate(1994, 6, 7)), 19940607);
}

TEST(DateTest, ToStringFormat) {
  EXPECT_EQ(DateToString(MakeDate(1998, 12, 1)), "1998-12-01");
}

// ---------------------------------------------------------------------------
// Rng / Zipf
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversDomain) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, AlphaStringHasRequestedLength) {
  Rng rng(4);
  EXPECT_EQ(rng.AlphaString(12).size(), 12u);
}

TEST(ZipfTest, StaysInDomain) {
  ZipfGenerator zipf(100, 0.99, 5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Next(), 100u);
}

TEST(ZipfTest, SkewFavorsSmallValues) {
  ZipfGenerator zipf(1000, 0.99, 6);
  int head = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  // With theta=0.99, the top-10 of 1000 items draw far more than 1% of
  // samples.
  EXPECT_GT(head, n / 20);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterPointerStable) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("x");
  c1->Add(5);
  Counter* c2 = registry.GetCounter("x");
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c2->Get(), 5);
}

TEST(MetricsTest, SnapshotDelta) {
  MetricsRegistry registry;
  registry.GetCounter("a")->Add(10);
  auto before = registry.Snapshot();
  registry.GetCounter("a")->Add(7);
  registry.GetCounter("b")->Add(3);
  auto delta = MetricsRegistry::Delta(before, registry.Snapshot());
  EXPECT_EQ(delta["a"], 7);
  EXPECT_EQ(delta["b"], 3);
}

TEST(MetricsTest, ConcurrentIncrements) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < 10000; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Get(), 40000);
}

TEST(HistogramTest, EmptyReportsZero) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  EXPECT_EQ(h->TotalCount(), 0);
  EXPECT_EQ(h->RecordedMin(), 0);
  EXPECT_EQ(h->RecordedMax(), 0);
  EXPECT_EQ(h->ValueAtQuantile(0.5), 0);
}

TEST(HistogramTest, QuantileClampedAtBucketBoundary) {
  // A single recording of exactly a power of two: the bucket's geometric
  // middle (1.5 * 2^b) used to overshoot the only value ever recorded.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  h->Record(1024);
  EXPECT_EQ(h->RecordedMin(), 1024);
  EXPECT_EQ(h->RecordedMax(), 1024);
  EXPECT_EQ(h->ValueAtQuantile(0.5), 1024);
  EXPECT_EQ(h->ValueAtQuantile(0.99), 1024);
}

TEST(HistogramTest, NegativeRecordingsStayInRange) {
  // Negatives land in bucket 0 (log bucketing has nowhere else for
  // them); the quantile estimate must not invent a positive value.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  h->Record(-5);
  h->Record(0);
  EXPECT_EQ(h->TotalCount(), 2);
  EXPECT_EQ(h->RecordedMin(), -5);
  EXPECT_EQ(h->RecordedMax(), 0);
  EXPECT_LE(h->ValueAtQuantile(0.5), 0);
  EXPECT_GE(h->ValueAtQuantile(0.5), -5);
}

TEST(HistogramTest, QuantilesOrderedAndBounded) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  for (int i = 1; i <= 1000; ++i) h->Record(i);
  const int64_t p50 = h->ValueAtQuantile(0.50);
  const int64_t p95 = h->ValueAtQuantile(0.95);
  const int64_t p99 = h->ValueAtQuantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1);
  EXPECT_LE(p99, 1000);
}

TEST(MetricsTest, SnapshotIncludesHistogramViews) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  h->Record(100);
  h->Record(200);
  auto snap = registry.Snapshot();
  EXPECT_EQ(snap["lat.count"], 2);
  ASSERT_TRUE(snap.count("lat.p50"));
  ASSERT_TRUE(snap.count("lat.p95"));
  ASSERT_TRUE(snap.count("lat.p99"));
  EXPECT_GE(snap["lat.p50"], 100);
  EXPECT_LE(snap["lat.p99"], 200);
  EXPECT_GE(snap["lat.p99"], snap["lat.p50"]);
}

TEST(StatsReporterTest, EmitsSelfContainedJsonLines) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(4);
  registry.GetHistogram("lat")->Record(64);
  std::mutex mu;
  std::vector<std::string> lines;
  StatsReporter::Options opts;
  opts.metrics = &registry;
  opts.period_ms = 0;  // final snapshot only — no timer flakiness
  opts.sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  StatsReporter reporter(std::move(opts));
  reporter.EmitNow();
  reporter.Stop();  // emits the final snapshot
  EXPECT_EQ(reporter.lines_emitted(), 2);
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_NE(line.find("\"uptime_ms\":"), std::string::npos);
    EXPECT_NE(line.find("\"c\":4"), std::string::npos);
    EXPECT_NE(line.find("\"lat.count\":1"), std::string::npos);
  }
}

TEST(StatsReporterTest, StopIsIdempotent) {
  MetricsRegistry registry;
  int count = 0;
  StatsReporter::Options opts;
  opts.metrics = &registry;
  opts.period_ms = 0;
  opts.sink = [&](const std::string&) { ++count; };
  StatsReporter reporter(std::move(opts));
  reporter.Stop();
  reporter.Stop();  // second call must not emit a duplicate final line
  EXPECT_EQ(count, 1);
}

// ---------------------------------------------------------------------------
// ConcurrentQueue / pools
// ---------------------------------------------------------------------------

TEST(ConcurrentQueueTest, FifoOrder) {
  ConcurrentQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(ConcurrentQueueTest, CloseDrainsThenEnds) {
  ConcurrentQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(ConcurrentQueueTest, BlockingPopWakesOnPush) {
  ConcurrentQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Push(99);
  });
  EXPECT_EQ(*q.Pop(), 99);
  producer.join();
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, FutureReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.SubmitWithFuture([] { return 7 * 6; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ElasticPoolTest, GrowsPastInitialSize) {
  ElasticThreadPool pool(1);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  const int kTasks = 8;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      int now = running.fetch_add(1) + 1;
      int old = peak.load();
      while (now > old && !peak.compare_exchange_weak(old, now)) {
      }
      // Block until every task has started: only an elastic pool can get
      // all of them running at once.
      while (!release.load()) {
        if (running.load() == kTasks) release.store(true);
        std::this_thread::yield();
      }
      running.fetch_sub(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < kTasks) std::this_thread::yield();
  EXPECT_EQ(peak.load(), kTasks);
  pool.Shutdown();
}

// Regression test: a task must never wait behind a *blocked* worker. Task i
// blocks until task i+1 has started, so the whole batch completes only if
// every task gets its own worker. The original Submit spawned a worker only
// when idle_workers_ == 0 — but a notified worker stays counted as idle
// until it wakes, so a rapid burst of submits queued tasks with no worker
// reserved and this chain deadlocked.
TEST(ElasticPoolTest, ChainedBlockingTasksDoNotDeadlock) {
  ElasticThreadPool pool(1);
  const int kTasks = 16;
  std::vector<std::atomic<bool>> started(kTasks);
  for (auto& s : started) s.store(false);
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&, i] {
      started[i].store(true);
      if (i + 1 < kTasks) {
        // Wait for the *next* submitted task — only schedulable if the
        // pool reserved a worker for it rather than queueing it behind us.
        while (!started[i + 1].load()) std::this_thread::yield();
      }
      done.fetch_add(1);
    });
  }
  // Bounded wait so a regression fails rather than hangs the suite.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), kTasks);
  pool.Shutdown();
}

// The same property under multi-threaded submission bursts.
TEST(ElasticPoolTest, ConcurrentBurstSubmitReservesWorkerPerTask) {
  ElasticThreadPool pool(2);
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 8;
  constexpr int kTasks = kSubmitters * kPerSubmitter;
  std::atomic<int> running{0};
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        pool.Submit([&] {
          if (running.fetch_add(1) + 1 == kTasks) release.store(true);
          while (!release.load()) std::this_thread::yield();
          done.fetch_add(1);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), kTasks);
  pool.Shutdown();
}

TEST(StopwatchTest, CpuTimerAdvancesUnderWork) {
  CpuTimer timer;
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 20'000'000; ++i) sink = sink + i;
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace sharing
