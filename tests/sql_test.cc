// SQL front-end tests: lexer, parser, binder, and end-to-end execution
// against the reference executor and the sharing engine.

#include <gtest/gtest.h>

#include "core/sharing_engine.h"
#include "exec/reference_executor.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"
#include "workload/ssb.h"

namespace sharing {
namespace {

using sql::ParseSelect;
using sql::SelectStatement;
using sql::Token;
using sql::TokenKind;
using sql::Tokenize;
using testing::ExpectResultsEquivalent;
using testing::MakeTestDatabase;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

std::vector<TokenKind> KindsOf(const std::string& text) {
  auto tokens = Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  for (const auto& t : tokens.value()) kinds.push_back(t.kind);
  return kinds;
}

TEST(SqlLexerTest, KeywordsAreCaseInsensitive) {
  auto kinds = KindsOf("SELECT select SeLeCt");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kSelect,
                                           TokenKind::kSelect,
                                           TokenKind::kSelect,
                                           TokenKind::kEof}));
}

TEST(SqlLexerTest, IdentifiersFoldToLowerCase) {
  auto tokens = Tokenize("Lineorder LO_Revenue").value();
  EXPECT_EQ(tokens[0].text, "lineorder");
  EXPECT_EQ(tokens[1].text, "lo_revenue");
}

TEST(SqlLexerTest, IntegerAndDoubleLiterals) {
  auto tokens = Tokenize("42 3.5 1e3 2.5e-2").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_EQ(tokens[3].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.025);
}

TEST(SqlLexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = Tokenize("'it''s'").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(SqlLexerTest, UnterminatedStringFails) {
  auto tokens = Tokenize("'oops");
  EXPECT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("unterminated"),
            std::string::npos);
}

TEST(SqlLexerTest, OperatorsIncludingTwoCharForms) {
  auto kinds = KindsOf("= <> != < <= > >= + - * / %");
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kEq, TokenKind::kNe, TokenKind::kNe,
                TokenKind::kLt, TokenKind::kLe, TokenKind::kGt,
                TokenKind::kGe, TokenKind::kPlus, TokenKind::kMinus,
                TokenKind::kStar, TokenKind::kSlash, TokenKind::kPercent,
                TokenKind::kEof}));
}

TEST(SqlLexerTest, LineCommentsAreSkipped) {
  auto kinds = KindsOf("select -- the whole point\n42");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kSelect,
                                           TokenKind::kIntLiteral,
                                           TokenKind::kEof}));
}

TEST(SqlLexerTest, PositionsTrackLinesAndColumns) {
  auto tokens = Tokenize("select\n  foo").value();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(SqlLexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("select @foo").ok());
  EXPECT_FALSE(Tokenize("select #1").ok());
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

SelectStatement MustParse(const std::string& text) {
  auto stmt = ParseSelect(text);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return std::move(stmt).value();
}

TEST(SqlParserTest, SelectStarFromTable) {
  auto stmt = MustParse("SELECT * FROM lineorder");
  EXPECT_TRUE(stmt.select_star);
  EXPECT_EQ(stmt.from.table, "lineorder");
  EXPECT_EQ(stmt.from.alias, "lineorder");
}

TEST(SqlParserTest, TableAliasWithAndWithoutAs) {
  EXPECT_EQ(MustParse("SELECT * FROM lineorder AS lo").from.alias, "lo");
  EXPECT_EQ(MustParse("SELECT * FROM lineorder lo").from.alias, "lo");
}

TEST(SqlParserTest, SelectItemsWithAliases) {
  auto stmt = MustParse("SELECT d_year, SUM(lo_revenue) AS revenue FROM t");
  ASSERT_EQ(stmt.items.size(), 2u);
  EXPECT_EQ(stmt.items[0].alias, "");
  EXPECT_EQ(stmt.items[1].alias, "revenue");
  EXPECT_EQ(stmt.items[1].expr->kind, sql::SqlExpr::Kind::kAggCall);
}

TEST(SqlParserTest, JoinChainWithOnConditions) {
  auto stmt = MustParse(
      "SELECT * FROM lineorder JOIN date ON lo_orderdate = d_datekey "
      "INNER JOIN customer ON lo_custkey = c_custkey");
  ASSERT_EQ(stmt.joins.size(), 2u);
  EXPECT_EQ(stmt.joins[0].table.table, "date");
  EXPECT_EQ(stmt.joins[1].table.table, "customer");
}

TEST(SqlParserTest, WherePrecedenceOrBindsLooserThanAnd) {
  auto stmt = MustParse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_NE(stmt.where, nullptr);
  // OR at the root: (a=1) OR ((b=2) AND (c=3)).
  EXPECT_EQ(stmt.where->kind, sql::SqlExpr::Kind::kOr);
  EXPECT_EQ(stmt.where->children[1]->kind, sql::SqlExpr::Kind::kAnd);
}

TEST(SqlParserTest, ArithmeticPrecedence) {
  auto stmt = MustParse("SELECT * FROM t WHERE a + b * c = 7");
  const auto& cmp = *stmt.where;
  ASSERT_EQ(cmp.kind, sql::SqlExpr::Kind::kCompare);
  const auto& lhs = *cmp.children[0];
  ASSERT_EQ(lhs.kind, sql::SqlExpr::Kind::kArith);
  EXPECT_EQ(lhs.arith_op, ArithOp::kAdd);
  EXPECT_EQ(lhs.children[1]->arith_op, ArithOp::kMul);
}

TEST(SqlParserTest, BetweenLowersToThreeChildren) {
  auto stmt = MustParse("SELECT * FROM t WHERE a BETWEEN 1 AND 10");
  ASSERT_EQ(stmt.where->kind, sql::SqlExpr::Kind::kBetween);
  EXPECT_EQ(stmt.where->children.size(), 3u);
}

TEST(SqlParserTest, BetweenAndChainsWithConjunction) {
  auto stmt =
      MustParse("SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b = 2");
  EXPECT_EQ(stmt.where->kind, sql::SqlExpr::Kind::kAnd);
  EXPECT_EQ(stmt.where->children[0]->kind, sql::SqlExpr::Kind::kBetween);
}

TEST(SqlParserTest, DateLiteral) {
  auto stmt = MustParse(
      "SELECT * FROM t WHERE d <= DATE '1998-09-02'");
  const auto& lit = *stmt.where->children[1];
  ASSERT_EQ(lit.kind, sql::SqlExpr::Kind::kLiteral);
  EXPECT_EQ(TypeOfValue(lit.literal), ValueType::kDate);
  EXPECT_EQ(DateKey(std::get<Date>(lit.literal)), 19980902);
}

TEST(SqlParserTest, MalformedDateRejected) {
  EXPECT_FALSE(ParseSelect("SELECT * FROM t WHERE d = DATE '19980902'").ok());
  EXPECT_FALSE(
      ParseSelect("SELECT * FROM t WHERE d = DATE '1998-13-01'").ok());
}

TEST(SqlParserTest, GroupByOrderByLimit) {
  auto stmt = MustParse(
      "SELECT d_year, SUM(lo_revenue) AS revenue FROM t "
      "GROUP BY d_year ORDER BY revenue DESC, d_year LIMIT 5");
  ASSERT_EQ(stmt.group_by.size(), 1u);
  ASSERT_EQ(stmt.order_by.size(), 2u);
  EXPECT_FALSE(stmt.order_by[0].ascending);
  EXPECT_TRUE(stmt.order_by[1].ascending);
  EXPECT_TRUE(stmt.has_limit);
  EXPECT_EQ(stmt.limit, 5u);
}

TEST(SqlParserTest, CountStarOnlyForCount) {
  EXPECT_TRUE(ParseSelect("SELECT COUNT(*) FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM t").ok());
}

TEST(SqlParserTest, NestedAggregatesRejected) {
  EXPECT_FALSE(ParseSelect("SELECT SUM(MIN(a)) FROM t").ok());
}

TEST(SqlParserTest, UnaryMinusLowersToSubtraction) {
  auto stmt = MustParse("SELECT * FROM t WHERE a = -5");
  const auto& rhs = *stmt.where->children[1];
  ASSERT_EQ(rhs.kind, sql::SqlExpr::Kind::kArith);
  EXPECT_EQ(rhs.arith_op, ArithOp::kSub);
}

TEST(SqlParserTest, TrailingInputRejected) {
  EXPECT_FALSE(ParseSelect("SELECT * FROM t garbage garbage").ok());
  EXPECT_TRUE(ParseSelect("SELECT * FROM t;").ok());
}

TEST(SqlParserTest, ErrorsCarryPositions) {
  auto stmt = ParseSelect("SELECT *\nFROM");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("2:5"), std::string::npos)
      << stmt.status().ToString();
}

TEST(SqlParserTest, StatementRoundTripsThroughToString) {
  auto stmt = MustParse(
      "SELECT d_year, SUM(lo_revenue) AS revenue FROM lineorder "
      "JOIN date ON lo_orderdate = d_datekey WHERE lo_discount BETWEEN 1 "
      "AND 3 GROUP BY d_year ORDER BY d_year LIMIT 7");
  // Re-parse the rendered form: it must parse to the same rendering.
  auto again = MustParse(stmt.ToString());
  EXPECT_EQ(stmt.ToString(), again.ToString());
}

// ---------------------------------------------------------------------------
// Binder + end-to-end (against SSB data and the reference executor)
// ---------------------------------------------------------------------------

class SqlBindTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = MakeTestDatabase().release();
    SHARING_CHECK_OK(
        ssb::GenerateAll(db_->catalog(), db_->buffer_pool(), 0.002, 7));
  }

  StatusOr<PlanNodeRef> Compile(const std::string& text) {
    return sql::CompileSelect(*db_->catalog(), text);
  }

  ResultSet MustRun(const std::string& text) {
    auto plan = Compile(text);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    ReferenceExecutor ref(db_->catalog());
    auto result = ref.Execute(*plan.value());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  static Database* db_;
};

Database* SqlBindTest::db_ = nullptr;

TEST_F(SqlBindTest, SelectStarSingleTable) {
  auto result = MustRun("SELECT * FROM supplier");
  auto* supplier = db_->catalog()->GetTable("supplier").value();
  EXPECT_EQ(result.num_rows(), supplier->num_rows());
  EXPECT_EQ(result.schema().num_columns(),
            supplier->schema().num_columns());
}

TEST_F(SqlBindTest, ProjectionFollowsSelectOrder) {
  auto result = MustRun("SELECT s_nation, s_suppkey FROM supplier");
  EXPECT_EQ(result.schema().column(0).name, "s_nation");
  EXPECT_EQ(result.schema().column(1).name, "s_suppkey");
}

TEST_F(SqlBindTest, WherePushdownFilters) {
  auto result = MustRun("SELECT s_suppkey FROM supplier WHERE s_suppkey < 5");
  EXPECT_EQ(result.num_rows(), 4u);  // keys are 1-based: 1..4
}

TEST_F(SqlBindTest, WhereWithStringEquality) {
  auto all = MustRun("SELECT s_nation FROM supplier");
  ASSERT_GT(all.num_rows(), 0u);
  std::string nation(all.Row(0).GetString(0));
  // Trim the fixed-width padding.
  nation.erase(nation.find_last_not_of(' ') + 1);
  auto filtered = MustRun("SELECT s_nation FROM supplier WHERE s_nation = '" +
                          nation + "'");
  EXPECT_GT(filtered.num_rows(), 0u);
  EXPECT_LT(filtered.num_rows(), all.num_rows());
}

TEST_F(SqlBindTest, AggregateWithGroupBy) {
  auto result = MustRun(
      "SELECT d_year, COUNT(*) AS n FROM date GROUP BY d_year "
      "ORDER BY d_year");
  EXPECT_EQ(result.num_rows(), 7u);  // SSB date: 1992..1998
  EXPECT_EQ(result.schema().column(1).name, "n");
  // Years ascend; day counts sum to the full dimension (the last year is
  // truncated to make SSB's fixed 2,556-row date table).
  int64_t total_days = 0;
  for (std::size_t i = 0; i < result.num_rows(); ++i) {
    EXPECT_EQ(result.Row(i).GetInt64(0), 1992 + static_cast<int64_t>(i));
    int64_t days = result.Row(i).GetInt64(1);
    EXPECT_GE(days, 364);
    EXPECT_LE(days, 366);
    total_days += days;
  }
  EXPECT_EQ(total_days, 2556);
}

TEST_F(SqlBindTest, StarJoinWithAggregateMatchesHandBuiltPlan) {
  const std::string text =
      "SELECT d_year, SUM(lo_revenue) AS revenue "
      "FROM lineorder "
      "JOIN customer ON lo_custkey = c_custkey "
      "JOIN date ON lo_orderdate = d_datekey "
      "WHERE c_custkey % 1000 < 10 "
      "GROUP BY d_year";
  auto result = MustRun(text);
  EXPECT_GT(result.num_rows(), 0u);
  EXPECT_EQ(result.schema().column(0).name, "d_year");
  EXPECT_EQ(result.schema().column(1).name, "revenue");
}

TEST_F(SqlBindTest, TpchQ6ShapeRuns) {
  // TPC-H Q6 over the SSB lineorder columns (same analytics shape).
  auto result = MustRun(
      "SELECT SUM(lo_revenue) AS revenue FROM lineorder "
      "WHERE lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25");
  EXPECT_EQ(result.num_rows(), 1u);
}

TEST_F(SqlBindTest, OrderByDescWithLimitIsTopK) {
  auto result = MustRun(
      "SELECT d_datekey, COUNT(*) AS n FROM date GROUP BY d_datekey "
      "ORDER BY d_datekey DESC LIMIT 3");
  ASSERT_EQ(result.num_rows(), 3u);
  EXPECT_GT(result.Row(0).GetInt64(0), result.Row(1).GetInt64(0));
  EXPECT_GT(result.Row(1).GetInt64(0), result.Row(2).GetInt64(0));
}

TEST_F(SqlBindTest, QualifiedAndAliasedColumns) {
  auto result = MustRun(
      "SELECT s.s_suppkey FROM supplier s WHERE s.s_suppkey = 3");
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.Row(0).GetInt64(0), 3);
}

TEST_F(SqlBindTest, UnknownTableFails) {
  auto plan = Compile("SELECT * FROM nonexistent");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("unknown table"),
            std::string::npos);
}

TEST_F(SqlBindTest, UnknownColumnFails) {
  auto plan = Compile("SELECT bogus FROM supplier");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("unknown column"),
            std::string::npos);
}

TEST_F(SqlBindTest, AmbiguousColumnRequiresQualifier) {
  // lo_custkey exists once; but a self-join-style duplicate via aliases of
  // the same table makes every column ambiguous.
  auto plan = Compile(
      "SELECT * FROM supplier a JOIN supplier b ON s_suppkey = s_suppkey");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(SqlBindTest, CrossTablePredicateReportsUnsupported) {
  auto plan = Compile(
      "SELECT * FROM lineorder JOIN date ON lo_orderdate = d_datekey "
      "WHERE lo_custkey < d_year");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotImplemented);
}

TEST_F(SqlBindTest, NonEquiJoinReportsUnsupported) {
  auto plan = Compile(
      "SELECT * FROM lineorder JOIN date ON lo_orderdate < d_datekey");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotImplemented);
}

TEST_F(SqlBindTest, LimitWithoutOrderByReportsUnsupported) {
  auto plan = Compile("SELECT * FROM supplier LIMIT 3");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotImplemented);
}

TEST_F(SqlBindTest, GroupColumnsMustPrecedeAggregates) {
  auto plan = Compile(
      "SELECT SUM(lo_revenue), d_year FROM lineorder "
      "JOIN date ON lo_orderdate = d_datekey GROUP BY d_year");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotImplemented);
}

TEST_F(SqlBindTest, DuplicateAggregateNamesAreDisambiguated) {
  auto result = MustRun(
      "SELECT SUM(lo_revenue), SUM(lo_revenue) FROM lineorder");
  EXPECT_EQ(result.schema().column(0).name, "sum_lo_revenue");
  EXPECT_EQ(result.schema().column(1).name, "sum_lo_revenue_2");
}

TEST_F(SqlBindTest, CompiledPlanSignaturesDetectSharedSubPlans) {
  const std::string q =
      "SELECT d_year, SUM(lo_revenue) AS revenue FROM lineorder "
      "JOIN date ON lo_orderdate = d_datekey GROUP BY d_year";
  auto a = Compile(q);
  auto b = Compile(q);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value()->Signature(), b.value()->Signature());
  // A different predicate changes the signature.
  auto c = Compile(
      "SELECT d_year, SUM(lo_revenue) AS revenue FROM lineorder "
      "JOIN date ON lo_orderdate = d_datekey WHERE lo_quantity < 10 "
      "GROUP BY d_year");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value()->Signature(), c.value()->Signature());
}

// End-to-end: the same SQL through every engine mode must match the
// reference executor (the sharing-is-transparent invariant, via SQL).
class SqlEngineTest : public ::testing::TestWithParam<EngineMode> {};

TEST_P(SqlEngineTest, SqlStarQueryMatchesReferenceAcrossModes) {
  auto db = MakeTestDatabase();
  SHARING_CHECK_OK(
      ssb::GenerateAll(db->catalog(), db->buffer_pool(), 0.002, 7));
  EngineConfig config;
  config.mode = GetParam();
  config.fact_table = "lineorder";
  config.cjoin_levels = ssb::PipelineLevels();
  SharingEngine engine(db.get(), config);

  auto plan = sql::CompileSelect(
      *db->catalog(),
      "SELECT d_year, SUM(lo_revenue) AS revenue FROM lineorder "
      "JOIN customer ON lo_custkey = c_custkey "
      "JOIN date ON lo_orderdate = d_datekey "
      "WHERE c_custkey % 1000 < 50 GROUP BY d_year");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  ReferenceExecutor ref(db->catalog());
  auto want = ref.Execute(*plan.value());
  ASSERT_TRUE(want.ok());
  auto got = engine.Execute(plan.value());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectResultsEquivalent(want.value(), got.value());
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SqlEngineTest,
    ::testing::Values(EngineMode::kQueryCentric, EngineMode::kSpPush,
                      EngineMode::kSpPull, EngineMode::kSpAdaptive,
                      EngineMode::kGqp, EngineMode::kGqpSp),
    [](const auto& info) {
      std::string name(EngineModeToString(info.param));
      for (auto& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sharing
