// Shared helpers for the scenario benchmark binaries.
//
// Each bench regenerates one table/figure of the paper's demo (see
// DESIGN.md's per-experiment index): it prints the same x-axis and series
// the demo GUI plots, plus the auxiliary measurements (CPU time, SP
// opportunities, admissions). Absolute numbers differ from the paper's
// testbed (see EXPERIMENTS.md); the *shape* is the reproduction target.

#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "common/stopwatch.h"
#include "core/sharing_engine.h"
#include "workload/driver.h"
#include "workload/ssb.h"
#include "workload/tpch.h"

namespace sharing::bench {

/// Scale factors tuned so every bench binary completes on a laptop-class
/// container in tens of seconds. Override via environment variables
/// SHARING_BENCH_SF / SHARING_BENCH_SECONDS for larger runs.
inline double ScaleFactor(double fallback) {
  if (const char* env = std::getenv("SHARING_BENCH_SF")) {
    return std::atof(env);
  }
  return fallback;
}

inline double WindowSeconds(double fallback) {
  if (const char* env = std::getenv("SHARING_BENCH_SECONDS")) {
    return std::atof(env);
  }
  return fallback;
}

/// Memory-resident database (frames cover the data, no latency model).
inline std::unique_ptr<Database> MakeMemoryDb(std::size_t frames = 65536) {
  DatabaseOptions options;
  options.buffer_pool_frames = frames;
  return std::make_unique<Database>(options);
}

/// Disk-resident database: small frame budget + rotational latency model.
inline std::unique_ptr<Database> MakeDiskDb(std::size_t frames = 512) {
  DatabaseOptions options;
  options.buffer_pool_frames = frames;
  auto db = std::make_unique<Database>(options);
  db->SetDiskResident();
  return db;
}

inline EngineConfig SsbEngineConfig() {
  EngineConfig config;
  config.fact_table = "lineorder";
  config.cjoin_levels = ssb::PipelineLevels();
  config.cjoin.max_queries = 64;
  return config;
}

/// Descends through unary nodes (aggregate/sort) to the star-join subtree —
/// the part of a template plan that CJOIN evaluates.
inline PlanNodeRef StarJoinRootOf(PlanNodeRef plan) {
  while (plan && plan->kind() != PlanKind::kJoin) {
    if (plan->children().empty()) return nullptr;
    plan = plan->children()[0];
  }
  return plan;
}

/// Appends one {"part": "metrics", "metrics": {...}} row to an open
/// bench JSON array: the run's metrics-registry snapshot (counters,
/// gauges, and the histogram count/p50/p95/p99 views), so every
/// BENCH_*.json records the engine internals behind its headline
/// numbers. Metric names are [a-z0-9._] by construction — no escaping.
inline void JsonMetricsRow(std::FILE* json, bool* first,
                           const MetricsSnapshot& snapshot) {
  std::fprintf(json, "%s  {\"part\": \"metrics\", \"metrics\": {",
               *first ? "" : ",\n");
  bool first_kv = true;
  for (const auto& [name, value] : snapshot) {
    std::fprintf(json, "%s\"%s\": %lld", first_kv ? "" : ", ", name.c_str(),
                 static_cast<long long>(value));
    first_kv = false;
  }
  std::fprintf(json, "}}");
  *first = false;
}

inline void PrintHeader(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace sharing::bench
