// Micro B: the mechanism behind Fig. 1b — query-bitmap operations and the
// shared hash-join probe, as a function of concurrent-query count.
//
// This is the "bookkeeping overhead" Scenario III attributes to shared
// operators: every fact tuple pays one probe + bitmap AND per dimension
// level, regardless of how many queries want it.

#include <benchmark/benchmark.h>

#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/random.h"

namespace sharing {
namespace {

void BM_BitmapAnd(benchmark::State& state) {
  const std::size_t capacity = static_cast<std::size_t>(state.range(0));
  const std::size_t words = (capacity + 63) / 64;
  std::vector<uint64_t> a(words, ~0ull), b(words);
  Rng rng(1);
  for (auto& w : b) w = rng.Next();

  for (auto _ : state) {
    std::vector<uint64_t> tmp = a;
    benchmark::DoNotOptimize(BitmapAndInPlace(tmp.data(), b.data(), words));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_QuerySetForEach(benchmark::State& state) {
  const std::size_t capacity = static_cast<std::size_t>(state.range(0));
  QuerySet set(capacity);
  // ~25% of bits set (typical mid-chain survivor density).
  Rng rng(2);
  for (std::size_t i = 0; i < capacity; ++i) {
    if (rng.Bernoulli(0.25)) set.Set(i);
  }
  for (auto _ : state) {
    std::size_t sum = 0;
    set.ForEachSetBit([&](std::size_t b) { sum += b; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Shared dimension probe: hash lookup + (entry | neutral) AND, like one
/// CJOIN level processing one fact tuple.
void BM_SharedProbeChain(benchmark::State& state) {
  const std::size_t n_queries = static_cast<std::size_t>(state.range(0));
  const std::size_t words = (n_queries + 63) / 64;
  constexpr std::size_t kDimRows = 2000;
  constexpr int kLevels = 3;

  struct Entry {
    std::vector<uint64_t> bits;
  };
  std::vector<std::unordered_map<int64_t, Entry>> levels(kLevels);
  std::vector<std::vector<uint64_t>> neutral(kLevels);
  Rng rng(3);
  for (int l = 0; l < kLevels; ++l) {
    neutral[l].assign(words, 0);
    for (std::size_t k = 0; k < kDimRows; ++k) {
      Entry e;
      e.bits.assign(words, 0);
      for (std::size_t w = 0; w < words; ++w) e.bits[w] = rng.Next();
      levels[l].emplace(static_cast<int64_t>(k), std::move(e));
    }
  }

  std::vector<uint64_t> bits(words);
  int64_t fk = 0;
  for (auto _ : state) {
    for (std::size_t w = 0; w < words; ++w) bits[w] = ~0ull;
    bool alive = true;
    for (int l = 0; l < kLevels && alive; ++l) {
      fk = (fk + 7) % kDimRows;
      auto it = levels[l].find(fk);
      std::vector<uint64_t> combined(words);
      for (std::size_t w = 0; w < words; ++w) {
        combined[w] =
            (it != levels[l].end() ? it->second.bits[w] : 0) | neutral[l][w];
      }
      alive = BitmapAndInPlace(bits.data(), combined.data(), words);
    }
    benchmark::DoNotOptimize(alive);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("per-fact-tuple cost of a 3-level shared join chain");
}

BENCHMARK(BM_BitmapAnd)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_QuerySetForEach)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_SharedProbeChain)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace sharing

BENCHMARK_MAIN();
