// Ablation E: FIFO capacity vs the push-SP convoy.
//
// DESIGN.md calls out the FIFO page buffer's bounded capacity as the
// mechanism behind push-SP's serialization: the host's push channel blocks on
// the *slowest* satellite's full buffer, convoying everyone. Deeper
// buffers relax the convoy (at memory cost) but never remove the N deep
// copies per page; the Shared Pages List removes both. This bench fixes
// the workload (8 identical TPC-H Q1, SP at the scan stage) and sweeps
// the FIFO capacity for push-SP, with pull-SP as the floor.

#include <algorithm>
#include <vector>

#include "bench_common.h"

using namespace sharing;
using namespace sharing::bench;

namespace {

double RunPoint(Database* db, const PlanNodeRef& q1, EngineMode mode,
                std::size_t fifo_capacity) {
  EngineConfig config;
  config.fifo_capacity = fifo_capacity;
  SharingEngine engine(db, config);
  engine.SetMode(mode);
  SpMode scan_sp = mode == EngineMode::kSpPush   ? SpMode::kPush
                   : mode == EngineMode::kSpPull ? SpMode::kPull
                                                 : SpMode::kOff;
  engine.qpipe()->SetSpModeAllStages(SpMode::kOff);
  engine.qpipe()->scan_stage()->SetSpMode(scan_sp);
  SHARING_CHECK(engine.Execute(q1).ok());  // warm-up

  constexpr int kQueries = 8;
  constexpr int kTrials = 3;
  std::vector<double> trials(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    Stopwatch wall;
    std::vector<QueryHandle> handles;
    for (int i = 0; i < kQueries; ++i) handles.push_back(engine.Submit(q1));
    for (auto& h : handles) SHARING_CHECK(h.Collect().ok());
    trials[t] = wall.ElapsedSeconds() * 1e3;
  }
  std::sort(trials.begin(), trials.end());
  return trials[kTrials / 2];
}

}  // namespace

int main() {
  const double sf = ScaleFactor(0.02);
  auto db = MakeMemoryDb();
  std::printf("Generating TPC-H lineitem, SF=%.3f ...\n", sf);
  SHARING_CHECK_OK(
      tpch::GenerateLineitem(db->catalog(), db->buffer_pool(), sf).status());
  PlanNodeRef q1 = tpch::MakeQ1Plan(90);

  PrintHeader(
      "Ablation E: push-SP convoy vs FIFO capacity (8 identical Q1, "
      "SP at the scan stage)");
  std::printf("%-10s %14s %14s\n", "capacity", "sp-push", "sp-pull");

  for (std::size_t capacity : {1, 2, 4, 8, 32, 128}) {
    double push = RunPoint(db.get(), q1, EngineMode::kSpPush, capacity);
    double pull = RunPoint(db.get(), q1, EngineMode::kSpPull, capacity);
    std::printf("%-10zu %12.1fms %12.1fms\n", capacity, push, pull);
  }

  std::printf(
      "\nExpected shape: push-SP improves as the FIFO deepens (the convoy\n"
      "on the slowest consumer relaxes) but plateaus above the copy cost;\n"
      "pull-SP is insensitive to the knob — the SPL never copies and never\n"
      "blocks the producer on a reader.\n");
  return 0;
}
