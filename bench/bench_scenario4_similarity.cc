// Scenario IV (paper §4.4, Fig. 5): impact of similarity — combining SP
// with a GQP.
//
// High concurrency (16 clients), fixed selectivity, disk-resident,
// batched submission (maximizes SP opportunities and amortizes GQP
// admission). x-axis: number of distinct plans in the mix (fewer plans =>
// more common sub-plans); series: GQP alone vs GQP with SP enabled on the
// CJOIN stage. The paper calls out SP-opportunities-exploited per stage as
// the key metric here — printed in the last columns.
//
// Paper-expected shape: with few distinct plans, gqp+sp avoids
// re-admitting duplicate sub-plans (admissions column shrinks, sp-hits
// column grows) and throughput rises; with many distinct plans the two
// lines converge.

#include "bench_common.h"

using namespace sharing;
using namespace sharing::bench;

int main() {
  const double sf = ScaleFactor(0.02);
  const double window = WindowSeconds(2.0);

  auto db = MakeDiskDb(/*frames=*/512);
  // Same scaled-down rotational model as Scenario II: CJOIN's admission
  // and bookkeeping savings are CPU effects; the full 15kRPM model buries
  // them under I/O on a small container.
  db->SetDiskResident(/*read_latency_micros=*/55, /*bandwidth_mib=*/15000);
  std::printf("Generating SSB, SF=%.3f (disk-resident regime) ...\n", sf);
  SHARING_CHECK_OK(ssb::GenerateAll(db->catalog(), db->buffer_pool(), sf));

  SharingEngine engine(db.get(), SsbEngineConfig());
  constexpr std::size_t kClients = 16;  // high concurrency

  PrintHeader(
      "Scenario IV: throughput vs #distinct plans (16 clients, batched, "
      "disk-resident)");
  std::printf("%-8s %-15s %10s %12s %12s %10s %10s\n", "plans", "mode", "qps",
              "mean(ms)", "admissions", "adm(ms)", "sp-hits");

  for (int plans : {1, 2, 4, 8, 16, 32}) {
    for (EngineMode mode : {EngineMode::kGqp, EngineMode::kGqpSp}) {
      engine.SetMode(mode);
      auto before = db->metrics()->Snapshot();

      DriverOptions driver_options;
      driver_options.num_clients = kClients;
      driver_options.duration_seconds = window;
      driver_options.batched = true;

      auto report = RunClosedLoop(
          driver_options,
          [&](std::size_t client, uint64_t iteration) {
            ssb::StarTemplateParams params;
            params.selectivity = 0.01;
            params.num_variants = plans;
            params.variant =
                static_cast<int>((client + iteration * 5) % plans);
            // Distinct aggregation tops per client: queries share the star
            // sub-plan (CJOIN's input) but not the whole plan, so sharing
            // must happen at the CJOIN stage — the paper's Fig. 2 set-up.
            params.agg_variant = static_cast<int>(client % 8);
            // Four-dimension star: a wider star makes admission (scanning
            // every dimension under the pipeline's exclusive epoch) a
            // visible fraction of the cycle, which is the cost SP on the
            // CJOIN stage avoids for duplicate sub-plans.
            params.join_part = true;
            return ssb::ParameterizedStarPlan(params);
          },
          [&](const PlanNodeRef& plan) {
            auto r = engine.Execute(plan);
            return r.ok() ? Status::OK() : r.status();
          });

      auto delta = MetricsRegistry::Delta(before, db->metrics()->Snapshot());
      std::printf("%-8d %-15s %10.2f %12.1f %12lld %10.1f %10lld\n", plans,
                  std::string(EngineModeToString(mode)).c_str(),
                  report.throughput_qps, report.mean_response_ms,
                  static_cast<long long>(
                      delta[metrics::kCjoinQueriesAdmitted]),
                  double(delta[metrics::kCjoinAdmissionMicros]) / 1e3,
                  static_cast<long long>(delta[metrics::kSpOpportunities]));
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper Fig. 5): at 1 distinct plan, gqp+sp admits a\n"
      "fraction of the queries to the pipeline (sp-hits serve the rest\n"
      "from shared results) and beats plain gqp; the advantage shrinks as\n"
      "the number of distinct plans approaches the client count.\n");
  return 0;
}
