// Ablation F: adaptive per-packet SP admission vs the static modes, and
// the per-signature cost model vs one stage-wide choice.
//
// Part 1 (hot/cold mix): the paper stresses that sharing is not always a
// win: hosting a sharing session costs registry bookkeeping and (push)
// copy serialization or (pull) page retention, which a never-matched
// query simply wastes. A mixed workload — a hot template submitted in
// bursts (high sharing value) interleaved with cold one-off queries (zero
// sharing value) — runs under off/push/pull/adaptive and reports wall
// time, SP hits, pages copied vs shared, the SPL retention high-water
// mark, and the adaptive policy's per-packet decisions. Expected shape:
// adaptive tracks the best static mode on both ends.
//
// Part 2 (heterogeneous signatures): two hot templates with opposite cost
// profiles — a skinny ~2%-selectivity scan and a fat whole-table scan —
// hammer the SAME scan stage of one engine running SpMode::kAdaptive
// (stage-wide push/pull forced on neither). Stage-wide statistics would
// hand both templates whatever transport the blended means favor; the
// per-signature cost model must split them: the fat laggy result goes
// pull (cheap attaches, retention-tolerant), the skinny one goes push or
// unshared (copying a page or two beats pull bookkeeping). The bench
// prints each signature's history means and decision counts from
// Stage::CostModelSnapshot().
//
// SHARING_BENCH_SF scales the data; SHARING_BENCH_JSON=<path> also emits
// both parts as JSON (ci/verify.sh records BENCH_adaptive.json).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "exec/explain.h"

using namespace sharing;
using namespace sharing::bench;

namespace {

struct RunResult {
  double wall_ms = 0;
  MetricsSnapshot delta;
  StageStats scan;
  StageStats agg;
};

RunResult RunMixedWorkload(Database* db, SpMode mode, int bursts,
                           int burst_width, int cold_per_burst) {
  // A registry per run so monotonic values (the retention high-water
  // mark in particular) are attributable to this mode alone.
  MetricsRegistry metrics;
  QPipeOptions options = QPipeOptions::AllSp(mode);
  QPipeEngine engine(db->catalog(), options, &metrics);
  PlanNodeRef hot = tpch::MakeQ1Plan(90);

  Stopwatch wall;
  int cold_cursor = 0;
  for (int b = 0; b < bursts; ++b) {
    std::vector<QueryHandle> handles;
    // A burst of identical hot-template queries (batched arrival, the
    // pattern SP exists for) ...
    for (int i = 0; i < burst_width; ++i) handles.push_back(engine.Submit(hot));
    // ... interleaved with cold one-offs that never repeat.
    for (int i = 0; i < cold_per_burst; ++i) {
      handles.push_back(
          engine.Submit(tpch::MakeQ1Plan(30 + (cold_cursor++ % 60))));
    }
    for (auto& h : handles) {
      auto r = h.Collect();
      SHARING_CHECK(r.ok()) << r.status().ToString();
    }
  }

  RunResult result;
  result.wall_ms = wall.ElapsedSeconds() * 1e3;
  result.delta = metrics.Snapshot();
  result.scan = engine.scan_stage()->GetStats();
  result.agg = engine.agg_stage()->GetStats();
  return result;
}

// ---------------------------------------------------------------------------
// Part 2: heterogeneous signatures on one adaptive stage
// ---------------------------------------------------------------------------

/// Skinny template: ~2% of lineitem, one projected column — a page or two
/// of output. Sharing it is nearly free either way; pull bookkeeping is
/// the only thing worth avoiding.
PlanNodeRef MakeSkinnyScan() {
  Schema schema = tpch::LineitemSchema();
  const std::size_t qty = schema.ColumnIndex("l_quantity").value();
  ExprRef pred = Cmp(CmpOp::kLt, Col(qty, ValueType::kDouble), Lit(2.0));
  return std::make_shared<ScanNode>("lineitem", schema, pred,
                                    std::vector<std::size_t>{qty});
}

/// Fat template: the whole table, wide projection (strings included) —
/// hundreds of output pages whose per-satellite copies are exactly the
/// push convoy the paper's pull model removes.
PlanNodeRef MakeFatScan() {
  Schema schema = tpch::LineitemSchema();
  const std::size_t qty = schema.ColumnIndex("l_quantity").value();
  ExprRef pred = Cmp(CmpOp::kLe, Col(qty, ValueType::kDouble), Lit(51.0));
  std::vector<std::size_t> projection;
  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    projection.push_back(c);
  }
  return std::make_shared<ScanNode>("lineitem", schema, pred, projection);
}

/// Per-signature roll-up of every collected query's explain report: how
/// often the signature hosted / attached / ran unshared, and where its
/// pages came from (SPL references vs push copies).
struct ExplainSummary {
  int64_t host = 0;
  int64_t satellite = 0;
  int64_t unshared = 0;
  int64_t pages_shared = 0;
  int64_t pages_copied = 0;
  int64_t run_micros = 0;
};

struct SignatureReport {
  SharingCostModel::SignatureSnapshot skinny;
  SharingCostModel::SignatureSnapshot fat;
  MetricsSnapshot delta;
  double wall_ms = 0;
  int64_t sp_hits = 0;
  std::map<uint64_t, ExplainSummary> explain_by_sig;
};

SignatureReport RunHeterogeneous(Database* db, int rounds, int skinny_width,
                                 int fat_width) {
  MetricsRegistry metrics;
  QPipeOptions options = QPipeOptions::AllSp(SpMode::kAdaptive);
  options.cost_model_min_samples = 2;  // engage the model early in a smoke run
  QPipeEngine engine(db->catalog(), options, &metrics);

  PlanNodeRef skinny = MakeSkinnyScan();
  PlanNodeRef fat = MakeFatScan();

  Stopwatch wall;
  std::mutex explains_mutex;
  std::vector<std::shared_ptr<const QueryExplain>> explains;
  for (int r = 0; r < rounds; ++r) {
    std::vector<QueryHandle> handles;
    for (int i = 0; i < skinny_width; ++i) handles.push_back(engine.Submit(skinny));
    for (int i = 0; i < fat_width; ++i) handles.push_back(engine.Submit(fat));
    // One consumer thread per query (root-level scans batched behind an
    // undrained sibling would convoy the shared circular scan).
    std::vector<std::thread> consumers;
    std::atomic<int> ok{0};
    for (auto& h : handles) {
      consumers.emplace_back([&h, &ok, &explains_mutex, &explains] {
        auto r = h.Collect();
        if (!r.ok()) return;
        ok.fetch_add(1);
        std::lock_guard<std::mutex> lock(explains_mutex);
        explains.push_back(r.value().explain());
      });
    }
    for (auto& c : consumers) c.join();
    SHARING_CHECK(ok.load() == static_cast<int>(handles.size()));
  }

  SignatureReport report;
  report.wall_ms = wall.ElapsedSeconds() * 1e3;
  report.delta = metrics.Snapshot();
  report.sp_hits = engine.scan_stage()->GetStats().sp_hits;
  auto snaps = engine.scan_stage()->CostModelSnapshot();
  SHARING_CHECK(snaps.size() == 2) << "expected exactly two signatures";
  const bool first_is_skinny = snaps[0].mean_pages < snaps[1].mean_pages;
  report.skinny = first_is_skinny ? snaps[0] : snaps[1];
  report.fat = first_is_skinny ? snaps[1] : snaps[0];
  for (const auto& explain : explains) {
    if (explain == nullptr) continue;
    for (const auto& stage : explain->stages) {
      ExplainSummary& sum = report.explain_by_sig[stage.signature];
      switch (stage.role) {
        case QueryExplain::StageRecord::Role::kHost:
          ++sum.host;
          break;
        case QueryExplain::StageRecord::Role::kSatellite:
          ++sum.satellite;
          break;
        case QueryExplain::StageRecord::Role::kUnshared:
          ++sum.unshared;
          break;
      }
      sum.pages_shared += static_cast<int64_t>(stage.pages_shared);
      sum.pages_copied += static_cast<int64_t>(stage.pages_copied);
      sum.run_micros += stage.run_micros;
    }
  }
  return report;
}

const char* LastModeOf(const SharingCostModel::SignatureSnapshot& s) {
  // SpModeToString views a NUL-terminated literal, so .data() is a C string.
  return s.has_decision ? SpModeToString(s.last_mode).data() : "-";
}

void PrintSignatureRow(const char* name,
                       const SharingCostModel::SignatureSnapshot& s) {
  std::printf("%-8s %9.0f %8.1f %7.2f %10.1f %8lld %8lld %8lld %7s %6.2f\n",
              name, s.mean_work_micros, s.mean_pages, s.mean_satellites,
              s.mean_retention, static_cast<long long>(s.decided_off),
              static_cast<long long>(s.decided_push),
              static_cast<long long>(s.decided_pull), LastModeOf(s),
              s.last_confidence);
}

void JsonSignatureRow(std::FILE* json, bool* first, const char* name,
                      const SharingCostModel::SignatureSnapshot& s) {
  std::fprintf(json,
               "%s  {\"part\": \"heterogeneous\", \"signature\": \"%s\", "
               "\"mean_work_us\": %.1f, \"mean_pages\": %.1f, "
               "\"mean_satellites\": %.2f, \"mean_retention\": %.1f, "
               "\"decided_off\": %lld, \"decided_push\": %lld, "
               "\"decided_pull\": %lld, \"last_mode\": \"%s\", "
               "\"confidence\": %.3f}",
               *first ? "" : ",\n", name, s.mean_work_micros, s.mean_pages,
               s.mean_satellites, s.mean_retention,
               static_cast<long long>(s.decided_off),
               static_cast<long long>(s.decided_push),
               static_cast<long long>(s.decided_pull), LastModeOf(s),
               s.last_confidence);
  *first = false;
}

}  // namespace

int main() {
  const double sf = ScaleFactor(0.02);
  auto db = MakeMemoryDb();
  std::printf("Generating TPC-H lineitem, SF=%.3f ...\n", sf);
  auto table = tpch::GenerateLineitem(db->catalog(), db->buffer_pool(), sf);
  SHARING_CHECK(table.ok()) << table.status().ToString();

  std::FILE* json = nullptr;
  bool first_row = true;
  if (const char* path = std::getenv("SHARING_BENCH_JSON")) {
    json = std::fopen(path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for JSON output\n", path);
    } else {
      std::fprintf(json, "[\n");
    }
  }

  constexpr int kBursts = 4;
  constexpr int kBurstWidth = 8;
  constexpr int kColdPerBurst = 8;

  PrintHeader("Ablation F1: adaptive SP admission on a hot/cold query mix");
  std::printf("workload: %d bursts x (%d identical hot + %d distinct cold)\n\n",
              kBursts, kBurstWidth, kColdPerBurst);
  std::printf("%-10s %10s %8s %10s %10s %12s %22s\n", "mode", "wall(ms)",
              "sp-hits", "copied", "shared", "retained.hwm",
              "decisions(off/push/pull)");

  for (SpMode mode :
       {SpMode::kOff, SpMode::kPush, SpMode::kPull, SpMode::kAdaptive}) {
    auto r = RunMixedWorkload(db.get(), mode, kBursts, kBurstWidth,
                              kColdPerBurst);
    const int64_t hits = r.scan.sp_hits + r.agg.sp_hits;
    const int64_t off = r.scan.adaptive_off + r.agg.adaptive_off;
    const int64_t push = r.scan.adaptive_push + r.agg.adaptive_push;
    const int64_t pull = r.scan.adaptive_pull + r.agg.adaptive_pull;
    std::printf(
        "%-10s %10.1f %8lld %10lld %10lld %12lld %10lld/%lld/%lld\n",
        std::string(SpModeToString(mode)).c_str(), r.wall_ms,
        static_cast<long long>(hits),
        static_cast<long long>(r.delta[metrics::kSpPagesCopied]),
        static_cast<long long>(r.delta[metrics::kSpPagesShared]),
        static_cast<long long>(
            r.delta[std::string(metrics::kSpPagesRetained) + ".hwm"]),
        static_cast<long long>(off), static_cast<long long>(push),
        static_cast<long long>(pull));
    if (json != nullptr) {
      std::fprintf(
          json,
          "%s  {\"part\": \"hot_cold\", \"mode\": \"%s\", \"wall_ms\": %.1f, "
          "\"sp_hits\": %lld, \"pages_copied\": %lld, \"pages_shared\": %lld, "
          "\"retained_hwm\": %lld, \"decisions_off\": %lld, "
          "\"decisions_push\": %lld, \"decisions_pull\": %lld}",
          first_row ? "" : ",\n", std::string(SpModeToString(mode)).c_str(),
          r.wall_ms, static_cast<long long>(hits),
          static_cast<long long>(r.delta[metrics::kSpPagesCopied]),
          static_cast<long long>(r.delta[metrics::kSpPagesShared]),
          static_cast<long long>(
              r.delta[std::string(metrics::kSpPagesRetained) + ".hwm"]),
          static_cast<long long>(off), static_cast<long long>(push),
          static_cast<long long>(pull));
      first_row = false;
    }
  }

  std::printf(
      "\nExpected shape: static push/pull pay sharing overhead on every cold\n"
      "query; adaptive admits cold signatures unshared (decisions column:\n"
      "off for one-offs) yet still shares the hot bursts, and the retained\n"
      "high-water mark stays bounded because sealed SPLs reclaim pages as\n"
      "readers drain.\n\n");

  constexpr int kRounds = 10;
  constexpr int kSkinnyWidth = 3;
  constexpr int kFatWidth = 5;

  PrintHeader(
      "Ablation F2: per-signature cost model on heterogeneous signatures");
  std::printf(
      "workload: %d rounds x (%d skinny ~2%%-selectivity + %d fat "
      "whole-table scans), one engine, SpMode::kAdaptive on every stage\n"
      "(stage-wide push/pull forced on neither)\n\n",
      kRounds, kSkinnyWidth, kFatWidth);

  auto report = RunHeterogeneous(db.get(), kRounds, kSkinnyWidth, kFatWidth);
  std::printf("%-8s %9s %8s %7s %10s %8s %8s %8s %7s %6s\n", "sig",
              "work(us)", "pages", "sat", "retention", "off", "push", "pull",
              "last", "conf");
  PrintSignatureRow("skinny", report.skinny);
  PrintSignatureRow("fat", report.fat);
  std::printf(
      "\nwall=%.1fms sp-hits=%lld policy: shared=%lld unshared=%lld "
      "flips=%lld\n",
      report.wall_ms, static_cast<long long>(report.sp_hits),
      static_cast<long long>(report.delta[metrics::kPolicyDecisionsShared]),
      static_cast<long long>(report.delta[metrics::kPolicyDecisionsUnshared]),
      static_cast<long long>(report.delta[metrics::kPolicyFlips]));

  // Per-signature explain roll-up: the same divergence, but told by the
  // queries themselves (every collected ResultSet's explain report)
  // rather than the cost model's internal counters.
  const std::pair<const char*, uint64_t> sig_names[] = {
      {"skinny", report.skinny.signature}, {"fat", report.fat.signature}};
  std::printf(
      "\nExplain roll-up (every collected query's sharing report):\n");
  std::printf("%-8s %6s %11s %9s %13s %13s %9s\n", "sig", "hosts",
              "satellites", "unshared", "pages-shared", "pages-copied",
              "run(ms)");
  for (const auto& [name, sig] : sig_names) {
    const ExplainSummary& s = report.explain_by_sig[sig];
    std::printf("%-8s %6lld %11lld %9lld %13lld %13lld %9.1f\n", name,
                static_cast<long long>(s.host),
                static_cast<long long>(s.satellite),
                static_cast<long long>(s.unshared),
                static_cast<long long>(s.pages_shared),
                static_cast<long long>(s.pages_copied),
                static_cast<double>(s.run_micros) / 1e3);
  }

  const bool diverged =
      report.fat.decided_pull > 0 && report.skinny.decided_pull == 0;
  std::printf(
      "\nExpected shape: the fat signature's result size and satellite\n"
      "fan-out make pull strictly dominant, while the skinny one stays\n"
      "push/off — one stage, two different admissions%s. A stage-wide\n"
      "policy (the pre-cost-model heuristic) would blend both histories\n"
      "and hand the two templates the same transport.\n",
      diverged ? " (observed)" : " (NOT observed — investigate)");

  if (json != nullptr) {
    JsonSignatureRow(json, &first_row, "skinny", report.skinny);
    JsonSignatureRow(json, &first_row, "fat", report.fat);
    for (const auto& [name, sig] : sig_names) {
      const ExplainSummary& s = report.explain_by_sig[sig];
      std::fprintf(json,
                   ",\n  {\"part\": \"explain\", \"signature\": \"%s\", "
                   "\"hosts\": %lld, \"satellites\": %lld, "
                   "\"unshared\": %lld, \"pages_shared\": %lld, "
                   "\"pages_copied\": %lld, \"run_ms\": %.1f}",
                   name, static_cast<long long>(s.host),
                   static_cast<long long>(s.satellite),
                   static_cast<long long>(s.unshared),
                   static_cast<long long>(s.pages_shared),
                   static_cast<long long>(s.pages_copied),
                   static_cast<double>(s.run_micros) / 1e3);
    }
    std::fprintf(json,
                 ",\n  {\"part\": \"heterogeneous\", \"summary\": true, "
                 "\"wall_ms\": %.1f, \"sp_hits\": %lld, \"diverged\": %s}",
                 report.wall_ms, static_cast<long long>(report.sp_hits),
                 diverged ? "true" : "false");
    JsonMetricsRow(json, &first_row, report.delta);
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }
  return diverged ? 0 : 1;
}
