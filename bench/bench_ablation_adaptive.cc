// Ablation F: adaptive per-packet SP admission vs the static modes.
//
// The paper stresses that sharing is not always a win: hosting a sharing
// session costs registry bookkeeping and (push) copy serialization or
// (pull) page retention, which a never-matched query simply wastes. This
// bench runs a mixed workload — a hot template submitted in bursts (high
// sharing value) interleaved with cold one-off queries (zero sharing
// value) — under off/push/pull/adaptive and reports wall time, SP hits,
// pages copied vs shared, the SPL retention high-water mark, and the
// adaptive policy's per-packet decisions.
//
// Expected shape: adaptive tracks the best static mode on both ends —
// near-off cost for the cold queries (they are admitted unshared) while
// still harvesting the hot bursts' sharing, with pages_retained.hwm
// bounded by reclamation.

#include <vector>

#include "bench_common.h"

using namespace sharing;
using namespace sharing::bench;

namespace {

struct RunResult {
  double wall_ms = 0;
  MetricsSnapshot delta;
  StageStats scan;
  StageStats agg;
};

RunResult RunMixedWorkload(Database* db, SpMode mode, int bursts,
                           int burst_width, int cold_per_burst) {
  // A registry per run so monotonic values (the retention high-water
  // mark in particular) are attributable to this mode alone.
  MetricsRegistry metrics;
  QPipeOptions options = QPipeOptions::AllSp(mode);
  QPipeEngine engine(db->catalog(), options, &metrics);
  PlanNodeRef hot = tpch::MakeQ1Plan(90);

  Stopwatch wall;
  int cold_cursor = 0;
  for (int b = 0; b < bursts; ++b) {
    std::vector<QueryHandle> handles;
    // A burst of identical hot-template queries (batched arrival, the
    // pattern SP exists for) ...
    for (int i = 0; i < burst_width; ++i) handles.push_back(engine.Submit(hot));
    // ... interleaved with cold one-offs that never repeat.
    for (int i = 0; i < cold_per_burst; ++i) {
      handles.push_back(
          engine.Submit(tpch::MakeQ1Plan(30 + (cold_cursor++ % 60))));
    }
    for (auto& h : handles) {
      auto r = h.Collect();
      SHARING_CHECK(r.ok()) << r.status().ToString();
    }
  }

  RunResult result;
  result.wall_ms = wall.ElapsedSeconds() * 1e3;
  result.delta = metrics.Snapshot();
  result.scan = engine.scan_stage()->GetStats();
  result.agg = engine.agg_stage()->GetStats();
  return result;
}

}  // namespace

int main() {
  const double sf = ScaleFactor(0.02);
  auto db = MakeMemoryDb();
  std::printf("Generating TPC-H lineitem, SF=%.3f ...\n", sf);
  auto table = tpch::GenerateLineitem(db->catalog(), db->buffer_pool(), sf);
  SHARING_CHECK(table.ok()) << table.status().ToString();

  constexpr int kBursts = 4;
  constexpr int kBurstWidth = 8;
  constexpr int kColdPerBurst = 8;

  PrintHeader("Ablation F: adaptive SP admission on a hot/cold query mix");
  std::printf("workload: %d bursts x (%d identical hot + %d distinct cold)\n\n",
              kBursts, kBurstWidth, kColdPerBurst);
  std::printf("%-10s %10s %8s %10s %10s %12s %22s\n", "mode", "wall(ms)",
              "sp-hits", "copied", "shared", "retained.hwm",
              "decisions(off/push/pull)");

  for (SpMode mode :
       {SpMode::kOff, SpMode::kPush, SpMode::kPull, SpMode::kAdaptive}) {
    auto r = RunMixedWorkload(db.get(), mode, kBursts, kBurstWidth,
                              kColdPerBurst);
    const int64_t hits = r.scan.sp_hits + r.agg.sp_hits;
    const int64_t off = r.scan.adaptive_off + r.agg.adaptive_off;
    const int64_t push = r.scan.adaptive_push + r.agg.adaptive_push;
    const int64_t pull = r.scan.adaptive_pull + r.agg.adaptive_pull;
    std::printf(
        "%-10s %10.1f %8lld %10lld %10lld %12lld %10lld/%lld/%lld\n",
        std::string(SpModeToString(mode)).c_str(), r.wall_ms,
        static_cast<long long>(hits),
        static_cast<long long>(r.delta[metrics::kSpPagesCopied]),
        static_cast<long long>(r.delta[metrics::kSpPagesShared]),
        static_cast<long long>(
            r.delta[std::string(metrics::kSpPagesRetained) + ".hwm"]),
        static_cast<long long>(off), static_cast<long long>(push),
        static_cast<long long>(pull));
  }

  std::printf(
      "\nExpected shape: static push/pull pay sharing overhead on every cold\n"
      "query; adaptive admits cold signatures unshared (decisions column:\n"
      "off for one-offs) yet still shares the hot bursts, and the retained\n"
      "high-water mark stays bounded because sealed SPLs reclaim pages as\n"
      "readers drain.\n");
  return 0;
}
