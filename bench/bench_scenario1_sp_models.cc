// Scenario I (paper §4.3, Fig. 4): push-based vs pull-based SP.
//
// Identical TPC-H Q1 instances are submitted simultaneously; the x-axis is
// the number of concurrent queries; series are query-centric execution,
// push-based SP (FIFO copies), and pull-based SP (Shared Pages List).
// Reported per point: workload response time, process CPU time (the GUI's
// CPU-utilization pane), and bytes copied between buffers (the
// serialization point's footprint).
//
// Paper-expected shape: push-SP response time grows with concurrency while
// CPU stays low (one producer copying serially); pull-SP stays nearly flat
// and uses the CPU; query-centric grows once concurrency exceeds the
// machine's parallelism.

#include <algorithm>
#include <vector>

#include "bench_common.h"

using namespace sharing;
using namespace sharing::bench;

int main() {
  const double sf = ScaleFactor(0.02);
  auto db = MakeMemoryDb();
  std::printf("Generating TPC-H lineitem, SF=%.3f ...\n", sf);
  auto table = tpch::GenerateLineitem(db->catalog(), db->buffer_pool(), sf);
  SHARING_CHECK(table.ok()) << table.status().ToString();
  std::printf("lineitem: %llu rows, %zu pages (memory-resident)\n\n",
              static_cast<unsigned long long>(table.value()->num_rows()),
              table.value()->num_pages());

  SharingEngine engine(db.get(), EngineConfig{});
  PlanNodeRef q1 = tpch::MakeQ1Plan(90);

  PrintHeader(
      "Scenario I: response time of N identical TPC-H Q1 (memory-resident)");
  std::printf("%-8s %-15s %12s %10s %14s %10s\n", "queries", "mode",
              "resp(ms)", "cpu(s)", "bytes-copied", "sp-hits");

  for (int n : {1, 2, 4, 8, 16, 32}) {
    for (EngineMode mode : {EngineMode::kQueryCentric, EngineMode::kSpPush,
                            EngineMode::kSpPull}) {
      engine.SetMode(mode);
      // Paper §4.3: this experiment "evaluates SP for the table scan
      // stage" — the aggregation above stays per-query. With SP on at the
      // aggregate stage too, identical Q1 instances would share the final
      // one-page result instead of the scan stream, hiding the push
      // model's copy serialization that the scenario demonstrates.
      SpMode scan_sp = mode == EngineMode::kSpPush   ? SpMode::kPush
                       : mode == EngineMode::kSpPull ? SpMode::kPull
                                                     : SpMode::kOff;
      engine.qpipe()->SetSpModeAllStages(SpMode::kOff);
      engine.qpipe()->scan_stage()->SetSpMode(scan_sp);
      // Warm the buffer pool and stage pools once.
      SHARING_CHECK(engine.Execute(q1).ok());

      // Median of three trials per point: the scheduler noise of a small
      // container is comparable to the effects under study.
      constexpr int kTrials = 3;
      std::vector<double> resp_trials(kTrials);
      double cpu_s = 0;
      auto before = db->metrics()->Snapshot();
      CpuTimer cpu;
      for (int trial = 0; trial < kTrials; ++trial) {
        Stopwatch wall;
        std::vector<QueryHandle> handles;
        handles.reserve(n);
        for (int i = 0; i < n; ++i) handles.push_back(engine.Submit(q1));
        for (auto& h : handles) {
          auto r = h.Collect();
          SHARING_CHECK(r.ok()) << r.status().ToString();
        }
        resp_trials[trial] = wall.ElapsedSeconds() * 1e3;
      }
      cpu_s = cpu.ElapsedSeconds() / kTrials;
      std::sort(resp_trials.begin(), resp_trials.end());
      double resp_ms = resp_trials[kTrials / 2];
      auto delta = MetricsRegistry::Delta(before, db->metrics()->Snapshot());
      // Per-trial averages so the columns read as one workload execution.
      delta[metrics::kSpBytesCopied] /= kTrials;
      delta[metrics::kSpOpportunities] /= kTrials;

      std::printf("%-8d %-15s %12.1f %10.2f %14lld %10lld\n", n,
                  std::string(EngineModeToString(mode)).c_str(), resp_ms,
                  cpu_s,
                  static_cast<long long>(delta[metrics::kSpBytesCopied]),
                  static_cast<long long>(delta[metrics::kSpOpportunities]));
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper Fig. 4): sp-push response time climbs with\n"
      "queries (producer-side copy serialization; bytes-copied column),\n"
      "sp-pull stays close to the single-query time with zero copies,\n"
      "query-centric grows once concurrency exceeds available cores.\n");
  return 0;
}
