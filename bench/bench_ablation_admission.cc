// Ablation D: CJOIN admission cost and the effect of batching.
//
// The paper's Scenario IV notes that batching client submissions
// "decreases admission costs for GQP": admitting a query pauses the
// pipeline (exclusive epoch) and scans the dimension tables to update the
// shared hash tables. Queries admitted together share one pause. This
// bench measures admission epochs and admission time per query as the
// batch size grows.

#include <thread>
#include <vector>

#include "bench_common.h"
#include "qpipe/fifo_buffer.h"

using namespace sharing;
using namespace sharing::bench;

namespace {

/// Runs `total` identical star queries in waves of `batch` simultaneous
/// submissions against a fresh pipeline; returns the metrics delta.
MetricsSnapshot RunWaves(Database* db, int total, int batch) {
  CJoinOptions options;
  options.max_queries = 64;
  CJoinPipeline pipeline(db->catalog(), "lineorder", ssb::PipelineLevels(),
                         options, db->metrics());

  auto plan = ssb::ParameterizedStarPlan(
      {.selectivity = 0.05, .num_variants = 1, .variant = 0});
  // CJOIN evaluates the star-join subtree; the template's aggregation above
  // it is query-centric and not part of the admission being measured.
  PlanNodeRef join_root = StarJoinRootOf(plan);
  SHARING_CHECK(join_root != nullptr);
  auto spec = StarQueryFromPlan(*join_root, "lineorder").value();

  auto before = db->metrics()->Snapshot();
  for (int done = 0; done < total; done += batch) {
    int wave = std::min(batch, total - done);
    std::vector<std::thread> threads;
    for (int i = 0; i < wave; ++i) {
      threads.emplace_back([&] {
        auto sink = std::make_shared<FifoBuffer>(64);
        auto ctx = std::make_shared<ExecContext>(1, db->metrics());
        std::thread drainer([&sink] {
          while (sink->Next()) {
          }
        });
        pipeline.ExecuteQuery(spec, ctx, sink);
        drainer.join();
      });
    }
    for (auto& t : threads) t.join();
  }
  return MetricsRegistry::Delta(before, db->metrics()->Snapshot());
}

}  // namespace

int main() {
  const double sf = ScaleFactor(0.005);
  auto db = MakeMemoryDb();
  std::printf("Generating SSB, SF=%.3f ...\n", sf);
  SHARING_CHECK_OK(ssb::GenerateAll(db->catalog(), db->buffer_pool(), sf));

  PrintHeader("Ablation D: CJOIN admission cost vs batch size");
  std::printf("%-8s %10s %12s %18s %18s\n", "batch", "queries",
              "epochs", "admission(ms)", "adm-ms/query");

  constexpr int kTotal = 16;
  for (int batch : {1, 2, 4, 8, 16}) {
    auto delta = RunWaves(db.get(), kTotal, batch);
    double adm_ms = double(delta[metrics::kCjoinAdmissionMicros]) / 1e3;
    std::printf("%-8d %10lld %12lld %18.2f %18.3f\n", batch,
                static_cast<long long>(delta[metrics::kCjoinQueriesAdmitted]),
                static_cast<long long>(delta[metrics::kCjoinAdmissionEpochs]),
                adm_ms, adm_ms / double(kTotal));
  }

  std::printf(
      "\nExpected shape: admission epochs fall as batch size grows (one\n"
      "pipeline pause covers the whole wave), so admission cost per query\n"
      "shrinks — the amortization the paper attributes to batching.\n");
  return 0;
}
