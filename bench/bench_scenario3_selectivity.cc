// Scenario III (paper §4.4, Fig. 5): impact of selectivity.
//
// Low concurrency (2 clients — at or below the container's parallelism,
// which is what "low concurrency" means in the paper's rules of thumb),
// memory-resident database, randomized template parameters, SP enabled on
// all stages for both lines. x-axis: query selectivity; series: QPipe
// query-centric (+SP) vs CJOIN GQP.
//
// Paper-expected shape: shared operators carry a per-tuple bookkeeping
// overhead (bitmap AND over every fact tuple, regardless of selectivity),
// so at low concurrency the query-centric line wins — most clearly at low
// selectivity, where query-centric operators touch little data while the
// GQP still streams the whole fact table through the pipeline.

#include "bench_common.h"

using namespace sharing;
using namespace sharing::bench;

int main() {
  const double sf = ScaleFactor(0.005);
  const double window = WindowSeconds(2.0);

  auto db = MakeMemoryDb();
  std::printf("Generating SSB, SF=%.3f (memory-resident) ...\n", sf);
  SHARING_CHECK_OK(ssb::GenerateAll(db->catalog(), db->buffer_pool(), sf));

  SharingEngine engine(db.get(), SsbEngineConfig());
  constexpr std::size_t kClients = 2;  // low concurrency (== cores)

  PrintHeader(
      "Scenario III: throughput vs selectivity (2 clients, memory-resident)");
  std::printf("%-12s %-15s %10s %12s %14s\n", "selectivity", "mode", "qps",
              "mean(ms)", "bitmap-ANDs");

  for (double selectivity : {0.001, 0.01, 0.04, 0.08, 0.16, 0.32}) {
    for (EngineMode mode : {EngineMode::kSpPull, EngineMode::kGqp}) {
      engine.SetMode(mode);
      auto before = db->metrics()->Snapshot();

      DriverOptions driver_options;
      driver_options.num_clients = kClients;
      driver_options.duration_seconds = window;

      auto report = RunClosedLoop(
          driver_options,
          [&](std::size_t client, uint64_t iteration) {
            ssb::StarTemplateParams params;
            params.selectivity = selectivity;
            params.num_variants = 1024;  // randomized: no SP hits
            params.variant =
                static_cast<int>((client * 131 + iteration * 7) % 1024);
            return ssb::ParameterizedStarPlan(params);
          },
          [&](const PlanNodeRef& plan) {
            auto r = engine.Execute(plan);
            return r.ok() ? Status::OK() : r.status();
          });

      auto delta = MetricsRegistry::Delta(before, db->metrics()->Snapshot());
      std::printf("%-12.3f %-15s %10.2f %12.1f %14lld\n", selectivity,
                  std::string(EngineModeToString(mode)).c_str(),
                  report.throughput_qps, report.mean_response_ms,
                  static_cast<long long>(
                      delta[metrics::kCjoinBitmapAndOps]));
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper Fig. 5 / rule of thumb): at low concurrency\n"
      "the query-centric line (sp-pull) beats gqp across selectivities —\n"
      "the bitmap-ANDs column shows the bookkeeping the GQP pays on every\n"
      "fact tuple whether or not anyone wants it.\n");
  return 0;
}
