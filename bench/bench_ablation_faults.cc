// Ablation J: what a disarmed fault point costs on the hot path.
//
// This PR threads SHARING_FAULT_POINT checks through the engine's hot
// paths — disk reads/writes, I/O dispatch, spill-store open, sharing
// appends. The whole design rests on the disarmed check being free: one
// relaxed atomic load and a branch, no lock, no clock. This bench holds
// that claim to a number and gates on it.
//
// Measured:
//   1. ns per disarmed Check() in a hot loop (the production fast path)
//   2. ns per Check() on a non-participating point while the registry is
//      armed for a *different* point (the mutexed slow path a chaos run
//      imposes on innocent sites — reported, not gated; faults are a
//      test facility)
//   3. ns per SPL page append+drain (the realistic unit of hot-path work
//      a check rides on)
//
// Gate (exit 1 on breach): disarmed_check_ns / append_ns_per_page < 2%.
//
// SHARING_BENCH_JSON=<path> also emits the numbers as JSON
// (ci/verify.sh records BENCH_faults.json).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_common.h"
#include "common/fault.h"
#include "qpipe/shared_pages_list.h"

using namespace sharing;
using namespace sharing::bench;

namespace {

constexpr std::size_t kRowWidth = 64;
constexpr std::size_t kRowsPerPage = 64;  // 4 KiB of row bytes per page
constexpr std::size_t kChecks = 20'000'000;
constexpr std::size_t kPages = 8192;
constexpr int kReps = 3;  // keep the min — the loops are allocation-free

PageRef MakePage(int64_t tag) {
  auto page = std::make_shared<RowPage>(kRowWidth, kRowWidth * kRowsPerPage);
  for (std::size_t r = 0; r < kRowsPerPage; ++r) {
    uint8_t* slot = page->AppendSlot();
    for (std::size_t b = 0; b < kRowWidth; ++b) {
      slot[b] = static_cast<uint8_t>(tag + 31 * r + b);
    }
  }
  return page;
}

double NsPerCheck() {
  // The accumulator keeps the loop observable; disarmed it stays 0.
  uint64_t fired = 0;
  double best = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kChecks; ++i) {
      fired += FaultCheck(fault_points::kSharingAppend).fired ? 1 : 0;
    }
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        static_cast<double>(kChecks);
    if (ns < best) best = ns;
  }
  if (fired > kChecks * kReps) std::abort();  // defeat dead-code elimination
  return best;
}

double NsPerAppend(MetricsSnapshot* out_snap) {
  double best = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    MetricsRegistry metrics;
    auto list = SharedPagesList::Create(&metrics);
    auto reader = list->AttachReader();
    std::size_t drained = 0;
    std::thread consumer([&] {
      while (reader->Next() != nullptr) ++drained;
    });
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t p = 0; p < kPages; ++p) {
      list->Append(MakePage(static_cast<int64_t>(p)));
    }
    list->Close(Status::OK());
    consumer.join();
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        static_cast<double>(kPages);
    if (drained != kPages) std::abort();
    if (ns < best) best = ns;
    *out_snap = metrics.Snapshot();
  }
  return best;
}

}  // namespace

int main() {
  PrintHeader("Ablation J: disarmed fault-point overhead");
  std::printf("checks=%zu, pages=%zu (%zu KiB each), reps=%d (min kept)\n\n",
              kChecks, kPages, kRowWidth * kRowsPerPage / 1024, kReps);

  FaultRegistry::Global().Disarm();
  const double disarmed_ns = NsPerCheck();

  // Arm a point no loop below consults: every other site now pays the
  // armed slow path (mutex + map miss).
  if (!FaultRegistry::Global().Arm("disk.write=p0.5").ok()) return 1;
  const double armed_other_ns = NsPerCheck();
  FaultRegistry::Global().Disarm();

  MetricsSnapshot snap;
  const double append_ns = NsPerAppend(&snap);

  const double overhead_pct =
      append_ns > 0 ? disarmed_ns / append_ns * 100.0 : 100.0;

  std::printf("%-34s %12.2f ns\n", "disarmed Check()", disarmed_ns);
  std::printf("%-34s %12.2f ns\n", "Check() while another point armed",
              armed_other_ns);
  std::printf("%-34s %12.2f ns\n", "SPL append+drain per page", append_ns);
  std::printf("%-34s %12.4f %%  (gate: < 2%%)\n", "disarmed check / append",
              overhead_pct);

  if (const char* path = std::getenv("SHARING_BENCH_JSON")) {
    std::FILE* json = std::fopen(path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for JSON output\n", path);
      return 1;
    }
    bool first = true;
    std::fprintf(json,
                 "[\n  {\"bench\": \"faults\", \"disarmed_check_ns\": %.3f, "
                 "\"armed_other_point_check_ns\": %.3f, "
                 "\"append_ns_per_page\": %.1f, \"overhead_pct\": %.5f}",
                 disarmed_ns, armed_other_ns, append_ns, overhead_pct);
    first = false;
    JsonMetricsRow(json, &first, snap);
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }

  if (overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: a disarmed fault check costs %.2f%% of a page "
                 "append (gate: < 2%%)\n",
                 overhead_pct);
    return 1;
  }
  std::printf(
      "\nExpected shape: the disarmed check is a relaxed load + branch\n"
      "(~1 ns), orders of magnitude under the gate; the armed-other-point\n"
      "cost shows the mutexed slow path chaos runs impose, which is why\n"
      "faults stay disarmed in production.\n");
  return 0;
}
