// Micro A: the mechanism behind Fig. 4 — FIFO copy fan-out (push SP) vs
// Shared Pages List fan-out (pull SP), isolated from the query engine.
//
// One producer produces P pages; N consumers each need all P pages.
// Push: the producer deep-copies every page into each consumer's FIFO.
// Pull: the producer appends each page once to an SPL; consumers share.
// google-benchmark reports time per (producer+consumers) round.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "qpipe/fifo_buffer.h"
#include "qpipe/shared_pages_list.h"

namespace sharing {
namespace {

constexpr std::size_t kRowWidth = 64;
constexpr std::size_t kPageBytesProduced = 32 * 1024;

PageRef MakeFullPage() {
  auto page = std::make_shared<RowPage>(kRowWidth, kPageBytesProduced);
  while (uint8_t* slot = page->AppendSlot()) {
    slot[0] = 1;
  }
  return page;
}

/// Push model: producer writes each page into every consumer FIFO as a
/// deep copy — all copies serialized through the producer thread.
void BM_PushFanout(benchmark::State& state) {
  const int consumers = static_cast<int>(state.range(0));
  const int pages = static_cast<int>(state.range(1));
  PageRef source = MakeFullPage();

  for (auto _ : state) {
    std::vector<std::shared_ptr<FifoBuffer>> fifos;
    for (int c = 0; c < consumers; ++c) {
      fifos.push_back(std::make_shared<FifoBuffer>(8));
    }
    std::vector<std::thread> threads;
    std::atomic<int64_t> consumed{0};
    for (int c = 0; c < consumers; ++c) {
      threads.emplace_back([&, c] {
        int64_t n = 0;
        while (fifos[c]->Next()) ++n;
        consumed.fetch_add(n);
      });
    }
    for (int p = 0; p < pages; ++p) {
      for (int c = 0; c < consumers; ++c) {
        auto copy = std::make_shared<RowPage>(*source);  // the copy cost
        fifos[c]->Put(std::move(copy));
      }
    }
    for (auto& f : fifos) f->Close(Status::OK());
    for (auto& t : threads) t.join();
    if (consumed.load() != int64_t(consumers) * pages) {
      state.SkipWithError("lost pages");
    }
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * consumers * pages *
                          int64_t(kPageBytesProduced));
}

/// Pull model: producer appends once; consumers share page references.
void BM_PullFanout(benchmark::State& state) {
  const int consumers = static_cast<int>(state.range(0));
  const int pages = static_cast<int>(state.range(1));
  PageRef source = MakeFullPage();

  for (auto _ : state) {
    auto spl = SharedPagesList::Create();
    std::vector<std::shared_ptr<SplReader>> readers;
    for (int c = 0; c < consumers; ++c) readers.push_back(spl->AttachReader());
    std::vector<std::thread> threads;
    std::atomic<int64_t> consumed{0};
    for (int c = 0; c < consumers; ++c) {
      threads.emplace_back([&, c] {
        int64_t n = 0;
        while (readers[c]->Next()) ++n;
        consumed.fetch_add(n);
      });
    }
    for (int p = 0; p < pages; ++p) {
      spl->Append(source);  // shared: no copy
    }
    spl->Close(Status::OK());
    for (auto& t : threads) t.join();
    if (consumed.load() != int64_t(consumers) * pages) {
      state.SkipWithError("lost pages");
    }
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * consumers * pages *
                          int64_t(kPageBytesProduced));
}

BENCHMARK(BM_PushFanout)
    ->ArgsProduct({{1, 2, 4, 8, 16}, {64}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_PullFanout)
    ->ArgsProduct({{1, 2, 4, 8, 16}, {64}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace sharing

BENCHMARK_MAIN();
