// Ablation I: sharing hot-path contention — one producer fanning out to
// 1/2/4/8/16/32 pull readers, resident vs spill-pressure configs.
//
// The paper's pull model exists so ONE producer can feed hundreds of
// concurrent consumers; that promise dies if the SharedPagesList
// serializes every reader through one mutex. This bench measures the two
// sides of the rebuilt hot path:
//
//  * aggregate reader throughput (pages/s summed over readers) — with
//    seqlock-style publication a resident page is read lock-free, so the
//    aggregate must GROW with fan-out instead of collapsing on the list
//    lock (acceptance: 16-reader aggregate >= 4x the 1-reader aggregate
//    on the resident config);
//  * producer append latency — per-reader parking means the producer
//    only ever touches parked readers, so its batch-append p99 must stay
//    within 2x of the 1-reader case even at 32 readers (resident
//    config).
//
// The spill-pressure config (small SP budget + async spill writes) is
// reported alongside: it shares the fast path but adds governor
// rebalancing to every append, so its absolute numbers trail the
// resident config's — the shape (scaling with fan-out) must survive.
//
// Latencies are exact percentiles over every batch append (not the
// log-bucketed metrics histogram — a factor-of-two bucket would swallow
// the 2x acceptance bound). The gated metric is producer THREAD CPU time
// per append: it captures exactly what the producer pays (bookkeeping +
// at most one seeded wake) and is immune to the wakeup-preemption noise
// an oversubscribed host injects into wall time (the woken reader can
// preempt the producer inside the timed window); wall p99 is reported
// alongside, ungated.
//
// SHARING_BENCH_SF scales the page count; SHARING_BENCH_JSON=<path> also
// emits the sweep as JSON (ci/verify.sh records BENCH_contention.json).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/metrics_format.h"
#include "qpipe/sharing_channel.h"
#include "server/admin_server.h"

using namespace sharing;
using namespace sharing::bench;

namespace {

constexpr std::size_t kRowWidth = 64;
constexpr std::size_t kRowsPerPage = 128;  // 8 KiB of row bytes per page
constexpr std::size_t kAppendBatch = 8;    // the engine's sp_read_batch
constexpr std::size_t kSpillBudgetPages = 32;

PageRef MakePage(int64_t tag) {
  auto page = std::make_shared<RowPage>(kRowWidth, kRowWidth * kRowsPerPage);
  for (std::size_t r = 0; r < kRowsPerPage; ++r) {
    uint8_t* slot = page->AppendSlot();
    for (std::size_t b = 0; b < kRowWidth; ++b) {
      slot[b] = static_cast<uint8_t>(tag + 31 * r + b);
    }
  }
  return page;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU nanoseconds consumed by the CALLING thread. The append-latency
/// gate uses this, not wall time: on an oversubscribed host a woken
/// reader can preempt the producer inside the timed window, and the gate
/// is about what the producer PAYS per append (bookkeeping + at most one
/// seeded wake), not about scheduler interleaving.
int64_t ThreadCpuNanos() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

struct CellResult {
  double wall_ms = 0;
  double aggregate_pages_per_sec = 0;
  double producer_pages_per_sec = 0;
  int64_t append_p50_us = 0;   // producer CPU time per batch append
  int64_t append_p99_us = 0;   // producer CPU time per batch append
  int64_t append_wall_p99_us = 0;
  int64_t lock_waits = 0;
  int64_t parks = 0;
  int64_t spilled = 0;
  bool ok = true;
  MetricsSnapshot snap;  // the cell's full registry (JsonMetricsRow)
};

/// One cell: a producer appends `pages` through a pull channel in
/// engine-sized batches while `readers` consumer threads drain
/// concurrently (each touching every page — the broadcast the SPL
/// exists for). Wall is start-to-last-drain.
CellResult RunCell(std::size_t pages, std::size_t readers, bool spill,
                   bool scrape = false) {
  MetricsRegistry metrics;
  std::shared_ptr<IoScheduler> scheduler;
  SharingChannelOptions options;
  options.metrics = &metrics;

  // Scrape variant (the admin-server perturbation gate): a live admin
  // server exports this cell's registry as Prometheus text while a
  // client polls it at 10 Hz — the acceptance bound says the sharing
  // hot path must not feel it (scrape handlers snapshot under the
  // registry mutex, never under SPL latches).
  std::unique_ptr<AdminServer> admin;
  std::thread scraper;
  std::atomic<bool> scrape_stop{false};
  if (scrape) {
    AdminServer::Options aopts;
    aopts.port = 0;
    admin = std::make_unique<AdminServer>(aopts);
    MetricsRegistry* registry = &metrics;
    admin->Handle("/metrics", [registry](const HttpRequest&) {
      return HttpResponse::Text(
          MetricsPrometheusText(registry->SnapshotTyped()));
    });
    if (!admin->Start().ok()) {
      std::fprintf(stderr, "admin server failed to start for scrape cell\n");
      std::exit(1);
    }
    const int port = admin->port();
    scraper = std::thread([port, &scrape_stop] {
      while (!scrape_stop.load(std::memory_order_acquire)) {
        auto r = AdminHttpGet(port, "/metrics");
        if (!r.ok()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
  }
  if (spill) {
    IoScheduler::Options iopts;
    iopts.threads = 2;
    iopts.metrics = &metrics;
    scheduler = std::make_shared<IoScheduler>(iopts);
    SpBudgetGovernor::Options gopts;
    gopts.budget_pages = kSpillBudgetPages;
    gopts.scheduler = scheduler;
    gopts.metrics = &metrics;
    options.governor = SpBudgetGovernor::Create(std::move(gopts));
  }
  auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));

  std::vector<PageSourceRef> sources;
  for (std::size_t r = 0; r < readers; ++r) {
    sources.push_back(channel->AttachReader());
  }

  CellResult result;
  std::vector<int64_t> batch_ns;
  batch_ns.reserve(pages / kAppendBatch + 1);
  std::atomic<bool> failed{false};

  const int64_t wall_start = NowNanos();
  std::vector<std::thread> consumers;
  consumers.reserve(readers);
  for (std::size_t r = 0; r < readers; ++r) {
    consumers.emplace_back([&, r] {
      std::vector<PageRef> got;
      got.reserve(kAppendBatch);
      std::size_t count = 0;
      uint64_t checksum = 0;
      for (;;) {
        got.clear();
        const std::size_t n = sources[r]->NextBatch(kAppendBatch, &got);
        if (n == 0) break;
        for (const PageRef& page : got) {
          checksum += page->RowAt(0)[0];  // touch: a real consumer reads
        }
        count += n;
      }
      if (count != pages || checksum == ~uint64_t{0}) failed.store(true);
    });
  }

  std::vector<int64_t> batch_wall_ns;
  batch_wall_ns.reserve(pages / kAppendBatch + 1);
  std::thread producer([&] {
    std::vector<PageRef> batch;
    batch.reserve(kAppendBatch);
    for (std::size_t i = 0; i < pages;) {
      batch.clear();
      for (std::size_t j = 0; j < kAppendBatch && i < pages; ++j, ++i) {
        batch.push_back(MakePage(static_cast<int64_t>(i)));
      }
      const int64_t wall_start_ns = NowNanos();
      const int64_t cpu_start_ns = ThreadCpuNanos();
      if (!channel->PutBatch(std::move(batch))) {
        failed.store(true);
        break;
      }
      batch_ns.push_back(ThreadCpuNanos() - cpu_start_ns);
      batch_wall_ns.push_back(NowNanos() - wall_start_ns);
      batch = {};
    }
    channel->Close(Status::OK());
  });

  producer.join();
  for (auto& t : consumers) t.join();
  const int64_t wall_ns = NowNanos() - wall_start;
  if (scrape) {
    scrape_stop.store(true, std::memory_order_release);
    scraper.join();
    admin->Stop();
  }
  if (scheduler != nullptr) scheduler->Shutdown();

  result.ok = !failed.load();
  result.wall_ms = static_cast<double>(wall_ns) / 1e6;
  const double wall_sec = static_cast<double>(wall_ns) / 1e9;
  result.aggregate_pages_per_sec =
      static_cast<double>(pages * readers) / wall_sec;
  result.producer_pages_per_sec = static_cast<double>(pages) / wall_sec;
  auto percentile = [](std::vector<int64_t>& values, double q) -> int64_t {
    if (values.empty()) return 0;
    std::sort(values.begin(), values.end());
    std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    return values[idx] / 1000;  // ns -> us
  };
  result.append_p50_us = percentile(batch_ns, 0.50);
  result.append_p99_us = percentile(batch_ns, 0.99);
  result.append_wall_p99_us = percentile(batch_wall_ns, 0.99);
  MetricsSnapshot snap = metrics.Snapshot();
  result.lock_waits = snap[metrics::kSpLockWaits];
  result.parks = snap[metrics::kSpReaderParks];
  result.spilled = snap[metrics::kSpPagesSpilled];
  result.snap = std::move(snap);
  return result;
}

}  // namespace

int main() {
  const double sf = ScaleFactor(1.0);
  const std::size_t pages =
      std::max<std::size_t>(512, static_cast<std::size_t>(8192 * sf));
  const std::vector<std::size_t> fan_outs = {1, 2, 4, 8, 16, 32};

  PrintHeader(
      "Ablation I: sharing hot-path contention (fan-out x resident/spill)");
  std::printf(
      "pages=%zu (%zu KiB each), append batch=%zu, spill budget=%zu "
      "pages\none producer, N pull readers each draining the full "
      "stream.\n\n",
      pages, kRowWidth * kRowsPerPage / 1024, kAppendBatch,
      kSpillBudgetPages);
  std::printf("%-9s %-8s %10s %14s %12s %11s %11s %12s %10s %9s %9s\n",
              "config", "readers", "wall(ms)", "aggregate(p/s)",
              "append(p/s)", "cpu-p50(us)", "cpu-p99(us)", "wall-p99(us)",
              "lockwaits", "parks", "spilled");

  std::FILE* json = nullptr;
  if (const char* path = std::getenv("SHARING_BENCH_JSON")) {
    json = std::fopen(path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for JSON output\n", path);
      return 1;
    }
    std::fprintf(json, "[\n");
  }

  double resident_single_aggregate = 0;
  double resident_16_aggregate = 0;
  int64_t resident_single_p99 = 0;
  int64_t resident_32_p99 = 0;
  bool all_ok = true;
  bool first = true;
  MetricsSnapshot last_snap;
  for (bool spill : {false, true}) {
    for (std::size_t readers : fan_outs) {
      CellResult r = RunCell(pages, readers, spill);
      all_ok = all_ok && r.ok;
      last_snap = r.snap;
      const char* config = spill ? "spill" : "resident";
      if (!spill) {
        if (readers == 1) {
          resident_single_aggregate = r.aggregate_pages_per_sec;
          resident_single_p99 = r.append_p99_us;
        }
        if (readers == 16) resident_16_aggregate = r.aggregate_pages_per_sec;
        if (readers == 32) resident_32_p99 = r.append_p99_us;
      }
      std::printf(
          "%-9s %-8zu %10.1f %14.0f %12.0f %11lld %11lld %12lld %10lld "
          "%9lld %9lld\n",
          config, readers, r.wall_ms, r.aggregate_pages_per_sec,
          r.producer_pages_per_sec, static_cast<long long>(r.append_p50_us),
          static_cast<long long>(r.append_p99_us),
          static_cast<long long>(r.append_wall_p99_us),
          static_cast<long long>(r.lock_waits),
          static_cast<long long>(r.parks),
          static_cast<long long>(r.spilled));
      if (json != nullptr) {
        std::fprintf(
            json,
            "%s  {\"config\": \"%s\", \"readers\": %zu, \"pages\": %zu, "
            "\"append_batch\": %zu, \"wall_ms\": %.3f, "
            "\"aggregate_pages_per_sec\": %.0f, "
            "\"producer_pages_per_sec\": %.0f, "
            "\"append_cpu_p50_us\": %lld, \"append_cpu_p99_us\": %lld, "
            "\"append_wall_p99_us\": %lld, \"lock_waits\": %lld, "
            "\"reader_parks\": %lld, \"pages_spilled\": %lld}",
            first ? "" : ",\n", config, readers, pages, kAppendBatch,
            r.wall_ms, r.aggregate_pages_per_sec, r.producer_pages_per_sec,
            static_cast<long long>(r.append_p50_us),
            static_cast<long long>(r.append_p99_us),
            static_cast<long long>(r.append_wall_p99_us),
            static_cast<long long>(r.lock_waits),
            static_cast<long long>(r.parks),
            static_cast<long long>(r.spilled));
        first = false;
      }
    }
  }
  // Admin-server perturbation gate: the 16-reader resident cell with a
  // live /metrics endpoint scraped at 10 Hz must hold >= 95% of the
  // server-off aggregate (best of 3 each — the cells are wall-clock
  // measurements and CI hosts are noisy).
  double scrape_off_aggregate = 0;
  double scrape_on_aggregate = 0;
  for (int rep = 0; rep < 3; ++rep) {
    CellResult off = RunCell(pages, 16, /*spill=*/false, /*scrape=*/false);
    CellResult on = RunCell(pages, 16, /*spill=*/false, /*scrape=*/true);
    all_ok = all_ok && off.ok && on.ok;
    scrape_off_aggregate =
        std::max(scrape_off_aggregate, off.aggregate_pages_per_sec);
    scrape_on_aggregate =
        std::max(scrape_on_aggregate, on.aggregate_pages_per_sec);
  }
  const double scrape_ratio = scrape_off_aggregate > 0
                                  ? scrape_on_aggregate / scrape_off_aggregate
                                  : 0;
  std::printf(
      "\nadmin scrape delta (16 readers, resident, 10 Hz /metrics): "
      "off=%.0f p/s, on=%.0f p/s, ratio=%.3f (gate: >= 0.95)\n",
      scrape_off_aggregate, scrape_on_aggregate, scrape_ratio);
  if (json != nullptr) {
    std::fprintf(json,
                 ",\n  {\"config\": \"scrape_gate\", \"readers\": 16, "
                 "\"scrape_off_pages_per_sec\": %.0f, "
                 "\"scrape_on_pages_per_sec\": %.0f, "
                 "\"admin_scrape_ratio\": %.4f}",
                 scrape_off_aggregate, scrape_on_aggregate, scrape_ratio);
  }

  if (json != nullptr) {
    JsonMetricsRow(json, &first, last_snap);
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }

  // The scaling acceptance gates (resident config): fan-out must be a
  // throughput multiplier, and the producer must not pay for it.
  const double scale = resident_single_aggregate > 0
                           ? resident_16_aggregate / resident_single_aggregate
                           : 0;
  const double p99_ratio =
      resident_single_p99 > 0
          ? static_cast<double>(resident_32_p99) /
                static_cast<double>(resident_single_p99)
          : 0;
  std::printf(
      "\n16-reader aggregate = %.2fx the 1-reader aggregate (gate: >= 4x)\n"
      "32-reader append p99 = %.2fx the 1-reader p99 (gate: <= 2x)\n",
      scale, p99_ratio);
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: a reader missed pages or a put failed\n");
    return 1;
  }
  if (scale < 4.0) {
    std::fprintf(stderr,
                 "FAIL: fan-out did not scale (readers serialized on the "
                 "sharing hot path)\n");
    return 1;
  }
  if (resident_single_p99 > 0 && p99_ratio > 2.0) {
    std::fprintf(stderr,
                 "FAIL: producer append p99 degraded more than 2x at 32 "
                 "readers\n");
    return 1;
  }
  if (scrape_ratio < 0.95) {
    std::fprintf(stderr,
                 "FAIL: a 10 Hz /metrics scrape cost the 16-reader cell "
                 "more than 5%% aggregate throughput\n");
    return 1;
  }
  std::printf(
      "\nExpected shape: aggregate(p/s) grows with fan-out (readers share\n"
      "references lock-free instead of serializing on the list mutex) and\n"
      "append p50/p99 stay flat (per-reader parking: the producer wakes\n"
      "only parked readers, and batched appends amortize the sweep).\n"
      "The spill config pays governor rebalancing per append; its curve\n"
      "sits lower but keeps the same shape.\n");
  return 0;
}
