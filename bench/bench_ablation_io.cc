// Ablation H: the async I/O scheduler — io_threads x read latency x
// IO budget, on the disk-resident spill regime.
//
// PR 2's spill tier made disk-resident SP *correct* but not schedulable:
// spill writes ran synchronously inside the producer's Append path and
// fault-back reads had no latency model or budget. The IoScheduler moves
// both onto prioritized worker threads (scan-prefetch > fault-back >
// spill-write) with per-class token-bucket budgets. This bench sweeps the
// scheduler's three knobs on a stalled-reader spill workload (the regime
// the paper measures on its 15kRPM array): a pull channel with a small
// memory budget, a producer that appends at memory speed, and a stalled
// reader that then drains everything through fault-back.
//
// Reported per cell: producer append wall (the sharing fast path — must
// stay flat as I/O gets slower), stalled-reader drain wall (pays the
// modeled read latency), pages spilled / faulted back, scheduler queue
// high-water mark, and token-bucket stall time.
//
// Expected shape: append wall is independent of the disk model and the
// budget (writes are async and bounded by the in-flight window, never
// the producer). Drain wall grows with read_latency_micros and shrinks
// only modestly with threads (a single reader's fault-backs are mostly
// sequential; one-slot readahead overlaps them with consumption).
// A nonzero IO budget adds io.stall_micros without touching append wall.
//
// SHARING_BENCH_SF scales the page count; SHARING_BENCH_JSON=<path> also
// emits the sweep as JSON (ci/verify.sh records BENCH_io.json).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "qpipe/sharing_channel.h"

using namespace sharing;
using namespace sharing::bench;

namespace {

constexpr std::size_t kRowWidth = 64;
constexpr std::size_t kRowsPerPage = 128;  // 8 KiB of row bytes per page
constexpr std::size_t kBudgetPages = 32;
constexpr uint32_t kWriteLatencyMicros = 500;

PageRef MakePage(int64_t tag) {
  auto page = std::make_shared<RowPage>(kRowWidth, kRowWidth * kRowsPerPage);
  for (std::size_t r = 0; r < kRowsPerPage; ++r) {
    uint8_t* slot = page->AppendSlot();
    for (std::size_t b = 0; b < kRowWidth; ++b) {
      slot[b] = static_cast<uint8_t>(tag + 31 * r + b);
    }
  }
  return page;
}

struct CellResult {
  double append_ms = 0;
  double drain_ms = 0;
  int64_t spilled = 0;
  int64_t unspills = 0;
  int64_t stall_micros = 0;
  int64_t queue_hwm = 0;
  MetricsSnapshot snap;  // the cell's full registry (JsonMetricsRow)
};

/// One sweep cell: produce `pages` through a pull channel under a
/// `kBudgetPages` memory budget with a fully stalled reader, then drain
/// the reader through fault-back. The scheduler runs `threads` workers
/// with a `budget_mib` per-class budget; the spill store charges
/// `read_latency` on fault-backs and kWriteLatencyMicros on writes.
CellResult RunCell(std::size_t pages, std::size_t threads,
                   uint32_t read_latency, std::size_t budget_mib) {
  MetricsRegistry metrics;
  IoScheduler::Options iopts;
  iopts.threads = threads;
  iopts.budget_mib_per_sec = budget_mib;
  iopts.metrics = &metrics;
  auto scheduler = std::make_shared<IoScheduler>(iopts);

  SpBudgetGovernor::Options gopts;
  gopts.budget_pages = kBudgetPages;
  gopts.read_latency_micros = read_latency;
  gopts.write_latency_micros = kWriteLatencyMicros;
  gopts.scheduler = scheduler;
  gopts.metrics = &metrics;

  SharingChannelOptions options;
  options.metrics = &metrics;
  options.governor = SpBudgetGovernor::Create(std::move(gopts));
  auto governor = options.governor;
  auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));
  auto host = channel->AttachReader();
  auto stalled = channel->AttachReader();

  CellResult result;
  {
    Stopwatch append;
    for (std::size_t i = 0; i < pages; ++i) {
      channel->Put(MakePage(static_cast<int64_t>(i)));
      host->Next();
    }
    result.append_ms = append.ElapsedSeconds() * 1e3;
  }
  channel->Close(Status::OK());
  while (host->Next() != nullptr) {
  }
  // Model the paper's regime where the laggard returns much later: let
  // the background spill writes land (the producer finished at memory
  // speed long before them) so the drain below actually faults back.
  // Bounded, and stops when the store latches unusable (a failed store
  // never re-kicks, so excess would stay nonzero forever).
  for (int spin = 0; spin < 30000 &&
                     (governor->SpillsInFlight() > 0 ||
                      (governor->usable() && governor->ExcessPages() > 0));
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    Stopwatch drain;
    while (stalled->Next() != nullptr) {
    }
    result.drain_ms = drain.ElapsedSeconds() * 1e3;
  }
  // Queued jobs keep the governor (and through it the scheduler) alive;
  // an explicit Shutdown drops them so the cell tears down cleanly and
  // no worker outlives this scope's metrics registry.
  scheduler->Shutdown();

  MetricsSnapshot snap = metrics.Snapshot();
  result.spilled = snap[metrics::kSpPagesSpilled];
  result.unspills = snap[metrics::kSpUnspillReads];
  result.stall_micros = snap[metrics::kIoStallMicros];
  result.queue_hwm = snap[std::string(metrics::kIoQueueDepth) + ".hwm"];
  result.snap = std::move(snap);
  return result;
}

}  // namespace

int main() {
  const double sf = ScaleFactor(1.0);
  const std::size_t pages =
      std::max<std::size_t>(64, static_cast<std::size_t>(1024 * sf));

  const std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::vector<uint32_t> read_latencies = {0, 200};
  const std::vector<std::size_t> budgets_mib = {0, 2};

  PrintHeader("Ablation H: async I/O scheduler (threads x read lat x budget)");
  std::printf(
      "pages=%zu (%zu KiB each), SP budget=%zu pages, spill write "
      "latency=%uus;\nstalled reader drains via fault-back after the "
      "producer closes.\n\n",
      pages, kRowWidth * kRowsPerPage / 1024, kBudgetPages,
      kWriteLatencyMicros);
  std::printf("%-8s %-10s %-10s %11s %10s %9s %9s %12s %10s\n", "threads",
              "readlat", "budgetMiB", "append(ms)", "drain(ms)", "spilled",
              "unspills", "stall(us)", "queue.hwm");

  std::FILE* json = nullptr;
  if (const char* path = std::getenv("SHARING_BENCH_JSON")) {
    json = std::fopen(path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for JSON output\n", path);
      return 1;
    }
    std::fprintf(json, "[\n");
  }

  bool first = true;
  MetricsSnapshot last_snap;
  for (std::size_t threads : thread_counts) {
    for (uint32_t read_latency : read_latencies) {
      for (std::size_t budget_mib : budgets_mib) {
        CellResult r = RunCell(pages, threads, read_latency, budget_mib);
        last_snap = r.snap;
        std::string budget_label =
            budget_mib == 0 ? "unlimited" : std::to_string(budget_mib);
        std::printf("%-8zu %-10u %-10s %11.1f %10.1f %9lld %9lld %12lld %10lld\n",
                    threads, read_latency, budget_label.c_str(), r.append_ms,
                    r.drain_ms, static_cast<long long>(r.spilled),
                    static_cast<long long>(r.unspills),
                    static_cast<long long>(r.stall_micros),
                    static_cast<long long>(r.queue_hwm));
        if (json != nullptr) {
          std::fprintf(
              json,
              "%s  {\"io_threads\": %zu, \"read_latency_micros\": %u, "
              "\"io_budget_mib\": %zu, \"pages\": %zu, "
              "\"write_latency_micros\": %u, \"append_ms\": %.3f, "
              "\"drain_ms\": %.3f, \"pages_spilled\": %lld, "
              "\"unspill_reads\": %lld, \"stall_micros\": %lld, "
              "\"queue_depth_hwm\": %lld}",
              first ? "" : ",\n", threads, read_latency, budget_mib, pages,
              kWriteLatencyMicros, r.append_ms, r.drain_ms,
              static_cast<long long>(r.spilled),
              static_cast<long long>(r.unspills),
              static_cast<long long>(r.stall_micros),
              static_cast<long long>(r.queue_hwm));
          first = false;
        }
      }
    }
  }
  if (json != nullptr) {
    JsonMetricsRow(json, &first, last_snap);
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }

  std::printf(
      "\nExpected shape: append(ms) is flat across every column — spill\n"
      "writes are asynchronous, so the producer never pays the write\n"
      "latency or the IO budget. drain(ms) grows with the read latency\n"
      "(fault-backs pay the model on the scheduler workers) and a finite\n"
      "budget shows up as stall(us), not as producer time.\n");
  return 0;
}
