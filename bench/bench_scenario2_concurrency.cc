// Scenario II (paper §4.4, Fig. 5): impact of concurrency.
//
// Selectivity fixed at 1%, template parameters randomized across many
// variants (to suppress SP's common-sub-plan hits, per the paper), the
// database disk-resident, SP enabled for all stages on both lines.
// x-axis: number of concurrent clients; series: QPipe with query-centric
// operators (+SP) vs the CJOIN global query plan.
//
// Paper-expected shape: shared operators (GQP) win at high concurrency —
// one fact-table pipeline serves everyone — while query-centric operators
// saturate and degrade as clients contend for I/O and CPU.

#include "bench_common.h"

using namespace sharing;
using namespace sharing::bench;

int main() {
  const double sf = ScaleFactor(0.01);
  const double window = WindowSeconds(2.0);

  auto db = MakeDiskDb(/*frames=*/512);
  // Scale the rotational-latency model down so that the effect this
  // scenario demonstrates — query-centric operators saturating the CPU as
  // concurrency grows, while the shared pipeline's work stays bounded —
  // is reachable with a container's core count. With the full 15kRPM
  // model, a fact cycle is so I/O-dominated that per-query join CPU never
  // saturates two cores at any reasonable client count.
  db->SetDiskResident(/*read_latency_micros=*/55, /*bandwidth_mib=*/15000);
  std::printf("Generating SSB, SF=%.3f (disk-resident regime) ...\n", sf);
  SHARING_CHECK_OK(ssb::GenerateAll(db->catalog(), db->buffer_pool(), sf));

  SharingEngine engine(db.get(), SsbEngineConfig());

  PrintHeader(
      "Scenario II: throughput vs concurrency (sel=1%, randomized plans, "
      "disk-resident)");
  std::printf("%-8s %-15s %10s %12s %12s\n", "clients", "mode", "qps",
              "mean(ms)", "admissions");

  for (std::size_t clients : {1, 2, 4, 8, 16, 32, 64}) {
    for (EngineMode mode : {EngineMode::kSpPull, EngineMode::kGqp}) {
      engine.SetMode(mode);
      auto before = db->metrics()->Snapshot();

      DriverOptions driver_options;
      driver_options.num_clients = clients;
      driver_options.duration_seconds = window;

      auto report = RunClosedLoop(
          driver_options,
          [&](std::size_t client, uint64_t iteration) {
            ssb::StarTemplateParams params;
            params.selectivity = 0.01;
            // Many variants => effectively no common sub-plans for SP.
            params.num_variants = 1024;
            params.variant =
                static_cast<int>((client * 131 + iteration * 7) % 1024);
            return ssb::ParameterizedStarPlan(params);
          },
          [&](const PlanNodeRef& plan) {
            auto r = engine.Execute(plan);
            return r.ok() ? Status::OK() : r.status();
          });

      auto delta = MetricsRegistry::Delta(before, db->metrics()->Snapshot());
      std::printf("%-8zu %-15s %10.2f %12.1f %12lld\n", clients,
                  std::string(EngineModeToString(mode)).c_str(),
                  report.throughput_qps, report.mean_response_ms,
                  static_cast<long long>(
                      delta[metrics::kCjoinQueriesAdmitted]));
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper Fig. 5 / rule of thumb): the gqp line\n"
      "overtakes sp-pull as clients grow — the single shared pipeline\n"
      "amortizes the fact scan and joins across all concurrent queries.\n");
  return 0;
}
