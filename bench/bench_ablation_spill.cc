// Ablation G: the SP spill tier — memory budget x slow-reader lag.
//
// A pull host's retained window is the distance between production and the
// slowest reader. PR 1 bounded it only by reclamation, so one laggard
// pinned the whole result in RAM; the SpBudgetGovernor caps the in-memory
// window and overflows the rest to a temp spill file, trading fault-back
// latency for bounded memory. This bench sweeps that trade directly on a
// sharing channel: a host that keeps pace, a slow reader held exactly L
// pages behind the producer, and a governor budget B. Reported per cell:
// wall time, pages spilled, fault-back reads, and the in-memory /
// spill-bytes high-water marks.
//
// Expected shape: unbounded (B=0) is the PR 1 baseline — the open attach
// window retains the full result in RAM (retained.hwm = page count) no
// matter how the readers move. With a budget, retained.hwm is capped near
// B; the overflow spills, and fault-back reads appear only for the pages
// a laggard still needed after they spilled (lag = 0 drains everything
// while resident, so spilled history dies unread at seal).
//
// SHARING_BENCH_SF scales the page count; SHARING_BENCH_JSON=<path> also
// emits the sweep as JSON (ci/verify.sh records BENCH_spill.json).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "qpipe/sharing_channel.h"

using namespace sharing;
using namespace sharing::bench;

namespace {

constexpr std::size_t kRowWidth = 64;
constexpr std::size_t kRowsPerPage = 128;  // 8 KiB of row bytes per page

PageRef MakePage(int64_t tag) {
  auto page = std::make_shared<RowPage>(kRowWidth, kRowWidth * kRowsPerPage);
  for (std::size_t r = 0; r < kRowsPerPage; ++r) {
    uint8_t* slot = page->AppendSlot();
    for (std::size_t b = 0; b < kRowWidth; ++b) {
      slot[b] = static_cast<uint8_t>(tag + 31 * r + b);
    }
  }
  return page;
}

struct CellResult {
  double wall_ms = 0;
  double append_ms = 0;  // the producer's put loop only
  int64_t spilled = 0;
  int64_t unspills = 0;
  int64_t retained_hwm = 0;
  int64_t spill_bytes_hwm = 0;
  MetricsSnapshot snap;  // the cell's full registry (JsonMetricsRow)
};

/// One sweep cell: produce `pages` through a pull channel whose slow
/// reader trails the producer by exactly `lag` pages, under budget
/// `budget` (0 = unbounded). With `write_latency` > 0 the spill store
/// charges that many microseconds per disk-page write and the writes run
/// asynchronously on a 2-thread IoScheduler (the async-independence
/// sweep); otherwise spilling is synchronous, the PR 2 baseline.
CellResult RunCell(std::size_t pages, std::size_t lag, std::size_t budget,
                   uint32_t write_latency = 0, bool async_scheduler = false,
                   uint32_t read_latency = 0) {
  MetricsRegistry metrics;
  std::shared_ptr<IoScheduler> scheduler;
  SharingChannelOptions options;
  options.metrics = &metrics;
  if (budget > 0) {
    SpBudgetGovernor::Options gopts;
    gopts.budget_pages = budget;
    gopts.write_latency_micros = write_latency;
    gopts.read_latency_micros = read_latency;
    if (async_scheduler) {
      IoScheduler::Options iopts;
      iopts.threads = 2;
      iopts.metrics = &metrics;
      scheduler = std::make_shared<IoScheduler>(iopts);
      gopts.scheduler = scheduler;
    }
    gopts.metrics = &metrics;
    options.governor = SpBudgetGovernor::Create(std::move(gopts));
  }
  auto governor = options.governor;
  auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));
  auto host = channel->AttachReader();
  auto slow = channel->AttachReader();

  Stopwatch wall;
  Stopwatch append;
  std::size_t slow_read = 0;
  for (std::size_t i = 0; i < pages; ++i) {
    channel->Put(MakePage(static_cast<int64_t>(i)));
    host->Next();
    // Hold the slow reader exactly `lag` pages behind production.
    while (i + 1 > lag + slow_read) {
      slow->Next();
      ++slow_read;
    }
  }
  const double append_ms = append.ElapsedSeconds() * 1e3;
  channel->Close(Status::OK());
  while (host->Next() != nullptr) {
  }
  while (slow->Next() != nullptr) {
  }

  CellResult result;
  result.wall_ms = wall.ElapsedSeconds() * 1e3;
  result.append_ms = append_ms;
  // Let in-flight background writes land (so the spill counters reflect
  // the work actually done off the producer path), then shut the
  // scheduler down: queued jobs hold the governor, which holds the
  // scheduler, and that reference cycle must not outlive this cell.
  if (scheduler != nullptr) {
    for (int spin = 0;
         spin < 30000 && governor != nullptr && governor->SpillsInFlight() > 0;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    scheduler->Shutdown();
  }
  MetricsSnapshot snap = metrics.Snapshot();
  result.spilled = snap[metrics::kSpPagesSpilled];
  result.unspills = snap[metrics::kSpUnspillReads];
  result.retained_hwm = snap[std::string(metrics::kSpPagesRetained) + ".hwm"];
  result.spill_bytes_hwm = snap[std::string(metrics::kSpSpillBytes) + ".hwm"];
  result.snap = std::move(snap);
  return result;
}

}  // namespace

int main() {
  const double sf = ScaleFactor(1.0);
  const std::size_t pages =
      std::max<std::size_t>(64, static_cast<std::size_t>(4096 * sf));

  const std::vector<std::size_t> budgets = {0, 256, 64, 16};
  std::vector<std::size_t> lags = {0, 128, 512};
  lags.push_back(pages);  // fully stalled until the producer closes

  PrintHeader("Ablation G: SP memory budget x slow-reader lag (spill tier)");
  std::printf("pages=%zu (%zu KiB each); budget in pages; lag = pages the\n",
              pages, kRowWidth * kRowsPerPage / 1024);
  std::printf("slow reader trails the producer (last = stalled).\n\n");
  std::printf("%-10s %-8s %10s %10s %10s %13s %16s\n", "budget", "lag",
              "wall(ms)", "spilled", "unspills", "retained.hwm",
              "spill-bytes.hwm");

  std::FILE* json = nullptr;
  if (const char* path = std::getenv("SHARING_BENCH_JSON")) {
    json = std::fopen(path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for JSON output\n", path);
      return 1;
    }
    std::fprintf(json, "[\n");
  }

  bool first = true;
  for (std::size_t budget : budgets) {
    for (std::size_t lag : lags) {
      CellResult r = RunCell(pages, lag, budget);
      std::string budget_label =
          budget == 0 ? "unbounded" : std::to_string(budget);
      std::printf("%-10s %-8zu %10.1f %10lld %10lld %13lld %16lld\n",
                  budget_label.c_str(), lag, r.wall_ms,
                  static_cast<long long>(r.spilled),
                  static_cast<long long>(r.unspills),
                  static_cast<long long>(r.retained_hwm),
                  static_cast<long long>(r.spill_bytes_hwm));
      if (json != nullptr) {
        std::fprintf(json,
                     "%s  {\"budget_pages\": %zu, \"lag_pages\": %zu, "
                     "\"pages\": %zu, \"wall_ms\": %.3f, "
                     "\"pages_spilled\": %lld, \"unspill_reads\": %lld, "
                     "\"retained_hwm\": %lld, \"spill_bytes_hwm\": %lld}",
                     first ? "" : ",\n", budget, lag, pages, r.wall_ms,
                     static_cast<long long>(r.spilled),
                     static_cast<long long>(r.unspills),
                     static_cast<long long>(r.retained_hwm),
                     static_cast<long long>(r.spill_bytes_hwm));
        first = false;
      }
    }
  }
  // -------------------------------------------------------------------
  // Async-independence sweep (the IoScheduler acceptance criterion): a
  // stalled reader forces nearly every page through the spill path while
  // the spill store charges a per-disk-page write latency. Synchronous
  // spilling (PR 2) bills that latency to the producer's Append; with
  // the scheduler the writes are async and the producer's append wall
  // must stay flat as the write latency grows.
  // -------------------------------------------------------------------
  const std::size_t kIndependenceBudget = 32;
  const uint32_t kIndependenceReadLat = 200;  // disk-resident fault-backs
  const std::vector<uint32_t> write_lats = {0, 500, 2000};
  std::printf(
      "\nAsync spill-write independence (budget=%zu, read lat=%uus, "
      "stalled reader):\n",
      kIndependenceBudget, kIndependenceReadLat);
  std::printf("%-10s %-10s %12s %10s\n", "writelat", "mode", "append(ms)",
              "spilled");
  MetricsSnapshot last_snap;
  for (bool async_scheduler : {false, true}) {
    for (uint32_t write_lat : write_lats) {
      CellResult r = RunCell(pages, pages, kIndependenceBudget, write_lat,
                             async_scheduler, kIndependenceReadLat);
      last_snap = r.snap;
      std::printf("%-10u %-10s %12.1f %10lld\n", write_lat,
                  async_scheduler ? "async" : "sync", r.append_ms,
                  static_cast<long long>(r.spilled));
      if (json != nullptr) {
        std::fprintf(json,
                     ",\n  {\"sweep\": \"write_latency_independence\", "
                     "\"write_latency_micros\": %u, \"async\": %s, "
                     "\"budget_pages\": %zu, \"pages\": %zu, "
                     "\"append_ms\": %.3f, \"pages_spilled\": %lld}",
                     write_lat, async_scheduler ? "true" : "false",
                     kIndependenceBudget, pages, r.append_ms,
                     static_cast<long long>(r.spilled));
      }
    }
  }

  if (json != nullptr) {
    bool not_first = false;
    JsonMetricsRow(json, &not_first, last_snap);
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }

  std::printf(
      "\nExpected shape (independence sweep): sync append(ms) grows\n"
      "roughly linearly with the write latency — the producer pays every\n"
      "spill write inline; async append(ms) stays flat because writes\n"
      "run on the scheduler's kSpillWrite workers, bounded only by the\n"
      "in-flight window.\n");
  std::printf(
      "\nExpected shape: with no budget the open attach window retains\n"
      "the whole result in RAM (retained.hwm = page count). With a\n"
      "budget, retained.hwm is capped near the budget; the overflow\n"
      "spills, and unspills appear only for pages a laggard still needed\n"
      "after they spilled — lag 0 reads everything while resident, so\n"
      "its spilled history is deleted unread at seal.\n");
  return 0;
}
