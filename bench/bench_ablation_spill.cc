// Ablation G: the SP spill tier — memory budget x slow-reader lag.
//
// A pull host's retained window is the distance between production and the
// slowest reader. PR 1 bounded it only by reclamation, so one laggard
// pinned the whole result in RAM; the SpBudgetGovernor caps the in-memory
// window and overflows the rest to a temp spill file, trading fault-back
// latency for bounded memory. This bench sweeps that trade directly on a
// sharing channel: a host that keeps pace, a slow reader held exactly L
// pages behind the producer, and a governor budget B. Reported per cell:
// wall time, pages spilled, fault-back reads, and the in-memory /
// spill-bytes high-water marks.
//
// Expected shape: unbounded (B=0) is the PR 1 baseline — the open attach
// window retains the full result in RAM (retained.hwm = page count) no
// matter how the readers move. With a budget, retained.hwm is capped near
// B; the overflow spills, and fault-back reads appear only for the pages
// a laggard still needed after they spilled (lag = 0 drains everything
// while resident, so spilled history dies unread at seal).
//
// SHARING_BENCH_SF scales the page count; SHARING_BENCH_JSON=<path> also
// emits the sweep as JSON (ci/verify.sh records BENCH_spill.json).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "qpipe/sharing_channel.h"

using namespace sharing;
using namespace sharing::bench;

namespace {

constexpr std::size_t kRowWidth = 64;
constexpr std::size_t kRowsPerPage = 128;  // 8 KiB of row bytes per page

PageRef MakePage(int64_t tag) {
  auto page = std::make_shared<RowPage>(kRowWidth, kRowWidth * kRowsPerPage);
  for (std::size_t r = 0; r < kRowsPerPage; ++r) {
    uint8_t* slot = page->AppendSlot();
    for (std::size_t b = 0; b < kRowWidth; ++b) {
      slot[b] = static_cast<uint8_t>(tag + 31 * r + b);
    }
  }
  return page;
}

struct CellResult {
  double wall_ms = 0;
  int64_t spilled = 0;
  int64_t unspills = 0;
  int64_t retained_hwm = 0;
  int64_t spill_bytes_hwm = 0;
};

/// One sweep cell: produce `pages` through a pull channel whose slow
/// reader trails the producer by exactly `lag` pages, under budget
/// `budget` (0 = unbounded).
CellResult RunCell(std::size_t pages, std::size_t lag, std::size_t budget) {
  MetricsRegistry metrics;
  SharingChannelOptions options;
  options.metrics = &metrics;
  if (budget > 0) {
    SpBudgetGovernor::Options gopts;
    gopts.budget_pages = budget;
    gopts.metrics = &metrics;
    options.governor = SpBudgetGovernor::Create(std::move(gopts));
  }
  auto channel = MakeSharingChannel(SpMode::kPull, std::move(options));
  auto host = channel->AttachReader();
  auto slow = channel->AttachReader();

  Stopwatch wall;
  std::size_t slow_read = 0;
  for (std::size_t i = 0; i < pages; ++i) {
    channel->Put(MakePage(static_cast<int64_t>(i)));
    host->Next();
    // Hold the slow reader exactly `lag` pages behind production.
    while (i + 1 > lag + slow_read) {
      slow->Next();
      ++slow_read;
    }
  }
  channel->Close(Status::OK());
  while (host->Next() != nullptr) {
  }
  while (slow->Next() != nullptr) {
  }

  CellResult result;
  result.wall_ms = wall.ElapsedSeconds() * 1e3;
  MetricsSnapshot snap = metrics.Snapshot();
  result.spilled = snap[metrics::kSpPagesSpilled];
  result.unspills = snap[metrics::kSpUnspillReads];
  result.retained_hwm = snap[std::string(metrics::kSpPagesRetained) + ".hwm"];
  result.spill_bytes_hwm = snap[std::string(metrics::kSpSpillBytes) + ".hwm"];
  return result;
}

}  // namespace

int main() {
  const double sf = ScaleFactor(1.0);
  const std::size_t pages =
      std::max<std::size_t>(64, static_cast<std::size_t>(4096 * sf));

  const std::vector<std::size_t> budgets = {0, 256, 64, 16};
  std::vector<std::size_t> lags = {0, 128, 512};
  lags.push_back(pages);  // fully stalled until the producer closes

  PrintHeader("Ablation G: SP memory budget x slow-reader lag (spill tier)");
  std::printf("pages=%zu (%zu KiB each); budget in pages; lag = pages the\n",
              pages, kRowWidth * kRowsPerPage / 1024);
  std::printf("slow reader trails the producer (last = stalled).\n\n");
  std::printf("%-10s %-8s %10s %10s %10s %13s %16s\n", "budget", "lag",
              "wall(ms)", "spilled", "unspills", "retained.hwm",
              "spill-bytes.hwm");

  std::FILE* json = nullptr;
  if (const char* path = std::getenv("SHARING_BENCH_JSON")) {
    json = std::fopen(path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for JSON output\n", path);
      return 1;
    }
    std::fprintf(json, "[\n");
  }

  bool first = true;
  for (std::size_t budget : budgets) {
    for (std::size_t lag : lags) {
      CellResult r = RunCell(pages, lag, budget);
      std::string budget_label =
          budget == 0 ? "unbounded" : std::to_string(budget);
      std::printf("%-10s %-8zu %10.1f %10lld %10lld %13lld %16lld\n",
                  budget_label.c_str(), lag, r.wall_ms,
                  static_cast<long long>(r.spilled),
                  static_cast<long long>(r.unspills),
                  static_cast<long long>(r.retained_hwm),
                  static_cast<long long>(r.spill_bytes_hwm));
      if (json != nullptr) {
        std::fprintf(json,
                     "%s  {\"budget_pages\": %zu, \"lag_pages\": %zu, "
                     "\"pages\": %zu, \"wall_ms\": %.3f, "
                     "\"pages_spilled\": %lld, \"unspill_reads\": %lld, "
                     "\"retained_hwm\": %lld, \"spill_bytes_hwm\": %lld}",
                     first ? "" : ",\n", budget, lag, pages, r.wall_ms,
                     static_cast<long long>(r.spilled),
                     static_cast<long long>(r.unspills),
                     static_cast<long long>(r.retained_hwm),
                     static_cast<long long>(r.spill_bytes_hwm));
        first = false;
      }
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }

  std::printf(
      "\nExpected shape: with no budget the open attach window retains\n"
      "the whole result in RAM (retained.hwm = page count). With a\n"
      "budget, retained.hwm is capped near the budget; the overflow\n"
      "spills, and unspills appear only for pages a laggard still needed\n"
      "after they spilled — lag 0 reads everything while resident, so\n"
      "its spilled history is deleted unread at seal.\n");
  return 0;
}
