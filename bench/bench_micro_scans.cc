// Micro C (paper §2, "Sharing in the I/O layer"): circular shared scans vs
// independent scans, disk-resident.
//
// k concurrent scanners of the same table. Independent: each fetches every
// page through the buffer pool itself (with a frame budget far below the
// table, most fetches miss and pay the disk latency model). Shared: one
// producer streams pages to all attached scanners. The table prints wall
// time and physical page reads — the paper's point is that shared scans
// keep reads ~flat as scanners grow.

#include <atomic>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/trace.h"
#include "storage/circular_scan.h"

using namespace sharing;
using namespace sharing::bench;

namespace {

int64_t CountRows(const uint8_t* frame) {
  return page_layout::RowCount(frame);
}

}  // namespace

int main() {
  auto db = MakeDiskDb(/*frames=*/64);
  // A moderate table: big enough to dwarf the 64-frame pool.
  Schema schema({Column::Int64("id"), Column::Double("v")});
  auto table_or = db->catalog()->CreateTable("t", schema, db->buffer_pool());
  SHARING_CHECK(table_or.ok());
  Table* table = table_or.value();
  {
    db->SetMemoryResident();  // free loads
    TableAppender appender(table);
    for (int64_t i = 0; i < 200'000; ++i) {
      auto row = appender.AppendRow();
      SHARING_CHECK(row.ok());
      row.value().SetInt64(0, i).SetDouble(1, double(i));
    }
    SHARING_CHECK_OK(appender.Finish());
    db->SetDiskResident();
  }
  std::printf("table: %llu rows, %zu pages; pool: 64 frames (disk-resident)\n\n",
              static_cast<unsigned long long>(table->num_rows()),
              table->num_pages());

  PrintHeader("Micro C: shared circular scan vs independent scans");
  std::printf("%-10s %-13s %12s %14s %16s\n", "scanners", "mode",
              "wall(ms)", "disk-reads", "reads/scanner");

  for (int scanners : {1, 2, 4, 8}) {
    // Independent scans: every scanner fetches all pages itself.
    {
      auto before = db->metrics()->Snapshot();
      Stopwatch wall;
      std::vector<std::thread> threads;
      std::atomic<int64_t> rows{0};
      for (int s = 0; s < scanners; ++s) {
        threads.emplace_back([&] {
          int64_t n = 0;
          for (std::size_t p = 0; p < table->num_pages(); ++p) {
            auto g = db->buffer_pool()->FetchPage(table->page_id(p));
            SHARING_CHECK(g.ok());
            n += CountRows(g.value().data());
          }
          rows.fetch_add(n);
        });
      }
      for (auto& t : threads) t.join();
      SHARING_CHECK(rows.load() ==
                    int64_t(scanners) * int64_t(table->num_rows()));
      auto delta = MetricsRegistry::Delta(before, db->metrics()->Snapshot());
      std::printf("%-10d %-13s %12.1f %14lld %16.1f\n", scanners,
                  "independent", wall.ElapsedSeconds() * 1e3,
                  static_cast<long long>(delta[metrics::kDiskPageReads]),
                  double(delta[metrics::kDiskPageReads]) / scanners);
    }

    // Shared circular scan: one producer, all scanners attached.
    {
      auto before = db->metrics()->Snapshot();
      Stopwatch wall;
      CircularScanGroup group(table, 4, db->metrics());
      std::vector<std::thread> threads;
      std::atomic<int64_t> rows{0};
      for (int s = 0; s < scanners; ++s) {
        threads.emplace_back([&] {
          auto ticket = group.Attach();
          int64_t n = 0;
          while (ScanPageRef page = ticket->Next()) {
            n += CountRows(page->data());
          }
          rows.fetch_add(n);
        });
      }
      for (auto& t : threads) t.join();
      SHARING_CHECK(rows.load() ==
                    int64_t(scanners) * int64_t(table->num_rows()));
      auto delta = MetricsRegistry::Delta(before, db->metrics()->Snapshot());
      std::printf("%-10d %-13s %12.1f %14lld %16.1f\n", scanners, "shared",
                  wall.ElapsedSeconds() * 1e3,
                  static_cast<long long>(delta[metrics::kDiskPageReads]),
                  double(delta[metrics::kDiskPageReads]) / scanners);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape: independent reads scale ~linearly with scanners\n"
      "(each pays the full table in misses); shared circular scans keep\n"
      "total reads ~flat at one table's worth per concurrent cycle.\n\n");

  // -------------------------------------------------------------------
  // Tracing overhead: the same shared scan, memory-resident (so the
  // instrumented hot path is CPU-bound, the worst case for tracing),
  // recorder off vs on. Off must be indistinguishable from baseline —
  // the <2% bound is asserted by tests/trace_test.cc; this section just
  // prints the numbers. Min of 3 trials per mode (scheduler noise).
  // -------------------------------------------------------------------
  PrintHeader("Tracing overhead: shared scan (memory-resident), off vs on");
  db->SetMemoryResident();
  constexpr int kTraceScanners = 4;
  constexpr int kTrials = 3;
  std::printf("%-10s %12s %16s\n", "tracing", "wall(ms)", "resident-events");
  for (bool traced : {false, true}) {
    if (traced) Trace::Enable();
    double best_ms = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Stopwatch wall;
      CircularScanGroup group(table, 4, db->metrics());
      std::vector<std::thread> threads;
      std::atomic<int64_t> rows{0};
      for (int s = 0; s < kTraceScanners; ++s) {
        threads.emplace_back([&] {
          auto ticket = group.Attach();
          int64_t n = 0;
          while (ScanPageRef page = ticket->Next()) {
            n += CountRows(page->data());
          }
          rows.fetch_add(n);
        });
      }
      for (auto& t : threads) t.join();
      SHARING_CHECK(rows.load() ==
                    int64_t(kTraceScanners) * int64_t(table->num_rows()));
      const double ms = wall.ElapsedSeconds() * 1e3;
      if (trial == 0 || ms < best_ms) best_ms = ms;
    }
    std::printf("%-10s %12.1f %16zu\n", traced ? "on" : "off", best_ms,
                Trace::ResidentEvents());
    if (traced) Trace::Disable();
  }
  return 0;
}
