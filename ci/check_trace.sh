#!/usr/bin/env bash
# Trace pipeline check: run the traced smoke workload (examples/
# trace_smoke.cpp — a pull-model host + satellite over disk-resident
# TPC-H Q1 with tracing on) and validate the exported Chrome trace JSON
# with tools/trace_check: well-formed, timestamps monotonic per tid,
# spans present from all five instrumented layers (engine, stage,
# sharing channel, SPL, IoScheduler), and at least one query id
# correlating engine+stage+sharing. Also sanity-checks the per-query
# sharing-explain JSON lines the smoke run dumps.
#
# Usage: ci/check_trace.sh [build_dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target trace_smoke trace_check

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
TRACE_JSON="$OUT_DIR/trace_smoke.json"
EXPLAIN_JSON="$OUT_DIR/trace_smoke_explain.json"

"./$BUILD_DIR/trace_smoke" "$TRACE_JSON" "$EXPLAIN_JSON"

"./$BUILD_DIR/trace_check" "$TRACE_JSON"

# The explain dump: one JSON object per query, each with a stages array
# and both sharing roles from the smoke's host+satellite session.
lines="$(wc -l < "$EXPLAIN_JSON")"
if [[ "$lines" -ne 2 ]]; then
  echo "check_trace: FAIL: expected 2 explain lines, got $lines" >&2
  exit 1
fi
for needle in '"query_id":' '"stages":[' '"role":"host"' '"role":"satellite"' \
              '"decided_by":"attach"'; do
  if ! grep -qF "$needle" "$EXPLAIN_JSON"; then
    echo "check_trace: FAIL: explain dump missing $needle" >&2
    exit 1
  fi
done

echo "check_trace: OK"
