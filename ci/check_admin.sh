#!/usr/bin/env bash
# Admin-server check: boot the smoke workload (examples/admin_smoke.cpp
# — the traced pull-model host+satellite over disk-resident TPC-H Q1)
# with the embedded admin server on an ephemeral loopback port, fetch
# every endpoint over real HTTP, and validate the bodies:
#   /metrics     -> tools/prom_check (Prometheus 0.0.4 grammar: every
#                   name sanitized, every sample typed and numeric)
#   /trace       -> tools/trace_check (well-formed Chrome JSON, spans
#                   monotonic per tid, all instrumented layers present)
#   /channels, /queries, /explain, /cost_model, /healthz -> grep needles
# The smoke binary itself asserts the deep endpoints were fetched while
# queries were in flight and that the error paths 400/404 correctly.
#
# Usage: ci/check_admin.sh [build_dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target admin_smoke prom_check trace_check

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

"./$BUILD_DIR/admin_smoke" "$OUT_DIR"

"./$BUILD_DIR/prom_check" "$OUT_DIR/metrics.txt"
"./$BUILD_DIR/trace_check" "$OUT_DIR/trace.json"

check_needles() {
  local file="$1"; shift
  for needle in "$@"; do
    if ! grep -qF "$needle" "$OUT_DIR/$file"; then
      echo "check_admin: FAIL: $file missing $needle" >&2
      exit 1
    fi
  done
}

# The live-session dump: channel identity, per-reader cursors, SPL
# residency — scraped while the host+satellite session was in flight.
check_needles channels.json '"signature":' '"mode":' '"readers":' \
  '"position":' '"lag":' '"resident_pages":'
# In-flight queries with age and stage attribution.
check_needles queries.json '"query_id":' '"age_micros":' '"stage":'
# The explain body for the host query.
check_needles explain.json '"query_id":' '"stages":'
# Per-stage cost model dump (the adaptive policy's inputs).
check_needles cost_model.json '"stage":' '"signatures":'
# Watchdog health verdict.
check_needles healthz.json '"healthy":true' '"ticks":'
# JSON metrics mirror must carry the same snapshot the text form does.
check_needles metrics.json '"uptime_ms":' '"metrics":{'

echo "check_admin: OK"
