#!/usr/bin/env bash
# Docs hygiene gate, run by ci/verify.sh:
#   1. Relative markdown links in README.md, DESIGN.md, docs/*.md and
#      examples/README.md must resolve to existing files.
#   2. Every field of QPipeOptions (src/qpipe/engine.h) and EngineConfig
#      (src/core/sharing_engine.h) must be named in docs/KNOBS.md.
#   3. Every canonical metric name in src/common/metrics.h must be named
#      in docs/METRICS.md.
# The point: the documentation surface cannot silently rot as knobs and
# metrics are added.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. dead relative links -------------------------------------------------
for f in README.md DESIGN.md docs/*.md examples/README.md; do
  [[ -f "$f" ]] || continue
  dir=$(dirname "$f")
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" ]]; then
      echo "docs-check: dead link in $f -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed 's/^](//; s/)$//')
done

# --- 2. knob coverage -------------------------------------------------------
# Extract member names of a top-level struct: lines at brace depth 1 that
# declare a field (no '(', ends in ';'), taking the last identifier before
# the default/semicolon. Nested function bodies (e.g. AllSp) sit at depth
# >= 2 and are skipped.
extract_fields() {
  local file="$1" struct="$2"
  awk -v s="$struct" '
    $0 ~ "^struct[ \t]+" s "[ \t]*\\{" { in_struct = 1; depth = 1; next }
    in_struct {
      line = $0
      if (depth == 1 && line !~ /\(/ && line !~ /^[ \t]*\/\// &&
          line ~ /;[ \t]*$/) {
        sub(/=.*/, "", line)
        sub(/;.*/, "", line)
        gsub(/[ \t]+$/, "", line)
        n = split(line, parts, /[ \t]+/)
        name = parts[n]
        if (name ~ /^[a-z_][a-z0-9_]*$/) print name
      }
      # count braces on the ORIGINAL line ($0), not the stripped copy
      o = gsub(/\{/, "{"); c = gsub(/\}/, "}")
      depth += o - c
      if (depth <= 0) in_struct = 0
    }
  ' "$file"
}

check_knobs() {
  local file="$1" struct="$2"
  local name
  while IFS= read -r name; do
    [[ -z "$name" ]] && continue
    if ! grep -qw "$name" docs/KNOBS.md; then
      echo "docs-check: $struct::$name ($file) missing from docs/KNOBS.md"
      fail=1
    fi
  done < <(extract_fields "$file" "$struct")
}

check_knobs src/qpipe/engine.h QPipeOptions
check_knobs src/core/sharing_engine.h EngineConfig
check_knobs src/qpipe/stage.h AdaptiveSpPolicy
check_knobs src/qpipe/cost_model.h CostModelOptions

# --- 3. metric coverage -----------------------------------------------------
while IFS= read -r metric; do
  [[ -z "$metric" ]] && continue
  if ! grep -qF "\`$metric\`" docs/METRICS.md; then
    echo "docs-check: metric $metric (src/common/metrics.h) missing from docs/METRICS.md"
    fail=1
  fi
done < <(grep -oE '"[a-z_.]+"' src/common/metrics.h | tr -d '"')

if [[ $fail -ne 0 ]]; then
  echo "docs-check: FAILED"
  exit 1
fi
echo "docs-check: OK"
