#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite from a
# clean tree, then repeat under AddressSanitizer and run the concurrency
# suites under ThreadSanitizer. Usage:
#   ci/verify.sh          # tier-1 + ASan + TSan
#   ci/verify.sh --fast   # tier-1 only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

echo "=== docs: dead links + knob/metric coverage ==="
ci/check_docs.sh

echo "=== tier-1: release build + ctest ==="
run_suite build

echo "=== trace pipeline: traced smoke run + export validation ==="
# Runs the pull-model host+satellite smoke with tracing on, then
# validates the Chrome JSON (well-formed, monotonic per tid, all five
# instrumented layers present, query ids correlated) and the per-query
# sharing-explain dump.
ci/check_trace.sh build

echo "=== admin server: every endpoint over live HTTP ==="
# Boots the smoke workload with the embedded admin server on an
# ephemeral port, fetches every endpoint, and validates /metrics against
# the Prometheus grammar (tools/prom_check) and /trace with
# tools/trace_check; deep endpoints are scraped mid-flight.
ci/check_admin.sh build

echo "=== spill ablation (smoke) -> BENCH_spill.json ==="
# A small sweep so every verify run records spill-regime numbers; the
# perf trajectory lives in BENCH_spill.json (budget x slow-reader lag,
# plus the async spill-write independence sweep).
SHARING_BENCH_SF=0.05 SHARING_BENCH_JSON=BENCH_spill.json \
  ./build/bench_ablation_spill

echo "=== io scheduler ablation (smoke) -> BENCH_io.json ==="
# io_threads x read latency x IO budget on the disk-resident spill
# regime; append wall must stay flat while drain pays the read model.
SHARING_BENCH_SF=0.1 SHARING_BENCH_JSON=BENCH_io.json \
  ./build/bench_ablation_io

echo "=== adaptive admission ablation (smoke) -> BENCH_adaptive.json ==="
# Hot/cold mix under the four static modes, then the heterogeneous-
# signature sweep: the per-signature cost model must choose different
# transports for the skinny vs fat templates on ONE stage (the binary
# exits nonzero if the decisions do not diverge).
SHARING_BENCH_SF=0.02 SHARING_BENCH_JSON=BENCH_adaptive.json \
  ./build/bench_ablation_adaptive

echo "=== contention ablation (smoke) -> BENCH_contention.json ==="
# One producer x 1..32 pull readers, resident + spill-pressure configs.
# The binary exits nonzero unless the 16-reader aggregate is >= 4x the
# single-reader aggregate and the producer's per-append CPU p99 stays
# within 2x at 32 readers (the lock-free SPL hot-path gates).
SHARING_BENCH_SF=0.25 SHARING_BENCH_JSON=BENCH_contention.json \
  ./build/bench_ablation_contention

echo "=== fault ablation (smoke) -> BENCH_faults.json ==="
# Disarmed fault checks ride the page-append hot path; the binary exits
# nonzero if the disarmed probe adds >= 2% to a realistic append loop.
SHARING_BENCH_JSON=BENCH_faults.json ./build/bench_ablation_faults

echo "=== bench trajectory -> BENCH_trajectory.json ==="
# Folds the sweeps above into the headline numbers a regression diff
# tracks across PRs (16-reader aggregate, adaptive divergence, drain
# wall, retained-vs-budget, admin-scrape ratio).
./build/bench_trajectory BENCH_trajectory.json \
  BENCH_contention.json BENCH_adaptive.json BENCH_io.json BENCH_spill.json

if [[ "${1:-}" != "--fast" ]]; then
  echo "=== tier-1 under AddressSanitizer ==="
  run_suite build-asan -DSHARING_ASAN=ON

  echo "=== chaos: seeded fault schedules over SSB under ASan ==="
  # Fixed seed 42 plus one logged random seed; every query must end in
  # OK/Aborted/DeadlineExceeded or an injected error, OK rows must match
  # the unfaulted reference, and host-kill rounds must produce satellite
  # re-runs.
  ci/check_chaos.sh build-asan

  echo "=== concurrency suites under ThreadSanitizer ==="
  # The sharing hot path is lock-free by design; TSan proves the seqlock
  # publication, parking handshake, and spill-install races are sound.
  # Scoped to the concurrency-heavy suites — the full matrix under TSan
  # would dominate verify wall time without exercising new interleavings.
  cmake -B build-tsan -S . -DSHARING_TSAN=ON
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'SharingChannelTest|PushChannelTest|PullChannelTest|SpillChannelTest|SplContentionTest|BatchPipeTest|SplTest|FifoBufferTest|AsyncSpillTest|SpillEngineTest|SpBudgetGovernorTest|IoSchedulerTest|CircularScanPrefetchTest|TraceTest|AdminServerTest|AdminEngineTest|WatchdogTest|MetricsFormatTest|FaultRegistryTest|DeadlineTest|CancelRaceTest'
fi

echo "verify: OK"
