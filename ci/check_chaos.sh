#!/usr/bin/env bash
# Chaos check: run tools/chaos_driver under AddressSanitizer — seeded
# fault schedules (disk faults, I/O dispatch failures + latency, host
# kills mid-sharing, spill failures, tight deadlines) over the full SSB
# query set. The driver exits nonzero if any query hangs, crashes,
# surfaces a non-injected error, or returns OK with rows that differ
# from the unfaulted reference; ASan turns any heap misuse on the error
# paths into a hard failure.
#
# Two runs: the fixed seed 42 (the schedule CI always replays) plus one
# random seed, logged so a failure can be reproduced with
#   ./build-asan/chaos_driver <seed>
#
# Usage: ci/check_chaos.sh [build_dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DSHARING_ASAN=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target chaos_driver

RANDOM_SEED="$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')"

for seed in 42 "$RANDOM_SEED"; do
  echo "check_chaos: seed=$seed"
  "./$BUILD_DIR/chaos_driver" "$seed"
done

echo "check_chaos: OK (seeds: 42, $RANDOM_SEED)"
