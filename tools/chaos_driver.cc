// Chaos harness: seeded fault schedules over the SSB workload.
//
// Usage: chaos_driver [seed]
//
// Generates a small SSB database, computes unfaulted reference results
// for all 13 queries, then replays the workload under a series of fault
// scenarios (disk faults, I/O dispatch faults + injected latency, host
// kills mid-sharing, spill-store failures, tight deadlines, everything
// at once). The invariants checked on every single query:
//
//   1. It terminates (the per-scenario deadline turns any would-be hang
//      into kDeadlineExceeded; the CI timeout is the outer backstop).
//   2. Its status is one of: OK, Aborted (cancelled), DeadlineExceeded,
//      or an error that traces back to an injected fault.
//   3. If it reports OK, its rows are bit-identical to the unfaulted
//      reference — a fault may fail a query, never corrupt it.
//
// The host-kill scenario additionally requires sharing.satellite_rerun
// to rise: satellites must actually recover from dead hosts, not merely
// error out. Exit code 0 = all invariants held. ci/check_chaos.sh runs
// this under ASan with the fixed seed 42 plus one logged random seed.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "core/database.h"
#include "exec/reference_executor.h"
#include "qpipe/engine.h"
#include "workload/ssb.h"

namespace sharing {
namespace {

struct QuerySpec {
  int flight;
  int variant;
};

std::vector<QuerySpec> AllQueries() {
  std::vector<QuerySpec> qs;
  for (int flight = 1; flight <= 4; ++flight) {
    const int max_variant = flight == 3 ? 4 : 3;
    for (int variant = 1; variant <= max_variant; ++variant) {
      qs.push_back({flight, variant});
    }
  }
  return qs;
}

struct Scenario {
  std::string name;
  std::string fault_spec;       // armed for the whole scenario
  std::size_t timeout_ms = 10000;
  std::size_t io_retry_limit = 2;
  std::size_t sp_memory_budget = 0;
  SpMode sp_mode = SpMode::kPull;
  bool expect_reruns = false;   // sharing.satellite_rerun must rise
  bool expect_deadlines = false;  // at least one kDeadlineExceeded
};

struct Tally {
  std::atomic<int> ok{0};
  std::atomic<int> deadline{0};
  std::atomic<int> aborted{0};
  std::atomic<int> injected{0};
  std::atomic<int> violations{0};
};

bool StatusAcceptable(const Status& st) {
  if (st.ok()) return true;
  if (st.code() == StatusCode::kDeadlineExceeded) return true;
  if (st.code() == StatusCode::kAborted) return true;
  return st.ToString().find("injected") != std::string::npos;
}

void RecordOutcome(const Status& st, Tally* tally) {
  if (st.ok()) {
    tally->ok.fetch_add(1);
  } else if (st.code() == StatusCode::kDeadlineExceeded) {
    tally->deadline.fetch_add(1);
  } else if (st.code() == StatusCode::kAborted) {
    tally->aborted.fetch_add(1);
  } else {
    tally->injected.fetch_add(1);
  }
}

int RunScenario(Database* db, const Scenario& scenario, uint64_t seed,
                const std::vector<QuerySpec>& queries,
                const std::vector<std::vector<std::string>>& reference) {
  std::printf("--- scenario %-10s spec=\"%s\" timeout=%zums\n",
              scenario.name.c_str(), scenario.fault_spec.c_str(),
              scenario.timeout_ms);

  QPipeOptions options = QPipeOptions::AllSp(scenario.sp_mode);
  options.query_timeout_ms = scenario.timeout_ms;
  options.io_retry_limit = scenario.io_retry_limit;
  options.sp_memory_budget = scenario.sp_memory_budget;
  if (!scenario.fault_spec.empty()) {
    options.fault_spec = "seed=" + std::to_string(seed);
    options.fault_spec += "," + scenario.fault_spec;
  }
  const int64_t reruns_before =
      db->metrics()->GetCounter(metrics::kSharingSatelliteRerun)->Get();

  Tally tally;
  {
    QPipeEngine engine(db->catalog(), options, db->metrics());

    // Pass 1: every query once, from concurrent threads (distinct mixes).
    {
      std::vector<std::thread> threads;
      for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
          for (std::size_t q = t; q < queries.size(); q += 4) {
            auto plan = ssb::MakeQuery(queries[q].flight, queries[q].variant);
            if (!plan.ok()) {
              tally.violations.fetch_add(1);
              continue;
            }
            auto result = engine.Execute(plan.value());
            RecordOutcome(result.status(), &tally);
            if (!StatusAcceptable(result.status())) {
              std::printf("VIOLATION: Q%d.%d unacceptable status: %s\n",
                          queries[q].flight, queries[q].variant,
                          result.status().ToString().c_str());
              tally.violations.fetch_add(1);
            } else if (result.ok() &&
                       result.value().CanonicalRows() != reference[q]) {
              std::printf("VIOLATION: Q%d.%d OK but rows differ from the "
                          "unfaulted reference\n",
                          queries[q].flight, queries[q].variant);
              tally.violations.fetch_add(1);
            }
          }
        });
      }
      for (auto& t : threads) t.join();
    }

    // Pass 2: identical-query batches (host + satellites), until the
    // host-kill scenario has demonstrated a satellite re-run.
    const int rounds = scenario.expect_reruns ? 40 : 4;
    for (int round = 0; round < rounds; ++round) {
      auto plan_or = ssb::MakeQuery(3, 2);
      if (!plan_or.ok()) break;
      std::vector<QueryHandle> handles;
      for (int q = 0; q < 4; ++q) {
        handles.push_back(engine.Submit(ssb::MakeQuery(3, 2).value()));
      }
      std::vector<std::thread> threads;
      for (auto& handle : handles) {
        threads.emplace_back([&] {
          auto result = handle.Collect();
          RecordOutcome(result.status(), &tally);
          if (!StatusAcceptable(result.status())) {
            std::printf("VIOLATION: shared Q3.2 unacceptable status: %s\n",
                        result.status().ToString().c_str());
            tally.violations.fetch_add(1);
          }
        });
      }
      for (auto& t : threads) t.join();
      if (scenario.expect_reruns &&
          db->metrics()->GetCounter(metrics::kSharingSatelliteRerun)->Get() >
              reruns_before) {
        break;
      }
    }
  }  // engine drains and shuts down here, faults still armed
  const uint64_t fires = FaultRegistry::Global().TotalFires();
  FaultRegistry::Global().Disarm();

  const int64_t reruns =
      db->metrics()->GetCounter(metrics::kSharingSatelliteRerun)->Get() -
      reruns_before;
  std::printf(
      "    ok=%d deadline=%d aborted=%d injected=%d reruns=%lld fires=%llu\n",
      tally.ok.load(), tally.deadline.load(), tally.aborted.load(),
      tally.injected.load(), static_cast<long long>(reruns),
      static_cast<unsigned long long>(fires));

  int violations = tally.violations.load();
  if (scenario.expect_reruns && reruns == 0) {
    std::printf("VIOLATION: host-kill scenario produced no satellite "
                "re-runs\n");
    ++violations;
  }
  if (scenario.expect_deadlines && tally.deadline.load() == 0) {
    std::printf("VIOLATION: deadline scenario tripped no deadlines\n");
    ++violations;
  }
  if (scenario.name == "control" &&
      (tally.ok.load() == 0 || tally.deadline.load() + tally.aborted.load() +
                                       tally.injected.load() !=
                                   0)) {
    std::printf("VIOLATION: control scenario must be all-OK\n");
    ++violations;
  }
  return violations;
}

int Run(uint64_t seed) {
  const auto t0 = std::chrono::steady_clock::now();
  std::printf("chaos_driver: seed=%llu\n",
              static_cast<unsigned long long>(seed));

  // A pool far smaller than lineorder, so scans genuinely hit the disk
  // layer where most fault points live.
  DatabaseOptions db_options;
  db_options.buffer_pool_frames = 256;
  Database db(db_options);
  const double sf = 0.005;
  Status gen = ssb::GenerateAll(db.catalog(), db.buffer_pool(), sf);
  if (!gen.ok()) {
    std::printf("FATAL: SSB generation failed: %s\n", gen.ToString().c_str());
    return 1;
  }

  const auto queries = AllQueries();
  std::vector<std::vector<std::string>> reference;
  ReferenceExecutor ref(db.catalog());
  for (const auto& q : queries) {
    auto plan = ssb::MakeQuery(q.flight, q.variant);
    if (!plan.ok()) {
      std::printf("FATAL: MakeQuery(%d,%d): %s\n", q.flight, q.variant,
                  plan.status().ToString().c_str());
      return 1;
    }
    auto result = ref.Execute(*plan.value());
    if (!result.ok()) {
      std::printf("FATAL: reference Q%d.%d failed: %s\n", q.flight,
                  q.variant, result.status().ToString().c_str());
      return 1;
    }
    reference.push_back(result.value().CanonicalRows());
  }

  const std::vector<Scenario> scenarios = {
      {.name = "control", .fault_spec = ""},
      {.name = "disk",
       .fault_spec = "disk.read=p0.01,disk.write=p0.05",
       .sp_mode = SpMode::kPull},
      {.name = "io",
       .fault_spec = "io.dispatch.fail=p0.05,io.dispatch.delay=p0.05*500",
       .sp_mode = SpMode::kAdaptive},
      {.name = "hostkill",
       .fault_spec = "sharing.append=n2",
       .sp_mode = SpMode::kPull,
       .expect_reruns = true},
      {.name = "spill",
       .fault_spec = "spill.open=once,disk.enospc=p0.1",
       .sp_memory_budget = 16,
       .sp_mode = SpMode::kPull},
      {.name = "deadline",
       .fault_spec = "io.dispatch.delay=p0.2*2000",
       .timeout_ms = 1,
       .sp_mode = SpMode::kPull,
       .expect_deadlines = true},
      {.name = "mixed",
       .fault_spec = "disk.read=p0.005,io.dispatch.fail=p0.02,"
                     "sharing.append=p0.01,disk.enospc=p0.02",
       .timeout_ms = 5000,
       .sp_mode = SpMode::kAdaptive},
  };

  int violations = 0;
  for (const auto& scenario : scenarios) {
    violations += RunScenario(&db, scenario, seed, queries, reference);
  }

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("chaos_driver: %s (%d violation%s, %.1fs)\n",
              violations == 0 ? "OK" : "FAILED", violations,
              violations == 1 ? "" : "s", elapsed);
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sharing

int main(int argc, char** argv) {
  uint64_t seed = 42;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);
  return sharing::Run(seed);
}
