// trace_check: structural validator for the engine's Chrome trace-event
// export, used by ci/check_trace.sh against the trace_smoke run.
//
//   ./trace_check <trace.json>
//
// Checks, in order:
//   1. Well-formedness: the file is one {"traceEvents":[...]} object with
//      balanced braces/brackets outside string literals.
//   2. Every event carries the mandatory Chrome fields (name, cat, ph,
//      pid, tid, ts) and a legal phase ("X" with dur, or "i").
//   3. Timestamps are non-decreasing per tid in file order (the exporter
//      contract: stable-sorted by (tid, ts)).
//   4. Layer coverage: at least one span from each instrumented layer —
//      engine (query lifecycle), stage (RunPacket), sharing channel
//      (push/pull puts), SPL (spl.*), and the IoScheduler.
//   5. Correlation: some query id > 0 appears in the engine, stage, AND
//      sharing layers — the id threads the whole lifecycle together.
//
// Exits 0 and prints a one-line summary on success; prints the first
// failure and exits 1 otherwise. No third-party JSON dependency: the
// parser is scoped to the exporter's documented output shape.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Event {
  std::string cat;
  std::string name;
  std::string ph;
  uint64_t tid = 0;
  int64_t ts = 0;
  bool has_pid = false;
  bool has_dur = false;
  uint64_t query_id = 0;
};

[[noreturn]] void Fail(const std::string& why) {
  std::fprintf(stderr, "trace_check: FAIL: %s\n", why.c_str());
  std::exit(1);
}

/// The quoted string value following `"key":"` inside `obj`, or empty.
std::string StringField(const std::string& obj, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  std::string out;
  for (std::size_t i = start; i < obj.size(); ++i) {
    if (obj[i] == '\\') {
      ++i;
      if (i < obj.size()) out.push_back(obj[i]);
      continue;
    }
    if (obj[i] == '"') return out;
    out.push_back(obj[i]);
  }
  Fail("unterminated string for key '" + std::string(key) + "'");
}

/// The integer value following `"key":` inside `obj`; `found` reports
/// presence.
int64_t IntField(const std::string& obj, const char* key, bool* found) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) {
    *found = false;
    return 0;
  }
  *found = true;
  return std::strtoll(obj.c_str() + at + needle.size(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.json>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) Fail(std::string("cannot open ") + argv[1]);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  if (json.rfind("{\"traceEvents\":[", 0) != 0) {
    Fail("file does not start with {\"traceEvents\":[");
  }

  // One pass: balance check outside strings + slicing out each event
  // object (the depth-3 {...} children of the traceEvents array).
  std::vector<Event> events;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  std::size_t event_start = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        if (c == '{' && depth == 3) event_start = i;
        break;
      case '}':
      case ']':
        if (depth == 0) Fail("unbalanced close bracket");
        if (c == '}' && depth == 3) {
          const std::string obj = json.substr(event_start, i - event_start + 1);
          Event ev;
          ev.cat = StringField(obj, "cat");
          ev.name = StringField(obj, "name");
          ev.ph = StringField(obj, "ph");
          bool has_tid = false, has_ts = false, has_dur = false,
               has_pid = false, has_qid = false;
          ev.tid = static_cast<uint64_t>(IntField(obj, "tid", &has_tid));
          ev.ts = IntField(obj, "ts", &has_ts);
          (void)IntField(obj, "dur", &has_dur);
          (void)IntField(obj, "pid", &has_pid);
          ev.query_id =
              static_cast<uint64_t>(IntField(obj, "query_id", &has_qid));
          ev.has_dur = has_dur;
          ev.has_pid = has_pid;
          if (ev.name.empty()) Fail("event missing name: " + obj);
          if (ev.cat.empty()) Fail("event missing cat: " + obj);
          if (!has_pid) Fail("event missing pid: " + obj);
          if (!has_tid) Fail("event missing tid: " + obj);
          if (!has_ts) Fail("event missing ts: " + obj);
          if (ev.ph == "X") {
            if (!has_dur) Fail("complete event missing dur: " + obj);
          } else if (ev.ph != "i") {
            Fail("unexpected phase '" + ev.ph + "': " + obj);
          }
          events.push_back(std::move(ev));
        }
        --depth;
        break;
      default:
        break;
    }
  }
  if (in_string) Fail("unterminated string literal");
  if (depth != 0) Fail("unbalanced braces at end of file");
  if (events.empty()) Fail("trace contains no events");

  // Exporter contract: events arrive stable-sorted by (tid, ts).
  std::map<uint64_t, int64_t> last_ts;
  for (const Event& ev : events) {
    auto it = last_ts.find(ev.tid);
    if (it != last_ts.end() && ev.ts < it->second) {
      Fail("timestamps regress for tid " + std::to_string(ev.tid) + ": " +
           std::to_string(ev.ts) + " after " + std::to_string(it->second));
    }
    last_ts[ev.tid] = ev.ts;
  }

  // Layer coverage + query-id correlation across layers.
  const struct {
    const char* label;
    bool (*match)(const Event&);
  } layers[] = {
      {"engine", [](const Event& e) { return e.cat == "engine"; }},
      {"stage", [](const Event& e) { return e.cat == "stage"; }},
      {"sharing-channel",
       [](const Event& e) {
         return e.cat == "sharing" && (e.name.rfind("push.", 0) == 0 ||
                                       e.name.rfind("pull.", 0) == 0);
       }},
      {"spl",
       [](const Event& e) {
         return e.cat == "sharing" && e.name.rfind("spl.", 0) == 0;
       }},
      {"io", [](const Event& e) { return e.cat == "io"; }},
  };
  for (const auto& layer : layers) {
    bool seen = false;
    for (const Event& ev : events) {
      if (layer.match(ev)) {
        seen = true;
        break;
      }
    }
    if (!seen) Fail(std::string("no events from layer '") + layer.label + "'");
  }

  std::set<uint64_t> engine_ids, stage_ids, sharing_ids;
  for (const Event& ev : events) {
    if (ev.query_id == 0) continue;
    if (ev.cat == "engine") engine_ids.insert(ev.query_id);
    if (ev.cat == "stage") stage_ids.insert(ev.query_id);
    if (ev.cat == "sharing") sharing_ids.insert(ev.query_id);
  }
  bool correlated = false;
  for (uint64_t id : engine_ids) {
    if (stage_ids.count(id) && sharing_ids.count(id)) {
      correlated = true;
      break;
    }
  }
  if (!correlated) {
    Fail("no query id spans the engine, stage, and sharing layers");
  }

  std::printf(
      "trace_check: OK: %zu events, %zu threads, all 5 layers present, "
      "%zu correlated quer%s\n",
      events.size(), last_ts.size(), engine_ids.size(),
      engine_ids.size() == 1 ? "y" : "ies");
  return 0;
}
