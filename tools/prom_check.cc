// prom_check: structural validator for Prometheus text exposition
// format 0.0.4, used by ci/check_admin.sh against the admin server's
// /metrics body.
//
//   ./prom_check <metrics.txt>
//
// Checks, in order:
//   1. Every line is a comment (`# ...`), blank, or a sample
//      `name{labels} value` / `name value`.
//   2. Every metric name (in samples and `# TYPE` lines) matches the
//      Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]* — i.e. no un-
//      sanitized dotted registry names leaked through.
//   3. Every sample value parses as a number.
//   4. Every sample is preceded by a `# TYPE` declaration for its base
//      family (summary samples may extend the name with _sum/_count).
//   5. Label blocks, when present, are balanced and quoted.
//
// Exits 0 with a one-line summary on success; prints the first failure
// and exits 1. Standalone: no dependency on the engine library.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace {

bool ValidNameFirst(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool ValidNameChar(char c) {
  return ValidNameFirst(c) || std::isdigit(static_cast<unsigned char>(c));
}

bool ValidName(const std::string& name) {
  if (name.empty() || !ValidNameFirst(name[0])) return false;
  for (char c : name) {
    if (!ValidNameChar(c)) return false;
  }
  return true;
}

bool ValidValue(const std::string& value) {
  if (value.empty()) return false;
  if (value == "NaN" || value == "+Inf" || value == "-Inf") return true;
  char* end = nullptr;
  std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

int Fail(std::size_t line_no, const std::string& line, const char* why) {
  std::fprintf(stderr, "prom_check: line %zu: %s\n  %s\n", line_no, why,
               line.c_str());
  return 1;
}

/// The declared family a sample belongs to: summaries extend the base
/// name with _sum/_count, gauges get a companion _hwm family of their
/// own (declared separately), so only the summary suffixes are implied.
bool CoveredByType(const std::set<std::string>& types,
                   const std::string& name) {
  if (types.count(name) > 0) return true;
  for (const char* suffix : {"_sum", "_count"}) {
    const std::size_t len = std::strlen(suffix);
    if (name.size() > len &&
        name.compare(name.size() - len, len, suffix) == 0 &&
        types.count(name.substr(0, name.size() - len)) > 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <metrics.txt>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "prom_check: cannot open %s\n", argv[1]);
    return 2;
  }

  std::set<std::string> declared_types;
  std::size_t samples = 0;
  std::size_t families = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only `# TYPE <name> <kind>` and `# HELP` are meaningful.
      std::istringstream comment(line);
      std::string hash, keyword, name, kind;
      comment >> hash >> keyword;
      if (keyword == "TYPE") {
        if (!(comment >> name >> kind)) {
          return Fail(line_no, line, "malformed # TYPE line");
        }
        if (!ValidName(name)) {
          return Fail(line_no, line, "invalid metric name in # TYPE");
        }
        if (kind != "counter" && kind != "gauge" && kind != "summary" &&
            kind != "histogram" && kind != "untyped") {
          return Fail(line_no, line, "unknown metric kind in # TYPE");
        }
        if (!declared_types.insert(name).second) {
          return Fail(line_no, line, "duplicate # TYPE for family");
        }
        ++families;
      }
      continue;
    }

    // Sample: name[{labels}] value
    std::size_t pos = 0;
    while (pos < line.size() && ValidNameChar(line[pos])) ++pos;
    const std::string name = line.substr(0, pos);
    if (!ValidName(name)) {
      return Fail(line_no, line, "invalid metric name (unsanitized?)");
    }
    if (pos < line.size() && line[pos] == '{') {
      const std::size_t close = line.find('}', pos);
      if (close == std::string::npos) {
        return Fail(line_no, line, "unbalanced label block");
      }
      const std::string labels = line.substr(pos + 1, close - pos - 1);
      // Minimal label sanity: quotes must balance.
      if (std::count(labels.begin(), labels.end(), '"') % 2 != 0) {
        return Fail(line_no, line, "unbalanced quotes in labels");
      }
      pos = close + 1;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return Fail(line_no, line, "expected space before sample value");
    }
    std::string value = line.substr(pos + 1);
    // An optional trailing timestamp is allowed by the format; the
    // engine never emits one, but tolerate it.
    const std::size_t space = value.find(' ');
    if (space != std::string::npos) value = value.substr(0, space);
    if (!ValidValue(value)) {
      return Fail(line_no, line, "sample value is not a number");
    }
    if (!CoveredByType(declared_types, name)) {
      return Fail(line_no, line, "sample has no preceding # TYPE family");
    }
    ++samples;
  }

  if (samples == 0) {
    std::fprintf(stderr, "prom_check: no samples found\n");
    return 1;
  }
  std::printf("prom_check OK: %zu samples across %zu families\n", samples,
              families);
  return 0;
}
