// bench_trajectory: folds every BENCH_*.json sweep the CI pipeline
// emits into one BENCH_trajectory.json keyed by the headline numbers a
// human (or a regression diff) actually tracks across PRs:
//
//   contention: 16-reader resident aggregate throughput, 32-reader
//               producer append CPU p99, admin-scrape perturbation ratio
//   adaptive:   skinny/fat cost-model divergence (the per-signature
//               policy's reason to exist), adaptive-vs-best-fixed wall
//   io:         worst drain wall under a throttled budget, stall micros
//   spill:      bounded-memory proof (retained high-water vs budget)
//
//   ./bench_trajectory <out.json> <bench1.json> [bench2.json ...]
//
// Input files are recognized by basename (BENCH_contention.json, etc.);
// unknown files are skipped with a note, missing headline fields leave
// their key absent rather than failing — the trajectory is additive
// across PRs that add new sweeps. Standalone: hand-rolled scanning over
// the benches' flat one-object-per-line JSON, no engine dependency.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Extracts `"key": <number>` from a flat JSON object row. Returns
/// false when the key is absent.
bool NumField(const std::string& row, const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = row.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  while (pos < row.size() && row[pos] == ' ') ++pos;
  char* end = nullptr;
  const double v = std::strtod(row.c_str() + pos, &end);
  if (end == row.c_str() + pos) return false;
  *out = v;
  return true;
}

bool StrField(const std::string& row, const std::string& key,
              std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  std::size_t pos = row.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  const std::size_t close = row.find('"', pos);
  if (close == std::string::npos) return false;
  *out = row.substr(pos, close - pos);
  return true;
}

/// Splits a bench file into its top-level `{...}` rows (the benches emit
/// one object per line inside one array; this tolerates reflowing).
std::vector<std::string> Rows(const std::string& body) {
  std::vector<std::string> rows;
  int depth = 0;
  bool in_string = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth++ == 0) start = i;
    } else if (c == '}') {
      if (--depth == 0) rows.push_back(body.substr(start, i - start + 1));
    }
  }
  return rows;
}

std::string Slurp(const char* path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string Basename(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

using Headline = std::map<std::string, double>;

void FoldContention(const std::vector<std::string>& rows, Headline* out) {
  for (const std::string& row : rows) {
    std::string config;
    double readers = 0;
    StrField(row, "config", &config);
    NumField(row, "readers", &readers);
    double v = 0;
    if (config == "resident" && readers == 16 &&
        NumField(row, "aggregate_pages_per_sec", &v)) {
      (*out)["contention_resident16_aggregate_pages_per_sec"] = v;
    }
    if (config == "resident" && readers == 32 &&
        NumField(row, "append_cpu_p99_us", &v)) {
      (*out)["contention_resident32_append_cpu_p99_us"] = v;
    }
    if (config == "scrape_gate" && NumField(row, "admin_scrape_ratio", &v)) {
      (*out)["contention_admin_scrape_ratio"] = v;
    }
  }
}

void FoldAdaptive(const std::vector<std::string>& rows, Headline* out) {
  double best_fixed = 0;
  bool have_fixed = false;
  for (const std::string& row : rows) {
    std::string part, mode, signature;
    StrField(row, "part", &part);
    double v = 0;
    if (part == "hot_cold" && StrField(row, "mode", &mode) &&
        NumField(row, "wall_ms", &v)) {
      if (mode == "adaptive") {
        (*out)["adaptive_hot_cold_wall_ms"] = v;
      } else if (mode != "off") {
        if (!have_fixed || v < best_fixed) best_fixed = v;
        have_fixed = true;
      }
    }
    if (part == "heterogeneous" && StrField(row, "signature", &signature)) {
      double push = 0, pull = 0;
      NumField(row, "decided_push", &push);
      NumField(row, "decided_pull", &pull);
      if (signature == "skinny") {
        (*out)["adaptive_skinny_decided_push"] = push;
      } else if (signature == "fat") {
        (*out)["adaptive_fat_decided_pull"] = pull;
      }
    }
    if (part == "heterogeneous" && row.find("\"summary\"") !=
                                       std::string::npos &&
        NumField(row, "sp_hits", &v)) {
      // Divergence headline: 1 when the model split the signatures
      // (skinny->push AND fat->pull), mirrored from "diverged".
      (*out)["adaptive_heterogeneous_diverged"] =
          row.find("\"diverged\": true") != std::string::npos ? 1 : 0;
    }
  }
  if (have_fixed) (*out)["adaptive_best_fixed_wall_ms"] = best_fixed;
}

void FoldIo(const std::vector<std::string>& rows, Headline* out) {
  double worst_drain = 0, max_stall = 0;
  for (const std::string& row : rows) {
    double v = 0;
    if (NumField(row, "drain_ms", &v) && v > worst_drain) worst_drain = v;
    if (NumField(row, "stall_micros", &v) && v > max_stall) max_stall = v;
  }
  if (worst_drain > 0) (*out)["io_worst_drain_ms"] = worst_drain;
  (*out)["io_max_stall_micros"] = max_stall;
}

void FoldSpill(const std::vector<std::string>& rows, Headline* out) {
  // Bounded-memory proof: among budgeted cells, the worst retained
  // high-water and its budget (retained_hwm should track the budget,
  // not the stream length).
  double worst_retained = 0, its_budget = 0, worst_wall = 0;
  for (const std::string& row : rows) {
    double budget = 0, retained = 0, wall = 0;
    if (!NumField(row, "budget_pages", &budget) || budget <= 0) continue;
    NumField(row, "retained_hwm", &retained);
    NumField(row, "wall_ms", &wall);
    if (retained > worst_retained) {
      worst_retained = retained;
      its_budget = budget;
    }
    if (wall > worst_wall) worst_wall = wall;
  }
  if (its_budget > 0) {
    (*out)["spill_budgeted_retained_hwm_pages"] = worst_retained;
    (*out)["spill_budgeted_retained_hwm_budget"] = its_budget;
    (*out)["spill_budgeted_worst_wall_ms"] = worst_wall;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <out.json> <BENCH_x.json> [BENCH_y.json ...]\n",
                 argv[0]);
    return 2;
  }

  Headline headline;
  std::vector<std::string> folded;
  for (int i = 2; i < argc; ++i) {
    const std::string body = Slurp(argv[i]);
    if (body.empty()) {
      std::fprintf(stderr, "bench_trajectory: skipping unreadable %s\n",
                   argv[i]);
      continue;
    }
    const std::vector<std::string> rows = Rows(body);
    const std::string base = Basename(argv[i]);
    if (base == "BENCH_contention.json") {
      FoldContention(rows, &headline);
    } else if (base == "BENCH_adaptive.json") {
      FoldAdaptive(rows, &headline);
    } else if (base == "BENCH_io.json") {
      FoldIo(rows, &headline);
    } else if (base == "BENCH_spill.json") {
      FoldSpill(rows, &headline);
    } else {
      std::fprintf(stderr, "bench_trajectory: unrecognized %s (skipped)\n",
                   argv[i]);
      continue;
    }
    folded.push_back(base);
  }

  if (headline.empty()) {
    std::fprintf(stderr, "bench_trajectory: no headline numbers extracted\n");
    return 1;
  }

  std::FILE* out = std::fopen(argv[1], "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_trajectory: cannot open %s\n", argv[1]);
    return 2;
  }
  std::fprintf(out, "{\n  \"sources\": [");
  for (std::size_t i = 0; i < folded.size(); ++i) {
    std::fprintf(out, "%s\"%s\"", i ? ", " : "", folded[i].c_str());
  }
  std::fprintf(out, "],\n  \"headline\": {\n");
  std::size_t n = 0;
  for (const auto& [key, value] : headline) {
    std::fprintf(out, "    \"%s\": %.4f%s\n", key.c_str(), value,
                 ++n < headline.size() ? "," : "");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);

  std::printf("bench_trajectory: %zu headline numbers from %zu files -> %s\n",
              headline.size(), folded.size(), argv[1]);
  return 0;
}
