// Admin-server smoke run: the trace_smoke workload (disk-resident TPC-H
// Q1, host + satellite pull session, tiny SP budget) booted with the
// embedded admin server on an ephemeral port, every endpoint fetched
// in-process over real loopback HTTP, and each body written to a file
// for ci/check_admin.sh to validate (tools/prom_check for /metrics,
// tools/trace_check for /trace, grep needles for the JSON endpoints).
//
//   ./admin_smoke [output_dir]
//
// /channels and /queries are fetched WHILE the queries are in flight
// (between Submit and Collect) so the deep endpoints demonstrably show
// live state, retrying across submissions in case a session drains
// before the scrape lands.

#include <cstdio>
#include <string>
#include <vector>

#include "core/sharing_engine.h"
#include "server/admin_server.h"
#include "server/watchdog.h"
#include "workload/tpch.h"

using namespace sharing;

namespace {

bool WriteBody(const std::string& dir, const char* name,
               const std::string& body) {
  const std::string path = dir + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

/// Fetches `target` and requires HTTP `want` back.
bool Fetch(int port, const std::string& target, int want, std::string* body) {
  auto r = AdminHttpGet(port, target);
  if (!r.ok()) {
    std::fprintf(stderr, "GET %s: %s\n", target.c_str(),
                 r.status().ToString().c_str());
    return false;
  }
  if (r.value().status != want) {
    std::fprintf(stderr, "GET %s: status %d, want %d\n", target.c_str(),
                 r.value().status, want);
    return false;
  }
  *body = std::move(r.value().body);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";

  DatabaseOptions db_options;
  db_options.buffer_pool_frames = 256;
  Database db(db_options);
  db.SetMemoryResident();
  auto table = tpch::GenerateLineitem(db.catalog(), db.buffer_pool(), 0.02);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  db.SetDiskResident();

  EngineConfig config;
  config.mode = EngineMode::kSpPull;
  config.trace_enabled = true;
  config.trace_buffer_events = 1 << 16;
  config.sp_memory_budget = 32;
  config.io_threads = 2;
  config.admin_port = 0;  // ephemeral loopback port
  config.watchdog_period_ms = 50;
  SharingEngine engine(&db, config);

  AdminServer* admin = engine.qpipe()->admin_server();
  if (admin == nullptr || admin->port() <= 0) {
    std::fprintf(stderr, "admin server did not start\n");
    return 1;
  }
  const int port = admin->port();
  std::printf("admin server on 127.0.0.1:%d\n", port);

  // Run host + satellite; scrape the deep endpoints mid-flight. A fast
  // machine can drain a session before the scrape lands, so retry with
  // fresh submissions until /channels shows a live session.
  std::string channels_body, queries_body, explain_body;
  bool saw_live = false;
  for (int attempt = 0; attempt < 5; ++attempt) {
    PlanNodeRef plan = tpch::MakeQ1Plan(90);
    QueryHandle host = engine.Submit(plan);
    QueryHandle satellite = engine.Submit(plan);

    std::string c, q, e;
    const uint64_t qid = host.context()->query_id();
    const bool got =
        Fetch(port, "/channels", 200, &c) && Fetch(port, "/queries", 200, &q) &&
        Fetch(port, "/explain?query=" + std::to_string(qid), 200, &e);

    auto host_result = host.Collect();
    auto sat_result = satellite.Collect();
    if (!host_result.ok() || !sat_result.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    if (host_result.value().CanonicalRows() !=
        sat_result.value().CanonicalRows()) {
      std::fprintf(stderr, "host and satellite results differ\n");
      return 1;
    }
    if (got) {
      channels_body = c;
      queries_body = q;
      explain_body = e;
      if (q.find("\"query_id\"") != std::string::npos) {
        saw_live = true;
        break;
      }
    }
  }
  if (!saw_live) {
    std::fprintf(stderr, "/queries never showed an in-flight query\n");
    return 1;
  }

  // The static endpoints, post-run.
  std::string metrics_body, metrics_json_body, cost_body, health_body,
      trace_body, index_body;
  if (!Fetch(port, "/metrics", 200, &metrics_body) ||
      !Fetch(port, "/metrics.json", 200, &metrics_json_body) ||
      !Fetch(port, "/cost_model", 200, &cost_body) ||
      !Fetch(port, "/healthz", 200, &health_body) ||
      !Fetch(port, "/trace?ms=600000", 200, &trace_body) ||
      !Fetch(port, "/", 200, &index_body)) {
    return 1;
  }

  // Error paths must be errors.
  std::string ignored;
  if (!Fetch(port, "/no_such_endpoint", 404, &ignored) ||
      !Fetch(port, "/explain", 400, &ignored) ||
      !Fetch(port, "/explain?query=999999999", 404, &ignored)) {
    return 1;
  }

  if (!WriteBody(dir, "metrics.txt", metrics_body) ||
      !WriteBody(dir, "metrics.json", metrics_json_body) ||
      !WriteBody(dir, "channels.json", channels_body) ||
      !WriteBody(dir, "queries.json", queries_body) ||
      !WriteBody(dir, "explain.json", explain_body) ||
      !WriteBody(dir, "cost_model.json", cost_body) ||
      !WriteBody(dir, "healthz.json", health_body) ||
      !WriteBody(dir, "trace.json", trace_body)) {
    return 1;
  }

  std::printf(
      "admin smoke OK: 8 endpoint bodies -> %s (metrics %zu bytes, trace "
      "%zu bytes)\n",
      dir.c_str(), metrics_body.size(), trace_body.size());
  return 0;
}
