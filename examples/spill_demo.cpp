// The SP memory governor in action: a pull-model sharing session with a
// stalled satellite, run once without a budget (the laggard pins the
// host's whole result in RAM) and once with one (overflow spills to a
// temp file and faults back bit-exactly when the laggard finally reads).
//
//   ./spill_demo [budget_pages] [scale_factor]
//
// Watch sp.pages_retained.hwm: unbounded it tracks the result size;
// budgeted it is capped at the budget while sp.pages_spilled /
// sp.spill_bytes absorb the rest — and both gauges return to zero after
// the stalled reader drains.

#include <cstdio>
#include <cstdlib>

#include "core/sharing_engine.h"
#include "workload/tpch.h"

using namespace sharing;

namespace {

int64_t Metric(Database& db, const char* name) {
  return db.metrics()->Snapshot()[name];
}

void PrintSpState(Database& db, const char* when) {
  std::printf("  [%s]\n", when);
  std::printf("    sp.pages_retained      = %lld (hwm %lld)\n",
              static_cast<long long>(Metric(db, metrics::kSpPagesRetained)),
              static_cast<long long>(
                  Metric(db, std::string(std::string(metrics::kSpPagesRetained) +
                                         ".hwm")
                                 .c_str())));
  std::printf("    sp.pages_spilled       = %lld\n",
              static_cast<long long>(Metric(db, metrics::kSpPagesSpilled)));
  std::printf("    sp.spill_bytes         = %lld\n",
              static_cast<long long>(Metric(db, metrics::kSpSpillBytes)));
  std::printf("    sp.unspill_reads       = %lld\n",
              static_cast<long long>(Metric(db, metrics::kSpUnspillReads)));
}

int RunOnce(std::size_t budget, double sf) {
  DatabaseOptions db_options;
  db_options.buffer_pool_frames = 65536;
  Database db(db_options);
  auto table = tpch::GenerateLineitem(db.catalog(), db.buffer_pool(), sf);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  QPipeOptions options = QPipeOptions::AllSp(SpMode::kPull);
  options.sp_memory_budget = budget;
  QPipeEngine engine(db.catalog(), options, db.metrics());

  std::printf("\n=== sp_memory_budget = %s ===\n",
              budget == 0 ? "unbounded" : std::to_string(budget).c_str());

  // A host and a satellite sharing one scan (Q1's input — a page count
  // worth budgeting); the satellite stalls until the host has fully
  // drained, the worst case for pull retention.
  PlanNodeRef scan = tpch::MakeQ1Plan(90)->children()[0];
  QueryHandle host = engine.Submit(scan);
  QueryHandle stalled = engine.Submit(scan);
  auto host_result = host.Collect();
  if (!host_result.ok()) {
    std::fprintf(stderr, "%s\n", host_result.status().ToString().c_str());
    return 1;
  }
  PrintSpState(db, "host drained, satellite stalled");

  auto late_result = stalled.Collect();
  if (!late_result.ok()) {
    std::fprintf(stderr, "%s\n", late_result.status().ToString().c_str());
    return 1;
  }
  bool equal =
      host_result.value().CanonicalRows() == late_result.value().CanonicalRows();
  std::printf("  stalled reader drained: %zu rows, %s the host's result\n",
              late_result.value().num_rows(),
              equal ? "bit-identical to" : "DIFFERENT FROM");
  PrintSpState(db, "all readers drained");
  return equal ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 16;
  double sf = argc > 2 ? std::atof(argv[2]) : 0.02;

  std::printf("TPC-H lineitem at SF=%.3f; pull-SP session with a stalled\n",
              sf);
  std::printf("satellite, without and with the SP memory governor.\n");

  int rc = RunOnce(0, sf);        // PR 1 baseline: retention tracks result
  if (rc == 0) rc = RunOnce(budget, sf);  // governed: capped + spill
  if (rc == 0) {
    std::printf(
        "\nExpected shape: unbounded retention's high-water mark tracks\n"
        "the scan's page count; the governed run caps it at the budget,\n"
        "spills the overflow, and frees every spill byte after the\n"
        "stalled reader drains — same bit-exact result either way.\n");
  }
  return rc;
}
