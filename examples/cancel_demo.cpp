// Paper Fig. 1a: a satellite query cancels mid-flight while the host keeps
// producing for the remaining consumers.
//
//   ./cancel_demo [scale_factor]
//
// Three identical TPC-H Q1 queries are submitted with pull-based SP: one
// host evaluates the plan, two satellites attach. We cancel one satellite
// immediately; the other satellite and the host must still complete with
// full results.

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "core/sharing_engine.h"
#include "workload/tpch.h"

using namespace sharing;

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.01;

  DatabaseOptions db_options;
  db_options.buffer_pool_frames = 65536;
  Database db(db_options);
  std::printf("Generating TPC-H lineitem at SF=%.3f ...\n", sf);
  auto table = tpch::GenerateLineitem(db.catalog(), db.buffer_pool(), sf);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  EngineConfig config;
  config.mode = EngineMode::kSpPull;
  SharingEngine engine(&db, config);
  PlanNodeRef q1 = tpch::MakeQ1Plan(90);

  QueryHandle host = engine.Submit(q1);
  QueryHandle satellite_a = engine.Submit(q1);
  QueryHandle satellite_b = engine.Submit(q1);

  std::printf("Cancelling satellite A mid-flight ...\n");
  satellite_a.Cancel();
  auto cancelled = satellite_a.Collect();
  std::printf("satellite A -> %s\n",
              cancelled.ok() ? "completed before the cancel landed"
                             : cancelled.status().ToString().c_str());

  auto host_result = host.Collect();
  auto sat_result = satellite_b.Collect();
  if (!host_result.ok() || !sat_result.ok()) {
    std::fprintf(stderr, "host/satellite failed after cancel!\n");
    return 1;
  }
  bool same = host_result.value().CanonicalRows() ==
              sat_result.value().CanonicalRows();
  std::printf("host        -> %zu rows\n", host_result.value().num_rows());
  std::printf("satellite B -> %zu rows (%s)\n",
              sat_result.value().num_rows(),
              same ? "identical to host" : "MISMATCH");

  StageStats scan = engine.qpipe()->scan_stage()->GetStats();
  StageStats agg = engine.qpipe()->agg_stage()->GetStats();
  std::printf("\nstage stats: TSCAN executed=%lld sp-hits=%lld | "
              "AGG executed=%lld sp-hits=%lld\n",
              static_cast<long long>(scan.packets_executed),
              static_cast<long long>(scan.sp_hits),
              static_cast<long long>(agg.packets_executed),
              static_cast<long long>(agg.sp_hits));
  return same ? 0 : 1;
}
