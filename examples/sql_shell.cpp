// sql_shell: an interactive SQL shell over the sharing engine.
//
//   ./sql_shell [--sf 0.01] [--disk] [--mode sp-pull] [-c "SELECT ..."]
//
// The demo paper's GUI lets the audience pick an execution strategy and
// fire analytical queries at the same data; this shell is the terminal
// equivalent. Meta commands:
//
//   \mode [name]   show or switch the execution mode
//                  (query-centric | sp-push | sp-pull | gqp | gqp+sp)
//   \tables        list tables
//   \schema NAME   show a table's schema
//   \stats         engine counters (SP hits, CJOIN admissions, I/O)
//   \plan SQL      show the compiled plan without running it
//   \help          this text
//   \quit          exit
//
// Everything else is parsed as SQL:
//
//   sql> SELECT d_year, SUM(lo_revenue) AS revenue
//        FROM lineorder JOIN date ON lo_orderdate = d_datekey
//        GROUP BY d_year ORDER BY d_year;

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "common/stopwatch.h"
#include "core/sharing_engine.h"
#include "sql/binder.h"
#include "workload/ssb.h"
#include "workload/tpch.h"

using namespace sharing;

namespace {

bool ParseMode(const std::string& name, EngineMode* mode) {
  for (EngineMode m :
       {EngineMode::kQueryCentric, EngineMode::kSpPush, EngineMode::kSpPull,
        EngineMode::kSpAdaptive, EngineMode::kGqp, EngineMode::kGqpSp}) {
    if (name == EngineModeToString(m)) {
      *mode = m;
      return true;
    }
  }
  return false;
}

void PrintStats(Database* db) {
  auto snapshot = db->metrics()->Snapshot();
  std::printf("%-32s %12s\n", "counter", "value");
  for (const auto& [name, value] : snapshot) {
    if (value != 0) {
      std::printf("%-32s %12lld\n", name.c_str(),
                  static_cast<long long>(value));
    }
  }
}

void RunSql(SharingEngine* engine, const std::string& text,
            bool plan_only) {
  auto plan_or = sql::CompileSelect(*engine->database()->catalog(), text);
  if (!plan_or.ok()) {
    std::printf("error: %s\n", plan_or.status().ToString().c_str());
    return;
  }
  if (plan_only) {
    std::printf("%s\n", plan_or.value()->Canonical().c_str());
    return;
  }
  Stopwatch timer;
  auto result = engine->Execute(plan_or.value());
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result.value().ToString(40).c_str());
  std::printf("(%zu rows, %.1f ms, mode %s)\n", result.value().num_rows(),
              timer.ElapsedSeconds() * 1e3,
              std::string(EngineModeToString(engine->mode())).c_str());
}

void RunMeta(SharingEngine* engine, const std::string& line) {
  std::istringstream in(line);
  std::string command;
  in >> command;
  Database* db = engine->database();

  if (command == "\\help") {
    std::printf(
        "\\mode [name]   show/switch mode (query-centric|sp-push|sp-pull|"
        "sp-adaptive|gqp|gqp+sp)\n"
        "\\tables        list tables\n"
        "\\schema NAME   table schema\n"
        "\\stats         engine counters\n"
        "\\plan SQL      compile without executing\n"
        "\\quit          exit\n");
  } else if (command == "\\mode") {
    std::string name;
    if (in >> name) {
      EngineMode mode;
      if (!ParseMode(name, &mode)) {
        std::printf("unknown mode '%s'\n", name.c_str());
        return;
      }
      engine->SetMode(mode);
    }
    std::printf("mode: %s\n",
                std::string(EngineModeToString(engine->mode())).c_str());
  } else if (command == "\\tables") {
    for (const auto& name : db->catalog()->TableNames()) {
      auto* table = db->catalog()->GetTable(name).value();
      std::printf("%-12s %10llu rows %8zu pages\n", name.c_str(),
                  static_cast<unsigned long long>(table->num_rows()),
                  table->num_pages());
    }
  } else if (command == "\\schema") {
    std::string name;
    if (!(in >> name)) {
      std::printf("usage: \\schema TABLE\n");
      return;
    }
    auto table_or = db->catalog()->GetTable(name);
    if (!table_or.ok()) {
      std::printf("%s\n", table_or.status().ToString().c_str());
      return;
    }
    const Schema& schema = table_or.value()->schema();
    for (std::size_t i = 0; i < schema.num_columns(); ++i) {
      const Column& column = schema.column(i);
      std::printf("  %-20s %s(%zu)\n", column.name.c_str(),
                  std::string(ValueTypeToString(column.type)).c_str(),
                  column.width);
    }
  } else if (command == "\\stats") {
    PrintStats(db);
  } else if (command == "\\plan") {
    std::string rest;
    std::getline(in, rest);
    RunSql(engine, rest, /*plan_only=*/true);
  } else {
    std::printf("unknown command %s (try \\help)\n", command.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.01;
  bool disk = false;
  std::string mode_name = "sp-pull";
  std::string one_shot;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--sf" && i + 1 < argc) {
      sf = std::atof(argv[++i]);
    } else if (arg == "--disk") {
      disk = true;
    } else if (arg == "--mode" && i + 1 < argc) {
      mode_name = argv[++i];
    } else if (arg == "-c" && i + 1 < argc) {
      one_shot = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sf F] [--disk] [--mode M] [-c SQL]\n",
                   argv[0]);
      return 1;
    }
  }

  DatabaseOptions db_options;
  db_options.buffer_pool_frames = disk ? 512 : 65536;
  Database db(db_options);
  if (disk) db.SetDiskResident();

  std::fprintf(stderr, "Loading SSB (SF=%.3f) + TPC-H lineitem ...\n", sf);
  Status st = ssb::GenerateAll(db.catalog(), db.buffer_pool(), sf);
  if (st.ok()) {
    st = tpch::GenerateLineitem(db.catalog(), db.buffer_pool(), sf).status();
  }
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  EngineConfig config;
  config.fact_table = "lineorder";
  config.cjoin_levels = ssb::PipelineLevels();
  if (!ParseMode(mode_name, &config.mode)) {
    std::fprintf(stderr, "unknown mode '%s'\n", mode_name.c_str());
    return 1;
  }
  SharingEngine engine(&db, config);

  if (!one_shot.empty()) {
    RunSql(&engine, one_shot, /*plan_only=*/false);
    return 0;
  }

  std::fprintf(stderr,
               "sharing-engine SQL shell — \\help for commands, \\quit to "
               "exit. Statements end with ';'.\n");
  std::string buffer;
  std::string line;
  for (;;) {
    std::fputs(buffer.empty() ? "sql> " : "...> ", stderr);
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty()) {
      if (line == "\\quit" || line == "\\q") break;
      if (!line.empty() && line[0] == '\\') {
        RunMeta(&engine, line);
        continue;
      }
    }
    buffer += line;
    buffer += '\n';
    if (line.find(';') != std::string::npos) {
      RunSql(&engine, buffer, /*plan_only=*/false);
      buffer.clear();
    }
  }
  return 0;
}
