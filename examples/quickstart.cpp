// Quickstart: build an in-memory SSB database, run one query under every
// execution mode of the sharing engine, and print the (identical) results.
//
//   ./quickstart [scale_factor]
//
// This is the smallest end-to-end tour of the public API:
//   Database -> generators -> EngineConfig -> SharingEngine -> plans.

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "core/sharing_engine.h"
#include "workload/ssb.h"

using namespace sharing;

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.01;

  // 1. A database: disk manager + buffer pool + catalog. Memory-resident:
  //    generous frames, no I/O latency model.
  DatabaseOptions db_options;
  db_options.buffer_pool_frames = 65536;
  Database db(db_options);

  std::printf("Generating SSB at SF=%.3f ...\n", sf);
  Status st = ssb::GenerateAll(db.catalog(), db.buffer_pool(), sf);
  if (!st.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", st.ToString().c_str());
    return 1;
  }
  for (const auto& name : db.catalog()->TableNames()) {
    std::printf("  %-10s %8llu rows\n", name.c_str(),
                static_cast<unsigned long long>(
                    db.catalog()->GetTable(name).value()->num_rows()));
  }

  // 2. An engine with the CJOIN pipeline attached (needed for GQP modes).
  EngineConfig config;
  config.mode = EngineMode::kQueryCentric;
  config.fact_table = "lineorder";
  config.cjoin_levels = ssb::PipelineLevels();
  SharingEngine engine(&db, config);

  // 3. A query plan: SSB Q3.1 (customer x supplier x date star join).
  auto plan_or = ssb::MakeQuery(3, 1);
  if (!plan_or.ok()) {
    std::fprintf(stderr, "%s\n", plan_or.status().ToString().c_str());
    return 1;
  }
  PlanNodeRef plan = plan_or.value();
  std::printf("\nPlan: %s\n", plan->Canonical().c_str());

  // 4. Execute under every mode; sharing never changes results.
  for (EngineMode mode :
       {EngineMode::kQueryCentric, EngineMode::kSpPush, EngineMode::kSpPull,
        EngineMode::kSpAdaptive, EngineMode::kGqp, EngineMode::kGqpSp}) {
    engine.SetMode(mode);
    Stopwatch timer;
    auto result = engine.Execute(plan);
    if (!result.ok()) {
      std::fprintf(stderr, "[%s] failed: %s\n",
                   std::string(EngineModeToString(mode)).c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n[%-13s] %zu rows in %.1f ms\n",
                std::string(EngineModeToString(mode)).c_str(),
                result.value().num_rows(), timer.ElapsedSeconds() * 1e3);
    std::printf("%s", result.value().ToString(5).c_str());
  }
  std::printf("\nAll six modes returned the same result set.\n");
  return 0;
}
