// Scenario I as a runnable example: N identical TPC-H Q1 queries submitted
// simultaneously, under query-centric execution, push-based SP, and
// pull-based SP (the Shared Pages List).
//
//   ./tpch_q1_sharing [num_queries] [scale_factor]
//
// Watch the three numbers the paper's demo plots: response time, CPU time,
// and bytes copied between buffers. Push-based SP serializes on the copy
// loop; the SPL shares pages and copies nothing.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stopwatch.h"
#include "core/sharing_engine.h"
#include "workload/tpch.h"

using namespace sharing;

int main(int argc, char** argv) {
  int num_queries = argc > 1 ? std::atoi(argv[1]) : 16;
  double sf = argc > 2 ? std::atof(argv[2]) : 0.02;

  DatabaseOptions db_options;
  db_options.buffer_pool_frames = 65536;
  Database db(db_options);
  std::printf("Generating TPC-H lineitem at SF=%.3f ...\n", sf);
  auto table = tpch::GenerateLineitem(db.catalog(), db.buffer_pool(), sf);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("  lineitem: %llu rows, %zu pages\n\n",
              static_cast<unsigned long long>(table.value()->num_rows()),
              table.value()->num_pages());

  EngineConfig config;  // no CJOIN needed: Q1 has no joins
  SharingEngine engine(&db, config);
  PlanNodeRef q1 = tpch::MakeQ1Plan(90);

  std::printf("%-15s %10s %10s %14s %12s\n", "mode", "resp(ms)", "cpu(s)",
              "bytes-copied", "sp-hits");
  for (EngineMode mode : {EngineMode::kQueryCentric, EngineMode::kSpPush,
                          EngineMode::kSpPull}) {
    engine.SetMode(mode);
    auto before = db.metrics()->Snapshot();
    CpuTimer cpu;
    Stopwatch wall;

    // Simultaneous submission: the demo's batch of identical Q1 instances.
    std::vector<QueryHandle> handles;
    handles.reserve(num_queries);
    for (int i = 0; i < num_queries; ++i) {
      handles.push_back(engine.Submit(q1));
    }
    for (auto& h : handles) {
      auto r = h.Collect();
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }

    auto delta = MetricsRegistry::Delta(before, db.metrics()->Snapshot());
    std::printf("%-15s %10.1f %10.2f %14lld %12lld\n",
                std::string(EngineModeToString(mode)).c_str(),
                wall.ElapsedSeconds() * 1e3, cpu.ElapsedSeconds(),
                static_cast<long long>(delta[metrics::kSpBytesCopied]),
                static_cast<long long>(delta[metrics::kSpOpportunities]));
  }

  std::printf(
      "\nExpected shape: sp-push copies pages per satellite (the\n"
      "serialization point); sp-pull shares them through the SPL with\n"
      "zero copies and scales with consumers.\n");
  return 0;
}
