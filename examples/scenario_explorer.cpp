// scenario_explorer: the command-line stand-in for the demo's interactive
// GUI. Every knob the paper's interface exposes (Fig. 3) is a flag; the
// output is the series the GUI would plot plus the auxiliary system
// measurements.
//
// Usage:
//   ./scenario_explorer --scenario=1|2|3|4 [options]
//
// Common options:
//   --sf=<double>          scale factor                (default 0.01)
//   --clients=<n>          concurrent clients          (scenario default)
//   --selectivity=<f>      per-dimension selectivity   (default 0.01)
//   --variants=<n>         distinct plans in the mix   (default 16)
//   --disk                 disk-resident regime (latency model + small pool)
//   --batch                clients submit in waves
//   --seconds=<f>          measurement window per point (default 1.5)

#include <cstdio>
#include <functional>
#include <memory>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/sharing_engine.h"
#include "server/admin_server.h"
#include "workload/driver.h"
#include "workload/ssb.h"
#include "workload/tpch.h"

using namespace sharing;

namespace {

struct Args {
  int scenario = 2;
  double sf = 0.01;
  int clients = -1;  // -1 = scenario default
  double selectivity = 0.01;
  int variants = 16;
  bool disk = false;
  bool batch = false;
  double seconds = 1.5;
  /// Embedded admin server port (-1 off, 0 ephemeral — the bound port is
  /// printed at startup; see docs/ADMIN.md).
  int admin_port = -1;
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      std::size_t n = std::strlen(prefix);
      return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = val("--scenario=")) args.scenario = std::atoi(v);
    else if (const char* v = val("--sf=")) args.sf = std::atof(v);
    else if (const char* v = val("--clients=")) args.clients = std::atoi(v);
    else if (const char* v = val("--selectivity="))
      args.selectivity = std::atof(v);
    else if (const char* v = val("--variants=")) args.variants = std::atoi(v);
    else if (a == "--disk") args.disk = true;
    else if (a == "--batch") args.batch = true;
    else if (const char* v = val("--seconds=")) args.seconds = std::atof(v);
    else if (const char* v = val("--admin-port="))
      args.admin_port = std::atoi(v);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      std::exit(2);
    }
  }
  return args;
}

std::unique_ptr<Database> MakeDb(const Args& args, bool ssb_data) {
  DatabaseOptions options;
  options.buffer_pool_frames = args.disk ? 512 : 65536;
  auto db = std::make_unique<Database>(options);
  if (args.disk) db->SetDiskResident();
  if (ssb_data) {
    SHARING_CHECK_OK(ssb::GenerateAll(db->catalog(), db->buffer_pool(),
                                      args.sf));
  } else {
    auto t = tpch::GenerateLineitem(db->catalog(), db->buffer_pool(),
                                    args.sf);
    SHARING_CHECK(t.ok()) << t.status().ToString();
  }
  return db;
}

/// Scenario I: push vs pull SP on identical TPC-H Q1 instances.
void RunScenario1(const Args& args) {
  auto db = MakeDb(args, /*ssb_data=*/false);
  EngineConfig scenario1_config;
  scenario1_config.admin_port = args.admin_port;
  SharingEngine engine(db.get(), scenario1_config);
  if (engine.qpipe()->admin_server() != nullptr) {
    std::printf("# admin server on 127.0.0.1:%d\n",
                engine.qpipe()->admin_server()->port());
  }
  PlanNodeRef q1 = tpch::MakeQ1Plan(90);

  std::vector<int> concurrency = {1, 2, 4, 8, 16, 32};
  if (args.clients > 0) concurrency = {args.clients};

  std::printf("# Scenario I: push vs pull SP, identical TPC-H Q1\n");
  std::printf("%-8s %-15s %12s %10s %14s\n", "queries", "mode", "resp(ms)",
              "cpu(s)", "bytes-copied");
  for (int n : concurrency) {
    for (EngineMode mode : {EngineMode::kQueryCentric, EngineMode::kSpPush,
                            EngineMode::kSpPull}) {
      engine.SetMode(mode);
      auto before = db->metrics()->Snapshot();
      CpuTimer cpu;
      Stopwatch wall;
      std::vector<QueryHandle> handles;
      for (int i = 0; i < n; ++i) handles.push_back(engine.Submit(q1));
      for (auto& h : handles) SHARING_CHECK(h.Collect().ok());
      auto delta = MetricsRegistry::Delta(before, db->metrics()->Snapshot());
      std::printf("%-8d %-15s %12.1f %10.2f %14lld\n", n,
                  std::string(EngineModeToString(mode)).c_str(),
                  wall.ElapsedSeconds() * 1e3, cpu.ElapsedSeconds(),
                  static_cast<long long>(delta[metrics::kSpBytesCopied]));
    }
  }
}

/// Scenarios II-IV share this core: SSB star template under two engines.
void RunSsbScenario(const Args& args, const std::vector<double>& xs,
                    const char* x_name,
                    const std::function<ssb::StarTemplateParams(
                        double x, std::size_t client, uint64_t iter)>& make,
                    const std::vector<EngineMode>& modes,
                    std::size_t clients) {
  auto db = MakeDb(args, /*ssb_data=*/true);
  EngineConfig config;
  config.fact_table = "lineorder";
  config.cjoin_levels = ssb::PipelineLevels();
  config.admin_port = args.admin_port;
  SharingEngine engine(db.get(), config);
  if (engine.qpipe()->admin_server() != nullptr) {
    std::printf("# admin server on 127.0.0.1:%d\n",
                engine.qpipe()->admin_server()->port());
  }

  std::printf("%-10s %-15s %10s %12s %12s %10s\n", x_name, "mode",
              "qps", "mean(ms)", "admissions", "sp-hits");
  for (double x : xs) {
    for (EngineMode mode : modes) {
      engine.SetMode(mode);
      auto before = db->metrics()->Snapshot();
      DriverOptions driver_options;
      driver_options.num_clients = clients;
      driver_options.duration_seconds = args.seconds;
      driver_options.batched = args.batch;
      auto report = RunClosedLoop(
          driver_options,
          [&](std::size_t client, uint64_t iter) {
            return ssb::ParameterizedStarPlan(make(x, client, iter));
          },
          [&](const PlanNodeRef& plan) {
            auto r = engine.Execute(plan);
            return r.ok() ? Status::OK() : r.status();
          });
      auto delta = MetricsRegistry::Delta(before, db->metrics()->Snapshot());
      std::printf("%-10.3f %-15s %10.2f %12.1f %12lld %10lld\n", x,
                  std::string(EngineModeToString(mode)).c_str(),
                  report.throughput_qps, report.mean_response_ms,
                  static_cast<long long>(
                      delta[metrics::kCjoinQueriesAdmitted]),
                  static_cast<long long>(delta[metrics::kSpOpportunities]));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);

  switch (args.scenario) {
    case 1:
      RunScenario1(args);
      break;
    case 2: {
      // Impact of concurrency: x = clients, randomized variants.
      std::vector<double> xs = {1, 2, 4, 8, 16};
      if (args.clients > 0) xs = {double(args.clients)};
      std::printf("# Scenario II: impact of concurrency (x = clients)\n");
      for (double x : xs) {
        RunSsbScenario(
            args, {x}, "clients",
            [&](double, std::size_t client, uint64_t iter) {
              ssb::StarTemplateParams p;
              p.selectivity = args.selectivity;
              p.num_variants = args.variants;
              p.variant = static_cast<int>((client * 31 + iter) %
                                           args.variants);
              return p;
            },
            {EngineMode::kSpPull, EngineMode::kGqp},
            static_cast<std::size_t>(x));
      }
      break;
    }
    case 3: {
      // Impact of selectivity: low concurrency, x = selectivity.
      std::size_t clients = args.clients > 0 ? args.clients : 4;
      std::printf("# Scenario III: impact of selectivity (x = sel)\n");
      RunSsbScenario(
          args, {0.001, 0.01, 0.05, 0.10, 0.20}, "selectivity",
          [&](double x, std::size_t client, uint64_t iter) {
            ssb::StarTemplateParams p;
            p.selectivity = x;
            p.num_variants = args.variants;
            p.variant =
                static_cast<int>((client * 31 + iter) % args.variants);
            return p;
          },
          {EngineMode::kSpPull, EngineMode::kGqp}, clients);
      break;
    }
    case 4: {
      // Impact of similarity: x = number of distinct plans.
      std::size_t clients = args.clients > 0 ? args.clients : 16;
      std::printf("# Scenario IV: impact of similarity (x = #plans)\n");
      RunSsbScenario(
          args, {1, 2, 4, 8, 16}, "plans",
          [&](double x, std::size_t client, uint64_t iter) {
            ssb::StarTemplateParams p;
            p.selectivity = args.selectivity;
            p.num_variants = static_cast<int>(x);
            p.variant = static_cast<int>((client * 31 + iter) %
                                         p.num_variants);
            return p;
          },
          {EngineMode::kGqp, EngineMode::kGqpSp}, clients);
      break;
    }
    default:
      std::fprintf(stderr, "--scenario must be 1..4\n");
      return 2;
  }
  return 0;
}
