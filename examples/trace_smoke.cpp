// Traced smoke run: one pull-model sharing session (host + satellite)
// over a disk-resident TPC-H Q1, with a deliberately tiny SP budget and
// buffer pool so every instrumented layer fires — engine submit/collect,
// stage RunPacket, sharing-channel puts, SPL attach/park/spill/fault-back,
// IoScheduler jobs, and buffer-pool miss stalls.
//
//   ./trace_smoke [trace_json_path] [explain_json_path]
//
// Writes the Chrome trace-event JSON (load it in Perfetto /
// chrome://tracing) and one sharing-explain JSON line per query.
// ci/check_trace.sh runs this binary and validates both files with
// tools/trace_check.

#include <cstdio>

#include "common/trace.h"
#include "core/sharing_engine.h"
#include "workload/tpch.h"

using namespace sharing;

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : "trace_smoke.json";
  const char* explain_path = argc > 2 ? argv[2] : "trace_smoke_explain.json";

  // A pool far below the working set: the scan pays real (modeled) disk
  // reads, so bufferpool.miss_stall and io.prefetch show up in the trace.
  DatabaseOptions db_options;
  db_options.buffer_pool_frames = 256;
  Database db(db_options);
  db.SetMemoryResident();  // free generation
  auto table = tpch::GenerateLineitem(db.catalog(), db.buffer_pool(), 0.02);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  db.SetDiskResident();

  EngineConfig config;
  config.mode = EngineMode::kSpPull;
  config.trace_enabled = true;
  config.trace_buffer_events = 1 << 16;
  config.sp_memory_budget = 32;  // overflow early: spill + fault-back
  config.io_threads = 2;
  SharingEngine engine(&db, config);

  // Host + satellite on the same plan: the second submission attaches to
  // the in-flight session, and its lagging reader is what forces the
  // host's retained pages over budget.
  PlanNodeRef plan = tpch::MakeQ1Plan(90);
  QueryHandle host = engine.Submit(plan);
  QueryHandle satellite = engine.Submit(plan);
  auto host_result = host.Collect();
  if (!host_result.ok()) {
    std::fprintf(stderr, "host: %s\n",
                 host_result.status().ToString().c_str());
    return 1;
  }
  auto sat_result = satellite.Collect();
  if (!sat_result.ok()) {
    std::fprintf(stderr, "satellite: %s\n",
                 sat_result.status().ToString().c_str());
    return 1;
  }
  if (host_result.value().CanonicalRows() !=
      sat_result.value().CanonicalRows()) {
    std::fprintf(stderr, "host and satellite results differ\n");
    return 1;
  }
  std::printf("host and satellite agree: %zu rows\n",
              host_result.value().num_rows());

  // The per-query sharing-explain reports, one JSON line each.
  std::FILE* ef = std::fopen(explain_path, "w");
  if (ef == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", explain_path);
    return 1;
  }
  for (const auto* result : {&host_result.value(), &sat_result.value()}) {
    const auto& explain = result->explain();
    if (explain == nullptr) {
      std::fprintf(stderr, "result is missing its explain report\n");
      return 1;
    }
    std::printf("%s\n", explain->ToString().c_str());
    std::fprintf(ef, "%s\n", explain->ToJson().c_str());
  }
  std::fclose(ef);

  Status st = Trace::ExportChromeJsonToFile(trace_path);
  if (!st.ok()) {
    std::fprintf(stderr, "trace export: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trace: %zu events -> %s\nexplain: 2 queries -> %s\n",
              Trace::ResidentEvents(), trace_path, explain_path);
  return 0;
}
