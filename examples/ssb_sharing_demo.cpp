// SP vs GQP on a concurrent SSB workload (the demo's Scenarios II-IV in
// miniature): closed-loop clients submit star-query template
// instantiations; we measure throughput under QPipe+SP and under the CJOIN
// global query plan, with and without SP on the CJOIN stage.
//
//   ./ssb_sharing_demo [clients] [scale_factor] [num_plan_variants]
//                      [--admin-port=N]
//
// --admin-port=N starts the embedded admin server on 127.0.0.1:N
// (0 = ephemeral; the bound port is printed) so /metrics, /channels
// and /queries can be watched live while the windows run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/sharing_engine.h"
#include "server/admin_server.h"
#include "workload/driver.h"
#include "workload/ssb.h"

using namespace sharing;

int main(int argc, char** argv) {
  int admin_port = -1;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--admin-port=", 13) == 0) {
      admin_port = std::atoi(argv[i] + 13);
    } else {
      positional.push_back(argv[i]);
    }
  }
  std::size_t clients = positional.size() > 0 ? std::atoi(positional[0]) : 8;
  double sf = positional.size() > 1 ? std::atof(positional[1]) : 0.005;
  int variants = positional.size() > 2 ? std::atoi(positional[2]) : 4;

  DatabaseOptions db_options;
  db_options.buffer_pool_frames = 65536;
  Database db(db_options);
  std::printf("Generating SSB at SF=%.3f ...\n", sf);
  Status st = ssb::GenerateAll(db.catalog(), db.buffer_pool(), sf);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  EngineConfig config;
  config.fact_table = "lineorder";
  config.cjoin_levels = ssb::PipelineLevels();
  config.cjoin.max_queries = 64;
  config.admin_port = admin_port;
  SharingEngine engine(&db, config);
  if (engine.qpipe()->admin_server() != nullptr) {
    std::printf("admin server on 127.0.0.1:%d\n",
                engine.qpipe()->admin_server()->port());
  }

  std::printf(
      "\n%zu clients, %d distinct plan variant(s), 2s windows per mode\n\n",
      clients, variants);
  std::printf("%-15s %10s %10s %12s %12s %10s\n", "mode", "queries",
              "qps", "mean(ms)", "admissions", "sp-hits");

  for (EngineMode mode : {EngineMode::kSpPull, EngineMode::kGqp,
                          EngineMode::kGqpSp}) {
    engine.SetMode(mode);
    auto before = db.metrics()->Snapshot();

    DriverOptions driver_options;
    driver_options.num_clients = clients;
    driver_options.duration_seconds = 2.0;
    driver_options.batched = true;  // maximize sharing opportunities

    auto report = RunClosedLoop(
        driver_options,
        [&](std::size_t client, uint64_t iteration) {
          ssb::StarTemplateParams params;
          params.selectivity = 0.02;
          params.num_variants = variants;
          params.variant =
              static_cast<int>((client + iteration) % variants);
          return ssb::ParameterizedStarPlan(params);
        },
        [&](const PlanNodeRef& plan) {
          auto r = engine.Execute(plan);
          return r.ok() ? Status::OK() : r.status();
        });

    auto delta = MetricsRegistry::Delta(before, db.metrics()->Snapshot());
    std::printf("%-15s %10lld %10.2f %12.1f %12lld %10lld\n",
                std::string(EngineModeToString(mode)).c_str(),
                static_cast<long long>(report.completed),
                report.throughput_qps, report.mean_response_ms,
                static_cast<long long>(
                    delta[metrics::kCjoinQueriesAdmitted]),
                static_cast<long long>(delta[metrics::kSpOpportunities]));
  }

  std::printf(
      "\nWith few distinct plans, SP on the CJOIN stage (gqp+sp) serves\n"
      "repeat plans from the Shared Pages List instead of re-admitting\n"
      "them to the global query plan (compare the admissions column).\n");
  return 0;
}
