#include "workload/driver.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stopwatch.h"

namespace sharing {

std::string DriverReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "completed=%lld failed=%lld qps=%.2f mean=%.2fms p50=%.2fms "
                "p95=%.2fms cpu=%.2fs wall=%.2fs",
                static_cast<long long>(completed),
                static_cast<long long>(failed), throughput_qps,
                mean_response_ms, p50_response_ms, p95_response_ms,
                cpu_seconds, wall_seconds);
  return buf;
}

namespace {

/// Reusable barrier for wave-synchronized (batched) submission.
class WaveBarrier {
 public:
  explicit WaveBarrier(std::size_t parties) : parties_(parties) {}

  /// Returns once all live parties arrived. A party that quits calls
  /// Leave() so the rest stop waiting for it.
  void Arrive() {
    std::unique_lock<std::mutex> lock(mutex_);
    uint64_t gen = generation_;
    if (++arrived_ >= parties_) {
      arrived_ = 0;
      ++generation_;
      lock.unlock();
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
  }

  void Leave() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (parties_ > 0) --parties_;
    if (arrived_ >= parties_ && parties_ > 0) {
      arrived_ = 0;
      ++generation_;
      lock.unlock();
      cv_.notify_all();
    } else if (parties_ == 0) {
      ++generation_;
      lock.unlock();
      cv_.notify_all();
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace

DriverReport RunClosedLoop(const DriverOptions& options,
                           const PlanFactory& make_plan,
                           const ExecuteFn& execute) {
  const std::size_t n = std::max<std::size_t>(1, options.num_clients);
  std::vector<std::vector<double>> response_ms(n);
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> failed{0};
  std::atomic<bool> stop{false};
  WaveBarrier barrier(n);

  Stopwatch wall;
  CpuTimer cpu;

  auto client_loop = [&](std::size_t client) {
    uint64_t iteration = 0;
    for (;;) {
      if (stop.load(std::memory_order_relaxed) ||
          wall.ElapsedSeconds() >= options.duration_seconds ||
          (options.max_queries > 0 &&
           completed.load(std::memory_order_relaxed) >=
               options.max_queries)) {
        if (options.batched) barrier.Leave();
        return;
      }
      if (options.batched) barrier.Arrive();

      PlanNodeRef plan = make_plan(client, iteration);
      Stopwatch timer;
      Status st = execute(plan);
      if (st.ok()) {
        response_ms[client].push_back(timer.ElapsedSeconds() * 1e3);
        completed.fetch_add(1, std::memory_order_relaxed);
      } else {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
      ++iteration;
    }
  };

  std::vector<std::thread> clients;
  clients.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    clients.emplace_back(client_loop, c);
  }
  for (auto& t : clients) t.join();

  DriverReport report;
  report.wall_seconds = wall.ElapsedSeconds();
  report.cpu_seconds = cpu.ElapsedSeconds();
  report.completed = completed.load();
  report.failed = failed.load();
  report.throughput_qps =
      report.wall_seconds > 0 ? double(report.completed) / report.wall_seconds
                              : 0;

  std::vector<double> all;
  for (auto& v : response_ms) {
    all.insert(all.end(), v.begin(), v.end());
  }
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    double sum = 0;
    for (double v : all) sum += v;
    report.mean_response_ms = sum / double(all.size());
    auto at = [&](std::size_t permille) {
      std::size_t idx = (all.size() * permille) / 1000;
      return all[std::min(idx, all.size() - 1)];
    };
    report.p50_response_ms = at(500);
    report.p95_response_ms = at(950);
    report.p99_response_ms = at(990);
  }
  return report;
}

}  // namespace sharing
