// Closed-loop client driver: N clients iteratively submit template
// instantiations and wait for results, exactly like the demo's workload
// harness. Reports throughput and response-time statistics plus process
// CPU time (the GUI's auxiliary measurement).

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "exec/plan.h"

namespace sharing {

struct DriverOptions {
  std::size_t num_clients = 4;

  /// Measurement window; clients stop starting new queries after it ends.
  double duration_seconds = 2.0;

  /// When true, clients coordinate to submit their queries in waves
  /// (barrier between rounds). Batching maximizes SP opportunities and
  /// amortizes GQP admission cost (Scenario IV).
  bool batched = false;

  /// Optional cap on total completed queries (0 = run until the window
  /// closes). Useful for fixed-work experiments.
  int64_t max_queries = 0;
};

struct DriverReport {
  int64_t completed = 0;
  int64_t failed = 0;
  double wall_seconds = 0;
  double cpu_seconds = 0;
  double throughput_qps = 0;
  double mean_response_ms = 0;
  double p50_response_ms = 0;
  double p95_response_ms = 0;
  double p99_response_ms = 0;

  std::string ToString() const;
};

/// Produces the plan a given client submits at a given iteration (clients
/// call this concurrently; it must be thread-safe).
using PlanFactory = std::function<PlanNodeRef(std::size_t client,
                                              uint64_t iteration)>;

/// Executes one plan to completion (collects results) and returns its
/// status. Bound to an engine mode by the caller.
using ExecuteFn = std::function<Status(const PlanNodeRef&)>;

/// Runs the closed loop and gathers statistics.
DriverReport RunClosedLoop(const DriverOptions& options,
                           const PlanFactory& make_plan,
                           const ExecuteFn& execute);

}  // namespace sharing
