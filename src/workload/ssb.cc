#include "workload/ssb.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "storage/tuple.h"

namespace sharing::ssb {

namespace {

// Column indices (kept in sync with the schema builders below).
enum LoCol : std::size_t {
  kLoOrderKey = 0,
  kLoLineNumber,
  kLoCustKey,
  kLoPartKey,
  kLoSuppKey,
  kLoOrderDate,  // d_datekey value
  kLoOrderPriority,
  kLoShipPriority,
  kLoQuantity,
  kLoExtendedPrice,
  kLoOrdTotalPrice,
  kLoDiscount,
  kLoRevenue,
  kLoSupplyCost,
  kLoTax,
  kLoCommitDate,
  kLoShipMode,
};

enum DCol : std::size_t {
  kDDateKey = 0,
  kDDate,
  kDDayOfWeek,
  kDMonth,
  kDYear,
  kDYearMonthNum,
  kDYearMonth,
  kDDayNumInWeek,
  kDDayNumInMonth,
  kDDayNumInYear,
  kDMonthNumInYear,
  kDWeekNumInYear,
  kDSellingSeason,
  kDHolidayFl,
  kDWeekdayFl,
};

enum CCol : std::size_t {
  kCCustKey = 0,
  kCName,
  kCAddress,
  kCCity,
  kCNation,
  kCRegion,
  kCPhone,
  kCMktSegment,
};

enum SCol : std::size_t {
  kSSuppKey = 0,
  kSName,
  kSAddress,
  kSCity,
  kSNation,
  kSRegion,
  kSPhone,
};

enum PCol : std::size_t {
  kPPartKey = 0,
  kPName,
  kPMfgr,
  kPCategory,
  kPBrand1,
  kPColor,
  kPType,
  kPSize,
  kPContainer,
};

const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                           "MIDDLE EAST"};

// 25 nations, 5 per region (region = index / 5).
const char* kNations[25] = {
    "ALGERIA",   "ETHIOPIA", "KENYA",         "MOROCCO",   "MOZAMBIQUE",
    "ARGENTINA", "BRAZIL",   "CANADA",        "PERU",      "UNITED STATES",
    "CHINA",     "INDIA",    "INDONESIA",     "JAPAN",     "VIETNAM",
    "FRANCE",    "GERMANY",  "ROMANIA",       "RUSSIA",    "UNITED KINGDOM",
    "EGYPT",     "IRAN",     "IRAQ",          "JORDAN",    "SAUDI ARABIA"};

const char* kMktSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                               "HOUSEHOLD", "MACHINERY"};
const char* kColors[10] = {"almond", "aqua",  "azure",  "beige", "black",
                           "blue",   "brown", "coral",  "cream", "cyan"};
const char* kContainers[8] = {"SM CASE", "SM BOX",  "SM PACK", "SM PKG",
                              "LG CASE", "LG BOX",  "LG PACK", "LG PKG"};
const char* kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                             "TRUCK",   "MAIL", "FOB"};
const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                              "4-NOT SPECI", "5-LOW"};
const char* kMonths[12] = {"January", "February", "March",     "April",
                           "May",     "June",     "July",      "August",
                           "September", "October", "November", "December"};
const char* kDays[7] = {"Monday", "Tuesday", "Wednesday", "Thursday",
                        "Friday", "Saturday", "Sunday"};

/// City: 9-char nation prefix + one digit, e.g. "UNITED KI1" (SSB spec).
std::string CityOf(int nation_idx, int suffix) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%-9.9s%d", kNations[nation_idx], suffix);
  return buf;
}

}  // namespace

Schema LineorderSchema() {
  return Schema({
      Column::Int64("lo_orderkey"),
      Column::Int64("lo_linenumber"),
      Column::Int64("lo_custkey"),
      Column::Int64("lo_partkey"),
      Column::Int64("lo_suppkey"),
      Column::Int64("lo_orderdate"),
      Column::String("lo_orderpriority", 15),
      Column::String("lo_shippriority", 1),
      Column::Int64("lo_quantity"),
      Column::Double("lo_extendedprice"),
      Column::Double("lo_ordtotalprice"),
      Column::Int64("lo_discount"),
      Column::Double("lo_revenue"),
      Column::Double("lo_supplycost"),
      Column::Int64("lo_tax"),
      Column::Int64("lo_commitdate"),
      Column::String("lo_shipmode", 10),
  });
}

Schema DateSchema() {
  return Schema({
      Column::Int64("d_datekey"),
      Column::String("d_date", 18),
      Column::String("d_dayofweek", 9),
      Column::String("d_month", 9),
      Column::Int64("d_year"),
      Column::Int64("d_yearmonthnum"),
      Column::String("d_yearmonth", 7),
      Column::Int64("d_daynuminweek"),
      Column::Int64("d_daynuminmonth"),
      Column::Int64("d_daynuminyear"),
      Column::Int64("d_monthnuminyear"),
      Column::Int64("d_weeknuminyear"),
      Column::String("d_sellingseason", 12),
      Column::String("d_holidayfl", 1),
      Column::String("d_weekdayfl", 1),
  });
}

Schema CustomerSchema() {
  return Schema({
      Column::Int64("c_custkey"),
      Column::String("c_name", 25),
      Column::String("c_address", 25),
      Column::String("c_city", 10),
      Column::String("c_nation", 15),
      Column::String("c_region", 12),
      Column::String("c_phone", 15),
      Column::String("c_mktsegment", 10),
  });
}

Schema SupplierSchema() {
  return Schema({
      Column::Int64("s_suppkey"),
      Column::String("s_name", 25),
      Column::String("s_address", 25),
      Column::String("s_city", 10),
      Column::String("s_nation", 15),
      Column::String("s_region", 12),
      Column::String("s_phone", 15),
  });
}

Schema PartSchema() {
  return Schema({
      Column::Int64("p_partkey"),
      Column::String("p_name", 22),
      Column::String("p_mfgr", 6),
      Column::String("p_category", 7),
      Column::String("p_brand1", 9),
      Column::String("p_color", 11),
      Column::String("p_type", 25),
      Column::Int64("p_size"),
      Column::String("p_container", 10),
  });
}

SsbSizes SizesFor(double scale_factor) {
  SsbSizes sizes;
  sizes.lineorder = static_cast<int64_t>(6'000'000.0 * scale_factor);
  sizes.customer = static_cast<int64_t>(30'000.0 * scale_factor);
  sizes.supplier = static_cast<int64_t>(2'000.0 * scale_factor);
  if (scale_factor >= 1.0) {
    sizes.part = static_cast<int64_t>(
        200'000.0 * (1.0 + std::floor(std::log2(scale_factor))));
  } else {
    sizes.part = static_cast<int64_t>(200'000.0 * scale_factor);
  }
  // Floors for tiny test scale factors (SSB is not defined below SF 1).
  // Dimensions keep at least a few hundred rows so that a per-dimension
  // selectivity like the scenarios' 1% still selects a meaningful, nonzero
  // fraction — with a 20-row supplier table, 1% would quantize to zero and
  // every star join would be empty.
  sizes.lineorder = std::max<int64_t>(sizes.lineorder, 1000);
  sizes.customer = std::max<int64_t>(sizes.customer, 1000);
  sizes.supplier = std::max<int64_t>(sizes.supplier, 500);
  sizes.part = std::max<int64_t>(sizes.part, 500);
  return sizes;
}

namespace {

Status GenerateDate(Catalog* catalog, BufferPool* pool) {
  Table* table;
  SHARING_ASSIGN_OR_RETURN(table,
                           catalog->CreateTable("date", DateSchema(), pool));
  TableAppender appender(table);
  for (int32_t day = 0; day < 2556; ++day) {
    Date d{day};
    int y, m, dd;
    SplitDate(d, &y, &m, &dd);
    auto row_or = appender.AppendRow();
    SHARING_RETURN_NOT_OK(row_or.status());
    RowWriter w = row_or.value();

    int dow = day % 7;  // 1992-01-01 was a Wednesday; offset is cosmetic
    char yearmonth[8];
    std::snprintf(yearmonth, sizeof(yearmonth), "%.3s%d", kMonths[m - 1], y);
    const char* season = (m == 12 || m == 1) ? "Christmas"
                         : (m >= 6 && m <= 8) ? "Summer"
                                              : "Regular";
    Date year_start = MakeDate(y, 1, 1);
    int day_in_year = day - year_start.days_since_epoch + 1;

    w.SetInt64(kDDateKey, DateKey(d))
        .SetString(kDDate, DateToString(d))
        .SetString(kDDayOfWeek, kDays[dow])
        .SetString(kDMonth, kMonths[m - 1])
        .SetInt64(kDYear, y)
        .SetInt64(kDYearMonthNum, int64_t{y} * 100 + m)
        .SetString(kDYearMonth, yearmonth)
        .SetInt64(kDDayNumInWeek, dow + 1)
        .SetInt64(kDDayNumInMonth, dd)
        .SetInt64(kDDayNumInYear, day_in_year)
        .SetInt64(kDMonthNumInYear, m)
        .SetInt64(kDWeekNumInYear, (day_in_year - 1) / 7 + 1)
        .SetString(kDSellingSeason, season)
        .SetString(kDHolidayFl, (dow >= 5) ? "1" : "0")
        .SetString(kDWeekdayFl, (dow < 5) ? "1" : "0");
  }
  return appender.Finish();
}

Status GenerateCustomer(Catalog* catalog, BufferPool* pool, int64_t n,
                        Rng* rng) {
  Table* table;
  SHARING_ASSIGN_OR_RETURN(
      table, catalog->CreateTable("customer", CustomerSchema(), pool));
  TableAppender appender(table);
  for (int64_t k = 1; k <= n; ++k) {
    auto row_or = appender.AppendRow();
    SHARING_RETURN_NOT_OK(row_or.status());
    RowWriter w = row_or.value();
    int nation = static_cast<int>(rng->UniformInt(0, 24));
    char name[32];
    std::snprintf(name, sizeof(name), "Customer#%09lld",
                  static_cast<long long>(k));
    w.SetInt64(kCCustKey, k)
        .SetString(kCName, name)
        .SetString(kCAddress, rng->AlphaString(15))
        .SetString(kCCity, CityOf(nation, static_cast<int>(k % 10)))
        .SetString(kCNation, kNations[nation])
        .SetString(kCRegion, kRegions[nation / 5])
        .SetString(kCPhone, rng->AlphaString(15))
        .SetString(kCMktSegment, kMktSegments[rng->UniformInt(0, 4)]);
  }
  return appender.Finish();
}

Status GenerateSupplier(Catalog* catalog, BufferPool* pool, int64_t n,
                        Rng* rng) {
  Table* table;
  SHARING_ASSIGN_OR_RETURN(
      table, catalog->CreateTable("supplier", SupplierSchema(), pool));
  TableAppender appender(table);
  for (int64_t k = 1; k <= n; ++k) {
    auto row_or = appender.AppendRow();
    SHARING_RETURN_NOT_OK(row_or.status());
    RowWriter w = row_or.value();
    int nation = static_cast<int>(rng->UniformInt(0, 24));
    char name[32];
    std::snprintf(name, sizeof(name), "Supplier#%09lld",
                  static_cast<long long>(k));
    w.SetInt64(kSSuppKey, k)
        .SetString(kSName, name)
        .SetString(kSAddress, rng->AlphaString(15))
        .SetString(kSCity, CityOf(nation, static_cast<int>(k % 10)))
        .SetString(kSNation, kNations[nation])
        .SetString(kSRegion, kRegions[nation / 5])
        .SetString(kSPhone, rng->AlphaString(15));
  }
  return appender.Finish();
}

Status GeneratePart(Catalog* catalog, BufferPool* pool, int64_t n, Rng* rng) {
  Table* table;
  SHARING_ASSIGN_OR_RETURN(table,
                           catalog->CreateTable("part", PartSchema(), pool));
  TableAppender appender(table);
  for (int64_t k = 1; k <= n; ++k) {
    auto row_or = appender.AppendRow();
    SHARING_RETURN_NOT_OK(row_or.status());
    RowWriter w = row_or.value();
    int mfgr = static_cast<int>(rng->UniformInt(1, 5));
    int cat = static_cast<int>(rng->UniformInt(1, 5));
    int brand = static_cast<int>(rng->UniformInt(1, 40));
    char mfgr_s[8], cat_s[8], brand_s[12];
    std::snprintf(mfgr_s, sizeof(mfgr_s), "MFGR#%d", mfgr);
    std::snprintf(cat_s, sizeof(cat_s), "MFGR#%d%d", mfgr, cat);
    std::snprintf(brand_s, sizeof(brand_s), "MFGR#%d%d%d", mfgr, cat, brand);
    const char* color = kColors[rng->UniformInt(0, 9)];
    w.SetInt64(kPPartKey, k)
        .SetString(kPName, std::string(color) + " " +
                               kColors[rng->UniformInt(0, 9)])
        .SetString(kPMfgr, mfgr_s)
        .SetString(kPCategory, cat_s)
        .SetString(kPBrand1, brand_s)
        .SetString(kPColor, color)
        .SetString(kPType, rng->AlphaString(20))
        .SetInt64(kPSize, rng->UniformInt(1, 50))
        .SetString(kPContainer, kContainers[rng->UniformInt(0, 7)]);
  }
  return appender.Finish();
}

Status GenerateLineorder(Catalog* catalog, BufferPool* pool,
                         const SsbSizes& sizes, Rng* rng) {
  Table* table;
  SHARING_ASSIGN_OR_RETURN(
      table, catalog->CreateTable("lineorder", LineorderSchema(), pool));
  TableAppender appender(table);

  int64_t order = 1;
  int64_t line = 1;
  int64_t lines_this_order = rng->UniformInt(1, 7);
  int64_t order_total = 0;
  for (int64_t i = 0; i < sizes.lineorder; ++i) {
    auto row_or = appender.AppendRow();
    SHARING_RETURN_NOT_OK(row_or.status());
    RowWriter w = row_or.value();

    if (line > lines_this_order) {
      order += rng->UniformInt(1, 3);
      line = 1;
      lines_this_order = rng->UniformInt(1, 7);
      order_total = rng->UniformInt(10000, 500000);
    }

    int32_t day = static_cast<int32_t>(rng->UniformInt(0, 2555));
    Date odate{day};
    int32_t cday = std::min<int32_t>(2555, day + 30);
    Date cdate{cday};

    int64_t quantity = rng->UniformInt(1, 50);
    double ext_price =
        static_cast<double>(rng->UniformInt(90000, 10000000)) / 100.0;
    int64_t discount = rng->UniformInt(0, 10);
    double revenue =
        ext_price * static_cast<double>(100 - discount) / 100.0;
    double supply_cost = ext_price * 0.6;

    w.SetInt64(kLoOrderKey, order)
        .SetInt64(kLoLineNumber, line)
        .SetInt64(kLoCustKey, rng->UniformInt(1, sizes.customer))
        .SetInt64(kLoPartKey, rng->UniformInt(1, sizes.part))
        .SetInt64(kLoSuppKey, rng->UniformInt(1, sizes.supplier))
        .SetInt64(kLoOrderDate, DateKey(odate))
        .SetString(kLoOrderPriority, kPriorities[rng->UniformInt(0, 4)])
        .SetString(kLoShipPriority, "0")
        .SetInt64(kLoQuantity, quantity)
        .SetDouble(kLoExtendedPrice, ext_price)
        .SetDouble(kLoOrdTotalPrice, static_cast<double>(order_total))
        .SetInt64(kLoDiscount, discount)
        .SetDouble(kLoRevenue, revenue)
        .SetDouble(kLoSupplyCost, supply_cost)
        .SetInt64(kLoTax, rng->UniformInt(0, 8))
        .SetInt64(kLoCommitDate, DateKey(cdate))
        .SetString(kLoShipMode, kShipModes[rng->UniformInt(0, 6)]);
    ++line;
  }
  return appender.Finish();
}

}  // namespace

Status GenerateAll(Catalog* catalog, BufferPool* pool, double scale_factor,
                   uint64_t seed) {
  SsbSizes sizes = SizesFor(scale_factor);
  Rng rng(seed);
  SHARING_RETURN_NOT_OK(GenerateDate(catalog, pool));
  SHARING_RETURN_NOT_OK(GenerateCustomer(catalog, pool, sizes.customer, &rng));
  SHARING_RETURN_NOT_OK(GenerateSupplier(catalog, pool, sizes.supplier, &rng));
  SHARING_RETURN_NOT_OK(GeneratePart(catalog, pool, sizes.part, &rng));
  SHARING_RETURN_NOT_OK(GenerateLineorder(catalog, pool, sizes, &rng));
  return Status::OK();
}

std::vector<CJoinLevelSpec> PipelineLevels() {
  // Customer first: it is the dimension the scenario templates filter, so
  // putting it at the head of the chain lets the pipeline's zero-bitmap
  // short-circuit drop fact tuples before the unselective levels — the
  // same most-selective-first ordering CJOIN's planner would pick.
  return {
      {"customer", kLoCustKey, kCCustKey},
      {"date", kLoOrderDate, kDDateKey},
      {"supplier", kLoSuppKey, kSSuppKey},
      {"part", kLoPartKey, kPPartKey},
  };
}

// ---------------------------------------------------------------------------
// Query plan helpers
// ---------------------------------------------------------------------------

namespace {

struct Scans {
  Schema lo = LineorderSchema();
  Schema d = DateSchema();
  Schema c = CustomerSchema();
  Schema s = SupplierSchema();
  Schema p = PartSchema();
};

PlanNodeRef ScanLo(const Scans& t, ExprRef pred,
                   std::vector<std::size_t> proj) {
  return std::make_shared<ScanNode>("lineorder", t.lo, std::move(pred),
                                    std::move(proj));
}
PlanNodeRef ScanD(const Scans& t, ExprRef pred,
                  std::vector<std::size_t> proj) {
  return std::make_shared<ScanNode>("date", t.d, std::move(pred),
                                    std::move(proj));
}
PlanNodeRef ScanC(const Scans& t, ExprRef pred,
                  std::vector<std::size_t> proj) {
  return std::make_shared<ScanNode>("customer", t.c, std::move(pred),
                                    std::move(proj));
}
PlanNodeRef ScanS(const Scans& t, ExprRef pred,
                  std::vector<std::size_t> proj) {
  return std::make_shared<ScanNode>("supplier", t.s, std::move(pred),
                                    std::move(proj));
}
PlanNodeRef ScanP(const Scans& t, ExprRef pred,
                  std::vector<std::size_t> proj) {
  return std::make_shared<ScanNode>("part", t.p, std::move(pred),
                                    std::move(proj));
}

/// Join with key columns resolved by name in the two output schemas.
PlanNodeRef JoinOn(PlanNodeRef build, PlanNodeRef probe,
                   const std::string& build_col,
                   const std::string& probe_col) {
  auto bk = build->output_schema().ColumnIndex(build_col);
  auto pk = probe->output_schema().ColumnIndex(probe_col);
  SHARING_CHECK(bk.ok()) << bk.status().ToString();
  SHARING_CHECK(pk.ok()) << pk.status().ToString();
  return std::make_shared<JoinNode>(std::move(build), std::move(probe),
                                    bk.value(), pk.value());
}

std::size_t ColIdx(const PlanNodeRef& node, const std::string& name) {
  auto idx = node->output_schema().ColumnIndex(name);
  SHARING_CHECK(idx.ok()) << idx.status().ToString();
  return idx.value();
}

ExprRef NamedCol(const PlanNodeRef& node, const std::string& name) {
  std::size_t idx = ColIdx(node, name);
  return Col(idx, node->output_schema().column(idx).type);
}

PlanNodeRef Agg(PlanNodeRef child, std::vector<std::string> group_names,
                std::vector<AggSpec> aggs) {
  std::vector<std::size_t> group_by;
  group_by.reserve(group_names.size());
  for (const auto& n : group_names) group_by.push_back(ColIdx(child, n));
  return std::make_shared<AggregateNode>(std::move(child),
                                         std::move(group_by),
                                         std::move(aggs));
}

/// Q1.x: lineorder x date with fact-side discount/quantity filters;
/// revenue = sum(lo_extendedprice * lo_discount).
PlanNodeRef MakeQ1(ExprRef date_pred, ExprRef lo_pred) {
  Scans t;
  auto d = ScanD(t, std::move(date_pred), {kDDateKey});
  auto lo = ScanLo(t, std::move(lo_pred),
                   {kLoOrderDate, kLoExtendedPrice, kLoDiscount});
  auto join = JoinOn(d, lo, "d_datekey", "lo_orderdate");
  ExprRef revenue = Arith(ArithOp::kMul, NamedCol(join, "lo_extendedprice"),
                          NamedCol(join, "lo_discount"));
  return Agg(join, {}, {AggSpec::Sum(revenue, "revenue")});
}

/// Q2.x: part/supplier/date; group by d_year, p_brand1.
PlanNodeRef MakeQ2(ExprRef part_pred, ExprRef supp_pred) {
  Scans t;
  auto d = ScanD(t, TruePredicate(), {kDDateKey, kDYear});
  auto lo = ScanLo(t, TruePredicate(),
                   {kLoOrderDate, kLoPartKey, kLoSuppKey, kLoRevenue});
  auto j1 = JoinOn(d, lo, "d_datekey", "lo_orderdate");
  auto s = ScanS(t, std::move(supp_pred), {kSSuppKey});
  auto j2 = JoinOn(s, j1, "s_suppkey", "lo_suppkey");
  auto p = ScanP(t, std::move(part_pred), {kPPartKey, kPBrand1});
  auto j3 = JoinOn(p, j2, "p_partkey", "lo_partkey");
  ExprRef revenue = NamedCol(j3, "lo_revenue");
  auto agg = Agg(j3, {"d_year", "p_brand1"},
                 {AggSpec::Sum(revenue, "revenue")});
  return std::make_shared<SortNode>(
      agg, std::vector<SortKey>{{0, true}, {1, true}});
}

/// Q3.x: customer/supplier/date; group by the given columns, revenue sum,
/// ordered by year asc / revenue desc.
PlanNodeRef MakeQ3(ExprRef cust_pred, ExprRef supp_pred, ExprRef date_pred,
                   const std::string& c_group, const std::string& s_group) {
  Scans t;
  auto d = ScanD(t, std::move(date_pred), {kDDateKey, kDYear});
  auto lo = ScanLo(t, TruePredicate(),
                   {kLoOrderDate, kLoCustKey, kLoSuppKey, kLoRevenue});
  auto j1 = JoinOn(d, lo, "d_datekey", "lo_orderdate");
  auto s = ScanS(t, std::move(supp_pred),
                 {kSSuppKey, (s_group == "s_city" ? kSCity : kSNation)});
  auto j2 = JoinOn(s, j1, "s_suppkey", "lo_suppkey");
  auto c = ScanC(t, std::move(cust_pred),
                 {kCCustKey, (c_group == "c_city" ? kCCity : kCNation)});
  auto j3 = JoinOn(c, j2, "c_custkey", "lo_custkey");
  ExprRef revenue = NamedCol(j3, "lo_revenue");
  auto agg = Agg(j3, {c_group, s_group, "d_year"},
                 {AggSpec::Sum(revenue, "revenue")});
  // ORDER BY d_year asc, revenue desc.
  return std::make_shared<SortNode>(
      agg, std::vector<SortKey>{{2, true}, {3, false}});
}

/// Q4.x: all four dimensions; profit = sum(lo_revenue - lo_supplycost).
PlanNodeRef MakeQ4(ExprRef cust_pred, ExprRef supp_pred, ExprRef part_pred,
                   ExprRef date_pred, std::vector<std::string> group_cols,
                   std::size_t c_extra_col, std::size_t s_extra_col,
                   std::size_t p_extra_col) {
  Scans t;
  auto d = ScanD(t, std::move(date_pred), {kDDateKey, kDYear});
  auto lo = ScanLo(t, TruePredicate(),
                   {kLoOrderDate, kLoCustKey, kLoSuppKey, kLoPartKey,
                    kLoRevenue, kLoSupplyCost});
  auto j1 = JoinOn(d, lo, "d_datekey", "lo_orderdate");
  auto c = ScanC(t, std::move(cust_pred), {kCCustKey, c_extra_col});
  auto j2 = JoinOn(c, j1, "c_custkey", "lo_custkey");
  auto s = ScanS(t, std::move(supp_pred), {kSSuppKey, s_extra_col});
  auto j3 = JoinOn(s, j2, "s_suppkey", "lo_suppkey");
  auto p = ScanP(t, std::move(part_pred), {kPPartKey, p_extra_col});
  auto j4 = JoinOn(p, j3, "p_partkey", "lo_partkey");
  ExprRef profit = Arith(ArithOp::kSub, NamedCol(j4, "lo_revenue"),
                         NamedCol(j4, "lo_supplycost"));
  auto agg = Agg(j4, std::move(group_cols),
                 {AggSpec::Sum(profit, "profit")});
  return std::make_shared<SortNode>(
      agg, std::vector<SortKey>{{0, true}, {1, true}});
}

ExprRef StrEq(const Schema& schema, const std::string& col,
              const char* value) {
  return Cmp(CmpOp::kEq, ColNamed(schema, col), Lit(value));
}

ExprRef StrIn2(const Schema& schema, const std::string& col, const char* a,
               const char* b) {
  return Or(Cmp(CmpOp::kEq, ColNamed(schema, col), Lit(a)),
            Cmp(CmpOp::kEq, ColNamed(schema, col), Lit(b)));
}

}  // namespace

StatusOr<PlanNodeRef> MakeQuery(int flight, int variant) {
  Scans t;
  switch (flight) {
    case 1: {
      ExprRef qty_lo, disc_lo, date_pred;
      if (variant == 1) {
        date_pred = Cmp(CmpOp::kEq, ColNamed(t.d, "d_year"), Lit(int64_t{1993}));
        disc_lo = Between(ColNamed(t.lo, "lo_discount"), int64_t{1},
                          int64_t{3});
        qty_lo = Cmp(CmpOp::kLt, ColNamed(t.lo, "lo_quantity"),
                     Lit(int64_t{25}));
      } else if (variant == 2) {
        date_pred = Cmp(CmpOp::kEq, ColNamed(t.d, "d_yearmonthnum"),
                        Lit(int64_t{199401}));
        disc_lo = Between(ColNamed(t.lo, "lo_discount"), int64_t{4},
                          int64_t{6});
        qty_lo = Between(ColNamed(t.lo, "lo_quantity"), int64_t{26},
                         int64_t{35});
      } else if (variant == 3) {
        date_pred = And(Cmp(CmpOp::kEq, ColNamed(t.d, "d_weeknuminyear"),
                            Lit(int64_t{6})),
                        Cmp(CmpOp::kEq, ColNamed(t.d, "d_year"),
                            Lit(int64_t{1994})));
        disc_lo = Between(ColNamed(t.lo, "lo_discount"), int64_t{5},
                          int64_t{7});
        qty_lo = Between(ColNamed(t.lo, "lo_quantity"), int64_t{26},
                         int64_t{35});
      } else {
        return Status::InvalidArgument("Q1 variant must be 1..3");
      }
      return MakeQ1(date_pred, And(disc_lo, qty_lo));
    }
    case 2: {
      if (variant == 1) {
        return MakeQ2(StrEq(t.p, "p_category", "MFGR#12"),
                      StrEq(t.s, "s_region", "AMERICA"));
      }
      if (variant == 2) {
        return MakeQ2(Between(ColNamed(t.p, "p_brand1"),
                              std::string("MFGR#2221"),
                              std::string("MFGR#2228")),
                      StrEq(t.s, "s_region", "ASIA"));
      }
      if (variant == 3) {
        return MakeQ2(StrEq(t.p, "p_brand1", "MFGR#2239"),
                      StrEq(t.s, "s_region", "EUROPE"));
      }
      return Status::InvalidArgument("Q2 variant must be 1..3");
    }
    case 3: {
      ExprRef years = Between(ColNamed(t.d, "d_year"), int64_t{1992},
                              int64_t{1997});
      if (variant == 1) {
        return MakeQ3(StrEq(t.c, "c_region", "ASIA"),
                      StrEq(t.s, "s_region", "ASIA"), years, "c_nation",
                      "s_nation");
      }
      if (variant == 2) {
        return MakeQ3(StrEq(t.c, "c_nation", "UNITED STATES"),
                      StrEq(t.s, "s_nation", "UNITED STATES"), years,
                      "c_city", "s_city");
      }
      if (variant == 3) {
        return MakeQ3(StrIn2(t.c, "c_city", "UNITED KI1", "UNITED KI5"),
                      StrIn2(t.s, "s_city", "UNITED KI1", "UNITED KI5"),
                      years, "c_city", "s_city");
      }
      if (variant == 4) {
        return MakeQ3(StrIn2(t.c, "c_city", "UNITED KI1", "UNITED KI5"),
                      StrIn2(t.s, "s_city", "UNITED KI1", "UNITED KI5"),
                      Cmp(CmpOp::kEq, ColNamed(t.d, "d_yearmonth"),
                          Lit("Dec1997")),
                      "c_city", "s_city");
      }
      return Status::InvalidArgument("Q3 variant must be 1..4");
    }
    case 4: {
      ExprRef mfgr12 = StrIn2(t.p, "p_mfgr", "MFGR#1", "MFGR#2");
      ExprRef years97_98 =
          Between(ColNamed(t.d, "d_year"), int64_t{1997}, int64_t{1998});
      if (variant == 1) {
        return MakeQ4(StrEq(t.c, "c_region", "AMERICA"),
                      StrEq(t.s, "s_region", "AMERICA"), mfgr12,
                      TruePredicate(), {"d_year", "c_nation"}, kCNation,
                      kSNation, kPMfgr);
      }
      if (variant == 2) {
        return MakeQ4(StrEq(t.c, "c_region", "AMERICA"),
                      StrEq(t.s, "s_region", "AMERICA"), mfgr12,
                      years97_98, {"d_year", "s_nation", "p_category"},
                      kCNation, kSNation, kPCategory);
      }
      if (variant == 3) {
        return MakeQ4(StrEq(t.c, "c_region", "AMERICA"),
                      StrEq(t.s, "s_nation", "UNITED STATES"),
                      StrEq(t.p, "p_category", "MFGR#14"), years97_98,
                      {"d_year", "s_city", "p_brand1"}, kCNation, kSCity,
                      kPBrand1);
      }
      return Status::InvalidArgument("Q4 variant must be 1..3");
    }
    default:
      return Status::InvalidArgument("flight must be 1..4");
  }
}

PlanNodeRef ParameterizedStarPlan(const StarTemplateParams& params) {
  Scans t;
  // The window must not exceed the smallest key range the template filters
  // (customer is floored at 1000 rows), or rotated variants would select a
  // window that lies entirely outside the key space — an accidentally
  // empty query instead of a `selectivity` fraction.
  constexpr int64_t kWindow = 1000;
  int64_t threshold = static_cast<int64_t>(params.selectivity * kWindow);
  if (threshold < 1) threshold = 1;
  if (threshold > kWindow) threshold = kWindow;
  int num_variants = params.num_variants < 1 ? 1 : params.num_variants;
  int64_t phase =
      (static_cast<int64_t>(params.variant % num_variants) * 9973) % kWindow;

  // ((c_custkey % window + phase) % window) < threshold keeps a
  // ~`selectivity` fraction of the customer dimension for any key range;
  // the phase rotates the kept window so different variants are textually
  // different plans with identical cost.
  ExprRef cust_pred =
      Cmp(CmpOp::kLt,
          Arith(ArithOp::kMod,
                Arith(ArithOp::kAdd,
                      Arith(ArithOp::kMod, ColNamed(t.c, "c_custkey"),
                            Lit(kWindow)),
                      Lit(phase)),
                Lit(kWindow)),
          Lit(threshold));

  // Most-selective join first (customer carries the template's predicate):
  // the inner join prunes the pipeline to ~`selectivity` of the fact rows
  // before the unselective date/supplier joins — the plan any optimizer
  // would emit, and the fair query-centric baseline for the GQP comparison.
  auto lo = ScanLo(t, TruePredicate(),
                   {kLoOrderDate, kLoCustKey, kLoSuppKey, kLoPartKey,
                    kLoRevenue});
  auto c = ScanC(t, cust_pred, {kCCustKey, kCNation});
  auto j1 = JoinOn(c, lo, "c_custkey", "lo_custkey");
  auto d = ScanD(t, TruePredicate(), {kDDateKey, kDYear});
  auto j2 = JoinOn(d, j1, "d_datekey", "lo_orderdate");
  auto s = ScanS(t, TruePredicate(), {kSSuppKey, kSNation});
  PlanNodeRef top = JoinOn(s, j2, "s_suppkey", "lo_suppkey");
  if (params.join_part) {
    auto p = ScanP(t, TruePredicate(), {kPPartKey, kPCategory});
    top = JoinOn(p, top, "p_partkey", "lo_partkey");
  }
  ExprRef revenue = NamedCol(top, "lo_revenue");
  // Different aggregation tops over the *same* star sub-plan: queries with
  // equal (selectivity, variant) but different agg_variant share work only
  // below the aggregation — exactly the common-sub-plan situation of the
  // paper's Fig. 1a / Fig. 2 that SP on the CJOIN stage exploits. Eight
  // shapes: {SUM, AVG, MIN, MAX}(lo_revenue) x group by {d_year, d_datekey}.
  std::string group =
      (params.agg_variant & 4) != 0 ? "d_datekey" : "d_year";
  switch (params.agg_variant & 3) {
    case 1:
      return Agg(top, {group}, {AggSpec::Avg(revenue, "revenue")});
    case 2:
      return Agg(top, {group}, {AggSpec::Min(revenue, "revenue")});
    case 3:
      return Agg(top, {group}, {AggSpec::Max(revenue, "revenue")});
    default:
      return Agg(top, {group}, {AggSpec::Sum(revenue, "revenue")});
  }
}

}  // namespace sharing::ssb
