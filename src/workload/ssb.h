// Star Schema Benchmark (SSB): data generator and query templates.
//
// Scenarios II-IV run concurrent clients over instantiations of an SSB
// query template against the lineorder fact table and its four dimensions
// (date, customer, supplier, part). All keys are int64; lo_orderdate /
// lo_commitdate store d_datekey values (yyyymmdd) so every join is an
// int64 equi-join, as CJOIN expects.
//
// Besides the 13 standard queries (Q1.1-Q4.3), ParameterizedStarPlan
// exposes the demo GUI's knobs directly: target selectivity, the number of
// distinct plan variants in the mix (fewer variants => more common
// sub-plans => more SP opportunities), and which dimensions to join.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cjoin/pipeline.h"
#include "common/random.h"
#include "common/status_or.h"
#include "exec/plan.h"
#include "storage/table.h"

namespace sharing::ssb {

Schema LineorderSchema();
Schema DateSchema();
Schema CustomerSchema();
Schema SupplierSchema();
Schema PartSchema();

/// Row counts at `scale_factor`: lineorder 6,000,000*SF; customer
/// 30,000*SF; supplier 2,000*SF; part 200,000*(1+floor(log2(SF)) when
/// SF>=1, else scaled down); date 2,556 (fixed 7 years).
struct SsbSizes {
  int64_t lineorder = 0;
  int64_t customer = 0;
  int64_t supplier = 0;
  int64_t part = 0;
  int64_t date = 2556;
};
SsbSizes SizesFor(double scale_factor);

/// Generates all five SSB tables into the catalog. Deterministic per seed.
Status GenerateAll(Catalog* catalog, BufferPool* pool, double scale_factor,
                   uint64_t seed = 42);

/// CJOIN pipeline levels for the SSB star schema (date, customer,
/// supplier, part — each joined through its lineorder foreign key).
std::vector<CJoinLevelSpec> PipelineLevels();

/// Standard SSB queries. `flight` in 1..4, `variant` in 1..3 (4.x has
/// 1..3 as well; Q3 has 4 variants: 1..4).
StatusOr<PlanNodeRef> MakeQuery(int flight, int variant);

/// The demo's parameterized template (a Q3-style star query):
///
///   SELECT d_year, sum(lo_revenue)
///   FROM lineorder JOIN customer JOIN supplier JOIN date
///   WHERE c_custkey % 100 < sel_c AND (c_custkey + phase_c) predicate
///     AND s_suppkey % 100 < sel_s ...
///   GROUP BY d_year
///
/// Selectivity: each dimension keeps ~`selectivity` of its rows (so the
/// join keeps ~selectivity^2 of lineorder via customer x supplier).
/// `variant` selects one of `num_variants` rotation phases: plans with the
/// same (selectivity, variant) are textually identical — SP-shareable —
/// while different variants are disjoint plans. This reproduces the GUI's
/// "number of possible different plans" knob.
struct StarTemplateParams {
  double selectivity = 0.01;   // per-dimension fraction kept
  int num_variants = 16;       // distinct plans in the mix
  int variant = 0;             // which plan [0, num_variants)
  bool join_part = false;      // also join the part dimension
  /// Which aggregation tops the star sub-plan (0..7: {SUM,AVG,MIN,MAX} of
  /// lo_revenue grouped by d_year or d_datekey). Distinct values give
  /// textually different plans that still share the whole join sub-plan —
  /// the paper Fig. 1a shape.
  int agg_variant = 0;
};
PlanNodeRef ParameterizedStarPlan(const StarTemplateParams& params);

}  // namespace sharing::ssb
