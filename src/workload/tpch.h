// TPC-H subset: the `lineitem` table generator and query Q1.
//
// Scenario I of the demo runs identical TPC-H Q1 instances concurrently to
// expose the difference between push- and pull-based SP at the table-scan
// stage. Only lineitem/Q1 are needed from TPC-H; SSB (ssb.h) covers the
// star-join scenarios.

#pragma once

#include <cstdint>

#include "common/status_or.h"
#include "exec/plan.h"
#include "storage/table.h"

namespace sharing::tpch {

/// Full 16-column TPC-H lineitem schema (fixed-width encoding; dates as
/// engine dates, decimals as doubles).
Schema LineitemSchema();

/// Generates `lineitem` at `scale_factor` (6,000,000 rows/SF) into the
/// catalog. Deterministic for a given seed.
StatusOr<Table*> GenerateLineitem(Catalog* catalog, BufferPool* pool,
                                  double scale_factor, uint64_t seed = 42);

/// TPC-H Q1 plan:
///   SELECT l_returnflag, l_linestatus, sum(qty), sum(extprice),
///          sum(extprice*(1-disc)), sum(extprice*(1-disc)*(1+tax)),
///          avg(qty), avg(extprice), avg(disc), count(*)
///   FROM lineitem WHERE l_shipdate <= date '1998-12-01' - `delta` days
///   GROUP BY l_returnflag, l_linestatus
/// (ORDER BY omitted by default: the demo's scenario measures scan+agg;
/// pass `with_sort` to add it.)
PlanNodeRef MakeQ1Plan(int delta_days = 90, bool with_sort = false);

}  // namespace sharing::tpch
