#include "workload/tpch.h"

#include "common/logging.h"
#include "common/random.h"
#include "storage/tuple.h"

namespace sharing::tpch {

namespace {

enum LineitemCol : std::size_t {
  kOrderKey = 0,
  kPartKey,
  kSuppKey,
  kLineNumber,
  kQuantity,
  kExtendedPrice,
  kDiscount,
  kTax,
  kReturnFlag,
  kLineStatus,
  kShipDate,
  kCommitDate,
  kReceiptDate,
  kShipInstruct,
  kShipMode,
  kComment,
};

constexpr int64_t kRowsPerSf = 6'000'000;

const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kShipInstructs[] = {"DELIVER IN PERSON", "COLLECT COD",
                                "NONE", "TAKE BACK RETURN"};

}  // namespace

Schema LineitemSchema() {
  return Schema({
      Column::Int64("l_orderkey"),
      Column::Int64("l_partkey"),
      Column::Int64("l_suppkey"),
      Column::Int64("l_linenumber"),
      Column::Double("l_quantity"),
      Column::Double("l_extendedprice"),
      Column::Double("l_discount"),
      Column::Double("l_tax"),
      Column::String("l_returnflag", 1),
      Column::String("l_linestatus", 1),
      Column::DateCol("l_shipdate"),
      Column::DateCol("l_commitdate"),
      Column::DateCol("l_receiptdate"),
      Column::String("l_shipinstruct", 25),
      Column::String("l_shipmode", 10),
      Column::String("l_comment", 27),
  });
}

StatusOr<Table*> GenerateLineitem(Catalog* catalog, BufferPool* pool,
                                  double scale_factor, uint64_t seed) {
  Table* table;
  SHARING_ASSIGN_OR_RETURN(
      table, catalog->CreateTable("lineitem", LineitemSchema(), pool));

  const int64_t n_rows =
      static_cast<int64_t>(static_cast<double>(kRowsPerSf) * scale_factor);
  Rng rng(seed);
  const Date ship_lo = MakeDate(1992, 1, 2);
  const Date ship_hi = MakeDate(1998, 12, 1);
  const Date current = MakeDate(1995, 6, 17);  // TPC-H "currentdate"

  TableAppender appender(table);
  int64_t order = 1;
  int64_t line_in_order = 1;
  int64_t lines_this_order = rng.UniformInt(1, 7);
  for (int64_t i = 0; i < n_rows; ++i) {
    auto row_or = appender.AppendRow();
    SHARING_RETURN_NOT_OK(row_or.status());
    RowWriter w = row_or.value();

    if (line_in_order > lines_this_order) {
      order += rng.UniformInt(1, 3);
      line_in_order = 1;
      lines_this_order = rng.UniformInt(1, 7);
    }

    double quantity = static_cast<double>(rng.UniformInt(1, 50));
    double part_price =
        static_cast<double>(rng.UniformInt(90000, 10500000)) / 100.0;
    double ext_price = quantity * part_price / 10.0;
    double discount = static_cast<double>(rng.UniformInt(0, 10)) / 100.0;
    double tax = static_cast<double>(rng.UniformInt(0, 8)) / 100.0;

    Date ship{static_cast<int32_t>(rng.UniformInt(
        ship_lo.days_since_epoch, ship_hi.days_since_epoch))};
    Date commit{ship.days_since_epoch +
                static_cast<int32_t>(rng.UniformInt(-30, 30))};
    if (commit.days_since_epoch < 0) commit.days_since_epoch = 0;
    Date receipt{ship.days_since_epoch +
                 static_cast<int32_t>(rng.UniformInt(1, 30))};

    const char* rf;
    if (receipt <= current) {
      rf = rng.Bernoulli(0.5) ? "R" : "A";
    } else {
      rf = "N";
    }
    const char* ls = ship > current ? "O" : "F";

    w.SetInt64(kOrderKey, order)
        .SetInt64(kPartKey, rng.UniformInt(1, 200000))
        .SetInt64(kSuppKey, rng.UniformInt(1, 10000))
        .SetInt64(kLineNumber, line_in_order)
        .SetDouble(kQuantity, quantity)
        .SetDouble(kExtendedPrice, ext_price)
        .SetDouble(kDiscount, discount)
        .SetDouble(kTax, tax)
        .SetString(kReturnFlag, rf)
        .SetString(kLineStatus, ls)
        .SetDate(kShipDate, ship)
        .SetDate(kCommitDate, commit)
        .SetDate(kReceiptDate, receipt)
        .SetString(kShipInstruct,
                   kShipInstructs[rng.UniformInt(0, 3)])
        .SetString(kShipMode, kShipModes[rng.UniformInt(0, 6)])
        .SetString(kComment, rng.AlphaString(12));
    ++line_in_order;
  }
  SHARING_RETURN_NOT_OK(appender.Finish());
  return table;
}

PlanNodeRef MakeQ1Plan(int delta_days, bool with_sort) {
  Schema schema = LineitemSchema();
  Date cutoff = MakeDate(1998, 12, 1);
  cutoff.days_since_epoch -= delta_days;

  ExprRef pred = Cmp(CmpOp::kLe, Col(kShipDate, ValueType::kDate),
                     Lit(cutoff));

  // Scan projects the columns Q1 consumes; indices below are positions in
  // the *projected* schema.
  std::vector<std::size_t> projection = {kQuantity,   kExtendedPrice,
                                         kDiscount,   kTax,
                                         kReturnFlag, kLineStatus};
  auto scan = std::make_shared<ScanNode>("lineitem", schema, pred,
                                         projection);

  constexpr std::size_t kPQty = 0, kPPrice = 1, kPDisc = 2, kPTax = 3,
                        kPRf = 4, kPLs = 5;
  ExprRef qty = Col(kPQty, ValueType::kDouble);
  ExprRef price = Col(kPPrice, ValueType::kDouble);
  ExprRef disc = Col(kPDisc, ValueType::kDouble);
  ExprRef tax = Col(kPTax, ValueType::kDouble);
  ExprRef disc_price =
      Arith(ArithOp::kMul, price,
            Arith(ArithOp::kSub, Lit(1.0), disc));
  ExprRef charge = Arith(ArithOp::kMul, disc_price,
                         Arith(ArithOp::kAdd, Lit(1.0), tax));

  std::vector<AggSpec> aggs = {
      AggSpec::Sum(qty, "sum_qty"),
      AggSpec::Sum(price, "sum_base_price"),
      AggSpec::Sum(disc_price, "sum_disc_price"),
      AggSpec::Sum(charge, "sum_charge"),
      AggSpec::Avg(qty, "avg_qty"),
      AggSpec::Avg(price, "avg_price"),
      AggSpec::Avg(disc, "avg_disc"),
      AggSpec::Count("count_order"),
  };
  PlanNodeRef agg = std::make_shared<AggregateNode>(
      scan, std::vector<std::size_t>{kPRf, kPLs}, std::move(aggs));

  if (!with_sort) return agg;
  return std::make_shared<SortNode>(
      agg, std::vector<SortKey>{{0, true}, {1, true}});
}

}  // namespace sharing::tpch
