#include "cjoin/dimension_table.h"

#include <cstring>

#include "common/logging.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/tuple.h"

namespace sharing {

DimensionHashTable::DimensionHashTable(const Table* dim, std::size_t pk_col,
                                       std::size_t max_queries)
    : dim_(dim),
      pk_col_(pk_col),
      max_queries_(max_queries),
      neutral_(max_queries) {
  SHARING_CHECK(pk_col < dim->schema().num_columns());
  SHARING_CHECK(dim->schema().column(pk_col).type == ValueType::kInt64)
      << "dimension key must be int64";
}

Status DimensionHashTable::AdmitQuery(std::size_t bit,
                                      const Expr& predicate) {
  const Schema& schema = dim_->schema();
  const std::size_t width = schema.row_width();
  BufferPool* pool = dim_->buffer_pool();
  for (std::size_t p = 0; p < dim_->num_pages(); ++p) {
    PageGuard guard;
    SHARING_ASSIGN_OR_RETURN(guard, pool->FetchPage(dim_->page_id(p)));
    const uint8_t* frame = guard.data();
    const uint32_t n = page_layout::RowCount(frame);
    for (uint32_t i = 0; i < n; ++i) {
      const uint8_t* raw = page_layout::RowAt(frame, i);
      TupleRef row(raw, &schema);
      if (!predicate.EvalBool(row)) continue;
      int64_t key = row.GetInt64(pk_col_);
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        auto entry = std::make_unique<Entry>();
        entry->row.assign(raw, raw + width);
        entry->bits = QuerySet(max_queries_);
        it = entries_.emplace(key, std::move(entry)).first;
      }
      it->second->bits.Set(bit);
    }
  }
  return Status::OK();
}

void DimensionHashTable::RemoveQuery(std::size_t bit) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second->bits.Clear(bit);
    if (it->second->bits.None()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sharing
