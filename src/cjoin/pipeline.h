// CJoinPipeline: the Global Query Plan operator (CJOIN, VLDBJ'11), as
// integrated into QPipe by the demo paper (Fig. 2).
//
// One always-on pipeline evaluates the star joins of every concurrent
// query:
//
//   preprocessor ──► shared hash-join chain (one level per dimension)
//        │                       │ bitwise AND of query bitmaps
//        ▼                       ▼
//   circular scan of the    distributor: routes each surviving joined
//   fact table; admission   tuple to the queries whose bit is set
//   marks on the cursor
//
// Query admission is *mark-based*: a query becomes active at the current
// scan position and completes when the scan has delivered exactly
// `num_fact_pages` pages to it (one full cycle, no pipeline flush).
// Admissions are applied by the driver between page dispatches under an
// exclusive epoch lock; queries arriving together are admitted in one
// epoch, which is what makes client-side batching amortize admission cost
// (Scenario IV / Ablation D).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "cjoin/dimension_table.h"
#include "cjoin/star_query.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/exec_context.h"
#include "exec/page_stream.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace sharing {

struct CJoinOptions {
  /// Bitmap capacity == max concurrently admitted queries. Admissions
  /// beyond this wait for a free bit.
  std::size_t max_queries = 64;

  /// Page-processing worker threads (the pipeline's intra-operator
  /// parallelism).
  std::size_t workers = 2;

  /// Fact pages in flight at once (prefetch window of the circular scan).
  std::size_t max_in_flight_pages = 4;
};

/// One shared hash-join level: which dimension it joins and through which
/// fact foreign key.
struct CJoinLevelSpec {
  std::string dim_table;
  std::size_t fk_col_in_fact = 0;
  std::size_t pk_col_in_dim = 0;
};

class CJoinPipeline {
 public:
  /// The pipeline is built once for a star schema: the fact table plus one
  /// level per dimension (queries may use any subset of the levels).
  CJoinPipeline(Catalog* catalog, const std::string& fact_table,
                std::vector<CJoinLevelSpec> levels, CJoinOptions options,
                MetricsRegistry* metrics = &MetricsRegistry::Global());
  ~CJoinPipeline();

  SHARING_DISALLOW_COPY_AND_MOVE(CJoinPipeline);

  /// Admits `spec` and blocks until the query has seen one full cycle of
  /// the fact table. Results (pages of spec.OutputSchema()) stream into
  /// `sink`, which is closed with the query's terminal status.
  Status ExecuteQuery(const StarQuerySpec& spec, ExecContextRef ctx,
                      PageSinkRef sink);

  const std::string& fact_table_name() const { return fact_->name(); }
  const Table* fact_table() const { return fact_; }

  std::size_t ActiveQueries() const {
    return active_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Level {
    CJoinLevelSpec spec;
    std::size_t fk_offset = 0;  // byte offset of the fk in the fact row
    std::unique_ptr<DimensionHashTable> ht;
    std::size_t live_queries = 0;  // active queries joining this level
  };

  /// Row-assembly instruction: copy `width` bytes from the fact row
  /// (level < 0) or the matched entry of `level` into the output row.
  struct CopyOp {
    int level = -1;
    std::size_t src_off = 0;
    std::size_t dst_off = 0;
    std::size_t width = 0;
  };

  struct ActiveQuery {
    StarQuerySpec spec;
    ExecContextRef ctx;
    PageSinkRef sink;
    Schema output_schema;
    std::vector<CopyOp> copy_ops;
    std::vector<std::size_t> levels_used;  // pipeline level indices
    bool trivial_fact_pred = false;

    std::size_t bit = 0;
    std::atomic<int64_t> pages_remaining{0};

    /// Driver-thread-only: page tasks still to be dispatched to this
    /// query. A query appears in exactly `num_fact_pages` task snapshots
    /// (its one full circular-scan cycle); afterwards it leaves the
    /// dispatch list but stays admitted until the last task completes.
    int64_t dispatches_left = 0;
    std::atomic<bool> muted{false};  // cancelled or consumer gone

    std::mutex emit_mutex;
    std::shared_ptr<RowPage> builder;

    /// Set (once) when the circular fact scan hits an I/O failure while
    /// this query is still owed pages; the query completes with it.
    std::mutex fail_mutex;
    Status fail_status;

    std::mutex done_mutex;
    std::condition_variable done_cv;
    bool done = false;
    Status final_status;
  };
  using ActiveQueryRef = std::shared_ptr<ActiveQuery>;

  /// Snapshot handed to a page-processing task.
  struct PageTask {
    PageGuard guard;
    std::vector<ActiveQueryRef> queries;
  };

  StatusOr<ActiveQueryRef> BuildActiveQuery(const StarQuerySpec& spec,
                                            ExecContextRef ctx,
                                            PageSinkRef sink) const;

  void DriverLoop();
  void AdmitPending();
  void ProcessPage(std::shared_ptr<PageTask> task);
  void FinalizeQuery(const ActiveQueryRef& q, Status final);
  void SignalDone(const ActiveQueryRef& q, Status final);

  Catalog* catalog_;
  Table* fact_;
  CJoinOptions options_;
  MetricsRegistry* metrics_;
  Counter* fact_tuples_in_;
  Counter* tuples_out_;
  Counter* tuples_dropped_;
  Counter* queries_admitted_;
  Counter* queries_completed_;
  Counter* bitmap_and_ops_;
  Counter* admission_epochs_;
  Counter* admission_micros_;

  std::vector<Level> levels_;
  std::size_t bitmap_words_;

  // Epoch lock: shared while probing pages, exclusive for admission /
  // departure (hash-table and bitmap mutations).
  std::shared_mutex epoch_mutex_;
  std::vector<ActiveQueryRef> active_;
  std::vector<ActiveQueryRef> slots_;  // bit -> query
  std::vector<std::size_t> free_bits_;
  std::atomic<std::size_t> active_count_{0};

  // Driver state.
  std::mutex driver_mutex_;
  std::condition_variable driver_cv_;
  std::deque<ActiveQueryRef> pending_;
  uint64_t cursor_ = 0;
  bool shutdown_ = false;

  /// Queries still owed page dispatches. Owned by the driver thread
  /// exclusively (no locking needed).
  std::vector<ActiveQueryRef> dispatching_;

  // In-flight page window.
  std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_ = 0;

  std::unique_ptr<ThreadPool> workers_;
  std::thread driver_;
};

}  // namespace sharing
