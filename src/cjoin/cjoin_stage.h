// CJoinStage: the CJOIN operator packaged as a QPipe stage (paper Fig. 2).
//
// Packets arriving here carry star-join sub-plans; the stage admits them to
// the shared CJOIN pipeline. Because it is a regular Stage, all of QPipe's
// SP machinery applies: with SP enabled (pull mode), two queries whose
// star sub-plans are identical share one CJOIN admission — the satellite
// reads the host's Shared Pages List, "saving admission costs and
// unnecessary book-keeping costs" exactly as the paper describes.

#pragma once

#include "cjoin/pipeline.h"
#include "cjoin/star_query.h"
#include "qpipe/engine.h"
#include "qpipe/stage.h"

namespace sharing {

class CJoinStage final : public Stage {
 public:
  CJoinStage(CJoinPipeline* pipeline, Options options,
             MetricsRegistry* metrics)
      : Stage("CJOIN", options, metrics), pipeline_(pipeline) {}

  CJoinPipeline* pipeline() const { return pipeline_; }

 protected:
  void RunPacket(Packet& packet) override;

 private:
  CJoinPipeline* pipeline_;
};

/// Routes CJOIN-eligible join sub-plans of `engine` to `stage`: installs a
/// join-dispatch hook that converts star sub-plans to StarQuerySpecs and
/// submits them as CJOIN packets; non-star joins fall back to the
/// query-centric JOIN stage. Returns the shared stage so callers can flip
/// its SP mode (GQP vs GQP+SP).
std::shared_ptr<CJoinStage> AttachCJoinToEngine(QPipeEngine* engine,
                                                CJoinPipeline* pipeline,
                                                Stage::Options options);

}  // namespace sharing
