#include "cjoin/pipeline.h"

#include <cstring>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "storage/tuple.h"

namespace sharing {

CJoinPipeline::CJoinPipeline(Catalog* catalog, const std::string& fact_table,
                             std::vector<CJoinLevelSpec> levels,
                             CJoinOptions options, MetricsRegistry* metrics)
    : catalog_(catalog),
      options_(options),
      metrics_(metrics),
      fact_tuples_in_(metrics->GetCounter(metrics::kCjoinFactTuplesIn)),
      tuples_out_(metrics->GetCounter(metrics::kCjoinTuplesOut)),
      tuples_dropped_(metrics->GetCounter(metrics::kCjoinTuplesDropped)),
      queries_admitted_(metrics->GetCounter(metrics::kCjoinQueriesAdmitted)),
      queries_completed_(metrics->GetCounter(metrics::kCjoinQueriesCompleted)),
      bitmap_and_ops_(metrics->GetCounter(metrics::kCjoinBitmapAndOps)),
      admission_epochs_(metrics->GetCounter(metrics::kCjoinAdmissionEpochs)),
      admission_micros_(metrics->GetCounter(metrics::kCjoinAdmissionMicros)) {
  auto fact_or = catalog->GetTable(fact_table);
  SHARING_CHECK(fact_or.ok()) << fact_or.status().ToString();
  fact_ = fact_or.value();

  bitmap_words_ = (options_.max_queries + 63) / 64;
  slots_.resize(options_.max_queries);
  free_bits_.reserve(options_.max_queries);
  for (std::size_t b = options_.max_queries; b > 0; --b) {
    free_bits_.push_back(b - 1);
  }

  levels_.reserve(levels.size());
  for (auto& spec : levels) {
    auto dim_or = catalog->GetTable(spec.dim_table);
    SHARING_CHECK(dim_or.ok()) << dim_or.status().ToString();
    const Table* dim = dim_or.value();
    SHARING_CHECK(spec.fk_col_in_fact < fact_->schema().num_columns());
    SHARING_CHECK(fact_->schema().column(spec.fk_col_in_fact).type ==
                  ValueType::kInt64)
        << "fact fk must be int64";
    Level level;
    level.spec = spec;
    level.fk_offset = fact_->schema().offset(spec.fk_col_in_fact);
    level.ht = std::make_unique<DimensionHashTable>(dim, spec.pk_col_in_dim,
                                                    options_.max_queries);
    levels_.push_back(std::move(level));
  }

  workers_ = std::make_unique<ThreadPool>(options_.workers);
  driver_ = std::thread([this] { DriverLoop(); });
}

CJoinPipeline::~CJoinPipeline() {
  {
    std::lock_guard<std::mutex> lock(driver_mutex_);
    shutdown_ = true;
  }
  driver_cv_.notify_all();
  if (driver_.joinable()) driver_.join();
  workers_->Shutdown();

  // Abort anything still admitted or pending.
  std::vector<ActiveQueryRef> leftovers;
  {
    std::unique_lock<std::shared_mutex> epoch(epoch_mutex_);
    leftovers = active_;
    active_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(driver_mutex_);
    for (auto& q : pending_) leftovers.push_back(q);
    pending_.clear();
  }
  for (auto& q : leftovers) {
    SignalDone(q, Status::Aborted("pipeline shut down"));
  }
}

// ---------------------------------------------------------------------------
// Query construction & admission
// ---------------------------------------------------------------------------

StatusOr<CJoinPipeline::ActiveQueryRef> CJoinPipeline::BuildActiveQuery(
    const StarQuerySpec& spec, ExecContextRef ctx, PageSinkRef sink) const {
  if (spec.fact_table != fact_->name()) {
    return Status::InvalidArgument("spec fact table '" + spec.fact_table +
                                   "' does not match pipeline fact '" +
                                   fact_->name() + "'");
  }
  auto q = std::make_shared<ActiveQuery>();
  q->spec = spec;
  q->ctx = std::move(ctx);
  q->sink = std::move(sink);

  Schema schema;
  SHARING_ASSIGN_OR_RETURN(schema, spec.OutputSchema(*catalog_));
  q->output_schema = std::move(schema);
  q->builder = std::make_shared<RowPage>(q->output_schema.row_width());

  // Map every dimension clause onto a pipeline level.
  q->levels_used.reserve(spec.dims.size());
  for (const auto& dim : spec.dims) {
    bool found = false;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const auto& ls = levels_[l].spec;
      if (ls.dim_table == dim.dim_table &&
          ls.fk_col_in_fact == dim.fk_col_in_fact &&
          ls.pk_col_in_dim == dim.pk_col_in_dim) {
        q->levels_used.push_back(l);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "no pipeline level joins " + dim.dim_table + " via fact column " +
          std::to_string(dim.fk_col_in_fact));
    }
  }

  // Compile the output-assembly program.
  const Schema& fact_schema = fact_->schema();
  std::size_t dst = 0;
  for (int block : spec.NormalizedOrder()) {
    if (block < 0) {
      for (auto c : spec.fact_projection) {
        q->copy_ops.push_back(CopyOp{-1, fact_schema.offset(c), dst,
                                     fact_schema.column(c).width});
        dst += fact_schema.column(c).width;
      }
    } else {
      const StarDim& dim = spec.dims[block];
      Table* dim_table;
      SHARING_ASSIGN_OR_RETURN(dim_table, catalog_->GetTable(dim.dim_table));
      const Schema& ds = dim_table->schema();
      int level = static_cast<int>(q->levels_used[block]);
      for (auto c : dim.projection) {
        q->copy_ops.push_back(
            CopyOp{level, ds.offset(c), dst, ds.column(c).width});
        dst += ds.column(c).width;
      }
    }
  }
  SHARING_CHECK(dst == q->output_schema.row_width());

  static const std::string kTrueCanonical = TruePredicate()->Canonical();
  q->trivial_fact_pred =
      spec.fact_predicate == nullptr ||
      spec.fact_predicate->Canonical() == kTrueCanonical;
  return q;
}

Status CJoinPipeline::ExecuteQuery(const StarQuerySpec& spec,
                                   ExecContextRef ctx, PageSinkRef sink) {
  auto q_or = BuildActiveQuery(spec, std::move(ctx), sink);
  if (!q_or.ok()) {
    sink->Close(q_or.status());
    return q_or.status();
  }
  ActiveQueryRef q = std::move(q_or).value();
  {
    std::lock_guard<std::mutex> lock(driver_mutex_);
    if (shutdown_) {
      Status st = Status::Aborted("pipeline shut down");
      q->sink->Close(st);
      return st;
    }
    pending_.push_back(q);
  }
  driver_cv_.notify_all();

  std::unique_lock<std::mutex> lock(q->done_mutex);
  q->done_cv.wait(lock, [&] { return q->done; });
  return q->final_status;
}

void CJoinPipeline::AdmitPending() {
  std::vector<ActiveQueryRef> batch;
  {
    std::lock_guard<std::mutex> lock(driver_mutex_);
    std::size_t available;
    {
      // free_bits_ is epoch-protected; a quick shared peek is enough since
      // only the driver consumes bits.
      std::shared_lock<std::shared_mutex> epoch(epoch_mutex_);
      available = free_bits_.size();
    }
    while (!pending_.empty() && batch.size() < available) {
      batch.push_back(pending_.front());
      pending_.pop_front();
    }
  }
  if (batch.empty()) return;

  Stopwatch timer;
  {
    std::unique_lock<std::shared_mutex> epoch(epoch_mutex_);
    admission_epochs_->Increment();
    for (auto& q : batch) {
      SHARING_CHECK(!free_bits_.empty());
      q->bit = free_bits_.back();
      free_bits_.pop_back();

      Status st = Status::OK();
      for (std::size_t i = 0; i < q->levels_used.size() && st.ok(); ++i) {
        Level& level = levels_[q->levels_used[i]];
        st = level.ht->AdmitQuery(q->bit, *q->spec.dims[i].predicate);
      }
      if (!st.ok()) {
        // Roll back this query's bits and report the failure.
        for (auto l : q->levels_used) levels_[l].ht->RemoveQuery(q->bit);
        free_bits_.push_back(q->bit);
        epoch.unlock();
        SignalDone(q, st);
        epoch.lock();
        continue;
      }

      // Neutral bits: levels this query does not join must pass it through.
      for (std::size_t l = 0; l < levels_.size(); ++l) {
        bool used = false;
        for (auto ul : q->levels_used) used |= (ul == l);
        QuerySet* neutral = levels_[l].ht->mutable_neutral_bits();
        if (used) {
          neutral->Clear(q->bit);
          ++levels_[l].live_queries;
        } else {
          neutral->Set(q->bit);
        }
      }

      q->pages_remaining.store(static_cast<int64_t>(fact_->num_pages()),
                               std::memory_order_release);
      q->dispatches_left = static_cast<int64_t>(fact_->num_pages());
      slots_[q->bit] = q;
      active_.push_back(q);
      active_count_.fetch_add(1, std::memory_order_relaxed);
      queries_admitted_->Increment();

      if (fact_->num_pages() == 0) {
        // Degenerate: nothing to scan; complete immediately.
        epoch.unlock();
        FinalizeQuery(q, Status::OK());
        epoch.lock();
      } else {
        dispatching_.push_back(q);
      }
    }
  }
  admission_micros_->Add(timer.ElapsedMicros());
}

// ---------------------------------------------------------------------------
// Driver: the preprocessor's circular scan
// ---------------------------------------------------------------------------

void CJoinPipeline::DriverLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(driver_mutex_);
      driver_cv_.wait(lock, [&] {
        return shutdown_ || !pending_.empty() || !dispatching_.empty();
      });
      if (shutdown_) return;
    }

    AdmitPending();
    if (dispatching_.empty()) continue;

    const std::size_t n_pages = fact_->num_pages();

    uint64_t position;
    {
      std::lock_guard<std::mutex> lock(driver_mutex_);
      position = cursor_;
      cursor_ = (cursor_ + 1) % n_pages;
    }

    auto guard_or = fact_->buffer_pool()->FetchPage(fact_->page_id(position));
    if (!guard_or.ok()) {
      SHARING_LOG(Error) << "CJOIN fact scan failed: "
                         << guard_or.status().ToString();
      // Fail every query still owed dispatches: skipping a position would
      // otherwise hand them a duplicated page at the wrap and silently
      // drop the failed one from their cycle.
      for (auto& q : dispatching_) {
        q->muted.store(true, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> fail_lock(q->fail_mutex);
          if (q->fail_status.ok()) q->fail_status = guard_or.status();
        }
        int64_t undelivered = q->dispatches_left;
        if (q->pages_remaining.fetch_sub(
                undelivered, std::memory_order_acq_rel) == undelivered) {
          FinalizeQuery(q, guard_or.status());
        }
        // Else: in-flight tasks finish the accounting and finalize with
        // fail_status via ProcessPage.
      }
      dispatching_.clear();
      continue;
    }

    // Respect the in-flight window (prefetch bound).
    {
      std::unique_lock<std::mutex> lock(inflight_mutex_);
      inflight_cv_.wait(lock, [&] {
        return inflight_ < options_.max_in_flight_pages;
      });
      ++inflight_;
    }

    // Snapshot the dispatch list: each query is owed exactly one full
    // cycle of fact pages. Completing the cycle removes it here (it stays
    // admitted until its last task is processed, so late tasks never meet
    // recycled bits).
    auto task = std::make_shared<PageTask>();
    task->guard = std::move(guard_or).value();
    task->queries = dispatching_;
    for (auto& q : dispatching_) --q->dispatches_left;
    std::erase_if(dispatching_,
                  [](const ActiveQueryRef& q) {
                    return q->dispatches_left <= 0;
                  });

    workers_->Submit([this, task] {
      ProcessPage(task);
      {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        --inflight_;
      }
      inflight_cv_.notify_one();
    });
  }
}

// ---------------------------------------------------------------------------
// Page processing: shared selections, hash-join chain, distribution
// ---------------------------------------------------------------------------

void CJoinPipeline::ProcessPage(std::shared_ptr<PageTask> task) {
  const Schema& fact_schema = fact_->schema();
  const uint8_t* frame = task->guard.data();
  const uint32_t n_rows = page_layout::RowCount(frame);

  std::vector<uint64_t> bits(bitmap_words_);
  std::vector<const DimensionHashTable::Entry*> matched(levels_.size(),
                                                        nullptr);
  std::vector<uint64_t> combined(bitmap_words_);
  int64_t and_ops = 0;
  int64_t dropped = 0;
  int64_t emitted = 0;

  {
    std::shared_lock<std::shared_mutex> epoch(epoch_mutex_);

    // Which levels matter for this batch (any live query joins them)?
    std::vector<std::size_t> probe_levels;
    probe_levels.reserve(levels_.size());
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      if (levels_[l].live_queries > 0) probe_levels.push_back(l);
    }

    for (uint32_t r = 0; r < n_rows; ++r) {
      const uint8_t* row = page_layout::RowAt(frame, r);
      TupleRef fact_row(row, &fact_schema);

      // Shared selection: build the initial bitmap from the queries' fact
      // predicates (paper Fig. 1b's σ on the fact input).
      std::fill(bits.begin(), bits.end(), 0);
      bool any = false;
      for (const auto& q : task->queries) {
        if (q->trivial_fact_pred ||
            q->spec.fact_predicate->EvalBool(fact_row)) {
          bits[q->bit >> 6] |= (1ull << (q->bit & 63));
          any = true;
        }
      }
      if (!any) {
        ++dropped;
        continue;
      }

      // Shared hash-join chain with bitwise AND.
      bool alive = true;
      for (std::size_t l : probe_levels) {
        const Level& level = levels_[l];
        int64_t fk;
        std::memcpy(&fk, row + level.fk_offset, sizeof(fk));
        const auto* entry = level.ht->Probe(fk);
        matched[l] = entry;
        const uint64_t* neutral = level.ht->neutral_bits().words();
        if (entry != nullptr) {
          const uint64_t* ebits = entry->bits.words();
          for (std::size_t w = 0; w < bitmap_words_; ++w) {
            combined[w] = ebits[w] | neutral[w];
          }
        } else {
          for (std::size_t w = 0; w < bitmap_words_; ++w) {
            combined[w] = neutral[w];
          }
        }
        ++and_ops;
        if (!BitmapAndInPlace(bits.data(), combined.data(), bitmap_words_)) {
          alive = false;
          break;
        }
      }
      if (!alive) {
        ++dropped;
        continue;
      }

      // Distributor: route the joined tuple to every surviving query.
      for (const auto& q : task->queries) {
        if (!((bits[q->bit >> 6] >> (q->bit & 63)) & 1u)) continue;
        if (q->muted.load(std::memory_order_relaxed)) continue;
        if (q->ctx->cancelled()) {
          q->muted.store(true, std::memory_order_relaxed);
          continue;
        }
        std::lock_guard<std::mutex> emit_lock(q->emit_mutex);
        uint8_t* slot = q->builder->AppendSlot();
        if (slot == nullptr) {
          PageRef full = std::move(q->builder);
          q->builder =
              std::make_shared<RowPage>(q->output_schema.row_width());
          if (!q->sink->Put(std::move(full))) {
            q->muted.store(true, std::memory_order_relaxed);
            continue;
          }
          slot = q->builder->AppendSlot();
        }
        for (const auto& op : q->copy_ops) {
          const uint8_t* src =
              op.level < 0 ? row + op.src_off
                           : matched[op.level]->row.data() + op.src_off;
          std::memcpy(slot + op.dst_off, src, op.width);
        }
        ++emitted;
      }
    }
  }

  fact_tuples_in_->Add(n_rows);
  tuples_dropped_->Add(dropped);
  tuples_out_->Add(emitted);
  bitmap_and_ops_->Add(and_ops);

  // Completion accounting: a query finishes when it has seen every fact
  // page exactly once since admission.
  for (const auto& q : task->queries) {
    if (q->pages_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Status final = Status::OK();
      if (q->muted.load()) {
        std::lock_guard<std::mutex> fail_lock(q->fail_mutex);
        final = q->fail_status.ok() ? Status::Aborted("query abandoned")
                                    : q->fail_status;
      }
      FinalizeQuery(q, std::move(final));
    }
  }
}

void CJoinPipeline::FinalizeQuery(const ActiveQueryRef& q, Status final) {
  {
    std::unique_lock<std::shared_mutex> epoch(epoch_mutex_);
    for (std::size_t i = 0; i < q->levels_used.size(); ++i) {
      Level& level = levels_[q->levels_used[i]];
      level.ht->RemoveQuery(q->bit);
      --level.live_queries;
    }
    for (auto& level : levels_) {
      level.ht->mutable_neutral_bits()->Clear(q->bit);
    }
    std::erase(active_, q);
    slots_[q->bit] = nullptr;
    free_bits_.push_back(q->bit);
    active_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  queries_completed_->Increment();
  SignalDone(q, std::move(final));
  // A freed bit may unblock pending admissions.
  driver_cv_.notify_all();
}

void CJoinPipeline::SignalDone(const ActiveQueryRef& q, Status final) {
  // Flush the last partial page, then close.
  if (final.ok()) {
    std::lock_guard<std::mutex> emit_lock(q->emit_mutex);
    if (!q->builder->empty()) {
      PageRef last = std::move(q->builder);
      q->builder = std::make_shared<RowPage>(q->output_schema.row_width());
      q->sink->Put(std::move(last));
    }
  }
  q->sink->Close(final);
  {
    std::lock_guard<std::mutex> lock(q->done_mutex);
    q->done = true;
    q->final_status = std::move(final);
  }
  q->done_cv.notify_all();
}

}  // namespace sharing
