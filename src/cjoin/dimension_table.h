// DimensionHashTable: one level of the CJOIN pipeline's shared hash-join
// chain (paper Fig. 1b / Fig. 2).
//
// Entries map a dimension key to the dimension tuple (projected row) plus a
// query bitmap: bit q set means "this dimension tuple satisfies query q's
// selection predicate on this dimension". Probing ANDs the fact tuple's
// bitmap with the entry's bitmap, OR'd with the level's *neutral* bitmap —
// the bits of queries that do not reference this dimension at all, which
// must pass through unaffected.
//
// Synchronization: probes run under the pipeline's shared (epoch) lock;
// AdmitQuery/RemoveQuery run under the exclusive lock, so the table itself
// needs no internal locking.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "exec/expr.h"
#include "storage/table.h"

namespace sharing {

class DimensionHashTable {
 public:
  struct Entry {
    std::vector<uint8_t> row;  // projected dimension tuple
    QuerySet bits;
  };

  /// `dim`: the dimension table; `pk_col`: its key column;
  /// `max_queries`: pipeline bitmap capacity.
  DimensionHashTable(const Table* dim, std::size_t pk_col,
                     std::size_t max_queries);

  SHARING_DISALLOW_COPY_AND_MOVE(DimensionHashTable);

  const Table* dim_table() const { return dim_; }
  std::size_t pk_col() const { return pk_col_; }

  /// Admits query `bit`: scans the dimension table, and for every tuple
  /// satisfying `predicate` sets the query's bit (inserting the entry with
  /// row = `projection` columns if absent).
  ///
  /// Entries inserted by different queries may project different columns;
  /// CJOIN handles this by storing the union row: the entry's row is the
  /// full dimension tuple, and per-query projections are applied at
  /// distribution time. (We store the full row for exactly that reason.)
  Status AdmitQuery(std::size_t bit, const Expr& predicate);

  /// Removes query `bit` from all entries; entries whose bitmap becomes
  /// empty are erased (the paper's bookkeeping on query departure).
  void RemoveQuery(std::size_t bit);

  /// Probe by key. Returns nullptr on miss. The returned entry stays valid
  /// until the next exclusive-mode mutation (callers hold the shared epoch
  /// lock across a page batch).
  const Entry* Probe(int64_t key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : it->second.get();
  }

  /// Bits of active queries that do NOT use this dimension; maintained by
  /// the pipeline on admission/removal.
  const QuerySet& neutral_bits() const { return neutral_; }
  QuerySet* mutable_neutral_bits() { return &neutral_; }

  std::size_t NumEntries() const { return entries_.size(); }

 private:
  const Table* dim_;
  std::size_t pk_col_;
  std::size_t max_queries_;
  QuerySet neutral_;
  std::unordered_map<int64_t, std::unique_ptr<Entry>> entries_;
};

}  // namespace sharing
