#include "cjoin/cjoin_stage.h"

#include "common/logging.h"

namespace sharing {

void CJoinStage::RunPacket(Packet& packet) {
  auto spec_or =
      StarQueryFromPlan(*packet.node, pipeline_->fact_table_name());
  if (!spec_or.ok()) {
    packet.output->Close(spec_or.status());
    return;
  }
  // Blocks until the query has seen one full fact-table cycle; the
  // pipeline streams pages into the packet's output and closes it.
  Status st =
      pipeline_->ExecuteQuery(spec_or.value(), packet.ctx, packet.output);
  if (!st.ok() && st.code() != StatusCode::kAborted) {
    SHARING_LOG(Error) << "CJOIN packet failed: " << st.ToString();
  }
}

std::shared_ptr<CJoinStage> AttachCJoinToEngine(QPipeEngine* engine,
                                                CJoinPipeline* pipeline,
                                                Stage::Options options) {
  auto stage =
      std::make_shared<CJoinStage>(pipeline, options, engine->metrics());
  engine->RegisterExtraStage(stage);
  std::string fact = pipeline->fact_table_name();
  engine->SetJoinDispatchHook(
      [stage, fact](const PlanNodeRef& node,
                    const ExecContextRef& ctx) -> PageSourceRef {
        auto spec_or = StarQueryFromPlan(*node, fact);
        if (!spec_or.ok()) return nullptr;  // not a star: query-centric path
        return stage->SubmitOrShare(node, ctx, /*make_inputs=*/{});
      });
  return stage;
}

}  // namespace sharing
