// StarQuerySpec: the canonical description of a star query as admitted to
// the CJOIN pipeline.
//
// CJOIN evaluates SELECT-PROJECT-JOIN star sub-plans: a fact table joined
// with a set of dimension tables via foreign keys, with per-table selection
// predicates and projections. A spec can be authored directly, or derived
// from a query-centric left-deep join plan (StarQueryFromPlan) so the same
// PlanNode tree can run on either engine — the spec reproduces the join
// tree's exact output column order, letting the aggregation above consume
// both engines' output interchangeably.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "exec/plan.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace sharing {

/// One dimension clause of a star query. All column indices refer to the
/// *table* schemas (not projected outputs).
struct StarDim {
  std::string dim_table;
  std::size_t fk_col_in_fact = 0;  // fact column holding the foreign key
  std::size_t pk_col_in_dim = 0;   // dimension's (unique) key column
  ExprRef predicate;               // selection over the dimension schema
  std::vector<std::size_t> projection;  // dimension columns in the output
};

struct StarQuerySpec {
  std::string fact_table;
  ExprRef fact_predicate;                    // selection over the fact schema
  std::vector<std::size_t> fact_projection;  // fact columns in the output
  std::vector<StarDim> dims;

  /// Output block order: -1 emits the fact projection block, i >= 0 emits
  /// dims[i]'s projection block. Derived plans use this to replicate the
  /// join tree's column order; hand-written specs may leave it empty
  /// (meaning: fact block, then dims in order).
  std::vector<int> output_order;

  /// Stable canonical rendering — the SP signature of the CJOIN sub-plan
  /// (two specs share work iff these match).
  std::string Canonical() const;
  uint64_t Signature() const { return HashCanonical(Canonical()); }

  /// Output schema given the catalog (fact/dim schemas are looked up).
  StatusOr<Schema> OutputSchema(const Catalog& catalog) const;

  /// output_order normalized (empty => [-1, 0, 1, ...]).
  std::vector<int> NormalizedOrder() const;
};

/// Attempts to interpret a plan subtree as a star query:
/// left-deep chain of hash joins whose build sides are dimension scans and
/// whose innermost probe side is a scan of `fact_table`. Returns
/// InvalidArgument when the tree has any other shape (caller falls back to
/// query-centric evaluation).
StatusOr<StarQuerySpec> StarQueryFromPlan(const PlanNode& root,
                                          const std::string& fact_table);

}  // namespace sharing
