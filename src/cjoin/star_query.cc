#include "cjoin/star_query.h"

#include "common/logging.h"

namespace sharing {

std::vector<int> StarQuerySpec::NormalizedOrder() const {
  if (!output_order.empty()) return output_order;
  std::vector<int> order;
  order.reserve(dims.size() + 1);
  order.push_back(-1);
  for (std::size_t i = 0; i < dims.size(); ++i) {
    order.push_back(static_cast<int>(i));
  }
  return order;
}

std::string StarQuerySpec::Canonical() const {
  std::string out = "cjoin(" + fact_table + ",";
  out += fact_predicate ? fact_predicate->Canonical() : "true";
  out += ",fproj[";
  for (std::size_t i = 0; i < fact_projection.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(fact_projection[i]);
  }
  out += "]";
  for (const auto& d : dims) {
    out += ",dim(" + d.dim_table + ",fk=" + std::to_string(d.fk_col_in_fact) +
           ",pk=" + std::to_string(d.pk_col_in_dim) + ",";
    out += d.predicate ? d.predicate->Canonical() : "true";
    out += ",proj[";
    for (std::size_t i = 0; i < d.projection.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(d.projection[i]);
    }
    out += "])";
  }
  out += ",order[";
  auto order = NormalizedOrder();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(order[i]);
  }
  out += "])";
  return out;
}

StatusOr<Schema> StarQuerySpec::OutputSchema(const Catalog& catalog) const {
  Table* fact;
  SHARING_ASSIGN_OR_RETURN(fact, catalog.GetTable(fact_table));
  std::vector<Column> cols;
  for (int block : NormalizedOrder()) {
    if (block < 0) {
      for (auto c : fact_projection) {
        if (c >= fact->schema().num_columns()) {
          return Status::InvalidArgument("fact projection out of range");
        }
        cols.push_back(fact->schema().column(c));
      }
    } else {
      if (static_cast<std::size_t>(block) >= dims.size()) {
        return Status::InvalidArgument("output_order block out of range");
      }
      const StarDim& d = dims[block];
      Table* dim;
      SHARING_ASSIGN_OR_RETURN(dim, catalog.GetTable(d.dim_table));
      for (auto c : d.projection) {
        if (c >= dim->schema().num_columns()) {
          return Status::InvalidArgument("dim projection out of range");
        }
        cols.push_back(dim->schema().column(c));
      }
    }
  }
  // Resolve duplicate column names the same way Schema::Concat does, so a
  // derived spec's schema matches the join tree's output schema exactly.
  for (std::size_t i = 0; i < cols.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (cols[j].name == cols[i].name) {
        cols[i].name = "r_" + cols[i].name;
        break;
      }
    }
  }
  return Schema(std::move(cols));
}

namespace {

struct ParseState {
  StarQuerySpec spec;
  // Column-count prefix per output block of the subtree parsed so far,
  // in subtree output order (NOT spec order).
  // blocks[i] = {block id (-1 fact / dim index), num columns}.
  std::vector<std::pair<int, std::size_t>> blocks;
};

Status ParseStar(const PlanNode& node, const std::string& fact_table,
                 ParseState* state) {
  if (node.kind() == PlanKind::kScan) {
    const auto& scan = static_cast<const ScanNode&>(node);
    if (scan.table_name() != fact_table) {
      return Status::InvalidArgument("innermost scan is not the fact table");
    }
    state->spec.fact_table = fact_table;
    state->spec.fact_predicate = scan.predicate();
    state->spec.fact_projection = scan.projection();
    state->blocks.emplace_back(-1, scan.projection().size());
    return Status::OK();
  }
  if (node.kind() != PlanKind::kJoin) {
    return Status::InvalidArgument("star sub-plan may only contain joins "
                                   "over scans");
  }
  const auto& join = static_cast<const JoinNode&>(node);
  if (join.build()->kind() != PlanKind::kScan) {
    return Status::InvalidArgument("join build side must be a dimension scan");
  }
  const auto& dim_scan = static_cast<const ScanNode&>(*join.build());
  if (dim_scan.table_name() == fact_table) {
    return Status::InvalidArgument("fact table on the build side");
  }

  // Parse the probe side first (it holds the fact scan and inner dims).
  SHARING_RETURN_NOT_OK(ParseStar(*join.probe(), fact_table, state));

  StarDim dim;
  dim.dim_table = dim_scan.table_name();
  dim.predicate = dim_scan.predicate();
  dim.projection = dim_scan.projection();
  if (join.build_key() >= dim_scan.projection().size()) {
    return Status::InvalidArgument("build key outside dim projection");
  }
  dim.pk_col_in_dim = dim_scan.projection()[join.build_key()];

  // The probe key indexes the probe subtree's concatenated output; it must
  // land in the fact block for this to be a star join.
  std::size_t remaining = join.probe_key();
  bool resolved = false;
  for (const auto& [block, ncols] : state->blocks) {
    if (remaining < ncols) {
      if (block != -1) {
        return Status::InvalidArgument(
            "probe key joins through a dimension (snowflake, not star)");
      }
      dim.fk_col_in_fact = state->spec.fact_projection[remaining];
      resolved = true;
      break;
    }
    remaining -= ncols;
  }
  if (!resolved) {
    return Status::InvalidArgument("probe key out of range");
  }

  state->spec.dims.push_back(std::move(dim));
  // Join output order: build block first, then the probe subtree's blocks.
  state->blocks.insert(
      state->blocks.begin(),
      {static_cast<int>(state->spec.dims.size()) - 1,
       dim_scan.projection().size()});
  return Status::OK();
}

}  // namespace

StatusOr<StarQuerySpec> StarQueryFromPlan(const PlanNode& root,
                                          const std::string& fact_table) {
  if (root.kind() != PlanKind::kJoin) {
    return Status::InvalidArgument("star plan must be rooted at a join");
  }
  ParseState state;
  SHARING_RETURN_NOT_OK(ParseStar(root, fact_table, &state));
  state.spec.output_order.reserve(state.blocks.size());
  for (const auto& [block, ncols] : state.blocks) {
    state.spec.output_order.push_back(block);
  }
  return state.spec;
}

}  // namespace sharing
