#include "qpipe/stage.h"

#include <algorithm>

#include "common/logging.h"

namespace sharing {

// ---------------------------------------------------------------------------
// TeeSink: the push-model sharing sink. The host writes once; the sink
// forwards the page to the host's own consumer and *copies* it into every
// satellite FIFO. All copies run in the producer thread — this loop is the
// serialization point the paper's pull model removes.
// ---------------------------------------------------------------------------

class Stage::TeeSink final : public PageSink {
 public:
  TeeSink(PageSinkRef own, Counter* pages_copied, Counter* bytes_copied,
          std::function<void()> on_close)
      : own_(std::move(own)),
        pages_copied_(pages_copied),
        bytes_copied_(bytes_copied),
        on_close_(std::move(on_close)) {}

  bool Put(PageRef page) override {
    std::vector<PageSinkRef> satellites;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      window_open_ = false;  // first emission closes the attach window
      satellites = satellites_;
    }
    bool any = own_->Put(page);
    std::vector<const PageSink*> dead;
    for (const auto& sat : satellites) {
      // Deep copy per consumer — the defining cost of push-based SP.
      auto copy = std::make_shared<RowPage>(*page);
      pages_copied_->Increment();
      bytes_copied_->Add(static_cast<int64_t>(page->data_bytes()));
      if (sat->Put(std::move(copy))) {
        any = true;
      } else {
        dead.push_back(sat.get());
      }
    }
    if (!dead.empty()) {
      std::lock_guard<std::mutex> lock(mutex_);
      std::erase_if(satellites_, [&](const PageSinkRef& s) {
        return std::find(dead.begin(), dead.end(), s.get()) != dead.end();
      });
    }
    return any;
  }

  void Close(Status final) override {
    std::vector<PageSinkRef> satellites;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
      window_open_ = false;
      satellites.swap(satellites_);
    }
    own_->Close(final);
    for (const auto& sat : satellites) sat->Close(final);
    if (on_close_) on_close_();
  }

  /// Registers a satellite sink; fails once the host has emitted anything.
  bool TryAttach(PageSinkRef satellite) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!window_open_ || closed_) return false;
    satellites_.push_back(std::move(satellite));
    return true;
  }

 private:
  PageSinkRef own_;
  Counter* pages_copied_;
  Counter* bytes_copied_;
  std::function<void()> on_close_;

  std::mutex mutex_;
  std::vector<PageSinkRef> satellites_;
  bool window_open_ = true;
  bool closed_ = false;
};

struct Stage::PushSession {
  std::shared_ptr<TeeSink> tee;
};

struct Stage::PullSession {
  std::shared_ptr<SharedPagesList> spl;
};

namespace {

/// Adapts a SharedPagesList's producer side to the PageSink interface and
/// deregisters the SP session when the host closes.
class SplSink final : public PageSink {
 public:
  SplSink(std::shared_ptr<SharedPagesList> spl, std::function<void()> on_close)
      : spl_(std::move(spl)), on_close_(std::move(on_close)) {}

  bool Put(PageRef page) override { return spl_->Append(std::move(page)); }

  void Close(Status final) override {
    spl_->Close(std::move(final));
    if (on_close_) {
      on_close_();
      on_close_ = nullptr;
    }
  }

 private:
  std::shared_ptr<SharedPagesList> spl_;
  std::function<void()> on_close_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Stage
// ---------------------------------------------------------------------------

Stage::Stage(std::string name, Options options, MetricsRegistry* metrics)
    : name_(std::move(name)),
      options_(options),
      metrics_(metrics),
      sp_opportunities_(metrics->GetCounter(metrics::kSpOpportunities)),
      sp_pages_copied_(metrics->GetCounter(metrics::kSpPagesCopied)),
      sp_bytes_copied_(metrics->GetCounter(metrics::kSpBytesCopied)),
      pool_(options.initial_workers, options.max_workers) {}

Stage::~Stage() { Shutdown(); }

void Stage::Shutdown() { pool_.Shutdown(); }

void Stage::SetSpMode(SpMode mode) {
  std::lock_guard<std::mutex> lock(mode_mutex_);
  options_.sp_mode = mode;
}

SpMode Stage::sp_mode() const {
  std::lock_guard<std::mutex> lock(mode_mutex_);
  return options_.sp_mode;
}

StageStats Stage::GetStats() const {
  StageStats stats;
  stats.packets_submitted = packets_submitted_.load();
  stats.packets_executed = packets_executed_.load();
  stats.sp_hits = sp_hits_.load();
  return stats;
}

PageSourceRef Stage::SubmitOrShare(PlanNodeRef node, ExecContextRef ctx,
                                   const MakeInputsFn& make_inputs,
                                   const PreparePacketFn& prepare) {
  packets_submitted_.fetch_add(1, std::memory_order_relaxed);
  const SpMode mode = sp_mode();
  const uint64_t sig = node->Signature();

  if (mode == SpMode::kPush) {
    std::unique_lock<std::mutex> lock(registry_mutex_);
    auto it = push_sessions_.find(sig);
    if (it != push_sessions_.end()) {
      auto satellite = std::make_shared<FifoBuffer>(options_.fifo_capacity);
      if (it->second->tee->TryAttach(satellite)) {
        sp_hits_.fetch_add(1, std::memory_order_relaxed);
        sp_opportunities_->Increment();
        return satellite;
      }
      // Window already closed: this session can no longer accept
      // satellites; replace it with a fresh host below.
      push_sessions_.erase(it);
    }
    lock.unlock();
    return SubmitFresh(node, ctx, make_inputs, prepare, mode);
  }

  if (mode == SpMode::kPull) {
    std::unique_lock<std::mutex> lock(registry_mutex_);
    auto it = pull_sessions_.find(sig);
    if (it != pull_sessions_.end()) {
      if (auto reader = it->second->spl->AttachReader()) {
        sp_hits_.fetch_add(1, std::memory_order_relaxed);
        sp_opportunities_->Increment();
        return reader;
      }
      pull_sessions_.erase(it);  // host aborted; start over
    }
    lock.unlock();
    return SubmitFresh(node, ctx, make_inputs, prepare, mode);
  }

  return SubmitFresh(node, ctx, make_inputs, prepare, mode);
}

PageSourceRef Stage::SubmitFresh(PlanNodeRef node, ExecContextRef ctx,
                                 const MakeInputsFn& make_inputs,
                                 const PreparePacketFn& prepare, SpMode mode) {
  const uint64_t sig = node->Signature();

  if (mode == SpMode::kPush) {
    auto own = std::make_shared<FifoBuffer>(options_.fifo_capacity);
    auto session = std::make_shared<PushSession>();
    std::weak_ptr<PushSession> weak = session;
    session->tee = std::make_shared<TeeSink>(
        own, sp_pages_copied_, sp_bytes_copied_, [this, sig, weak] {
          std::lock_guard<std::mutex> lock(registry_mutex_);
          auto it = push_sessions_.find(sig);
          if (it != push_sessions_.end() && it->second == weak.lock()) {
            push_sessions_.erase(it);
          }
        });
    {
      std::lock_guard<std::mutex> lock(registry_mutex_);
      push_sessions_[sig] = session;
    }
    Enqueue(std::move(node), std::move(ctx), session->tee, make_inputs,
            prepare);
    return own;
  }

  if (mode == SpMode::kPull) {
    auto spl = SharedPagesList::Create(metrics_);
    auto session = std::make_shared<PullSession>();
    session->spl = spl;
    std::weak_ptr<PullSession> weak = session;
    auto reader = spl->AttachReader();
    SHARING_CHECK(reader != nullptr);
    auto sink = std::make_shared<SplSink>(spl, [this, sig, weak] {
      std::lock_guard<std::mutex> lock(registry_mutex_);
      auto it = pull_sessions_.find(sig);
      if (it != pull_sessions_.end() && it->second == weak.lock()) {
        pull_sessions_.erase(it);
      }
    });
    {
      std::lock_guard<std::mutex> lock(registry_mutex_);
      pull_sessions_[sig] = session;
    }
    Enqueue(std::move(node), std::move(ctx), std::move(sink), make_inputs,
            prepare);
    return reader;
  }

  auto fifo = std::make_shared<FifoBuffer>(options_.fifo_capacity);
  Enqueue(std::move(node), std::move(ctx), fifo, make_inputs, prepare);
  return fifo;
}

void Stage::Enqueue(PlanNodeRef node, ExecContextRef ctx, PageSinkRef output,
                    const MakeInputsFn& make_inputs,
                    const PreparePacketFn& prepare) {
  auto packet = std::make_shared<Packet>();
  packet->node = std::move(node);
  packet->ctx = std::move(ctx);
  packet->output = std::move(output);
  if (make_inputs) packet->inputs = make_inputs();
  if (prepare) prepare(*packet);

  packets_executed_.fetch_add(1, std::memory_order_relaxed);
  bool ok = pool_.Submit([this, packet] { RunPacket(*packet); });
  if (!ok) {
    packet->output->Close(Status::Aborted("stage shut down"));
  }
}

}  // namespace sharing
