#include "qpipe/stage.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "exec/explain.h"
#include "qpipe/batch_pipe.h"

namespace sharing {

namespace {

/// Monotonic micros for the cost model's arrival clock.
int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The stop probe bound to every source a submission hands back: maps the
/// query context's cancel/deadline state to the status a blocked reader
/// must surface (DeadlineExceeded beats Aborted — see
/// ExecContext::TerminalStatus). Lock-free; safe under a reader's wait
/// mutex.
std::function<Status()> MakeStopProbe(ExecContextRef ctx) {
  return [ctx = std::move(ctx)] {
    return ctx->StopRequested() ? ctx->TerminalStatus() : Status::OK();
  };
}

/// Host-failure containment for satellites: a satellite performs no work
/// of its own, so a host that dies (fault injection, disk error, cancel)
/// poisons the channel and would fail every attached query with an error
/// none of them caused. This wrapper detects the poison at end-of-stream
/// and — when the satellite saw NO pages yet and is not itself being
/// stopped — transparently re-dispatches the packet unshared, exactly
/// once. A satellite that already consumed pages cannot be replayed
/// (page order across a re-run is not reproducible), so mid-stream
/// poison propagates to the query as the host's status.
class SatelliteRerunSource final : public PageSource {
 public:
  SatelliteRerunSource(PageSourceRef inner, ExecContextRef ctx,
                       std::function<PageSourceRef()> rerun,
                       Counter* rerun_counter)
      : inner_(std::move(inner)),
        ctx_(std::move(ctx)),
        rerun_(std::move(rerun)),
        rerun_counter_(rerun_counter) {}

  PageRef Next() override {
    for (;;) {
      PageRef page = Inner()->Next();
      if (page != nullptr) {
        delivered_.fetch_add(1, std::memory_order_relaxed);
        return page;
      }
      if (!MaybeRerun()) return nullptr;
    }
  }

  std::size_t NextBatch(std::size_t max_pages,
                        std::vector<PageRef>* out) override {
    for (;;) {
      const std::size_t got = Inner()->NextBatch(max_pages, out);
      if (got > 0) {
        delivered_.fetch_add(got, std::memory_order_relaxed);
        return got;
      }
      if (!MaybeRerun()) return 0;
    }
  }

  Status FinalStatus() const override { return Inner()->FinalStatus(); }

  void CancelConsumer() override {
    // May race with the consumer swapping inner_ in MaybeRerun. Cancel
    // lands on whichever source the copy caught; a swap that slips past
    // is caught by the collector's per-page stop check (the context is
    // already cancelled when QueryHandle::Cancel calls us).
    Inner()->CancelConsumer();
  }

  std::size_t PagesDelivered() const override {
    return delivered_.load(std::memory_order_relaxed);
  }

  void BindStopCheck(std::function<Status()> stop_check) override {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_check_ = stop_check;
    inner_->BindStopCheck(std::move(stop_check));
  }

 private:
  PageSourceRef Inner() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_;
  }

  /// End-of-stream triage; true = a fresh unshared run replaced the
  /// poisoned reader and reading should continue. Runs only on the
  /// consumer thread; mutex_ covers the inner_ swap against concurrent
  /// CancelConsumer / FinalStatus callers.
  bool MaybeRerun() {
    if (reran_) return false;
    reran_ = true;  // one attempt, whatever the triage below decides
    const Status st = Inner()->FinalStatus();
    if (st.ok()) return false;  // clean end-of-stream
    if (delivered_.load(std::memory_order_relaxed) > 0) {
      return false;  // mid-stream poison: replay is not reproducible
    }
    if (ctx_->StopRequested()) return false;  // self-inflicted stop
    SHARING_LOG_QID(Warning, ctx_->query_id())
        << "sharing host failed before this satellite consumed a page ("
        << st.ToString() << ") — re-running the packet unshared";
    PageSourceRef fresh = rerun_();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_check_) fresh->BindStopCheck(stop_check_);
      inner_ = std::move(fresh);
    }
    rerun_counter_->Increment();
    return true;
  }

  mutable std::mutex mutex_;
  PageSourceRef inner_;  // guarded by mutex_ (swapped once on re-run)
  ExecContextRef ctx_;
  std::function<PageSourceRef()> rerun_;
  Counter* rerun_counter_;
  std::function<Status()> stop_check_;  // guarded by mutex_
  std::atomic<std::size_t> delivered_{0};
  bool reran_ = false;  // consumer thread only
};

}  // namespace

Stage::Stage(std::string name, Options options, MetricsRegistry* metrics)
    : name_(std::move(name)),
      options_(options),
      metrics_(metrics),
      sp_opportunities_(metrics->GetCounter(metrics::kSpOpportunities)),
      satellite_reruns_(
          metrics->GetCounter(metrics::kSharingSatelliteRerun)),
      run_packet_hist_(
          metrics->GetHistogram(metrics::kStageRunPacketMicros)),
      trace_name_(Trace::InternString("run_packet:" + name_)),
      cost_model_(
          std::make_unique<SharingCostModel>(options.cost_model, metrics)),
      pool_(options.initial_workers, options.max_workers) {}

Stage::~Stage() { Shutdown(); }

void Stage::Shutdown() { pool_.Shutdown(); }

void Stage::SetSpMode(SpMode mode) {
  std::lock_guard<std::mutex> lock(mode_mutex_);
  options_.sp_mode = mode;
}

SpMode Stage::sp_mode() const {
  std::lock_guard<std::mutex> lock(mode_mutex_);
  return options_.sp_mode;
}

StageStats Stage::GetStats() const {
  StageStats stats;
  stats.packets_submitted = packets_submitted_.load();
  stats.packets_executed = packets_executed_.load();
  stats.sp_hits = sp_hits_.load();
  stats.sp_sessions_closed = sp_sessions_closed_.load();
  stats.sp_satellites_served = sp_satellites_served_.load();
  stats.sp_pages_produced = sp_pages_produced_.load();
  stats.sp_lag_accumulated = sp_lag_accumulated_.load();
  stats.sp_lag_uncapped_accumulated = sp_lag_uncapped_accumulated_.load();
  stats.adaptive_off = adaptive_off_.load();
  stats.adaptive_push = adaptive_push_.load();
  stats.adaptive_pull = adaptive_pull_.load();
  stats.adaptive_pull_spill = adaptive_pull_spill_.load();
  stats.adaptive_off_cold = adaptive_off_cold_.load();
  return stats;
}

std::vector<Stage::ChannelSnapshot> Stage::ChannelsSnapshot() const {
  // Grab refs under the registry mutex, introspect outside it: a
  // channel's Introspect takes its own (or its SPL's) locks, and
  // holding the registry across them would order against the on_close
  // deregistration path.
  std::vector<std::pair<uint64_t, SharingChannelRef>> live;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    live.reserve(channels_.size());
    for (const auto& [sig, channel] : channels_) {
      live.emplace_back(sig, channel);
    }
  }
  std::vector<ChannelSnapshot> out;
  out.reserve(live.size());
  for (const auto& [sig, channel] : live) {
    ChannelSnapshot snap;
    snap.stage = name_;
    snap.signature = sig;
    snap.info = channel->Introspect();
    out.push_back(std::move(snap));
  }
  return out;
}

int64_t Stage::RecordSubmissionLocked(uint64_t sig) {
  const int64_t seq = ++submit_seq_;
  auto it = last_seen_.find(sig);
  if (it == last_seen_.end()) {
    // Bound the popularity map by evicting the least-recently-seen
    // signature: a long-lived server's hot templates keep their history
    // while one-off signatures churn through the cold end.
    const std::size_t capacity =
        std::max<std::size_t>(1, options_.adaptive.popularity_capacity);
    while (last_seen_.size() >= capacity) {
      last_seen_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(sig);
    last_seen_.emplace(sig, Popularity{seq, lru_.begin()});
    return std::numeric_limits<int64_t>::max();
  }
  if (it->second.lru_it != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  }
  int64_t gap = seq - it->second.seq;
  it->second.seq = seq;
  return gap;
}

Stage::AdmissionChoice Stage::ChooseAdaptiveMode(
    uint64_t sig, int64_t submissions_since_last_seen) {
  const AdaptiveSpPolicy& policy = options_.adaptive;
  if (submissions_since_last_seen > policy.popularity_window) {
    adaptive_off_.fetch_add(1, std::memory_order_relaxed);
    adaptive_off_cold_.fetch_add(1, std::memory_order_relaxed);
    return AdmissionChoice{SpMode::kOff, "cold", false, 0};
  }
  // Hot signature: ask its cost model. With enough history the decision
  // is per-signature — a cheap template and an expensive one on the same
  // stage get *different* admissions, which stage-wide means cannot do.
  CostModelEnvironment env;
  env.fifo_capacity = options_.fifo_capacity;
  if (options_.governor != nullptr) {
    env.budget_pages = options_.governor->budget_pages();
    env.spill_usable = options_.governor->usable();
  }
  const CostDecision decision = cost_model_->Decide(sig, env);
  if (decision.from_model) {
    AdmissionChoice choice{decision.mode, "model", false,
                           decision.confidence};
    switch (decision.mode) {
      case SpMode::kOff:
        adaptive_off_.fetch_add(1, std::memory_order_relaxed);
        break;
      case SpMode::kPush:
        adaptive_push_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        choice.mode = SpMode::kPull;
        choice.spill_preferred = decision.spill_preferred;
        adaptive_pull_.fetch_add(1, std::memory_order_relaxed);
        if (decision.spill_preferred) {
          adaptive_pull_spill_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
    }
    return choice;
  }
  return ChooseFallbackMode();
}

Stage::AdmissionChoice Stage::ChooseFallbackMode() {
  const AdaptiveSpPolicy& policy = options_.adaptive;
  const int64_t sessions = sp_sessions_closed_.load(std::memory_order_relaxed);
  // No session history yet: host with pull, the transport that keeps the
  // widest attach window and never blocks the producer on a slow copy.
  bool pull = sessions == 0;
  bool spill_pull = false;
  if (!pull) {
    const double n = static_cast<double>(sessions);
    const double avg_satellites =
        static_cast<double>(sp_satellites_served_.load()) / n;
    const double avg_pages =
        static_cast<double>(sp_pages_produced_.load()) / n;
    const double avg_lag = static_cast<double>(sp_lag_accumulated_.load()) / n;
    // A push session's lag saturates at the FIFO capacity (the producer
    // blocks there), so cap the trigger at the capacity or the convoy
    // case could never reach a larger configured threshold.
    const double lag_threshold =
        std::min(policy.pull_lag_threshold,
                 static_cast<double>(options_.fifo_capacity));
    pull = avg_satellites >= policy.pull_satellite_threshold ||
           avg_pages >= policy.pull_pages_threshold ||
           avg_lag >= lag_threshold;
    // Spill preference: with a memory governor in place, a session whose
    // closing-lag history predicts retention above the budget is hosted
    // pull — the spill tier absorbs the overflow to disk — instead of
    // push (a laggy push satellite convoys the host) or not sharing.
    // The *uncapped* lag is the right predictor here: it measures the
    // pages the slowest reader actually left pinned, which the capped
    // average deliberately hides from the push/pull trade.
    if (!pull && options_.governor != nullptr && options_.governor->usable()) {
      const double avg_retention =
          static_cast<double>(sp_lag_uncapped_accumulated_.load()) / n;
      // Compare the *effective* retention: spill writes already in
      // flight are leaving memory the moment they are durable, so
      // charging the predicted session against the raw history as well
      // would double-count them against the budget and latch the
      // preference on for the duration of every async write burst.
      const double effective_retention =
          avg_retention -
          static_cast<double>(options_.governor->SpillsInFlight());
      if (effective_retention >= policy.spill_retention_factor *
                                     static_cast<double>(
                                         options_.governor->budget_pages())) {
        pull = spill_pull = true;
      }
    }
  }
  if (pull) {
    adaptive_pull_.fetch_add(1, std::memory_order_relaxed);
    if (spill_pull) adaptive_pull_spill_.fetch_add(1, std::memory_order_relaxed);
    return AdmissionChoice{SpMode::kPull, "fallback", spill_pull, 0};
  }
  adaptive_push_.fetch_add(1, std::memory_order_relaxed);
  return AdmissionChoice{SpMode::kPush, "fallback", false, 0};
}

void Stage::RecordSessionClose(uint64_t sig,
                               const SharingChannel::Stats& stats) {
  // The signature's ring buffer sees the raw session outcome: the lag is
  // FIFO-capped (the push-convoy signal), the retention is not (the
  // spill-demand signal) — the same two views the stage-wide fold below
  // keeps, but attributable to this signature alone.
  SignatureStats::SessionSample sample;
  sample.satellites = stats.readers_attached > 1
                          ? static_cast<double>(stats.readers_attached - 1)
                          : 0.0;
  sample.pages = static_cast<double>(stats.pages_produced);
  sample.lag = static_cast<double>(
      std::min(stats.max_consumer_lag, options_.fifo_capacity));
  sample.retention = static_cast<double>(stats.max_consumer_lag);
  cost_model_->RecordSession(sig, sample);

  sp_sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  if (stats.readers_attached > 1) {
    sp_satellites_served_.fetch_add(
        static_cast<int64_t>(stats.readers_attached - 1),
        std::memory_order_relaxed);
  }
  sp_pages_produced_.fetch_add(static_cast<int64_t>(stats.pages_produced),
                               std::memory_order_relaxed);
  // Cap each session's lag contribution at the FIFO capacity — the point
  // where a push host would convoy. Pull sessions can legitimately run
  // far ahead of their readers (and a mid-production attach starts a
  // reader arbitrarily far behind); letting that unbounded lag into the
  // average would latch the policy into pull forever.
  sp_lag_accumulated_.fetch_add(
      static_cast<int64_t>(
          std::min(stats.max_consumer_lag, options_.fifo_capacity)),
      std::memory_order_relaxed);
  // The spill preference's retention predictor. Not FIFO-capped (that
  // cap exists for the push/pull trade above), but saturated at a small
  // multiple of the budget: the predictor only needs "retention above
  // budget", and one outlier session (a mid-production attach can lag by
  // the whole result) must not latch the mean above the threshold for
  // thousands of sessions.
  if (options_.governor != nullptr) {
    const std::size_t saturation =
        4 * std::max<std::size_t>(1, options_.governor->budget_pages());
    sp_lag_uncapped_accumulated_.fetch_add(
        static_cast<int64_t>(std::min(stats.max_consumer_lag, saturation)),
        std::memory_order_relaxed);
  }
}

PageSourceRef Stage::SubmitOrShare(PlanNodeRef node, ExecContextRef ctx,
                                   const MakeInputsFn& make_inputs,
                                   const PreparePacketFn& prepare) {
  packets_submitted_.fetch_add(1, std::memory_order_relaxed);
  const SpMode configured = sp_mode();
  const uint64_t sig = node->Signature();

  int64_t gap = 0;
  if (configured != SpMode::kOff) {
    // Attaching to an in-flight identical packet is a free win in every
    // sharing mode, whichever transport the host happens to use. (kOff
    // submissions skip the registry entirely — no lock on that path.)
    std::lock_guard<std::mutex> lock(registry_mutex_);
    if (configured == SpMode::kAdaptive) {
      gap = RecordSubmissionLocked(sig);
      cost_model_->RecordArrival(sig, NowMicros());
    }
    auto it = channels_.find(sig);
    if (it != channels_.end()) {
      const SpMode host_mode = it->second->mode();
      if (PageSourceRef reader = it->second->AttachReader()) {
        sp_hits_.fetch_add(1, std::memory_order_relaxed);
        sp_opportunities_->Increment();
        // Host-failure containment: a host abort poisons the channel, so
        // the satellite reader rides a wrapper that re-dispatches the
        // packet unshared (once) when the poison arrives before any page
        // did. The re-run is forced kOff — attaching again could land on
        // the same failing host.
        auto rerun = [this, node, ctx, make_inputs, prepare] {
          return SubmitFresh(node, ctx, make_inputs, prepare,
                             AdmissionChoice{SpMode::kOff, "rerun", false, 0},
                             false);
        };
        auto wrapped = std::make_shared<SatelliteRerunSource>(
            std::move(reader), ctx, std::move(rerun), satellite_reruns_);
        wrapped->BindStopCheck(MakeStopProbe(ctx));
        // The free win: this query executes nothing at this stage. Its
        // explain record points at the satellite reader, whose delivered
        // pages all count as served-by-the-host.
        ExplainState::PendingStage rec;
        rec.stage = name_;
        rec.signature = sig;
        rec.role = QueryExplain::StageRecord::Role::kSatellite;
        rec.transport = host_mode == SpMode::kPush ? "push" : "pull";
        rec.decided_by = "attach";
        rec.source = wrapped;
        ctx->explain()->AddStage(std::move(rec));
        return wrapped;
      }
      // Attach window closed (push host already emitting, or the host
      // finished/aborted): replace with a fresh host below.
      channels_.erase(it);
    }
  }

  AdmissionChoice choice{configured, "static", false, 0};
  if (configured == SpMode::kAdaptive) choice = ChooseAdaptiveMode(sig, gap);
  return SubmitFresh(std::move(node), std::move(ctx), make_inputs, prepare,
                     choice, configured == SpMode::kAdaptive);
}

PageSourceRef Stage::SubmitFresh(PlanNodeRef node, ExecContextRef ctx,
                                 const MakeInputsFn& make_inputs,
                                 const PreparePacketFn& prepare,
                                 const AdmissionChoice& choice,
                                 bool record_work) {
  const uint64_t sig = node->Signature();
  ExplainState::PendingStage rec;
  rec.stage = name_;
  rec.signature = sig;
  rec.decided_by = choice.decided_by;
  rec.spill_preferred = choice.spill_preferred;
  rec.confidence = choice.confidence;

  if (choice.mode == SpMode::kOff) {
    auto fifo = std::make_shared<FifoBuffer>(options_.fifo_capacity);
    fifo->BindStopCheck(MakeStopProbe(ctx));
    rec.role = QueryExplain::StageRecord::Role::kUnshared;
    rec.source = fifo;
    const std::size_t explain_index = ctx->explain()->AddStage(std::move(rec));
    Enqueue(std::move(node), std::move(ctx), fifo, make_inputs, prepare,
            record_work, explain_index);
    return fifo;
  }

  SharingChannelOptions copts;
  copts.fifo_capacity = options_.fifo_capacity;
  copts.metrics = metrics_;
  copts.governor = options_.governor;
  // Trace correlation: the channel's spans carry the *host's* query id
  // (the query whose packet produces the shared pages) and the session
  // signature every satellite shares.
  copts.query_id = ctx->query_id();
  copts.signature = sig;
  // Online transport-cost feed: the channel samples its own copy/attach
  // wall time and the model's EWMA replaces the fixed constants (the
  // cost model outlives every channel — Stage owns both).
  copts.on_copy_cost = [this](double ns_per_page) {
    cost_model_->RecordCopyCost(ns_per_page);
  };
  copts.on_attach_cost = [this](double attach_ns) {
    cost_model_->RecordAttachCost(attach_ns);
  };
  // The close hook needs the channel's identity to deregister exactly this
  // session (a newer host may have replaced it under the same signature),
  // but the channel is constructed after the hook — bridge with a slot.
  auto self_slot = std::make_shared<std::weak_ptr<SharingChannel>>();
  copts.on_close = [this, sig, self_slot](const SharingChannel::Stats& stats) {
    RecordSessionClose(sig, stats);
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto it = channels_.find(sig);
    if (it != channels_.end() && it->second == self_slot->lock()) {
      channels_.erase(it);
    }
  };

  SharingChannelRef channel = MakeSharingChannel(choice.mode, std::move(copts));
  *self_slot = channel;
  PageSourceRef host_reader = channel->AttachReader();
  SHARING_CHECK(host_reader != nullptr);
  host_reader->BindStopCheck(MakeStopProbe(ctx));
  rec.role = QueryExplain::StageRecord::Role::kHost;
  rec.transport = choice.mode == SpMode::kPush ? "push" : "pull";
  rec.source = host_reader;
  const std::size_t explain_index = ctx->explain()->AddStage(std::move(rec));
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    channels_[sig] = channel;
  }
  Enqueue(std::move(node), std::move(ctx), channel, make_inputs, prepare,
          record_work, explain_index);
  return host_reader;
}

void Stage::Enqueue(PlanNodeRef node, ExecContextRef ctx, PageSinkRef output,
                    const MakeInputsFn& make_inputs,
                    const PreparePacketFn& prepare, bool record_work,
                    std::size_t explain_index) {
  auto packet = std::make_shared<Packet>();
  packet->node = std::move(node);
  packet->ctx = std::move(ctx);
  packet->output = std::move(output);
  if (make_inputs) packet->inputs = make_inputs();
  if (prepare) prepare(*packet);
  // Batched transport wiring: the operator keeps its page-at-a-time
  // loop, but every page crossing a stage boundary rides a batch — one
  // lock acquisition (FIFO) or one publication + wake sweep (SPL) per
  // sp_read_batch pages instead of per page.
  if (options_.sp_read_batch > 1) {
    for (PageSourceRef& input : packet->inputs) {
      input = std::make_shared<BatchingSource>(std::move(input),
                                               options_.sp_read_batch);
    }
    packet->output = std::make_shared<BatchingSink>(std::move(packet->output),
                                                    options_.sp_read_batch);
  }

  packets_executed_.fetch_add(1, std::memory_order_relaxed);
  // Every packet run is wall-timed (two clock reads): the time feeds the
  // stage.run_packet histogram, the query's explain record, and — only
  // when `record_work` (the stage was adaptive at submission; the model
  // feed costs a mutex + ring push a static stage must not pay) — the
  // signature's cost-model history. Wall (not CPU) deliberately: a
  // packet convoyed on output backpressure is exactly the work a
  // satellite is spared.
  bool ok = pool_.Submit([this, packet, record_work, explain_index] {
    TraceSpan span("stage", trace_name_, packet->ctx->query_id(),
                   packet->node->Signature());
    Stopwatch watch;
    RunPacket(*packet);
    const int64_t elapsed = watch.ElapsedMicros();
    run_packet_hist_->Record(elapsed);
    packet->ctx->explain()->AddRunMicros(explain_index, elapsed);
    if (record_work) {
      cost_model_->RecordExecution(packet->node->Signature(),
                                   static_cast<double>(elapsed));
    }
  });
  if (!ok) {
    for (const auto& input : packet->inputs) input->CancelConsumer();
    packet->output->Close(Status::Aborted("stage shut down"));
  }
}

}  // namespace sharing
