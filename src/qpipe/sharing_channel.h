// SharingChannel: the unified transport behind Simultaneous Pipelining.
//
// A channel is the fan-out point between one producing host packet and any
// number of consuming queries. The producer side is a plain PageSink
// (Put/Close); consumers attach through AttachReader(), which either
// succeeds (the consumer becomes an SP satellite fed from the channel) or
// returns nullptr (the attach window has closed — the caller must execute
// its own packet). The two implementations embody the paper's two SP
// models:
//
//  * push (PushChannel): the classic QPipe tee. Every reader owns a FIFO;
//    the host's Put copies the page into each satellite FIFO, serializing
//    all copies through the producer thread. The attach window closes at
//    the first emitted page — a late satellite would miss results.
//  * pull (PullChannel): the paper's Shared Pages List. Pages are appended
//    once and readers share references at their own pace; the attach
//    window stays open for the host's whole production and pages are
//    reclaimed once every reader has passed them. With an SpBudgetGovernor
//    configured, retention beyond the engine-wide budget overflows to a
//    spill file instead of RAM (bounded memory — see shared_pages_list.h,
//    sp_budget_governor.h and DESIGN.md).
//
// Stage keeps a single signature -> SharingChannel registry, so admission
// logic (including the adaptive per-packet policy) is independent of which
// transport a session uses. Future transports (NUMA-partitioned channels,
// remote shuffle) plug in behind the same interface.

#pragma once

#include <functional>
#include <memory>

#include "common/metrics.h"
#include "exec/page_stream.h"
#include "qpipe/fifo_buffer.h"
#include "qpipe/shared_pages_list.h"
#include "qpipe/sp_budget_governor.h"
#include "qpipe/sp_mode.h"

namespace sharing {

class SharingChannel : public PageSink {
 public:
  /// Live statistics used by the adaptive admission policy and surfaced to
  /// the on_close hook when the producer finishes.
  struct Stats {
    std::size_t readers_attached = 0;  // ever, including the host's own
    std::size_t readers_active = 0;
    std::size_t pages_produced = 0;
    /// Largest (pages produced - slowest reader position) sampled *during
    /// production*. Sampling at Put time measures consumer slowness while
    /// the producer is still running — the signal the adaptive policy
    /// wants — rather than the undrained queue depth a close-time sample
    /// would report for any non-trivial result.
    std::size_t max_consumer_lag = 0;
    bool attach_window_open = false;
  };

  /// One consumer's observable state within the channel.
  struct ReaderIntrospection {
    /// Pages this reader has consumed.
    std::size_t position = 0;
    /// Pull readers only: currently blocked waiting for publication,
    /// and for how long (0 otherwise). Push FIFOs block inside pop and
    /// do not expose a parking flag.
    bool parked = false;
    int64_t parked_for_micros = 0;
    bool cancelled = false;
  };

  /// The admin server's deep view of one live sharing session: the
  /// summary Stats plus per-reader cursors and — for pull channels —
  /// the SPL's resident-vs-spilled retention split and frontiers.
  /// Implementations ride their existing synchronization (channel
  /// mutex / SPL shard latches + atomics); never called on a hot path.
  struct Introspection {
    SpMode mode = SpMode::kOff;
    Stats stats;
    /// Pages ever published (== stats.pages_produced).
    std::size_t published = 0;
    /// Retained pages split by tier (pull channels; push channels keep
    /// no history, both stay 0).
    std::size_t resident_pages = 0;
    std::size_t spilled_pages = 0;
    /// Pages reclaimed behind every reader (pull only).
    std::size_t reclaimed_pages = 0;
    std::size_t min_reader_position = 0;
    bool closed = false;
    /// Pull only: attach window sealed (no future satellite).
    bool sealed = false;
    std::vector<ReaderIntrospection> readers;
  };

  /// Attaches a new consumer. Returns nullptr when the attach window has
  /// closed (push: host already emitted; pull: producer closed) or the
  /// host aborted.
  virtual PageSourceRef AttachReader() = 0;

  virtual Stats GetStats() const = 0;

  /// Deep state for the admin surface (see Introspection).
  virtual Introspection Introspect() const = 0;

  /// Which SP model this channel implements (kPush or kPull).
  virtual SpMode mode() const = 0;
};

using SharingChannelRef = std::shared_ptr<SharingChannel>;

struct SharingChannelOptions {
  /// Per-reader FIFO capacity (push channels only).
  std::size_t fifo_capacity = FifoBuffer::kDefaultCapacity;

  MetricsRegistry* metrics = &MetricsRegistry::Global();

  /// Trace correlation (common/trace.h): the host query's id and the
  /// session signature, stamped on the channel's put spans and attach
  /// instants so a Chrome-trace viewer can tie transport activity back
  /// to the query that hosted the session. 0 = not traced/unknown.
  uint64_t query_id = 0;
  uint64_t signature = 0;

  /// Engine-wide SP memory governor (pull channels only). When set and
  /// enabled, the channel's SPL spills retained pages to the governor's
  /// temp store whenever the engine-wide in-memory SP page count exceeds
  /// the budget, instead of letting a slow reader pin the host's whole
  /// result in RAM. Null: retention bounded only by reclamation (PR 1
  /// behavior).
  std::shared_ptr<SpBudgetGovernor> governor;

  /// Invoked exactly once, after the producer's Close has propagated to
  /// every reader. Receives the channel's closing stats (satellite count,
  /// pages produced, lag) so the stage can feed its adaptive policy and
  /// deregister the session. Called without channel locks held.
  std::function<void(const SharingChannel::Stats&)> on_close;

  /// Online cost measurement hooks (the adaptive cost model's EWMA feed;
  /// see SharingCostModel::RecordCopyCost/RecordAttachCost). Both are
  /// invoked from hot paths — push channels sample one deep copy every
  /// few dozen (nanoseconds per copied page); pull channels time every
  /// AttachReader (nanoseconds per attach). Leave unset to skip the
  /// measurement entirely.
  std::function<void(double copy_ns_per_page)> on_copy_cost;
  std::function<void(double attach_ns)> on_attach_cost;
};

/// Builds a channel for `mode`, which must be kPush or kPull.
SharingChannelRef MakeSharingChannel(SpMode mode, SharingChannelOptions options);

}  // namespace sharing
