// Stage: QPipe's self-contained operator module — a work queue, a local
// worker pool, and the Simultaneous Pipelining machinery.
//
// SP happens at packet admission: when a submitted packet's plan signature
// matches an in-flight packet at the same stage, the newcomer becomes a
// *satellite* of the in-flight *host* and performs no work of its own. The
// host's output flows through a SharingChannel (see sharing_channel.h);
// satellites are the channel's extra readers:
//
//  * push mode (original QPipe): the channel copies every output page into
//    the satellite's FIFO. The attach window closes when the host emits
//    its first page (a late satellite would miss results).
//  * pull mode (SPL): the satellite attaches a reader to the host's
//    SharedPagesList and reads the shared pages from the beginning; the
//    attach window stays open for the host's entire production.
//  * adaptive mode: the stage picks off/push/pull per packet from live
//    stats — signature popularity decides *whether* a packet is worth
//    considering for sharing at all, and the per-signature cost model
//    (qpipe/cost_model.h: arrival rate, work per packet, satellite
//    count, result size, consumer lag, spill retention) decides whether
//    sharing actually pays and *which* transport to host with. While a
//    signature's history is below cost_model.min_samples the stage-wide
//    AdaptiveSpPolicy thresholds decide instead.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/elastic_pool.h"
#include "common/metrics.h"
#include "qpipe/cost_model.h"
#include "qpipe/fifo_buffer.h"
#include "qpipe/packet.h"
#include "qpipe/sharing_channel.h"
#include "qpipe/sp_mode.h"

namespace sharing {

/// Tuning for SpMode::kAdaptive.
struct AdaptiveSpPolicy {
  /// A signature is "hot" when it was last submitted within this many
  /// stage submissions; cold signatures execute unshared (sharing is not
  /// always a win — hosting a channel costs registry and window
  /// bookkeeping that a never-matched packet would waste).
  int64_t popularity_window = 64;

  /// Mean satellites per closed sharing session at/above which hot
  /// packets host a pull channel: many satellites make the push model's
  /// producer-serialized copies the bottleneck.
  double pull_satellite_threshold = 2.0;

  /// Mean pages per closed sharing session at/above which pull is chosen
  /// (large results make per-satellite copies expensive).
  double pull_pages_threshold = 64.0;

  /// Mean production-time consumer lag (pages behind the producer,
  /// sampled while the host is still putting) at/above which pull is
  /// chosen: laggy consumers stall a push host on FIFO backpressure,
  /// while pull readers lag without blocking the producer.
  double pull_lag_threshold = 16.0;

  /// Signatures the popularity map remembers; beyond this the
  /// least-recently-seen signature is evicted (long-lived servers keep
  /// hot-signature history instead of shedding everything).
  std::size_t popularity_capacity = 4096;

  /// Spill preference (only with an SpBudgetGovernor configured): when
  /// mean *uncapped* closing lag — the retention the session's slowest
  /// reader forces — exceeds this fraction of the memory budget, the
  /// packet is hosted pull so the spill tier absorbs the overflow,
  /// rather than push (whose capped-lag average hides the convoy) or no
  /// sharing.
  double spill_retention_factor = 1.0;
};

/// Per-stage statistics surfaced by the demo GUI (Scenario IV's key metric
/// is SP opportunities exploited per stage).
struct StageStats {
  int64_t packets_submitted = 0;
  int64_t packets_executed = 0;  // hosts + unshared
  int64_t sp_hits = 0;           // satellites served without execution

  // Sharing-session history (closed sessions only) — the inputs to the
  // adaptive policy.
  int64_t sp_sessions_closed = 0;
  int64_t sp_satellites_served = 0;
  int64_t sp_pages_produced = 0;
  /// Sum over closed sessions of their production-time max consumer lag;
  /// divide by sp_sessions_closed for the mean ChooseAdaptiveMode
  /// compares against pull_lag_threshold.
  int64_t sp_lag_accumulated = 0;
  /// Like sp_lag_accumulated but not FIFO-capped — the retention (pages
  /// the slowest reader left pinned) the spill preference compares
  /// against the governor's budget. Each session's contribution
  /// saturates at 4x the budget so one extreme laggard cannot latch the
  /// mean; accumulated only when a governor is configured.
  int64_t sp_lag_uncapped_accumulated = 0;

  // Adaptive admission decisions taken for fresh packets.
  int64_t adaptive_off = 0;
  int64_t adaptive_push = 0;
  int64_t adaptive_pull = 0;
  /// Subset of adaptive_off gated by the popularity window (cold, never
  /// repeated recently) rather than decided by the cost model. The
  /// difference adaptive_off - adaptive_off_cold is "hot but sharing
  /// does not pay" — the regime only a cost model can detect.
  int64_t adaptive_off_cold = 0;
  /// Subset of adaptive_pull chosen by the spill preference: lag history
  /// predicted retention above the SP memory budget, so the packet was
  /// hosted pull + spill instead of push.
  int64_t adaptive_pull_spill = 0;
};

class Stage {
 public:
  struct Options {
    SpMode sp_mode = SpMode::kOff;
    std::size_t initial_workers = 2;

    /// Hard cap on the stage's elastic pool. CAUTION: progress can require
    /// more concurrent packets than the cap — nested same-stage join
    /// chains, or push-SP fan-outs whose satellite consumers must all
    /// drain concurrently — and such workloads deadlock under a tight cap
    /// by design. QPipe sizes pools generously for exactly this reason;
    /// lower the cap only for controlled single-stage experiments.
    std::size_t max_workers = 1024;

    std::size_t fifo_capacity = FifoBuffer::kDefaultCapacity;

    /// Pages a packet moves per transport call: inputs are wrapped in a
    /// BatchingSource (one SplReader/FifoBuffer lock acquisition serves
    /// up to this many pages) and the output in a BatchingSink (one SPL
    /// publication / FIFO push covers the run). 0 or 1 disables batching
    /// (page-at-a-time, the pre-batching behavior). Consumer-lag signals
    /// and reclamation become batch-granular.
    std::size_t sp_read_batch = 8;

    AdaptiveSpPolicy adaptive;

    /// Per-signature history + cost model behind SpMode::kAdaptive (see
    /// qpipe/cost_model.h). The popularity window above still gates
    /// *whether* a signature is worth considering; the model decides
    /// off/push/pull once a signature has enough history, falling back
    /// to the stage-wide AdaptiveSpPolicy thresholds below min_samples.
    CostModelOptions cost_model;

    /// Engine-wide SP memory governor shared by every stage of an engine;
    /// pull channels spill retention beyond its budget to disk. Null:
    /// no budget, no spill tier.
    std::shared_ptr<SpBudgetGovernor> governor;
  };

  Stage(std::string name, Options options, MetricsRegistry* metrics);
  virtual ~Stage();

  SHARING_DISALLOW_COPY_AND_MOVE(Stage);

  /// Lazily produces the packet's input sources. Only invoked when the
  /// packet will actually execute — a satellite never dispatches its
  /// sub-plan, which is exactly the work SP saves.
  using MakeInputsFn = std::function<std::vector<PageSourceRef>()>;

  /// Final per-packet preparation hook (the engine binds scan packets to
  /// their table and circular-scan group here).
  using PreparePacketFn = std::function<void(Packet&)>;

  /// Either attaches to an in-flight identical packet (returning a source
  /// of the shared results) or enqueues a fresh packet (returning a source
  /// of its output).
  PageSourceRef SubmitOrShare(PlanNodeRef node, ExecContextRef ctx,
                              const MakeInputsFn& make_inputs,
                              const PreparePacketFn& prepare = {});

  void SetSpMode(SpMode mode);
  SpMode sp_mode() const;

  const std::string& name() const { return name_; }
  StageStats GetStats() const;

  /// One live sharing session's deep state, tagged with its registry
  /// signature and the owning stage's name.
  struct ChannelSnapshot {
    std::string stage;
    uint64_t signature = 0;
    SharingChannel::Introspection info;
  };

  /// Deep dump of every in-flight sharing session (the admin server's
  /// `/channels` feed). Collects the channel refs under the existing
  /// registry mutex, then introspects each channel outside it — the
  /// same locking discipline SubmitOrShare already follows.
  std::vector<ChannelSnapshot> ChannelsSnapshot() const;

  /// Per-signature cost-model view (bench / test surface): every tracked
  /// signature's history means and decision counts.
  std::vector<SharingCostModel::SignatureSnapshot> CostModelSnapshot() const {
    return cost_model_->Snapshot();
  }

  /// Human-readable per-signature dump (the cost_model_debug surface).
  std::string CostModelDump() const { return cost_model_->DebugDump(); }

  /// Drains and joins the worker pool (also run by the destructor).
  void Shutdown();

 protected:
  /// Runs the packet's operator to completion (implemented per stage).
  virtual void RunPacket(Packet& packet) = 0;

 private:
  /// A fresh packet's admission outcome plus the provenance the
  /// sharing-explain report records (who decided, with what confidence).
  /// `decided_by` values mirror QueryExplain::StageRecord::decided_by.
  struct AdmissionChoice {
    SpMode mode = SpMode::kOff;
    const char* decided_by = "static";
    bool spill_preferred = false;
    double confidence = 0;
  };

  /// `record_work` = the stage was configured adaptive at submission:
  /// the packet's wall time feeds the signature's cost-model history.
  PageSourceRef SubmitFresh(PlanNodeRef node, ExecContextRef ctx,
                            const MakeInputsFn& make_inputs,
                            const PreparePacketFn& prepare,
                            const AdmissionChoice& choice, bool record_work);

  /// `explain_index` = the query's explain record charged with this
  /// packet's RunPacket wall time.
  void Enqueue(PlanNodeRef node, ExecContextRef ctx, PageSinkRef output,
               const MakeInputsFn& make_inputs,
               const PreparePacketFn& prepare, bool record_work,
               std::size_t explain_index);

  /// Records a submission of `sig` and returns how many stage submissions
  /// happened since it was last seen (INT64_MAX for the first sighting).
  /// Only called in adaptive mode; requires registry_mutex_ held.
  int64_t RecordSubmissionLocked(uint64_t sig);

  /// The adaptive per-packet decision for a fresh (non-attaching) packet:
  /// popularity gate, then the signature's cost model, then the
  /// stage-wide threshold fallback while history is thin.
  AdmissionChoice ChooseAdaptiveMode(uint64_t sig,
                                     int64_t submissions_since_last_seen);

  /// The stage-wide threshold heuristic — the fallback while a
  /// signature's history is below cost_model.min_samples.
  AdmissionChoice ChooseFallbackMode();

  /// Folds a closed channel's stats into the adaptive history (stage-wide
  /// means and the signature's ring buffer).
  void RecordSessionClose(uint64_t sig, const SharingChannel::Stats& stats);

  std::string name_;
  mutable std::mutex mode_mutex_;
  Options options_;
  MetricsRegistry* metrics_;
  Counter* sp_opportunities_;
  /// Satellites transparently re-dispatched unshared after their host
  /// failed before delivering any page (see SatelliteRerunSource).
  Counter* satellite_reruns_;
  Histogram* run_packet_hist_;
  /// Interned "run_packet:<stage>" — the stage's RunPacket span name
  /// (trace event names must outlive every ring slot).
  const char* trace_name_;

  std::atomic<int64_t> packets_submitted_{0};
  std::atomic<int64_t> packets_executed_{0};
  std::atomic<int64_t> sp_hits_{0};

  std::atomic<int64_t> sp_sessions_closed_{0};
  std::atomic<int64_t> sp_satellites_served_{0};
  std::atomic<int64_t> sp_pages_produced_{0};
  std::atomic<int64_t> sp_lag_accumulated_{0};
  std::atomic<int64_t> sp_lag_uncapped_accumulated_{0};
  std::atomic<int64_t> adaptive_off_{0};
  std::atomic<int64_t> adaptive_push_{0};
  std::atomic<int64_t> adaptive_pull_{0};
  std::atomic<int64_t> adaptive_pull_spill_{0};
  std::atomic<int64_t> adaptive_off_cold_{0};

  /// Per-signature history + admission cost model. Session outcomes are
  /// recorded in every sharing mode (sessions are rare and give a stage
  /// switched to kAdaptive warm history); per-packet work timing only in
  /// adaptive mode (it costs a mutex + ring push per packet).
  std::unique_ptr<SharingCostModel> cost_model_;

  mutable std::mutex registry_mutex_;
  /// In-flight sharing sessions by plan signature, transport-agnostic.
  std::unordered_map<uint64_t, SharingChannelRef> channels_;
  /// Popularity tracking for the adaptive policy, LRU-bounded at
  /// `adaptive.popularity_capacity`: signature -> {submission sequence
  /// number when last seen, position in lru_}. lru_ front = most
  /// recently seen; evicting the back sheds the coldest signature, so a
  /// long-lived server keeps its hot-template history instead of
  /// periodically forgetting everything.
  struct Popularity {
    int64_t seq;
    std::list<uint64_t>::iterator lru_it;
  };
  std::unordered_map<uint64_t, Popularity> last_seen_;
  std::list<uint64_t> lru_;
  int64_t submit_seq_ = 0;

  ElasticThreadPool pool_;
};

}  // namespace sharing
