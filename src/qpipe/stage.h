// Stage: QPipe's self-contained operator module — a work queue, a local
// worker pool, and the Simultaneous Pipelining machinery.
//
// SP happens at packet admission: when a submitted packet's plan signature
// matches an in-flight packet at the same stage, the newcomer becomes a
// *satellite* of the in-flight *host* and performs no work of its own:
//
//  * push mode (original QPipe): the host's TeeSink copies every output
//    page into the satellite's FIFO. The attach window closes when the
//    host emits its first page (a late satellite would miss results).
//  * pull mode (SPL): the satellite attaches a reader to the host's
//    SharedPagesList and reads the shared pages from the beginning; the
//    attach window stays open for the host's entire production.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/elastic_pool.h"
#include "common/metrics.h"
#include "qpipe/fifo_buffer.h"
#include "qpipe/packet.h"
#include "qpipe/shared_pages_list.h"
#include "qpipe/sp_mode.h"

namespace sharing {

/// Per-stage statistics surfaced by the demo GUI (Scenario IV's key metric
/// is SP opportunities exploited per stage).
struct StageStats {
  int64_t packets_submitted = 0;
  int64_t packets_executed = 0;  // hosts + unshared
  int64_t sp_hits = 0;           // satellites served without execution
};

class Stage {
 public:
  struct Options {
    SpMode sp_mode = SpMode::kOff;
    std::size_t initial_workers = 2;

    /// Hard cap on the stage's elastic pool. CAUTION: progress can require
    /// more concurrent packets than the cap — nested same-stage join
    /// chains, or push-SP fan-outs whose satellite consumers must all
    /// drain concurrently — and such workloads deadlock under a tight cap
    /// by design. QPipe sizes pools generously for exactly this reason;
    /// lower the cap only for controlled single-stage experiments.
    std::size_t max_workers = 1024;

    std::size_t fifo_capacity = FifoBuffer::kDefaultCapacity;
  };

  Stage(std::string name, Options options, MetricsRegistry* metrics);
  virtual ~Stage();

  SHARING_DISALLOW_COPY_AND_MOVE(Stage);

  /// Lazily produces the packet's input sources. Only invoked when the
  /// packet will actually execute — a satellite never dispatches its
  /// sub-plan, which is exactly the work SP saves.
  using MakeInputsFn = std::function<std::vector<PageSourceRef>()>;

  /// Final per-packet preparation hook (the engine binds scan packets to
  /// their table and circular-scan group here).
  using PreparePacketFn = std::function<void(Packet&)>;

  /// Either attaches to an in-flight identical packet (returning a source
  /// of the shared results) or enqueues a fresh packet (returning a source
  /// of its output).
  PageSourceRef SubmitOrShare(PlanNodeRef node, ExecContextRef ctx,
                              const MakeInputsFn& make_inputs,
                              const PreparePacketFn& prepare = {});

  void SetSpMode(SpMode mode);
  SpMode sp_mode() const;

  const std::string& name() const { return name_; }
  StageStats GetStats() const;

  /// Drains and joins the worker pool (also run by the destructor).
  void Shutdown();

 protected:
  /// Runs the packet's operator to completion (implemented per stage).
  virtual void RunPacket(Packet& packet) = 0;

 private:
  class TeeSink;
  struct PushSession;
  struct PullSession;

  PageSourceRef SubmitFresh(PlanNodeRef node, ExecContextRef ctx,
                            const MakeInputsFn& make_inputs,
                            const PreparePacketFn& prepare, SpMode mode);

  void Enqueue(PlanNodeRef node, ExecContextRef ctx, PageSinkRef output,
               const MakeInputsFn& make_inputs,
               const PreparePacketFn& prepare);

  std::string name_;
  mutable std::mutex mode_mutex_;
  Options options_;
  MetricsRegistry* metrics_;
  Counter* sp_opportunities_;
  Counter* sp_pages_copied_;
  Counter* sp_bytes_copied_;

  std::atomic<int64_t> packets_submitted_{0};
  std::atomic<int64_t> packets_executed_{0};
  std::atomic<int64_t> sp_hits_{0};

  std::mutex registry_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<PushSession>> push_sessions_;
  std::unordered_map<uint64_t, std::shared_ptr<PullSession>> pull_sessions_;

  ElasticThreadPool pool_;
};

}  // namespace sharing
