#include "qpipe/engine.h"

#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"
#include "server/admin_server.h"
#include "server/watchdog.h"

namespace sharing {

StatusOr<ResultSet> QueryHandle::Collect() {
  SHARING_CHECK(valid());
  const uint64_t qid = ctx_->query_id();
  const uint64_t sig = plan_->Signature();
  TraceSpan collect_span("engine", "query.collect", qid, sig);
  ResultSet result(schema());
  while (PageRef page = root_->Next()) {
    if (ctx_->StopRequested()) {
      // The collector is the last boundary a deadline can stop at; a
      // partial result is discarded, never returned as if complete.
      root_->CancelConsumer();
      return ctx_->TerminalStatus();
    }
    result.AppendPage(*page);
  }
  Status st = root_->FinalStatus();
  if (!st.ok()) {
    // An expired deadline is the root cause of whatever downstream
    // status the stop surfaced as (aborted readers, closed channels).
    if (ctx_->deadline_exceeded()) return ctx_->TerminalStatus();
    return st;
  }
  // The query is done: stamp its wall clock, feed the latency
  // histogram, and attach the finished explain report. The engine-layer
  // submit->finish span is emitted here as one complete event (span
  // start = submission) so a ring overwrite can never strand half of a
  // begin/end pair.
  ctx_->explain()->MarkFinished();
  const int64_t total = ctx_->explain()->total_micros();
  ctx_->metrics()->GetHistogram(metrics::kQueryLatencyMicros)->Record(total);
  Trace::RecordComplete("engine", "query", ctx_->explain()->start_micros(),
                        total, qid, sig);
  result.SetExplain(
      std::make_shared<const QueryExplain>(ctx_->explain()->Build(qid)));
  return result;
}

QueryExplain QueryHandle::Explain() const {
  SHARING_CHECK(valid());
  return ctx_->explain()->Build(ctx_->query_id());
}

void QueryHandle::Cancel() {
  if (!valid()) return;
  ctx_->Cancel();
  root_->CancelConsumer();
}

QPipeEngine::QPipeEngine(Catalog* catalog, QPipeOptions options,
                         MetricsRegistry* metrics)
    : catalog_(catalog), options_(options), metrics_(metrics) {
  // Tracing is process-wide (rings are per thread, not per engine):
  // an engine configured with the knob turns it on and leaves it on —
  // a second engine in the same process shares the recorder.
  if (options_.trace_enabled) Trace::Enable(options_.trace_buffer_events);
  // Fault registry: bind the fire counter to this engine's registry and
  // arm any configured schedule. An invalid spec aborts construction —
  // a chaos run that silently tests nothing is worse than one that
  // refuses to start.
  FaultRegistry::Global().BindMetrics(metrics_);
  if (!options_.fault_spec.empty()) {
    Status fault_st = FaultRegistry::Global().Arm(options_.fault_spec);
    SHARING_CHECK(fault_st.ok())
        << "bad fault_spec: " << fault_st.ToString();
  }
  if (options_.stats_report_period_ms > 0) {
    StatsReporter::Options ropts;
    ropts.metrics = metrics_;
    ropts.period_ms = options_.stats_report_period_ms;
    ropts.path = options_.stats_report_path;
    stats_reporter_ = std::make_unique<StatsReporter>(std::move(ropts));
  }
  if (options_.io_threads > 0) {
    IoScheduler::Options iopts;
    iopts.threads = options_.io_threads;
    iopts.budget_mib_per_sec = options_.io_budget_mib;
    iopts.retry_limit = options_.io_retry_limit;
    iopts.metrics = metrics_;
    io_scheduler_ = std::make_shared<IoScheduler>(iopts);
  }
  if (options_.sp_memory_budget > 0) {
    SpBudgetGovernor::Options gopts;
    gopts.budget_pages = options_.sp_memory_budget;
    gopts.spill_path = options_.sp_spill_path;
    gopts.read_latency_micros = options_.sp_spill_read_latency_micros;
    gopts.write_latency_micros = options_.sp_spill_write_latency_micros;
    gopts.scheduler = io_scheduler_;
    gopts.spill_write_window = options_.spill_write_window;
    gopts.metrics = metrics_;
    sp_governor_ = SpBudgetGovernor::Create(std::move(gopts));
  }

  Stage::Options base;
  base.initial_workers = options_.stage_workers;
  base.max_workers = options_.stage_max_workers;
  base.fifo_capacity = options_.fifo_capacity;
  base.sp_read_batch = options_.sp_read_batch;
  base.adaptive = options_.adaptive;
  base.cost_model.history = options_.cost_model_history;
  base.cost_model.min_samples = options_.cost_model_min_samples;
  base.cost_model.debug = options_.cost_model_debug;
  // The model tracks the same signatures the popularity LRU does.
  base.cost_model.capacity = options_.adaptive.popularity_capacity;
  base.governor = sp_governor_;

  Stage::Options o = base;
  o.sp_mode = options_.scan_sp;
  tscan_ = std::make_unique<TscanStage>(o, metrics_);
  o.sp_mode = options_.join_sp;
  join_ = std::make_unique<JoinStage>(o, metrics_);
  o.sp_mode = options_.agg_sp;
  agg_ = std::make_unique<AggStage>(o, metrics_);
  o.sp_mode = options_.sort_sp;
  sort_ = std::make_unique<SortStage>(o, metrics_);

  // Admin/introspection surface, last: its inspector callbacks read
  // through the stages, so everything they touch must already exist.
  if (options_.admin_port >= 0 || !options_.admin_uds_path.empty()) {
    EngineInspector inspector;
    inspector.metrics = metrics_;
    inspector.queries = [this] { return LiveQueries(); };
    inspector.explain = [this](uint64_t id) { return ExplainQuery(id); };
    inspector.channels = [this] {
      std::vector<Stage::ChannelSnapshot> out;
      for (Stage* stage : std::initializer_list<Stage*>{
               tscan_.get(), join_.get(), agg_.get(), sort_.get()}) {
        auto snap = stage->ChannelsSnapshot();
        out.insert(out.end(), std::make_move_iterator(snap.begin()),
                   std::make_move_iterator(snap.end()));
      }
      std::lock_guard<std::mutex> lock(extra_stages_mutex_);
      for (const auto& stage : extra_stages_) {
        auto snap = stage->ChannelsSnapshot();
        out.insert(out.end(), std::make_move_iterator(snap.begin()),
                   std::make_move_iterator(snap.end()));
      }
      return out;
    };
    inspector.cost_models = [this] {
      std::vector<StageCostModelInfo> out;
      for (Stage* stage : std::initializer_list<Stage*>{
               tscan_.get(), join_.get(), agg_.get(), sort_.get()}) {
        out.push_back({std::string(stage->name()), stage->CostModelSnapshot()});
      }
      std::lock_guard<std::mutex> lock(extra_stages_mutex_);
      for (const auto& stage : extra_stages_) {
        out.push_back({std::string(stage->name()), stage->CostModelSnapshot()});
      }
      return out;
    };
    inspector.io_queue_depths = [this] {
      std::vector<std::size_t> depths;
      if (io_scheduler_ != nullptr) {
        depths.reserve(kIoPriorityClasses);
        for (std::size_t cls = 0; cls < kIoPriorityClasses; ++cls) {
          depths.push_back(
              io_scheduler_->QueueDepth(static_cast<IoPriority>(cls)));
        }
      }
      return depths;
    };
    inspector.cancel_query = [this](uint64_t id) {
      std::shared_ptr<ExecContext> ctx;
      {
        std::lock_guard<std::mutex> lock(live_mutex_);
        auto it = live_queries_.find(id);
        if (it == live_queries_.end()) return false;
        ctx = it->second.ctx.lock();
      }
      if (ctx == nullptr || ctx->cancelled()) return false;
      // Context-only cancel (no PageSource to hand the watchdog): park
      // loops poll the context in bounded slices, so the stop still
      // propagates without a reader-side wakeup.
      ctx->Cancel();
      return true;
    };
    inspector.spill_health = [this] {
      return sp_governor_ != nullptr ? sp_governor_->DisabledReason()
                                     : Status::OK();
    };

    if (options_.watchdog_period_ms > 0) {
      Watchdog::Options wopts;
      wopts.period_ms = options_.watchdog_period_ms;
      wopts.query_slo_ms = options_.watchdog_query_slo_ms;
      wopts.parked_reader_ms = options_.watchdog_parked_reader_ms;
      wopts.io_queue_depth_limit = options_.watchdog_io_queue_depth;
      wopts.spill_thrash_pages = options_.watchdog_spill_thrash_pages;
      wopts.cancel_over_slo = options_.watchdog_cancel_over_slo;
      watchdog_ = std::make_unique<Watchdog>(wopts, inspector);
      watchdog_->Start();
    }

    AdminServer::Options aopts;
    aopts.port = options_.admin_port;
    aopts.uds_path = options_.admin_uds_path;
    admin_server_ = std::make_unique<AdminServer>(aopts);
    RegisterEngineEndpoints(admin_server_.get(), std::move(inspector),
                            watchdog_.get());
    Status st = admin_server_->Start();
    if (!st.ok()) {
      // Degrade, don't die: the engine runs fine without the admin
      // surface. The watchdog (if any) keeps warning via logs/metrics.
      SHARING_LOG(Error) << "admin server disabled: " << st.ToString();
      admin_server_.reset();
    }
  }
}

QPipeEngine::~QPipeEngine() {
  // The admin surface goes first: its handlers and the watchdog read
  // through the stages about to shut down.
  if (admin_server_ != nullptr) admin_server_->Stop();
  if (watchdog_ != nullptr) watchdog_->Stop();
  // Stages drain their queues before the scan groups (whose producer
  // threads feed scan packets) are destroyed.
  tscan_->Shutdown();
  join_->Shutdown();
  agg_->Shutdown();
  sort_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(extra_stages_mutex_);
    for (auto& s : extra_stages_) s->Shutdown();
  }
  // Then the I/O scheduler: queued jobs are dropped (their owners keep
  // state in memory by contract), running ones finish. Clients hold the
  // scheduler by shared_ptr and fall back to synchronous I/O once
  // Submit starts returning nullptr, so the remaining members can be
  // destroyed in any order.
  if (io_scheduler_ != nullptr) io_scheduler_->Shutdown();
  // Last: the reporter's final snapshot then sees every shutdown-path
  // metric (dropped I/O jobs, final reclamations).
  if (stats_reporter_ != nullptr) stats_reporter_->Stop();
}

void QPipeEngine::SetSpModeAllStages(SpMode mode) {
  tscan_->SetSpMode(mode);
  join_->SetSpMode(mode);
  agg_->SetSpMode(mode);
  sort_->SetSpMode(mode);
}

CircularScanGroup* QPipeEngine::ScanGroupFor(const Table* table) {
  std::lock_guard<std::mutex> lock(scan_groups_mutex_);
  auto it = scan_groups_.find(table);
  if (it == scan_groups_.end()) {
    it = scan_groups_
             .emplace(table,
                      std::make_unique<CircularScanGroup>(
                          table, /*queue_depth=*/4, metrics_, io_scheduler_,
                          options_.scan_prefetch_depth))
             .first;
  }
  return it->second.get();
}

void QPipeEngine::RegisterExtraStage(std::shared_ptr<Stage> stage) {
  std::lock_guard<std::mutex> lock(extra_stages_mutex_);
  extra_stages_.push_back(std::move(stage));
}

std::vector<QPipeEngine::LiveQueryInfo> QPipeEngine::LiveQueries() {
  const int64_t now = Trace::NowMicros();
  std::vector<LiveQueryInfo> out;
  std::lock_guard<std::mutex> lock(live_mutex_);
  for (auto it = live_queries_.begin(); it != live_queries_.end();) {
    std::shared_ptr<ExecContext> ctx = it->second.ctx.lock();
    // Prune abandoned (context died with its handle) and finished
    // queries; the registry self-cleans on every scrape and submit.
    if (ctx == nullptr || ctx->explain()->total_micros() > 0) {
      it = live_queries_.erase(it);
      continue;
    }
    LiveQueryInfo info;
    info.query_id = it->first;
    info.signature = it->second.signature;
    info.age_micros = now - ctx->explain()->start_micros();
    info.cancelled = ctx->cancelled();
    const QueryExplain report = ctx->explain()->Build(it->first);
    info.stage =
        report.stages.empty() ? "dispatch" : report.stages.back().stage;
    for (const auto& record : report.stages) {
      info.pages_delivered += static_cast<int64_t>(record.pages_delivered);
    }
    out.push_back(std::move(info));
    ++it;
  }
  return out;
}

std::optional<QueryExplain> QPipeEngine::ExplainQuery(uint64_t query_id) {
  std::shared_ptr<ExecContext> ctx;
  {
    std::lock_guard<std::mutex> lock(live_mutex_);
    auto it = live_queries_.find(query_id);
    if (it == live_queries_.end()) return std::nullopt;
    ctx = it->second.ctx.lock();
  }
  if (ctx == nullptr) return std::nullopt;
  return ctx->explain()->Build(query_id);
}

void QPipeEngine::SetJoinDispatchHook(DispatchHook hook) {
  std::lock_guard<std::mutex> lock(hook_mutex_);
  join_hook_ = std::move(hook);
}

PageSourceRef QPipeEngine::Dispatch(const PlanNodeRef& node,
                                    const ExecContextRef& ctx) {
  switch (node->kind()) {
    case PlanKind::kScan: {
      const auto* scan = static_cast<const ScanNode*>(node.get());
      auto table_or = catalog_->GetTable(scan->table_name());
      SHARING_CHECK(table_or.ok()) << table_or.status().ToString();
      Table* table = table_or.value();
      CircularScanGroup* group =
          options_.shared_scans ? ScanGroupFor(table) : nullptr;
      return tscan_->SubmitOrShare(
          node, ctx, /*make_inputs=*/{}, [table, group](Packet& p) {
            p.table = table;
            p.scan_group = group;
          });
    }
    case PlanKind::kJoin: {
      {
        std::lock_guard<std::mutex> lock(hook_mutex_);
        if (join_hook_) {
          if (PageSourceRef src = join_hook_(node, ctx)) return src;
        }
      }
      const auto* j = static_cast<const JoinNode*>(node.get());
      PlanNodeRef build = j->build();
      PlanNodeRef probe = j->probe();
      return join_->SubmitOrShare(node, ctx, [this, build, probe, ctx] {
        std::vector<PageSourceRef> inputs;
        inputs.push_back(Dispatch(build, ctx));
        inputs.push_back(Dispatch(probe, ctx));
        return inputs;
      });
    }
    case PlanKind::kAggregate: {
      const auto* a = static_cast<const AggregateNode*>(node.get());
      PlanNodeRef child = a->child();
      return agg_->SubmitOrShare(node, ctx, [this, child, ctx] {
        return std::vector<PageSourceRef>{Dispatch(child, ctx)};
      });
    }
    case PlanKind::kSort: {
      const auto* s = static_cast<const SortNode*>(node.get());
      PlanNodeRef child = s->child();
      return sort_->SubmitOrShare(node, ctx, [this, child, ctx] {
        return std::vector<PageSourceRef>{Dispatch(child, ctx)};
      });
    }
  }
  SHARING_CHECK(false) << "unreachable plan kind";
  return nullptr;
}

QueryHandle QPipeEngine::Submit(PlanNodeRef plan) {
  auto ctx = std::make_shared<ExecContext>(NextQueryId(), metrics_);
  if (options_.query_timeout_ms > 0) {
    const int64_t timeout_ms =
        static_cast<int64_t>(options_.query_timeout_ms);
    ctx->ArmDeadline(Trace::NowMicros() + timeout_ms * 1000, timeout_ms);
  }
  TraceSpan span("engine", "query.submit", ctx->query_id(),
                 plan->Signature());
  PageSourceRef root = Dispatch(plan, ctx);
  if (admin_server_ != nullptr || watchdog_ != nullptr) {
    // Register for /queries, /explain and the watchdog's age probe. The
    // weak context keeps registration from extending the query's life.
    std::lock_guard<std::mutex> lock(live_mutex_);
    if (live_queries_.size() >= 256) {
      // Backstop prune so an unscrapped registry stays bounded by the
      // number of genuinely live queries (LiveQueries() prunes harder).
      std::erase_if(live_queries_,
                    [](const auto& entry) { return entry.second.ctx.expired(); });
    }
    live_queries_[ctx->query_id()] =
        LiveQuery{plan->Signature(), std::weak_ptr<ExecContext>(ctx)};
  }
  return QueryHandle(std::move(plan), std::move(root), std::move(ctx));
}

StatusOr<ResultSet> QPipeEngine::Execute(PlanNodeRef plan) {
  QueryHandle handle = Submit(std::move(plan));
  auto result = handle.Collect();
  if (result.ok()) {
    metrics_->GetCounter(metrics::kQueriesFinished)->Increment();
  }
  return result;
}

}  // namespace sharing
