// Concrete QPipe stages, one per relational operator. Each binds a Packet
// to the corresponding operator function from exec/operators.h.

#pragma once

#include "exec/operators.h"
#include "qpipe/stage.h"

namespace sharing {

class TscanStage final : public Stage {
 public:
  TscanStage(Options options, MetricsRegistry* metrics)
      : Stage("TSCAN", options, metrics) {}

 protected:
  void RunPacket(Packet& packet) override;
};

class JoinStage final : public Stage {
 public:
  JoinStage(Options options, MetricsRegistry* metrics)
      : Stage("JOIN", options, metrics) {}

 protected:
  void RunPacket(Packet& packet) override;
};

class AggStage final : public Stage {
 public:
  AggStage(Options options, MetricsRegistry* metrics)
      : Stage("AGG", options, metrics) {}

 protected:
  void RunPacket(Packet& packet) override;
};

class SortStage final : public Stage {
 public:
  SortStage(Options options, MetricsRegistry* metrics)
      : Stage("SORT", options, metrics) {}

 protected:
  void RunPacket(Packet& packet) override;
};

}  // namespace sharing
