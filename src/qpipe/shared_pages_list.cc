#include "qpipe/shared_pages_list.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "common/logging.h"
#include "common/trace.h"

namespace sharing {

SharedPagesList::~SharedPagesList() {
  // Whatever survived reclamation is released now; keep the gauge (and
  // the governor's engine-wide account) honest. Spilled slots free their
  // disk chains as the refs die. Segments are dropped front-to-back so a
  // long chain never unwinds recursively through Segment::next.
  pages_retained_->Sub(static_cast<int64_t>(in_memory_));
  if (governor_ != nullptr) governor_->OnPagesReleased(in_memory_);
  while (!segments_.empty()) segments_.pop_front();
}

std::size_t SharedPagesList::AppendOneLocked(PageRef page) {
  const std::size_t pos = published_.load(std::memory_order_relaxed);
  Segment* tail = segments_.back().get();
  if (pos >= tail->first + kSegmentSlots) {
    auto seg = std::make_shared<Segment>(pos);
    // Link before publish: a reader that observes published_ > pos can
    // always walk next into the segment holding pos.
    tail->next.store(seg, std::memory_order_release);
    segments_.push_back(std::move(seg));
    tail = segments_.back().get();
  }
  // The slot itself is invisible until published_ covers it, so the page
  // store needs no ordering of its own.
  tail->slots[pos - tail->first].page.store(std::move(page),
                                            std::memory_order_relaxed);
  ++in_memory_;
  // seq_cst, not just release: the parked-flag sweep that follows must be
  // ordered after this store or a reader parking concurrently could miss
  // both the page and the wakeup (see WakeParkedReaders).
  published_.store(pos + 1, std::memory_order_seq_cst);
  pages_shared_->Increment();
  pages_retained_->Add(1);
  return pos + 1;
}

std::size_t SharedPagesList::Append(PageRef page) {
  std::size_t total;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_.load(std::memory_order_relaxed)) return 0;
    if (NoObserversLocked()) {
      // Everyone who was (or could ever be) interested has walked away.
      return 0;
    }
    total = AppendOneLocked(std::move(page));
  }
  if (governor_ != nullptr) governor_->OnPagesRetained(1);
  WakeFrontierParked(1);  // seed the chained wakeup (O(1) for the producer)
  // Budget enforcement happens with no list lock held: the governor may
  // shed this list's pages, another channel's drained history, or (last
  // resort) our unread tail — see SpBudgetGovernor::Rebalance.
  if (governor_ != nullptr) governor_->Rebalance(this);
  return total;
}

std::size_t SharedPagesList::AppendBatch(std::vector<PageRef> pages) {
  if (pages.empty()) {
    return closed_.load(std::memory_order_acquire) ? 0 : TotalAppended();
  }
  std::size_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_.load(std::memory_order_relaxed)) return 0;
    if (NoObserversLocked()) return 0;
    for (PageRef& page : pages) total = AppendOneLocked(std::move(page));
  }
  if (governor_ != nullptr) governor_->OnPagesRetained(pages.size());
  WakeFrontierParked(1);  // seed the chained wakeup (O(1) for the producer)
  if (governor_ != nullptr) governor_->Rebalance(this);
  return total;
}

void SharedPagesList::WakeParkedReaders() {
  // The predicate change (published_/closed_, both seq_cst stores) is
  // already visible. If a parking reader's flag store is not yet in the
  // seq_cst order when we load the count, that reader's own predicate
  // re-check — which follows its flag store — necessarily observes the
  // change and skips the wait; if it is, we find the flag below and lock
  // its mutex before notifying, which serializes with its wait.
  if (parked_count_.load(std::memory_order_seq_cst) == 0) return;
  std::vector<std::shared_ptr<ReaderState>> to_wake;
  for (const ReaderShard& shard : shards_) {
    SpinLatchGuard guard(shard.latch);
    for (const auto& reader : shard.readers) {
      if (reader->parked.load(std::memory_order_relaxed)) {
        to_wake.push_back(reader);
      }
    }
  }
  for (const auto& reader : to_wake) {
    { std::lock_guard<std::mutex> sync(reader->wait_mutex); }
    reader->wait_cv.notify_all();
  }
}

void SharedPagesList::WakeFrontierParked(std::size_t max_readers) {
  // Chained wakeup: the producer seeds ONE notification per append
  // (bounded cost however many readers are parked) and every woken
  // reader continues the chain with binary fan-out before it consumes
  // (ParkUntilReady), so k parked readers wake in O(log k) chained steps
  // none of which the producer pays for.
  //
  // Only readers still BEHIND the frontier are candidates: a reader that
  // parked after this append (cursor == new published) has nothing to
  // read, and handing it the only notification would strand the stale-
  // cursor readers the wake was for — the lost-wakeup this filter
  // exists to prevent. Readers parked for the close predicate instead
  // are woken by WakeParkedReaders (the close path wakes everyone).
  if (parked_count_.load(std::memory_order_seq_cst) == 0) return;
  const std::size_t published = published_.load(std::memory_order_seq_cst);
  std::vector<std::shared_ptr<ReaderState>> to_wake;
  for (const ReaderShard& shard : shards_) {
    if (to_wake.size() >= max_readers) break;
    SpinLatchGuard guard(shard.latch);
    for (const auto& reader : shard.readers) {
      if (reader->parked.load(std::memory_order_relaxed) &&
          reader->cursor.load(std::memory_order_acquire) < published) {
        to_wake.push_back(reader);
        if (to_wake.size() >= max_readers) break;
      }
    }
  }
  for (const auto& reader : to_wake) {
    { std::lock_guard<std::mutex> sync(reader->wait_mutex); }
    reader->wait_cv.notify_all();
  }
}

void SharedPagesList::Close(Status final) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_.load(std::memory_order_relaxed)) return;
    final_ = std::move(final);
    // seq_cst for the same parked-sweep ordering as published_.
    closed_.store(true, std::memory_order_seq_cst);
    MaybeReclaimLocked();
  }
  WakeParkedReaders();
  TRACE_EVENT("sharing", "spl.close", trace_query_id_, trace_signature_);
}

void SharedPagesList::SealAttachWindow() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sealed_.load(std::memory_order_relaxed)) return;
  sealed_.store(true, std::memory_order_seq_cst);
  MaybeReclaimLocked();
  // No wake: sealing changes no reader predicate (readers wait for pages
  // or close). The producer's Close, which follows the seal in every
  // channel, performs the terminal wakeup.
}

std::shared_ptr<SplReader> SharedPagesList::AttachReader() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sealed_.load(std::memory_order_relaxed)) return nullptr;
  if (closed_.load(std::memory_order_relaxed) && !final_.ok()) return nullptr;
  auto state = std::make_shared<ReaderState>();
  auto reader =
      std::shared_ptr<SplReader>(new SplReader(shared_from_this(), state));
  // Pre-seal, nothing has been reclaimed: the front segment still starts
  // at position 0, the new reader's cursor.
  reader->seg_ = segments_.front();
  reader->shard_index_ = ever_attached_ % kReaderShards;
  {
    SpinLatchGuard guard(shards_[reader->shard_index_].latch);
    shards_[reader->shard_index_].readers.push_back(std::move(state));
  }
  ++ever_attached_;
  active_readers_.fetch_add(1, std::memory_order_acq_rel);
  TRACE_EVENT("sharing", "spl.attach", trace_query_id_, trace_signature_);
  return reader;
}

std::size_t SharedPagesList::MinReaderPositionShards() const {
  std::size_t min_pos = std::numeric_limits<std::size_t>::max();
  bool any = false;
  for (const ReaderShard& shard : shards_) {
    SpinLatchGuard guard(shard.latch);
    for (const auto& reader : shard.readers) {
      if (reader->cancelled.load(std::memory_order_acquire)) continue;
      any = true;
      // seq_cst, matching the cursor store in AdvanceTo: the frontier
      // handoff is a store-buffering pattern (reader stores cursor then
      // loads base_pub_; reclaimer stores base_pub_ then loads cursors)
      // and weaker orders would let BOTH sides read the stale value —
      // the reader skipping its probe while the reclaimer misses the
      // advanced cursor, stalling reclamation.
      min_pos =
          std::min(min_pos, reader->cursor.load(std::memory_order_seq_cst));
    }
  }
  return any ? min_pos : published_.load(std::memory_order_acquire);
}

std::size_t SharedPagesList::MaxReaderPositionShards() const {
  std::size_t max_pos = 0;
  for (const ReaderShard& shard : shards_) {
    SpinLatchGuard guard(shard.latch);
    for (const auto& reader : shard.readers) {
      if (reader->cancelled.load(std::memory_order_acquire)) continue;
      max_pos =
          std::max(max_pos, reader->cursor.load(std::memory_order_acquire));
    }
  }
  return max_pos;
}

std::size_t SharedPagesList::MinReaderPosition() const {
  return MinReaderPositionShards();
}

SharedPagesList::Snapshot SharedPagesList::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.ever_attached = ever_attached_;
  snap.active_readers = active_readers_.load(std::memory_order_relaxed);
  snap.total_appended = published_.load(std::memory_order_relaxed);
  snap.min_reader_position = MinReaderPositionShards();
  snap.closed = closed_.load(std::memory_order_relaxed);
  return snap;
}

SharedPagesList::DeepSnapshot SharedPagesList::GetDeepSnapshot() const {
  DeepSnapshot snap;
  const int64_t now = Trace::NowMicros();
  // Reader walk first, outside the list mutex: only the per-shard spin
  // latches attach/detach already take. Parked-flag and since-stamp are
  // two relaxed loads — a reader unparking mid-walk can yield a stale
  // pairing, which is fine for an advisory surface.
  for (const ReaderShard& shard : shards_) {
    SpinLatchGuard guard(shard.latch);
    for (const auto& reader : shard.readers) {
      ReaderIntrospection info;
      info.position = reader->cursor.load(std::memory_order_acquire);
      info.cancelled = reader->cancelled.load(std::memory_order_acquire);
      info.parked = reader->parked.load(std::memory_order_acquire);
      const int64_t since =
          reader->parked_since_micros.load(std::memory_order_relaxed);
      if (info.parked && since > 0 && now > since) {
        info.parked_for_micros = now - since;
      }
      snap.readers.push_back(info);
    }
  }
  snap.min_reader_position = MinReaderPositionShards();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.published = published_.load(std::memory_order_relaxed);
    snap.reclaimed = base_;
    snap.retained = snap.published > base_ ? snap.published - base_ : 0;
    snap.resident_pages = in_memory_;
    snap.spilled_pages = snap.retained > in_memory_
                             ? snap.retained - in_memory_
                             : 0;
    snap.ever_attached = ever_attached_;
    snap.active_readers = active_readers_.load(std::memory_order_relaxed);
    snap.closed = closed_.load(std::memory_order_relaxed);
    snap.sealed = sealed_.load(std::memory_order_relaxed);
  }
  return snap;
}

void SharedPagesList::MaybeReclaimLocked() {
  if (!sealed_.load(std::memory_order_relaxed)) {
    return;  // a late attacher could still need the history
  }
  // Loop until the min cursor stops advancing. A reader that crossed the
  // old frontier while this pass ran may have read the stale base_pub_
  // and skipped its own reclamation probe; the seq_cst store/load pairing
  // with AdvanceTo guarantees that in exactly that case the re-scan below
  // observes the reader's advanced cursor, so the page cannot be
  // stranded between a probe that skipped and a scan that missed.
  for (;;) {
    const std::size_t min_pos = MinReaderPositionShards();
    if (base_ >= min_pos) return;
    int64_t freed = 0;
    int64_t freed_resident = 0;
    while (base_ < min_pos) {
      Slot& slot = SlotAtLocked(base_);
      // Readers never touch slots behind the min cursor (a reader only
      // publishes its advance after taking its page reference), so the
      // exchange cannot race a fast-path load of the same slot.
      if (slot.page.exchange(nullptr, std::memory_order_relaxed) != nullptr) {
        ++freed_resident;
      }
      // A spilled slot's chain is deleted unread: dropping the last
      // SpilledPageRef returns its disk pages to the free list.
      slot.spilled.reset();
      ++base_;
      ++freed;
      // Keep at least the tail segment: the producer appends into
      // segments_.back(), so the segment run must never go empty.
      while (segments_.size() > 1 &&
             base_ >= segments_.front()->first + kSegmentSlots) {
        segments_.pop_front();
      }
    }
    base_pub_.store(base_, std::memory_order_seq_cst);
    pages_reclaimed_->Add(freed);
    pages_retained_->Sub(freed_resident);
    in_memory_ -= static_cast<std::size_t>(freed_resident);
    if (governor_ != nullptr && freed_resident > 0) {
      governor_->OnPagesReleased(static_cast<std::size_t>(freed_resident));
    }
  }
}

std::size_t SharedPagesList::ShedForBudget(std::size_t max_pages,
                                           SpillTier tier) {
  if (max_pages == 0) return 0;
  // Victims are selected (and marked) under the lock, serialized outside
  // it, and installed under the lock again, so readers keep consuming
  // resident pages — including the victims — while the spill I/O runs.
  struct Victim {
    std::size_t pos;  // absolute position (survives base_ shifts)
    PageRef page;
  };
  std::vector<Victim> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t end = published_.load(std::memory_order_relaxed);
    if (end == base_) return 0;
    // Within the allowed tiers, best fault-in odds first: drained
    // history (re-read only by a late attacher, deleted unread at seal
    // otherwise), then consumed-but-not-drained newest first (a laggard
    // reaches those last — Belady-ish), then the unread tail newest
    // first. Reader positions come from the shard scan — no per-reader
    // locking under the list mutex.
    std::size_t consumed_end;
    std::size_t drained_end;
    if (active_readers_.load(std::memory_order_relaxed) == 0) {
      // Every reader cancelled (or none attached yet): the retained
      // window can only ever serve a late attacher, which is exactly the
      // drained tier — not a last-resort unread tail.
      drained_end = consumed_end = end;
    } else {
      consumed_end = std::clamp(MaxReaderPositionShards(), base_, end);
      drained_end = std::clamp(MinReaderPositionShards(), base_, consumed_end);
    }
    auto collect = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t pos = hi; pos-- > lo && victims.size() < max_pages;) {
        Slot& slot = SlotAtLocked(pos);
        if (slot.spilling) continue;
        PageRef page = slot.page.load(std::memory_order_relaxed);
        if (page == nullptr) continue;
        slot.spilling = true;
        victims.push_back(Victim{pos, std::move(page)});
      }
    };
    collect(base_, drained_end);
    if (tier != SpillTier::kDrained) collect(drained_end, consumed_end);
    if (tier == SpillTier::kUnread) collect(consumed_end, end);
  }
  if (victims.empty()) return 0;

  // Initiate the spill I/O with no list lock held. With a scheduler the
  // write runs asynchronously on a kSpillWrite worker and InstallSpilled
  // is the completion handoff; without one, SpillAsync degenerates to
  // the synchronous spill-then-install path inline. Either way the
  // victim stays resident and readable until its chain is durable.
  auto self = shared_from_this();
  std::size_t initiated = 0;
  for (auto& victim : victims) {
    const std::size_t pos = victim.pos;
    const bool accepted = governor_->SpillAsync(
        std::move(victim.page),
        [self, pos](SpilledPageRef spilled) {
          self->InstallSpilled(pos, std::move(spilled));
        });
    if (!accepted) {
      // In-flight window full (or scheduler shut down): unmark so a
      // later pass can re-select the victim; it stays resident.
      std::lock_guard<std::mutex> lock(mutex_);
      if (pos >= base_) SlotAtLocked(pos).spilling = false;
      continue;
    }
    ++initiated;
  }
  return initiated;
}

void SharedPagesList::InstallSpilled(std::size_t pos, SpilledPageRef spilled) {
  bool released = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Reclaimed mid-spill: the fresh chain dies with its unowned ref
    // (freed unread), nothing to install.
    if (pos < base_) return;
    Slot& slot = SlotAtLocked(pos);
    slot.spilling = false;
    if (spilled == nullptr) return;  // spill store unavailable / skipped
    if (slot.page.load(std::memory_order_relaxed) == nullptr) {
      return;  // already migrated (defensive)
    }
    // Install the disk tier BEFORE dropping the memory tier: a lock-free
    // reader that loses the page load takes the list lock and must find
    // the spilled chain there.
    slot.spilled = std::move(spilled);
    slot.page.store(nullptr, std::memory_order_release);
    --in_memory_;
    pages_retained_->Sub(1);
    released = true;
  }
  if (released) governor_->OnPagesReleased(1);
}

// ---------------------------------------------------------------------------
// SplReader
// ---------------------------------------------------------------------------

void SplReader::AdvanceTo(std::size_t next) {
  const std::size_t pos = cursor_;
  cursor_ = next;
  // The slot references were taken before this store, so reclamation
  // can never free a slot this reader is still copying from. seq_cst
  // (store) ordered BEFORE the seq_cst base_pub_ load below: the
  // frontier handoff against a concurrent reclaimer is store-buffering
  // shaped, and SC is what guarantees that either this probe fires or
  // the reclaimer's re-scan sees the new cursor (never neither).
  state_->cursor.store(next, std::memory_order_seq_cst);
  // Only the reader leaving the reclamation frontier can raise the min
  // cursor; everyone else would take the list lock for a no-op scan.
  if (pos == list_->base_pub_.load(std::memory_order_seq_cst) &&
      list_->sealed_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(list_->mutex_);
    list_->MaybeReclaimLocked();
  }
}

PageRef SplReader::Next() {
  if (state_->cancelled.load(std::memory_order_relaxed)) return nullptr;
  for (;;) {
    const std::size_t pos = cursor_;
    std::size_t published = list_->published_.load(std::memory_order_acquire);
    if (pos < published) {
      SharedPagesList::Slot& slot = SlotFor(pos);
      if (PageRef page = slot.page.load(std::memory_order_acquire)) {
        // The lock-free fast path: published resident page, no mutex.
        AdvanceTo(pos + 1);
        return page;
      }
      return SlowResolve(pos);
    }
    if (list_->closed_.load(std::memory_order_acquire)) {
      // Re-check publication AFTER observing the close: the producer's
      // final appends are ordered before its closed_ store, so this
      // second load cannot miss them.
      published = list_->published_.load(std::memory_order_acquire);
      if (pos >= published) return nullptr;
      continue;
    }
    if (!ParkUntilReady()) return nullptr;
  }
}

std::size_t SplReader::NextBatch(std::size_t max_pages,
                                 std::vector<PageRef>* out) {
  if (max_pages == 0 || state_->cancelled.load(std::memory_order_relaxed)) {
    return 0;
  }
  for (;;) {
    const std::size_t pos = cursor_;
    std::size_t published = list_->published_.load(std::memory_order_acquire);
    if (pos < published) {
      const std::size_t want = std::min(published, pos + max_pages);
      std::size_t next = pos;
      while (next < want) {
        SharedPagesList::Slot& slot = SlotFor(next);
        PageRef page = slot.page.load(std::memory_order_acquire);
        if (page == nullptr) break;  // spilled: resolve on the next call
        out->push_back(std::move(page));
        ++next;
      }
      if (next > pos) {
        // One cursor publication (and at most one reclamation probe) for
        // the whole run — the lock-amortization batching buys.
        AdvanceTo(next);
        return next - pos;
      }
      PageRef page = SlowResolve(pos);
      if (page == nullptr) return 0;  // fault-back error or cancelled
      out->push_back(std::move(page));
      return 1;
    }
    if (list_->closed_.load(std::memory_order_acquire)) {
      published = list_->published_.load(std::memory_order_acquire);
      if (pos >= published) return 0;
      continue;
    }
    if (!ParkUntilReady()) return 0;
  }
}

bool SplReader::ParkUntilReady() {
  // Spin-then-park: a reader chasing an actively appending producer is
  // typically handed the next page within microseconds — burning a short
  // bounded spin on the published counter (a plain cacheline read) is
  // far cheaper than a futex round trip for the reader AND the wake
  // sweep for the producer. On a single-core host spinning can only
  // delay the producer, so it is disabled there.
  static const int kSpinRounds =
      std::thread::hardware_concurrency() > 1 ? 1024 : 0;
  for (int round = 0; round < kSpinRounds; ++round) {
    if (state_->cancelled.load(std::memory_order_relaxed) ||
        cursor_ < list_->published_.load(std::memory_order_acquire) ||
        list_->closed_.load(std::memory_order_acquire)) {
      return !state_->cancelled.load(std::memory_order_relaxed);
    }
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
  // Stop probe (deadline / watchdog cancel): checked before committing to
  // the park and then once per bounded wait slice below — a reader parked
  // on an idle producer observes its deadline within one slice instead of
  // sleeping until a publication that may never come.
  Status stop = stop_check_ ? stop_check_() : Status::OK();
  if (!stop.ok()) return FailStopped(stop);
  list_->reader_parks_->Increment();
  // Span covers the futex wait only (the spin above is microseconds and
  // the common case records nothing).
  TraceSpan park_span("sharing", "spl.park", list_->trace_query_id_,
                      list_->trace_signature_);
  // Dekker-style handshake with the producer: the flag (and count) store
  // must be ordered before the predicate re-check, and the producer's
  // predicate store before its flag sweep — both sides seq_cst. Either
  // the producer sees us parked (and locks wait_mutex before notifying,
  // serializing with the wait below), or our re-check sees its update.
  state_->parked_since_micros.store(Trace::NowMicros(),
                                    std::memory_order_relaxed);
  state_->parked.store(true, std::memory_order_seq_cst);
  list_->parked_count_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lock(state_->wait_mutex);
    while (!(state_->cancelled.load(std::memory_order_seq_cst) ||
             cursor_ < list_->published_.load(std::memory_order_seq_cst) ||
             list_->closed_.load(std::memory_order_seq_cst))) {
      if (!stop_check_) {
        state_->wait_cv.wait(lock);
        continue;
      }
      // The probe is lock-free (query-context atomics), so calling it
      // under wait_mutex nests no lock. error_ recording waits until
      // wait_mutex is released — Cancel() notifies through it.
      stop = stop_check_();
      if (!stop.ok()) break;
      state_->wait_cv.wait_for(lock, std::chrono::milliseconds(10));
    }
  }
  state_->parked.store(false, std::memory_order_relaxed);
  state_->parked_since_micros.store(0, std::memory_order_relaxed);
  list_->parked_count_.fetch_sub(1, std::memory_order_seq_cst);
  // Continue the chained wakeup BEFORE consuming anything: the producer
  // only seeded one notification, and the binary fan-out here is what
  // propagates it to every other frontier-parked reader.
  list_->WakeFrontierParked(2);
  if (!stop.ok()) return FailStopped(stop);
  return !state_->cancelled.load(std::memory_order_relaxed);
}

bool SplReader::FailStopped(const Status& st) {
  {
    std::lock_guard<std::mutex> lock(list_->mutex_);
    if (error_.ok()) error_ = st;
  }
  // Detach so the producer's early-stop contract and reclamation see this
  // reader gone; FinalStatus prefers the sticky error over "cancelled".
  Cancel();
  return false;
}

PageRef SplReader::SlowResolve(std::size_t pos) {
  list_->lock_waits_->Increment();
  std::unique_lock<std::mutex> lock(list_->mutex_);
  if (state_->cancelled.load(std::memory_order_relaxed)) return nullptr;
  SHARING_CHECK(pos >= list_->base_)
      << "reader cursor points at a reclaimed page";
  SharedPagesList::Slot& slot = list_->SlotAtLocked(pos);
  // The fast path lost the race against a concurrent spill install (or a
  // fault-back follows a genuine migration); under the lock the slot's
  // tier assignment is stable.
  PageRef page = slot.page.load(std::memory_order_relaxed);
  SpilledPageRef spilled = slot.spilled;
  auto governor = list_->governor_;
  // Peek the successor while still under the lock: if it has already
  // spilled, its fault-back can be scheduled now and overlap this page's
  // consumption (sequential-reader readahead; slots only ever migrate
  // memory -> spilled, so the ref stays authoritative once taken).
  SpilledPageRef readahead;
  if (governor != nullptr && governor->scheduler() != nullptr &&
      pos + 1 < list_->published_.load(std::memory_order_relaxed)) {
    SharedPagesList::Slot& next_slot = list_->SlotAtLocked(pos + 1);
    if (next_slot.page.load(std::memory_order_relaxed) == nullptr) {
      readahead = next_slot.spilled;
    }
  }
  lock.unlock();
  // The local SpilledPageRef pins the disk chain even if reclamation
  // drops the slot after this advance.
  AdvanceTo(pos + 1);

  // This reader's previous readahead (if any) targeted exactly `pos`;
  // take it over before installing the next one.
  const std::size_t pf_pos = prefetch_pos_;
  IoTicketRef pf_ticket = std::move(prefetch_ticket_);
  auto pf_out = std::move(prefetch_out_);
  prefetch_pos_ = static_cast<std::size_t>(-1);
  if (readahead != nullptr) {
    auto out = std::make_shared<std::optional<StatusOr<PageRef>>>();
    if (IoTicketRef ticket =
            governor->UnspillPrefetch(std::move(readahead), out)) {
      prefetch_pos_ = pos + 1;
      prefetch_ticket_ = std::move(ticket);
      prefetch_out_ = std::move(out);
    }
  }
  if (page != nullptr) {
    if (pf_ticket != nullptr) pf_ticket->TryCancel();  // stale (never expected)
    return page;
  }
  SHARING_CHECK(spilled != nullptr) << "slot neither resident nor spilled";

  TraceSpan faultback_span("sharing", "spl.faultback", list_->trace_query_id_,
                           list_->trace_signature_);
  faultback_span.AddArg("pos", static_cast<int64_t>(pos));

  // Fault-back, outside the list lock. The read is served by the
  // matching readahead when one is in flight; otherwise it goes through
  // the scheduler's kFaultBack class (or synchronously when no scheduler
  // is configured).
  StatusOr<PageRef> page_or = Status::Internal("fault-back not attempted");
  bool resolved = false;
  if (pf_ticket != nullptr && pf_pos == pos) {
    pf_ticket->Wait();
    if (pf_out->has_value()) {
      page_or = std::move(**pf_out);
      resolved = true;
    }
    // A readahead dropped at scheduler shutdown resolves below — the
    // chain is still on the spill store.
  } else if (pf_ticket != nullptr) {
    pf_ticket->TryCancel();
  }
  if (!resolved) page_or = governor->UnspillBlocking(spilled);
  if (!page_or.ok()) {
    SHARING_LOG(Error) << "SPL fault-back failed: "
                       << page_or.status().ToString();
    lock.lock();
    if (error_.ok()) error_ = page_or.status();
    return nullptr;
  }
  return page_or.value();
}

Status SplReader::FinalStatus() const {
  std::lock_guard<std::mutex> lock(list_->mutex_);
  if (!error_.ok()) return error_;
  if (state_->cancelled.load(std::memory_order_relaxed)) {
    return Status::Aborted("reader cancelled");
  }
  return list_->final_;
}

void SplReader::Cancel() {
  if (state_->cancelled.exchange(true, std::memory_order_seq_cst)) return;
  {
    SharedPagesList::ReaderShard& shard = list_->shards_[shard_index_];
    SpinLatchGuard guard(shard.latch);
    std::erase(shard.readers, state_);
  }
  list_->active_readers_.fetch_sub(1, std::memory_order_acq_rel);
  // A cancel may arrive from another thread while this reader is parked
  // in Next(): wake it so it observes the cancellation.
  {
    { std::lock_guard<std::mutex> sync(state_->wait_mutex); }
    state_->wait_cv.notify_all();
  }
  // The pages this reader was holding back become reclaimable.
  std::lock_guard<std::mutex> lock(list_->mutex_);
  list_->MaybeReclaimLocked();
}

}  // namespace sharing
