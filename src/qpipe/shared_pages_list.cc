#include "qpipe/shared_pages_list.h"

#include <algorithm>

#include "common/logging.h"

namespace sharing {

SharedPagesList::~SharedPagesList() {
  // Whatever survived reclamation is released now; keep the gauge (and
  // the governor's engine-wide account) honest. Spilled slots free their
  // disk chains as the refs die.
  pages_retained_->Sub(static_cast<int64_t>(in_memory_));
  if (governor_ != nullptr) governor_->OnPagesReleased(in_memory_);
}

std::size_t SharedPagesList::Append(PageRef page) {
  std::size_t total;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return 0;
    if (readers_.empty() && (ever_attached_ > 0 || sealed_)) {
      // Everyone who was (or could ever be) interested has walked away.
      return 0;
    }
    slots_.push_back(Slot{std::move(page), nullptr, false});
    ++in_memory_;
    total = base_ + slots_.size();
    pages_shared_->Increment();
    pages_retained_->Add(1);
    if (governor_ != nullptr) governor_->OnPagesRetained(1);
  }
  cv_.notify_all();
  // Budget enforcement happens with no list lock held: the governor may
  // shed this list's pages, another channel's drained history, or (last
  // resort) our unread tail — see SpBudgetGovernor::Rebalance.
  if (governor_ != nullptr) governor_->Rebalance(this);
  return total;
}

void SharedPagesList::Close(Status final) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
    final_ = std::move(final);
    MaybeReclaimLocked();
  }
  cv_.notify_all();
}

void SharedPagesList::SealAttachWindow() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sealed_) return;
    sealed_ = true;
    MaybeReclaimLocked();
  }
  cv_.notify_all();
}

std::shared_ptr<SplReader> SharedPagesList::AttachReader() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sealed_) return nullptr;
  if (closed_ && !final_.ok()) return nullptr;
  auto reader = std::shared_ptr<SplReader>(new SplReader(shared_from_this()));
  readers_.push_back(reader.get());
  ++ever_attached_;
  return reader;
}

std::size_t SharedPagesList::MinReaderPosition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return MinReaderPositionLocked();
}

SharedPagesList::Snapshot SharedPagesList::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.ever_attached = ever_attached_;
  snap.active_readers = readers_.size();
  snap.total_appended = base_ + slots_.size();
  snap.min_reader_position = MinReaderPositionLocked();
  snap.closed = closed_;
  return snap;
}

std::size_t SharedPagesList::MinReaderPositionLocked() const {
  std::size_t min_pos = base_ + slots_.size();
  for (const SplReader* reader : readers_) {
    min_pos = std::min(min_pos, reader->cursor_);
  }
  return min_pos;
}

std::size_t SharedPagesList::MaxReaderPositionLocked() const {
  std::size_t max_pos = 0;
  for (const SplReader* reader : readers_) {
    max_pos = std::max(max_pos, reader->cursor_);
  }
  return max_pos;
}

void SharedPagesList::MaybeReclaimLocked() {
  if (!sealed_) return;  // a late attacher could still need the history
  const std::size_t min_pos = MinReaderPositionLocked();
  int64_t freed = 0;
  int64_t freed_resident = 0;
  while (base_ < min_pos && !slots_.empty()) {
    if (slots_.front().page != nullptr) ++freed_resident;
    // A spilled slot's chain is deleted unread: dropping the last
    // SpilledPageRef returns its disk pages to the free list.
    slots_.pop_front();
    ++base_;
    ++freed;
  }
  if (freed > 0) {
    pages_reclaimed_->Add(freed);
    pages_retained_->Sub(freed_resident);
    in_memory_ -= static_cast<std::size_t>(freed_resident);
    if (governor_ != nullptr && freed_resident > 0) {
      governor_->OnPagesReleased(static_cast<std::size_t>(freed_resident));
    }
  }
}

std::size_t SharedPagesList::ShedForBudget(std::size_t max_pages,
                                           SpillTier tier) {
  if (max_pages == 0) return 0;
  // Victims are selected (and marked) under the lock, serialized outside
  // it, and installed under the lock again, so readers keep consuming
  // resident pages — including the victims — while the spill I/O runs.
  struct Victim {
    std::size_t pos;  // absolute position (survives base_ shifts)
    PageRef page;
  };
  std::vector<Victim> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (slots_.empty()) return 0;
    // Within the allowed tiers, best fault-in odds first: drained
    // history (re-read only by a late attacher, deleted unread at seal
    // otherwise), then consumed-but-not-drained newest first (a laggard
    // reaches those last — Belady-ish), then the unread tail newest
    // first.
    const std::size_t end = slots_.size();
    std::size_t consumed_end;
    std::size_t drained_end;
    if (readers_.empty()) {
      // Every reader cancelled (or none attached yet): the retained
      // window can only ever serve a late attacher, which is exactly the
      // drained tier — not a last-resort unread tail.
      drained_end = consumed_end = end;
    } else {
      const std::size_t max_pos = MaxReaderPositionLocked();
      consumed_end = max_pos > base_ ? std::min(max_pos - base_, end) : 0;
      const std::size_t min_pos = MinReaderPositionLocked();
      drained_end =
          min_pos > base_ ? std::min(min_pos - base_, consumed_end) : 0;
    }
    auto collect = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = hi; i-- > lo && victims.size() < max_pages;) {
        Slot& slot = slots_[i];
        if (slot.page == nullptr || slot.spilling) continue;
        slot.spilling = true;
        victims.push_back(Victim{base_ + i, slot.page});
      }
    };
    collect(0, drained_end);
    if (tier != SpillTier::kDrained) collect(drained_end, consumed_end);
    if (tier == SpillTier::kUnread) collect(consumed_end, end);
  }
  if (victims.empty()) return 0;

  // Initiate the spill I/O with no list lock held. With a scheduler the
  // write runs asynchronously on a kSpillWrite worker and InstallSpilled
  // is the completion handoff; without one, SpillAsync degenerates to
  // the synchronous spill-then-install path inline. Either way the
  // victim stays resident and readable until its chain is durable.
  auto self = shared_from_this();
  std::size_t initiated = 0;
  for (auto& victim : victims) {
    const std::size_t pos = victim.pos;
    const bool accepted = governor_->SpillAsync(
        std::move(victim.page),
        [self, pos](SpilledPageRef spilled) {
          self->InstallSpilled(pos, std::move(spilled));
        });
    if (!accepted) {
      // In-flight window full (or scheduler shut down): unmark so a
      // later pass can re-select the victim; it stays resident.
      std::lock_guard<std::mutex> lock(mutex_);
      if (pos >= base_) slots_[pos - base_].spilling = false;
      continue;
    }
    ++initiated;
  }
  return initiated;
}

void SharedPagesList::InstallSpilled(std::size_t pos, SpilledPageRef spilled) {
  bool released = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Reclaimed mid-spill: the fresh chain dies with its unowned ref
    // (freed unread), nothing to install.
    if (pos < base_) return;
    Slot& slot = slots_[pos - base_];
    slot.spilling = false;
    if (spilled == nullptr) return;  // spill store unavailable / skipped
    if (slot.page == nullptr) return;  // already migrated (defensive)
    slot.page = nullptr;
    slot.spilled = std::move(spilled);
    --in_memory_;
    pages_retained_->Sub(1);
    released = true;
  }
  if (released) governor_->OnPagesReleased(1);
}

PageRef SplReader::Next() {
  std::unique_lock<std::mutex> lock(list_->mutex_);
  list_->cv_.wait(lock, [&] {
    return cancelled_ || cursor_ < list_->base_ + list_->slots_.size() ||
           list_->closed_;
  });
  if (cancelled_ || cursor_ >= list_->base_ + list_->slots_.size()) {
    return nullptr;
  }
  SHARING_CHECK(cursor_ >= list_->base_)
      << "reader cursor points at a reclaimed page";
  const std::size_t pos = cursor_;
  const SharedPagesList::Slot& slot = list_->slots_[pos - list_->base_];
  PageRef page = slot.page;
  SpilledPageRef spilled = slot.spilled;
  ++cursor_;
  // Only the reader leaving the reclamation frontier can raise the min
  // cursor; everyone else would scan the reader list for a no-op.
  if (pos == list_->base_) list_->MaybeReclaimLocked();
  auto governor = list_->governor_;
  // Peek the successor while still under the lock: if it has already
  // spilled, its fault-back can be scheduled now and overlap this page's
  // consumption (sequential-reader readahead; slots only ever migrate
  // memory -> spilled, so the ref stays authoritative once taken).
  SpilledPageRef readahead;
  if (governor != nullptr && governor->scheduler() != nullptr &&
      cursor_ < list_->base_ + list_->slots_.size()) {
    readahead = list_->slots_[cursor_ - list_->base_].spilled;
  }
  lock.unlock();

  // This reader's previous readahead (if any) targeted exactly `pos`;
  // take it over before installing the next one.
  const std::size_t pf_pos = prefetch_pos_;
  IoTicketRef pf_ticket = std::move(prefetch_ticket_);
  auto pf_out = std::move(prefetch_out_);
  prefetch_pos_ = static_cast<std::size_t>(-1);
  if (readahead != nullptr) {
    auto out = std::make_shared<std::optional<StatusOr<PageRef>>>();
    if (IoTicketRef ticket =
            governor->UnspillPrefetch(std::move(readahead), out)) {
      prefetch_pos_ = pos + 1;
      prefetch_ticket_ = std::move(ticket);
      prefetch_out_ = std::move(out);
    }
  }
  if (page != nullptr) {
    if (pf_ticket != nullptr) pf_ticket->TryCancel();  // stale (never expected)
    return page;
  }

  // Fault-back, outside the list lock: the SpilledPageRef pins the disk
  // chain even if reclamation drops the slot concurrently. The read is
  // served by the matching readahead when one is in flight; otherwise it
  // goes through the scheduler's kFaultBack class (or synchronously when
  // no scheduler is configured).
  StatusOr<PageRef> page_or = Status::Internal("fault-back not attempted");
  bool resolved = false;
  if (pf_ticket != nullptr && pf_pos == pos) {
    pf_ticket->Wait();
    if (pf_out->has_value()) {
      page_or = std::move(**pf_out);
      resolved = true;
    }
    // A readahead dropped at scheduler shutdown resolves below — the
    // chain is still on the spill store.
  } else if (pf_ticket != nullptr) {
    pf_ticket->TryCancel();
  }
  if (!resolved) page_or = governor->UnspillBlocking(spilled);
  if (!page_or.ok()) {
    SHARING_LOG(Error) << "SPL fault-back failed: "
                       << page_or.status().ToString();
    lock.lock();
    if (error_.ok()) error_ = page_or.status();
    return nullptr;
  }
  return page_or.value();
}

Status SplReader::FinalStatus() const {
  std::lock_guard<std::mutex> lock(list_->mutex_);
  if (!error_.ok()) return error_;
  if (cancelled_) return Status::Aborted("reader cancelled");
  return list_->final_;
}

std::size_t SplReader::PagesDelivered() const {
  std::lock_guard<std::mutex> lock(list_->mutex_);
  return cursor_;
}

void SplReader::Cancel() {
  {
    std::lock_guard<std::mutex> lock(list_->mutex_);
    if (cancelled_) return;
    cancelled_ = true;
    std::erase(list_->readers_, this);
    list_->MaybeReclaimLocked();
  }
  list_->cv_.notify_all();
}

}  // namespace sharing
