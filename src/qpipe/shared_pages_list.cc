#include "qpipe/shared_pages_list.h"

#include <algorithm>

#include "common/logging.h"

namespace sharing {

SharedPagesList::~SharedPagesList() {
  // Whatever survived reclamation is released now; keep the gauge honest.
  pages_retained_->Sub(static_cast<int64_t>(pages_.size()));
}

std::size_t SharedPagesList::Append(PageRef page) {
  std::size_t total;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return 0;
    if (readers_.empty() && (ever_attached_ > 0 || sealed_)) {
      // Everyone who was (or could ever be) interested has walked away.
      return 0;
    }
    pages_.push_back(std::move(page));
    total = base_ + pages_.size();
    pages_shared_->Increment();
    pages_retained_->Add(1);
  }
  cv_.notify_all();
  return total;
}

void SharedPagesList::Close(Status final) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
    final_ = std::move(final);
    MaybeReclaimLocked();
  }
  cv_.notify_all();
}

void SharedPagesList::SealAttachWindow() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sealed_) return;
    sealed_ = true;
    MaybeReclaimLocked();
  }
  cv_.notify_all();
}

std::shared_ptr<SplReader> SharedPagesList::AttachReader() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sealed_) return nullptr;
  if (closed_ && !final_.ok()) return nullptr;
  auto reader = std::shared_ptr<SplReader>(new SplReader(shared_from_this()));
  readers_.push_back(reader.get());
  ++ever_attached_;
  return reader;
}

std::size_t SharedPagesList::MinReaderPosition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return MinReaderPositionLocked();
}

SharedPagesList::Snapshot SharedPagesList::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.ever_attached = ever_attached_;
  snap.active_readers = readers_.size();
  snap.total_appended = base_ + pages_.size();
  snap.min_reader_position = MinReaderPositionLocked();
  snap.closed = closed_;
  return snap;
}

std::size_t SharedPagesList::MinReaderPositionLocked() const {
  std::size_t min_pos = base_ + pages_.size();
  for (const SplReader* reader : readers_) {
    min_pos = std::min(min_pos, reader->cursor_);
  }
  return min_pos;
}

void SharedPagesList::MaybeReclaimLocked() {
  if (!sealed_) return;  // a late attacher could still need the history
  const std::size_t min_pos = MinReaderPositionLocked();
  int64_t freed = 0;
  while (base_ < min_pos && !pages_.empty()) {
    pages_.pop_front();
    ++base_;
    ++freed;
  }
  if (freed > 0) {
    pages_reclaimed_->Add(freed);
    pages_retained_->Sub(freed);
  }
}

PageRef SplReader::Next() {
  std::unique_lock<std::mutex> lock(list_->mutex_);
  list_->cv_.wait(lock, [&] {
    return cancelled_ || cursor_ < list_->base_ + list_->pages_.size() ||
           list_->closed_;
  });
  if (cancelled_ || cursor_ >= list_->base_ + list_->pages_.size()) {
    return nullptr;
  }
  SHARING_CHECK(cursor_ >= list_->base_)
      << "reader cursor points at a reclaimed page";
  PageRef page = list_->pages_[cursor_ - list_->base_];
  ++cursor_;
  // Only the reader leaving the reclamation frontier can raise the min
  // cursor; everyone else would scan the reader list for a no-op.
  if (cursor_ - 1 == list_->base_) list_->MaybeReclaimLocked();
  return page;
}

Status SplReader::FinalStatus() const {
  std::lock_guard<std::mutex> lock(list_->mutex_);
  if (cancelled_) return Status::Aborted("reader cancelled");
  return list_->final_;
}

std::size_t SplReader::PagesDelivered() const {
  std::lock_guard<std::mutex> lock(list_->mutex_);
  return cursor_;
}

void SplReader::Cancel() {
  {
    std::lock_guard<std::mutex> lock(list_->mutex_);
    if (cancelled_) return;
    cancelled_ = true;
    std::erase(list_->readers_, this);
    list_->MaybeReclaimLocked();
  }
  list_->cv_.notify_all();
}

}  // namespace sharing
