#include "qpipe/shared_pages_list.h"

namespace sharing {

bool SharedPagesList::Append(PageRef page) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    if (ever_attached_ > 0 && active_readers_ == 0) {
      // Everyone who was interested has walked away.
      return false;
    }
    pages_.push_back(std::move(page));
    pages_shared_->Increment();
  }
  cv_.notify_all();
  return true;
}

void SharedPagesList::Close(Status final) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
    final_ = std::move(final);
  }
  cv_.notify_all();
}

std::shared_ptr<SplReader> SharedPagesList::AttachReader() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_ && !final_.ok()) return nullptr;
  ++active_readers_;
  ++ever_attached_;
  return std::shared_ptr<SplReader>(new SplReader(shared_from_this()));
}

PageRef SplReader::Next() {
  std::unique_lock<std::mutex> lock(list_->mutex_);
  list_->cv_.wait(lock, [&] {
    return cancelled_ || cursor_ < list_->pages_.size() || list_->closed_;
  });
  if (cancelled_ || cursor_ >= list_->pages_.size()) return nullptr;
  return list_->pages_[cursor_++];
}

Status SplReader::FinalStatus() const {
  std::lock_guard<std::mutex> lock(list_->mutex_);
  if (cancelled_) return Status::Aborted("reader cancelled");
  return list_->final_;
}

void SplReader::Cancel() {
  {
    std::lock_guard<std::mutex> lock(list_->mutex_);
    if (cancelled_) return;
    cancelled_ = true;
    --list_->active_readers_;
  }
  list_->cv_.notify_all();
}

}  // namespace sharing
