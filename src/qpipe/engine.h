// QPipeEngine: the staged, work-sharing execution engine.
//
// Submitting a plan converts it into packets dispatched to the TSCAN /
// JOIN / AGG / SORT stages (the CJOIN stage is added by the cjoin module).
// Per-stage SP modes control reactive sharing; circular shared scans at
// the I/O layer are on by default (the paper: "Without SP for any stage,
// the QPipe engine is similar to a query-centric execution engine with
// shared scans").

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "common/stats_reporter.h"
#include "common/status_or.h"
#include "exec/result.h"
#include "qpipe/stages.h"
#include "storage/circular_scan.h"
#include "storage/table.h"

namespace sharing {

class AdminServer;
class Watchdog;

struct QPipeOptions {
  SpMode scan_sp = SpMode::kOff;
  SpMode join_sp = SpMode::kOff;
  SpMode agg_sp = SpMode::kOff;
  SpMode sort_sp = SpMode::kOff;

  /// Circular shared scans at the storage layer (independent of SP).
  bool shared_scans = true;

  /// Initial workers per stage (pools grow elastically).
  std::size_t stage_workers = 2;

  /// Cap on each stage's elastic pool (see Stage::Options::max_workers for
  /// the deadlock caveat; leave at the default for general workloads).
  std::size_t stage_max_workers = 1024;

  /// FIFO capacity in pages.
  std::size_t fifo_capacity = FifoBuffer::kDefaultCapacity;

  /// Pages a packet moves per sharing-transport call (batched
  /// SplReader::NextBatch / FifoBuffer::PushBatch/PopBatch, wired via
  /// per-packet batch adapters): one lock acquisition — or one SPL
  /// publication and parked-reader wake sweep — is amortized over up to
  /// this many pages. 0 or 1 = page-at-a-time. Consumer-lag and
  /// reclamation granularity coarsen to the batch size.
  std::size_t sp_read_batch = 8;

  /// Thresholds for SpMode::kAdaptive (per-packet off/push/pull choice),
  /// applied to every stage running in adaptive mode. With enough
  /// per-signature history these thresholds are superseded by the cost
  /// model below; they remain the fallback for thin-history signatures.
  AdaptiveSpPolicy adaptive;

  /// Per-signature cost model (SpMode::kAdaptive): ring-buffer history
  /// kept per packet signature (arrival gaps, work per packet, session
  /// outcomes). Small histories adapt fast, large ones smooth bursts.
  std::size_t cost_model_history = 32;

  /// Closed sessions AND work samples a signature needs before the cost
  /// model decides for it; below this the stage-wide `adaptive`
  /// thresholds decide. 0 is clamped to 1 (a model with no history
  /// would divide by zero conceptually, not literally).
  std::size_t cost_model_min_samples = 3;

  /// Log every cost-model decision (signature, cost estimates, chosen
  /// mode, confidence) — the admission hot path's debug dump.
  bool cost_model_debug = false;

  /// Engine-wide in-memory SP page budget (pull-model retention across
  /// every stage's sharing channels). 0 = unbounded. When the budget is
  /// exceeded, SPLs migrate retained pages to a temp spill file and
  /// fault them back on demand, so one stalled satellite no longer pins
  /// a host's whole result in RAM (see sp_budget_governor.h).
  std::size_t sp_memory_budget = 0;

  /// Backing file for spilled SP pages; empty picks a unique temp file.
  std::string sp_spill_path;

  /// Latency model charged on spill writes (on the I/O workers, never a
  /// producer thread); 0 = none. Used by disk-resident benchmarks.
  uint32_t sp_spill_write_latency_micros = 0;

  /// Latency model charged on spill fault-back reads; 0 = none.
  uint32_t sp_spill_read_latency_micros = 0;

  /// I/O scheduler worker threads. 0 disables the scheduler entirely:
  /// spill writes run synchronously in the producer path and scans read
  /// page-at-a-time (the pre-IoScheduler behavior).
  std::size_t io_threads = 2;

  /// Per-priority-class token-bucket budget in MiB/s (scan-prefetch,
  /// fault-back, spill-write each get their own bucket); 0 = unthrottled.
  std::size_t io_budget_mib = 0;

  /// Max spill writes in flight before SpillAsync declines (bounds the
  /// transient over-budget residency of pinned-until-durable victims).
  std::size_t spill_write_window = 16;

  /// Pages of circular-scan readahead issued through the scheduler's
  /// kScanPrefetch class; 0 disables scan prefetch.
  std::size_t scan_prefetch_depth = 4;

  /// Query-lifecycle tracing (see common/trace.h, docs/TRACING.md).
  /// Enables the process-wide recorder at engine construction; spans
  /// export as Chrome trace-event JSON via Trace::ExportChromeJson.
  /// Off: every instrumented path costs one relaxed load.
  bool trace_enabled = false;

  /// Per-thread trace ring capacity in events (overwrite-oldest).
  /// Bounded memory: threads * trace_buffer_events * ~176 bytes.
  std::size_t trace_buffer_events = 8192;

  /// Period of the StatsReporter thread emitting full metrics-registry
  /// snapshots as JSON lines; 0 = no reporter thread.
  std::size_t stats_report_period_ms = 0;

  /// StatsReporter sink file (appended); empty = stderr.
  std::string stats_report_path;

  /// Embedded admin/introspection HTTP server (see server/admin_server.h):
  /// -1 = no TCP listener, 0 = ephemeral port on 127.0.0.1 (read it back
  /// via QPipeEngine::admin_server()->port()), >0 = that port. The server
  /// runs iff admin_port >= 0 or admin_uds_path is set.
  int admin_port = -1;

  /// Unix-domain-socket listener path for the admin server; empty = none.
  std::string admin_uds_path;

  /// Stall-watchdog sampling period; 0 = no watchdog thread. The
  /// watchdog only runs when the admin server is enabled (it is the
  /// /healthz verdict source).
  std::size_t watchdog_period_ms = 1000;

  /// Watchdog: a live query older than this is flagged.
  std::size_t watchdog_query_slo_ms = 10000;

  /// Watchdog: a reader parked longer than this on an unclosed sharing
  /// channel is flagged.
  std::size_t watchdog_parked_reader_ms = 5000;

  /// Watchdog: an I/O priority class with at least this many queued
  /// jobs is flagged; 0 disables the check.
  std::size_t watchdog_io_queue_depth = 256;

  /// Watchdog: spilled + faulted-back pages per period beyond which the
  /// engine is declared thrashing; 0 disables the check.
  std::size_t watchdog_spill_thrash_pages = 512;

  /// Watchdog escalation: when a live query exceeds the age SLO
  /// (watchdog_query_slo_ms), cancel it instead of only flagging it in
  /// /healthz. Off by default — the SLO is a warning threshold, not a
  /// guarantee; per-query budgets belong in query_timeout_ms.
  bool watchdog_cancel_over_slo = false;

  /// Per-query wall-clock budget in milliseconds; 0 = unlimited. An
  /// expired query stops at the next page boundary (operator polls,
  /// reader parks, I/O waits) and Collect returns kDeadlineExceeded
  /// instead of hanging on a stalled input.
  std::size_t query_timeout_ms = 0;

  /// I/O scheduler retries for transiently failing jobs (kIoError /
  /// kUnavailable), with exponential backoff + jitter on the worker;
  /// 0 disables. See IoScheduler::Options::retry_limit.
  std::size_t io_retry_limit = 0;

  /// Fault-injection schedule armed at engine construction; empty = none.
  /// Grammar (see common/fault.h): comma-separated
  /// `seed=<uint>` / `<point>=p<prob>` / `<point>=n<N>` / `<point>=once`,
  /// each with an optional `*<payload>` suffix — e.g.
  /// "seed=7,disk.read=p0.01,io.dispatch.delay=n10*2000". The registry
  /// is process-global; the /faults admin endpoint re-arms it at run
  /// time. An invalid spec fails engine construction loudly (a chaos run
  /// that silently tests nothing is worse than one that refuses to run).
  std::string fault_spec;

  /// Applies `mode` to all four stages.
  static QPipeOptions AllSp(SpMode mode) {
    QPipeOptions o;
    o.scan_sp = o.join_sp = o.agg_sp = o.sort_sp = mode;
    return o;
  }
};

/// A submitted query: pull pages from it, collect everything, or cancel.
class QueryHandle {
 public:
  QueryHandle() = default;
  QueryHandle(PlanNodeRef plan, PageSourceRef root, ExecContextRef ctx)
      : plan_(std::move(plan)), root_(std::move(root)), ctx_(std::move(ctx)) {}

  bool valid() const { return root_ != nullptr; }
  const Schema& schema() const { return plan_->output_schema(); }
  const ExecContextRef& context() const { return ctx_; }

  /// Next result page (nullptr at end).
  PageRef Next() { return root_->Next(); }

  /// Drains the query to completion and materializes the result.
  StatusOr<ResultSet> Collect();

  /// Cooperative cancel: stops this query's packets; if this query is an
  /// SP satellite only its own consumption stops (the host continues for
  /// other consumers) — paper Fig. 1a.
  void Cancel();

  /// The query's sharing-explain report as of now (admission verdicts,
  /// roles, page provenance, stage timings). Collect() attaches the
  /// final report to the ResultSet; this accessor serves streaming
  /// consumers and cancelled queries.
  QueryExplain Explain() const;

 private:
  PlanNodeRef plan_;
  PageSourceRef root_;
  ExecContextRef ctx_;
};

class QPipeEngine {
 public:
  QPipeEngine(Catalog* catalog, QPipeOptions options,
              MetricsRegistry* metrics = &MetricsRegistry::Global());
  ~QPipeEngine();

  SHARING_DISALLOW_COPY_AND_MOVE(QPipeEngine);

  /// Dispatches `plan` and returns a handle streaming its results.
  QueryHandle Submit(PlanNodeRef plan);

  /// Submit + Collect.
  StatusOr<ResultSet> Execute(PlanNodeRef plan);

  Catalog* catalog() const { return catalog_; }
  MetricsRegistry* metrics() const { return metrics_; }

  TscanStage* scan_stage() { return tscan_.get(); }
  JoinStage* join_stage() { return join_.get(); }
  AggStage* agg_stage() { return agg_.get(); }
  SortStage* sort_stage() { return sort_.get(); }

  /// The engine-wide SP memory governor; null when
  /// QPipeOptions::sp_memory_budget is 0.
  const std::shared_ptr<SpBudgetGovernor>& sp_governor() const {
    return sp_governor_;
  }

  /// The engine-wide async I/O scheduler; null when
  /// QPipeOptions::io_threads is 0.
  const std::shared_ptr<IoScheduler>& io_scheduler() const {
    return io_scheduler_;
  }

  /// Reconfigures SP for all stages at run time (the demo GUI's
  /// per-stage SP checkboxes).
  void SetSpModeAllStages(SpMode mode);

  /// The shared circular-scan group for `table` (created on first use).
  CircularScanGroup* ScanGroupFor(const Table* table);

  /// Registers an auxiliary stage (the CJOIN integration uses this to
  /// participate in engine shutdown).
  void RegisterExtraStage(std::shared_ptr<Stage> stage);

  /// Dispatches a sub-plan and returns the source of its results. Public
  /// so the CJOIN stage can dispatch query-centric operators *above* the
  /// global query plan.
  PageSourceRef Dispatch(const PlanNodeRef& node, const ExecContextRef& ctx);

  uint64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Plan-kind hook: when set, plans whose root/subtree kind has a custom
  /// dispatcher (e.g. CJOIN-eligible star joins) are routed there first.
  using DispatchHook =
      std::function<PageSourceRef(const PlanNodeRef&, const ExecContextRef&)>;
  void SetJoinDispatchHook(DispatchHook hook);

  /// One in-flight query's admin-server view (the /queries endpoint and
  /// the watchdog's age-SLO probe).
  struct LiveQueryInfo {
    uint64_t query_id = 0;
    uint64_t signature = 0;
    /// Submission-to-now age (trace timebase).
    int64_t age_micros = 0;
    bool cancelled = false;
    /// The deepest stage that has recorded an admission for this query
    /// so far ("dispatch" before any stage has).
    std::string stage;
    /// Pages delivered across the query's stage records so far.
    int64_t pages_delivered = 0;
  };

  /// Snapshot of every submitted-but-unfinished query. Lazily prunes
  /// queries whose context died (abandoned handle) or that finished.
  std::vector<LiveQueryInfo> LiveQueries();

  /// The explain report for one in-flight query; nullopt when the id is
  /// unknown (or already pruned).
  std::optional<QueryExplain> ExplainQuery(uint64_t query_id);

  /// The embedded admin server; null unless QPipeOptions::admin_port
  /// >= 0 or admin_uds_path is set (or if its listener failed to bind).
  AdminServer* admin_server() const { return admin_server_.get(); }

  /// The stall watchdog; null unless the admin server is enabled and
  /// QPipeOptions::watchdog_period_ms > 0.
  Watchdog* watchdog() const { return watchdog_.get(); }

 private:
  Catalog* catalog_;
  QPipeOptions options_;
  MetricsRegistry* metrics_;

  std::shared_ptr<IoScheduler> io_scheduler_;
  std::shared_ptr<SpBudgetGovernor> sp_governor_;
  std::unique_ptr<StatsReporter> stats_reporter_;
  std::unique_ptr<TscanStage> tscan_;
  std::unique_ptr<JoinStage> join_;
  std::unique_ptr<AggStage> agg_;
  std::unique_ptr<SortStage> sort_;
  /// Guards extra_stages_: the admin server's /channels handler walks
  /// the list concurrently with CJOIN registration.
  mutable std::mutex extra_stages_mutex_;
  std::vector<std::shared_ptr<Stage>> extra_stages_;

  /// Stopped FIRST in the destructor (handlers and the watchdog read
  /// through the stages). Declared last-ish but torn down explicitly.
  std::unique_ptr<Watchdog> watchdog_;
  std::unique_ptr<AdminServer> admin_server_;

  /// Live-query registry for /queries, /explain and the watchdog.
  struct LiveQuery {
    uint64_t signature = 0;
    std::weak_ptr<ExecContext> ctx;
  };
  std::mutex live_mutex_;
  std::map<uint64_t, LiveQuery> live_queries_;

  std::mutex scan_groups_mutex_;
  std::map<const Table*, std::unique_ptr<CircularScanGroup>> scan_groups_;

  std::mutex hook_mutex_;
  DispatchHook join_hook_;

  std::atomic<uint64_t> next_query_id_{1};
};

}  // namespace sharing
