// Simultaneous-Pipelining mode per QPipe stage.

#pragma once

#include <string_view>

namespace sharing {

enum class SpMode {
  /// No SP: each packet is evaluated independently (query-centric
  /// operators; shared circular scans may still apply at the I/O layer).
  kOff,

  /// Original push-based SP: the host packet *copies* every output page
  /// into each satellite's FIFO buffer. The single producer performing all
  /// copies is the serialization point the paper identifies.
  kPush,

  /// Pull-based SP via the Shared Pages List: the host appends each output
  /// page once; satellites read the shared pages at their own pace. Also
  /// widens the sharing window — satellites may attach mid-production and
  /// still observe the full result.
  kPull,

  /// Per-packet admission policy: the stage picks off/push/pull for each
  /// fresh packet from live statistics (signature popularity, satellites
  /// per session, pages produced, consumer lag). Sharing is not always a
  /// win — cold signatures skip the sharing machinery entirely, and hot
  /// ones get the transport whose costs the observed workload can afford.
  kAdaptive,
};

inline std::string_view SpModeToString(SpMode mode) {
  switch (mode) {
    case SpMode::kOff:
      return "off";
    case SpMode::kPush:
      return "push";
    case SpMode::kPull:
      return "pull";
    case SpMode::kAdaptive:
      return "adaptive";
  }
  return "?";
}

}  // namespace sharing
