// FifoBuffer: the bounded page queue QPipe uses between parent and child
// packets (push-only model, as in the original engine).
//
// Exactly one producer and one consumer. The producer blocks on a full
// buffer (pipeline backpressure); the consumer blocks on an empty one.
// Either side can leave early: Close(status) seals the stream from the
// producer side; CancelReader() tells the producer its consumer is gone
// (Put starts returning false).

#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>

#include "common/macros.h"
#include "exec/page_stream.h"

namespace sharing {

class FifoBuffer final : public PageSource, public PageSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 8;

  explicit FifoBuffer(std::size_t capacity_pages = kDefaultCapacity)
      : capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

  SHARING_DISALLOW_COPY_AND_MOVE(FifoBuffer);

  // PageSink ----------------------------------------------------------------

  bool Put(PageRef page) override {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return queue_.size() < capacity_ || reader_cancelled_ || closed_;
    });
    if (reader_cancelled_ || closed_) return false;
    queue_.push_back(std::move(page));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  bool PutBatch(std::vector<PageRef> pages) override {
    return PushBatch(pages);
  }

  /// Batched Put: one lock acquisition covers as many pages as capacity
  /// allows per wakeup (still blocking for space like Put — pipeline
  /// backpressure is preserved page-for-page). Returns false when the
  /// reader is gone; a prefix may have been delivered, as with Puts.
  bool PushBatch(std::vector<PageRef>& pages) {
    std::size_t next = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (next < pages.size()) {
      not_full_.wait(lock, [&] {
        return queue_.size() < capacity_ || reader_cancelled_ || closed_;
      });
      if (reader_cancelled_ || closed_) return false;
      while (next < pages.size() && queue_.size() < capacity_) {
        queue_.push_back(std::move(pages[next++]));
      }
      not_empty_.notify_one();
    }
    return true;
  }

  void Close(Status final) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
      final_ = std::move(final);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  // PageSource --------------------------------------------------------------

  PageRef Next() override {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!WaitNotEmptyLocked(lock)) return nullptr;
    if (queue_.empty()) return nullptr;
    PageRef page = std::move(queue_.front());
    queue_.pop_front();
    ++delivered_;
    lock.unlock();
    not_full_.notify_one();
    return page;
  }

  std::size_t NextBatch(std::size_t max_pages,
                        std::vector<PageRef>* out) override {
    return PopBatch(max_pages, out);
  }

  /// Batched Next: drains up to `max_pages` buffered pages under one lock
  /// acquisition (blocking for the first page like Next); 0 = closed and
  /// drained.
  std::size_t PopBatch(std::size_t max_pages, std::vector<PageRef>* out) {
    if (max_pages == 0) return 0;
    std::size_t got = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!WaitNotEmptyLocked(lock)) return 0;
      while (got < max_pages && !queue_.empty()) {
        out->push_back(std::move(queue_.front()));
        queue_.pop_front();
        ++got;
      }
      delivered_ += got;
    }
    if (got > 0) not_full_.notify_one();
    return got;
  }

  std::size_t PagesDelivered() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return delivered_;
  }

  Status FinalStatus() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stopped_.ok()) return stopped_;
    return final_;
  }

  void CancelConsumer() override { CancelReader(); }

  /// Stop probe (query deadline / watchdog cancel): a consumer blocked on
  /// an empty buffer polls it in bounded wait slices instead of sleeping
  /// until the producer puts, and on a non-OK probe abandons the stream
  /// with that status sticky in FinalStatus (the producer's next Put
  /// returns false). Bind before the consumer's first read; the probe
  /// must be lock-free.
  void BindStopCheck(std::function<Status()> stop_check) override {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_check_ = std::move(stop_check);
  }

  /// Consumer-side abandonment: wakes a blocked producer and makes all
  /// subsequent Put calls return false. Buffered pages are dropped.
  void CancelReader() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      reader_cancelled_ = true;
      queue_.clear();
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool reader_cancelled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reader_cancelled_;
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  /// Blocks until a page is buffered or the stream closes. With a stop
  /// probe bound the wait runs in bounded slices polling it; a non-OK
  /// probe latches `stopped_`, cancels the reader side (unblocking a
  /// producer parked on a full buffer), and returns false.
  bool WaitNotEmptyLocked(std::unique_lock<std::mutex>& lock) {
    if (!stop_check_) {
      not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
      return true;
    }
    while (queue_.empty() && !closed_) {
      const Status st = stop_check_();
      if (!st.ok()) {
        if (stopped_.ok()) stopped_ = st;
        reader_cancelled_ = true;
        queue_.clear();
        not_full_.notify_all();
        return false;
      }
      not_empty_.wait_for(lock, std::chrono::milliseconds(10));
    }
    return true;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<PageRef> queue_;
  std::size_t delivered_ = 0;
  bool closed_ = false;
  bool reader_cancelled_ = false;
  Status final_;
  /// Stop-probe verdict, sticky once non-OK (see BindStopCheck). Guarded
  /// by mutex_.
  Status stopped_;
  /// External stop probe; written before the first read, called only
  /// from the consumer's wait loop. Guarded by mutex_.
  std::function<Status()> stop_check_;
};

}  // namespace sharing
