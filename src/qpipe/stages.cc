#include "qpipe/stages.h"

#include "common/logging.h"

namespace sharing {

namespace {

void LogUnexpected(const char* stage, const Status& st) {
  // Aborted is a normal outcome (cancellation / consumers detached);
  // anything else deserves a log line. The status also reaches the
  // consumer through the sink's final status.
  if (!st.ok() && st.code() != StatusCode::kAborted) {
    SHARING_LOG(Error) << stage << " packet failed: " << st.ToString();
  }
}

}  // namespace

void TscanStage::RunPacket(Packet& packet) {
  const auto& node = static_cast<const ScanNode&>(*packet.node);
  SHARING_CHECK(packet.table != nullptr) << "scan packet lacks table binding";
  Status st = RunScan(node, packet.table, packet.scan_group, packet.ctx.get(),
                      packet.output.get());
  LogUnexpected("TSCAN", st);
}

void JoinStage::RunPacket(Packet& packet) {
  const auto& node = static_cast<const JoinNode&>(*packet.node);
  SHARING_CHECK(packet.inputs.size() == 2);
  Status st = RunHashJoin(node, packet.inputs[0].get(), packet.inputs[1].get(),
                          packet.ctx.get(), packet.output.get());
  LogUnexpected("JOIN", st);
}

void AggStage::RunPacket(Packet& packet) {
  const auto& node = static_cast<const AggregateNode&>(*packet.node);
  SHARING_CHECK(packet.inputs.size() == 1);
  Status st = RunHashAggregate(node, packet.inputs[0].get(), packet.ctx.get(),
                               packet.output.get());
  LogUnexpected("AGG", st);
}

void SortStage::RunPacket(Packet& packet) {
  const auto& node = static_cast<const SortNode&>(*packet.node);
  SHARING_CHECK(packet.inputs.size() == 1);
  Status st = RunSort(node, packet.inputs[0].get(), packet.ctx.get(),
                      packet.output.get());
  LogUnexpected("SORT", st);
}

}  // namespace sharing
