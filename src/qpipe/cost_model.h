// SharingCostModel: per-signature history and an explicit cost model for
// adaptive SP admission.
//
// The paper's central argument is that sharing must be *decided*, not
// assumed: whether hosting a sharing session wins depends on the work a
// query performs, how often its identical twins arrive, and how its
// consumers behave — all properties of the *query shape*, not the stage.
// The stage-wide means the original ChooseAdaptiveMode compared against
// thresholds conflate cheap and expensive signatures: one laggy big
// template drags every small template into pull, and a flood of trivial
// one-pagers hides the convoy a heavy template is building.
//
// This module keys the decision on the plan signature instead:
//
//  * SignatureStats — a fixed-capacity ring-buffer history per signature:
//    arrival gaps (wall micros between submissions), observed per-packet
//    work (the host's RunPacket wall time), and closed-session outcomes
//    (pages produced, satellites served, production-time consumer lag,
//    closing retention). Ring semantics mean a signature's behavior last
//    week cannot outvote its behavior now.
//
//  * SharingCostModel — turns one signature's history into an explicit
//    shared-vs-unshared latency estimate plus a memory forecast, and
//    returns an admission decision with a confidence score. Decisions are
//    sticky: flipping away from the previous decision requires the
//    challenger to win by more than a hysteresis margin, so a signature
//    sitting on a cost crossover does not thrash between transports.
//
// The model's constants (copy cost per page, attach cost, spill round
// trip, ...) are *model parameters*, not measurements — they encode the
// relative expense of the transports the same way the paper's analytical
// model does, and the estimate only needs to rank {off, push, pull}
// correctly, not predict wall clock. history/min_samples/debug are
// surfaced as QPipeOptions/EngineConfig::cost_model_*; hysteresis and
// the signature-LRU capacity are internal (see docs/KNOBS.md).
//
// Observability: policy.decisions_shared / policy.decisions_unshared /
// policy.flips counters and the policy.confidence gauge (per-mille of the
// most recent model decision's confidence). docs/METRICS.md documents all
// of them.

#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "qpipe/sp_mode.h"

namespace sharing {

/// Tuning for the per-signature cost model (plumbed from
/// QPipeOptions/EngineConfig::cost_model_*).
struct CostModelOptions {
  /// Ring-buffer capacity per signature: how many recent executions /
  /// closed sessions vote. Small histories adapt fast; large ones smooth
  /// bursty consumers.
  std::size_t history = 32;

  /// Sessions AND work samples a signature needs before the model decides
  /// for it; below this the caller falls back to the stage-wide
  /// heuristic. 0 is clamped to 1 by the model (a zero gate would let it
  /// decide from an empty ring).
  std::size_t min_samples = 3;

  /// Relative cost advantage a challenger mode must have over the
  /// incumbent (the signature's previous decision) to flip it. Prevents
  /// thrash at cost crossovers; the flip-count is policy.flips.
  double hysteresis = 0.15;

  /// Signatures tracked; beyond this the least-recently-touched
  /// signature's history is evicted (mirrors the popularity LRU).
  std::size_t capacity = 4096;

  /// Log every model decision (signature, estimates, chosen mode,
  /// confidence) — the cost_model_debug knob.
  bool debug = false;
};

/// Ring-buffer history for one packet signature. Not thread-safe; the
/// owning SharingCostModel serializes access.
class SignatureStats {
 public:
  /// One closed sharing session's outcome for this signature.
  struct SessionSample {
    double satellites = 0;  // readers served beyond the host
    double pages = 0;       // pages the host produced
    double lag = 0;         // production-time max consumer lag (pages)
    double retention = 0;   // closing lag uncapped: pages the slowest
                            // reader kept pinned (spill forecast input)
  };

  explicit SignatureStats(std::size_t capacity);

  /// A submission of this signature at `now_micros` (any monotonic clock;
  /// tests pass synthetic timestamps). Records the gap since the previous
  /// arrival.
  void RecordArrival(int64_t now_micros);

  /// A packet of this signature executed (host or unshared) in
  /// `work_micros` of wall time.
  void RecordExecution(double work_micros);

  /// A sharing session hosted for this signature closed.
  void RecordSession(const SessionSample& sample);

  std::size_t work_samples() const { return work_.size(); }
  std::size_t session_samples() const { return sessions_.size(); }
  std::size_t arrival_samples() const { return gaps_.size(); }

  double MeanWorkMicros() const;
  /// Work at quantile q in [0,1] over the ring (nearest-rank). The p95
  /// work is what the debug dump reports next to the mean: a signature
  /// whose tail is far above its mean is exactly the kind the stage-wide
  /// average misjudged.
  double WorkMicrosAtQuantile(double q) const;
  double MeanPages() const;
  double MeanSatellites() const;
  double MeanLag() const;
  /// Mean closing retention — the per-signature spill-demand forecast.
  double MeanRetention() const;
  /// Mean micros between successive arrivals; +inf until two arrivals.
  double MeanArrivalGapMicros() const;

 private:
  /// Fixed-capacity ring: push overwrites the oldest once full.
  class Ring {
   public:
    explicit Ring(std::size_t capacity) : capacity_(capacity) {}
    void Push(double v);
    std::size_t size() const { return values_.size(); }
    double Mean() const;
    const std::vector<double>& values() const { return values_; }

   private:
    std::size_t capacity_;
    std::size_t next_ = 0;
    std::vector<double> values_;
  };

  /// Session outcomes ride four parallel rings (same push order).
  struct SessionRings {
    Ring satellites, pages, lag, retention;
    explicit SessionRings(std::size_t c)
        : satellites(c), pages(c), lag(c), retention(c) {}
    std::size_t size() const { return pages.size(); }
  };

  Ring work_;
  Ring gaps_;
  SessionRings sessions_;
  int64_t last_arrival_micros_ = 0;
  bool has_arrival_ = false;
};

/// Everything outside the signature's own history that the estimate needs.
struct CostModelEnvironment {
  /// Push-satellite FIFO capacity: lag at/above it means the producer
  /// convoys on the slowest satellite.
  std::size_t fifo_capacity = 8;

  /// Engine-wide SP page budget; 0 = no governor.
  std::size_t budget_pages = 0;

  /// The spill tier can actually absorb overflow (governor configured and
  /// its store not latched failed).
  bool spill_usable = false;
};

/// The explicit estimate behind one decision, surfaced for debugging and
/// the bench's per-signature report. All latencies in micros.
struct CostEstimate {
  double work_micros = 0;         // W: mean per-packet work
  double expected_satellites = 0; // n: history + arrival-rate forecast
  double unshared_micros = 0;     // (1 + n) * W — everyone repeats the work
  double push_micros = 0;         // W + host setup + copies + convoy stall
  double pull_micros = 0;         // W + host setup + attaches + retention
                                  //   bookkeeping + spill round trips
  double retention_pages = 0;     // forecast pages the slowest reader pins
  double spill_pages = 0;         // forecast retention beyond the budget
};

struct CostDecision {
  /// False: not enough history — the caller must fall back to its
  /// stage-wide heuristic. All other fields are meaningless then.
  bool from_model = false;

  SpMode mode = SpMode::kPull;  // kOff, kPush or kPull

  /// Pull was chosen (at least partly) because the retention forecast
  /// exceeds the budget and the spill tier absorbs the overflow.
  bool spill_preferred = false;

  /// [0,1]: grows with history depth and with the cost margin between the
  /// chosen mode and the runner-up. Monotonically non-decreasing in
  /// sample count for a stationary signature.
  double confidence = 0;

  CostEstimate estimate;
};

class SharingCostModel {
 public:
  SharingCostModel(CostModelOptions options, MetricsRegistry* metrics);

  SHARING_DISALLOW_COPY_AND_MOVE(SharingCostModel);

  /// Record hooks (thread-safe). `now_micros` is any monotonic micros
  /// clock; production callers pass steady_clock, tests pass synthetic
  /// time.
  void RecordArrival(uint64_t signature, int64_t now_micros);
  void RecordExecution(uint64_t signature, double work_micros);
  void RecordSession(uint64_t signature,
                     const SignatureStats::SessionSample& sample);

  /// Online transport-cost measurements (thread-safe): wall nanoseconds
  /// for one push deep copy of a page / one pull AttachReader, EWMA'd
  /// (alpha kCostEwmaAlpha) across every channel that reports. Once a
  /// sample exists it replaces the corresponding fixed model constant in
  /// Decide's estimate — the ROADMAP "measure, don't assume" follow-up.
  /// Published as the policy.measured_copy_ns / policy.measured_attach_ns
  /// gauges.
  void RecordCopyCost(double copy_ns_per_page);
  void RecordAttachCost(double attach_ns);

  /// The admission decision for a fresh packet of `signature`.
  /// Thread-safe; updates the signature's sticky decision state and the
  /// policy.* metrics when the model decides.
  CostDecision Decide(uint64_t signature, const CostModelEnvironment& env);

  /// Point-in-time view of one tracked signature (bench / test surface).
  struct SignatureSnapshot {
    uint64_t signature = 0;
    std::size_t work_samples = 0;
    std::size_t session_samples = 0;
    double mean_work_micros = 0;
    double p95_work_micros = 0;
    double mean_pages = 0;
    double mean_satellites = 0;
    double mean_retention = 0;
    double mean_arrival_gap_micros = 0;
    // Model decisions taken for this signature, by outcome.
    int64_t decided_off = 0;
    int64_t decided_push = 0;
    int64_t decided_pull = 0;
    bool has_decision = false;
    SpMode last_mode = SpMode::kOff;
    double last_confidence = 0;
  };
  std::vector<SignatureSnapshot> Snapshot() const;

  /// Human-readable dump of every tracked signature (the
  /// cost_model_debug surface; also handy in a debugger).
  std::string DebugDump() const;

  const CostModelOptions& options() const { return options_; }

  // Cost-model parameters (micros): relative expense of the transports.
  // They rank modes; they do not predict wall clock (see file comment).
  // The copy and mechanical-attach constants are *priors*: once
  // RecordCopyCost / RecordAttachCost deliver real measurements, the
  // EWMA replaces them. The satellite-service share stays a parameter —
  // it prices the host-side costs of serving one more pull reader over
  // the session's life (window bookkeeping, parked-reader wakeups,
  // reclamation probes), which no point measurement at attach time can
  // observe.
  static constexpr double kHostSetupMicros = 40.0;
  static constexpr double kPushCopyMicrosPerPage = 6.0;
  static constexpr double kConvoyStallMicrosPerPage = 20.0;
  static constexpr double kPullAttachMicros = 2.0;
  static constexpr double kPullSatelliteServiceMicros = 38.0;
  static constexpr double kPullRetainMicrosPerPage = 1.0;
  static constexpr double kSpillRoundTripMicrosPerPage = 50.0;
  /// EWMA smoothing for the measured copy/attach costs: new samples move
  /// the estimate fast enough to track a regime change (row width, NUMA
  /// placement) within a few dozen samples while one outlier copy cannot
  /// swing a decision.
  static constexpr double kCostEwmaAlpha = 0.2;

 private:
  struct Entry {
    explicit Entry(std::size_t history) : stats(history) {}
    SignatureStats stats;
    bool has_decision = false;
    SpMode last_mode = SpMode::kOff;
    double last_confidence = 0;
    int64_t decided_off = 0;
    int64_t decided_push = 0;
    int64_t decided_pull = 0;
    std::list<uint64_t>::iterator lru_it;
  };

  /// Finds or creates the signature's entry, bumping it in the LRU and
  /// evicting the coldest beyond capacity. Requires mutex_ held.
  Entry& TouchLocked(uint64_t signature);

  /// Publishes `confidence` to the policy.confidence gauge (per-mille).
  void PublishConfidenceLocked(double confidence);

  CostModelOptions options_;
  Counter* decisions_shared_;
  Counter* decisions_unshared_;
  Counter* flips_;
  Gauge* confidence_gauge_;
  Gauge* measured_copy_ns_;
  Gauge* measured_attach_ns_;

  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // front = most recently touched
  /// Measured transport costs (nanoseconds, EWMA). 0 until the first
  /// sample; guarded by mutex_ like the rest of the model state.
  double copy_cost_ewma_ns_ = 0;
  double attach_cost_ewma_ns_ = 0;
};

}  // namespace sharing
