// SpBudgetGovernor: the engine-wide memory budget for pull-based SP.
//
// The SPL widens the sharing window by retaining produced pages for late
// and slow consumers — a memory-for-sharing trade that PR 1 bounded only
// by reclaiming behind the slowest reader. One stalled satellite therefore
// still pinned the host's entire result in RAM. The governor closes that
// hole: it accounts every in-memory SPL page across *all* sharing
// channels of an engine against a configurable page budget, and when the
// total exceeds the budget it directs channels to migrate
// already-consumed but not-yet-drained pages to a temp file (spill tier).
// Spilled pages fault back transparently on SplReader::Next() with
// bit-exact contents, and are deleted — never re-read — once every reader
// has passed them (the sealed-window reclamation contract).
//
// The governor owns the spill backing store: a lazily created DiskManager
// over a unique temp file (removed on destruction). A RowPage spills as a
// chain of fixed-size disk pages carrying a page_layout header (row
// width/count/capacity) plus the raw row bytes, so the faulted-back page
// is byte-identical to the original. Freed chains return to the
// DiskManager free list, so the spill file is bounded by the live spilled
// working set, not cumulative spill traffic.
//
// Observability: `sp.pages_spilled` (RowPages ever spilled),
// `sp.spill_bytes` (bytes currently on the spill store; returns to zero
// after readers drain) and `sp.unspill_reads` (fault-back reads).

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/status_or.h"
#include "io/io_scheduler.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace sharing {

class SharedPagesList;
class SpBudgetGovernor;

/// A RowPage migrated to the spill store: the disk-page chain holding its
/// serialized bytes plus the metadata needed to reconstruct it exactly.
/// Destruction frees the chain without reading it — dropping the last
/// reference (reclamation, channel teardown) is how spilled pages die.
class SpilledPage {
 public:
  SpilledPage(std::shared_ptr<SpBudgetGovernor> governor,
              std::vector<PageId> chain, uint32_t row_width,
              uint32_t row_count, uint32_t capacity, std::size_t bytes)
      : governor_(std::move(governor)),
        chain_(std::move(chain)),
        row_width_(row_width),
        row_count_(row_count),
        capacity_(capacity),
        bytes_(bytes) {}
  ~SpilledPage();

  SHARING_DISALLOW_COPY_AND_MOVE(SpilledPage);

  const std::vector<PageId>& chain() const { return chain_; }
  uint32_t row_width() const { return row_width_; }
  uint32_t row_count() const { return row_count_; }
  uint32_t capacity() const { return capacity_; }
  /// Serialized size (header + row bytes); the unit of sp.spill_bytes.
  std::size_t bytes() const { return bytes_; }

 private:
  std::shared_ptr<SpBudgetGovernor> governor_;
  std::vector<PageId> chain_;
  uint32_t row_width_;
  uint32_t row_count_;
  uint32_t capacity_;
  std::size_t bytes_;
};

using SpilledPageRef = std::shared_ptr<const SpilledPage>;

class SpBudgetGovernor
    : public std::enable_shared_from_this<SpBudgetGovernor> {
 public:
  struct Options {
    /// In-memory SP pages allowed across every channel sharing this
    /// governor; 0 disables budgeting (channels never spill).
    std::size_t budget_pages = 0;

    /// Path of the spill backing file; empty picks a unique file in the
    /// system temp directory. Created lazily on first spill (exclusively
    /// — a path whose file already exists is refused, never shared or
    /// truncated), removed when the governor dies.
    std::string spill_path;

    /// Latency model charged on fault-back reads (defaults to none: the
    /// spill store is a local temp file, not the modeled 15kRPM array).
    uint32_t read_latency_micros = 0;
    uint32_t read_bandwidth_mib = 0;

    /// Latency model charged on spill writes. With a scheduler configured
    /// it is charged on the I/O worker, never the producer thread.
    uint32_t write_latency_micros = 0;

    /// Asynchronous I/O service for spill writes (kSpillWrite class) and
    /// fault-back reads (kFaultBack class). Null: both run synchronously
    /// on the calling thread (the pre-scheduler behavior). The governor
    /// keeps only a WEAK reference: the scheduler's creator owns its
    /// lifetime (and must Shutdown it), and queued spill jobs — which
    /// pin the governor — must never be able to resurrect or destroy
    /// the scheduler from one of its own workers.
    std::shared_ptr<IoScheduler> scheduler;

    /// Max spill writes in flight at once (scheduler path only). The
    /// window bounds how far the memory tier can transiently overshoot
    /// the budget: victims stay resident (and readable) until their
    /// write is durable, so at most `spill_write_window` pages sit in
    /// the "spilling but not yet released" state.
    std::size_t spill_write_window = 16;

    MetricsRegistry* metrics = &MetricsRegistry::Global();
  };

  static std::shared_ptr<SpBudgetGovernor> Create(Options options) {
    return std::shared_ptr<SpBudgetGovernor>(
        new SpBudgetGovernor(std::move(options)));
  }

  SHARING_DISALLOW_COPY_AND_MOVE(SpBudgetGovernor);

  bool enabled() const { return options_.budget_pages > 0; }
  std::size_t budget_pages() const { return options_.budget_pages; }

  /// Budgeting is configured AND the spill store works (creation and
  /// writes have not latched it off) — i.e. the spill tier can actually
  /// absorb overflow. The adaptive pull+spill preference checks this,
  /// not enabled(): steering a high-retention session into pull on the
  /// promise of a spill tier that cannot spill would recreate the
  /// unbounded-RAM regime the governor exists to prevent.
  bool usable() const {
    return enabled() && !store_failed_.load(std::memory_order_relaxed);
  }

  /// Accounting hooks called by SharedPagesList as pages become (or stop
  /// being) memory-resident. Spilling a page releases it; faulting one
  /// back hands the reader a transient private copy and retains nothing.
  void OnPagesRetained(std::size_t n) {
    in_memory_.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
  }
  void OnPagesReleased(std::size_t n) {
    in_memory_.fetch_sub(static_cast<int64_t>(n), std::memory_order_relaxed);
  }

  /// In-memory SP pages currently beyond the budget — how many pages the
  /// calling channel should shed. Computed on the *effective* retention
  /// (EffectiveInMemoryPages): a victim whose async spill write is
  /// already in flight leaves memory the moment it is durable, so
  /// counting it again would double-shed. Zero when budgeting is
  /// disabled.
  std::size_t ExcessPages() const {
    if (!enabled()) return 0;
    int64_t now =
        in_memory_.load(std::memory_order_relaxed) -
        static_cast<int64_t>(spills_in_flight_.load(std::memory_order_relaxed));
    int64_t budget = static_cast<int64_t>(options_.budget_pages);
    return now > budget ? static_cast<std::size_t>(now - budget) : 0;
  }

  std::size_t InMemoryPages() const {
    int64_t now = in_memory_.load(std::memory_order_relaxed);
    return now > 0 ? static_cast<std::size_t>(now) : 0;
  }

  /// Retention net of in-flight async spill writes — the pages that will
  /// still be resident once queued spill I/O lands. The adaptive spill
  /// preference reads this view so a burst of in-flight writes does not
  /// double-count against the budget.
  std::size_t EffectiveInMemoryPages() const {
    int64_t now =
        in_memory_.load(std::memory_order_relaxed) -
        static_cast<int64_t>(spills_in_flight_.load(std::memory_order_relaxed));
    return now > 0 ? static_cast<std::size_t>(now) : 0;
  }

  /// Async spill writes currently queued or running.
  std::size_t SpillsInFlight() const {
    return spills_in_flight_.load(std::memory_order_relaxed);
  }

  /// The in-flight window is exhausted: further SpillAsync calls would
  /// decline, so Rebalance can stop scanning for victims.
  bool SpillWindowFull() const {
    return !scheduler_.expired() &&
           SpillsInFlight() >= options_.spill_write_window;
  }

  /// The configured scheduler if it is still alive; nullptr otherwise
  /// (never configured, or its owner already destroyed it — every async
  /// path then falls back to synchronous I/O).
  std::shared_ptr<IoScheduler> scheduler() const { return scheduler_.lock(); }

  /// Registers a list as a shed candidate for Rebalance. Expired entries
  /// are pruned opportunistically, so lists need not deregister.
  void Register(std::weak_ptr<SharedPagesList> list);

  /// Sheds in-memory pages engine-wide until the budget is met: the
  /// appender's and then every registered list's already-consumed pages
  /// first (drained open-window history anywhere beats thrashing fresh
  /// pages), falling back to the appender's unread tail so the budget
  /// stays a hard bound even when nothing has been read. Called by the
  /// appending list with NO list locks held — each shed takes only its
  /// own list's lock, and the spill I/O itself runs outside it (on the
  /// scheduler's kSpillWrite workers when one is configured, bounded by
  /// spill_write_window). `appender` may be null: async write
  /// completions re-kick Rebalance with no appender so the budget
  /// converges after the producer has closed.
  void Rebalance(SharedPagesList* appender);

  /// Serializes `page` to the spill store, synchronously on the calling
  /// thread (scheduler workers call this as a job body; clients without
  /// a scheduler call it directly). Returns nullptr when the store
  /// cannot be created or written (the caller keeps the page in memory —
  /// over budget beats losing data). Does NOT touch the in-memory
  /// accounting; the caller releases the page it spilled.
  SpilledPageRef Spill(const RowPage& page);

  /// Asynchronous spill: schedules the serialization + writes as one
  /// kSpillWrite job and invokes `install` with the result (nullptr on a
  /// failed store, cancellation, or shutdown) from the worker — the
  /// durability-before-unpin handoff: the caller keeps the page resident
  /// until `install` delivers a durable chain. Declines (returns false,
  /// `install` never called) when the in-flight window is full. Without
  /// a scheduler, degenerates to the synchronous path: `install` runs
  /// inline and the call returns true.
  bool SpillAsync(PageRef page, std::function<void(SpilledPageRef)> install);

  /// Fault-back: reads a spilled page's chain and reconstructs a RowPage
  /// bit-identical to the original. The chain stays allocated (other
  /// readers may fault the same page); it is freed when the last
  /// SpilledPageRef dies. Runs on the calling thread; demand fault-backs
  /// should go through UnspillBlocking so the read is prioritized and
  /// budget-throttled by the scheduler.
  StatusOr<PageRef> Unspill(const SpilledPage& spilled);

  /// Demand fault-back via the scheduler's kFaultBack class: the chain
  /// is fanned out as per-page DiskManager::ReadPageAsync jobs (so a
  /// multi-page chain's latency-charged reads overlap across workers)
  /// and assembled on the calling thread. Falls back to a synchronous
  /// Unspill when no scheduler is configured or it has shut down. Must
  /// not be called from a scheduler worker — waiting on the tickets
  /// there could self-deadlock; workers use UnspillPrefetch jobs.
  StatusOr<PageRef> UnspillBlocking(const SpilledPageRef& spilled);

  /// Readahead fault-back: schedules the chain read and returns without
  /// waiting; `*out` holds the result once the ticket completes. Returns
  /// nullptr (and never touches `out`) without a scheduler.
  IoTicketRef UnspillPrefetch(
      SpilledPageRef spilled,
      std::shared_ptr<std::optional<StatusOr<PageRef>>> out);

  /// Bytes currently held by the spill store (the sp.spill_bytes gauge).
  int64_t SpillBytes() const { return spill_bytes_->Get(); }

  /// Why the spill tier latched off — OK while it is still usable. The
  /// admin /healthz endpoint surfaces this so "budgeted engine silently
  /// running unbounded" is observable, not just a log line.
  Status DisabledReason() const {
    std::lock_guard<std::mutex> lock(disabled_mutex_);
    return disabled_cause_;
  }

 private:
  friend class SpilledPage;

  explicit SpBudgetGovernor(Options options);

  /// The spill store, created on first use. Returns nullptr on failure.
  DiskManager* EnsureStore();

  /// Latches the spill tier off permanently, recording `cause` for
  /// /healthz and raising the sp.spill_disabled gauge. Idempotent — the
  /// first cause wins and the warning fires once, so a storm of failing
  /// writes cannot flood the log.
  void DisableStore(const Status& cause);

  /// Called by ~SpilledPage: returns a chain to the free list unread.
  void FreeChain(const std::vector<PageId>& chain, std::size_t bytes);

  Options options_;
  Counter* pages_spilled_;
  Counter* unspill_reads_;
  Gauge* spill_bytes_;
  /// 1 once the spill tier latched off (sp.spill_disabled), else 0.
  Gauge* spill_disabled_;

  std::atomic<int64_t> in_memory_{0};
  /// Async spill writes queued or running (bounded by spill_write_window).
  std::atomic<std::size_t> spills_in_flight_{0};
  /// Weak by design — see Options::scheduler.
  std::weak_ptr<IoScheduler> scheduler_;

  std::mutex lists_mutex_;
  std::vector<std::weak_ptr<SharedPagesList>> lists_;

  std::mutex store_mutex_;
  std::unique_ptr<DiskManager> store_;
  /// Latched when the spill store cannot be created: Rebalance becomes a
  /// cheap no-op instead of rescanning every channel on every append.
  std::atomic<bool> store_failed_{false};
  /// First failure that latched the store off (separate lock: DisableStore
  /// runs both with and without store_mutex_ held).
  mutable std::mutex disabled_mutex_;
  Status disabled_cause_ = Status::OK();
};

}  // namespace sharing
