#include "qpipe/sp_budget_governor.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/fault.h"
#include "common/logging.h"
#include "qpipe/shared_pages_list.h"

namespace sharing {

namespace {

/// One spilled RowPage = a page_layout header (magic, row width/count,
/// capacity in `reserved`) followed by the raw row bytes, split across as
/// many fixed-size disk pages as it needs.
std::size_t SerializedBytes(const RowPage& page) {
  return page_layout::kHeaderBytes + page.data_bytes();
}

std::size_t ChainLength(std::size_t bytes) {
  return (bytes + kPageBytes - 1) / kPageBytes;
}

/// Reconstructs a RowPage bit-identical to the original from a spilled
/// page's chain; `frame_at(i)` yields a pointer to the kPageBytes of
/// chain page i (valid until the next call — the synchronous path reuses
/// one scratch buffer, the async path hands out pre-read frames without
/// copying). Capacity (not just row count) is restored so the
/// faulted-back page is indistinguishable from the original to every
/// accessor.
StatusOr<PageRef> AssembleSpilledPage(
    const SpilledPage& spilled,
    const std::function<StatusOr<const uint8_t*>(std::size_t)>& frame_at) {
  auto page = std::make_shared<RowPage>(
      spilled.row_width(),
      static_cast<std::size_t>(spilled.capacity()) * spilled.row_width());
  for (uint32_t r = 0; r < spilled.row_count(); ++r) {
    SHARING_CHECK(page->AppendSlot() != nullptr);
  }
  const std::size_t data_bytes =
      static_cast<std::size_t>(spilled.row_count()) * spilled.row_width();
  uint8_t* data = data_bytes > 0 ? page->MutableRowAt(0) : nullptr;

  std::size_t data_off = 0;
  for (std::size_t i = 0; i < spilled.chain().size(); ++i) {
    const uint8_t* frame;
    SHARING_ASSIGN_OR_RETURN(frame, frame_at(i));
    std::size_t frame_off = 0;
    if (i == 0) {
      const page_layout::Header* h = page_layout::GetHeader(frame);
      if (h->magic != page_layout::kMagic ||
          h->row_width != spilled.row_width() ||
          h->row_count != spilled.row_count()) {
        return Status::Internal("corrupt spilled page header");
      }
      frame_off = page_layout::kHeaderBytes;
    }
    // Rows are a contiguous byte stream that may straddle disk-page
    // boundaries; copy the stream, not row by row.
    const std::size_t take =
        std::min(kPageBytes - frame_off, data_bytes - data_off);
    if (take > 0) std::memcpy(data + data_off, frame + frame_off, take);
    data_off += take;
  }
  return PageRef(page);
}

std::string UniqueSpillPath() {
  static std::atomic<uint64_t> seq{0};
  std::error_code ec;
  std::filesystem::path dir = std::filesystem::temp_directory_path(ec);
  if (ec) dir = ".";
  return (dir / ("sharing_sp_spill_" + std::to_string(::getpid()) + "_" +
                 std::to_string(seq.fetch_add(1)) + ".bin"))
      .string();
}

}  // namespace

SpilledPage::~SpilledPage() {
  if (governor_ != nullptr) governor_->FreeChain(chain_, bytes_);
}

SpBudgetGovernor::SpBudgetGovernor(Options options)
    : options_(std::move(options)),
      pages_spilled_(options_.metrics->GetCounter(metrics::kSpPagesSpilled)),
      unspill_reads_(options_.metrics->GetCounter(metrics::kSpUnspillReads)),
      spill_bytes_(options_.metrics->GetGauge(metrics::kSpSpillBytes)),
      spill_disabled_(options_.metrics->GetGauge(metrics::kSpSpillDisabled)),
      scheduler_(options_.scheduler) {
  // Only the weak reference is kept (see Options::scheduler): spill jobs
  // pin this governor, and the governor must never be what keeps the
  // scheduler alive, or a worker destroying the last job capture would
  // end up destroying — and self-joining — its own scheduler.
  options_.scheduler.reset();
}

void SpBudgetGovernor::Register(std::weak_ptr<SharedPagesList> list) {
  std::lock_guard<std::mutex> lock(lists_mutex_);
  std::erase_if(lists_,
                [](const std::weak_ptr<SharedPagesList>& w) {
                  return w.expired();
                });
  lists_.push_back(std::move(list));
}

void SpBudgetGovernor::Rebalance(SharedPagesList* appender) {
  // A failed spill store latches the governor off: rescanning every
  // channel per append to shed zero pages would tax the engine forever.
  if (store_failed_.load(std::memory_order_relaxed)) return;
  if (ExcessPages() == 0) return;
  // With the async window exhausted every SpillAsync below would decline;
  // the install of an in-flight write re-runs Rebalance, so the excess
  // that remains here is picked up as soon as a window slot frees.
  if (SpillWindowFull()) return;
  std::vector<std::shared_ptr<SharedPagesList>> lists;
  {
    std::lock_guard<std::mutex> lock(lists_mutex_);
    lists.reserve(lists_.size());
    for (const auto& w : lists_) {
      if (auto list = w.lock()) lists.push_back(std::move(list));
    }
  }
  // Tier-major sweep: exhaust drained history engine-wide before touching
  // any consumed-but-laggard-needed page anywhere, and those before any
  // unread page — an idle channel's dead history must spill before the
  // active channel refaults pages its readers still want. Within the
  // drained/consumed tiers the appender goes first (cache-warm, most
  // likely to have candidates); in the unread tier it goes last, because
  // its fresh pages are read next while an idle channel's unread pages
  // are read later. The engine-wide excess is re-sampled before every
  // shed so concurrent rebalances from other appenders do not multiply
  // the spill work.
  for (SpillTier tier :
       {SpillTier::kDrained, SpillTier::kConsumed, SpillTier::kUnread}) {
    auto shed = [&](SharedPagesList* list) {
      if (SpillWindowFull()) return false;
      std::size_t excess = ExcessPages();
      if (excess == 0) return false;
      list->ShedForBudget(excess, tier);
      return true;
    };
    if (tier != SpillTier::kUnread && appender != nullptr &&
        !shed(appender)) {
      return;
    }
    for (const auto& list : lists) {
      if (list.get() == appender) continue;
      if (!shed(list.get())) return;
    }
    if (tier == SpillTier::kUnread && appender != nullptr &&
        !shed(appender)) {
      return;
    }
  }
}

void SpBudgetGovernor::DisableStore(const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(disabled_mutex_);
    if (!disabled_cause_.ok()) {  // already latched; first cause wins
      store_failed_.store(true, std::memory_order_relaxed);
      return;
    }
    disabled_cause_ = cause;
  }
  store_failed_.store(true, std::memory_order_relaxed);
  spill_disabled_->Set(1);
  // The latch makes this a once-per-governor event, so one Error line is
  // the rate limit: subsequent failures short-circuit above.
  SHARING_LOG(Error) << "SP spill tier disabled: " << cause.ToString()
                     << " — queries keep running without a memory budget "
                        "(sp.spill_disabled=1, see /healthz)";
}

DiskManager* SpBudgetGovernor::EnsureStore() {
  std::lock_guard<std::mutex> lock(store_mutex_);
  if (store_ != nullptr) return store_.get();
  if (store_failed_.load(std::memory_order_relaxed)) return nullptr;
  if (SHARING_FAULT_POINT(fault_points::kSpillOpen)) {
    DisableStore(Status::IoError("injected spill store open failure"));
    return nullptr;
  }
  DiskOptions disk;
  disk.read_latency_micros = options_.read_latency_micros;
  disk.read_bandwidth_mib = options_.read_bandwidth_mib;
  disk.write_latency_micros = options_.write_latency_micros;
  // Exclusive creation ("x"): two governors must never share one spill
  // file — their DiskManagers would allocate overlapping PageIds and
  // truncate/remove each other's chains, silently corrupting results.
  // An explicit path that already exists fails loudly (degrades to "no
  // spilling"); auto-generated paths retry with a fresh suffix. A bad
  // path is probed here rather than handed to DiskManager, which aborts
  // on an unopenable backing file.
  if (options_.spill_path.empty()) {
    for (int attempt = 0; attempt < 16 && disk.path.empty(); ++attempt) {
      std::string candidate = UniqueSpillPath();
      if (std::FILE* probe = std::fopen(candidate.c_str(), "wbx")) {
        std::fclose(probe);
        disk.path = std::move(candidate);
      }
    }
  } else if (std::FILE* probe = std::fopen(options_.spill_path.c_str(),
                                           "wbx")) {
    std::fclose(probe);
    disk.path = options_.spill_path;
  }
  if (disk.path.empty()) {
    DisableStore(Status::IoError(
        "spill store unavailable at " +
        (options_.spill_path.empty() ? std::string("<temp dir>")
                                     : options_.spill_path) +
        " (unwritable, or the file already exists — spill stores are "
        "never shared or truncated)"));
    return nullptr;
  }
  store_ = std::make_unique<DiskManager>(disk, options_.metrics);
  return store_.get();
}

SpilledPageRef SpBudgetGovernor::Spill(const RowPage& page) {
  if (store_failed_.load(std::memory_order_relaxed)) return nullptr;
  DiskManager* store = EnsureStore();
  if (store == nullptr) return nullptr;

  const std::size_t bytes = SerializedBytes(page);
  const std::size_t chain_len = ChainLength(bytes);
  std::vector<PageId> chain;
  chain.reserve(chain_len);
  for (std::size_t i = 0; i < chain_len; ++i) {
    PageId id = store->AllocatePage();
    if (id == kInvalidPageId) {
      // Spill store out of space: degrade to no-spill (pages stay
      // resident, over budget) rather than failing the queries whose
      // pages we were evicting on their behalf.
      DisableStore(Status::ResourceExhausted(
          "spill store allocation failed (out of space)"));
      for (PageId allocated : chain) store->FreePage(allocated);
      return nullptr;
    }
    chain.push_back(id);
  }

  // Stream the header + row bytes through a page-sized scratch frame.
  uint8_t frame[kPageBytes];
  page_layout::Header header;
  header.magic = page_layout::kMagic;
  header.row_width = static_cast<uint32_t>(page.row_width());
  header.row_count = static_cast<uint32_t>(page.row_count());
  header.reserved = static_cast<uint32_t>(page.capacity());

  const uint8_t* data =
      page.row_count() > 0 ? page.RowAt(0) : nullptr;
  const std::size_t data_bytes = page.data_bytes();
  std::size_t data_off = 0;
  for (std::size_t i = 0; i < chain_len; ++i) {
    std::size_t frame_off = 0;
    if (i == 0) {
      std::memcpy(frame, &header, page_layout::kHeaderBytes);
      frame_off = page_layout::kHeaderBytes;
    }
    const std::size_t take =
        std::min(kPageBytes - frame_off, data_bytes - data_off);
    if (take > 0) std::memcpy(frame + frame_off, data + data_off, take);
    data_off += take;
    frame_off += take;
    if (frame_off < kPageBytes) {
      std::memset(frame + frame_off, 0, kPageBytes - frame_off);
    }
    Status st = store->WritePage(chain[i], frame);
    if (!st.ok()) {
      // Latch off, exactly like a creation failure: a full spill
      // filesystem does not heal mid-run, and without the latch every
      // subsequent Append would re-select the same victims and re-issue
      // the same failing writes across all channels forever.
      DisableStore(st);
      for (PageId id : chain) store->FreePage(id);
      return nullptr;
    }
  }

  pages_spilled_->Increment();
  spill_bytes_->Add(static_cast<int64_t>(bytes));
  return std::make_shared<SpilledPage>(
      shared_from_this(), std::move(chain), header.row_width,
      header.row_count, header.reserved, bytes);
}

bool SpBudgetGovernor::SpillAsync(
    PageRef page, std::function<void(SpilledPageRef)> install) {
  SHARING_CHECK(page != nullptr && install != nullptr);
  std::shared_ptr<IoScheduler> scheduler = scheduler_.lock();
  if (scheduler == nullptr) {
    install(Spill(*page));
    return true;
  }
  // Claim a window slot before submitting; the slot is released when the
  // job completes or is skipped, so the count never leaks even through
  // cancellation or scheduler shutdown.
  if (spills_in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.spill_write_window) {
    spills_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  auto self = shared_from_this();
  const std::size_t bytes = SerializedBytes(*page);
  IoTicketRef ticket = scheduler->Submit(
      IoPriority::kSpillWrite, bytes,
      /*work=*/
      [self, page, install] {
        SpilledPageRef spilled = self->Spill(*page);
        const bool ok = spilled != nullptr;
        // Install before releasing the window slot, so a Rebalance
        // kicked by the freed slot sees the updated residency.
        install(std::move(spilled));
        self->spills_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        // The freed window slot may be the only thing that was holding
        // back further shedding (Rebalance declines while the window is
        // full, and a closed producer never calls it again) — re-run it
        // here so the budget converges without another Append.
        self->Rebalance(nullptr);
        return ok ? Status::OK() : Status::IoError("spill write failed");
      },
      /*on_skip=*/
      [self, install] {
        install(nullptr);  // page stays resident; caller unmarks it
        self->spills_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      });
  if (ticket == nullptr) {  // scheduler shut down
    spills_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

StatusOr<PageRef> SpBudgetGovernor::UnspillBlocking(
    const SpilledPageRef& spilled) {
  SHARING_CHECK(spilled != nullptr);
  std::shared_ptr<IoScheduler> scheduler = scheduler_.lock();
  if (scheduler == nullptr) return Unspill(*spilled);
  DiskManager* store;
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    store = store_.get();
  }
  SHARING_CHECK(store != nullptr) << "unspill with no spill store";

  // Fan the chain out as per-page kFaultBack reads and assemble here:
  // the caller is never a scheduler worker (workers fault whole chains
  // inside UnspillPrefetch jobs), so waiting on the tickets cannot
  // self-deadlock, and a multi-page chain's reads — each charged the
  // latency model — overlap across the worker pool.
  const auto& chain = spilled->chain();
  std::vector<std::unique_ptr<uint8_t[]>> frames(chain.size());
  std::vector<IoTicketRef> tickets(chain.size());
  bool scheduler_down = false;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    frames[i] = std::make_unique<uint8_t[]>(kPageBytes);
    tickets[i] = store->ReadPageAsync(scheduler.get(), IoPriority::kFaultBack,
                                      chain[i], frames[i].get());
    if (tickets[i] == nullptr) {
      scheduler_down = true;
      break;
    }
  }
  // Every issued ticket must resolve before the frames can be released,
  // even on the fallback paths — a running job writes into them.
  Status read_status = Status::OK();
  for (const auto& ticket : tickets) {
    if (ticket == nullptr) continue;
    Status st = ticket->Wait();
    if (!st.ok() && read_status.ok()) read_status = st;
  }
  if (scheduler_down ||
      (!read_status.ok() && read_status.code() == StatusCode::kAborted)) {
    // Shutdown dropped some reads; the chain is still on the store.
    return Unspill(*spilled);
  }
  if (!read_status.ok()) return read_status;
  auto result = AssembleSpilledPage(
      *spilled, [&](std::size_t i) -> StatusOr<const uint8_t*> {
        return static_cast<const uint8_t*>(frames[i].get());
      });
  if (result.ok()) unspill_reads_->Increment();
  return result;
}

IoTicketRef SpBudgetGovernor::UnspillPrefetch(
    SpilledPageRef spilled, std::shared_ptr<std::optional<StatusOr<PageRef>>> out) {
  SHARING_CHECK(spilled != nullptr && out != nullptr);
  std::shared_ptr<IoScheduler> scheduler = scheduler_.lock();
  if (scheduler == nullptr) return nullptr;
  auto self = shared_from_this();
  const std::size_t bytes = spilled->chain().size() * kPageBytes;
  return scheduler->Submit(
      IoPriority::kFaultBack, bytes, [self, spilled, out] {
        auto result = self->Unspill(*spilled);
        Status st = result.ok() ? Status::OK() : result.status();
        // The ticket completes after this returns, so Wait() observes a
        // populated holder.
        out->emplace(std::move(result));
        return st;
      });
}

StatusOr<PageRef> SpBudgetGovernor::Unspill(const SpilledPage& spilled) {
  DiskManager* store;
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    store = store_.get();
  }
  SHARING_CHECK(store != nullptr) << "unspill with no spill store";
  uint8_t frame[kPageBytes];
  auto result = AssembleSpilledPage(
      spilled, [&](std::size_t i) -> StatusOr<const uint8_t*> {
        Status st = store->ReadPage(spilled.chain()[i], frame);
        if (!st.ok()) return st;
        return static_cast<const uint8_t*>(frame);
      });
  if (result.ok()) unspill_reads_->Increment();
  return result;
}

void SpBudgetGovernor::FreeChain(const std::vector<PageId>& chain,
                                 std::size_t bytes) {
  std::lock_guard<std::mutex> lock(store_mutex_);
  if (store_ == nullptr) return;
  for (PageId id : chain) store_->FreePage(id);
  spill_bytes_->Sub(static_cast<int64_t>(bytes));
}

}  // namespace sharing
