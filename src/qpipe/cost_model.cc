#include "qpipe/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "common/trace.h"

namespace sharing {

// ---------------------------------------------------------------------------
// SignatureStats
// ---------------------------------------------------------------------------

void SignatureStats::Ring::Push(double v) {
  if (capacity_ == 0) return;
  if (values_.size() < capacity_) {
    values_.push_back(v);
    return;
  }
  values_[next_] = v;  // overwrite the oldest (next_ trails the newest)
  next_ = (next_ + 1) % capacity_;
}

double SignatureStats::Ring::Mean() const {
  if (values_.empty()) return 0;
  double sum = 0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

SignatureStats::SignatureStats(std::size_t capacity)
    : work_(std::max<std::size_t>(1, capacity)),
      gaps_(std::max<std::size_t>(1, capacity)),
      sessions_(std::max<std::size_t>(1, capacity)) {}

void SignatureStats::RecordArrival(int64_t now_micros) {
  if (has_arrival_) {
    const int64_t gap = now_micros - last_arrival_micros_;
    gaps_.Push(static_cast<double>(gap > 0 ? gap : 0));
  }
  last_arrival_micros_ = now_micros;
  has_arrival_ = true;
}

void SignatureStats::RecordExecution(double work_micros) {
  // Floor at one microsecond: a sub-tick measurement must not convince
  // the model that repeating the work is literally free.
  work_.Push(std::max(1.0, work_micros));
}

void SignatureStats::RecordSession(const SessionSample& sample) {
  sessions_.satellites.Push(sample.satellites);
  sessions_.pages.Push(sample.pages);
  sessions_.lag.Push(sample.lag);
  sessions_.retention.Push(sample.retention);
}

double SignatureStats::MeanWorkMicros() const { return work_.Mean(); }

double SignatureStats::WorkMicrosAtQuantile(double q) const {
  if (work_.size() == 0) return 0;
  std::vector<double> sorted = work_.values();
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(1.0, std::max(0.0, q));
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(clamped * n));
  if (rank > 0) --rank;  // nearest-rank, 0-indexed
  return sorted[std::min(rank, sorted.size() - 1)];
}

double SignatureStats::MeanPages() const { return sessions_.pages.Mean(); }

double SignatureStats::MeanSatellites() const {
  return sessions_.satellites.Mean();
}

double SignatureStats::MeanLag() const { return sessions_.lag.Mean(); }

double SignatureStats::MeanRetention() const {
  return sessions_.retention.Mean();
}

double SignatureStats::MeanArrivalGapMicros() const {
  if (gaps_.size() == 0) return std::numeric_limits<double>::infinity();
  return gaps_.Mean();
}

// ---------------------------------------------------------------------------
// SharingCostModel
// ---------------------------------------------------------------------------

SharingCostModel::SharingCostModel(CostModelOptions options,
                                   MetricsRegistry* metrics)
    : options_(options),
      decisions_shared_(
          metrics->GetCounter(metrics::kPolicyDecisionsShared)),
      decisions_unshared_(
          metrics->GetCounter(metrics::kPolicyDecisionsUnshared)),
      flips_(metrics->GetCounter(metrics::kPolicyFlips)),
      confidence_gauge_(metrics->GetGauge(metrics::kPolicyConfidence)),
      measured_copy_ns_(metrics->GetGauge(metrics::kPolicyMeasuredCopyNs)),
      measured_attach_ns_(
          metrics->GetGauge(metrics::kPolicyMeasuredAttachNs)) {
  // Enforced here, not at the plumbing sites: a zero gate would let
  // Decide() speak confidently from an empty ring.
  options_.min_samples = std::max<std::size_t>(1, options_.min_samples);
}

SharingCostModel::Entry& SharingCostModel::TouchLocked(uint64_t signature) {
  auto it = entries_.find(signature);
  if (it != entries_.end()) {
    if (it->second.lru_it != lru_.begin()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    }
    return it->second;
  }
  const std::size_t capacity = std::max<std::size_t>(1, options_.capacity);
  while (entries_.size() >= capacity) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(signature);
  it = entries_.emplace(signature, Entry(options_.history)).first;
  it->second.lru_it = lru_.begin();
  return it->second;
}

void SharingCostModel::RecordArrival(uint64_t signature, int64_t now_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  TouchLocked(signature).stats.RecordArrival(now_micros);
}

void SharingCostModel::RecordExecution(uint64_t signature,
                                       double work_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  TouchLocked(signature).stats.RecordExecution(work_micros);
}

void SharingCostModel::RecordSession(
    uint64_t signature, const SignatureStats::SessionSample& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  TouchLocked(signature).stats.RecordSession(sample);
}

void SharingCostModel::RecordCopyCost(double copy_ns_per_page) {
  if (!(copy_ns_per_page > 0)) return;  // also rejects NaN
  std::lock_guard<std::mutex> lock(mutex_);
  copy_cost_ewma_ns_ =
      copy_cost_ewma_ns_ == 0
          ? copy_ns_per_page
          : (1.0 - kCostEwmaAlpha) * copy_cost_ewma_ns_ +
                kCostEwmaAlpha * copy_ns_per_page;
  measured_copy_ns_->Set(static_cast<int64_t>(copy_cost_ewma_ns_));
}

void SharingCostModel::RecordAttachCost(double attach_ns) {
  if (!(attach_ns > 0)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  attach_cost_ewma_ns_ =
      attach_cost_ewma_ns_ == 0
          ? attach_ns
          : (1.0 - kCostEwmaAlpha) * attach_cost_ewma_ns_ +
                kCostEwmaAlpha * attach_ns;
  measured_attach_ns_->Set(static_cast<int64_t>(attach_cost_ewma_ns_));
}

void SharingCostModel::PublishConfidenceLocked(double confidence) {
  // Set, not Add: several stages' models share this gauge, and its
  // contract is "the most recent model decision's confidence" (last
  // writer wins), with the hwm the most confident decision ever.
  confidence_gauge_->Set(static_cast<int64_t>(confidence * 1000.0));
}

CostDecision SharingCostModel::Decide(uint64_t signature,
                                      const CostModelEnvironment& env) {
  // The span carries the verdict (mode + rounded cost estimates) as args,
  // so a trace shows *why* a packet hosted, attached, or ran unshared.
  TraceSpan span("policy", "policy.decide", /*query_id=*/0, signature);
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = TouchLocked(signature);
  const SignatureStats& stats = entry.stats;

  CostDecision decision;
  if (stats.session_samples() < options_.min_samples ||
      stats.work_samples() < options_.min_samples) {
    return decision;  // from_model = false: caller falls back
  }
  decision.from_model = true;
  CostEstimate& est = decision.estimate;

  const double work = stats.MeanWorkMicros();
  est.work_micros = work;

  // Expected satellites per hosted session: what history shows, raised by
  // the arrival forecast — identical queries arriving faster than one
  // production (gap < W) must overlap even if past sessions closed before
  // anyone attached.
  double satellites = stats.MeanSatellites();
  const double gap = stats.MeanArrivalGapMicros();
  if (std::isfinite(gap) && gap > 0) {
    satellites = std::max(satellites, work / gap);
  }
  est.expected_satellites = satellites;

  const double pages = stats.MeanPages();
  const double lag = stats.MeanLag();
  est.retention_pages = stats.MeanRetention();

  // Unshared: the newcomer and every expected twin repeat the work.
  est.unshared_micros = (1.0 + satellites) * work;

  // Push: one execution plus a deep copy of every page into every
  // satellite FIFO, all serialized through the producer; a consumer that
  // historically lags to the FIFO capacity convoys the host for the whole
  // production. The per-page copy cost is the measured EWMA once the
  // channels have reported samples, the model prior until then.
  const double copy_micros = copy_cost_ewma_ns_ > 0
                                 ? copy_cost_ewma_ns_ / 1000.0
                                 : kPushCopyMicrosPerPage;
  const bool convoys = env.fifo_capacity > 0 &&
                       lag >= static_cast<double>(env.fifo_capacity);
  est.push_micros = work + kHostSetupMicros +
                    satellites * pages * copy_micros +
                    (convoys ? pages * kConvoyStallMicrosPerPage : 0.0);

  // Pull: one execution plus per-satellite attach and per-page retention
  // bookkeeping; retention the budget cannot hold pays a spill round trip
  // per page (write it out, fault it back for the laggard).
  double spill_pages = 0;
  double spill_micros = 0;
  if (env.budget_pages > 0 &&
      est.retention_pages > static_cast<double>(env.budget_pages)) {
    const double excess =
        est.retention_pages - static_cast<double>(env.budget_pages);
    if (env.spill_usable) {
      spill_pages = excess;
      spill_micros = excess * kSpillRoundTripMicrosPerPage;
    } else {
      // Budget configured but the store is broken: the excess stays
      // resident. Surcharge the retention term instead of pretending the
      // overflow is absorbable.
      spill_micros = excess * 4.0 * kPullRetainMicrosPerPage;
    }
  }
  est.spill_pages = spill_pages;
  // Per satellite: the measured (or prior) mechanical attach plus the
  // fixed service share — serving one more pull reader costs the host
  // wakeups and bookkeeping for the whole session, not just the
  // AttachReader call the EWMA can time.
  const double attach_micros = (attach_cost_ewma_ns_ > 0
                                    ? attach_cost_ewma_ns_ / 1000.0
                                    : kPullAttachMicros) +
                               kPullSatelliteServiceMicros;
  est.pull_micros = work + kHostSetupMicros + satellites * attach_micros +
                    est.retention_pages * kPullRetainMicrosPerPage +
                    spill_micros;

  const auto cost_of = [&est](SpMode mode) {
    switch (mode) {
      case SpMode::kOff:
        return est.unshared_micros;
      case SpMode::kPush:
        return est.push_micros;
      default:
        return est.pull_micros;
    }
  };

  SpMode best = SpMode::kOff;
  for (SpMode mode : {SpMode::kPush, SpMode::kPull}) {
    if (cost_of(mode) < cost_of(best)) best = mode;
  }

  // Sticky decisions: the challenger must beat the incumbent — the
  // signature's previous decision, or the cheaper shared transport for a
  // first-time decision (sharing is the default prior, as in the
  // threshold policy's "no history -> pull") — by more than the
  // hysteresis margin.
  const SpMode incumbent =
      entry.has_decision
          ? entry.last_mode
          : (est.push_micros <= est.pull_micros ? SpMode::kPush
                                                : SpMode::kPull);
  SpMode chosen = best;
  if (best != incumbent) {
    const double incumbent_cost = cost_of(incumbent);
    if (incumbent_cost <= 0 ||
        incumbent_cost - cost_of(best) <= options_.hysteresis * incumbent_cost) {
      chosen = incumbent;
    }
  }
  decision.mode = chosen;
  decision.spill_preferred =
      chosen == SpMode::kPull && spill_pages > 0 && env.spill_usable;

  // Confidence: history depth times the cost margin over the best
  // alternative. Monotonically non-decreasing in samples for a
  // stationary signature (the margin is then constant while the depth
  // factor only grows).
  double runner_up = std::numeric_limits<double>::infinity();
  for (SpMode mode : {SpMode::kOff, SpMode::kPush, SpMode::kPull}) {
    if (mode != chosen) runner_up = std::min(runner_up, cost_of(mode));
  }
  double margin = 0;
  if (std::isfinite(runner_up) && runner_up > 0) {
    margin = (runner_up - cost_of(chosen)) / runner_up;
    margin = std::min(1.0, std::max(0.0, margin));
  }
  const double depth =
      static_cast<double>(std::min(stats.session_samples(),
                                   stats.work_samples())) /
      static_cast<double>(std::max<std::size_t>(1, options_.history));
  decision.confidence = std::min(1.0, depth) * (0.5 + 0.5 * margin);

  // Bookkeeping + metrics.
  if (entry.has_decision && chosen != entry.last_mode) flips_->Increment();
  entry.has_decision = true;
  entry.last_mode = chosen;
  entry.last_confidence = decision.confidence;
  switch (chosen) {
    case SpMode::kOff:
      ++entry.decided_off;
      decisions_unshared_->Increment();
      break;
    case SpMode::kPush:
      ++entry.decided_push;
      decisions_shared_->Increment();
      break;
    default:
      ++entry.decided_pull;
      decisions_shared_->Increment();
      break;
  }
  PublishConfidenceLocked(decision.confidence);

  span.AddArg("mode", static_cast<int64_t>(chosen));
  span.AddArg("unshared_us", static_cast<int64_t>(est.unshared_micros));
  span.AddArg("push_us", static_cast<int64_t>(est.push_micros));
  span.AddArg("pull_us", static_cast<int64_t>(est.pull_micros));

  if (options_.debug) {
    SHARING_LOG(Info) << "cost-model sig=" << signature << " mode="
                      << SpModeToString(chosen) << " conf="
                      << decision.confidence << " W=" << est.work_micros
                      << "us n=" << est.expected_satellites
                      << " unshared=" << est.unshared_micros
                      << " push=" << est.push_micros
                      << " pull=" << est.pull_micros
                      << " retention=" << est.retention_pages
                      << " spill=" << est.spill_pages;
  }
  return decision;
}

std::vector<SharingCostModel::SignatureSnapshot> SharingCostModel::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SignatureSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [sig, entry] : entries_) {
    SignatureSnapshot snap;
    snap.signature = sig;
    snap.work_samples = entry.stats.work_samples();
    snap.session_samples = entry.stats.session_samples();
    snap.mean_work_micros = entry.stats.MeanWorkMicros();
    snap.p95_work_micros = entry.stats.WorkMicrosAtQuantile(0.95);
    snap.mean_pages = entry.stats.MeanPages();
    snap.mean_satellites = entry.stats.MeanSatellites();
    snap.mean_retention = entry.stats.MeanRetention();
    snap.mean_arrival_gap_micros = entry.stats.MeanArrivalGapMicros();
    snap.decided_off = entry.decided_off;
    snap.decided_push = entry.decided_push;
    snap.decided_pull = entry.decided_pull;
    snap.has_decision = entry.has_decision;
    snap.last_mode = entry.last_mode;
    snap.last_confidence = entry.last_confidence;
    out.push_back(snap);
  }
  return out;
}

std::string SharingCostModel::DebugDump() const {
  std::string out;
  char line[256];
  for (const SignatureSnapshot& s : Snapshot()) {
    std::snprintf(
        line, sizeof(line),
        "sig=%016llx works=%zu sessions=%zu W=%.0fus p95=%.0fus pages=%.1f "
        "sat=%.2f retention=%.1f decisions=%lld/%lld/%lld (off/push/pull) "
        "last=%s conf=%.2f\n",
        static_cast<unsigned long long>(s.signature), s.work_samples,
        s.session_samples, s.mean_work_micros, s.p95_work_micros,
        s.mean_pages, s.mean_satellites, s.mean_retention,
        static_cast<long long>(s.decided_off),
        static_cast<long long>(s.decided_push),
        static_cast<long long>(s.decided_pull),
        s.has_decision ? SpModeToString(s.last_mode).data() : "-",
        s.last_confidence);
    out += line;
  }
  return out;
}

}  // namespace sharing
