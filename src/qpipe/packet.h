// Packet: QPipe's unit of work. A query plan is converted into one packet
// per operator; each packet is dispatched to the stage implementing its
// operator, reads pages from its children's outputs and writes pages into
// its own output buffer.

#pragma once

#include <vector>

#include "exec/exec_context.h"
#include "exec/page_stream.h"
#include "exec/plan.h"
#include "storage/circular_scan.h"
#include "storage/table.h"

namespace sharing {

struct Packet {
  PlanNodeRef node;
  ExecContextRef ctx;

  /// Where this packet's operator writes. For SP hosts this is a sharing
  /// sink (tee or SPL); otherwise a plain FIFO.
  PageSinkRef output;

  /// One source per plan child, wired by the dispatcher.
  std::vector<PageSourceRef> inputs;

  // Scan packets only:
  const Table* table = nullptr;
  CircularScanGroup* scan_group = nullptr;  // null = direct buffer-pool scan
};

}  // namespace sharing
