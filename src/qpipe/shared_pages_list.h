// SharedPagesList (SPL): the paper's novel data structure for pull-based SP.
//
// A single producer appends immutable pages; any number of consumers read
// the list at their own pace. Where the push model *forwards* (copies)
// intermediate results into each consumer's FIFO — serializing all copies
// through the producer thread — the SPL *shares* them: a page is produced
// once and every consumer holds a reference. Consumers attaching
// mid-production observe the full result because the list retains pages
// from the beginning (this is what widens SP's sharing window in pull
// mode).
//
// Memory note: pages are retained for the list's lifetime, which is the
// host packet's query lifetime; they are freed when the host and all
// satellites drop their references. The original SPL reclaims a page once
// every attached consumer passed it and no new consumer may attach; we keep
// the simpler retain-while-live policy (documented in DESIGN.md) since
// intermediate results at benchmark scale fit comfortably in memory.

#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "exec/page_stream.h"

namespace sharing {

class SplReader;

class SharedPagesList
    : public std::enable_shared_from_this<SharedPagesList> {
 public:
  static std::shared_ptr<SharedPagesList> Create(
      MetricsRegistry* metrics = &MetricsRegistry::Global()) {
    return std::shared_ptr<SharedPagesList>(new SharedPagesList(metrics));
  }

  SHARING_DISALLOW_COPY_AND_MOVE(SharedPagesList);

  /// Producer: appends a page (no copy — all readers share it). Returns
  /// false when every reader has cancelled, signalling the producer to
  /// stop early.
  bool Append(PageRef page);

  /// Producer: seals the list with a terminal status.
  void Close(Status final);

  /// Attaches a reader starting at the first page. Returns nullptr when the
  /// list terminated with a non-OK status (no point sharing an aborted
  /// result). Thread-safe; may be called while the producer is appending
  /// (the widened pull-model sharing window) or after it closed OK.
  std::shared_ptr<SplReader> AttachReader();

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t NumPages() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pages_.size();
  }

 private:
  friend class SplReader;

  explicit SharedPagesList(MetricsRegistry* metrics)
      : pages_shared_(metrics->GetCounter(metrics::kSpPagesShared)) {}

  Counter* pages_shared_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<PageRef> pages_;
  bool closed_ = false;
  Status final_;
  std::size_t active_readers_ = 0;
  std::size_t ever_attached_ = 0;
};

/// One consumer's cursor into a SharedPagesList.
class SplReader final : public PageSource {
 public:
  ~SplReader() override { Cancel(); }
  SHARING_DISALLOW_COPY_AND_MOVE(SplReader);

  /// Blocks for the page at this reader's cursor; nullptr at end-of-list.
  PageRef Next() override;

  Status FinalStatus() const override;

  void CancelConsumer() override { Cancel(); }

  /// Detaches; a producer with no remaining readers stops early.
  void Cancel();

 private:
  friend class SharedPagesList;
  explicit SplReader(std::shared_ptr<SharedPagesList> list)
      : list_(std::move(list)) {}

  std::shared_ptr<SharedPagesList> list_;
  std::size_t cursor_ = 0;
  bool cancelled_ = false;
};

}  // namespace sharing
