// SharedPagesList (SPL): the paper's novel data structure for pull-based SP.
//
// A single producer appends immutable pages; any number of consumers read
// the list at their own pace. Where the push model *forwards* (copies)
// intermediate results into each consumer's FIFO — serializing all copies
// through the producer thread — the SPL *shares* them: a page is produced
// once and every consumer holds a reference. Consumers attaching
// mid-production observe the full result because the list retains pages
// from the beginning (this is what widens SP's sharing window in pull
// mode).
//
// Memory, two tiers:
//  * Reclamation (as in the original paper): while the attach window is
//    open a late consumer may still need the full history, so nothing is
//    freed; once SealAttachWindow() is called (the PullChannel seals when
//    the producer closes) a page is dropped as soon as every attached
//    reader has moved past it.
//  * Spill (the SpBudgetGovernor tier): reclamation alone lets one
//    stalled reader pin the whole result in RAM. With a governor
//    configured, whenever the engine-wide in-memory SP page count exceeds
//    the budget the governor rebalances across *every* registered list
//    (ShedForBudget): drained and already-consumed pages anywhere spill
//    first — an idle channel's cold history beats thrashing the active
//    producer's fresh pages — and the I/O runs outside the list lock.
//    A spilled page faults back bit-exactly on Next(); once every reader
//    passes it, reclamation deletes it unread. Spilling never needs the
//    window sealed: a late attacher is served spilled history via
//    fault-back.
//
// The pages currently memory-resident are tracked by the
// `sp.pages_retained` gauge (spilled pages move to `sp.spill_bytes`), so
// bounded memory is observable: both return to zero after all readers
// drain. See DESIGN.md for the policy decision list.

#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "exec/page_stream.h"
#include "qpipe/sp_budget_governor.h"

namespace sharing {

class SplReader;

/// How deep a ShedForBudget pass may reach into a list's retained pages.
/// Tiers order victims by fault-in odds: drained open-window history is
/// re-read only by a late attacher; consumed-but-not-drained pages will
/// be read by a laggard; unread pages will be read next.
enum class SpillTier {
  kDrained,   // only pages every reader has passed
  kConsumed,  // + pages the fastest reader consumed (laggard still needs)
  kUnread,    // + the unread tail (hard-bound last resort)
};

class SharedPagesList
    : public std::enable_shared_from_this<SharedPagesList> {
 public:
  static std::shared_ptr<SharedPagesList> Create(
      MetricsRegistry* metrics = &MetricsRegistry::Global(),
      std::shared_ptr<SpBudgetGovernor> governor = nullptr) {
    auto list = std::shared_ptr<SharedPagesList>(
        new SharedPagesList(metrics, std::move(governor)));
    // Registration makes this list a shed candidate for engine-wide
    // rebalancing (another channel's append may spill our drained
    // history rather than thrash its own fresh pages).
    if (list->governor_ != nullptr) list->governor_->Register(list);
    return list;
  }

  ~SharedPagesList();

  SHARING_DISALLOW_COPY_AND_MOVE(SharedPagesList);

  /// Producer: appends a page (no copy — all readers share it). Returns
  /// the total pages appended so far, or 0 when no reader can ever
  /// observe it (every reader cancelled, or the window is sealed with
  /// none attached), signalling the producer to stop early. May spill
  /// retained pages when the governor reports budget pressure.
  std::size_t Append(PageRef page);

  /// Producer: seals the list with a terminal status.
  void Close(Status final);

  /// Closes the attach window: AttachReader() fails from now on, which
  /// makes page reclamation safe (no future reader can need the history).
  /// Idempotent; typically invoked by the owning channel at Close.
  void SealAttachWindow();

  /// Attaches a reader starting at the first page. Returns nullptr when
  /// the attach window is sealed or the list terminated with a non-OK
  /// status (no point sharing an aborted result). Thread-safe; may be
  /// called while the producer is appending (the widened pull-model
  /// sharing window) or after it closed OK.
  std::shared_ptr<SplReader> AttachReader();

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Pages currently retained (appended minus reclaimed), resident or
  /// spilled.
  std::size_t NumPages() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
  }

  /// Retained pages currently memory-resident (excludes spilled).
  std::size_t InMemoryPages() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return in_memory_;
  }

  /// Pages ever appended, including reclaimed ones.
  std::size_t TotalAppended() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return base_ + slots_.size();
  }

  std::size_t ActiveReaders() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return readers_.size();
  }

  std::size_t EverAttached() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ever_attached_;
  }

  /// Smallest position (pages consumed) across active readers; equals
  /// TotalAppended() when no reader is active.
  std::size_t MinReaderPosition() const;

  /// Governor callback: migrates up to `max_pages` resident pages no
  /// deeper than `tier` to the spill store and returns how many spills
  /// were *initiated*. Within the allowed tiers victims are taken best
  /// fault-in odds first (drained, then consumed newest-first, then
  /// unread newest-first — see SpillTier). The spill I/O runs OUTSIDE
  /// the list lock — asynchronously on the governor's I/O scheduler when
  /// one is configured — and a victim stays resident *and readable*
  /// until its write is durable (the durability-before-unpin contract):
  /// only the install step performed at write completion swaps the page
  /// out of memory. A slot reclaimed mid-spill just drops the fresh
  /// chain.
  std::size_t ShedForBudget(std::size_t max_pages, SpillTier tier);

  /// A mutually consistent view of the list, taken under one lock.
  struct Snapshot {
    std::size_t ever_attached = 0;
    std::size_t active_readers = 0;
    std::size_t total_appended = 0;
    std::size_t min_reader_position = 0;
    bool closed = false;
  };
  Snapshot GetSnapshot() const;

 private:
  friend class SplReader;

  /// A retained position: exactly one of `page` (memory tier) or
  /// `spilled` (disk tier) is set. `spilling` marks a victim whose
  /// serialization is in flight off-lock (still readable; not a
  /// candidate for a second concurrent shed).
  struct Slot {
    PageRef page;
    SpilledPageRef spilled;
    bool spilling = false;
  };

  SharedPagesList(MetricsRegistry* metrics,
                  std::shared_ptr<SpBudgetGovernor> governor)
      : pages_shared_(metrics->GetCounter(metrics::kSpPagesShared)),
        pages_reclaimed_(metrics->GetCounter(metrics::kSpPagesReclaimed)),
        pages_retained_(metrics->GetGauge(metrics::kSpPagesRetained)),
        governor_(std::move(governor)) {}

  std::size_t MinReaderPositionLocked() const;
  std::size_t MaxReaderPositionLocked() const;

  /// Completion handoff for an async spill of the page at absolute
  /// position `pos`: installs the durable chain (releasing the resident
  /// page) or, on a failed/skipped spill (`spilled` null), just unmarks
  /// the victim so it stays resident. Runs on the I/O worker.
  void InstallSpilled(std::size_t pos, SpilledPageRef spilled);

  /// Frees every page all readers have passed. Only legal once the attach
  /// window is sealed (a future reader could otherwise miss history).
  /// Spilled slots are deleted without being re-read.
  void MaybeReclaimLocked();

  Counter* pages_shared_;
  Counter* pages_reclaimed_;
  Gauge* pages_retained_;
  std::shared_ptr<SpBudgetGovernor> governor_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Retained pages; slots_[i] holds the page appended at position
  /// base_ + i (positions below base_ have been reclaimed).
  std::deque<Slot> slots_;
  std::size_t base_ = 0;
  /// Resident slots (slots_ minus spilled); drives governor accounting.
  std::size_t in_memory_ = 0;
  bool closed_ = false;
  bool sealed_ = false;
  Status final_;
  /// Active (non-cancelled) readers; their cursors drive reclamation.
  std::vector<const SplReader*> readers_;
  std::size_t ever_attached_ = 0;
};

/// One consumer's cursor into a SharedPagesList.
class SplReader final : public PageSource {
 public:
  ~SplReader() override {
    if (prefetch_ticket_ != nullptr) prefetch_ticket_->TryCancel();
    Cancel();
  }
  SHARING_DISALLOW_COPY_AND_MOVE(SplReader);

  /// Blocks for the page at this reader's cursor; nullptr at end-of-list.
  /// A spilled page is faulted back from the governor's store (bit-exact
  /// reconstruction, charged to sp.unspill_reads) — through the I/O
  /// scheduler's kFaultBack class when one is configured, which also
  /// readaheads the *next* slot if it is already spilled, so a
  /// sequential reader overlaps fault-back latency with consumption.
  PageRef Next() override;

  Status FinalStatus() const override;

  void CancelConsumer() override { Cancel(); }

  /// Pages this reader has consumed (the reader-position contract).
  std::size_t PagesDelivered() const override;

  /// Detaches; a producer with no remaining readers stops early, and the
  /// pages this reader was holding back become reclaimable.
  void Cancel();

 private:
  friend class SharedPagesList;
  explicit SplReader(std::shared_ptr<SharedPagesList> list)
      : list_(std::move(list)) {}

  std::shared_ptr<SharedPagesList> list_;
  std::size_t cursor_ = 0;
  bool cancelled_ = false;
  /// Sticky fault-back failure; surfaced through FinalStatus.
  Status error_;
  /// In-flight readahead of the next spilled slot. Touched only by this
  /// reader's own Next()/destructor (readers are single-consumer), so it
  /// needs no lock of its own.
  std::size_t prefetch_pos_ = static_cast<std::size_t>(-1);
  IoTicketRef prefetch_ticket_;
  std::shared_ptr<std::optional<StatusOr<PageRef>>> prefetch_out_;
};

}  // namespace sharing
