// SharedPagesList (SPL): the paper's novel data structure for pull-based SP.
//
// A single producer appends immutable pages; any number of consumers read
// the list at their own pace. Where the push model *forwards* (copies)
// intermediate results into each consumer's FIFO — serializing all copies
// through the producer thread — the SPL *shares* them: a page is produced
// once and every consumer holds a reference. Consumers attaching
// mid-production observe the full result because the list retains pages
// from the beginning (this is what widens SP's sharing window in pull
// mode).
//
// Memory: the SPL reclaims pages incrementally, as in the original paper.
// While the attach window is open a late consumer may still need the full
// history, so nothing is freed; once SealAttachWindow() is called (the
// PullChannel seals when the producer closes) a page is dropped as soon as
// every attached reader has moved past it. The pages currently retained
// are tracked by the `sp.pages_retained` gauge, so bounded memory is
// observable: the gauge returns to zero after all readers drain instead of
// growing with result size. See DESIGN.md for the policy decision list.

#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "exec/page_stream.h"

namespace sharing {

class SplReader;

class SharedPagesList
    : public std::enable_shared_from_this<SharedPagesList> {
 public:
  static std::shared_ptr<SharedPagesList> Create(
      MetricsRegistry* metrics = &MetricsRegistry::Global()) {
    return std::shared_ptr<SharedPagesList>(new SharedPagesList(metrics));
  }

  ~SharedPagesList();

  SHARING_DISALLOW_COPY_AND_MOVE(SharedPagesList);

  /// Producer: appends a page (no copy — all readers share it). Returns
  /// the total pages appended so far, or 0 when no reader can ever
  /// observe it (every reader cancelled, or the window is sealed with
  /// none attached), signalling the producer to stop early.
  std::size_t Append(PageRef page);

  /// Producer: seals the list with a terminal status.
  void Close(Status final);

  /// Closes the attach window: AttachReader() fails from now on, which
  /// makes page reclamation safe (no future reader can need the history).
  /// Idempotent; typically invoked by the owning channel at Close.
  void SealAttachWindow();

  /// Attaches a reader starting at the first page. Returns nullptr when
  /// the attach window is sealed or the list terminated with a non-OK
  /// status (no point sharing an aborted result). Thread-safe; may be
  /// called while the producer is appending (the widened pull-model
  /// sharing window) or after it closed OK.
  std::shared_ptr<SplReader> AttachReader();

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Pages currently retained (appended minus reclaimed).
  std::size_t NumPages() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pages_.size();
  }

  /// Pages ever appended, including reclaimed ones.
  std::size_t TotalAppended() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return base_ + pages_.size();
  }

  std::size_t ActiveReaders() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return readers_.size();
  }

  std::size_t EverAttached() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ever_attached_;
  }

  /// Smallest position (pages consumed) across active readers; equals
  /// TotalAppended() when no reader is active.
  std::size_t MinReaderPosition() const;

  /// A mutually consistent view of the list, taken under one lock.
  struct Snapshot {
    std::size_t ever_attached = 0;
    std::size_t active_readers = 0;
    std::size_t total_appended = 0;
    std::size_t min_reader_position = 0;
    bool closed = false;
  };
  Snapshot GetSnapshot() const;

 private:
  friend class SplReader;

  explicit SharedPagesList(MetricsRegistry* metrics)
      : pages_shared_(metrics->GetCounter(metrics::kSpPagesShared)),
        pages_reclaimed_(metrics->GetCounter(metrics::kSpPagesReclaimed)),
        pages_retained_(metrics->GetGauge(metrics::kSpPagesRetained)) {}

  std::size_t MinReaderPositionLocked() const;

  /// Frees every page all readers have passed. Only legal once the attach
  /// window is sealed (a future reader could otherwise miss history).
  void MaybeReclaimLocked();

  Counter* pages_shared_;
  Counter* pages_reclaimed_;
  Gauge* pages_retained_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Retained pages; pages_[i] holds the page appended at position
  /// base_ + i (positions below base_ have been reclaimed).
  std::deque<PageRef> pages_;
  std::size_t base_ = 0;
  bool closed_ = false;
  bool sealed_ = false;
  Status final_;
  /// Active (non-cancelled) readers; their cursors drive reclamation.
  std::vector<const SplReader*> readers_;
  std::size_t ever_attached_ = 0;
};

/// One consumer's cursor into a SharedPagesList.
class SplReader final : public PageSource {
 public:
  ~SplReader() override { Cancel(); }
  SHARING_DISALLOW_COPY_AND_MOVE(SplReader);

  /// Blocks for the page at this reader's cursor; nullptr at end-of-list.
  PageRef Next() override;

  Status FinalStatus() const override;

  void CancelConsumer() override { Cancel(); }

  /// Pages this reader has consumed (the reader-position contract).
  std::size_t PagesDelivered() const override;

  /// Detaches; a producer with no remaining readers stops early, and the
  /// pages this reader was holding back become reclaimable.
  void Cancel();

 private:
  friend class SharedPagesList;
  explicit SplReader(std::shared_ptr<SharedPagesList> list)
      : list_(std::move(list)) {}

  std::shared_ptr<SharedPagesList> list_;
  std::size_t cursor_ = 0;
  bool cancelled_ = false;
};

}  // namespace sharing
