// SharedPagesList (SPL): the paper's novel data structure for pull-based SP.
//
// A single producer appends immutable pages; any number of consumers read
// the list at their own pace. Where the push model *forwards* (copies)
// intermediate results into each consumer's FIFO — serializing all copies
// through the producer thread — the SPL *shares* them: a page is produced
// once and every consumer holds a reference. Consumers attaching
// mid-production observe the full result because the list retains pages
// from the beginning (this is what widens SP's sharing window in pull
// mode).
//
// Concurrency (the low-contention hot path):
//
//  * Publication is seqlock-style: the producer fills an immutable slot
//    and then advances the atomic published count (`published_`, release
//    on store). A reader gates on `published_` (acquire) and reads the
//    slot with NO lock — `SplReader::Next`/`NextBatch` on a resident,
//    already-published page never touches the list mutex. Slots live in
//    fixed-size segments linked by atomic next pointers; each reader
//    holds a shared_ptr to its current segment, so reclamation can drop
//    head segments without synchronizing with readers.
//  * A slot's resident page is a `std::atomic<PageRef>` because the spill
//    tier migrates pages to disk concurrently with lock-free readers: the
//    reader either wins the load (and the resident page stays alive
//    through its reference) or observes null and takes the slow path.
//  * The list mutex is only taken on slow paths: attach/detach, spill
//    fault-back, reclamation, close/seal, and the producer's append
//    bookkeeping (`sp.lock_waits` counts reader slow paths).
//  * Blocked readers park on their OWN mutex/condvar (`ReaderState`), not
//    a shared broadcast (`sp.reader_parks` counts parks; a short spin
//    precedes the park on multicore hosts). On append the producer seeds
//    ONE notification to a frontier-parked reader and each woken reader
//    fans the wake out to two more, so the producer's wake cost is O(1)
//    however many readers are parked — no `notify_all` herd through one
//    lock, and no per-reader futex sweep on the append path. Close wakes
//    everyone directly (it happens once). The flag/published handshake
//    is seq_cst on both sides (Dekker-style) so a seal/close racing a
//    parking reader can never lose the wakeup.
//  * Reader positions are atomic cursors registered in a small number of
//    cache-line-padded shards: reclamation and `ShedForBudget` compute
//    the min/max cursor by scanning shard-by-shard under per-shard spin
//    latches — never by locking every reader on the append or read path.
//
// Memory, two tiers:
//  * Reclamation (as in the original paper): while the attach window is
//    open a late consumer may still need the full history, so nothing is
//    freed; once SealAttachWindow() is called (the PullChannel seals when
//    the producer closes) a page is dropped as soon as every attached
//    reader has moved past it.
//  * Spill (the SpBudgetGovernor tier): reclamation alone lets one
//    stalled reader pin the whole result in RAM. With a governor
//    configured, whenever the engine-wide in-memory SP page count exceeds
//    the budget the governor rebalances across *every* registered list
//    (ShedForBudget): drained and already-consumed pages anywhere spill
//    first — an idle channel's cold history beats thrashing the active
//    producer's fresh pages — and the I/O runs outside the list lock.
//    A spilled page faults back bit-exactly on Next(); once every reader
//    passes it, reclamation deletes it unread. Spilling never needs the
//    window sealed: a late attacher is served spilled history via
//    fault-back.
//
// The pages currently memory-resident are tracked by the
// `sp.pages_retained` gauge (spilled pages move to `sp.spill_bytes`), so
// bounded memory is observable: both return to zero after all readers
// drain. See DESIGN.md for the policy decision list.

#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/spin_latch.h"
#include "exec/page_stream.h"
#include "qpipe/sp_budget_governor.h"

namespace sharing {

class SplReader;

/// How deep a ShedForBudget pass may reach into a list's retained pages.
/// Tiers order victims by fault-in odds: drained open-window history is
/// re-read only by a late attacher; consumed-but-not-drained pages will
/// be read by a laggard; unread pages will be read next.
enum class SpillTier {
  kDrained,   // only pages every reader has passed
  kConsumed,  // + pages the fastest reader consumed (laggard still needs)
  kUnread,    // + the unread tail (hard-bound last resort)
};

class SharedPagesList
    : public std::enable_shared_from_this<SharedPagesList> {
 public:
  static std::shared_ptr<SharedPagesList> Create(
      MetricsRegistry* metrics = &MetricsRegistry::Global(),
      std::shared_ptr<SpBudgetGovernor> governor = nullptr) {
    auto list = std::shared_ptr<SharedPagesList>(
        new SharedPagesList(metrics, std::move(governor)));
    // Registration makes this list a shed candidate for engine-wide
    // rebalancing (another channel's append may spill our drained
    // history rather than thrash its own fresh pages).
    if (list->governor_ != nullptr) list->governor_->Register(list);
    return list;
  }

  ~SharedPagesList();

  SHARING_DISALLOW_COPY_AND_MOVE(SharedPagesList);

  /// Producer: appends a page (no copy — all readers share it). Returns
  /// the total pages appended so far, or 0 when no reader can ever
  /// observe it (every reader cancelled, or the window is sealed with
  /// none attached), signalling the producer to stop early. May spill
  /// retained pages when the governor reports budget pressure.
  std::size_t Append(PageRef page);

  /// Batched append: publishes all pages with one bookkeeping pass, one
  /// parked-reader wake sweep, and one governor rebalance. Same return
  /// contract as Append (0 = nobody can ever observe the pages, nothing
  /// was appended).
  std::size_t AppendBatch(std::vector<PageRef> pages);

  /// Producer: seals the list with a terminal status and wakes every
  /// parked reader (they observe end-of-list once past the frontier).
  void Close(Status final);

  /// Closes the attach window: AttachReader() fails from now on, which
  /// makes page reclamation safe (no future reader can need the history).
  /// Idempotent; typically invoked by the owning channel at Close. Does
  /// NOT wake parked readers — sealing changes no read predicate; only
  /// Close (end-of-list) and Append (new page) do.
  void SealAttachWindow();

  /// Attaches a reader starting at the first page. Returns nullptr when
  /// the attach window is sealed or the list terminated with a non-OK
  /// status (no point sharing an aborted result). Thread-safe; may be
  /// called while the producer is appending (the widened pull-model
  /// sharing window) or after it closed OK.
  std::shared_ptr<SplReader> AttachReader();

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Trace correlation ids stamped on this list's park / fault-back /
  /// attach / close trace records (see common/trace.h). Set once by the
  /// owning channel before readers exist; 0 = untraced.
  void SetTraceIdentity(uint64_t query_id, uint64_t signature) {
    trace_query_id_ = query_id;
    trace_signature_ = signature;
  }

  /// Pages currently retained (appended minus reclaimed), resident or
  /// spilled.
  std::size_t NumPages() const {
    // published_ is written after base_pub_ can only lag it, so the
    // difference is a conservative (never negative) retained count.
    const std::size_t base = base_pub_.load(std::memory_order_acquire);
    const std::size_t pub = published_.load(std::memory_order_acquire);
    return pub > base ? pub - base : 0;
  }

  /// Retained pages currently memory-resident (excludes spilled).
  std::size_t InMemoryPages() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return in_memory_;
  }

  /// Pages ever appended, including reclaimed ones.
  std::size_t TotalAppended() const {
    return published_.load(std::memory_order_acquire);
  }

  std::size_t ActiveReaders() const {
    return active_readers_.load(std::memory_order_acquire);
  }

  std::size_t EverAttached() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ever_attached_;
  }

  /// Smallest position (pages consumed) across active readers; equals
  /// TotalAppended() when no reader is active. Computed from the sharded
  /// atomic cursors — takes no list lock.
  std::size_t MinReaderPosition() const;

  /// Governor callback: migrates up to `max_pages` resident pages no
  /// deeper than `tier` to the spill store and returns how many spills
  /// were *initiated*. Within the allowed tiers victims are taken best
  /// fault-in odds first (drained, then consumed newest-first, then
  /// unread newest-first — see SpillTier). The spill I/O runs OUTSIDE
  /// the list lock — asynchronously on the governor's I/O scheduler when
  /// one is configured — and a victim stays resident *and readable*
  /// until its write is durable (the durability-before-unpin contract):
  /// only the install step performed at write completion swaps the page
  /// out of memory. A slot reclaimed mid-spill just drops the fresh
  /// chain.
  std::size_t ShedForBudget(std::size_t max_pages, SpillTier tier);

  /// A mutually consistent view of the list, taken under one lock.
  struct Snapshot {
    std::size_t ever_attached = 0;
    std::size_t active_readers = 0;
    std::size_t total_appended = 0;
    std::size_t min_reader_position = 0;
    bool closed = false;
  };
  Snapshot GetSnapshot() const;

  /// One reader's observable state, read from the sharded atomic
  /// cursors and parking flags (the introspection path adds NO hot-path
  /// synchronization — see DeepSnapshot).
  struct ReaderIntrospection {
    std::size_t position = 0;
    bool parked = false;
    /// How long the reader has currently been parked (0 when not
    /// parked). Advisory: written relaxed on the park slow path.
    int64_t parked_for_micros = 0;
    bool cancelled = false;
  };

  /// The admin server's deep view: retention split into resident vs
  /// spilled, the publication/reclamation frontiers, and every
  /// registered reader's cursor/lag/parked state. Rides the existing
  /// synchronization only — the list mutex for the resident count (a
  /// slow-path lock appends already take), per-shard spin latches for
  /// the reader walk, and the atomic frontiers for everything else.
  /// Never taken on the producer/reader fast paths.
  struct DeepSnapshot {
    std::size_t published = 0;       // pages ever appended
    std::size_t reclaimed = 0;       // pages freed behind every reader
    std::size_t retained = 0;        // published - reclaimed
    std::size_t resident_pages = 0;  // retained and memory-resident
    std::size_t spilled_pages = 0;   // retained - resident
    std::size_t ever_attached = 0;
    std::size_t active_readers = 0;
    std::size_t min_reader_position = 0;
    bool closed = false;
    bool sealed = false;
    std::vector<ReaderIntrospection> readers;
  };
  DeepSnapshot GetDeepSnapshot() const;

 private:
  friend class SplReader;

  /// Slots per segment. Small enough that a short list stays cheap,
  /// large enough that a reader crosses a segment boundary (one extra
  /// atomic load) rarely.
  static constexpr std::size_t kSegmentSlots = 64;
  /// Reader-registry shards; attach/detach and min-cursor scans touch
  /// per-shard spin latches, never the list mutex.
  static constexpr std::size_t kReaderShards = 8;

  /// A retained position. `page` (memory tier) is atomic because the
  /// lock-free reader fast path races the spill install and reclamation:
  /// a reader either wins the load (its reference keeps the page alive)
  /// or observes null and falls to the locked slow path. `spilled` and
  /// `spilling` are guarded by mutex_.
  struct Slot {
    std::atomic<PageRef> page{nullptr};
    SpilledPageRef spilled;
    bool spilling = false;
  };

  /// A fixed run of slots. Immutable once linked: `first` never changes
  /// and `next` is written exactly once (by the producer, before the
  /// first position of the next segment is published). Readers keep a
  /// shared_ptr to their current segment and walk `next`, so dropping a
  /// fully reclaimed head segment needs no reader coordination.
  struct Segment {
    explicit Segment(std::size_t first_pos) : first(first_pos) {}
    const std::size_t first;
    std::array<Slot, kSegmentSlots> slots;
    std::atomic<std::shared_ptr<Segment>> next{nullptr};
  };

  /// One reader's shared accounting + parking slot. Owned jointly by the
  /// SplReader and the shard registry so a cancelled reader's state
  /// survives whichever side lets go last.
  struct ReaderState {
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> cancelled{false};
    /// True while the reader is (about to be) blocked in wait_cv. The
    /// park handshake is seq_cst against published_/closed_ (see
    /// SplReader::ParkUntilReady and WakeParkedReaders).
    std::atomic<bool> parked{false};
    /// Trace-timebase micros when the current park began (0 when not
    /// parked). Advisory introspection only — written relaxed inside
    /// the already-slow park path, read by GetDeepSnapshot and the
    /// watchdog's parked-reader stall detector.
    std::atomic<int64_t> parked_since_micros{0};
    std::mutex wait_mutex;
    std::condition_variable wait_cv;
  };

  struct alignas(64) ReaderShard {
    mutable SpinLatch latch;
    std::vector<std::shared_ptr<ReaderState>> readers;
  };

  SharedPagesList(MetricsRegistry* metrics,
                  std::shared_ptr<SpBudgetGovernor> governor)
      : pages_shared_(metrics->GetCounter(metrics::kSpPagesShared)),
        pages_reclaimed_(metrics->GetCounter(metrics::kSpPagesReclaimed)),
        pages_retained_(metrics->GetGauge(metrics::kSpPagesRetained)),
        lock_waits_(metrics->GetCounter(metrics::kSpLockWaits)),
        reader_parks_(metrics->GetCounter(metrics::kSpReaderParks)),
        governor_(std::move(governor)) {
    segments_.push_back(std::make_shared<Segment>(0));
  }

  /// O(1) slot lookup by absolute position (segments are contiguous and
  /// aligned). Requires mutex_ held and base_ <= pos < published.
  Slot& SlotAtLocked(std::size_t pos) {
    const std::size_t front_first = segments_.front()->first;
    Segment& seg = *segments_[(pos - front_first) / kSegmentSlots];
    return seg.slots[pos - seg.first];
  }

  /// Appends one page to the tail segment and publishes it. Requires
  /// mutex_ held; returns the new total.
  std::size_t AppendOneLocked(PageRef page);

  /// True when no present or future reader can observe an append (the
  /// Append/AppendBatch early-stop contract). Requires mutex_ held.
  bool NoObserversLocked() const {
    return active_readers_.load(std::memory_order_relaxed) == 0 &&
           (ever_attached_ > 0 || sealed_.load(std::memory_order_relaxed));
  }

  /// Min/max over the sharded atomic reader cursors (per-shard latches
  /// only; callable with or without mutex_).
  std::size_t MinReaderPositionShards() const;
  std::size_t MaxReaderPositionShards() const;

  /// Notifies every parked reader (each on its own condvar) — the close
  /// path. Called with NO list lock held, after the predicate change
  /// (published_/closed_) is globally visible; the seq_cst flag
  /// handshake makes the sweep race-free against readers parking
  /// concurrently.
  void WakeParkedReaders();

  /// Notifies up to `max_readers` parked readers whose cursor is behind
  /// the publication frontier — the append path's chained wakeup: the
  /// producer seeds one, every woken reader fans out to two more
  /// (ParkUntilReady), so the producer's wake cost is O(1) in fan-out.
  void WakeFrontierParked(std::size_t max_readers);

  /// Completion handoff for an async spill of the page at absolute
  /// position `pos`: installs the durable chain (releasing the resident
  /// page) or, on a failed/skipped spill (`spilled` null), just unmarks
  /// the victim so it stays resident. Runs on the I/O worker.
  void InstallSpilled(std::size_t pos, SpilledPageRef spilled);

  /// Frees every page all readers have passed. Only legal once the attach
  /// window is sealed (a future reader could otherwise miss history).
  /// Spilled slots are deleted without being re-read.
  void MaybeReclaimLocked();

  Counter* pages_shared_;
  Counter* pages_reclaimed_;
  Gauge* pages_retained_;
  Counter* lock_waits_;
  Counter* reader_parks_;
  std::shared_ptr<SpBudgetGovernor> governor_;

  /// Publication frontier: positions below it are readable without any
  /// lock. Stored seq_cst by the producer (the parking handshake needs
  /// the store ordered before the parked-flag sweep).
  std::atomic<std::size_t> published_{0};
  /// Atomic mirror of base_ — the reclamation frontier. Readers compare
  /// their position against it to decide whether advancing may unblock
  /// reclamation (only the reader leaving the frontier can raise the
  /// min), so the check costs one atomic load, not a lock. The
  /// cursor-store/base_pub_-load handshake is seq_cst against the
  /// reclaimer's base_pub_-store/cursor-load, and MaybeReclaimLocked
  /// re-scans until the min stops moving — together these close the
  /// store-buffering race where a reader skips its probe just as the
  /// reclaimer misses its advanced cursor.
  std::atomic<std::size_t> base_pub_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> sealed_{false};
  std::atomic<std::size_t> active_readers_{0};
  /// Parked readers, maintained by the park/unpark handshake. The
  /// producer skips the wake sweep entirely while it reads zero (the
  /// common keeping-up case).
  std::atomic<std::size_t> parked_count_{0};

  std::array<ReaderShard, kReaderShards> shards_;

  mutable std::mutex mutex_;
  /// Strong refs to the retained segment run, front = oldest. Guarded by
  /// mutex_; readers never touch it (they walk Segment::next).
  std::deque<std::shared_ptr<Segment>> segments_;
  /// First non-reclaimed position (mirrored in base_pub_).
  std::size_t base_ = 0;
  /// Resident slots (retained minus spilled); drives governor accounting.
  std::size_t in_memory_ = 0;
  Status final_;
  std::size_t ever_attached_ = 0;

  /// Trace correlation (SetTraceIdentity): written before concurrency
  /// starts, read relaxed from reader threads.
  uint64_t trace_query_id_ = 0;
  uint64_t trace_signature_ = 0;
};

/// One consumer's cursor into a SharedPagesList.
class SplReader final : public PageSource {
 public:
  ~SplReader() override {
    if (prefetch_ticket_ != nullptr) prefetch_ticket_->TryCancel();
    Cancel();
  }
  SHARING_DISALLOW_COPY_AND_MOVE(SplReader);

  /// Blocks for the page at this reader's cursor; nullptr at end-of-list.
  /// Lock-free on a resident, already-published page. A spilled page is
  /// faulted back from the governor's store (bit-exact reconstruction,
  /// charged to sp.unspill_reads) — through the I/O scheduler's
  /// kFaultBack class when one is configured, which also readaheads the
  /// *next* slot if it is already spilled, so a sequential reader
  /// overlaps fault-back latency with consumption.
  PageRef Next() override;

  /// Batched pull: up to `max_pages` already-published resident pages
  /// with ONE cursor publication (and at most one reclamation probe).
  /// Blocks like Next() when nothing is available; returns 0 only at
  /// end-of-list (or after a fault-back error / cancel).
  std::size_t NextBatch(std::size_t max_pages,
                        std::vector<PageRef>* out) override;

  Status FinalStatus() const override;

  void CancelConsumer() override { Cancel(); }

  /// Pages this reader has consumed (the reader-position contract).
  std::size_t PagesDelivered() const override {
    return state_->cursor.load(std::memory_order_acquire);
  }

  /// Detaches; a producer with no remaining readers stops early, and the
  /// pages this reader was holding back become reclaimable.
  void Cancel();

  /// Stop probe (query deadline / watchdog cancel): a parked reader polls
  /// it in bounded wait slices instead of sleeping until the producer
  /// publishes, and on a non-OK probe detaches with that status sticky in
  /// FinalStatus. Bind before the consumer's first read.
  void BindStopCheck(std::function<Status()> stop_check) override {
    stop_check_ = std::move(stop_check);
  }

 private:
  friend class SharedPagesList;
  SplReader(std::shared_ptr<SharedPagesList> list,
            std::shared_ptr<SharedPagesList::ReaderState> state)
      : list_(std::move(list)), state_(std::move(state)) {}

  /// Lock-free slot lookup: walks the segment chain from the reader's
  /// current segment (cursor positions are monotonic, so the walk only
  /// ever goes forward). Requires pos < published_.
  SharedPagesList::Slot& SlotFor(std::size_t pos) {
    while (pos >= seg_->first + SharedPagesList::kSegmentSlots) {
      seg_ = seg_->next.load(std::memory_order_acquire);
    }
    return seg_->slots[pos - seg_->first];
  }

  /// Publishes the cursor move to `next` and probes reclamation iff this
  /// reader was the one sitting on the reclamation frontier.
  void AdvanceTo(std::size_t next);

  /// Locked slow path for the non-resident slot at `pos`: spill
  /// fault-back (+ next-slot readahead), sticky error capture. Advances
  /// the cursor past `pos` on success.
  PageRef SlowResolve(std::size_t pos);

  /// Parks on the reader's own condvar until a page is published, the
  /// list closes, or the reader is cancelled. With a stop probe bound the
  /// wait runs in bounded slices polling it. Returns false iff cancelled
  /// or stopped by the probe.
  bool ParkUntilReady();

  /// The stop-probe exit: latches `st` into error_ (surfaced through
  /// FinalStatus) and detaches the reader. Always returns false.
  bool FailStopped(const Status& st);

  std::shared_ptr<SharedPagesList> list_;
  std::shared_ptr<SharedPagesList::ReaderState> state_;
  /// The segment containing cursor_ (reader-local; see SlotFor).
  std::shared_ptr<SharedPagesList::Segment> seg_;
  /// Reader-local cursor mirror (state_->cursor is the published copy).
  std::size_t cursor_ = 0;
  std::size_t shard_index_ = 0;
  /// Sticky fault-back (or stop-probe) failure; surfaced through
  /// FinalStatus. Guarded by the list mutex.
  Status error_;
  /// External stop probe (see BindStopCheck). Written before the first
  /// read, then only called from this reader's own thread.
  std::function<Status()> stop_check_;
  /// In-flight readahead of the next spilled slot. Touched only by this
  /// reader's own Next()/destructor (readers are single-consumer), so it
  /// needs no lock of its own.
  std::size_t prefetch_pos_ = static_cast<std::size_t>(-1);
  IoTicketRef prefetch_ticket_;
  std::shared_ptr<std::optional<StatusOr<PageRef>>> prefetch_out_;
};

}  // namespace sharing
