#include "qpipe/sharing_channel.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"

namespace sharing {

namespace {

/// The `sharing.append` fault point, shared by both transports: a fired
/// check poisons the channel (it closes with the injected error, which
/// every attached satellite observes as its final status) and the put
/// reports failure to the host. This is the "host crashed mid-production"
/// drill the chaos harness runs — satellites must recover by re-running
/// unshared (see stage.cc), never by serving the truncated result.
Status InjectedAppendFault() {
  return Status::IoError("injected sharing append fault");
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Shared production-time lag sampling: every few pages the producer
/// records how far the slowest reader trails it. Callers guard `max`
/// with their own mutex. One copy of the policy so every transport
/// (push, pull, and the future spill/NUMA/remote channels) measures the
/// same signal the adaptive admission thresholds are calibrated to.
struct LagSampler {
  static constexpr std::size_t kEvery = 8;

  /// Did the production count cross a sampling boundary going from
  /// `prev` to `now`? (Batched puts advance by several pages at once, so
  /// the check is a window crossing, not `now % kEvery == 0`.)
  static bool ShouldSample(std::size_t prev, std::size_t now) {
    return now / kEvery > prev / kEvery;
  }

  std::size_t max = 0;

  void Update(std::size_t produced, std::size_t min_reader_position) {
    std::size_t lag =
        produced > min_reader_position ? produced - min_reader_position : 0;
    max = std::max(max, lag);
  }
};

// ---------------------------------------------------------------------------
// PushChannel: the push-model tee. The first attached reader is the host's
// own consumer and receives the original page; every later reader is a
// satellite fed a deep copy. All copies run in the producer thread — this
// loop is the serialization point the paper's pull model removes. Batched
// puts amortize one FIFO lock acquisition per satellite over the whole
// run (FifoBuffer::PushBatch) instead of paying it per page.
// ---------------------------------------------------------------------------

class PushChannel final : public SharingChannel {
 public:
  explicit PushChannel(SharingChannelOptions options)
      : options_(std::move(options)),
        pages_copied_(options_.metrics->GetCounter(metrics::kSpPagesCopied)),
        bytes_copied_(options_.metrics->GetCounter(metrics::kSpBytesCopied)) {}

  PageSourceRef AttachReader() override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!window_open_ || closed_) return nullptr;
    auto fifo = std::make_shared<FifoBuffer>(options_.fifo_capacity);
    if (host_ == nullptr) host_ = fifo.get();  // first reader = host's own
    readers_.push_back(fifo);
    ++ever_attached_;
    TRACE_EVENT("sharing", "push.attach", options_.query_id,
                options_.signature);
    return fifo;
  }

  bool Put(PageRef page) override {
    // Dedicated single-page path: unlike PutBatch it allocates nothing
    // beyond the satellite deep copies, so page-at-a-time configurations
    // (sp_read_batch <= 1) keep their pre-batching cost.
    if (SHARING_FAULT_POINT(fault_points::kSharingAppend)) {
      Close(InjectedAppendFault());
      return false;
    }
    TraceSpan span("sharing", "push.put", options_.query_id,
                   options_.signature);
    std::vector<std::shared_ptr<FifoBuffer>> readers;
    const FifoBuffer* host;
    std::size_t produced;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      window_open_ = false;  // first emission closes the attach window
      produced = ++pages_produced_;
      readers = readers_;
      host = host_;
    }
    bool any = false;
    std::vector<const FifoBuffer*> dead;
    for (std::size_t i = 0; i < readers.size(); ++i) {
      PageRef out =
          readers[i].get() == host ? page : CopyForSatellite(*page);
      if (readers[i]->Put(std::move(out))) {
        any = true;
      } else {
        dead.push_back(readers[i].get());
      }
    }
    FinishPut(readers, dead, produced - 1, produced);
    span.AddArg("pages", 1);
    span.AddArg("readers", static_cast<int64_t>(readers.size()));
    return any;
  }

  bool PutBatch(std::vector<PageRef> pages) override {
    if (pages.empty()) {
      std::lock_guard<std::mutex> lock(mutex_);
      return !closed_;
    }
    if (SHARING_FAULT_POINT(fault_points::kSharingAppend)) {
      Close(InjectedAppendFault());
      return false;
    }
    TraceSpan span("sharing", "push.put", options_.query_id,
                   options_.signature);
    std::vector<std::shared_ptr<FifoBuffer>> readers;
    const FifoBuffer* host;
    std::size_t produced;
    std::size_t prev_produced;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      window_open_ = false;  // first emission closes the attach window
      prev_produced = pages_produced_;
      pages_produced_ += pages.size();
      produced = pages_produced_;
      readers = readers_;
      host = host_;
    }
    bool any = false;
    std::vector<const FifoBuffer*> dead;
    for (std::size_t i = 0; i < readers.size(); ++i) {
      std::vector<PageRef> batch;
      batch.reserve(pages.size());
      if (readers[i].get() == host) {
        // The host's own consumer reads the originals.
        batch = pages;
      } else {
        for (const PageRef& page : pages) {
          batch.push_back(CopyForSatellite(*page));
        }
      }
      if (readers[i]->PushBatch(batch)) {
        any = true;
      } else {
        dead.push_back(readers[i].get());
      }
    }
    FinishPut(readers, dead, prev_produced, produced);
    span.AddArg("pages", static_cast<int64_t>(produced - prev_produced));
    span.AddArg("readers", static_cast<int64_t>(readers.size()));
    return any;
  }

  void Close(Status final) override {
    std::vector<std::shared_ptr<FifoBuffer>> readers;
    Stats closing;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
      window_open_ = false;
      readers.swap(readers_);
      closing.readers_attached = ever_attached_;
      closing.readers_active = readers.size();
      closing.pages_produced = pages_produced_;
      closing.max_consumer_lag = lag_.max;
    }
    for (const auto& reader : readers) reader->Close(final);
    if (options_.on_close) options_.on_close(closing);
  }

  Stats GetStats() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats stats;
    stats.readers_attached = ever_attached_;
    stats.pages_produced = pages_produced_;
    stats.attach_window_open = window_open_ && !closed_;
    stats.readers_active = readers_.size();
    stats.max_consumer_lag = lag_.max;
    return stats;
  }

  Introspection Introspect() const override {
    Introspection out;
    out.mode = SpMode::kPush;
    std::lock_guard<std::mutex> lock(mutex_);
    out.stats.readers_attached = ever_attached_;
    out.stats.pages_produced = pages_produced_;
    out.stats.attach_window_open = window_open_ && !closed_;
    out.stats.readers_active = readers_.size();
    out.stats.max_consumer_lag = lag_.max;
    out.published = pages_produced_;
    out.closed = closed_;
    out.min_reader_position = pages_produced_;
    for (const auto& reader : readers_) {
      ReaderIntrospection info;
      info.position = reader->PagesDelivered();
      out.min_reader_position = std::min(out.min_reader_position,
                                         info.position);
      out.readers.push_back(info);
    }
    if (readers_.empty()) out.min_reader_position = 0;
    return out;
  }

  SpMode mode() const override { return SpMode::kPush; }

 private:
  /// Copies between wall-timed samples fed to on_copy_cost.
  static constexpr std::size_t kCopySampleEvery = 32;

  /// One satellite deep copy — the defining cost of push-based SP
  /// (charged even after the host cancels: the model forwards). One
  /// copy in every kCopySampleEvery is wall-timed to feed the cost
  /// model's measured ns-per-page (single producer, so the countdown
  /// needs no lock).
  PageRef CopyForSatellite(const RowPage& page) {
    const bool sample =
        options_.on_copy_cost != nullptr && copies_until_sample_ == 0;
    const int64_t start = sample ? NowNanos() : 0;
    PageRef copy = std::make_shared<RowPage>(page);
    if (sample) {
      options_.on_copy_cost(static_cast<double>(NowNanos() - start));
      copies_until_sample_ = kCopySampleEvery;
    } else if (copies_until_sample_ > 0) {
      --copies_until_sample_;
    }
    pages_copied_->Increment();
    bytes_copied_->Add(static_cast<int64_t>(page.data_bytes()));
    return copy;
  }

  /// Shared Put/PutBatch epilogue: prune readers that reported a dead
  /// consumer, and take the production-time lag sample when the batch
  /// crossed a sampling boundary — from the slowest *surviving* reader
  /// (a dead reader's frozen position would inflate the signal the
  /// adaptive policy consumes).
  void FinishPut(const std::vector<std::shared_ptr<FifoBuffer>>& readers,
                 const std::vector<const FifoBuffer*>& dead,
                 std::size_t prev_produced, std::size_t produced) {
    if (!dead.empty()) {
      std::lock_guard<std::mutex> lock(mutex_);
      std::erase_if(readers_, [&](const std::shared_ptr<FifoBuffer>& r) {
        return std::find(dead.begin(), dead.end(), r.get()) != dead.end();
      });
      if (std::find(dead.begin(), dead.end(), host_) != dead.end()) {
        host_ = nullptr;  // never compare against a freed FIFO
      }
    }
    if (LagSampler::ShouldSample(prev_produced, produced)) {
      std::size_t min_delivered = produced;
      for (const auto& reader : readers) {
        if (std::find(dead.begin(), dead.end(), reader.get()) != dead.end()) {
          continue;
        }
        min_delivered = std::min(min_delivered, reader->PagesDelivered());
      }
      std::lock_guard<std::mutex> lock(mutex_);
      lag_.Update(produced, min_delivered);
    }
  }

  SharingChannelOptions options_;
  Counter* pages_copied_;
  Counter* bytes_copied_;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<FifoBuffer>> readers_;
  LagSampler lag_;
  /// The host's own consumer (first attached); identity only, owned by
  /// readers_. Satellites are fed copies, the host the original.
  const FifoBuffer* host_ = nullptr;
  std::size_t ever_attached_ = 0;
  std::size_t pages_produced_ = 0;
  /// Producer-thread-only countdown to the next timed copy.
  std::size_t copies_until_sample_ = 0;
  bool window_open_ = true;
  bool closed_ = false;
};

// ---------------------------------------------------------------------------
// PullChannel: the Shared Pages List behind the channel interface. Close
// seals the SPL's attach window, which both matches the stage's session
// lifetime (the registry entry is dropped at close) and arms page
// reclamation. Batched puts publish the whole run with one SPL
// bookkeeping pass (AppendBatch).
// ---------------------------------------------------------------------------

class PullChannel final : public SharingChannel {
 public:
  explicit PullChannel(SharingChannelOptions options)
      : options_(std::move(options)),
        spl_(SharedPagesList::Create(options_.metrics, options_.governor)) {
    // The SPL emits its own park/fault-back/attach trace records; give it
    // the session's correlation ids so they land under the host query.
    spl_->SetTraceIdentity(options_.query_id, options_.signature);
  }

  PageSourceRef AttachReader() override {
    if (options_.on_attach_cost == nullptr) return spl_->AttachReader();
    const int64_t start = NowNanos();
    auto reader = spl_->AttachReader();
    if (reader != nullptr) {
      options_.on_attach_cost(static_cast<double>(NowNanos() - start));
    }
    return reader;
  }

  bool Put(PageRef page) override {
    if (SHARING_FAULT_POINT(fault_points::kSharingAppend)) {
      Close(InjectedAppendFault());
      return false;
    }
    TraceSpan span("sharing", "pull.put", options_.query_id,
                   options_.signature);
    span.AddArg("pages", 1);
    std::size_t produced = spl_->Append(std::move(page));
    if (produced == 0) return false;
    SampleLag(produced - 1, produced);
    return true;
  }

  bool PutBatch(std::vector<PageRef> pages) override {
    if (pages.empty()) return !spl_->closed();
    if (SHARING_FAULT_POINT(fault_points::kSharingAppend)) {
      Close(InjectedAppendFault());
      return false;
    }
    const std::size_t count = pages.size();
    TraceSpan span("sharing", "pull.put", options_.query_id,
                   options_.signature);
    span.AddArg("pages", static_cast<int64_t>(count));
    std::size_t produced = spl_->AppendBatch(std::move(pages));
    if (produced == 0) return false;
    SampleLag(produced - count, produced);
    return true;
  }

  void Close(Status final) override {
    {
      std::lock_guard<std::mutex> lock(close_mutex_);
      if (closed_) return;
      closed_ = true;
    }
    // Seal strictly before closing: the moment a reader can observe
    // end-of-stream (and its query returns), no new consumer may attach
    // to this finished session — otherwise a later query could be served
    // the stale cached result through the closing race.
    spl_->SealAttachWindow();
    spl_->Close(std::move(final));
    if (options_.on_close) options_.on_close(GetStats());
  }

  Stats GetStats() const override {
    SharedPagesList::Snapshot snap = spl_->GetSnapshot();
    Stats stats;
    stats.readers_attached = snap.ever_attached;
    stats.readers_active = snap.active_readers;
    stats.pages_produced = snap.total_appended;
    stats.attach_window_open = !snap.closed;
    {
      std::lock_guard<std::mutex> lock(close_mutex_);
      stats.max_consumer_lag = lag_.max;
    }
    return stats;
  }

  Introspection Introspect() const override {
    SharedPagesList::DeepSnapshot deep = spl_->GetDeepSnapshot();
    Introspection out;
    out.mode = SpMode::kPull;
    out.stats.readers_attached = deep.ever_attached;
    out.stats.readers_active = deep.active_readers;
    out.stats.pages_produced = deep.published;
    out.stats.attach_window_open = !deep.sealed && !deep.closed;
    out.published = deep.published;
    out.resident_pages = deep.resident_pages;
    out.spilled_pages = deep.spilled_pages;
    out.reclaimed_pages = deep.reclaimed;
    out.min_reader_position = deep.min_reader_position;
    out.closed = deep.closed;
    out.sealed = deep.sealed;
    out.readers.reserve(deep.readers.size());
    for (const auto& r : deep.readers) {
      ReaderIntrospection info;
      info.position = r.position;
      info.parked = r.parked;
      info.parked_for_micros = r.parked_for_micros;
      info.cancelled = r.cancelled;
      out.readers.push_back(info);
    }
    {
      std::lock_guard<std::mutex> lock(close_mutex_);
      out.stats.max_consumer_lag = lag_.max;
    }
    return out;
  }

  SpMode mode() const override { return SpMode::kPull; }

 private:
  void SampleLag(std::size_t prev_produced, std::size_t produced) {
    if (!LagSampler::ShouldSample(prev_produced, produced)) return;
    std::size_t min_pos = spl_->MinReaderPosition();
    std::lock_guard<std::mutex> lock(close_mutex_);
    lag_.Update(produced, min_pos);
  }

  SharingChannelOptions options_;
  std::shared_ptr<SharedPagesList> spl_;
  mutable std::mutex close_mutex_;
  LagSampler lag_;
  bool closed_ = false;
};

}  // namespace

SharingChannelRef MakeSharingChannel(SpMode mode,
                                     SharingChannelOptions options) {
  switch (mode) {
    case SpMode::kPush:
      return std::make_shared<PushChannel>(std::move(options));
    case SpMode::kPull:
      return std::make_shared<PullChannel>(std::move(options));
    case SpMode::kOff:
    case SpMode::kAdaptive:
      break;
  }
  SHARING_CHECK(false) << "no sharing channel for mode "
                       << SpModeToString(mode);
  return nullptr;
}

}  // namespace sharing
