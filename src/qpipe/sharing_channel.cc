#include "qpipe/sharing_channel.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace sharing {

namespace {

/// Shared production-time lag sampling: every few pages the producer
/// records how far the slowest reader trails it. Callers guard `max`
/// with their own mutex. One copy of the policy so every transport
/// (push, pull, and the future spill/NUMA/remote channels) measures the
/// same signal the adaptive admission thresholds are calibrated to.
struct LagSampler {
  static constexpr std::size_t kEvery = 8;

  static bool ShouldSample(std::size_t produced) {
    return produced % kEvery == 0;
  }

  std::size_t max = 0;

  void Update(std::size_t produced, std::size_t min_reader_position) {
    std::size_t lag =
        produced > min_reader_position ? produced - min_reader_position : 0;
    max = std::max(max, lag);
  }
};

// ---------------------------------------------------------------------------
// PushChannel: the push-model tee. The first attached reader is the host's
// own consumer and receives the original page; every later reader is a
// satellite fed a deep copy. All copies run in the producer thread — this
// loop is the serialization point the paper's pull model removes.
// ---------------------------------------------------------------------------

class PushChannel final : public SharingChannel {
 public:
  explicit PushChannel(SharingChannelOptions options)
      : options_(std::move(options)),
        pages_copied_(options_.metrics->GetCounter(metrics::kSpPagesCopied)),
        bytes_copied_(options_.metrics->GetCounter(metrics::kSpBytesCopied)) {}

  PageSourceRef AttachReader() override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!window_open_ || closed_) return nullptr;
    auto fifo = std::make_shared<FifoBuffer>(options_.fifo_capacity);
    if (host_ == nullptr) host_ = fifo.get();  // first reader = host's own
    readers_.push_back(fifo);
    ++ever_attached_;
    return fifo;
  }

  bool Put(PageRef page) override {
    std::vector<std::shared_ptr<FifoBuffer>> readers;
    const FifoBuffer* host;
    std::size_t produced;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      window_open_ = false;  // first emission closes the attach window
      produced = ++pages_produced_;
      readers = readers_;
      host = host_;
    }
    bool any = false;
    std::vector<const FifoBuffer*> dead;
    for (std::size_t i = 0; i < readers.size(); ++i) {
      PageRef out;
      if (readers[i].get() == host) {
        out = page;  // the host's own consumer reads the original
      } else {
        // Deep copy per satellite — the defining cost of push-based SP
        // (charged even after the host cancels: the model forwards).
        out = std::make_shared<RowPage>(*page);
        pages_copied_->Increment();
        bytes_copied_->Add(static_cast<int64_t>(page->data_bytes()));
      }
      if (readers[i]->Put(std::move(out))) {
        any = true;
      } else {
        dead.push_back(readers[i].get());
      }
    }
    if (!dead.empty()) {
      std::lock_guard<std::mutex> lock(mutex_);
      std::erase_if(readers_, [&](const std::shared_ptr<FifoBuffer>& r) {
        return std::find(dead.begin(), dead.end(), r.get()) != dead.end();
      });
      if (std::find(dead.begin(), dead.end(), host_) != dead.end()) {
        host_ = nullptr;  // never compare against a freed FIFO
      }
    }
    // Production-time lag sample (every few pages): how far the slowest
    // *surviving* reader trails the producer — a dead reader's frozen
    // position would inflate the signal the adaptive policy consumes.
    if (LagSampler::ShouldSample(produced)) {
      std::size_t min_delivered = produced;
      for (const auto& reader : readers) {
        if (std::find(dead.begin(), dead.end(), reader.get()) != dead.end()) {
          continue;
        }
        min_delivered = std::min(min_delivered, reader->PagesDelivered());
      }
      std::lock_guard<std::mutex> lock(mutex_);
      lag_.Update(produced, min_delivered);
    }
    return any;
  }

  void Close(Status final) override {
    std::vector<std::shared_ptr<FifoBuffer>> readers;
    Stats closing;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
      window_open_ = false;
      readers.swap(readers_);
      closing.readers_attached = ever_attached_;
      closing.readers_active = readers.size();
      closing.pages_produced = pages_produced_;
      closing.max_consumer_lag = lag_.max;
    }
    for (const auto& reader : readers) reader->Close(final);
    if (options_.on_close) options_.on_close(closing);
  }

  Stats GetStats() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats stats;
    stats.readers_attached = ever_attached_;
    stats.pages_produced = pages_produced_;
    stats.attach_window_open = window_open_ && !closed_;
    stats.readers_active = readers_.size();
    stats.max_consumer_lag = lag_.max;
    return stats;
  }

  SpMode mode() const override { return SpMode::kPush; }

 private:
  SharingChannelOptions options_;
  Counter* pages_copied_;
  Counter* bytes_copied_;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<FifoBuffer>> readers_;
  LagSampler lag_;
  /// The host's own consumer (first attached); identity only, owned by
  /// readers_. Satellites are fed copies, the host the original.
  const FifoBuffer* host_ = nullptr;
  std::size_t ever_attached_ = 0;
  std::size_t pages_produced_ = 0;
  bool window_open_ = true;
  bool closed_ = false;
};

// ---------------------------------------------------------------------------
// PullChannel: the Shared Pages List behind the channel interface. Close
// seals the SPL's attach window, which both matches the stage's session
// lifetime (the registry entry is dropped at close) and arms page
// reclamation.
// ---------------------------------------------------------------------------

class PullChannel final : public SharingChannel {
 public:
  explicit PullChannel(SharingChannelOptions options)
      : options_(std::move(options)),
        spl_(SharedPagesList::Create(options_.metrics, options_.governor)) {}

  PageSourceRef AttachReader() override { return spl_->AttachReader(); }

  bool Put(PageRef page) override {
    std::size_t produced = spl_->Append(std::move(page));
    if (produced == 0) return false;
    if (LagSampler::ShouldSample(produced)) {
      std::size_t min_pos = spl_->MinReaderPosition();
      std::lock_guard<std::mutex> lock(close_mutex_);
      lag_.Update(produced, min_pos);
    }
    return true;
  }

  void Close(Status final) override {
    {
      std::lock_guard<std::mutex> lock(close_mutex_);
      if (closed_) return;
      closed_ = true;
    }
    // Seal strictly before closing: the moment a reader can observe
    // end-of-stream (and its query returns), no new consumer may attach
    // to this finished session — otherwise a later query could be served
    // the stale cached result through the closing race.
    spl_->SealAttachWindow();
    spl_->Close(std::move(final));
    if (options_.on_close) options_.on_close(GetStats());
  }

  Stats GetStats() const override {
    SharedPagesList::Snapshot snap = spl_->GetSnapshot();
    Stats stats;
    stats.readers_attached = snap.ever_attached;
    stats.readers_active = snap.active_readers;
    stats.pages_produced = snap.total_appended;
    stats.attach_window_open = !snap.closed;
    {
      std::lock_guard<std::mutex> lock(close_mutex_);
      stats.max_consumer_lag = lag_.max;
    }
    return stats;
  }

  SpMode mode() const override { return SpMode::kPull; }

 private:
  SharingChannelOptions options_;
  std::shared_ptr<SharedPagesList> spl_;
  mutable std::mutex close_mutex_;
  LagSampler lag_;
  bool closed_ = false;
};

}  // namespace

SharingChannelRef MakeSharingChannel(SpMode mode,
                                     SharingChannelOptions options) {
  switch (mode) {
    case SpMode::kPush:
      return std::make_shared<PushChannel>(std::move(options));
    case SpMode::kPull:
      return std::make_shared<PullChannel>(std::move(options));
    case SpMode::kOff:
    case SpMode::kAdaptive:
      break;
  }
  SHARING_CHECK(false) << "no sharing channel for mode "
                       << SpModeToString(mode);
  return nullptr;
}

}  // namespace sharing
