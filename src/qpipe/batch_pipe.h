// Batch adapters between packet operators (which move one page at a
// time) and the sharing transports (whose batched APIs amortize one lock
// acquisition — or one SPL publication + wake sweep — over a run of
// pages).
//
// Operators keep their page-at-a-time loops; the Stage wraps a packet's
// inputs in BatchingSource and its output in BatchingSink when
// `sp_read_batch` > 1. The adapters are packet-local (exactly one
// operator thread touches them), so they carry no locks of their own —
// all concurrency lives in the wrapped transport.
//
// Semantics preserved, granularity coarsened:
//  * BatchingSource::Next blocks exactly when the underlying source
//    would (NextBatch waits for the first page only), and pages arrive
//    in order; the underlying reader's position advances by up to
//    `batch` at once, so consumer-lag signals and reclamation are
//    batch-granular.
//  * BatchingSink::Put buffers up to `batch` pages before one PutBatch;
//    Close flushes the remainder first. A producer therefore learns that
//    all consumers are gone up to `batch-1` pages late — the same
//    bounded overproduction a FIFO's capacity already allows.

#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "exec/page_stream.h"

namespace sharing {

class BatchingSource final : public PageSource {
 public:
  BatchingSource(PageSourceRef inner, std::size_t batch)
      : inner_(std::move(inner)), batch_(batch == 0 ? 1 : batch) {
    buffer_.reserve(batch_);
  }

  SHARING_DISALLOW_COPY_AND_MOVE(BatchingSource);

  PageRef Next() override {
    if (next_ >= buffer_.size()) {
      buffer_.clear();
      next_ = 0;
      if (inner_->NextBatch(batch_, &buffer_) == 0) return nullptr;
    }
    ++delivered_;
    return std::move(buffer_[next_++]);
  }

  std::size_t NextBatch(std::size_t max_pages,
                        std::vector<PageRef>* out) override {
    // Serve buffered pages first (order!), then delegate.
    std::size_t got = 0;
    while (got < max_pages && next_ < buffer_.size()) {
      out->push_back(std::move(buffer_[next_++]));
      ++got;
    }
    if (got == 0) got = inner_->NextBatch(max_pages, out);
    delivered_ += got;
    return got;
  }

  Status FinalStatus() const override { return inner_->FinalStatus(); }

  void CancelConsumer() override { inner_->CancelConsumer(); }

  /// Pages handed out by THIS adapter — the operator's true position,
  /// which trails the wrapped reader's by the buffered remainder.
  std::size_t PagesDelivered() const override { return delivered_; }

  void BindStopCheck(std::function<Status()> stop_check) override {
    inner_->BindStopCheck(std::move(stop_check));
  }

 private:
  PageSourceRef inner_;
  const std::size_t batch_;
  std::vector<PageRef> buffer_;
  std::size_t next_ = 0;
  std::size_t delivered_ = 0;
};

class BatchingSink final : public PageSink {
 public:
  BatchingSink(PageSinkRef inner, std::size_t batch)
      : inner_(std::move(inner)), batch_(batch == 0 ? 1 : batch) {
    buffer_.reserve(batch_);
  }

  SHARING_DISALLOW_COPY_AND_MOVE(BatchingSink);

  bool Put(PageRef page) override {
    buffer_.push_back(std::move(page));
    if (buffer_.size() >= batch_) return Flush();
    return !dead_;
  }

  bool PutBatch(std::vector<PageRef> pages) override {
    for (PageRef& page : pages) {
      if (!Put(std::move(page)) && dead_) return false;
    }
    return !dead_;
  }

  void Close(Status final) override {
    Flush();  // buffered pages are delivered before end-of-stream
    inner_->Close(std::move(final));
  }

 private:
  bool Flush() {
    if (buffer_.empty()) return !dead_;
    std::vector<PageRef> batch;
    batch.reserve(batch_);
    batch.swap(buffer_);
    if (!inner_->PutBatch(std::move(batch))) dead_ = true;
    return !dead_;
  }

  PageSinkRef inner_;
  const std::size_t batch_;
  std::vector<PageRef> buffer_;
  bool dead_ = false;
};

}  // namespace sharing
