#include "sql/binder.h"

#include <algorithm>
#include <functional>
#include <set>

#include "sql/parser.h"

namespace sharing::sql {

namespace {

std::string At(const SqlExpr& e) {
  return std::to_string(e.line) + ":" + std::to_string(e.column_pos) + ": ";
}

class Binder {
 public:
  Binder(const Catalog& catalog, const SelectStatement& stmt)
      : catalog_(catalog), stmt_(stmt) {}

  StatusOr<PlanNodeRef> Run() {
    SHARING_RETURN_NOT_OK(ResolveTables());
    SHARING_RETURN_NOT_OK(AssignWhereConjuncts());
    SHARING_RETURN_NOT_OK(CollectNeededColumns());

    const bool has_aggs =
        !stmt_.group_by.empty() ||
        std::any_of(stmt_.items.begin(), stmt_.items.end(),
                    [](const SelectItem& item) {
                      return item.expr->ContainsAggregate();
                    });
    if (!has_aggs) {
      // Plain select lists constrain the projection up front (the engine
      // has no standalone projection operator above joins).
      SHARING_RETURN_NOT_OK(PlanPlainSelectList());
    }

    PlanNodeRef plan;
    SHARING_ASSIGN_OR_RETURN(plan, BuildJoinTree());
    if (has_aggs) {
      SHARING_ASSIGN_OR_RETURN(plan, BuildAggregate(std::move(plan)));
    }

    if (!stmt_.order_by.empty()) {
      SHARING_ASSIGN_OR_RETURN(plan, BuildSort(std::move(plan)));
    } else if (stmt_.has_limit) {
      return Status::NotImplemented(
          "LIMIT without ORDER BY (the engine evaluates LIMIT as top-k "
          "through the sort stage)");
    }
    return plan;
  }

 private:
  /// A column pinned to a bound table: indexes into that table's schema.
  struct ColumnId {
    std::size_t table = 0;
    std::size_t column = 0;
  };

  struct BoundTable {
    std::string alias;
    const Table* table = nullptr;
    ExprRef predicate;                   // conjunction of pushed conjuncts
    std::vector<std::size_t> projection; // table-schema indices, ascending
  };

  // -------------------------------------------------------------------------
  // Name resolution
  // -------------------------------------------------------------------------

  Status ResolveTables() {
    auto add = [&](const TableRef& ref) -> Status {
      for (const auto& bound : tables_) {
        if (bound.alias == ref.alias) {
          return Status::InvalidArgument(
              std::to_string(ref.line) + ":" + std::to_string(ref.column) +
              ": duplicate table alias '" + ref.alias + "'");
        }
      }
      auto table_or = catalog_.GetTable(ref.table);
      if (!table_or.ok()) {
        return Status::InvalidArgument(
            std::to_string(ref.line) + ":" + std::to_string(ref.column) +
            ": unknown table '" + ref.table + "'");
      }
      tables_.push_back(BoundTable{ref.alias, table_or.value(), nullptr, {}});
      return Status::OK();
    };
    SHARING_RETURN_NOT_OK(add(stmt_.from));
    for (const auto& join : stmt_.joins) {
      SHARING_RETURN_NOT_OK(add(join.table));
    }
    return Status::OK();
  }

  StatusOr<ColumnId> ResolveColumn(const SqlExpr& ref) const {
    SHARING_DCHECK(ref.kind == SqlExpr::Kind::kColumnRef);
    if (!ref.qualifier.empty()) {
      for (std::size_t t = 0; t < tables_.size(); ++t) {
        if (tables_[t].alias != ref.qualifier) continue;
        auto idx = tables_[t].table->schema().ColumnIndex(ref.column);
        if (!idx.ok()) {
          return Status::InvalidArgument(At(ref) + "table '" + ref.qualifier +
                                         "' has no column '" + ref.column +
                                         "'");
        }
        return ColumnId{t, idx.value()};
      }
      return Status::InvalidArgument(At(ref) + "unknown table alias '" +
                                     ref.qualifier + "'");
    }
    bool found = false;
    ColumnId id;
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      auto idx = tables_[t].table->schema().ColumnIndex(ref.column);
      if (!idx.ok()) continue;
      if (found) {
        return Status::InvalidArgument(At(ref) + "ambiguous column '" +
                                       ref.column + "' (qualify it)");
      }
      found = true;
      id = ColumnId{t, idx.value()};
    }
    if (!found) {
      return Status::InvalidArgument(At(ref) + "unknown column '" +
                                     ref.column + "'");
    }
    return id;
  }

  /// Collects every column referenced in `expr` into `out`; fails on
  /// aggregates (callers handle those separately).
  Status CollectColumns(const SqlExprRef& expr,
                        std::vector<ColumnId>* out) const {
    if (expr->kind == SqlExpr::Kind::kColumnRef) {
      ColumnId id;
      SHARING_ASSIGN_OR_RETURN(id, ResolveColumn(*expr));
      out->push_back(id);
      return Status::OK();
    }
    for (const auto& child : expr->children) {
      SHARING_RETURN_NOT_OK(CollectColumns(child, out));
    }
    return Status::OK();
  }

  // -------------------------------------------------------------------------
  // WHERE pushdown
  // -------------------------------------------------------------------------

  static void SplitConjuncts(const SqlExprRef& expr,
                             std::vector<SqlExprRef>* out) {
    if (expr->kind == SqlExpr::Kind::kAnd) {
      SplitConjuncts(expr->children[0], out);
      SplitConjuncts(expr->children[1], out);
      return;
    }
    out->push_back(expr);
  }

  Status AssignWhereConjuncts() {
    if (!stmt_.where) return Status::OK();
    if (stmt_.where->ContainsAggregate()) {
      return Status::InvalidArgument(At(*stmt_.where) +
                                     "aggregates are not allowed in WHERE");
    }
    std::vector<SqlExprRef> conjuncts;
    SplitConjuncts(stmt_.where, &conjuncts);
    conjuncts_per_table_.resize(tables_.size());
    for (const auto& conjunct : conjuncts) {
      std::vector<ColumnId> columns;
      SHARING_RETURN_NOT_OK(CollectColumns(conjunct, &columns));
      if (columns.empty()) {
        return Status::NotImplemented(At(*conjunct) +
                                     "constant WHERE conjunct");
      }
      std::size_t table = columns[0].table;
      for (const auto& id : columns) {
        if (id.table != table) {
          return Status::NotImplemented(
              At(*conjunct) +
              "WHERE conjunct spans multiple tables; only per-table "
              "predicates and JOIN ... ON equi-joins are supported: " +
              conjunct->ToString());
        }
      }
      conjuncts_per_table_[table].push_back(conjunct);
    }
    return Status::OK();
  }

  // -------------------------------------------------------------------------
  // Projection planning
  // -------------------------------------------------------------------------

  Status Need(const SqlExprRef& expr) {
    std::vector<ColumnId> columns;
    SHARING_RETURN_NOT_OK(CollectColumns(expr, &columns));
    for (const auto& id : columns) needed_[id.table].insert(id.column);
    return Status::OK();
  }

  Status CollectNeededColumns() {
    needed_.resize(tables_.size());
    if (stmt_.select_star) {
      for (std::size_t t = 0; t < tables_.size(); ++t) {
        for (std::size_t c = 0; c < tables_[t].table->schema().num_columns();
             ++c) {
          needed_[t].insert(c);
        }
      }
    }
    for (const auto& item : stmt_.items) {
      if (item.expr->kind == SqlExpr::Kind::kAggCall && item.expr->agg_star) {
        continue;  // COUNT(*) needs no columns
      }
      SHARING_RETURN_NOT_OK(Need(item.expr));
    }
    for (const auto& group : stmt_.group_by) {
      SHARING_RETURN_NOT_OK(Need(group));
    }
    for (const auto& join : stmt_.joins) {
      SHARING_RETURN_NOT_OK(Need(join.condition));
    }
    // WHERE columns are evaluated against full table rows at the scans, so
    // they do not widen projections. Ensure every table projects at least
    // one column (an empty projection would make rows width-0).
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      if (needed_[t].empty()) needed_[t].insert(0);
      tables_[t].projection.assign(needed_[t].begin(), needed_[t].end());
    }
    return Status::OK();
  }

  // -------------------------------------------------------------------------
  // Expression lowering
  // -------------------------------------------------------------------------

  /// Scope: resolves a ColumnId to (index, type) in the rows the bound
  /// expression will see.
  using Scope =
      std::function<StatusOr<std::pair<std::size_t, ValueType>>(ColumnId)>;

  StatusOr<ExprRef> Lower(const SqlExprRef& expr, const Scope& scope) const {
    switch (expr->kind) {
      case SqlExpr::Kind::kColumnRef: {
        ColumnId id;
        SHARING_ASSIGN_OR_RETURN(id, ResolveColumn(*expr));
        std::pair<std::size_t, ValueType> slot;
        SHARING_ASSIGN_OR_RETURN(slot, scope(id));
        return Col(slot.first, slot.second);
      }
      case SqlExpr::Kind::kLiteral:
        return Lit(expr->literal);
      case SqlExpr::Kind::kCompare: {
        ExprRef lhs;
        ExprRef rhs;
        SHARING_ASSIGN_OR_RETURN(lhs, Lower(expr->children[0], scope));
        SHARING_ASSIGN_OR_RETURN(rhs, Lower(expr->children[1], scope));
        return Cmp(expr->cmp_op, std::move(lhs), std::move(rhs));
      }
      case SqlExpr::Kind::kArith: {
        ExprRef lhs;
        ExprRef rhs;
        SHARING_ASSIGN_OR_RETURN(lhs, Lower(expr->children[0], scope));
        SHARING_ASSIGN_OR_RETURN(rhs, Lower(expr->children[1], scope));
        return Arith(expr->arith_op, std::move(lhs), std::move(rhs));
      }
      case SqlExpr::Kind::kAnd: {
        ExprRef lhs;
        ExprRef rhs;
        SHARING_ASSIGN_OR_RETURN(lhs, Lower(expr->children[0], scope));
        SHARING_ASSIGN_OR_RETURN(rhs, Lower(expr->children[1], scope));
        return And(std::move(lhs), std::move(rhs));
      }
      case SqlExpr::Kind::kOr: {
        ExprRef lhs;
        ExprRef rhs;
        SHARING_ASSIGN_OR_RETURN(lhs, Lower(expr->children[0], scope));
        SHARING_ASSIGN_OR_RETURN(rhs, Lower(expr->children[1], scope));
        return Or(std::move(lhs), std::move(rhs));
      }
      case SqlExpr::Kind::kNot: {
        ExprRef inner;
        SHARING_ASSIGN_OR_RETURN(inner, Lower(expr->children[0], scope));
        return Not(std::move(inner));
      }
      case SqlExpr::Kind::kBetween: {
        ExprRef value;
        ExprRef lo;
        ExprRef hi;
        SHARING_ASSIGN_OR_RETURN(value, Lower(expr->children[0], scope));
        SHARING_ASSIGN_OR_RETURN(lo, Lower(expr->children[1], scope));
        SHARING_ASSIGN_OR_RETURN(hi, Lower(expr->children[2], scope));
        ExprRef lower_bound = Cmp(CmpOp::kLe, std::move(lo), value);
        ExprRef upper_bound = Cmp(CmpOp::kLe, std::move(value), std::move(hi));
        return And(std::move(lower_bound), std::move(upper_bound));
      }
      case SqlExpr::Kind::kAggCall:
        return Status::InvalidArgument(
            At(*expr) + "aggregate call outside a select list");
    }
    return Status::InvalidArgument("unreachable expression kind");
  }

  /// Scope over one table's full-width rows (scan predicates).
  Scope TableScope(std::size_t table) const {
    return [this, table](ColumnId id)
               -> StatusOr<std::pair<std::size_t, ValueType>> {
      if (id.table != table) {
        return Status::Internal("conjunct bound to the wrong table");
      }
      const Column& column = tables_[table].table->schema().column(id.column);
      return std::make_pair(id.column, column.type);
    };
  }

  /// Scope over the join tree's output (lineage_ positions).
  Scope PlanScope() const {
    return [this](ColumnId id)
               -> StatusOr<std::pair<std::size_t, ValueType>> {
      for (std::size_t i = 0; i < lineage_.size(); ++i) {
        if (lineage_[i].table == id.table &&
            lineage_[i].column == id.column) {
          const Column& column =
              tables_[id.table].table->schema().column(id.column);
          return std::make_pair(i, column.type);
        }
      }
      return Status::Internal(
          "column missing from join output lineage");
    };
  }

  // -------------------------------------------------------------------------
  // Plan construction
  // -------------------------------------------------------------------------

  StatusOr<PlanNodeRef> BuildScan(std::size_t table) {
    BoundTable& bound = tables_[table];
    ExprRef predicate = TruePredicate();
    if (table < conjuncts_per_table_.size()) {
      std::vector<ExprRef> lowered;
      for (const auto& conjunct : conjuncts_per_table_[table]) {
        ExprRef e;
        SHARING_ASSIGN_OR_RETURN(e, Lower(conjunct, TableScope(table)));
        lowered.push_back(std::move(e));
      }
      if (!lowered.empty()) predicate = And(std::move(lowered));
    }
    return PlanNodeRef(std::make_shared<ScanNode>(
        bound.table->name(), bound.table->schema(), predicate,
        bound.projection));
  }

  /// Position of `id` within a single table's projection.
  StatusOr<std::size_t> ProjectedIndex(ColumnId id) const {
    const auto& projection = tables_[id.table].projection;
    auto it = std::find(projection.begin(), projection.end(), id.column);
    if (it == projection.end()) {
      return Status::Internal("join key missing from projection");
    }
    return static_cast<std::size_t>(it - projection.begin());
  }

  StatusOr<PlanNodeRef> BuildJoinTree() {
    PlanNodeRef plan;
    SHARING_ASSIGN_OR_RETURN(plan, BuildScan(0));
    lineage_.clear();
    for (std::size_t column : tables_[0].projection) {
      lineage_.push_back(ColumnId{0, column});
    }

    for (std::size_t j = 0; j < stmt_.joins.size(); ++j) {
      const std::size_t table = j + 1;
      ColumnId build_key;
      ColumnId probe_key;
      SHARING_RETURN_NOT_OK(
          ResolveJoinKeys(stmt_.joins[j], table, &build_key, &probe_key));

      PlanNodeRef build;
      SHARING_ASSIGN_OR_RETURN(build, BuildScan(table));
      std::size_t build_pos;
      SHARING_ASSIGN_OR_RETURN(build_pos, ProjectedIndex(build_key));
      std::size_t probe_pos = 0;
      bool found = false;
      for (std::size_t i = 0; i < lineage_.size(); ++i) {
        if (lineage_[i].table == probe_key.table &&
            lineage_[i].column == probe_key.column) {
          probe_pos = i;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Internal("probe key missing from lineage");
      }

      plan = std::make_shared<JoinNode>(std::move(build), std::move(plan),
                                        build_pos, probe_pos);
      // Join output: build block then probe block.
      std::vector<ColumnId> lineage;
      for (std::size_t column : tables_[table].projection) {
        lineage.push_back(ColumnId{table, column});
      }
      lineage.insert(lineage.end(), lineage_.begin(), lineage_.end());
      lineage_ = std::move(lineage);
    }
    return plan;
  }

  Status ResolveJoinKeys(const JoinClause& join, std::size_t new_table,
                         ColumnId* build_key, ColumnId* probe_key) const {
    const SqlExpr& cond = *join.condition;
    if (cond.kind != SqlExpr::Kind::kCompare || cond.cmp_op != CmpOp::kEq ||
        cond.children[0]->kind != SqlExpr::Kind::kColumnRef ||
        cond.children[1]->kind != SqlExpr::Kind::kColumnRef) {
      return Status::NotImplemented(
          At(cond) +
          "JOIN condition must be a single-column equality (a.x = b.y): " +
          cond.ToString());
    }
    ColumnId lhs;
    ColumnId rhs;
    SHARING_ASSIGN_OR_RETURN(lhs, ResolveColumn(*cond.children[0]));
    SHARING_ASSIGN_OR_RETURN(rhs, ResolveColumn(*cond.children[1]));
    if (lhs.table == new_table && rhs.table < new_table) {
      *build_key = lhs;
      *probe_key = rhs;
    } else if (rhs.table == new_table && lhs.table < new_table) {
      *build_key = rhs;
      *probe_key = lhs;
    } else {
      return Status::NotImplemented(
          At(cond) +
          "JOIN condition must link the joined table to an earlier one");
    }
    auto type_of = [&](ColumnId id) {
      return tables_[id.table].table->schema().column(id.column).type;
    };
    if (type_of(*build_key) != ValueType::kInt64 ||
        type_of(*probe_key) != ValueType::kInt64) {
      return Status::NotImplemented(
          At(cond) + "only int64 equi-join keys are supported");
    }
    return Status::OK();
  }

  // -------------------------------------------------------------------------
  // Aggregation
  // -------------------------------------------------------------------------

  StatusOr<PlanNodeRef> BuildAggregate(PlanNodeRef child) {
    // Resolve GROUP BY entries to child-output positions.
    std::vector<std::size_t> group_positions;
    std::vector<ColumnId> group_ids;
    for (const auto& group : stmt_.group_by) {
      if (group->kind != SqlExpr::Kind::kColumnRef) {
        return Status::NotImplemented(At(*group) +
                                     "GROUP BY supports plain columns only");
      }
      ColumnId id;
      SHARING_ASSIGN_OR_RETURN(id, ResolveColumn(*group));
      std::pair<std::size_t, ValueType> slot;
      SHARING_ASSIGN_OR_RETURN(slot, PlanScope()(id));
      group_positions.push_back(slot.first);
      group_ids.push_back(id);
    }

    if (stmt_.select_star) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with aggregation");
    }

    // Select items: group columns first (in GROUP BY order), then
    // aggregates — matching the aggregate operator's output layout.
    std::vector<AggSpec> aggs;
    std::set<std::string> used_names;
    std::size_t group_seen = 0;
    for (const auto& item : stmt_.items) {
      if (item.expr->kind == SqlExpr::Kind::kColumnRef) {
        ColumnId id;
        SHARING_ASSIGN_OR_RETURN(id, ResolveColumn(*item.expr));
        if (group_seen >= group_ids.size() ||
            group_ids[group_seen].table != id.table ||
            group_ids[group_seen].column != id.column) {
          return Status::NotImplemented(
              At(*item.expr) + "select item '" + item.expr->ToString() +
              "' must list the GROUP BY columns first, in GROUP BY order");
        }
        ++group_seen;
        continue;
      }
      if (item.expr->kind != SqlExpr::Kind::kAggCall) {
        return Status::NotImplemented(
            At(*item.expr) +
            "select items in an aggregate query must be GROUP BY columns "
            "or aggregate calls: " +
            item.expr->ToString());
      }
      if (group_seen < group_ids.size()) {
        // The aggregate operator emits group columns first; accepting an
        // aggregate here would silently reorder the caller's select list.
        return Status::NotImplemented(
            At(*item.expr) +
            "list all GROUP BY columns before the aggregates");
      }
      AggSpec spec;
      SHARING_ASSIGN_OR_RETURN(spec, LowerAgg(*item.expr, item.alias,
                                              &used_names));
      aggs.push_back(std::move(spec));
    }
    if (group_seen != group_ids.size()) {
      return Status::NotImplemented(
          "every GROUP BY column must appear in the select list");
    }

    return PlanNodeRef(std::make_shared<AggregateNode>(
        std::move(child), std::move(group_positions), std::move(aggs)));
  }

  StatusOr<AggSpec> LowerAgg(const SqlExpr& call, const std::string& alias,
                             std::set<std::string>* used_names) const {
    std::string name = alias;
    if (name.empty()) {
      name = std::string(AggFuncToString(call.agg_func));
      if (!call.agg_star &&
          call.children[0]->kind == SqlExpr::Kind::kColumnRef) {
        name += "_" + call.children[0]->column;
      }
    }
    std::string unique = name;
    for (int suffix = 2; used_names->count(unique) > 0; ++suffix) {
      unique = name + "_" + std::to_string(suffix);
    }
    used_names->insert(unique);

    if (call.agg_star) {
      return AggSpec::Count(std::move(unique));
    }
    ExprRef input;
    SHARING_ASSIGN_OR_RETURN(input, Lower(call.children[0], PlanScope()));
    switch (call.agg_func) {
      case AggFunc::kSum:
        return AggSpec::Sum(std::move(input), std::move(unique));
      case AggFunc::kCount:
        // COUNT(expr) over non-null fixed-width rows == COUNT(*).
        return AggSpec::Count(std::move(unique));
      case AggFunc::kAvg:
        return AggSpec::Avg(std::move(input), std::move(unique));
      case AggFunc::kMin:
        return AggSpec::Min(std::move(input), std::move(unique));
      case AggFunc::kMax:
        return AggSpec::Max(std::move(input), std::move(unique));
    }
    return Status::Internal("unreachable aggregate function");
  }

  // -------------------------------------------------------------------------
  // Plain (non-aggregate) select lists
  // -------------------------------------------------------------------------

  /// Validates a non-aggregate select list and, for the single-table case,
  /// makes the scan projection follow the select-list order. Runs before
  /// plan construction.
  Status PlanPlainSelectList() {
    if (stmt_.select_star) return Status::OK();
    if (tables_.size() > 1) {
      // The join output's column order is fixed by the join tree; an
      // arbitrary select order would need a projection operator above the
      // join, which the engine's stage repertoire does not include.
      return Status::NotImplemented(
          "multi-table queries support SELECT * or aggregation (add an "
          "aggregate or select every column)");
    }
    std::vector<std::size_t> projection;
    for (const auto& item : stmt_.items) {
      if (item.expr->kind != SqlExpr::Kind::kColumnRef) {
        return Status::NotImplemented(
            At(*item.expr) +
            "computed select items are only supported inside aggregates");
      }
      ColumnId id;
      SHARING_ASSIGN_OR_RETURN(id, ResolveColumn(*item.expr));
      projection.push_back(id.column);
    }
    tables_[0].projection = std::move(projection);
    return Status::OK();
  }
  StatusOr<PlanNodeRef> BuildSort(PlanNodeRef child) {
    const Schema& schema = child->output_schema();
    std::vector<SortKey> keys;
    for (const auto& item : stmt_.order_by) {
      auto idx = schema.ColumnIndex(item.name);
      if (!idx.ok()) {
        return Status::InvalidArgument(
            std::to_string(item.line) + ":" + std::to_string(item.column) +
            ": ORDER BY column '" + item.name +
            "' is not in the output (available: " + schema.ToString() + ")");
      }
      keys.push_back(SortKey{idx.value(), item.ascending});
    }
    return PlanNodeRef(std::make_shared<SortNode>(
        std::move(child), std::move(keys), stmt_.has_limit ? stmt_.limit : 0));
  }

  const Catalog& catalog_;
  const SelectStatement& stmt_;

  std::vector<BoundTable> tables_;
  std::vector<std::vector<SqlExprRef>> conjuncts_per_table_;
  std::vector<std::set<std::size_t>> needed_;
  std::vector<ColumnId> lineage_;
};

}  // namespace

StatusOr<PlanNodeRef> BindSelect(const Catalog& catalog,
                                 const SelectStatement& stmt) {
  return Binder(catalog, stmt).Run();
}

StatusOr<PlanNodeRef> CompileSelect(const Catalog& catalog,
                                    std::string_view sql) {
  SelectStatement stmt;
  SHARING_ASSIGN_OR_RETURN(stmt, ParseSelect(sql));
  return BindSelect(catalog, stmt);
}

}  // namespace sharing::sql
