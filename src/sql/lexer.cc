#include "sql/lexer.h"

#include <cctype>
#include <unordered_map>

namespace sharing::sql {

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "integer literal";
    case TokenKind::kDoubleLiteral:
      return "double literal";
    case TokenKind::kStringLiteral:
      return "string literal";
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kGroup:
      return "GROUP";
    case TokenKind::kOrder:
      return "ORDER";
    case TokenKind::kBy:
      return "BY";
    case TokenKind::kAs:
      return "AS";
    case TokenKind::kJoin:
      return "JOIN";
    case TokenKind::kInner:
      return "INNER";
    case TokenKind::kOn:
      return "ON";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kNot:
      return "NOT";
    case TokenKind::kBetween:
      return "BETWEEN";
    case TokenKind::kAsc:
      return "ASC";
    case TokenKind::kDesc:
      return "DESC";
    case TokenKind::kLimit:
      return "LIMIT";
    case TokenKind::kDate:
      return "DATE";
    case TokenKind::kSum:
      return "SUM";
    case TokenKind::kCount:
      return "COUNT";
    case TokenKind::kAvg:
      return "AVG";
    case TokenKind::kMin:
      return "MIN";
    case TokenKind::kMax:
      return "MAX";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kDot:
      return ".";
    case TokenKind::kSemicolon:
      return ";";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kLParen:
      return "(";
    case TokenKind::kRParen:
      return ")";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kPercent:
      return "%";
    case TokenKind::kEq:
      return "=";
    case TokenKind::kNe:
      return "<>";
    case TokenKind::kLt:
      return "<";
    case TokenKind::kLe:
      return "<=";
    case TokenKind::kGt:
      return ">";
    case TokenKind::kGe:
      return ">=";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const auto* kMap = new std::unordered_map<std::string, TokenKind>{
      {"select", TokenKind::kSelect},   {"from", TokenKind::kFrom},
      {"where", TokenKind::kWhere},     {"group", TokenKind::kGroup},
      {"order", TokenKind::kOrder},     {"by", TokenKind::kBy},
      {"as", TokenKind::kAs},           {"join", TokenKind::kJoin},
      {"inner", TokenKind::kInner},     {"on", TokenKind::kOn},
      {"and", TokenKind::kAnd},         {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},         {"between", TokenKind::kBetween},
      {"asc", TokenKind::kAsc},         {"desc", TokenKind::kDesc},
      {"limit", TokenKind::kLimit},     {"date", TokenKind::kDate},
      {"sum", TokenKind::kSum},         {"count", TokenKind::kCount},
      {"avg", TokenKind::kAvg},         {"min", TokenKind::kMin},
      {"max", TokenKind::kMax},
  };
  return *kMap;
}

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view source) : source_(source) {}

  StatusOr<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      Token token;
      token.line = line_;
      token.column = column_;
      if (AtEnd()) {
        token.kind = TokenKind::kEof;
        tokens.push_back(std::move(token));
        return tokens;
      }
      SHARING_RETURN_NOT_OK(LexOne(&token));
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek() const { return AtEnd() ? '\0' : source_[pos_]; }
  char PeekNext() const {
    return pos_ + 1 < source_.size() ? source_[pos_ + 1] : '\0';
  }

  char Advance() {
    char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (Peek() == '-' && PeekNext() == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
        continue;
      }
      return;
    }
  }

  Status ErrorHere(const std::string& message) const {
    return Status::InvalidArgument(std::to_string(line_) + ":" +
                                   std::to_string(column_) + ": " + message);
  }

  Status LexOne(Token* token) {
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdentifierOrKeyword(token);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber(token);
    }
    if (c == '\'') {
      return LexString(token);
    }
    return LexOperator(token);
  }

  Status LexIdentifierOrKeyword(Token* token) {
    std::string word;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        word.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
        Advance();
      } else {
        break;
      }
    }
    auto it = Keywords().find(word);
    if (it != Keywords().end()) {
      token->kind = it->second;
    } else {
      token->kind = TokenKind::kIdentifier;
    }
    token->text = std::move(word);
    return Status::OK();
  }

  Status LexNumber(Token* token) {
    std::string digits;
    bool is_double = false;
    while (!AtEnd() &&
           std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits.push_back(Advance());
    }
    if (Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(PeekNext()))) {
      is_double = true;
      digits.push_back(Advance());
      while (!AtEnd() &&
             std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits.push_back(Advance());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      std::size_t mark = pos_;
      std::string exponent;
      exponent.push_back(Advance());
      if (Peek() == '+' || Peek() == '-') exponent.push_back(Advance());
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        while (!AtEnd() &&
               std::isdigit(static_cast<unsigned char>(Peek()))) {
          exponent.push_back(Advance());
        }
        digits += exponent;
        is_double = true;
      } else {
        // Not an exponent after all ("1e" then junk): rewind is impossible
        // with line tracking, so reject clearly instead.
        (void)mark;
        return ErrorHere("malformed numeric exponent");
      }
    }
    if (is_double) {
      token->kind = TokenKind::kDoubleLiteral;
      token->double_value = std::stod(digits);
    } else {
      token->kind = TokenKind::kIntLiteral;
      errno = 0;
      token->int_value = std::strtoll(digits.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        return ErrorHere("integer literal out of range: " + digits);
      }
    }
    token->text = std::move(digits);
    return Status::OK();
  }

  Status LexString(Token* token) {
    Advance();  // opening quote
    std::string contents;
    for (;;) {
      if (AtEnd()) return ErrorHere("unterminated string literal");
      char c = Advance();
      if (c == '\'') {
        if (Peek() == '\'') {  // '' escapes a quote
          contents.push_back('\'');
          Advance();
          continue;
        }
        break;
      }
      contents.push_back(c);
    }
    token->kind = TokenKind::kStringLiteral;
    token->text = std::move(contents);
    return Status::OK();
  }

  Status LexOperator(Token* token) {
    char c = Advance();
    switch (c) {
      case ',':
        token->kind = TokenKind::kComma;
        return Status::OK();
      case '.':
        token->kind = TokenKind::kDot;
        return Status::OK();
      case ';':
        token->kind = TokenKind::kSemicolon;
        return Status::OK();
      case '*':
        token->kind = TokenKind::kStar;
        return Status::OK();
      case '(':
        token->kind = TokenKind::kLParen;
        return Status::OK();
      case ')':
        token->kind = TokenKind::kRParen;
        return Status::OK();
      case '+':
        token->kind = TokenKind::kPlus;
        return Status::OK();
      case '-':
        token->kind = TokenKind::kMinus;
        return Status::OK();
      case '/':
        token->kind = TokenKind::kSlash;
        return Status::OK();
      case '%':
        token->kind = TokenKind::kPercent;
        return Status::OK();
      case '=':
        token->kind = TokenKind::kEq;
        return Status::OK();
      case '<':
        if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kLe;
        } else if (Peek() == '>') {
          Advance();
          token->kind = TokenKind::kNe;
        } else {
          token->kind = TokenKind::kLt;
        }
        return Status::OK();
      case '>':
        if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kGe;
        } else {
          token->kind = TokenKind::kGt;
        }
        return Status::OK();
      case '!':
        if (Peek() == '=') {
          Advance();
          token->kind = TokenKind::kNe;
          return Status::OK();
        }
        return ErrorHere("unexpected character '!'");
      default:
        return ErrorHere(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  return LexerImpl(source).Run();
}

}  // namespace sharing::sql
