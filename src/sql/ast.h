// SQL abstract syntax tree (unbound).
//
// The parser produces this name-based tree; the binder resolves names
// against the catalog and lowers it to the engine's PlanNode/Expr layer.
// Keeping the two layers separate means parse errors carry source
// positions while plan signatures stay purely structural.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "exec/expr.h"

namespace sharing::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct SqlExpr;
using SqlExprRef = std::shared_ptr<const SqlExpr>;

/// Aggregate functions usable in a select list.
enum class AggFunc : uint8_t { kSum, kCount, kAvg, kMin, kMax };

std::string_view AggFuncToString(AggFunc func);

struct SqlExpr {
  enum class Kind : uint8_t {
    kColumnRef,  // [qualifier.]name
    kLiteral,    // int / double / string / date
    kCompare,    // lhs op rhs
    kArith,      // lhs op rhs
    kAnd,
    kOr,
    kNot,
    kBetween,    // value BETWEEN lo AND hi
    kAggCall,    // SUM(expr) / COUNT(*) / ...
  };

  Kind kind;

  // kColumnRef.
  std::string qualifier;  // table name or alias; empty if unqualified
  std::string column;

  // kLiteral.
  Value literal;

  // kCompare / kArith.
  CmpOp cmp_op = CmpOp::kEq;
  ArithOp arith_op = ArithOp::kAdd;

  // kAggCall.
  AggFunc agg_func = AggFunc::kCount;
  bool agg_star = false;  // COUNT(*)

  // Children: operands for compare/arith/and/or/not/between/agg.
  std::vector<SqlExprRef> children;

  // Source position of the expression's head token.
  int line = 0;
  int column_pos = 0;

  /// True if this subtree contains an aggregate call.
  bool ContainsAggregate() const;

  /// Debug rendering (tests and error messages).
  std::string ToString() const;
};

SqlExprRef MakeColumnRef(std::string qualifier, std::string column, int line,
                         int col);
SqlExprRef MakeLiteral(Value v, int line, int col);
SqlExprRef MakeCompare(CmpOp op, SqlExprRef lhs, SqlExprRef rhs);
SqlExprRef MakeArith(ArithOp op, SqlExprRef lhs, SqlExprRef rhs);
SqlExprRef MakeAnd(SqlExprRef lhs, SqlExprRef rhs);
SqlExprRef MakeOr(SqlExprRef lhs, SqlExprRef rhs);
SqlExprRef MakeNot(SqlExprRef operand);
SqlExprRef MakeBetween(SqlExprRef value, SqlExprRef lo, SqlExprRef hi);
SqlExprRef MakeAggCall(AggFunc func, SqlExprRef argument, bool star, int line,
                       int col);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct SelectItem {
  SqlExprRef expr;
  std::string alias;  // empty if none
};

struct TableRef {
  std::string table;  // catalog name
  std::string alias;  // defaults to table name
  int line = 0;
  int column = 0;
};

struct JoinClause {
  TableRef table;
  SqlExprRef condition;  // the ON expression
};

struct OrderItem {
  std::string name;  // output column name or select alias
  bool ascending = true;
  int line = 0;
  int column = 0;
};

/// One parsed SELECT statement.
struct SelectStatement {
  bool select_star = false;
  std::vector<SelectItem> items;  // empty iff select_star

  TableRef from;
  std::vector<JoinClause> joins;

  SqlExprRef where;  // null if absent

  std::vector<SqlExprRef> group_by;  // column refs

  std::vector<OrderItem> order_by;
  uint64_t limit = 0;  // 0 = no limit
  bool has_limit = false;

  std::string ToString() const;
};

}  // namespace sharing::sql
