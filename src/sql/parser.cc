#include "sql/parser.h"

#include <cstdio>

#include "sql/lexer.h"

namespace sharing::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SelectStatement> Run() {
    SelectStatement stmt;
    SHARING_RETURN_NOT_OK(ParseSelect(&stmt));
    if (Check(TokenKind::kSemicolon)) Advance();
    if (!Check(TokenKind::kEof)) {
      return ErrorAtCurrent("trailing input after statement");
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  bool Check(TokenKind kind) const { return Current().kind == kind; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  Status ErrorAtCurrent(const std::string& message) const {
    return Status::InvalidArgument(Current().Position() + ": " + message +
                                   " (got " +
                                   std::string(TokenKindToString(
                                       Current().kind)) +
                                   ")");
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!Check(kind)) {
      return ErrorAtCurrent(std::string("expected ") + what);
    }
    Advance();
    return Status::OK();
  }

  /// Soft keywords: words that are keywords only by position (DATE before
  /// a string literal, aggregate functions before '('). Everywhere a name
  /// is expected they act as plain identifiers, so tables like SSB's
  /// `date` or a column called `count` remain addressable.
  static bool IsNameLike(TokenKind kind) {
    switch (kind) {
      case TokenKind::kIdentifier:
      case TokenKind::kDate:
      case TokenKind::kSum:
      case TokenKind::kCount:
      case TokenKind::kAvg:
      case TokenKind::kMin:
      case TokenKind::kMax:
        return true;
      default:
        return false;
    }
  }

  const Token& PeekNext() const {
    return pos_ + 1 < tokens_.size() ? tokens_[pos_ + 1] : tokens_.back();
  }

  static bool IsAggKeyword(TokenKind kind) {
    switch (kind) {
      case TokenKind::kSum:
      case TokenKind::kCount:
      case TokenKind::kAvg:
      case TokenKind::kMin:
      case TokenKind::kMax:
        return true;
      default:
        return false;
    }
  }

  static AggFunc AggFuncFor(TokenKind kind) {
    switch (kind) {
      case TokenKind::kSum:
        return AggFunc::kSum;
      case TokenKind::kCount:
        return AggFunc::kCount;
      case TokenKind::kAvg:
        return AggFunc::kAvg;
      case TokenKind::kMin:
        return AggFunc::kMin;
      default:
        return AggFunc::kMax;
    }
  }

  // -------------------------------------------------------------------------
  // Statement structure
  // -------------------------------------------------------------------------

  Status ParseSelect(SelectStatement* stmt) {
    SHARING_RETURN_NOT_OK(Expect(TokenKind::kSelect, "SELECT"));

    if (Match(TokenKind::kStar)) {
      stmt->select_star = true;
    } else {
      do {
        SelectItem item;
        SHARING_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Match(TokenKind::kAs)) {
          if (!Check(TokenKind::kIdentifier)) {
            return ErrorAtCurrent("expected alias after AS");
          }
          item.alias = Advance().text;
        } else if (Check(TokenKind::kIdentifier)) {
          item.alias = Advance().text;
        }
        stmt->items.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }

    SHARING_RETURN_NOT_OK(Expect(TokenKind::kFrom, "FROM"));
    SHARING_RETURN_NOT_OK(ParseTableRef(&stmt->from));

    while (Check(TokenKind::kJoin) || Check(TokenKind::kInner)) {
      if (Match(TokenKind::kInner)) {
        SHARING_RETURN_NOT_OK(Expect(TokenKind::kJoin, "JOIN after INNER"));
      } else {
        Advance();  // JOIN
      }
      JoinClause join;
      SHARING_RETURN_NOT_OK(ParseTableRef(&join.table));
      SHARING_RETURN_NOT_OK(Expect(TokenKind::kOn, "ON"));
      SHARING_ASSIGN_OR_RETURN(join.condition, ParseExpr());
      stmt->joins.push_back(std::move(join));
    }

    if (Match(TokenKind::kWhere)) {
      SHARING_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }

    if (Match(TokenKind::kGroup)) {
      SHARING_RETURN_NOT_OK(Expect(TokenKind::kBy, "BY after GROUP"));
      do {
        SqlExprRef ref;
        SHARING_ASSIGN_OR_RETURN(ref, ParseColumnRef());
        stmt->group_by.push_back(std::move(ref));
      } while (Match(TokenKind::kComma));
    }

    if (Match(TokenKind::kOrder)) {
      SHARING_RETURN_NOT_OK(Expect(TokenKind::kBy, "BY after ORDER"));
      do {
        if (!Check(TokenKind::kIdentifier)) {
          return ErrorAtCurrent("expected output column name in ORDER BY");
        }
        OrderItem item;
        const Token& name = Advance();
        item.name = name.text;
        item.line = name.line;
        item.column = name.column;
        if (Match(TokenKind::kDesc)) {
          item.ascending = false;
        } else {
          Match(TokenKind::kAsc);
        }
        stmt->order_by.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }

    if (Match(TokenKind::kLimit)) {
      if (!Check(TokenKind::kIntLiteral)) {
        return ErrorAtCurrent("expected integer after LIMIT");
      }
      const Token& n = Advance();
      if (n.int_value <= 0) {
        return Status::InvalidArgument(n.Position() +
                                       ": LIMIT must be positive");
      }
      stmt->limit = static_cast<uint64_t>(n.int_value);
      stmt->has_limit = true;
    }
    return Status::OK();
  }

  Status ParseTableRef(TableRef* ref) {
    if (!IsNameLike(Current().kind)) {
      return ErrorAtCurrent("expected table name");
    }
    const Token& name = Advance();
    ref->table = name.text;
    ref->alias = name.text;
    ref->line = name.line;
    ref->column = name.column;
    if (Match(TokenKind::kAs)) {
      if (!Check(TokenKind::kIdentifier)) {
        return ErrorAtCurrent("expected alias after AS");
      }
      ref->alias = Advance().text;
    } else if (Check(TokenKind::kIdentifier)) {
      ref->alias = Advance().text;
    }
    return Status::OK();
  }

  StatusOr<SqlExprRef> ParseColumnRef() {
    if (!IsNameLike(Current().kind)) {
      return ErrorAtCurrent("expected column reference");
    }
    const Token& first = Advance();
    if (Match(TokenKind::kDot)) {
      if (!IsNameLike(Current().kind)) {
        return ErrorAtCurrent("expected column name after '.'");
      }
      const Token& second = Advance();
      return MakeColumnRef(first.text, second.text, first.line, first.column);
    }
    return MakeColumnRef("", first.text, first.line, first.column);
  }

  // -------------------------------------------------------------------------
  // Expressions
  // -------------------------------------------------------------------------

  StatusOr<SqlExprRef> ParseExpr() { return ParseOr(); }

  StatusOr<SqlExprRef> ParseOr() {
    SqlExprRef lhs;
    SHARING_ASSIGN_OR_RETURN(lhs, ParseAnd());
    while (Match(TokenKind::kOr)) {
      SqlExprRef rhs;
      SHARING_ASSIGN_OR_RETURN(rhs, ParseAnd());
      lhs = MakeOr(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<SqlExprRef> ParseAnd() {
    SqlExprRef lhs;
    SHARING_ASSIGN_OR_RETURN(lhs, ParseNot());
    while (Match(TokenKind::kAnd)) {
      SqlExprRef rhs;
      SHARING_ASSIGN_OR_RETURN(rhs, ParseNot());
      lhs = MakeAnd(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<SqlExprRef> ParseNot() {
    if (Match(TokenKind::kNot)) {
      SqlExprRef operand;
      SHARING_ASSIGN_OR_RETURN(operand, ParseNot());
      return MakeNot(std::move(operand));
    }
    return ParseComparison();
  }

  StatusOr<SqlExprRef> ParseComparison() {
    SqlExprRef lhs;
    SHARING_ASSIGN_OR_RETURN(lhs, ParseAdditive());

    if (Match(TokenKind::kBetween)) {
      SqlExprRef lo;
      SHARING_ASSIGN_OR_RETURN(lo, ParseAdditive());
      SHARING_RETURN_NOT_OK(Expect(TokenKind::kAnd, "AND in BETWEEN"));
      SqlExprRef hi;
      SHARING_ASSIGN_OR_RETURN(hi, ParseAdditive());
      return MakeBetween(std::move(lhs), std::move(lo), std::move(hi));
    }

    CmpOp op;
    switch (Current().kind) {
      case TokenKind::kEq:
        op = CmpOp::kEq;
        break;
      case TokenKind::kNe:
        op = CmpOp::kNe;
        break;
      case TokenKind::kLt:
        op = CmpOp::kLt;
        break;
      case TokenKind::kLe:
        op = CmpOp::kLe;
        break;
      case TokenKind::kGt:
        op = CmpOp::kGt;
        break;
      case TokenKind::kGe:
        op = CmpOp::kGe;
        break;
      default:
        return lhs;  // no comparison
    }
    Advance();
    SqlExprRef rhs;
    SHARING_ASSIGN_OR_RETURN(rhs, ParseAdditive());
    return MakeCompare(op, std::move(lhs), std::move(rhs));
  }

  StatusOr<SqlExprRef> ParseAdditive() {
    SqlExprRef lhs;
    SHARING_ASSIGN_OR_RETURN(lhs, ParseMultiplicative());
    for (;;) {
      ArithOp op;
      if (Check(TokenKind::kPlus)) {
        op = ArithOp::kAdd;
      } else if (Check(TokenKind::kMinus)) {
        op = ArithOp::kSub;
      } else {
        return lhs;
      }
      Advance();
      SqlExprRef rhs;
      SHARING_ASSIGN_OR_RETURN(rhs, ParseMultiplicative());
      lhs = MakeArith(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<SqlExprRef> ParseMultiplicative() {
    SqlExprRef lhs;
    SHARING_ASSIGN_OR_RETURN(lhs, ParseUnary());
    for (;;) {
      ArithOp op;
      if (Check(TokenKind::kStar)) {
        op = ArithOp::kMul;
      } else if (Check(TokenKind::kSlash)) {
        op = ArithOp::kDiv;
      } else if (Check(TokenKind::kPercent)) {
        op = ArithOp::kMod;
      } else {
        return lhs;
      }
      Advance();
      SqlExprRef rhs;
      SHARING_ASSIGN_OR_RETURN(rhs, ParseUnary());
      lhs = MakeArith(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<SqlExprRef> ParseUnary() {
    if (Check(TokenKind::kMinus)) {
      const Token& minus = Advance();
      SqlExprRef operand;
      SHARING_ASSIGN_OR_RETURN(operand, ParseUnary());
      // Lower unary minus as 0 - operand (the expression layer has no
      // negate node, and constant folding is not worth a separate path).
      return MakeArith(ArithOp::kSub,
                       MakeLiteral(Value(int64_t{0}), minus.line,
                                   minus.column),
                       std::move(operand));
    }
    return ParsePrimary();
  }

  StatusOr<SqlExprRef> ParsePrimary() {
    const Token& token = Current();
    switch (token.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return MakeLiteral(Value(token.int_value), token.line, token.column);
      case TokenKind::kDoubleLiteral:
        Advance();
        return MakeLiteral(Value(token.double_value), token.line,
                           token.column);
      case TokenKind::kStringLiteral:
        Advance();
        return MakeLiteral(Value(token.text), token.line, token.column);
      case TokenKind::kDate:
        if (PeekNext().kind == TokenKind::kStringLiteral) {
          return ParseDateLiteral();
        }
        return ParseColumnRef();  // soft keyword used as a name
      case TokenKind::kLParen: {
        Advance();
        SqlExprRef inner;
        SHARING_ASSIGN_OR_RETURN(inner, ParseExpr());
        SHARING_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdentifier:
        return ParseColumnRef();
      default:
        if (IsAggKeyword(token.kind)) {
          if (PeekNext().kind == TokenKind::kLParen) return ParseAggCall();
          return ParseColumnRef();  // soft keyword used as a name
        }
        return ErrorAtCurrent("expected expression");
    }
  }

  StatusOr<SqlExprRef> ParseDateLiteral() {
    const Token& kw = Advance();  // DATE
    if (!Check(TokenKind::kStringLiteral)) {
      return ErrorAtCurrent("expected 'yyyy-mm-dd' string after DATE");
    }
    const Token& lit = Advance();
    int year = 0;
    int month = 0;
    int day = 0;
    if (std::sscanf(lit.text.c_str(), "%d-%d-%d", &year, &month, &day) != 3 ||
        month < 1 || month > 12 || day < 1 || day > 31 ||
        year < kDateEpochYear || year > 2199) {
      return Status::InvalidArgument(lit.Position() +
                                     ": malformed date literal '" +
                                     lit.text + "'");
    }
    return MakeLiteral(Value(MakeDate(year, month, day)), kw.line, kw.column);
  }

  StatusOr<SqlExprRef> ParseAggCall() {
    const Token& func_token = Advance();
    AggFunc func = AggFuncFor(func_token.kind);
    SHARING_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    if (Match(TokenKind::kStar)) {
      if (func != AggFunc::kCount) {
        return Status::InvalidArgument(
            func_token.Position() + ": '*' argument is only valid in COUNT");
      }
      SHARING_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return MakeAggCall(func, nullptr, /*star=*/true, func_token.line,
                         func_token.column);
    }
    SqlExprRef argument;
    SHARING_ASSIGN_OR_RETURN(argument, ParseExpr());
    if (argument->ContainsAggregate()) {
      return Status::InvalidArgument(func_token.Position() +
                                     ": nested aggregates are not allowed");
    }
    SHARING_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return MakeAggCall(func, std::move(argument), /*star=*/false,
                       func_token.line, func_token.column);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<SelectStatement> ParseSelect(std::string_view source) {
  std::vector<Token> tokens;
  SHARING_ASSIGN_OR_RETURN(tokens, Tokenize(source));
  return Parser(std::move(tokens)).Run();
}

}  // namespace sharing::sql
