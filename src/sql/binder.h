// SQL binder: SelectStatement + Catalog -> executable PlanNode tree.
//
// The binder performs name resolution and lowers the statement onto the
// engine's operator repertoire:
//
//  * every WHERE conjunct is pushed down to the scan of the one table it
//    references (cross-table residual predicates are reported as
//    unsupported rather than silently mis-evaluated);
//  * JOIN ... ON clauses must be single-column int64 equi-joins; joins
//    build left-deep in statement order with the newly joined table on the
//    build side (dimensions join facts, as in the star workloads);
//  * GROUP BY / aggregate select lists lower to AggregateNode; ORDER BY /
//    LIMIT lower to SortNode (top-k when LIMIT is present).
//
// The subset is exactly what the paper's workloads (TPC-H Q1/Q6, the 13
// SSB queries, the demo's parameterized star template) need, with clear
// errors at the boundary.

#pragma once

#include <string_view>

#include "common/status_or.h"
#include "exec/plan.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace sharing::sql {

/// Binds a parsed statement against `catalog`.
StatusOr<PlanNodeRef> BindSelect(const Catalog& catalog,
                                 const SelectStatement& stmt);

/// Parse + bind in one step: SQL text to executable plan.
StatusOr<PlanNodeRef> CompileSelect(const Catalog& catalog,
                                    std::string_view sql);

}  // namespace sharing::sql
