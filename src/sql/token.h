// SQL tokens.
//
// The front-end accepts the analytical subset the paper's workloads need:
// SELECT / FROM / JOIN ... ON / WHERE / GROUP BY / ORDER BY / LIMIT with
// arithmetic, comparisons, BETWEEN, AND/OR/NOT, and int / double / string /
// DATE literals. Keywords are case-insensitive, identifiers are folded to
// lower case (there are no quoted identifiers).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sharing::sql {

enum class TokenKind : uint8_t {
  // Literals and names.
  kIdentifier,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,

  // Keywords.
  kSelect,
  kFrom,
  kWhere,
  kGroup,
  kOrder,
  kBy,
  kAs,
  kJoin,
  kInner,
  kOn,
  kAnd,
  kOr,
  kNot,
  kBetween,
  kAsc,
  kDesc,
  kLimit,
  kDate,
  kSum,
  kCount,
  kAvg,
  kMin,
  kMax,

  // Punctuation and operators.
  kComma,
  kDot,
  kSemicolon,
  kStar,
  kLParen,
  kRParen,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,

  kEof,
};

std::string_view TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;

  /// Identifier (lower-cased) or string-literal contents.
  std::string text;

  /// Literal payloads.
  int64_t int_value = 0;
  double double_value = 0.0;

  /// 1-based source position, for error messages.
  int line = 1;
  int column = 1;

  /// "line:col" for diagnostics.
  std::string Position() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

}  // namespace sharing::sql
