// SQL parser: token stream -> SelectStatement.
//
// Grammar (recursive descent, standard precedence):
//
//   select    := SELECT ('*' | item (',' item)*) FROM table_ref join*
//                (WHERE expr)? (GROUP BY column_ref (',' column_ref)*)?
//                (ORDER BY order_item (',' order_item)*)? (LIMIT int)? ';'?
//   item      := expr (AS? identifier)?
//   table_ref := identifier (AS? identifier)?
//   join      := (INNER)? JOIN table_ref ON expr
//   expr      := or ;  or := and (OR and)* ;  and := not (AND not)*
//   not       := NOT not | cmp
//   cmp       := add (cmpop add | BETWEEN add AND add)?
//   add       := mul (('+'|'-') mul)*
//   mul       := unary (('*'|'/'|'%') unary)*
//   unary     := '-' unary | primary
//   primary   := literal | DATE 'yyyy-mm-dd' | aggfunc '(' ('*'|expr) ')'
//              | identifier ('.' identifier)? | '(' expr ')'

#pragma once

#include <string_view>

#include "common/status_or.h"
#include "sql/ast.h"

namespace sharing::sql {

/// Parses one SELECT statement. Errors carry "line:col" positions.
StatusOr<SelectStatement> ParseSelect(std::string_view source);

}  // namespace sharing::sql
