// SQL lexer: source text -> token stream.

#pragma once

#include <string_view>
#include <vector>

#include "common/status_or.h"
#include "sql/token.h"

namespace sharing::sql {

/// Tokenizes `source`. The returned vector always ends with a kEof token.
/// Errors carry the offending position ("3:14: unexpected character ...").
StatusOr<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace sharing::sql
