#include "sql/ast.h"

#include <sstream>

namespace sharing::sql {

std::string_view AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

namespace {

// SQL spellings (the exec layer's canonical forms differ, e.g. "==").
std::string_view SqlCmpSpelling(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view SqlArithSpelling(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

}  // namespace

bool SqlExpr::ContainsAggregate() const {
  if (kind == Kind::kAggCall) return true;
  for (const auto& child : children) {
    if (child->ContainsAggregate()) return true;
  }
  return false;
}

std::string SqlExpr::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kColumnRef:
      if (!qualifier.empty()) out << qualifier << ".";
      out << column;
      break;
    case Kind::kLiteral:
      out << ValueToString(literal);
      break;
    case Kind::kCompare:
      out << "(" << children[0]->ToString() << " " << SqlCmpSpelling(cmp_op)
          << " " << children[1]->ToString() << ")";
      break;
    case Kind::kArith:
      out << "(" << children[0]->ToString() << " "
          << SqlArithSpelling(arith_op) << " " << children[1]->ToString()
          << ")";
      break;
    case Kind::kAnd:
      out << "(" << children[0]->ToString() << " AND "
          << children[1]->ToString() << ")";
      break;
    case Kind::kOr:
      out << "(" << children[0]->ToString() << " OR "
          << children[1]->ToString() << ")";
      break;
    case Kind::kNot:
      out << "(NOT " << children[0]->ToString() << ")";
      break;
    case Kind::kBetween:
      out << "(" << children[0]->ToString() << " BETWEEN "
          << children[1]->ToString() << " AND " << children[2]->ToString()
          << ")";
      break;
    case Kind::kAggCall:
      out << AggFuncToString(agg_func) << "(";
      if (agg_star) {
        out << "*";
      } else {
        out << children[0]->ToString();
      }
      out << ")";
      break;
  }
  return out.str();
}

namespace {

std::shared_ptr<SqlExpr> NewExpr(SqlExpr::Kind kind) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = kind;
  return e;
}

}  // namespace

SqlExprRef MakeColumnRef(std::string qualifier, std::string column, int line,
                         int col) {
  auto e = NewExpr(SqlExpr::Kind::kColumnRef);
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  e->line = line;
  e->column_pos = col;
  return e;
}

SqlExprRef MakeLiteral(Value v, int line, int col) {
  auto e = NewExpr(SqlExpr::Kind::kLiteral);
  e->literal = std::move(v);
  e->line = line;
  e->column_pos = col;
  return e;
}

SqlExprRef MakeCompare(CmpOp op, SqlExprRef lhs, SqlExprRef rhs) {
  auto e = NewExpr(SqlExpr::Kind::kCompare);
  e->cmp_op = op;
  e->line = lhs->line;
  e->column_pos = lhs->column_pos;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

SqlExprRef MakeArith(ArithOp op, SqlExprRef lhs, SqlExprRef rhs) {
  auto e = NewExpr(SqlExpr::Kind::kArith);
  e->arith_op = op;
  e->line = lhs->line;
  e->column_pos = lhs->column_pos;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

SqlExprRef MakeAnd(SqlExprRef lhs, SqlExprRef rhs) {
  auto e = NewExpr(SqlExpr::Kind::kAnd);
  e->line = lhs->line;
  e->column_pos = lhs->column_pos;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

SqlExprRef MakeOr(SqlExprRef lhs, SqlExprRef rhs) {
  auto e = NewExpr(SqlExpr::Kind::kOr);
  e->line = lhs->line;
  e->column_pos = lhs->column_pos;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

SqlExprRef MakeNot(SqlExprRef operand) {
  auto e = NewExpr(SqlExpr::Kind::kNot);
  e->line = operand->line;
  e->column_pos = operand->column_pos;
  e->children = {std::move(operand)};
  return e;
}

SqlExprRef MakeBetween(SqlExprRef value, SqlExprRef lo, SqlExprRef hi) {
  auto e = NewExpr(SqlExpr::Kind::kBetween);
  e->line = value->line;
  e->column_pos = value->column_pos;
  e->children = {std::move(value), std::move(lo), std::move(hi)};
  return e;
}

SqlExprRef MakeAggCall(AggFunc func, SqlExprRef argument, bool star, int line,
                       int col) {
  auto e = NewExpr(SqlExpr::Kind::kAggCall);
  e->agg_func = func;
  e->agg_star = star;
  e->line = line;
  e->column_pos = col;
  if (argument != nullptr) e->children = {std::move(argument)};
  return e;
}

std::string SelectStatement::ToString() const {
  std::ostringstream out;
  out << "SELECT ";
  if (select_star) {
    out << "*";
  } else {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) out << ", ";
      out << items[i].expr->ToString();
      if (!items[i].alias.empty()) out << " AS " << items[i].alias;
    }
  }
  out << " FROM " << from.table;
  if (from.alias != from.table) out << " AS " << from.alias;
  for (const auto& join : joins) {
    out << " JOIN " << join.table.table;
    if (join.table.alias != join.table.table) {
      out << " AS " << join.table.alias;
    }
    out << " ON " << join.condition->ToString();
  }
  if (where) out << " WHERE " << where->ToString();
  if (!group_by.empty()) {
    out << " GROUP BY ";
    for (std::size_t i = 0; i < group_by.size(); ++i) {
      if (i) out << ", ";
      out << group_by[i]->ToString();
    }
  }
  if (!order_by.empty()) {
    out << " ORDER BY ";
    for (std::size_t i = 0; i < order_by.size(); ++i) {
      if (i) out << ", ";
      out << order_by[i].name << (order_by[i].ascending ? "" : " DESC");
    }
  }
  if (has_limit) out << " LIMIT " << limit;
  return out.str();
}

}  // namespace sharing::sql
