// SharingEngine: the unified system of the demo — QPipe (reactive sharing,
// push- or pull-based SP) with the CJOIN stage (proactive sharing, GQP)
// integrated, switchable at run time between five execution modes:
//
//   kQueryCentric  query-centric operators (+ shared circular scans)
//   kSpPush        SP with the original push-based FIFO-copy model
//   kSpPull        SP with the Shared Pages List (pull model)
//   kGqp           star joins through the CJOIN global query plan
//   kGqpSp         GQP plus SP on the CJOIN stage (sharing combined)
//
// The same PlanNode trees run under every mode, which is what makes the
// paper's head-to-head comparisons (and our equivalence tests) possible.

#pragma once

#include <memory>
#include <string_view>

#include "cjoin/cjoin_stage.h"
#include "core/database.h"
#include "qpipe/engine.h"

namespace sharing {

enum class EngineMode {
  kQueryCentric,
  kSpPush,
  kSpPull,
  /// Adaptive SP: every QPipe stage picks off/push/pull per packet from
  /// live stage statistics (see AdaptiveSpPolicy).
  kSpAdaptive,
  kGqp,
  kGqpSp,
};

std::string_view EngineModeToString(EngineMode mode);

struct EngineConfig {
  EngineMode mode = EngineMode::kQueryCentric;

  /// Initial workers per QPipe stage (elastic beyond that).
  std::size_t stage_workers = 2;

  /// Cap on each stage's elastic pool (the demo's core-binding knob; see
  /// Stage::Options::max_workers for the deadlock caveat).
  std::size_t stage_max_workers = 1024;

  /// Circular shared scans at the I/O layer.
  bool shared_scans = true;

  std::size_t fifo_capacity = 8;

  /// Pages per batched sharing-transport call (see
  /// QPipeOptions::sp_read_batch); 0 or 1 = page-at-a-time.
  std::size_t sp_read_batch = 8;

  /// Thresholds for the adaptive SP admission policy (kSpAdaptive mode,
  /// or any stage later switched to SpMode::kAdaptive). Fallback only
  /// once a signature has cost-model history — see the knobs below.
  AdaptiveSpPolicy adaptive;

  /// Per-signature admission cost model (see QPipeOptions for full
  /// semantics): ring-buffer history per packet signature, minimum
  /// samples before the model overrides the stage-wide thresholds, and
  /// a per-decision debug dump.
  std::size_t cost_model_history = 32;
  std::size_t cost_model_min_samples = 3;
  bool cost_model_debug = false;

  /// Engine-wide in-memory SP page budget for pull-model retention
  /// (0 = unbounded). Over budget, sharing channels spill
  /// already-consumed pages to a temp file and fault them back on
  /// demand — the memory/latency trade of the spill tier (DESIGN.md
  /// decision #7).
  std::size_t sp_memory_budget = 0;

  /// Backing file for spilled SP pages; empty picks a unique temp file.
  std::string sp_spill_path;

  /// Async I/O scheduler (see QPipeOptions for full semantics):
  /// worker threads (0 = no scheduler, fully synchronous I/O),
  /// per-priority-class MiB/s budget (0 = unthrottled), the in-flight
  /// spill-write window, and circular-scan readahead depth.
  std::size_t io_threads = 2;
  std::size_t io_budget_mib = 0;
  std::size_t spill_write_window = 16;
  std::size_t scan_prefetch_depth = 4;

  /// Observability (see QPipeOptions for full semantics): query-lifecycle
  /// tracing (process-wide recorder, Chrome trace-event export), its
  /// per-thread ring capacity, and the periodic metrics reporter (0 = no
  /// reporter thread; empty path = stderr).
  bool trace_enabled = false;
  std::size_t trace_buffer_events = 8192;
  std::size_t stats_report_period_ms = 0;
  std::string stats_report_path;

  /// Embedded admin/introspection server and its stall watchdog (see
  /// QPipeOptions and docs/ADMIN.md): admin_port -1 = no TCP listener,
  /// 0 = ephemeral on 127.0.0.1, >0 = that port; the server runs iff a
  /// TCP or UDS listener is configured. The watchdog thread runs iff
  /// the server is enabled and watchdog_period_ms > 0.
  int admin_port = -1;
  std::string admin_uds_path;
  std::size_t watchdog_period_ms = 1000;
  std::size_t watchdog_query_slo_ms = 10000;
  std::size_t watchdog_parked_reader_ms = 5000;
  std::size_t watchdog_io_queue_depth = 256;
  std::size_t watchdog_spill_thrash_pages = 512;

  /// Robustness (see QPipeOptions for full semantics): escalate the
  /// watchdog's over-SLO flag to a cancellation; a per-query wall-clock
  /// deadline in ms (0 = none) after which Collect returns
  /// kDeadlineExceeded; bounded retries for transient I/O failures; and
  /// a fault-injection schedule armed at construction (empty = none —
  /// see docs/ROBUSTNESS.md for the spec grammar).
  bool watchdog_cancel_over_slo = false;
  std::size_t query_timeout_ms = 0;
  std::size_t io_retry_limit = 0;
  std::string fault_spec;

  /// CJOIN configuration; the pipeline is built iff `fact_table` is
  /// non-empty (GQP modes require it).
  std::string fact_table;
  std::vector<CJoinLevelSpec> cjoin_levels;
  CJoinOptions cjoin;
};

class SharingEngine {
 public:
  SharingEngine(Database* db, EngineConfig config);
  ~SharingEngine();

  SHARING_DISALLOW_COPY_AND_MOVE(SharingEngine);

  /// Switches execution mode at run time (the demo GUI's engine selector).
  void SetMode(EngineMode mode);
  EngineMode mode() const { return config_.mode; }

  QueryHandle Submit(PlanNodeRef plan) { return qpipe_->Submit(plan); }
  StatusOr<ResultSet> Execute(PlanNodeRef plan) {
    return qpipe_->Execute(plan);
  }

  Database* database() { return db_; }
  QPipeEngine* qpipe() { return qpipe_.get(); }
  CJoinPipeline* cjoin_pipeline() { return pipeline_.get(); }
  CJoinStage* cjoin_stage() { return cjoin_stage_.get(); }

 private:
  Database* db_;
  EngineConfig config_;
  std::unique_ptr<QPipeEngine> qpipe_;
  std::unique_ptr<CJoinPipeline> pipeline_;
  std::shared_ptr<CJoinStage> cjoin_stage_;
};

}  // namespace sharing
