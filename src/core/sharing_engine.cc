#include "core/sharing_engine.h"

#include "common/logging.h"

namespace sharing {

std::string_view EngineModeToString(EngineMode mode) {
  switch (mode) {
    case EngineMode::kQueryCentric:
      return "query-centric";
    case EngineMode::kSpPush:
      return "sp-push";
    case EngineMode::kSpPull:
      return "sp-pull";
    case EngineMode::kSpAdaptive:
      return "sp-adaptive";
    case EngineMode::kGqp:
      return "gqp";
    case EngineMode::kGqpSp:
      return "gqp+sp";
  }
  return "?";
}

SharingEngine::SharingEngine(Database* db, EngineConfig config)
    : db_(db), config_(std::move(config)) {
  QPipeOptions qopts;
  qopts.shared_scans = config_.shared_scans;
  qopts.stage_workers = config_.stage_workers;
  qopts.stage_max_workers = config_.stage_max_workers;
  qopts.fifo_capacity = config_.fifo_capacity;
  qopts.sp_read_batch = config_.sp_read_batch;
  qopts.adaptive = config_.adaptive;
  qopts.cost_model_history = config_.cost_model_history;
  qopts.cost_model_min_samples = config_.cost_model_min_samples;
  qopts.cost_model_debug = config_.cost_model_debug;
  qopts.sp_memory_budget = config_.sp_memory_budget;
  qopts.sp_spill_path = config_.sp_spill_path;
  qopts.io_threads = config_.io_threads;
  qopts.io_budget_mib = config_.io_budget_mib;
  qopts.spill_write_window = config_.spill_write_window;
  qopts.scan_prefetch_depth = config_.scan_prefetch_depth;
  qopts.trace_enabled = config_.trace_enabled;
  qopts.trace_buffer_events = config_.trace_buffer_events;
  qopts.stats_report_period_ms = config_.stats_report_period_ms;
  qopts.stats_report_path = config_.stats_report_path;
  qopts.admin_port = config_.admin_port;
  qopts.admin_uds_path = config_.admin_uds_path;
  qopts.watchdog_period_ms = config_.watchdog_period_ms;
  qopts.watchdog_query_slo_ms = config_.watchdog_query_slo_ms;
  qopts.watchdog_parked_reader_ms = config_.watchdog_parked_reader_ms;
  qopts.watchdog_io_queue_depth = config_.watchdog_io_queue_depth;
  qopts.watchdog_spill_thrash_pages = config_.watchdog_spill_thrash_pages;
  qopts.watchdog_cancel_over_slo = config_.watchdog_cancel_over_slo;
  qopts.query_timeout_ms = config_.query_timeout_ms;
  qopts.io_retry_limit = config_.io_retry_limit;
  qopts.fault_spec = config_.fault_spec;
  qpipe_ = std::make_unique<QPipeEngine>(db_->catalog(), qopts,
                                         db_->metrics());

  if (!config_.fact_table.empty()) {
    pipeline_ = std::make_unique<CJoinPipeline>(
        db_->catalog(), config_.fact_table, config_.cjoin_levels,
        config_.cjoin, db_->metrics());
    Stage::Options sopts;
    sopts.initial_workers = config_.stage_workers;
    sopts.fifo_capacity = config_.fifo_capacity;
    sopts.sp_read_batch = config_.sp_read_batch;
    // The CJOIN stage shares the engine's adaptive thresholds, cost
    // model tuning and memory governor: its sharing sessions count
    // against the same SP budget and spill through the same store as
    // every QPipe stage.
    sopts.adaptive = config_.adaptive;
    sopts.cost_model.history = config_.cost_model_history;
    sopts.cost_model.min_samples = config_.cost_model_min_samples;
    sopts.cost_model.debug = config_.cost_model_debug;
    sopts.cost_model.capacity = config_.adaptive.popularity_capacity;
    sopts.governor = qpipe_->sp_governor();
    cjoin_stage_ = AttachCJoinToEngine(qpipe_.get(), pipeline_.get(), sopts);
  }

  SetMode(config_.mode);
}

SharingEngine::~SharingEngine() {
  // QPipe stages (including the CJOIN stage) must drain before the
  // pipeline they feed is torn down.
  qpipe_.reset();
  pipeline_.reset();
}

void SharingEngine::SetMode(EngineMode mode) {
  config_.mode = mode;
  const bool gqp = mode == EngineMode::kGqp || mode == EngineMode::kGqpSp;
  SHARING_CHECK(!gqp || pipeline_ != nullptr)
      << "GQP mode requires a CJOIN pipeline (set EngineConfig::fact_table)";

  switch (mode) {
    case EngineMode::kQueryCentric:
      qpipe_->SetSpModeAllStages(SpMode::kOff);
      break;
    case EngineMode::kSpPush:
      qpipe_->SetSpModeAllStages(SpMode::kPush);
      break;
    case EngineMode::kSpAdaptive:
      qpipe_->SetSpModeAllStages(SpMode::kAdaptive);
      break;
    case EngineMode::kSpPull:
    case EngineMode::kGqp:
    case EngineMode::kGqpSp:
      // The paper's scenarios II-IV enable SP for all stages on both
      // engine configurations; pull mode is the improved SP.
      qpipe_->SetSpModeAllStages(SpMode::kPull);
      break;
  }

  if (cjoin_stage_ != nullptr) {
    // Shared CJOIN runs adaptive, not pull-only: star-join sessions get
    // the same per-packet off/push/pull choice (and the pull+spill tier)
    // as every other stage. Attaching to an in-flight identical star
    // packet stays free in either transport.
    cjoin_stage_->SetSpMode(mode == EngineMode::kGqpSp ? SpMode::kAdaptive
                                                       : SpMode::kOff);
  }

  // Route star joins to CJOIN only in GQP modes.
  if (pipeline_ != nullptr) {
    if (gqp) {
      auto stage = cjoin_stage_;
      std::string fact = pipeline_->fact_table_name();
      qpipe_->SetJoinDispatchHook(
          [stage, fact](const PlanNodeRef& node,
                        const ExecContextRef& ctx) -> PageSourceRef {
            auto spec_or = StarQueryFromPlan(*node, fact);
            if (!spec_or.ok()) return nullptr;
            return stage->SubmitOrShare(node, ctx, /*make_inputs=*/{});
          });
    } else {
      qpipe_->SetJoinDispatchHook(nullptr);
    }
  }
}

}  // namespace sharing
