// Database: the storage stack bundle — disk manager, buffer pool, catalog,
// and a private metrics registry. Benchmarks create one Database per
// configuration so residency (memory vs disk) and counters stay isolated.

#pragma once

#include <memory>

#include "common/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/table.h"

namespace sharing {

struct DatabaseOptions {
  DiskOptions disk;

  /// Frame budget. Memory-resident experiments size this at or above the
  /// data's page count; disk-resident experiments cap it below the working
  /// set and set a read-latency model on `disk`.
  std::size_t buffer_pool_frames = 8192;
};

class Database {
 public:
  explicit Database(DatabaseOptions options)
      : options_(options),
        metrics_(std::make_unique<MetricsRegistry>()),
        disk_(std::make_unique<DiskManager>(options.disk, metrics_.get())),
        pool_(std::make_unique<BufferPool>(disk_.get(),
                                           options.buffer_pool_frames,
                                           metrics_.get())) {}

  SHARING_DISALLOW_COPY_AND_MOVE(Database);

  MetricsRegistry* metrics() { return metrics_.get(); }
  DiskManager* disk() { return disk_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  Catalog* catalog() { return &catalog_; }

  /// Switches to the memory-resident regime: no charged I/O latency.
  /// (Pages already cached stay cached; the frame budget is fixed at
  /// construction.)
  void SetMemoryResident() { disk_->SetLatencyModel(0, 0); }

  /// Switches to the disk-resident regime: every buffer-pool miss pays
  /// `read_latency_micros` + transfer at `bandwidth_mib` MiB/s (defaults
  /// model a 15kRPM SAS disk: ~5.5ms seek+rotate, ~150MiB/s transfer —
  /// scaled down 10x by default so laptop-scale runs stay interactive
  /// while preserving the I/O-bound regime).
  void SetDiskResident(uint32_t read_latency_micros = 550,
                       uint32_t bandwidth_mib = 1500) {
    disk_->SetLatencyModel(read_latency_micros, bandwidth_mib);
  }

 private:
  DatabaseOptions options_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  Catalog catalog_;
};

}  // namespace sharing
