#include "server/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics_format.h"
#include "common/trace.h"
#include "qpipe/sp_mode.h"
#include "server/watchdog.h"

namespace sharing {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void SetSocketTimeout(int fd, std::size_t timeout_ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void WriteResponse(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     StatusText(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (WriteAll(fd, head.data(), head.size())) {
    WriteAll(fd, response.body.data(), response.body.size());
  }
}

/// Reads until the end of the request head ("\r\n\r\n") or the size cap.
/// Admin requests carry no body, so the head is the whole request.
bool ReadRequestHead(int fd, std::string* out) {
  char buf[1024];
  while (out->size() < kMaxRequestBytes) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    out->append(buf, static_cast<std::size_t>(n));
    if (out->find("\r\n\r\n") != std::string::npos) return true;
    // A bare-LF client ("printf 'GET / HTTP/1.0\n\n'") is close enough.
    if (out->find("\n\n") != std::string::npos) return true;
  }
  return false;
}

/// Parses "<METHOD> <target> HTTP/x.y" from the head's first line.
bool ParseRequestLine(const std::string& head, HttpRequest* request) {
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line =
      eol == std::string::npos ? head : head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = target.find('?');
  request->path = target.substr(0, q);
  if (q != std::string::npos) {
    std::string query = target.substr(q + 1);
    std::size_t start = 0;
    while (start <= query.size()) {
      std::size_t amp = query.find('&', start);
      if (amp == std::string::npos) amp = query.size();
      const std::string pair = query.substr(start, amp - start);
      const std::size_t eq = pair.find('=');
      if (eq != std::string::npos) {
        request->params[pair.substr(0, eq)] = pair.substr(eq + 1);
      } else if (!pair.empty()) {
        request->params[pair] = "";
      }
      start = amp + 1;
    }
  }
  return !request->path.empty() && request->path.front() == '/';
}

int64_t ParseInt64(const std::string& s, int64_t fallback) {
  if (s.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return fallback;
  return static_cast<int64_t>(v);
}

}  // namespace

AdminServer::AdminServer(Options options) : options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(const std::string& path, Handler handler) {
  SHARING_CHECK(!started_) << "admin routes are immutable after Start";
  routes_[path] = std::move(handler);
}

Status AdminServer::Start() {
  SHARING_CHECK(!started_) << "admin server started twice";
  if (options_.port < 0 && options_.uds_path.empty()) {
    return Status::InvalidArgument("admin server: no listener configured");
  }
  if (pipe(wake_pipe_) != 0) {
    return Status::IoError("admin server: pipe failed");
  }
  if (options_.port >= 0) {
    tcp_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (tcp_fd_ < 0) return Status::IoError("admin server: socket failed");
    int one = 1;
    setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    // Loopback only: the admin surface is not authenticated and must
    // never listen on an external interface.
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(tcp_fd_, 64) != 0) {
      Stop();
      return Status::IoError("admin server: cannot listen on 127.0.0.1:" +
                             std::to_string(options_.port));
    }
    socklen_t len = sizeof(addr);
    if (getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      bound_port_ = static_cast<int>(ntohs(addr.sin_port));
    }
  }
  if (!options_.uds_path.empty()) {
    sockaddr_un addr{};
    if (options_.uds_path.size() >= sizeof(addr.sun_path)) {
      Stop();
      return Status::InvalidArgument("admin server: uds path too long");
    }
    uds_fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (uds_fd_ < 0) {
      Stop();
      return Status::IoError("admin server: uds socket failed");
    }
    ::unlink(options_.uds_path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.uds_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (bind(uds_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(uds_fd_, 64) != 0) {
      Stop();
      return Status::IoError("admin server: cannot listen on " +
                             options_.uds_path);
    }
  }
  started_ = true;
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const std::size_t workers = std::max<std::size_t>(1, options_.worker_threads);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void AdminServer::Stop() {
  if (started_) {
    stop_.store(true, std::memory_order_release);
    // Wake the accept poll and every idle worker.
    char byte = 'x';
    [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &byte, 1);
    queue_cv_.notify_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    workers_.clear();
    started_ = false;
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (int fd : pending_) close(fd);
    pending_.clear();
  }
  if (tcp_fd_ >= 0) close(tcp_fd_);
  if (uds_fd_ >= 0) close(uds_fd_);
  tcp_fd_ = uds_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
  if (!options_.uds_path.empty()) ::unlink(options_.uds_path.c_str());
}

void AdminServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {wake_pipe_[0], POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = {tcp_fd_, POLLIN, 0};
    if (uds_fd_ >= 0) fds[nfds++] = {uds_fd_, POLLIN, 0};
    if (poll(fds, nfds, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      int fd = accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      SetSocketTimeout(fd, options_.io_timeout_ms);
      bool shed;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        shed = pending_.size() >= options_.max_pending;
        if (!shed) pending_.push_back(fd);
      }
      if (shed) {
        // Load shedding: answer in the accept thread rather than queue
        // unboundedly behind slow handlers.
        WriteResponse(fd, HttpResponse::Text("overloaded\n", 503));
        close(fd);
      } else {
        queue_cv_.notify_one();
      }
    }
  }
}

void AdminServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_acquire)) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    close(fd);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AdminServer::ServeConnection(int fd) {
  std::string head;
  if (!ReadRequestHead(fd, &head)) return;
  HttpRequest request;
  if (!ParseRequestLine(head, &request)) {
    WriteResponse(fd, HttpResponse::Text("bad request\n", 400));
    return;
  }
  if (request.method != "GET" && request.method != "HEAD") {
    WriteResponse(fd, HttpResponse::Text("only GET is supported\n", 405));
    return;
  }
  auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    WriteResponse(fd, HttpResponse::Text("not found\n", 404));
    return;
  }
  HttpResponse response = it->second(request);
  if (request.method == "HEAD") response.body.clear();
  WriteResponse(fd, response);
}

// ---------------------------------------------------------------------------
// Engine endpoint table. Handlers render JSON by hand (matching the
// explain/trace serializers elsewhere in the tree) and only ever READ
// through the inspector's snapshot callbacks.
// ---------------------------------------------------------------------------

namespace {

void AppendJsonKey(std::string* out, const char* key, bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += key;
  *out += "\":";
}

void AppendField(std::string* out, const char* key, int64_t value,
                 bool* first) {
  AppendJsonKey(out, key, first);
  *out += std::to_string(value);
}

void AppendField(std::string* out, const char* key, double value,
                 bool* first) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  AppendJsonKey(out, key, first);
  *out += buf;
}

void AppendField(std::string* out, const char* key, bool value, bool* first) {
  AppendJsonKey(out, key, first);
  *out += value ? "true" : "false";
}

void AppendField(std::string* out, const char* key, const std::string& value,
                 bool* first) {
  AppendJsonKey(out, key, first);
  *out += '"';
  *out += value;  // stage names / modes: [a-z_]; nothing to escape
  *out += '"';
}

void AppendSignature(std::string* out, uint64_t signature, bool* first) {
  // Hex string: JSON numbers lose precision past 2^53.
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"0x%llx\"",
                static_cast<unsigned long long>(signature));
  AppendJsonKey(out, "signature", first);
  *out += buf;
}

std::string ChannelsJson(const std::vector<Stage::ChannelSnapshot>& channels) {
  std::string out = "{\"channels\":[";
  bool first_channel = true;
  for (const auto& channel : channels) {
    if (!first_channel) out += ',';
    first_channel = false;
    out += '{';
    bool first = true;
    AppendField(&out, "stage", channel.stage, &first);
    AppendSignature(&out, channel.signature, &first);
    const auto& info = channel.info;
    AppendField(&out, "mode", std::string(SpModeToString(info.mode)), &first);
    AppendField(&out, "readers_attached",
                static_cast<int64_t>(info.stats.readers_attached), &first);
    AppendField(&out, "readers_active",
                static_cast<int64_t>(info.stats.readers_active), &first);
    AppendField(&out, "pages_produced",
                static_cast<int64_t>(info.stats.pages_produced), &first);
    AppendField(&out, "max_consumer_lag",
                static_cast<int64_t>(info.stats.max_consumer_lag), &first);
    AppendField(&out, "attach_window_open", info.stats.attach_window_open,
                &first);
    AppendField(&out, "resident_pages",
                static_cast<int64_t>(info.resident_pages), &first);
    AppendField(&out, "spilled_pages",
                static_cast<int64_t>(info.spilled_pages), &first);
    AppendField(&out, "reclaimed_pages",
                static_cast<int64_t>(info.reclaimed_pages), &first);
    AppendField(&out, "min_reader_position",
                static_cast<int64_t>(info.min_reader_position), &first);
    AppendField(&out, "closed", info.closed, &first);
    AppendField(&out, "sealed", info.sealed, &first);
    AppendJsonKey(&out, "readers", &first);
    out += '[';
    bool first_reader = true;
    for (const auto& reader : info.readers) {
      if (!first_reader) out += ',';
      first_reader = false;
      out += '{';
      bool rf = true;
      AppendField(&out, "position", static_cast<int64_t>(reader.position),
                  &rf);
      AppendField(&out, "lag",
                  static_cast<int64_t>(info.published > reader.position
                                           ? info.published - reader.position
                                           : 0),
                  &rf);
      AppendField(&out, "parked", reader.parked, &rf);
      AppendField(&out, "parked_for_micros", reader.parked_for_micros, &rf);
      AppendField(&out, "cancelled", reader.cancelled, &rf);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string QueriesJson(const std::vector<QPipeEngine::LiveQueryInfo>& live) {
  std::string out = "{\"queries\":[";
  bool first_query = true;
  for (const auto& query : live) {
    if (!first_query) out += ',';
    first_query = false;
    out += '{';
    bool first = true;
    AppendField(&out, "query_id", static_cast<int64_t>(query.query_id),
                &first);
    AppendSignature(&out, query.signature, &first);
    AppendField(&out, "age_micros", query.age_micros, &first);
    AppendField(&out, "stage", query.stage, &first);
    AppendField(&out, "pages_delivered", query.pages_delivered, &first);
    AppendField(&out, "cancelled", query.cancelled, &first);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string CostModelJson(const std::vector<StageCostModelInfo>& stages) {
  std::string out = "{\"stages\":[";
  bool first_stage = true;
  for (const auto& stage : stages) {
    if (!first_stage) out += ',';
    first_stage = false;
    out += "{\"stage\":\"" + stage.stage + "\",\"signatures\":[";
    bool first_sig = true;
    for (const auto& sig : stage.signatures) {
      if (!first_sig) out += ',';
      first_sig = false;
      out += '{';
      bool first = true;
      AppendSignature(&out, sig.signature, &first);
      AppendField(&out, "work_samples",
                  static_cast<int64_t>(sig.work_samples), &first);
      AppendField(&out, "session_samples",
                  static_cast<int64_t>(sig.session_samples), &first);
      AppendField(&out, "mean_work_micros", sig.mean_work_micros, &first);
      AppendField(&out, "p95_work_micros", sig.p95_work_micros, &first);
      AppendField(&out, "mean_pages", sig.mean_pages, &first);
      AppendField(&out, "mean_satellites", sig.mean_satellites, &first);
      AppendField(&out, "mean_retention", sig.mean_retention, &first);
      AppendField(&out, "mean_arrival_gap_micros",
                  sig.mean_arrival_gap_micros, &first);
      AppendField(&out, "decided_off", sig.decided_off, &first);
      AppendField(&out, "decided_push", sig.decided_push, &first);
      AppendField(&out, "decided_pull", sig.decided_pull, &first);
      AppendField(&out, "has_decision", sig.has_decision, &first);
      AppendField(&out, "last_mode",
                  std::string(SpModeToString(sig.last_mode)), &first);
      AppendField(&out, "last_confidence", sig.last_confidence, &first);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void AppendEscapedArray(std::string* out, const std::vector<std::string>& items) {
  *out += '[';
  bool first = true;
  for (const auto& item : items) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    for (char c : item) {
      if (c == '"' || c == '\\') *out += '\\';
      *out += c;
    }
    *out += '"';
  }
  *out += ']';
}

std::string HealthJson(const Watchdog::Health& health) {
  std::string out = "{";
  bool first = true;
  AppendField(&out, "healthy", health.healthy, &first);
  AppendField(&out, "ticks", health.ticks, &first);
  AppendJsonKey(&out, "reasons", &first);
  AppendEscapedArray(&out, health.reasons);
  // Degraded-but-running conditions (e.g. a latched-off spill tier):
  // informational, never a 503.
  AppendJsonKey(&out, "details", &first);
  AppendEscapedArray(&out, health.details);
  out += '}';
  return out;
}

}  // namespace

void RegisterEngineEndpoints(AdminServer* server, EngineInspector inspector,
                             Watchdog* watchdog) {
  MetricsRegistry* metrics = inspector.metrics;
  SHARING_CHECK(metrics != nullptr);
  const int64_t start_micros = Trace::NowMicros();

  server->Handle("/", [](const HttpRequest&) {
    return HttpResponse::Text(
        "qpipe admin endpoints:\n"
        "  /metrics            Prometheus text exposition\n"
        "  /metrics.json       JSON-lines snapshot body\n"
        "  /channels           live sharing sessions\n"
        "  /cost_model         per-signature cost model\n"
        "  /queries            in-flight queries\n"
        "  /explain?query=<id> one query's sharing explain\n"
        "  /trace?ms=<n>       Chrome trace, last n ms\n"
        "  /healthz            watchdog verdict\n"
        "  /faults             fault-injection registry; ?arm=<spec> /\n"
        "                      ?disarm=1 change the schedule\n");
  });

  server->Handle("/metrics", [metrics](const HttpRequest&) {
    HttpResponse r =
        HttpResponse::Text(MetricsPrometheusText(metrics->SnapshotTyped()));
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return r;
  });

  server->Handle("/metrics.json", [metrics, start_micros](const HttpRequest&) {
    const int64_t uptime_ms = (Trace::NowMicros() - start_micros) / 1000;
    return HttpResponse::Json(
        MetricsJsonLine(metrics->Snapshot(), uptime_ms));
  });

  if (inspector.channels) {
    auto channels = inspector.channels;
    server->Handle("/channels", [channels](const HttpRequest&) {
      return HttpResponse::Json(ChannelsJson(channels()));
    });
  }

  if (inspector.queries) {
    auto queries = inspector.queries;
    server->Handle("/queries", [queries](const HttpRequest&) {
      return HttpResponse::Json(QueriesJson(queries()));
    });
  }

  if (inspector.cost_models) {
    auto cost_models = inspector.cost_models;
    server->Handle("/cost_model", [cost_models](const HttpRequest&) {
      return HttpResponse::Json(CostModelJson(cost_models()));
    });
  }

  if (inspector.explain) {
    auto explain = inspector.explain;
    server->Handle("/explain", [explain](const HttpRequest& request) {
      auto it = request.params.find("query");
      const int64_t id =
          it == request.params.end() ? -1 : ParseInt64(it->second, -1);
      if (id < 0) {
        return HttpResponse::Text("usage: /explain?query=<id>\n", 400);
      }
      std::optional<QueryExplain> report = explain(static_cast<uint64_t>(id));
      if (!report.has_value()) {
        return HttpResponse::Text("unknown query\n", 404);
      }
      return HttpResponse::Json(report->ToJson());
    });
  }

  server->Handle("/trace", [](const HttpRequest& request) {
    auto it = request.params.find("ms");
    // Default and cap keep the export bounded: a scrape returns a recent
    // window, never an unbounded dump of a long-lived process's rings.
    int64_t ms = it == request.params.end() ? 1000 : ParseInt64(it->second, -1);
    if (ms < 0) return HttpResponse::Text("usage: /trace?ms=<n>\n", 400);
    ms = std::min<int64_t>(ms, 600000);
    const int64_t since = ms == 0 ? 0 : Trace::NowMicros() - ms * 1000;
    return HttpResponse::Json(Trace::ExportChromeJson(since));
  });

  // Fault-injection control surface: GET /faults dumps the registry,
  // ?arm=<spec> replaces the schedule (the spec grammar of
  // FaultRegistry::Arm — the query-string parser splits on the FIRST
  // '=', so specs like "disk.read=p0.5,seed=7" pass through intact),
  // ?disarm=1 clears it. GET with side effects is a deliberate trade:
  // the admin surface is loopback-only and curl-from-a-shell is the
  // operator workflow it exists for.
  server->Handle("/faults", [](const HttpRequest& request) {
    auto arm = request.params.find("arm");
    if (arm != request.params.end()) {
      const Status st = FaultRegistry::Global().Arm(arm->second);
      if (!st.ok()) {
        return HttpResponse::Text("bad fault spec: " + st.ToString() + "\n",
                                  400);
      }
    } else if (request.params.count("disarm") > 0) {
      FaultRegistry::Global().Disarm();
    }
    return HttpResponse::Json(FaultRegistry::Global().DescribeJson());
  });

  server->Handle("/healthz", [watchdog](const HttpRequest&) {
    if (watchdog == nullptr) {
      return HttpResponse::Json("{\"healthy\":true,\"reasons\":[]}");
    }
    const Watchdog::Health health = watchdog->GetHealth();
    return HttpResponse::Json(HealthJson(health), health.healthy ? 200 : 503);
  });
}

// ---------------------------------------------------------------------------
// Client side.
// ---------------------------------------------------------------------------

namespace {

StatusOr<HttpFetch> FetchFromFd(int fd, const std::string& target) {
  SetSocketTimeout(fd, 10000);
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  if (!WriteAll(fd, request.data(), request.size())) {
    close(fd);
    return Status::IoError("admin fetch: send failed");
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      close(fd);
      return Status::IoError("admin fetch: recv failed");
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.rfind("HTTP/", 0) != 0) {
    return Status::IoError("admin fetch: malformed response");
  }
  HttpFetch fetch;
  const std::size_t sp = raw.find(' ');
  fetch.status = static_cast<int>(ParseInt64(raw.substr(sp + 1, 3), 0));
  fetch.body = raw.substr(head_end + 4);
  return fetch;
}

}  // namespace

StatusOr<HttpFetch> AdminHttpGet(int port, const std::string& target) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError("admin fetch: socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::IoError("admin fetch: cannot connect to 127.0.0.1:" +
                           std::to_string(port));
  }
  return FetchFromFd(fd, target);
}

StatusOr<HttpFetch> AdminHttpGetUds(const std::string& uds_path,
                                    const std::string& target) {
  sockaddr_un addr{};
  if (uds_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("admin fetch: uds path too long");
  }
  int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError("admin fetch: socket failed");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, uds_path.c_str(), sizeof(addr.sun_path) - 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::IoError("admin fetch: cannot connect to " + uds_path);
  }
  return FetchFromFd(fd, target);
}

}  // namespace sharing
