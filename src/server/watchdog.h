// Watchdog: the engine's stall detector.
//
// A single background thread samples engine state through an
// EngineInspector once per period and flags four pathologies the
// metrics spine can show but nothing previously *judged*:
//
//   1. queries over the age SLO — a query in flight longer than
//      `query_slo_ms` (progressive degradation, lost wakeup, or an
//      admission decision that backfired);
//   2. stuck parked readers — a pull-channel reader parked longer than
//      `parked_reader_ms` while its channel is still open. The message
//      distinguishes "pages are published past the reader's cursor"
//      (a wakeup bug) from "the producer itself is wedged";
//   3. I/O class saturation — any IoScheduler priority class's queue
//      depth at or above `io_queue_depth_limit`;
//   4. spill thrash — between two consecutive ticks, pages were both
//      spilled AND faulted back, and their sum exceeds
//      `spill_thrash_pages` (the SP budget is too small for the working
//      set, so the engine is paying disk twice for the same pages).
//
// Each observation bumps a `watchdog.*` counter and emits a
// rate-limited WARNING through common/logging (one limiter per
// condition, so a noisy condition cannot silence a different one). The
// verdict is published as Health{healthy, reasons} — served by the
// admin server's /healthz as 200/503 — and mirrored in the
// `watchdog.unhealthy` gauge. A condition that clears flips health back
// on the next tick.
//
// The watchdog only READS: inspector callbacks ride existing engine
// synchronization, and counter deltas come from the metrics registry.
// Tests drive it deterministically with TickNow() and synthetic
// inspectors (see tests/admin_server_test.cc).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/macros.h"
#include "server/introspection.h"

namespace sharing {

class Watchdog {
 public:
  struct Options {
    /// Sampling period for the background thread. 0 = no thread; the
    /// owner (or a test) drives sampling manually via TickNow().
    std::size_t period_ms = 1000;

    /// A live query older than this is flagged (condition 1).
    std::size_t query_slo_ms = 10000;

    /// A reader parked longer than this on an unclosed channel is
    /// flagged (condition 2).
    std::size_t parked_reader_ms = 5000;

    /// An I/O priority class with at least this many queued jobs is
    /// flagged (condition 3). 0 disables the check.
    std::size_t io_queue_depth_limit = 256;

    /// Spilled + faulted-back pages per tick beyond which the engine is
    /// thrashing (condition 4). 0 disables the check.
    std::size_t spill_thrash_pages = 512;

    /// Minimum interval between emitted warnings, per condition.
    std::size_t warn_interval_ms = 5000;

    /// Escalation for condition 1: cancel an over-SLO query (through
    /// EngineInspector::cancel_query) instead of only flagging it. Each
    /// escalation bumps `watchdog.cancelled_queries`; the query's
    /// Collect observes Aborted (or DeadlineExceeded when its own
    /// deadline also expired).
    bool cancel_over_slo = false;
  };

  /// The verdict /healthz serves. `reasons` is empty when healthy;
  /// `details` carries degraded-but-running conditions (e.g. a latched-
  /// off spill tier) that inform without flipping the verdict to 503.
  struct Health {
    bool healthy = true;
    int64_t ticks = 0;
    std::vector<std::string> reasons;
    std::vector<std::string> details;
  };

  Watchdog(Options options, EngineInspector inspector);
  ~Watchdog();

  SHARING_DISALLOW_COPY_AND_MOVE(Watchdog);

  /// Starts the background sampling thread (no-op when period_ms == 0).
  void Start();

  /// Stops and joins the thread. Idempotent; also run by the destructor.
  void Stop();

  /// Runs one sampling pass synchronously on the caller's thread and
  /// publishes the resulting verdict. The deterministic test surface;
  /// safe to call with or without the thread running.
  void TickNow();

  Health GetHealth() const;

 private:
  void Loop();

  Options options_;
  EngineInspector inspector_;

  Counter* ticks_counter_;
  Counter* queries_over_slo_;
  Counter* parked_readers_;
  Counter* io_saturation_;
  Counter* spill_thrash_;
  Counter* cancelled_queries_;
  Gauge* unhealthy_;

  LogRateLimiter warn_query_;
  LogRateLimiter warn_parked_;
  LogRateLimiter warn_io_;
  LogRateLimiter warn_thrash_;

  /// Last tick's cumulative spill/unspill counters (condition 4 deltas).
  int64_t last_pages_spilled_ = 0;
  int64_t last_unspill_reads_ = 0;
  bool have_baseline_ = false;

  mutable std::mutex health_mutex_;
  Health health_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace sharing
