// EngineInspector: the read-only bundle of engine state feeds that the
// admin server's deep endpoints and the stall watchdog consume.
//
// The inspector is a plain struct of callbacks so the server subsystem
// never holds typed references into the engine: QPipeEngine builds one
// over its own accessors (live-query registry, per-stage channel
// registries, cost models, IoScheduler queues), and tests build
// synthetic ones to drive the watchdog through fault scenarios the
// real engine would need minutes to reach. Every callback must be
// thread-safe and ride *existing* synchronization — the scrape path
// must add no locking to the sharing hot path (see
// SharedPagesList::GetDeepSnapshot, Stage::ChannelsSnapshot).

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "exec/explain.h"
#include "qpipe/engine.h"
#include "qpipe/stage.h"

namespace sharing {

/// One stage's per-signature cost-model view, tagged with the stage.
struct StageCostModelInfo {
  std::string stage;
  std::vector<SharingCostModel::SignatureSnapshot> signatures;
};

struct EngineInspector {
  /// The engine's registry (never null for a usable inspector).
  MetricsRegistry* metrics = nullptr;

  /// In-flight queries (submitted, not yet finished/abandoned).
  std::function<std::vector<QPipeEngine::LiveQueryInfo>()> queries;

  /// Deep dump of every live sharing session across all stages.
  std::function<std::vector<Stage::ChannelSnapshot>()> channels;

  /// Per-stage cost-model snapshots.
  std::function<std::vector<StageCostModelInfo>()> cost_models;

  /// The explain report for one in-flight query (nullopt: unknown id).
  std::function<std::optional<QueryExplain>(uint64_t)> explain;

  /// Per-priority-class I/O queue depths, indexed by IoPriority; empty
  /// when the engine runs without an IoScheduler.
  std::function<std::vector<std::size_t>()> io_queue_depths;

  /// Cancels one in-flight query by id (the watchdog's over-SLO
  /// escalation). Returns false when the id is unknown or already
  /// finished. Absent: escalation unavailable.
  std::function<bool(uint64_t)> cancel_query;

  /// The SP spill tier's health: OK while usable (or not configured),
  /// otherwise the Status that latched it off
  /// (SpBudgetGovernor::DisabledReason) — surfaced as a /healthz detail.
  std::function<Status()> spill_health;
};

}  // namespace sharing
