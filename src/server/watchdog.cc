#include "server/watchdog.h"

#include <chrono>

#include "common/trace.h"
#include "qpipe/sp_mode.h"

namespace sharing {

Watchdog::Watchdog(Options options, EngineInspector inspector)
    : options_(options),
      inspector_(std::move(inspector)),
      ticks_counter_(inspector_.metrics->GetCounter(metrics::kWatchdogTicks)),
      queries_over_slo_(
          inspector_.metrics->GetCounter(metrics::kWatchdogQueriesOverSlo)),
      parked_readers_(
          inspector_.metrics->GetCounter(metrics::kWatchdogParkedReaders)),
      io_saturation_(
          inspector_.metrics->GetCounter(metrics::kWatchdogIoSaturation)),
      spill_thrash_(
          inspector_.metrics->GetCounter(metrics::kWatchdogSpillThrash)),
      cancelled_queries_(inspector_.metrics->GetCounter(
          metrics::kWatchdogCancelledQueries)),
      unhealthy_(inspector_.metrics->GetGauge(metrics::kWatchdogUnhealthy)),
      warn_query_(static_cast<int64_t>(options.warn_interval_ms)),
      warn_parked_(static_cast<int64_t>(options.warn_interval_ms)),
      warn_io_(static_cast<int64_t>(options.warn_interval_ms)),
      warn_thrash_(static_cast<int64_t>(options.warn_interval_ms)) {
  SHARING_CHECK(inspector_.metrics != nullptr);
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  if (options_.period_ms == 0 || thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    TickNow();
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait_for(lock, std::chrono::milliseconds(options_.period_ms),
                      [&] { return stop_.load(std::memory_order_acquire); });
  }
}

void Watchdog::TickNow() {
  ticks_counter_->Increment();
  std::vector<std::string> reasons;

  // Condition 1: queries over the age SLO.
  if (inspector_.queries) {
    const int64_t slo_micros =
        static_cast<int64_t>(options_.query_slo_ms) * 1000;
    for (const auto& query : inspector_.queries()) {
      if (query.cancelled || query.age_micros < slo_micros) continue;
      queries_over_slo_->Increment();
      reasons.push_back("query " + std::to_string(query.query_id) +
                        " in flight " +
                        std::to_string(query.age_micros / 1000) + "ms (slo " +
                        std::to_string(options_.query_slo_ms) + "ms) at " +
                        query.stage);
      if (warn_query_.Allow()) {
        SHARING_LOG_QID(Warning, query.query_id)
            << "watchdog: query over SLO: in flight "
            << query.age_micros / 1000 << "ms (slo " << options_.query_slo_ms
            << "ms), stage=" << query.stage
            << ", pages_delivered=" << query.pages_delivered
            << " [suppressed " << warn_query_.suppressed() << "]";
      }
      if (options_.cancel_over_slo && inspector_.cancel_query &&
          inspector_.cancel_query(query.query_id)) {
        cancelled_queries_->Increment();
        SHARING_LOG_QID(Warning, query.query_id)
            << "watchdog: escalated — cancelled query over SLO after "
            << query.age_micros / 1000 << "ms at " << query.stage;
      }
    }
  }

  // Condition 2: readers parked past the threshold on unclosed channels.
  if (inspector_.channels) {
    const int64_t parked_micros =
        static_cast<int64_t>(options_.parked_reader_ms) * 1000;
    for (const auto& channel : inspector_.channels()) {
      const auto& info = channel.info;
      if (info.closed) continue;
      for (const auto& reader : info.readers) {
        if (!reader.parked || reader.cancelled ||
            reader.parked_for_micros < parked_micros) {
          continue;
        }
        parked_readers_->Increment();
        // Published past the cursor means pages exist the reader never
        // woke for (a wakeup bug); otherwise the producer is wedged.
        const bool behind = info.published > reader.position;
        reasons.push_back(
            "reader parked " +
            std::to_string(reader.parked_for_micros / 1000) + "ms on " +
            channel.stage + " channel" +
            (behind ? " with unconsumed pages" : " (producer idle)"));
        if (warn_parked_.Allow()) {
          SHARING_LOG(Warning)
              << "watchdog: reader parked "
              << reader.parked_for_micros / 1000 << "ms on " << channel.stage
              << " channel (sig=" << channel.signature
              << ", mode=" << SpModeToString(info.mode)
              << ", cursor=" << reader.position
              << ", published=" << info.published
              << (behind ? ", UNCONSUMED PAGES EXIST — possible lost wakeup"
                         : ", producer idle")
              << ") [suppressed " << warn_parked_.suppressed() << "]";
        }
      }
    }
  }

  // Condition 3: I/O priority-class queue saturation.
  if (inspector_.io_queue_depths && options_.io_queue_depth_limit > 0) {
    const std::vector<std::size_t> depths = inspector_.io_queue_depths();
    for (std::size_t cls = 0; cls < depths.size(); ++cls) {
      if (depths[cls] < options_.io_queue_depth_limit) continue;
      io_saturation_->Increment();
      const std::string_view name =
          cls < kIoPriorityClasses
              ? IoPriorityToString(static_cast<IoPriority>(cls))
              : "?";
      reasons.push_back("io class " + std::string(name) + " queue depth " +
                        std::to_string(depths[cls]) + " >= " +
                        std::to_string(options_.io_queue_depth_limit));
      if (warn_io_.Allow()) {
        SHARING_LOG(Warning)
            << "watchdog: io class " << name << " saturated: queue depth "
            << depths[cls] << " >= " << options_.io_queue_depth_limit
            << " [suppressed " << warn_io_.suppressed() << "]";
      }
    }
  }

  // Condition 4: spill thrash — the same tick both spilled and faulted
  // back more than the threshold's worth of pages.
  if (options_.spill_thrash_pages > 0) {
    const int64_t spilled =
        inspector_.metrics->GetCounter(metrics::kSpPagesSpilled)->Get();
    const int64_t unspilled =
        inspector_.metrics->GetCounter(metrics::kSpUnspillReads)->Get();
    if (have_baseline_) {
      const int64_t d_spill = spilled - last_pages_spilled_;
      const int64_t d_unspill = unspilled - last_unspill_reads_;
      if (d_spill > 0 && d_unspill > 0 &&
          d_spill + d_unspill >=
              static_cast<int64_t>(options_.spill_thrash_pages)) {
        spill_thrash_->Increment();
        reasons.push_back("spill thrash: " + std::to_string(d_spill) +
                          " spilled and " + std::to_string(d_unspill) +
                          " faulted back in one period");
        if (warn_thrash_.Allow()) {
          SHARING_LOG(Warning)
              << "watchdog: spill thrash: " << d_spill << " pages spilled and "
              << d_unspill
              << " faulted back within one period — SP budget likely below "
                 "the working set [suppressed "
              << warn_thrash_.suppressed() << "]";
        }
      }
    }
    last_pages_spilled_ = spilled;
    last_unspill_reads_ = unspilled;
    have_baseline_ = true;
  }

  // Degraded-but-running detail: a latched-off spill tier does not flip
  // the verdict to 503 (queries still finish, just without a memory
  // budget) but the /healthz body carries the causing status.
  std::vector<std::string> details;
  if (inspector_.spill_health) {
    const Status spill = inspector_.spill_health();
    if (!spill.ok()) {
      details.push_back("sp spill tier disabled: " + spill.ToString());
    }
  }

  unhealthy_->Set(reasons.empty() ? 0 : 1);
  std::lock_guard<std::mutex> lock(health_mutex_);
  health_.healthy = reasons.empty();
  health_.ticks += 1;
  health_.reasons = std::move(reasons);
  health_.details = std::move(details);
}

Watchdog::Health Watchdog::GetHealth() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_;
}

}  // namespace sharing
