// AdminServer: the engine's embedded introspection surface — a small
// HTTP/1.0 server over plain POSIX sockets (no dependencies) that makes
// the PR 7 observability spine reachable while the engine serves:
//
//   GET /metrics            Prometheus text exposition format
//   GET /metrics.json       the StatsReporter JSON-lines body
//   GET /channels           live sharing sessions, per-reader state
//   GET /cost_model         per-signature cost-model snapshots
//   GET /queries            in-flight queries (age, stage, pages)
//   GET /explain?query=<id> one query's sharing-explain report
//   GET /trace?ms=<n>       Chrome-trace export of the last n ms
//   GET /healthz            watchdog verdict (200 ok / 503 degraded)
//   GET /                   endpoint index
//
// Design constraints, in order: never perturb the engine (scrape
// handlers ride existing synchronization only — asserted by the
// contention bench's scrape-delta gate), bounded resources (one accept
// thread, a fixed worker pool, a capped connection queue that sheds
// load with 503s, capped request size, per-socket timeouts), and
// loopback-only exposure (the TCP listener binds 127.0.0.1; a Unix
// domain socket listener is available for same-host scrapers).
//
// QPipeEngine owns one when QPipeOptions::admin_port >= 0 or
// admin_uds_path is set, registers the endpoint table above via
// RegisterEngineEndpoints, and stops it before stage shutdown.

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status_or.h"
#include "server/introspection.h"

namespace sharing {

class Watchdog;

/// A parsed GET request: path split from the query string, parameters
/// decoded into a map (no %-unescaping — admin parameters are numeric).
struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> params;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Text(std::string body, int status = 200) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
  static HttpResponse Json(std::string body, int status = 200) {
    HttpResponse r;
    r.status = status;
    r.content_type = "application/json";
    r.body = std::move(body);
    return r;
  }
};

class AdminServer {
 public:
  struct Options {
    /// TCP listen port on 127.0.0.1: >0 fixed, 0 ephemeral (read the
    /// bound port back via port()), -1 no TCP listener.
    int port = 0;

    /// Unix-domain-socket listener path; empty = none. An existing
    /// socket file at the path is replaced.
    std::string uds_path;

    /// Handler worker threads (each serves one connection at a time).
    std::size_t worker_threads = 2;

    /// Accepted connections queued for a worker before the accept
    /// thread sheds load with an immediate 503.
    std::size_t max_pending = 16;

    /// Per-connection socket read/write timeout.
    std::size_t io_timeout_ms = 5000;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit AdminServer(Options options);
  ~AdminServer();

  SHARING_DISALLOW_COPY_AND_MOVE(AdminServer);

  /// Registers `handler` for exact-match `path`. Must be called before
  /// Start (the route table is immutable once serving — dispatch takes
  /// no lock).
  void Handle(const std::string& path, Handler handler);

  /// Binds the configured listeners and starts the accept/worker
  /// threads. Returns the first bind/listen error.
  Status Start();

  /// Stops accepting, drains nothing (queued connections are closed),
  /// joins every thread. Idempotent; also run by the destructor.
  void Stop();

  /// The bound TCP port after a successful Start (-1 without TCP).
  int port() const { return bound_port_; }

  const std::string& uds_path() const { return options_.uds_path; }

  /// Connections served (test surface).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  Options options_;
  std::map<std::string, Handler> routes_;

  int tcp_fd_ = -1;
  int uds_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int bound_port_ = -1;

  std::atomic<bool> stop_{false};
  std::atomic<int64_t> requests_served_{0};
  bool started_ = false;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

/// Registers the engine endpoint table (see the file header) on
/// `server`. `watchdog` may be null — /healthz then always reports ok
/// (there is nobody to disagree).
void RegisterEngineEndpoints(AdminServer* server, EngineInspector inspector,
                             Watchdog* watchdog);

/// Minimal blocking HTTP/1.0 GET against a loopback admin server —
/// the client side used by tests, the contention bench's scraper, and
/// the ci/check_admin.sh smoke binary (no curl dependency).
struct HttpFetch {
  int status = 0;
  std::string body;
};
StatusOr<HttpFetch> AdminHttpGet(int port, const std::string& target);
StatusOr<HttpFetch> AdminHttpGetUds(const std::string& uds_path,
                                    const std::string& target);

}  // namespace sharing
