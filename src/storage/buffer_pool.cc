#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"
#include "common/trace.h"

namespace sharing {

// ---------------------------------------------------------------------------
// PageGuard
// ---------------------------------------------------------------------------

PageGuard::PageGuard(BufferPool* pool, std::size_t frame_index, PageId page_id,
                     uint8_t* data)
    : pool_(pool), frame_index_(frame_index), page_id_(page_id), data_(data) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_),
      frame_index_(other.frame_index_),
      page_id_(other.page_id_),
      data_(other.data_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

uint8_t* PageGuard::mutable_data() {
  SHARING_DCHECK(valid());
  pool_->MarkDirty(page_id_);
  return data_;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_index_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(DiskManager* disk, std::size_t num_frames,
                       MetricsRegistry* metrics)
    : disk_(disk),
      metrics_(metrics),
      hits_(metrics->GetCounter(metrics::kBufferPoolHits)),
      misses_(metrics->GetCounter(metrics::kBufferPoolMisses)),
      evictions_(metrics->GetCounter(metrics::kBufferPoolEvictions)) {
  SHARING_CHECK(num_frames > 0);
  frames_.resize(num_frames);
  for (auto& f : frames_) {
    f.data = std::make_unique<uint8_t[]>(kPageBytes);
  }
}

BufferPool::~BufferPool() {
  Status st = FlushAll();
  if (!st.ok()) {
    SHARING_LOG(Warning) << "FlushAll on shutdown failed: " << st.ToString();
  }
}

std::size_t BufferPool::FindVictim() {
  // Two full sweeps: the first clears reference bits, the second takes the
  // first unpinned frame.
  for (std::size_t step = 0; step < 2 * frames_.size(); ++step) {
    Frame& f = frames_[clock_hand_];
    std::size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (f.state == FrameState::kFree) return idx;
    if (f.state == FrameState::kLoading || f.pin_count > 0) continue;
    if (f.ref) {
      f.ref = false;
      continue;
    }
    return idx;
  }
  return frames_.size();
}

Status BufferPool::PrepareFrame(std::size_t frame_index, PageId new_page,
                                std::unique_lock<std::mutex>& lock) {
  Frame& f = frames_[frame_index];
  if (f.state == FrameState::kReady) {
    // Evict current occupant; write back while the frame is protected by
    // the kLoading state (pin-count zero is guaranteed by FindVictim).
    PageId old_page = f.page_id;
    bool dirty = f.dirty;
    f.state = FrameState::kLoading;
    page_table_.erase(old_page);
    evictions_->Increment();
    if (dirty) {
      lock.unlock();
      Status st = disk_->WritePage(old_page, f.data.get());
      lock.lock();
      if (!st.ok()) {
        f.state = FrameState::kFree;
        f.page_id = kInvalidPageId;
        io_cv_.notify_all();
        return st;
      }
    }
  }
  f.state = FrameState::kLoading;
  f.page_id = new_page;
  f.pin_count = 1;
  f.ref = true;
  f.dirty = false;
  page_table_[new_page] = frame_index;
  return Status::OK();
}

bool BufferPool::IsResident(PageId id) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = page_table_.find(id);
  return it != page_table_.end() &&
         frames_[it->second].state == FrameState::kReady;
}

StatusOr<PageGuard> BufferPool::FetchPage(PageId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = page_table_.find(id);
    if (it != page_table_.end()) {
      Frame& f = frames_[it->second];
      if (f.state == FrameState::kLoading) {
        // Another thread is bringing this page in; wait for it.
        io_cv_.wait(lock);
        continue;  // re-lookup: the load may have failed
      }
      ++f.pin_count;
      f.ref = true;
      hits_->Increment();
      return PageGuard(this, it->second, id, f.data.get());
    }

    std::size_t victim = FindVictim();
    if (victim == frames_.size()) {
      return Status::Unavailable(
          "buffer pool: all frames pinned (frames=" +
          std::to_string(frames_.size()) + ")");
    }
    misses_->Increment();
    SHARING_RETURN_NOT_OK(PrepareFrame(victim, id, lock));
    Frame& f = frames_[victim];

    lock.unlock();
    Status st;
    {
      // The stall a query thread actually pays for a cold page — the
      // disk read only, not the frame bookkeeping around it.
      TraceSpan span("storage", "bufferpool.miss_stall");
      span.AddArg("page_id", static_cast<int64_t>(id));
      st = disk_->ReadPage(id, f.data.get());
    }
    lock.lock();
    if (!st.ok()) {
      f.state = FrameState::kFree;
      f.pin_count = 0;
      f.page_id = kInvalidPageId;
      page_table_.erase(id);
      io_cv_.notify_all();
      return st;
    }
    f.state = FrameState::kReady;
    io_cv_.notify_all();
    return PageGuard(this, victim, id, f.data.get());
  }
}

StatusOr<PageGuard> BufferPool::NewPage(uint32_t row_width, PageId* out_id) {
  PageId id = disk_->AllocatePage();
  if (id == kInvalidPageId) {
    return Status::ResourceExhausted("disk allocation failed (out of space)");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  std::size_t victim = FindVictim();
  if (victim == frames_.size()) {
    return Status::Unavailable("buffer pool: all frames pinned");
  }
  SHARING_RETURN_NOT_OK(PrepareFrame(victim, id, lock));
  Frame& f = frames_[victim];
  page_layout::Init(f.data.get(), row_width);
  f.state = FrameState::kReady;
  f.dirty = true;
  io_cv_.notify_all();
  *out_id = id;
  return PageGuard(this, victim, id, f.data.get());
}

Status BufferPool::FlushAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto& f : frames_) {
    if (f.state == FrameState::kReady && f.dirty) {
      PageId id = f.page_id;
      lock.unlock();
      Status st = disk_->WritePage(id, f.data.get());
      lock.lock();
      SHARING_RETURN_NOT_OK(st);
      // Re-check: the frame may have been recycled while unlocked.
      if (f.page_id == id) f.dirty = false;
    }
  }
  return Status::OK();
}

StatusOr<std::size_t> BufferPool::EvictAll() {
  SHARING_RETURN_NOT_OK(FlushAll());
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t evicted = 0;
  for (auto& f : frames_) {
    if (f.state != FrameState::kReady || f.pin_count > 0 || f.dirty) continue;
    page_table_.erase(f.page_id);
    f.state = FrameState::kFree;
    f.page_id = kInvalidPageId;
    f.ref = false;
    evictions_->Increment();
    ++evicted;
  }
  return evicted;
}

void BufferPool::MarkDirty(PageId page_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) frames_[it->second].dirty = true;
}

void BufferPool::Unpin(std::size_t frame_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& f = frames_[frame_index];
  SHARING_DCHECK(f.pin_count > 0);
  --f.pin_count;
}

BufferPoolStats BufferPool::GetStats() const {
  BufferPoolStats stats;
  stats.hits = hits_->Get();
  stats.misses = misses_->Get();
  stats.evictions = evictions_->Get();
  return stats;
}

}  // namespace sharing
