// BufferPool: fixed set of page frames over a DiskManager, clock eviction,
// pin/unpin via RAII guards.
//
// Residency policy (DESIGN.md decision #5): memory-resident experiments
// configure at least as many frames as data pages and a zero-latency disk;
// disk-resident experiments cap frames below the working set and enable the
// disk latency model. Same code path either way.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/status_or.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace sharing {

class BufferPool;

/// RAII pin on a page frame. Movable, not copyable. The frame's bytes stay
/// valid and resident for the guard's lifetime.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, std::size_t frame_index, PageId page_id,
            uint8_t* data);
  ~PageGuard();

  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  SHARING_DISALLOW_COPY(PageGuard);

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }
  const uint8_t* data() const { return data_; }
  uint8_t* mutable_data();

  /// Drops the pin early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  std::size_t frame_index_ = 0;
  PageId page_id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
};

struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
};

class BufferPool {
 public:
  BufferPool(DiskManager* disk, std::size_t num_frames,
             MetricsRegistry* metrics = &MetricsRegistry::Global());
  ~BufferPool();

  SHARING_DISALLOW_COPY_AND_MOVE(BufferPool);

  /// Pins page `id`, reading it from disk on a miss.
  StatusOr<PageGuard> FetchPage(PageId id);

  /// True when `id` is resident and ready (no pin taken). Advisory — the
  /// page may be evicted right after; used by scan readahead to skip
  /// prefetching pages that would be cache hits anyway.
  bool IsResident(PageId id) const;

  /// Allocates a new page on disk, pins it, and formats it for rows of
  /// `row_width` bytes. The new page id is returned through `out_id`.
  StatusOr<PageGuard> NewPage(uint32_t row_width, PageId* out_id);

  /// Writes all dirty resident pages back to disk.
  Status FlushAll();

  /// Drops every unpinned resident page (flushing dirty ones first), so
  /// subsequent fetches go to disk. Pinned and in-flight pages survive.
  /// Returns the number of pages evicted. Used by fault-injection tests
  /// and cold-cache benchmark runs; not a hot path.
  StatusOr<std::size_t> EvictAll();

  std::size_t num_frames() const { return frames_.size(); }
  BufferPoolStats GetStats() const;

  /// Marks the frame holding `page_id` dirty (called via guards).
  void MarkDirty(PageId page_id);

 private:
  friend class PageGuard;

  enum class FrameState : uint8_t { kFree, kLoading, kReady };

  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool ref = false;  // clock reference bit
    bool dirty = false;
    FrameState state = FrameState::kFree;
  };

  void Unpin(std::size_t frame_index);

  /// Finds an unpinned victim frame with the clock sweep. Called with
  /// `mutex_` held; returns frames_.size() when everything is pinned.
  std::size_t FindVictim();

  /// Evicts `frame` (writing back if dirty) and binds it to `new_page`,
  /// leaving it in kLoading state with one pin. Called with `mutex_` held;
  /// may release and reacquire it around I/O.
  Status PrepareFrame(std::size_t frame_index, PageId new_page,
                      std::unique_lock<std::mutex>& lock);

  DiskManager* disk_;
  MetricsRegistry* metrics_;
  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;

  mutable std::mutex mutex_;
  std::condition_variable io_cv_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, std::size_t> page_table_;
  std::size_t clock_hand_ = 0;
};

}  // namespace sharing
