// CSV import/export for tables.
//
// The demo's datasets are generated in-process, but a storage engine a
// downstream user adopts needs a way to get data in and out. Values are
// rendered per column type: int64 as decimal, double with full precision,
// dates as YYYY-MM-DD, strings quoted only when they contain a delimiter,
// quote, or newline (RFC 4180 quoting; fixed-width padding is trimmed on
// export and re-padded on import).

#pragma once

#include <iosfwd>

#include "common/status_or.h"
#include "storage/table.h"

namespace sharing {

struct CsvOptions {
  char delimiter = ',';

  /// Write/expect a header row of column names.
  bool header = true;
};

/// Writes every row of `table` to `out`.
Status ExportCsv(const Table& table, std::ostream& out,
                 const CsvOptions& options = {});

/// Creates table `name` with `schema` in `catalog` and loads rows from
/// `in`. Returns the number of rows loaded. When options.header is true
/// the first row must match the schema's column names exactly.
StatusOr<int64_t> ImportCsv(Catalog* catalog, BufferPool* pool,
                            const std::string& name, const Schema& schema,
                            std::istream& in, const CsvOptions& options = {});

}  // namespace sharing
