// DiskManager: page-granular file I/O with an optional rotational-disk
// latency model.
//
// The paper's testbed uses 15kRPM SAS disks for disk-resident experiments.
// This container has neither those disks nor their latencies, so "disk
// residency" is emulated: pages live in a real backing file (or an anonymous
// in-memory store) and each miss-driven read is charged a configurable
// latency (seek + transfer). The latency model is what makes shared scans
// and buffer-pool behavior match the paper's disk-resident regime
// (see DESIGN.md, substitution table).

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/status.h"
#include "io/io_scheduler.h"
#include "storage/page.h"

namespace sharing {

using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = ~0ull;

struct DiskOptions {
  /// Path of the backing file; empty means an in-memory page store (still
  /// charged the latency model — this is the default for reproducible
  /// benchmarks, where filesystem cache effects would add noise).
  std::string path;

  /// Fixed per-read latency in microseconds (models seek + rotational
  /// delay). 0 disables the model (memory-resident experiments).
  uint32_t read_latency_micros = 0;

  /// Sequential-transfer bandwidth in MiB/s used to charge per-byte read
  /// time on top of `read_latency_micros`. 0 disables.
  uint32_t read_bandwidth_mib = 0;

  /// Latency charged on page writes (data loading); usually left 0 so load
  /// time does not pollute query measurements.
  uint32_t write_latency_micros = 0;
};

class DiskManager {
 public:
  explicit DiskManager(DiskOptions options,
                       MetricsRegistry* metrics = &MetricsRegistry::Global());
  ~DiskManager();

  SHARING_DISALLOW_COPY_AND_MOVE(DiskManager);

  /// Allocates a zeroed page and returns its id, recycling freed pages
  /// before growing the store (spill files stay bounded by their live
  /// working set instead of their cumulative traffic). Returns
  /// kInvalidPageId when the `disk.enospc` fault point fires (the
  /// emulated out-of-space condition; see common/fault.h) — callers that
  /// can degrade (the spill tier) must check, everyone else fails the
  /// subsequent read/write with OutOfRange.
  PageId AllocatePage();

  /// Returns `id` to the allocator's free list. The page's contents are
  /// dead the moment this is called; a subsequent AllocatePage may hand
  /// the id out again. Callers (the SP spill tier) free spilled pages
  /// without re-reading them once no reader can need them.
  void FreePage(PageId id);

  /// Pages currently on the free list (allocation recycling, for tests).
  std::size_t NumFreePages() const {
    std::lock_guard<std::mutex> lock(free_mutex_);
    return free_list_.size();
  }

  /// Reads page `id` into `out` (kPageBytes). Charges the read-latency
  /// model.
  Status ReadPage(PageId id, uint8_t* out);

  /// Writes kPageBytes from `data` to page `id`. The write-latency model
  /// (options.write_latency_micros) is charged on the calling thread —
  /// which is an I/O scheduler worker when the write arrived via
  /// WritePageAsync, keeping producer-thread timings clean.
  Status WritePage(PageId id, const uint8_t* data);

  /// Submit-style async read: schedules ReadPage(id, out) on `scheduler`
  /// under `priority`. `out` must stay valid until the ticket completes.
  /// Returns nullptr when the scheduler has shut down (callers fall back
  /// to the synchronous path).
  IoTicketRef ReadPageAsync(IoScheduler* scheduler, IoPriority priority,
                            PageId id, uint8_t* out);

  /// Submit-style async write. `data` (kPageBytes) is moved into the job,
  /// so the bytes stay alive until the write is durable; the latency
  /// model is charged on the scheduler worker, not the submitter.
  IoTicketRef WritePageAsync(IoScheduler* scheduler, IoPriority priority,
                             PageId id, std::vector<uint8_t> data);

  uint64_t num_pages() const {
    return next_page_.load(std::memory_order_relaxed);
  }

  const DiskOptions& options() const { return options_; }

  /// Replaces the latency model at run time (benchmarks flip between
  /// memory-resident and disk-resident regimes on the same data).
  void SetLatencyModel(uint32_t read_latency_micros,
                       uint32_t read_bandwidth_mib);

 private:
  void ChargeReadLatency(std::size_t bytes);

  DiskOptions options_;
  MetricsRegistry* metrics_;
  Counter* reads_counter_;
  Counter* writes_counter_;

  std::atomic<uint64_t> next_page_{0};
  mutable std::mutex free_mutex_;
  std::vector<PageId> free_list_;
  /// File-backed recycled pages whose zeroing is deferred to first read:
  /// ReadPage serves them as zeros without touching disk, WritePage
  /// clears the mark. Spill chains (the free-list consumer) always write
  /// before reading, so the hot path never pays a zeroing write. The
  /// atomic emptiness hint keeps ReadPage on stores that never recycle
  /// (every main database file) to a single relaxed load — no mutex, no
  /// lookup.
  std::unordered_set<PageId> zero_on_read_;
  std::atomic<bool> zero_on_read_nonempty_{false};
  std::atomic<uint32_t> read_latency_micros_;
  std::atomic<uint32_t> read_bandwidth_mib_;

  // In-memory store (options.path empty).
  std::mutex mem_mutex_;
  std::vector<std::unique_ptr<uint8_t[]>> mem_pages_;

  // File-backed store.
  std::FILE* file_ = nullptr;
  std::mutex file_mutex_;
};

}  // namespace sharing
