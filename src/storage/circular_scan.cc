#include "storage/circular_scan.h"

#include <algorithm>

#include "common/logging.h"

namespace sharing {

// ---------------------------------------------------------------------------
// Consumer
// ---------------------------------------------------------------------------

bool CircularScanGroup::Ticket::Consumer::Deliver(ScanPageRef page) {
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return queue.size() < depth || closed; });
  if (closed || remaining == 0) return false;
  queue.push_back(std::move(page));
  --remaining;
  bool done = remaining == 0;
  lock.unlock();
  cv.notify_all();
  return !done;
}

// ---------------------------------------------------------------------------
// Ticket
// ---------------------------------------------------------------------------

CircularScanGroup::Ticket::~Ticket() { Cancel(); }

ScanPageRef CircularScanGroup::Ticket::Next() {
  std::unique_lock<std::mutex> lock(consumer_->mutex);
  consumer_->cv.wait(lock, [&] {
    return !consumer_->queue.empty() || consumer_->closed ||
           (consumer_->remaining == 0 && consumer_->queue.empty());
  });
  if (consumer_->queue.empty()) return nullptr;
  ScanPageRef page = std::move(consumer_->queue.front());
  consumer_->queue.pop_front();
  lock.unlock();
  consumer_->cv.notify_all();
  return page;
}

Status CircularScanGroup::Ticket::FinalStatus() const {
  std::lock_guard<std::mutex> lock(consumer_->mutex);
  return consumer_->error;
}

void CircularScanGroup::Ticket::Cancel() {
  {
    std::lock_guard<std::mutex> lock(consumer_->mutex);
    if (consumer_->closed) return;
    consumer_->closed = true;
    consumer_->queue.clear();  // release pins
  }
  consumer_->cv.notify_all();
}

// ---------------------------------------------------------------------------
// CircularScanGroup
// ---------------------------------------------------------------------------

CircularScanGroup::CircularScanGroup(const Table* table,
                                     std::size_t queue_depth,
                                     MetricsRegistry* metrics,
                                     std::shared_ptr<IoScheduler> scheduler,
                                     std::size_t prefetch_depth)
    : table_(table),
      queue_depth_(std::max<std::size_t>(1, queue_depth)),
      metrics_(metrics),
      pages_read_(metrics->GetCounter(metrics::kScanPagesRead)),
      shared_attach_(metrics->GetCounter(metrics::kScanSharedAttach)),
      scheduler_(std::move(scheduler)),
      prefetch_depth_(prefetch_depth) {}

CircularScanGroup::~CircularScanGroup() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    for (auto& c : consumers_) {
      std::lock_guard<std::mutex> clock(c->mutex);
      c->closed = true;
    }
    for (auto& c : consumers_) c->cv.notify_all();
  }
  wake_producer_.notify_all();
  if (producer_.joinable()) producer_.join();
  // After the join nobody issues new readahead; cancel whatever is still
  // queued (a job that already started finishes harmlessly — it touches
  // only the database-owned buffer pool).
  for (const auto& ticket : prefetch_tickets_) ticket->TryCancel();
}

std::unique_ptr<CircularScanGroup::Ticket> CircularScanGroup::Attach() {
  auto consumer = std::make_shared<Ticket::Consumer>(
      queue_depth_, table_->num_pages());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SHARING_CHECK(!shutdown_);
    if (!consumers_.empty()) shared_attach_->Increment();
    if (table_->num_pages() > 0) {
      consumers_.push_back(consumer);
      if (!producer_started_) {
        producer_started_ = true;
        producer_ = std::thread([this] { ProducerLoop(); });
      }
    } else {
      // Empty table: the ticket is born complete (remaining == 0).
    }
  }
  wake_producer_.notify_all();
  return std::unique_ptr<Ticket>(new Ticket(this, std::move(consumer)));
}

std::size_t CircularScanGroup::ActiveConsumers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consumers_.size();
}

void CircularScanGroup::PrefetchAhead(uint64_t seq, uint64_t n_pages) {
  if (scheduler_ == nullptr || prefetch_depth_ == 0) return;
  BufferPool* pool = table_->buffer_pool();
  // Drop completed tickets so the deque tracks only live readahead.
  while (!prefetch_tickets_.empty() && prefetch_tickets_.front()->done()) {
    prefetch_tickets_.pop_front();
  }
  const uint64_t target = seq + prefetch_depth_;
  for (uint64_t s = std::max(seq + 1, prefetched_until_ + 1); s <= target;
       ++s) {
    // Readahead that cannot keep up is readahead that arrives too late
    // to help: once `prefetch_depth_` jobs are outstanding, stop issuing
    // instead of backlogging the scheduler queue without bound. Skipped
    // positions are simply future cache misses; the producer moves on
    // and later calls target only what is still ahead of it.
    if (prefetch_tickets_.size() >= prefetch_depth_) break;
    const PageId pid = table_->page_id(s % n_pages);
    // A page that is already resident would be a free hit — don't spend
    // scheduler budget (or inflate io.reads_issued) re-fetching it. The
    // probe is advisory; a page evicted right after just misses later.
    if (pool->IsResident(pid)) {
      prefetched_until_ = std::max(prefetched_until_, s);
      continue;
    }
    // The job captures only the database-owned pool and the page id, so
    // it stays safe even if this group dies before it runs. Fetch + drop
    // leaves the page resident for the producer's upcoming FetchPage.
    IoTicketRef ticket = scheduler_->Submit(
        IoPriority::kScanPrefetch, kPageBytes, [pool, pid] {
          auto guard_or = pool->FetchPage(pid);
          return guard_or.ok() ? Status::OK() : guard_or.status();
        });
    if (ticket == nullptr) return;  // scheduler shut down
    prefetch_tickets_.push_back(std::move(ticket));
    prefetched_until_ = std::max(prefetched_until_, s);
  }
}

void CircularScanGroup::ProducerLoop() {
  BufferPool* pool = table_->buffer_pool();
  const std::size_t n_pages = table_->num_pages();
  for (;;) {
    // Snapshot the consumers that still want pages; prune finished ones.
    std::vector<std::shared_ptr<Ticket::Consumer>> active;
    uint64_t position;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      consumers_.erase(
          std::remove_if(consumers_.begin(), consumers_.end(),
                         [](const std::shared_ptr<Ticket::Consumer>& c) {
                           std::lock_guard<std::mutex> clock(c->mutex);
                           return c->closed || c->remaining == 0;
                         }),
          consumers_.end());
      wake_producer_.wait(lock,
                          [&] { return shutdown_ || !consumers_.empty(); });
      if (shutdown_) return;
      active = consumers_;
      position = cursor_;
      cursor_ = (cursor_ + 1) % n_pages;
    }

    PrefetchAhead(read_seq_++, n_pages);
    auto guard_or = pool->FetchPage(table_->page_id(position));
    if (!guard_or.ok()) {
      SHARING_LOG(Error) << "circular scan fetch failed: "
                         << guard_or.status().ToString();
      // Close all consumers with the error recorded, so their scans
      // surface an IoError instead of silently reporting a short table.
      for (auto& c : active) {
        {
          std::lock_guard<std::mutex> clock(c->mutex);
          c->closed = true;
          if (c->error.ok()) c->error = guard_or.status();
        }
        c->cv.notify_all();
      }
      continue;
    }
    auto page = std::make_shared<ScanPage>();
    page->guard = std::move(guard_or).value();
    page->position = position;
    pages_read_->Increment();

    for (auto& c : active) {
      c->Deliver(page);
    }
  }
}

}  // namespace sharing
