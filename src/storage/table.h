// Table: an append-only heap of fixed-width rows stored in buffer-pool
// pages. Analytical workloads only append (load) and scan, which is all
// the paper's experiments need from Shore-MT.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status_or.h"
#include "storage/buffer_pool.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace sharing {

class Table;

/// Bulk loader: buffers rows into the current page and allocates new pages
/// as needed. Single-threaded (loading is a setup phase).
class TableAppender {
 public:
  explicit TableAppender(Table* table);
  ~TableAppender();

  SHARING_DISALLOW_COPY_AND_MOVE(TableAppender);

  /// Reserves the next row slot and returns a writer over it.
  StatusOr<RowWriter> AppendRow();

  /// Flushes the current partial page; called automatically on destruction.
  Status Finish();

 private:
  Table* table_;
  PageGuard current_;
  bool finished_ = false;
};

class Table {
 public:
  Table(std::string name, Schema schema, BufferPool* pool);

  SHARING_DISALLOW_COPY_AND_MOVE(Table);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  BufferPool* buffer_pool() const { return pool_; }

  uint64_t num_rows() const { return num_rows_; }
  std::size_t num_pages() const { return pages_.size(); }
  PageId page_id(std::size_t i) const { return pages_[i]; }
  const std::vector<PageId>& page_ids() const { return pages_; }

 private:
  friend class TableAppender;

  std::string name_;
  Schema schema_;
  BufferPool* pool_;
  std::vector<PageId> pages_;
  uint64_t num_rows_ = 0;
};

/// Name → table registry plus ownership of the storage stack wiring
/// (callers own DiskManager/BufferPool; the catalog holds tables).
class Catalog {
 public:
  Catalog() = default;
  SHARING_DISALLOW_COPY_AND_MOVE(Catalog);

  /// Creates an empty table. Fails if the name exists.
  StatusOr<Table*> CreateTable(const std::string& name, Schema schema,
                               BufferPool* pool);

  StatusOr<Table*> GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace sharing
